module hypersolve

go 1.24
