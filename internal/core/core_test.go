package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"hypersolve/internal/apps"
	"hypersolve/internal/mapping"
	"hypersolve/internal/mesh"
	"hypersolve/internal/recursion"
	"hypersolve/internal/sat"
	"hypersolve/internal/sched"
	"hypersolve/internal/simulator"
)

func TestMachineRunsSum(t *testing.T) {
	res, err := RunOnce(Config{
		Topology:     mesh.MustTorus(5, 5),
		Mapper:       mapping.NewRoundRobin(),
		Task:         apps.SumTask(),
		RecordSeries: true,
	}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Value.(int) != 55 {
		t.Fatalf("sum(10) = %v (ok=%v)", res.Value, res.OK)
	}
	if res.ComputationTime <= 0 {
		t.Error("ComputationTime should be positive")
	}
	if res.Performance <= 0 || res.Performance > 1 {
		t.Errorf("Performance = %v", res.Performance)
	}
	if len(res.QueuedSeries) == 0 {
		t.Error("QueuedSeries missing despite RecordSeries")
	}
	var frames int64
	for _, f := range res.FramesPerProcess {
		frames += f
	}
	if frames != 11 { // sum(10) evaluates frames for 10..0
		t.Errorf("total frames = %d, want 11", frames)
	}
}

func TestMachineSolvesSAT(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := sat.Random3SAT(rng, 12, 50)
	want := sat.Solve(f, sat.Options{}).Status
	res, err := RunOnce(Config{
		Topology: mesh.MustTorus(4, 4),
		Mapper:   mapping.NewLeastBusy(),
		Task:     sat.Task(sat.FirstUnassigned),
	}, sat.NewProblem(f))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatal("no result")
	}
	out := res.Value.(sat.Outcome)
	if out.Status != want {
		t.Errorf("distributed %v != sequential %v", out.Status, want)
	}
	if out.Status == sat.SAT && !sat.Verify(f, out.Assignment) {
		t.Error("assignment does not verify")
	}
}

func TestMachineConfigValidation(t *testing.T) {
	base := Config{
		Topology: mesh.MustRing(4),
		Mapper:   mapping.NewRoundRobin(),
		Task:     apps.SumTask(),
	}
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Topology = nil },
		func(c *Config) { c.Mapper = nil },
		func(c *Config) { c.Task = nil },
		func(c *Config) { c.Root = 99 },
		func(c *Config) { c.Root = -1 },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("expected config error for %+v", cfg)
		}
	}
}

func TestMachineMaxStepsAbortsCleanly(t *testing.T) {
	infinite := func(f *recursion.Frame, arg recursion.Value) recursion.Value {
		return f.CallSync(arg)
	}
	res, err := RunOnce(Config{
		Topology: mesh.MustTorus(4, 4),
		Mapper:   mapping.NewRoundRobin(),
		Task:     infinite,
		MaxSteps: 40,
	}, "spin")
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Error("infinite task should not produce a result")
	}
	if res.Stats.Quiescent {
		t.Error("run should not be quiescent")
	}
}

func TestMachineRootPlacement(t *testing.T) {
	res, err := RunOnce(Config{
		Topology: mesh.MustTorus(4, 4),
		Mapper:   mapping.NewRoundRobin(),
		Task:     apps.SumTask(),
		Root:     sched.PID(7),
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Value.(int) != 15 {
		t.Fatalf("sum(5) at root 7 = %v (ok=%v)", res.Value, res.OK)
	}
	if res.FramesPerProcess[7] == 0 {
		t.Error("root process evaluated no frames")
	}
}

func TestMachineProcsPerNode(t *testing.T) {
	for _, procs := range []int{1, 2, 4} {
		res, err := RunOnce(Config{
			Topology:     mesh.MustTorus(3, 3),
			Mapper:       mapping.NewRoundRobin(),
			Task:         apps.FibTask(),
			ProcsPerNode: procs,
		}, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK || res.Value.(int) != 55 {
			t.Errorf("procs=%d: fib(10) = %v (ok=%v)", procs, res.Value, res.OK)
		}
		if len(res.FramesPerProcess) != 9*procs {
			t.Errorf("procs=%d: FramesPerProcess length %d", procs, len(res.FramesPerProcess))
		}
	}
}

func TestNodeHeatmapAccumulates(t *testing.T) {
	m, err := New(Config{
		Topology: mesh.MustTorus(4, 4),
		Mapper:   mapping.NewRoundRobin(),
		Task:     apps.FibTask(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(12)
	if err != nil {
		t.Fatal(err)
	}
	hm := m.NodeHeatmap(res)
	if hm.W != 4 || hm.H != 4 {
		t.Fatalf("heatmap dims %dx%d", hm.W, hm.H)
	}
	var wantTotal float64
	for _, c := range res.ReceivedPerProcess {
		wantTotal += float64(c)
	}
	if hm.Total() != wantTotal {
		t.Errorf("heatmap total %v != received total %v", hm.Total(), wantTotal)
	}
	if hm.Max() == 0 {
		t.Error("heatmap is empty")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() Result {
		res, err := RunOnce(Config{
			Topology:     mesh.MustTorus(4, 4),
			Mapper:       mapping.NewLeastBusy(),
			Task:         apps.FibTask(),
			Seed:         99,
			RecordSeries: true,
		}, 11)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.ComputationTime != b.ComputationTime {
		t.Errorf("computation times differ: %d vs %d", a.ComputationTime, b.ComputationTime)
	}
	if a.Stats.TotalSent != b.Stats.TotalSent {
		t.Errorf("message counts differ")
	}
	for i := range a.QueuedSeries {
		if a.QueuedSeries[i] != b.QueuedSeries[i] {
			t.Fatalf("series diverge at %d", i)
		}
	}
}

func TestLinkModelPassThrough(t *testing.T) {
	// With latency 3 the same workload takes longer.
	base := Config{
		Topology: mesh.MustTorus(4, 4),
		Mapper:   mapping.NewRoundRobin(),
		Task:     apps.SumTask(),
	}
	fast, err := RunOnce(base, 8)
	if err != nil {
		t.Fatal(err)
	}
	slow := base
	slow.Link.LinkLatency = 3
	slowRes, err := RunOnce(slow, 8)
	if err != nil {
		t.Fatal(err)
	}
	if slowRes.ComputationTime <= fast.ComputationTime {
		t.Errorf("latency 3 (%d steps) not slower than latency 1 (%d steps)",
			slowRes.ComputationTime, fast.ComputationTime)
	}
}

func TestCancelSpeculativePreservesSATVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 6; i++ {
		f := sat.Random3SAT(rng, 12, 48+i)
		want := sat.Solve(f, sat.Options{}).Status
		res, err := RunOnce(Config{
			Topology:          mesh.MustTorus(5, 5),
			Mapper:            mapping.NewLeastBusy(),
			Task:              sat.Task(sat.FirstUnassigned),
			CancelSpeculative: true,
		}, sat.NewProblem(f))
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Fatal("no result")
		}
		out := res.Value.(sat.Outcome)
		if out.Status != want {
			t.Errorf("instance %d: cancel-mode %v != sequential %v", i, out.Status, want)
		}
		if out.Status == sat.SAT && !sat.Verify(f, out.Assignment) {
			t.Errorf("instance %d: invalid assignment", i)
		}
		if want == sat.SAT && res.FramesCancelled == 0 {
			t.Errorf("instance %d: SAT run cancelled no frames", i)
		}
	}
}

// slowConfig builds a machine whose run spans tens of millions of cheap
// steps: a linear sum chain over high-latency links on a tiny ring. It pins
// the sweep engine because the point is a run slow enough to cancel — the
// event engine skips the idle latency gaps and finishes in milliseconds.
func slowConfig() Config {
	return Config{
		Topology: mesh.MustRing(4),
		Mapper:   mapping.NewRoundRobin(),
		Task:     apps.SumTask(),
		Link:     simulator.Config{LinkLatency: 50000},
		MaxSteps: 1 << 40,
		Engine:   simulator.EngineSweep,
	}
}

func TestRunContextCancellation(t *testing.T) {
	m, err := New(slowConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := m.RunContext(ctx, 500)
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	if !res.Stats.Interrupted || res.Stats.Quiescent {
		t.Fatalf("stats = %+v, want interrupted, not quiescent", res.Stats)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want well under the full run", elapsed)
	}
	if res.OK {
		t.Fatal("interrupted run reported OK")
	}
}

func TestRunContextDeadline(t *testing.T) {
	m, err := New(slowConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	res, err := m.RunContext(ctx, 500)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in the chain", err)
	}
	if !res.Stats.Interrupted {
		t.Fatalf("stats = %+v, want interrupted", res.Stats)
	}
}

// TestRunContextCompletedRunsIdentical is the determinism guarantee: a run
// that completes under an (unfired) cancellable context is bit-identical to
// a plain Run of the same config and seed.
func TestRunContextCompletedRunsIdentical(t *testing.T) {
	cfg := Config{
		Topology:     mesh.MustTorus(5, 5),
		Mapper:       mapping.NewLeastBusy(),
		Task:         apps.SumTask(),
		Seed:         11,
		RecordSeries: true,
	}
	plain, err := RunOnce(cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	viaCtx, err := m.RunContext(ctx, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, viaCtx) {
		t.Fatalf("RunContext result differs from Run:\nrun:  %+v\nctx:  %+v", plain, viaCtx)
	}
}
