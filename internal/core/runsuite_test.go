package core

import (
	"reflect"
	"testing"

	"hypersolve/internal/apps"
	"hypersolve/internal/mapping"
	"hypersolve/internal/mesh"
	"hypersolve/internal/recursion"
)

func suiteArgs(n int) []recursion.Value {
	args := make([]recursion.Value, n)
	for i := range args {
		args[i] = 10 + i
	}
	return args
}

func TestRunSuiteMatchesSerialRuns(t *testing.T) {
	cfg := Config{
		Topology: mesh.MustTorus(4, 4),
		Mapper:   mapping.NewLeastBusy(),
		Task:     apps.SumTask(),
		Seed:     3,
	}
	args := suiteArgs(6)
	var want []Result
	for i, a := range args {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		res, err := RunOnce(c, a)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}
	for _, p := range []int{1, 4} {
		c := cfg
		c.Parallelism = p
		got, err := RunSuite(c, args)
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("parallelism %d: suite results differ from per-run RunOnce", p)
		}
	}
}

// TestRunSuiteFreshMapperIdealDeterminism pins the fix for the idealised
// globally coordinated mapper under concurrency: its factory shares one
// cursor across every machine it builds, so concurrent machines must each
// construct a fresh factory via Config.FreshMapper. Run under -race this
// also proves the suite is free of cross-machine data races.
func TestRunSuiteFreshMapperIdealDeterminism(t *testing.T) {
	topo, err := mesh.NewFullyConnected(16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Topology:    topo,
		FreshMapper: mapping.NewGlobalRoundRobin,
		Task:        apps.SumTask(),
		Seed:        1,
	}
	args := suiteArgs(8)
	cfg.Parallelism = 1
	serial, err := RunSuite(cfg, args)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{4, 8} {
		cfg.Parallelism = p
		got, err := RunSuite(cfg, args)
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if !reflect.DeepEqual(serial, got) {
			t.Errorf("parallelism %d: ideal-mapper suite differs from serial", p)
		}
	}
}

func TestRunSuiteEmptyAndError(t *testing.T) {
	cfg := Config{
		Topology: mesh.MustTorus(3, 3),
		Mapper:   mapping.NewRoundRobin(),
		Task:     apps.SumTask(),
	}
	out, err := RunSuite(cfg, nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty suite: out=%v err=%v", out, err)
	}
	bad := cfg
	bad.Topology = nil
	if _, err := RunSuite(bad, suiteArgs(3)); err == nil {
		t.Error("expected config error to surface from RunSuite")
	}
}
