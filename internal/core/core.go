// Package core assembles the five-layer solver stack of Tarawneh et al.
// (P2S2 2017) into a single Machine: a simulated hyperspace computer
// (layer 1), node-level scheduling (layer 2), ticketed mapping (layer 3),
// the continuation-based recursion runtime (layer 4) and a user task
// (layer 5). It is the primary entry point of the library: configure a
// Machine, Run a task, read the result and the activity metrics.
package core

import (
	"context"
	"fmt"

	"hypersolve/internal/mapping"
	"hypersolve/internal/mesh"
	"hypersolve/internal/metrics"
	"hypersolve/internal/parallel"
	"hypersolve/internal/recursion"
	"hypersolve/internal/sched"
	"hypersolve/internal/simulator"
)

// Config selects one implementation per layer, mirroring the paper's vision
// of assembling applications from a repertoire of per-layer modules
// (Section VII).
type Config struct {
	// Topology is the layer-1 interconnect (required).
	Topology mesh.Topology
	// Mapper is the layer-3 mapping algorithm factory (required unless
	// FreshMapper is set).
	Mapper mapping.Factory
	// FreshMapper, when non-nil, overrides Mapper: it is invoked once per
	// machine to build that machine's mapping factory. Factories that share
	// state across every machine they build (GlobalRoundRobinMapper's
	// machine-wide cursor) need this under RunSuite with Parallelism > 1,
	// both for determinism and to avoid cross-machine contention; stateless
	// factories (round-robin, least-busy, weighted) work identically either
	// way.
	FreshMapper func() mapping.Factory
	// Task is the layer-5 recursive function (required).
	Task recursion.Task

	// ProcsPerNode and ActivationsPerStep configure layer 2 (default 1).
	ProcsPerNode       int
	ActivationsPerStep int
	// Policy is the node-level scheduling discipline (default round-robin).
	Policy sched.Policy

	// Root is the process that receives the trigger (default PID 0).
	Root sched.PID

	// CancelSpeculative enables the recursion layer's speculative
	// cancellation extension: when a Choose resolves, the losing branches
	// are revoked across the mesh instead of running to completion. Off by
	// default (the paper's semantics).
	CancelSpeculative bool

	// Observer, if non-nil, receives the layer-1 after-step callback
	// (overriding any Link.Observer). The solve service installs its
	// throttled progress publisher here so running jobs can be watched
	// live; the hook costs nothing measurable when nil.
	Observer simulator.Observer

	// Seed drives all randomness in the stack.
	Seed int64
	// MaxSteps bounds the simulation (default simulator's 4M).
	MaxSteps int64
	// RecordSeries enables the per-step interconnect activity trace.
	RecordSeries bool

	// Engine selects the layer-1 inner loop: simulator.EngineEvent (the
	// default) or simulator.EngineSweep. The two are bit-identical; sweep
	// exists for differential testing and as a fallback.
	Engine simulator.Engine

	// Parallelism bounds how many machines RunSuite simulates concurrently
	// (a single Machine.Run is always single-threaded; the knob schedules
	// independent runs, not one run's internals). Values <= 0 default to
	// runtime.GOMAXPROCS(0); 1 recovers the serial loop.
	Parallelism int

	// Link carries the optional layer-1 link-model extensions (latency,
	// bandwidth, bounded queues, loss + reliability). Topology, Factory,
	// Seed, MaxSteps and RecordSeries set here are overridden by the
	// fields above.
	Link simulator.Config
}

// Result is the outcome of one Machine run.
type Result struct {
	// Value is the root task's return value; OK is false when the run hit
	// MaxSteps before the root completed.
	Value recursion.Value
	OK    bool

	// Stats are the raw layer-1 statistics.
	Stats simulator.Stats

	// ComputationTime is the paper's performance denominator: simulation
	// steps between the first and last messages.
	ComputationTime int64
	// Performance is 1/ComputationTime, the paper's Figure 4 y-axis.
	Performance float64

	// QueuedSeries is the interconnect activity trace (Figure 5 top),
	// present when Config.RecordSeries was set.
	QueuedSeries metrics.Series
	// ReceivedPerProcess is the node activity metric (Figure 5 bottom):
	// layer-3 messages delivered to each process.
	ReceivedPerProcess []int64
	// FramesPerProcess counts task invocations evaluated by each process.
	FramesPerProcess []int64
	// FramesCancelled counts invocations abandoned by speculative
	// cancellation across the whole machine.
	FramesCancelled int64
}

// Machine is a configured five-layer stack, ready to run one computation.
type Machine struct {
	cfg Config
	net *mapping.Network
}

// New validates the configuration and builds the stack.
func New(cfg Config) (*Machine, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("core: Config.Topology is nil")
	}
	if cfg.FreshMapper != nil {
		cfg.Mapper = cfg.FreshMapper()
	}
	if cfg.Mapper == nil {
		return nil, fmt.Errorf("core: Config.Mapper is nil")
	}
	if cfg.Task == nil {
		return nil, fmt.Errorf("core: Config.Task is nil")
	}
	simCfg := cfg.Link
	if cfg.Observer != nil {
		simCfg.Observer = cfg.Observer
	}
	simCfg.Seed = cfg.Seed
	if cfg.MaxSteps > 0 {
		simCfg.MaxSteps = cfg.MaxSteps
	}
	simCfg.RecordSeries = cfg.RecordSeries
	if cfg.Engine != simulator.EngineDefault {
		simCfg.Engine = cfg.Engine
	}
	net, err := mapping.New(mapping.Config{
		Physical:           cfg.Topology,
		ProcsPerNode:       cfg.ProcsPerNode,
		ActivationsPerStep: cfg.ActivationsPerStep,
		Policy:             cfg.Policy,
		Mapper:             cfg.Mapper,
		Factory:            recursion.AppFactoryOpts(cfg.Task, recursion.Options{CancelSpeculative: cfg.CancelSpeculative}),
		Seed:               cfg.Seed,
		Sim:                simCfg,
	})
	if err != nil {
		return nil, err
	}
	procs := cfg.ProcsPerNode
	if procs < 1 {
		procs = 1
	}
	if int(cfg.Root) < 0 || int(cfg.Root) >= cfg.Topology.Size()*procs {
		return nil, fmt.Errorf("core: root PID %d out of range", cfg.Root)
	}
	return &Machine{cfg: cfg, net: net}, nil
}

// Network exposes the underlying layer-3 network for advanced inspection.
func (m *Machine) Network() *mapping.Network { return m.net }

// Run triggers the task with the given argument at the root process, runs
// the simulation to quiescence (or MaxSteps) and collects the result.
// A Machine instance runs once; build a new one for another run.
func (m *Machine) Run(arg recursion.Value) (Result, error) {
	return m.RunContext(context.Background(), arg)
}

// RunContext is Run with cooperative cancellation and deadline enforcement:
// the layer-1 step loop polls ctx once every simulator.CancelSliceSteps
// steps and abandons the run (unwinding all outstanding frames) when the
// context is cancelled or past its deadline. The returned error wraps
// ctx.Err() and the partial Result carries the statistics accumulated up to
// the interruption. Runs that complete are bit-identical to Run's — the
// poll only ever aborts the loop, never reorders it — so determinism of
// completed runs is preserved at any cancellation pressure.
func (m *Machine) RunContext(ctx context.Context, arg recursion.Value) (Result, error) {
	if err := m.net.Trigger(m.cfg.Root, arg); err != nil {
		return Result{}, err
	}
	stats := m.net.RunContext(ctx)

	res := Result{
		Stats:           stats,
		ComputationTime: stats.ComputationTime(),
		QueuedSeries:    metrics.Series(stats.QueuedSeries),
	}
	if res.ComputationTime > 0 {
		res.Performance = 1 / float64(res.ComputationTime)
	}
	res.ReceivedPerProcess = m.net.ReceivedPerProcess()

	size := m.net.Virtual().Size()
	res.FramesPerProcess = make([]int64, size)
	for pid := 0; pid < size; pid++ {
		rt := m.net.App(sched.PID(pid)).(*recursion.Runtime)
		res.FramesPerProcess[pid] = rt.FramesStarted()
		res.FramesCancelled += rt.FramesCancelled()
	}

	rootRT := m.net.App(m.cfg.Root).(*recursion.Runtime)
	res.Value, res.OK = rootRT.RootResult()

	if !stats.Quiescent {
		// Abandoned run: unwind outstanding frames so their goroutines
		// exit rather than leak.
		for pid := 0; pid < size; pid++ {
			m.net.App(sched.PID(pid)).(*recursion.Runtime).Abort()
		}
	}
	if stats.Interrupted {
		return res, fmt.Errorf("core: run interrupted: %w", context.Cause(ctx))
	}
	return res, nil
}

// NodeHeatmap folds the per-process received counts onto the physical
// topology's first two embedding dimensions — the paper's Figure 5 node
// activity heatmap. Topologies with more dimensions are projected onto the
// first two; 1D topologies produce a single row.
func (m *Machine) NodeHeatmap(res Result) *metrics.Heatmap {
	topo := m.cfg.Topology
	dims := topo.Dims()
	w := dims[0]
	h := 1
	if len(dims) > 1 {
		h = dims[1]
	}
	hm := metrics.NewHeatmap(w, h)
	procs := m.cfg.ProcsPerNode
	if procs < 1 {
		procs = 1
	}
	for pid, count := range res.ReceivedPerProcess {
		node := mesh.NodeID(pid / procs)
		c := topo.Coords(node)
		x := c[0]
		y := 0
		if len(c) > 1 {
			y = c[1]
		}
		hm.Add(x, y, float64(count))
	}
	return hm
}

// RunOnce is a convenience wrapper: build a Machine from cfg, run arg, and
// return the result.
func RunOnce(cfg Config, arg recursion.Value) (Result, error) {
	m, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	return m.Run(arg)
}

// RunSuite simulates one machine per argument, deriving run i's seed as
// cfg.Seed + i and fanning the runs out over cfg.Parallelism workers.
// Results are collected by argument index, so the output is bit-identical
// at every parallelism level — provided each machine's mapper state is its
// own. The bundled factories all build per-node state only, except
// GlobalRoundRobinMapper, whose factory shares one cursor across every
// machine it builds: set cfg.FreshMapper (e.g. to GlobalRoundRobinMapper
// itself) so each run constructs a fresh factory, as internal/experiments
// and cmd/hypersim do.
func RunSuite(cfg Config, args []recursion.Value) ([]Result, error) {
	out := make([]Result, len(args))
	err := parallel.ForEach(len(args), cfg.Parallelism, func(i int) error {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		res, err := RunOnce(c, args[i])
		if err != nil {
			return fmt.Errorf("core: suite run %d: %w", i, err)
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
