package metrics_test

import (
	"fmt"

	"hypersolve/internal/metrics"
)

// A simulation run hands back its interconnect activity as a Series and its
// per-node load as a Heatmap; both summarise and render without leaving the
// terminal. The same values marshal to JSON inside a job result, so what a
// local run prints is what an API client receives.
func Example() {
	activity := metrics.Series{0, 3, 9, 14, 9, 4, 1, 0}
	fmt.Println("peak:", activity.Max(), "at step", activity.ArgMax())
	fmt.Println("total:", activity.Sum())

	sum := metrics.Summarize([]float64{1.0, 2.0, 4.0})
	fmt.Printf("mean: %.2f median: %.1f\n", sum.Mean, sum.Median)

	load := metrics.NewHeatmap(2, 2)
	load.Add(0, 0, 6)
	load.Add(1, 1, 2)
	fmt.Printf("imbalance CV: %.2f\n", load.ImbalanceCV())
	// Output:
	// peak: 14 at step 3
	// total: 40
	// mean: 2.33 median: 2.0
	// imbalance CV: 1.41
}
