// Package metrics holds the measurement types of the paper's evaluation
// (Section V-C): computation time, interconnect activity (total queued
// messages versus time) and node activity (total messages delivered per
// node). These are result-payload types, not a monitoring system — Series
// and Heatmap are embedded in solve results and travel the HTTP API as the
// job-result JSON wire format, with summary statistics and text renderings
// (sparklines, ASCII plots, heatmap shading) layered on top for terminal
// and report output. Operational telemetry — counters, gauges and
// histograms scraped from /metrics — lives in internal/telemetry.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is a time series of per-step measurements (e.g. queued messages).
type Series []int

// Max returns the largest value, or 0 for an empty series.
func (s Series) Max() int {
	max := 0
	for _, v := range s {
		if v > max {
			max = v
		}
	}
	return max
}

// Sum returns the series total (the time-integral of activity).
func (s Series) Sum() int64 {
	var total int64
	for _, v := range s {
		total += int64(v)
	}
	return total
}

// Mean returns the average value, or 0 for an empty series.
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	return float64(s.Sum()) / float64(len(s))
}

// ArgMax returns the index of the first maximum, or -1 for empty series.
func (s Series) ArgMax() int {
	if len(s) == 0 {
		return -1
	}
	best := 0
	for i, v := range s {
		if v > s[best] {
			best = i
		}
	}
	return best
}

// Downsample reduces the series to at most buckets points by averaging
// windows; used to fit long traces into terminal plots.
func (s Series) Downsample(buckets int) Series {
	if buckets <= 0 || len(s) <= buckets {
		return append(Series(nil), s...)
	}
	out := make(Series, buckets)
	for b := 0; b < buckets; b++ {
		lo := b * len(s) / buckets
		hi := (b + 1) * len(s) / buckets
		if hi == lo {
			hi = lo + 1
		}
		sum := 0
		for _, v := range s[lo:hi] {
			sum += v
		}
		out[b] = sum / (hi - lo)
	}
	return out
}

// Summary holds the distribution statistics reported for experiment runs.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	Median        float64
	GeometricMean float64
}

// Summarize computes summary statistics of a sample.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	if n := len(sorted); n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	var sum, logSum float64
	logOK := true
	for _, x := range xs {
		sum += x
		if x > 0 {
			logSum += math.Log(x)
		} else {
			logOK = false
		}
	}
	s.Mean = sum / float64(len(xs))
	if logOK {
		s.GeometricMean = math.Exp(logSum / float64(len(xs)))
	}
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(sq / float64(len(xs)-1))
	}
	return s
}

// Heatmap is a 2D grid of accumulated per-node counts, the paper's node
// activity visualisation (Figure 5, bottom row).
type Heatmap struct {
	W, H  int
	Cells []float64 // row-major: Cells[y*W+x]
}

// NewHeatmap allocates a zeroed W x H heatmap.
func NewHeatmap(w, h int) *Heatmap {
	return &Heatmap{W: w, H: h, Cells: make([]float64, w*h)}
}

// Add accumulates a count at (x, y).
func (h *Heatmap) Add(x, y int, v float64) {
	if x < 0 || x >= h.W || y < 0 || y >= h.H {
		return
	}
	h.Cells[y*h.W+x] += v
}

// At returns the value at (x, y).
func (h *Heatmap) At(x, y int) float64 { return h.Cells[y*h.W+x] }

// Max returns the largest cell value.
func (h *Heatmap) Max() float64 {
	max := 0.0
	for _, v := range h.Cells {
		if v > max {
			max = v
		}
	}
	return max
}

// Total returns the sum of all cells.
func (h *Heatmap) Total() float64 {
	var t float64
	for _, v := range h.Cells {
		t += v
	}
	return t
}

// ImbalanceCV returns the coefficient of variation (std/mean) across cells:
// a scalar measure of spatial load imbalance (0 = perfectly even).
func (h *Heatmap) ImbalanceCV() float64 {
	xs := make([]float64, len(h.Cells))
	copy(xs, h.Cells)
	s := Summarize(xs)
	if s.Mean == 0 {
		return 0
	}
	return s.Std / s.Mean
}

// heatmapJSON is the stable wire format of a Heatmap: dimensions plus the
// row-major cell grid, as served by the solve service's result payloads.
type heatmapJSON struct {
	W     int       `json:"w"`
	H     int       `json:"h"`
	Cells []float64 `json:"cells"`
}

// MarshalJSON serialises the heatmap as {"w":…,"h":…,"cells":[…]} with
// row-major cells.
func (h *Heatmap) MarshalJSON() ([]byte, error) {
	return json.Marshal(heatmapJSON{W: h.W, H: h.H, Cells: h.Cells})
}

// UnmarshalJSON parses the MarshalJSON format, validating that the cell
// count matches the dimensions (a nil cell array is accepted as all-zero).
func (h *Heatmap) UnmarshalJSON(data []byte) error {
	var raw heatmapJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.W < 0 || raw.H < 0 {
		return fmt.Errorf("metrics: heatmap with negative dimensions %dx%d", raw.W, raw.H)
	}
	if raw.Cells == nil {
		raw.Cells = make([]float64, raw.W*raw.H)
	}
	if len(raw.Cells) != raw.W*raw.H {
		return fmt.Errorf("metrics: heatmap %dx%d carries %d cells, want %d", raw.W, raw.H, len(raw.Cells), raw.W*raw.H)
	}
	h.W, h.H, h.Cells = raw.W, raw.H, raw.Cells
	return nil
}

// shades are the glyph ramp for ASCII heatmaps and sparklines.
var shades = []rune(" .:-=+*#%@")

// Render draws the heatmap as ASCII art, one glyph per cell, normalised to
// the maximum.
func (h *Heatmap) Render() string {
	max := h.Max()
	var b strings.Builder
	for y := 0; y < h.H; y++ {
		for x := 0; x < h.W; x++ {
			b.WriteRune(shade(h.At(x, y), max))
			b.WriteRune(' ')
		}
		b.WriteRune('\n')
	}
	return b.String()
}

func shade(v, max float64) rune {
	if max <= 0 {
		return shades[0]
	}
	idx := int(v / max * float64(len(shades)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(shades) {
		idx = len(shades) - 1
	}
	return shades[idx]
}

// Sparkline renders a series as a single line of glyphs, downsampled to
// width characters.
func Sparkline(s Series, width int) string {
	ds := s.Downsample(width)
	max := ds.Max()
	var b strings.Builder
	for _, v := range ds {
		b.WriteRune(shade(float64(v), float64(max)))
	}
	return b.String()
}

// AsciiPlot renders a series as a height x width scatter of '*', with axis
// annotations, for Figure 5-style queued-messages traces.
func AsciiPlot(s Series, width, height int) string {
	if len(s) == 0 || width <= 0 || height <= 0 {
		return "(empty series)\n"
	}
	ds := s.Downsample(width)
	max := ds.Max()
	if max == 0 {
		max = 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", len(ds)))
	}
	for x, v := range ds {
		y := height - 1 - v*(height-1)/max
		grid[y][x] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%6d ┤%s\n", max, string(grid[0]))
	for y := 1; y < height-1; y++ {
		fmt.Fprintf(&b, "%6s │%s\n", "", string(grid[y]))
	}
	fmt.Fprintf(&b, "%6d └%s\n", 0, strings.Repeat("─", len(ds)))
	fmt.Fprintf(&b, "%7s0%*d steps\n", "", len(ds)-1, len(s))
	return b.String()
}

// CSV renders rows of named columns as comma-separated text with a header,
// for piping experiment results into external plotting tools.
func CSV(header []string, rows [][]float64) string {
	var b strings.Builder
	b.WriteString(strings.Join(header, ","))
	b.WriteByte('\n')
	for _, row := range rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			if v == math.Trunc(v) && math.Abs(v) < 1e15 {
				fmt.Fprintf(&b, "%d", int64(v))
			} else {
				fmt.Fprintf(&b, "%g", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
