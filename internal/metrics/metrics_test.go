package metrics

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesBasics(t *testing.T) {
	s := Series{1, 5, 3, 5, 0}
	if s.Max() != 5 {
		t.Errorf("Max = %d", s.Max())
	}
	if s.Sum() != 14 {
		t.Errorf("Sum = %d", s.Sum())
	}
	if s.Mean() != 2.8 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.ArgMax() != 1 {
		t.Errorf("ArgMax = %d, want 1 (first max)", s.ArgMax())
	}
	var empty Series
	if empty.Max() != 0 || empty.Sum() != 0 || empty.Mean() != 0 || empty.ArgMax() != -1 {
		t.Error("empty series accessors wrong")
	}
}

func TestDownsample(t *testing.T) {
	s := make(Series, 100)
	for i := range s {
		s[i] = i
	}
	d := s.Downsample(10)
	if len(d) != 10 {
		t.Fatalf("len = %d, want 10", len(d))
	}
	for i := 1; i < len(d); i++ {
		if d[i] <= d[i-1] {
			t.Errorf("downsampled increasing series is not increasing: %v", d)
		}
	}
	// No-op cases.
	if got := s.Downsample(0); len(got) != 100 {
		t.Error("Downsample(0) should copy")
	}
	if got := s.Downsample(200); len(got) != 100 {
		t.Error("Downsample larger than series should copy")
	}
}

func TestPropertyDownsamplePreservesBounds(t *testing.T) {
	f := func(raw []uint8, w uint8) bool {
		s := make(Series, len(raw))
		for i, v := range raw {
			s[i] = int(v)
		}
		d := s.Downsample(int(w%50) + 1)
		if len(s) == 0 {
			return len(d) == 0
		}
		return d.Max() <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("N=%d Mean=%v", s.N, s.Mean)
	}
	if math.Abs(s.Std-2.138) > 0.01 {
		t.Errorf("Std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min=%v Max=%v", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Errorf("Median = %v", s.Median)
	}
	if s.GeometricMean <= 0 || s.GeometricMean >= s.Mean {
		t.Errorf("GeometricMean = %v (AM-GM violated?)", s.GeometricMean)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Error("empty summary wrong")
	}
	odd := Summarize([]float64{3, 1, 2})
	if odd.Median != 2 {
		t.Errorf("odd median = %v", odd.Median)
	}
}

func TestPropertySummaryInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) + 1 // strictly positive
		}
		s := Summarize(xs)
		if s.Min > s.Median || s.Median > s.Max {
			return false
		}
		if s.Mean < s.Min || s.Mean > s.Max {
			return false
		}
		// AM >= GM for positive samples.
		return s.GeometricMean <= s.Mean+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHeatmap(t *testing.T) {
	h := NewHeatmap(3, 2)
	h.Add(0, 0, 1)
	h.Add(2, 1, 5)
	h.Add(2, 1, 5)
	h.Add(99, 99, 100) // out of range: ignored
	if h.At(2, 1) != 10 {
		t.Errorf("At(2,1) = %v", h.At(2, 1))
	}
	if h.Max() != 10 {
		t.Errorf("Max = %v", h.Max())
	}
	if h.Total() != 11 {
		t.Errorf("Total = %v", h.Total())
	}
	out := h.Render()
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Errorf("Render has %d lines, want 2", lines)
	}
	if !strings.ContainsRune(out, '@') {
		t.Error("Render missing full-intensity glyph")
	}
}

func TestHeatmapImbalance(t *testing.T) {
	even := NewHeatmap(2, 2)
	for x := 0; x < 2; x++ {
		for y := 0; y < 2; y++ {
			even.Add(x, y, 4)
		}
	}
	if cv := even.ImbalanceCV(); cv != 0 {
		t.Errorf("even CV = %v, want 0", cv)
	}
	skew := NewHeatmap(2, 2)
	skew.Add(0, 0, 16)
	if cv := skew.ImbalanceCV(); cv <= 1 {
		t.Errorf("skew CV = %v, want > 1", cv)
	}
	var zero Heatmap
	zero.W, zero.H = 1, 1
	zero.Cells = []float64{0}
	if cv := zero.ImbalanceCV(); cv != 0 {
		t.Errorf("zero CV = %v", cv)
	}
}

func TestSparkline(t *testing.T) {
	s := Series{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	line := Sparkline(s, 5)
	if len([]rune(line)) != 5 {
		t.Fatalf("width = %d, want 5", len([]rune(line)))
	}
	runes := []rune(line)
	if runes[0] == runes[4] {
		t.Error("increasing series should use distinct glyphs at ends")
	}
}

func TestAsciiPlot(t *testing.T) {
	s := Series{0, 10, 20, 30, 20, 10, 0}
	out := AsciiPlot(s, 20, 8)
	if !strings.Contains(out, "*") {
		t.Error("plot missing data points")
	}
	if !strings.Contains(out, "30") {
		t.Error("plot missing max annotation")
	}
	if AsciiPlot(nil, 10, 5) == "" {
		t.Error("empty plot should explain itself")
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]string{"cores", "perf"}, [][]float64{{16, 0.5}, {64, 0.25}})
	want := "cores,perf\n16,0.5\n64,0.25\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}

func TestHeatmapJSONRoundTrip(t *testing.T) {
	h := NewHeatmap(3, 2)
	h.Add(0, 0, 1.5)
	h.Add(2, 1, 4)
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"w":3,"h":2,"cells":[1.5,0,0,0,0,4]}`
	if string(data) != want {
		t.Errorf("marshal = %s, want %s", data, want)
	}
	var back Heatmap
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, h) {
		t.Errorf("round trip = %+v, want %+v", back, *h)
	}
}

func TestHeatmapJSONValidation(t *testing.T) {
	var h Heatmap
	for _, src := range []string{
		`{"w":2,"h":2,"cells":[1]}`,  // cell count mismatch
		`{"w":-1,"h":2,"cells":[]}`,  // negative dimension
		`{"w":"x","h":2,"cells":[]}`, // wrong type
	} {
		if err := json.Unmarshal([]byte(src), &h); err == nil {
			t.Errorf("Unmarshal(%s) accepted, want error", src)
		}
	}
	// A nil cell array is an all-zero grid.
	if err := json.Unmarshal([]byte(`{"w":2,"h":1}`), &h); err != nil {
		t.Fatal(err)
	}
	if h.W != 2 || h.H != 1 || len(h.Cells) != 2 {
		t.Errorf("nil-cells heatmap = %+v", h)
	}
}

func TestSeriesJSON(t *testing.T) {
	s := Series{3, 1, 4}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "[3,1,4]" {
		t.Errorf("series marshal = %s", data)
	}
	var back Series
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Errorf("series round trip = %v", back)
	}
}
