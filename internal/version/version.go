// Package version holds the build identity stamped into release
// binaries via -ldflags:
//
//	go build -ldflags "-X hypersolve/internal/version.Version=v1.2.3 \
//	                   -X hypersolve/internal/version.Commit=abc1234" ./cmd/...
//
// Unstamped builds report "dev"/"unknown". The daemon and router
// surface it in /healthz, /v1/cluster and the hypersolve_build_info
// telemetry gauge; both binaries print it for -version.
package version

// Version is the semantic or CI-assigned build version.
var Version = "dev"

// Commit is the VCS revision the binary was built from.
var Commit = "unknown"

// String renders "version (commit)" for banners and -version output.
func String() string { return Version + " (" + Commit + ")" }
