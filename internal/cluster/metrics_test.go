package cluster

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"hypersolve/internal/telemetry"
)

// TestRouterMetricsAggregation scrapes the router's GET /metrics after real
// work has flowed through a two-shard fleet: the response must be valid
// Prometheus text carrying the router's own series plus every backend's
// series relabeled by shard — with one family header even when both shards
// export the same family.
func TestRouterMetricsAggregation(t *testing.T) {
	tc := newTestCluster(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	jobs := submitSpread(t, tc, ctx, 6)
	for _, job := range jobs {
		if _, err := tc.client.Wait(ctx, job.ID, 2*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(tc.server.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want Prometheus text exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// Router-own series present.
	for _, want := range []string{
		"# TYPE hypersolve_cluster_shards gauge",
		"hypersolve_cluster_shards 2",
		`hypersolve_cluster_backend_up{shard="1"`,
		`hypersolve_cluster_backend_up{shard="2"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("aggregated scrape missing %q", want)
		}
	}
	// Backend series relabeled per shard (labels render sorted, so shard
	// sits between role and state); both shards ran jobs, so both must
	// appear under the same family.
	for _, shard := range []string{`shard="1"`, `shard="2"`} {
		if !strings.Contains(body, `,`+shard+`,state="done"} 3`) {
			t.Errorf("aggregated scrape missing finished-jobs series for %s", shard)
		}
	}
	if !strings.Contains(body, "hypersolve_jobs_finished_total{backend=") {
		t.Error("backend series not labeled with backend URL")
	}
	if !strings.Contains(body, `role="active"`) {
		t.Error("backend series not labeled with role")
	}
	if n := strings.Count(body, "# TYPE hypersolve_jobs_finished_total counter"); n != 1 {
		t.Errorf("family header repeated %d times, want exactly 1 after the merge", n)
	}

	// The whole response must re-parse: the aggregate is itself valid
	// exposition text a downstream Prometheus can scrape.
	if fams := telemetry.ParseText(raw); len(fams) == 0 {
		t.Fatal("aggregated scrape parsed to zero families")
	}
}

// TestStandbyServesMetrics scrapes a standby node directly: the role gauge
// must read 0 and the scrape must stay valid while the node is read-only.
func TestStandbyServesMetrics(t *testing.T) {
	rs := newReplicatedShard(t, 1)
	resp, err := http.Get(rs.standbySrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("standby GET /metrics = %d, want 200", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "hypersolve_replication_role 0") {
		t.Fatalf("standby scrape missing role gauge 0:\n%s", raw)
	}
	if fams := telemetry.ParseText(raw); len(fams) == 0 {
		t.Fatal("standby scrape parsed to zero families")
	}
}
