// Package cluster shards the solve service's job space across several
// hypersolved daemons behind one entry point — the paper's fleet story. A
// Router fronts N shards, each a primary daemon with its own durable store
// and (optionally) a standby replica tailing the primary's WAL:
// submissions are partitioned over a consistent-hash ring, the assigned
// shard is encoded into the job ID ("s2-17" is job 17 on shard 2) so point
// reads and cancels route directly, and listings fan out to every shard and
// merge ordered by ID. service.Client is the inter-daemon transport, so the
// router inherits its 429 retry/backoff on submissions.
//
// Shards fail independently, and the router self-heals: a transport-level
// failure marks the endpoint degraded (skipped for placement, periodically
// re-probed), point reads fail over to the shard's standby, and a primary
// that stays down past a grace period has its standby promoted in place —
// the replica store goes read-write and re-runs whatever the dead primary
// left queued. A stale primary that later rejoins is demoted (fenced and
// re-synced) rather than allowed to split-brain the shard. Membership is
// dynamic: POST /v1/cluster/backends adds, drains or removes shards at
// runtime, and the ring moves only ~1/N of future placements per change
// while existing sharded IDs keep routing by their encoded shard.
//
// GET /v1/cluster reports per-shard reachability, roles, promotions, queue
// depth, job counts and the fleet's headline gauges (queue occupancy,
// steps/sec, replication lag). GET /metrics serves the router's own
// telemetry merged with every healthy backend's scrape, each series
// relabeled with its shard/role/backend — the same fan-out/merge pattern
// as the listing path, applied to the metrics plane.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hypersolve/internal/service"
	"hypersolve/internal/telemetry"
	"hypersolve/internal/tracelog"
	"hypersolve/internal/version"
)

// Sentinel errors of the routing layer; the HTTP handler maps them onto
// status codes (503, 502, 404, 409).
var (
	// ErrNoBackends means no backend accepted the call — every shard is
	// unreachable (the router's 503).
	ErrNoBackends = errors.New("cluster: no reachable backend")
	// ErrUnknownShard means the job ID names a shard this router does not
	// front (the router's 404).
	ErrUnknownShard = errors.New("cluster: no such shard")
	// ErrUnsharded means a bare sequence ID was addressed to the router; the
	// router cannot know which backend owns it.
	ErrUnsharded = errors.New("cluster: job id carries no shard (want s<shard>-<seq>)")
	// ErrNotDraining rejects removing a shard that was never drained: its
	// jobs would become unreachable mid-flight (the router's 409).
	ErrNotDraining = errors.New("cluster: shard must be drained before removal")
)

// Config shapes a Router.
type Config struct {
	// Backends are the primary daemon base URLs; Backends[i] serves shard
	// i+1 at startup (membership can change at runtime).
	Backends []string
	// Standbys pairs each shard with a replica daemon (same index as
	// Backends; "" or a missing tail entry leaves the shard unreplicated).
	// A standby serves failed-over reads immediately and is promoted to
	// primary when its primary stays down past PromoteAfter.
	Standbys []string
	// ProbeEvery is the cadence of the background health re-probe loop
	// (<= 0 selects 2s). Each endpoint's probe is jittered within the tick
	// so a large fleet is not hit by a synchronized probe wave. Degraded
	// backends also recover on any successful proxied call, so the loop
	// only bounds how long an idle router takes to notice a backend coming
	// back — and how fast failover fires.
	ProbeEvery time.Duration
	// ProbeTimeout bounds each per-backend health probe, independent of
	// any caller's context (<= 0 selects 1s).
	ProbeTimeout time.Duration
	// FailAfter is how many consecutive failed probes mark a primary down
	// for failover purposes (<= 0 selects 3). Routing degrades on the
	// first failure either way; FailAfter only gates promotion.
	FailAfter int
	// PromoteAfter is how long a primary must stay down (after FailAfter
	// probes) before its standby is promoted (<= 0 selects 10s). The grace
	// period is the router's protection against promoting through a
	// transient partition.
	PromoteAfter time.Duration
	// SubmitTimeout bounds each per-backend submission attempt, so one
	// hung backend cannot stall admission past the ring walk (<= 0
	// selects 15s).
	SubmitTimeout time.Duration
	// RingReplicas is the virtual-node count per shard on the placement
	// ring (<= 0 selects DefaultRingReplicas).
	RingReplicas int
	// HTTP is the transport shared by all backend clients; nil means
	// http.DefaultClient.
	HTTP *http.Client
	// Retry is the submission backoff policy applied per backend attempt
	// (see service.Retry); the zero value selects the client defaults.
	Retry service.Retry
	// Logger receives failover and membership transitions as structured
	// records; nil discards them.
	Logger *tracelog.Logger
	// Telemetry receives the router's own metrics (failovers, promotions,
	// spillovers, proxied streams, per-backend health). Nil allocates a
	// private registry. GET /metrics merges this with the backends'
	// scrapes.
	Telemetry *telemetry.Registry
}

// routerMetrics bundles the counters bumped on the routing paths.
type routerMetrics struct {
	promotions     *telemetry.Counter
	demotions      *telemetry.Counter
	readFailovers  *telemetry.Counter
	spillovers     *telemetry.Counter
	proxiedStreams *telemetry.Counter
	scrapeErrors   *telemetry.Counter
}

// endpoint is one daemon (a primary or a standby) plus the router's view of
// its health.
type endpoint struct {
	base   string
	client *service.Client
	// up mirrors the healthy flag into the router's telemetry registry,
	// labeled by shard and URL (bound in addShardLocked).
	up *telemetry.Gauge

	mu      sync.Mutex
	healthy bool
	lastErr string // failure that degraded it, "" when healthy
	// probeFails counts consecutive failed probes; downSince is stamped
	// when it first reaches the FailAfter threshold. Together they gate
	// promotion — routing health is the healthy flag alone.
	probeFails int
	downSince  time.Time
}

func (e *endpoint) setHealthy() {
	e.mu.Lock()
	e.healthy, e.lastErr = true, ""
	e.probeFails, e.downSince = 0, time.Time{}
	e.mu.Unlock()
	e.up.Set(1)
}

func (e *endpoint) setDegraded(err error) {
	e.mu.Lock()
	e.healthy, e.lastErr = false, err.Error()
	e.mu.Unlock()
	e.up.Set(0)
}

// probeFailed records one failed background probe, degrading the endpoint
// immediately and stamping the down clock once failAfter consecutive
// probes have failed.
func (e *endpoint) probeFailed(err error, failAfter int) {
	e.mu.Lock()
	e.healthy, e.lastErr = false, err.Error()
	if e.probeFails++; e.probeFails >= failAfter && e.downSince.IsZero() {
		e.downSince = time.Now()
	}
	e.mu.Unlock()
	e.up.Set(0)
}

func (e *endpoint) state() (healthy bool, lastErr string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.healthy, e.lastErr
}

func (e *endpoint) isHealthy() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.healthy
}

// downFor reports whether the endpoint has been down (failAfter consecutive
// failed probes) for at least grace.
func (e *endpoint) downFor(failAfter int, grace time.Duration) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.probeFails >= failAfter && !e.downSince.IsZero() && time.Since(e.downSince) >= grace
}

// shard is one partition of the job space: a primary endpoint, an optional
// standby, and the failover state between them.
type shard struct {
	id int

	mu      sync.Mutex
	primary *endpoint // current primary role
	standby *endpoint // nil when the shard is unreplicated
	// activeStandby routes reads and writes to the standby: set at
	// promotion, cleared when the healed old primary is demoted and the
	// roles swap.
	activeStandby bool
	// promoted records that a failover has happened on this shard (sticky,
	// for the cluster report).
	promoted bool
	// draining excludes the shard from new placements; reads keep routing.
	draining bool
}

// active returns the endpoint serving the shard right now.
func (s *shard) active() *endpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.activeStandby && s.standby != nil {
		return s.standby
	}
	return s.primary
}

// alternate returns the shard's other endpoint (nil when unreplicated) —
// the failover target for point reads.
func (s *shard) alternate() *endpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.standby == nil {
		return nil
	}
	if s.activeStandby {
		return s.primary
	}
	return s.standby
}

func (s *shard) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Router fronts a fleet of hypersolved daemons as one solve service. All
// methods are safe for concurrent use. Close stops the re-probe loop.
type Router struct {
	cfg Config

	mu     sync.RWMutex
	shards map[int]*shard
	ring   *ring
	nextID int // next shard ID to assign

	stop    chan struct{}
	stopped sync.Once
	done    chan struct{}

	metrics routerMetrics
}

// New builds a router over cfg.Backends (shard i+1 = Backends[i], paired
// with Standbys[i] when given) and starts its background re-probe loop.
// Endpoints start healthy: the first failed call degrades them, the probe
// loop and successful calls recover them.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("cluster: no backends configured")
	}
	if len(cfg.Standbys) > len(cfg.Backends) {
		return nil, errors.New("cluster: more standbys than backends")
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 3
	}
	if cfg.PromoteAfter <= 0 {
		cfg.PromoteAfter = 10 * time.Second
	}
	if cfg.SubmitTimeout <= 0 {
		cfg.SubmitTimeout = 15 * time.Second
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	r := &Router{
		cfg:    cfg,
		shards: make(map[int]*shard),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	r.registerMetrics()
	for i, base := range cfg.Backends {
		standby := ""
		if i < len(cfg.Standbys) {
			standby = cfg.Standbys[i]
		}
		if _, err := r.addShardLocked(base, standby); err != nil {
			return nil, err
		}
	}
	r.rebuildRingLocked()
	go r.probeLoop()
	return r, nil
}

// registerMetrics binds the router's own series. Counters survive shard
// membership churn; the per-backend up gauges are bound per endpoint in
// addShardLocked and removed with their shard.
func (r *Router) registerMetrics() {
	reg := r.cfg.Telemetry
	r.metrics = routerMetrics{
		promotions: reg.Counter("hypersolve_cluster_promotions_total",
			"Standby promotions performed by the router's failover machine."),
		demotions: reg.Counter("hypersolve_cluster_demotions_total",
			"Stale primaries demoted back to standby after healing."),
		readFailovers: reg.Counter("hypersolve_cluster_read_failovers_total",
			"Point reads, listings and event streams served by a shard's alternate endpoint after the active one failed."),
		spillovers: reg.Counter("hypersolve_cluster_submit_spillovers_total",
			"Submissions placed past their ring-assigned shard because it was degraded or refused."),
		proxiedStreams: reg.Counter("hypersolve_cluster_proxied_streams_total",
			"SSE event streams proxied through the router to a backend."),
		scrapeErrors: reg.Counter("hypersolve_cluster_scrape_errors_total",
			"Backend /metrics scrapes that failed during aggregation."),
	}
	reg.GaugeFunc("hypersolve_cluster_shards",
		"Shards currently fronted by the router.",
		func() float64 { return float64(r.Shards()) })
	reg.Gauge("hypersolve_build_info",
		"Build identity of this process; the value is always 1, the identity lives in the labels.",
		telemetry.Label{Key: "version", Value: version.Version},
		telemetry.Label{Key: "commit", Value: version.Commit}).Set(1)
}

// upGauge binds the per-backend reachability series for one endpoint.
func (r *Router) upGauge(shardID int, base string) *telemetry.Gauge {
	return r.cfg.Telemetry.Gauge("hypersolve_cluster_backend_up",
		"Per-backend reachability as seen by the router (1 healthy, 0 degraded).",
		telemetry.Label{Key: "shard", Value: strconv.Itoa(shardID)},
		telemetry.Label{Key: "url", Value: base})
}

// newEndpoint normalises a base URL into an endpoint, checking it against
// every URL already in the fleet (two shards on one store would double-run
// jobs). Callers hold r.mu.
func (r *Router) newEndpoint(base string, who string) (*endpoint, error) {
	base = strings.TrimSuffix(strings.TrimSpace(base), "/")
	if base == "" {
		return nil, fmt.Errorf("cluster: %s has an empty URL", who)
	}
	for _, sh := range r.shards {
		for _, e := range []*endpoint{sh.primary, sh.standby} {
			if e != nil && e.base == base {
				return nil, fmt.Errorf("cluster: duplicate backend %s (two shards on one store would double-run jobs)", base)
			}
		}
	}
	return &endpoint{
		base:    base,
		client:  &service.Client{Base: base, HTTP: r.cfg.HTTP, Retry: r.cfg.Retry},
		healthy: true,
	}, nil
}

// addShardLocked registers a new shard under the next free ID. Callers
// hold r.mu (or own the router exclusively, as New does) and rebuild the
// ring afterwards.
func (r *Router) addShardLocked(primary, standby string) (int, error) {
	p, err := r.newEndpoint(primary, fmt.Sprintf("shard %d primary", r.nextID+1))
	if err != nil {
		return 0, err
	}
	sh := &shard{id: r.nextID + 1, primary: p}
	if strings.TrimSpace(standby) != "" {
		// Register the primary before validating the standby so the
		// duplicate check sees it.
		r.shards[sh.id] = sh
		s, err := r.newEndpoint(standby, fmt.Sprintf("shard %d standby", sh.id))
		if err != nil {
			delete(r.shards, sh.id)
			return 0, err
		}
		sh.standby = s
	}
	r.shards[sh.id] = sh
	r.nextID = sh.id
	sh.primary.up = r.upGauge(sh.id, sh.primary.base)
	sh.primary.up.Set(1)
	if sh.standby != nil {
		sh.standby.up = r.upGauge(sh.id, sh.standby.base)
		sh.standby.up.Set(1)
	}
	return sh.id, nil
}

// rebuildRingLocked recomputes the placement ring over the non-draining
// shards. Callers hold r.mu.
func (r *Router) rebuildRingLocked() {
	ids := make([]int, 0, len(r.shards))
	for id, sh := range r.shards {
		if !sh.isDraining() {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	r.ring = newRing(ids, r.cfg.RingReplicas)
}

// Close stops the background re-probe loop.
func (r *Router) Close() {
	r.stopped.Do(func() { close(r.stop) })
	<-r.done
}

// Shards returns the number of shards fronted by the router.
func (r *Router) Shards() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.shards)
}

func (r *Router) log() *tracelog.Logger { return r.cfg.Logger }

// shardByID resolves a shard number under the read lock.
func (r *Router) shardByID(id int) *shard {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.shards[id]
}

// shardList snapshots the shards ordered by ID.
func (r *Router) shardList() []*shard {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*shard, 0, len(r.shards))
	for _, sh := range r.shards {
		out = append(out, sh)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].id < out[k].id })
	return out
}

func (r *Router) probeLoop() {
	defer close(r.done)
	tick := time.NewTicker(r.cfg.ProbeEvery)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			r.probeJittered()
			r.reconcile()
		}
	}
}

// probeJittered probes every endpoint in the fleet, each delayed by a small
// random jitter so the fleet never sees a synchronized probe wave, each
// bounded by ProbeTimeout on a background context — a cancelled or slow
// caller elsewhere cannot starve health detection.
func (r *Router) probeJittered() {
	maxJitter := r.cfg.ProbeEvery / 5
	if maxJitter > 200*time.Millisecond {
		maxJitter = 200 * time.Millisecond
	}
	var wg sync.WaitGroup
	for _, sh := range r.shardList() {
		sh.mu.Lock()
		eps := []*endpoint{sh.primary}
		if sh.standby != nil {
			eps = append(eps, sh.standby)
		}
		sh.mu.Unlock()
		for _, ep := range eps {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if maxJitter > 0 {
					select {
					case <-r.stop:
						return
					case <-time.After(time.Duration(rand.Int64N(int64(maxJitter)))):
					}
				}
				ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeTimeout)
				defer cancel()
				if _, err := ep.client.Health(ctx); err != nil {
					ep.probeFailed(err, r.cfg.FailAfter)
					return
				}
				ep.setHealthy()
			}()
		}
	}
	wg.Wait()
}

// reconcile drives the failover state machine after each probe round:
//
//   - A shard whose primary has been down for FailAfter consecutive probes
//     plus the PromoteAfter grace period, with a healthy standby, has the
//     standby promoted: its replica store goes read-write (bumping the
//     fencing epoch) and re-runs whatever the dead primary left queued.
//   - A promoted shard whose old primary is reachable again demotes it:
//     the stale node discards its divergent tail, re-syncs from the new
//     primary, and becomes the shard's standby — roles swap, no
//     split-brain.
func (r *Router) reconcile() {
	for _, sh := range r.shardList() {
		sh.mu.Lock()
		if sh.standby == nil {
			sh.mu.Unlock()
			continue
		}
		switch {
		case !sh.activeStandby:
			primary, standby := sh.primary, sh.standby
			sh.mu.Unlock()
			if !primary.downFor(r.cfg.FailAfter, r.cfg.PromoteAfter) || !standby.isHealthy() {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeTimeout)
			res, err := standby.client.Promote(ctx)
			cancel()
			if err != nil {
				r.log().Warn("shard promotion failed", tracelog.A("shard", sh.id),
					tracelog.A("standby", standby.base), tracelog.A("error", err.Error()))
				continue
			}
			sh.mu.Lock()
			sh.activeStandby, sh.promoted = true, true
			sh.mu.Unlock()
			r.metrics.promotions.Inc()
			r.log().Info("shard failed over", tracelog.A("shard", sh.id),
				tracelog.A("standby", standby.base), tracelog.A("epoch", res.Epoch),
				tracelog.A("requeued", len(res.Requeued)))
		default:
			// Promoted: heal the old primary once it answers probes again.
			oldPrimary, newPrimary := sh.primary, sh.standby
			sh.mu.Unlock()
			if !oldPrimary.isHealthy() {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeTimeout)
			_, err := oldPrimary.client.Demote(ctx, newPrimary.base)
			cancel()
			if err != nil {
				r.log().Warn("stale primary demotion failed", tracelog.A("shard", sh.id),
					tracelog.A("primary", oldPrimary.base), tracelog.A("error", err.Error()))
				continue
			}
			sh.mu.Lock()
			sh.primary, sh.standby = newPrimary, oldPrimary
			sh.activeStandby = false
			sh.mu.Unlock()
			r.metrics.demotions.Inc()
			r.log().Info("shard healed", tracelog.A("shard", sh.id),
				tracelog.A("demoted", oldPrimary.base), tracelog.A("primary", newPrimary.base))
		}
	}
}

// probe checks every endpoint's /healthz concurrently (each attempt bounded
// by ProbeTimeout), updating the degraded flags, and returns both the active
// and alternate endpoints' reports per shard (zero Health where unreachable
// or unreplicated), keyed by position in shardList. The alternate's report
// carries the standby's replication lag. When the parent context is
// cancelled mid-probe the remaining verdicts are discarded rather than
// recorded: an impatient /v1/cluster caller must not degrade healthy
// backends.
func (r *Router) probe(parent context.Context) (active, standby []service.Health) {
	shards := r.shardList()
	active = make([]service.Health, len(shards))
	standby = make([]service.Health, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		probeOne := func(ep *endpoint, record *service.Health) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(parent, r.cfg.ProbeTimeout)
			defer cancel()
			h, err := ep.client.Health(ctx)
			if err != nil {
				if parent.Err() == nil {
					ep.setDegraded(err)
				}
				return
			}
			ep.setHealthy()
			*record = h
		}
		act, alt := sh.active(), sh.alternate()
		wg.Add(1)
		go probeOne(act, &active[i])
		if alt != nil {
			wg.Add(1)
			go probeOne(alt, &standby[i])
		}
	}
	wg.Wait()
	return active, standby
}

// Submit places the spec on its ring-assigned shard and returns the
// accepted job with its sharded ID. When the assigned shard is degraded or
// fails at the transport level, placement walks the ring to the next
// distinct shard — the ID records where the job actually landed, so
// spillover placement stays fully addressable. Draining shards are skipped
// entirely. Each backend attempt is bounded by SubmitTimeout, so one hung
// backend cannot stall admission past the walk. A backend that answers
// with an HTTP verdict (400 bad spec, 429 after the client's retries, 503)
// ends the walk: the backend spoke for the cluster.
func (r *Router) Submit(ctx context.Context, spec service.JobSpec) (service.Job, error) {
	data, err := json.Marshal(spec)
	if err != nil {
		return service.Job{}, err
	}
	r.mu.RLock()
	ring := r.ring
	r.mu.RUnlock()
	seq := ring.sequence(data)
	// The ring's first live choice, for spillover accounting: landing
	// anywhere else means placement walked past the assigned shard.
	firstChoice := 0
	for _, sid := range seq {
		if sh := r.shardByID(sid); sh != nil && !sh.isDraining() {
			firstChoice = sid
			break
		}
	}
	// First pass: healthy shards in ring order. Second pass: shards that
	// were already degraded at entry — they may have just come back, and
	// trying beats failing. Shards that failed during the first pass are
	// not retried: they cannot have recovered in microseconds, and
	// re-paying their transport timeout would double outage latency.
	tried := make(map[int]bool, len(seq))
	var lastTransportErr error
	for _, wantHealthy := range []bool{true, false} {
		for _, sid := range seq {
			sh := r.shardByID(sid)
			if sh == nil || sh.isDraining() || tried[sid] {
				continue
			}
			ep := sh.active()
			if ep.isHealthy() != wantHealthy {
				continue
			}
			tried[sid] = true
			attemptCtx, cancel := context.WithTimeout(ctx, r.cfg.SubmitTimeout)
			job, err := ep.client.Submit(attemptCtx, spec)
			cancel()
			if err == nil {
				ep.setHealthy()
				if sh.id != firstChoice {
					r.metrics.spillovers.Inc()
				}
				job.ID.Shard = sh.id
				return job, nil
			}
			if _, spoke := service.ErrorStatus(err); spoke {
				return service.Job{}, err
			}
			if ctx.Err() != nil {
				return service.Job{}, err
			}
			ep.setDegraded(err)
			lastTransportErr = err
		}
	}
	if lastTransportErr != nil {
		return service.Job{}, fmt.Errorf("%w: %v", ErrNoBackends, lastTransportErr)
	}
	return service.Job{}, ErrNoBackends
}

// route resolves a sharded ID to its shard.
func (r *Router) route(id service.JobID) (*shard, error) {
	if !id.Sharded() {
		return nil, fmt.Errorf("%w: %q", ErrUnsharded, id)
	}
	sh := r.shardByID(id.Shard)
	if sh == nil {
		return nil, fmt.Errorf("%w: %q names shard %d", ErrUnknownShard, id, id.Shard)
	}
	return sh, nil
}

// getFrom performs a point read against one endpoint, maintaining its
// health flags.
func getFrom(ctx context.Context, ep *endpoint, seq int64) (service.Job, error) {
	job, err := ep.client.Get(ctx, service.JobID{Seq: seq})
	if err != nil {
		if _, spoke := service.ErrorStatus(err); !spoke && ctx.Err() == nil {
			ep.setDegraded(err)
		}
		return service.Job{}, err
	}
	ep.setHealthy()
	return job, nil
}

// Get fetches one job from the shard encoded in its ID. A transport-level
// failure reaching the shard's active endpoint fails over to its standby
// (whose replica store serves the same records), so a freshly dead primary
// answers reads immediately — promotion can take its grace period without
// blinding the fleet.
func (r *Router) Get(ctx context.Context, id service.JobID) (service.Job, error) {
	sh, err := r.route(id)
	if err != nil {
		return service.Job{}, err
	}
	job, err := getFrom(ctx, sh.active(), id.Seq)
	if err != nil {
		if _, spoke := service.ErrorStatus(err); !spoke && ctx.Err() == nil {
			if alt := sh.alternate(); alt != nil {
				if job, altErr := getFrom(ctx, alt, id.Seq); altErr == nil {
					r.metrics.readFailovers.Inc()
					job.ID.Shard = sh.id
					return job, nil
				}
			}
		}
		return service.Job{}, err
	}
	job.ID.Shard = sh.id
	return job, nil
}

// Trace fetches one job's span timeline from the shard encoded in its ID,
// with the same standby read-failover as Get: the timeline rides the
// replication feed, so a standby serves it (plus its own replica_apply
// spans) while the primary is dead.
func (r *Router) Trace(ctx context.Context, id service.JobID) (service.JobTrace, error) {
	sh, err := r.route(id)
	if err != nil {
		return service.JobTrace{}, err
	}
	traceFrom := func(ep *endpoint) (service.JobTrace, error) {
		jt, err := ep.client.Trace(ctx, service.JobID{Seq: id.Seq})
		if err != nil {
			if _, spoke := service.ErrorStatus(err); !spoke && ctx.Err() == nil {
				ep.setDegraded(err)
			}
			return service.JobTrace{}, err
		}
		ep.setHealthy()
		return jt, nil
	}
	jt, err := traceFrom(sh.active())
	if err != nil {
		if _, spoke := service.ErrorStatus(err); !spoke && ctx.Err() == nil {
			if alt := sh.alternate(); alt != nil {
				if jt, altErr := traceFrom(alt); altErr == nil {
					r.metrics.readFailovers.Inc()
					jt.JobID.Shard = sh.id
					return jt, nil
				}
			}
		}
		return service.JobTrace{}, err
	}
	jt.JobID.Shard = sh.id
	return jt, nil
}

// Cancel stops a job on the shard encoded in its ID. Cancels do not fail
// over: a standby is read-only, and a cancel applied to a replica view
// would be lost at promotion anyway.
func (r *Router) Cancel(ctx context.Context, id service.JobID) (service.Job, error) {
	sh, err := r.route(id)
	if err != nil {
		return service.Job{}, err
	}
	ep := sh.active()
	job, err := ep.client.Cancel(ctx, service.JobID{Seq: id.Seq})
	if err != nil {
		if _, spoke := service.ErrorStatus(err); !spoke && ctx.Err() == nil {
			ep.setDegraded(err)
		}
		return service.Job{}, err
	}
	ep.setHealthy()
	job.ID.Shard = sh.id
	return job, nil
}

// openEvents opens the owning shard's raw SSE stream for a job (see
// service.Client.OpenEvents), returning the stream plus the endpoint
// serving it so the proxy can degrade it on a mid-stream death. A
// transport-level failure to open fails over to the shard's standby, which
// can replay terminal jobs' streams (live streams need the primary).
func (r *Router) openEvents(ctx context.Context, id service.JobID) (io.ReadCloser, *endpoint, error) {
	sh, err := r.route(id)
	if err != nil {
		return nil, nil, err
	}
	open := func(ep *endpoint) (io.ReadCloser, error) {
		body, err := ep.client.OpenEvents(ctx, service.JobID{Seq: id.Seq})
		if err != nil {
			if _, spoke := service.ErrorStatus(err); !spoke && ctx.Err() == nil {
				ep.setDegraded(err)
			}
			return nil, err
		}
		ep.setHealthy()
		return body, nil
	}
	ep := sh.active()
	body, err := open(ep)
	if err != nil {
		if _, spoke := service.ErrorStatus(err); !spoke && ctx.Err() == nil {
			if alt := sh.alternate(); alt != nil {
				if body, altErr := open(alt); altErr == nil {
					r.metrics.readFailovers.Inc()
					return body, alt, nil
				}
			}
		}
		return nil, nil, err
	}
	return body, ep, nil
}

// Watch streams a job's progress events from its owning shard, with the
// same contract as service.Client.Watch — the library-level counterpart of
// the HTTP proxy.
func (r *Router) Watch(ctx context.Context, id service.JobID, fn func(service.Progress)) error {
	body, _, err := r.openEvents(ctx, id)
	if err != nil {
		return err
	}
	defer body.Close()
	return service.DecodeEvents(ctx, body, fn)
}

// List fans the listing out to every shard concurrently and merges the
// results ordered by ID (shard, then sequence). A shard whose active
// endpoint fails at the transport level is retried against its standby;
// only a shard with no reachable endpoint is skipped — complete reports
// false and the listing is the union of the reachable shards. Only when
// every shard fails does List return an error.
func (r *Router) List(ctx context.Context, states ...service.State) (jobs []service.Job, complete bool, err error) {
	shards := r.shardList()
	type result struct {
		jobs []service.Job
		err  error
	}
	results := make([]result, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			listFrom := func(ep *endpoint) ([]service.Job, error) {
				got, err := ep.client.List(ctx, states...)
				if err != nil {
					if _, spoke := service.ErrorStatus(err); !spoke && ctx.Err() == nil {
						ep.setDegraded(err)
					}
					return nil, err
				}
				ep.setHealthy()
				return got, nil
			}
			got, err := listFrom(sh.active())
			if err != nil {
				if _, spoke := service.ErrorStatus(err); !spoke && ctx.Err() == nil {
					if alt := sh.alternate(); alt != nil {
						if got, err = listFrom(alt); err == nil {
							r.metrics.readFailovers.Inc()
						}
					}
				}
			}
			if err != nil {
				results[i] = result{err: err}
				return
			}
			for k := range got {
				got[k].ID.Shard = sh.id
			}
			results[i] = result{jobs: got}
		}()
	}
	wg.Wait()

	// Non-nil even when empty: a single daemon's GET /v1/jobs returns [],
	// and the router must match that wire contract, not emit null.
	jobs = make([]service.Job, 0)
	complete = true
	var firstErr error
	reachable := 0
	for _, res := range results {
		if res.err != nil {
			complete = false
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		reachable++
		jobs = append(jobs, res.jobs...)
	}
	if reachable == 0 {
		return nil, false, fmt.Errorf("%w: %v", ErrNoBackends, firstErr)
	}
	// Backends return their jobs ID-ordered; the merge re-sorts the
	// concatenation so the router's ordering contract matches a single
	// daemon's: ascending by (shard, seq).
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID.Less(jobs[k].ID) })
	return jobs, complete, nil
}

// AddShard registers a new shard (primary plus optional standby) and
// rebuilds the placement ring: only ~1/N of future placements move to the
// new shard; existing sharded IDs keep routing unchanged.
func (r *Router) AddShard(primary, standby string) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id, err := r.addShardLocked(primary, standby)
	if err != nil {
		return 0, err
	}
	r.rebuildRingLocked()
	r.log().Info("shard added", tracelog.A("shard", id), tracelog.A("primary", primary))
	return id, nil
}

// DrainShard excludes a shard from new placements (drain=true) or restores
// it (drain=false); reads and cancels keep routing either way. Draining is
// the prerequisite for removal.
func (r *Router) DrainShard(id int, drain bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	sh := r.shards[id]
	if sh == nil {
		return fmt.Errorf("%w: shard %d", ErrUnknownShard, id)
	}
	sh.mu.Lock()
	sh.draining = drain
	sh.mu.Unlock()
	r.rebuildRingLocked()
	r.log().Info("shard drain toggled", tracelog.A("shard", id), tracelog.A("draining", drain))
	return nil
}

// RemoveShard unregisters a drained shard. Its sharded IDs stop resolving
// through this router, so removal demands an explicit prior drain — the
// operator's acknowledgement that the shard's history has been retired or
// migrated.
func (r *Router) RemoveShard(id int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	sh := r.shards[id]
	if sh == nil {
		return fmt.Errorf("%w: shard %d", ErrUnknownShard, id)
	}
	if !sh.isDraining() {
		return fmt.Errorf("%w: shard %d", ErrNotDraining, id)
	}
	delete(r.shards, id)
	// Retire the shard's reachability series with it; a removed backend
	// frozen at its last value would read as a live scrape target.
	sh.mu.Lock()
	for _, ep := range []*endpoint{sh.primary, sh.standby} {
		if ep != nil {
			r.cfg.Telemetry.Remove("hypersolve_cluster_backend_up",
				telemetry.Label{Key: "shard", Value: strconv.Itoa(sh.id)},
				telemetry.Label{Key: "url", Value: ep.base})
		}
	}
	sh.mu.Unlock()
	r.rebuildRingLocked()
	r.log().Info("shard removed", tracelog.A("shard", id))
	return nil
}

// MemberSpec is one shard in a membership config (the -route-config file
// reloaded on SIGHUP).
type MemberSpec struct {
	Primary string `json:"primary"`
	Standby string `json:"standby,omitempty"`
}

// ApplyMembership reconciles the fleet against a full desired member list
// (the SIGHUP config-reload path): primaries present in specs but not in
// the fleet are added (with their standbys); shards whose primary URL is
// absent from specs are drained — not removed, so their jobs stay
// readable until an operator explicitly retires them. Shards are matched
// by primary URL (either role's URL matches a promoted shard). It returns
// the added and drained shard IDs.
func (r *Router) ApplyMembership(specs []MemberSpec) (added, drained []int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	want := make(map[string]bool, len(specs))
	for _, m := range specs {
		want[strings.TrimSuffix(strings.TrimSpace(m.Primary), "/")] = true
	}
	// Drain shards no longer in the desired set.
	for id, sh := range r.shards {
		sh.mu.Lock()
		present := want[sh.primary.base] || (sh.standby != nil && want[sh.standby.base])
		if !present && !sh.draining {
			sh.draining = true
			drained = append(drained, id)
		}
		sh.mu.Unlock()
	}
	// Add new shards.
	known := func(base string) bool {
		base = strings.TrimSuffix(strings.TrimSpace(base), "/")
		for _, sh := range r.shards {
			if sh.primary.base == base || (sh.standby != nil && sh.standby.base == base) {
				return true
			}
		}
		return false
	}
	for _, m := range specs {
		if known(m.Primary) {
			continue
		}
		id, aerr := r.addShardLocked(m.Primary, m.Standby)
		if aerr != nil {
			err = aerr
			break
		}
		added = append(added, id)
	}
	r.rebuildRingLocked()
	sort.Ints(added)
	sort.Ints(drained)
	if len(added) > 0 || len(drained) > 0 {
		r.log().Info("membership reloaded",
			tracelog.A("added", fmt.Sprint(added)), tracelog.A("drained", fmt.Sprint(drained)))
	}
	return added, drained, err
}

// BackendHealth is one shard's row in the cluster report.
type BackendHealth struct {
	// Shard is the shard number (job IDs s<Shard>-…).
	Shard int `json:"shard"`
	// Base is the shard's active endpoint URL — the daemon serving its
	// reads and writes right now.
	Base string `json:"base"`
	// Healthy reports the active endpoint's reachability as of this probe.
	Healthy bool `json:"healthy"`
	// Error is the failure that degraded the active endpoint.
	Error string `json:"error,omitempty"`
	// Standby is the shard's other endpoint (the replica, or the healed
	// old primary after a failover); StandbyHealthy its reachability.
	Standby        string `json:"standby,omitempty"`
	StandbyHealthy bool   `json:"standby_healthy,omitempty"`
	// Promoted reports that this shard has failed over at least once.
	Promoted bool `json:"promoted,omitempty"`
	// Draining marks the shard excluded from new placements.
	Draining bool `json:"draining,omitempty"`
	// QueueDepth, Workers and Jobs mirror the active endpoint's own
	// /healthz report; zero/empty when it is unreachable.
	QueueDepth int                   `json:"queue_depth,omitempty"`
	Workers    int                   `json:"workers,omitempty"`
	Jobs       map[service.State]int `json:"jobs,omitempty"`
	// Queued and StepsPerSec are the active endpoint's headline gauges:
	// live admission-queue occupancy and aggregate simulator stepping rate.
	Queued      int     `json:"queued,omitempty"`
	StepsPerSec float64 `json:"steps_per_sec,omitempty"`
	// ReplicationLag is how many records the shard's standby trails its
	// primary by, from the standby's own health report; absent when the
	// shard is unreplicated or the standby is unreachable.
	ReplicationLag int64 `json:"replication_lag,omitempty"`
}

// Health is the /v1/cluster payload: the fleet verdict plus one row per
// shard.
type Health struct {
	// Status is "ok" when every shard's active endpoint is reachable,
	// "degraded" when some are, and "down" when none is.
	Status string `json:"status"`
	// Shards is the configured shard count; Healthy of them answered.
	Shards  int                   `json:"shards"`
	Healthy int                   `json:"healthy"`
	Jobs    map[service.State]int `json:"jobs,omitempty"`
	// Queued and StepsPerSec sum the healthy shards' headline gauges;
	// MaxReplicationLag is the worst standby lag across the fleet.
	Queued            int             `json:"queued,omitempty"`
	StepsPerSec       float64         `json:"steps_per_sec,omitempty"`
	MaxReplicationLag int64           `json:"max_replication_lag,omitempty"`
	Backends          []BackendHealth `json:"backends"`
	// Version is the router binary's build identity (internal/version).
	Version string `json:"version,omitempty"`
}

// Health probes every endpoint live (bounded by ProbeTimeout each) and
// reports per-shard reachability, roles, queue depth and aggregated job
// counts. The probe updates the routing health state, so reading
// /v1/cluster also heals backends that have come back.
func (r *Router) Health(ctx context.Context) Health {
	reports, standbyReports := r.probe(ctx)
	shards := r.shardList()

	out := Health{Shards: len(shards), Jobs: make(map[service.State]int), Version: version.String()}
	for i, sh := range shards {
		sh.mu.Lock()
		promoted, draining := sh.promoted, sh.draining
		sh.mu.Unlock()
		active, alt := sh.active(), sh.alternate()
		healthy, lastErr := active.state()
		row := BackendHealth{
			Shard:    sh.id,
			Base:     active.base,
			Healthy:  healthy,
			Error:    lastErr,
			Promoted: promoted,
			Draining: draining,
		}
		if alt != nil {
			row.Standby = alt.base
			row.StandbyHealthy, _ = alt.state()
			if row.StandbyHealthy {
				row.ReplicationLag = standbyReports[i].ReplicationLag
				if row.ReplicationLag > out.MaxReplicationLag {
					out.MaxReplicationLag = row.ReplicationLag
				}
			}
		}
		if healthy {
			out.Healthy++
			row.QueueDepth = reports[i].QueueDepth
			row.Workers = reports[i].Workers
			row.Jobs = reports[i].Jobs
			row.Queued = reports[i].Queued
			row.StepsPerSec = reports[i].StepsPerSec
			out.Queued += row.Queued
			out.StepsPerSec += row.StepsPerSec
			for st, n := range reports[i].Jobs {
				out.Jobs[st] += n
			}
		}
		out.Backends = append(out.Backends, row)
	}
	switch out.Healthy {
	case len(shards):
		out.Status = "ok"
	case 0:
		out.Status = "down"
	default:
		out.Status = "degraded"
	}
	return out
}

// Metrics assembles the fleet-wide scrape: the router's own registry plus
// every healthy endpoint's /metrics, fetched concurrently (each bounded by
// ProbeTimeout), with each backend series relabeled by shard, role and
// backend URL before the merge — the listing path's fan-out/merge applied
// to the metrics plane. Unreachable endpoints are skipped (and counted in
// hypersolve_cluster_scrape_errors_total when a fetch fails outright), so a
// dead shard degrades the aggregate instead of failing it.
func (r *Router) Metrics(ctx context.Context) []telemetry.Family {
	shards := r.shardList()
	// Two slots per shard: active then alternate, so merge input order is
	// deterministic regardless of goroutine completion order.
	scraped := make([][]telemetry.Family, 2*len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		scrapeOne := func(slot int, shardID int, ep *endpoint, role string) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, r.cfg.ProbeTimeout)
			defer cancel()
			raw, err := ep.client.RawMetrics(cctx)
			if err != nil {
				r.metrics.scrapeErrors.Inc()
				return
			}
			fams := telemetry.ParseText(raw)
			telemetry.AddLabels(fams,
				telemetry.Label{Key: "shard", Value: strconv.Itoa(shardID)},
				telemetry.Label{Key: "role", Value: role},
				telemetry.Label{Key: "backend", Value: ep.base})
			scraped[slot] = fams
		}
		for k, ep := range []*endpoint{sh.active(), sh.alternate()} {
			if ep == nil || !ep.isHealthy() {
				continue
			}
			role := "active"
			if k == 1 {
				role = "standby"
			}
			wg.Add(1)
			go scrapeOne(2*i+k, sh.id, ep, role)
		}
	}
	wg.Wait()
	groups := [][]telemetry.Family{r.cfg.Telemetry.Families()}
	for _, fams := range scraped {
		if fams != nil {
			groups = append(groups, fams)
		}
	}
	return telemetry.MergeFamilies(groups...)
}
