// Package cluster shards the solve service's job space across several
// hypersolved daemons behind one entry point — the paper's fleet story. A
// Router fronts N backend daemons, each with its own durable store:
// submissions are hash-partitioned over the healthy backends, the assigned
// shard is encoded into the job ID ("s2-17" is job 17 on shard 2) so
// point reads and cancels route directly, and listings fan out to every
// backend and merge ordered by ID. service.Client is the inter-daemon
// transport, so the router inherits its 429 retry/backoff on submissions.
//
// Backends fail independently: a transport-level failure marks the backend
// degraded (skipped for placement, periodically re-probed) instead of
// failing the router, and reads served by the surviving backends keep
// working. GET /v1/cluster reports per-backend reachability, queue depth
// and job counts.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"hypersolve/internal/service"
)

// Sentinel errors of the routing layer; the HTTP handler maps them onto
// status codes (503, 502, 404).
var (
	// ErrNoBackends means no backend accepted the call — every shard is
	// unreachable (the router's 503).
	ErrNoBackends = errors.New("cluster: no reachable backend")
	// ErrUnknownShard means the job ID names a shard this router does not
	// front (the router's 404).
	ErrUnknownShard = errors.New("cluster: no such shard")
	// ErrUnsharded means a bare sequence ID was addressed to the router; the
	// router cannot know which backend owns it.
	ErrUnsharded = errors.New("cluster: job id carries no shard (want s<shard>-<seq>)")
)

// Config shapes a Router.
type Config struct {
	// Backends are the daemon base URLs; Backends[i] serves shard i+1.
	Backends []string
	// ProbeEvery is the cadence of the background health re-probe loop
	// (<= 0 selects 2s). Degraded backends also recover on any successful
	// proxied call, so the loop only bounds how long an idle router takes
	// to notice a backend coming back.
	ProbeEvery time.Duration
	// ProbeTimeout bounds each per-backend health probe (<= 0 selects 1s).
	ProbeTimeout time.Duration
	// HTTP is the transport shared by all backend clients; nil means
	// http.DefaultClient.
	HTTP *http.Client
	// Retry is the submission backoff policy applied per backend attempt
	// (see service.Retry); the zero value selects the client defaults.
	Retry service.Retry
}

// backend is one shard: its client plus the router's view of its health.
type backend struct {
	shard  int // 1-based
	base   string
	client *service.Client

	mu      sync.Mutex
	healthy bool
	lastErr string // transport error that degraded it, "" when healthy
}

func (b *backend) setHealthy() {
	b.mu.Lock()
	b.healthy, b.lastErr = true, ""
	b.mu.Unlock()
}

func (b *backend) setDegraded(err error) {
	b.mu.Lock()
	b.healthy, b.lastErr = false, err.Error()
	b.mu.Unlock()
}

func (b *backend) state() (healthy bool, lastErr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy, b.lastErr
}

// Router fronts a fleet of hypersolved daemons as one solve service. All
// methods are safe for concurrent use. Close stops the re-probe loop.
type Router struct {
	cfg      Config
	backends []*backend
	stop     chan struct{}
	stopped  sync.Once
	done     chan struct{}
}

// New builds a router over cfg.Backends (shard i+1 = Backends[i]) and
// starts its background re-probe loop. Backends start healthy: the first
// failed call degrades them, the probe loop and successful calls recover
// them.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("cluster: no backends configured")
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	seen := make(map[string]bool, len(cfg.Backends))
	r := &Router{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	for i, base := range cfg.Backends {
		base = strings.TrimSuffix(strings.TrimSpace(base), "/")
		if base == "" {
			return nil, fmt.Errorf("cluster: backend %d has an empty URL", i+1)
		}
		if seen[base] {
			return nil, fmt.Errorf("cluster: duplicate backend %s (two shards on one store would double-run jobs)", base)
		}
		seen[base] = true
		r.backends = append(r.backends, &backend{
			shard:   i + 1,
			base:    base,
			client:  &service.Client{Base: base, HTTP: cfg.HTTP, Retry: cfg.Retry},
			healthy: true,
		})
	}
	go r.probeLoop()
	return r, nil
}

// Close stops the background re-probe loop.
func (r *Router) Close() {
	r.stopped.Do(func() { close(r.stop) })
	<-r.done
}

// Shards returns the number of backends fronted by the router.
func (r *Router) Shards() int { return len(r.backends) }

func (r *Router) probeLoop() {
	defer close(r.done)
	tick := time.NewTicker(r.cfg.ProbeEvery)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			r.probe(context.Background())
		}
	}
}

// probe checks every backend's /healthz concurrently (each attempt bounded
// by ProbeTimeout), updating the degraded flags, and returns each
// backend's report (zero Health where unreachable). When the parent
// context is cancelled mid-probe the remaining verdicts are discarded
// rather than recorded: an impatient /v1/cluster caller must not degrade
// healthy backends.
func (r *Router) probe(parent context.Context) []service.Health {
	reports := make([]service.Health, len(r.backends))
	var wg sync.WaitGroup
	for i, b := range r.backends {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(parent, r.cfg.ProbeTimeout)
			defer cancel()
			h, err := b.client.Health(ctx)
			if err != nil {
				if parent.Err() == nil {
					b.setDegraded(err)
				}
				return
			}
			b.setHealthy()
			reports[i] = h
		}()
	}
	wg.Wait()
	return reports
}

// shardFor hash-partitions a spec over the shard space: FNV-1a of the
// spec's canonical JSON encoding modulo the backend count. The hash is a
// pure function of the spec, so identical work lands on the same shard
// (and a re-submitted spec finds its twin's shard) while distinct specs
// spread uniformly.
func (r *Router) shardFor(spec service.JobSpec) int {
	data, err := json.Marshal(spec)
	if err != nil {
		return 0 // unreachable for a decodable spec; shard 1 is as good as any
	}
	h := fnv.New32a()
	h.Write(data)
	// Reduce in uint32 space: a plain int(Sum32()) % n goes negative on
	// 32-bit platforms for hashes >= 2^31.
	return int(h.Sum32() % uint32(len(r.backends)))
}

// Submit places the spec on its hash-assigned shard and returns the
// accepted job with its sharded ID. When the assigned backend is degraded
// or fails at the transport level, placement walks forward to the next
// healthy backend — the ID records where the job actually landed, so
// spillover placement stays fully addressable. A backend that answers with
// an HTTP verdict (400 bad spec, 429 after the client's retries, 503)
// ends the walk: the backend spoke for the cluster.
func (r *Router) Submit(ctx context.Context, spec service.JobSpec) (service.Job, error) {
	start := r.shardFor(spec)
	n := len(r.backends)
	// First pass: healthy backends in hash order. Second pass: backends
	// that were already degraded at entry — they may have just come back,
	// and trying beats failing. Backends that failed during the first pass
	// are not retried: they cannot have recovered in microseconds, and
	// re-paying their transport timeout would double outage latency.
	tried := make([]bool, n)
	var lastTransportErr error
	for _, wantHealthy := range []bool{true, false} {
		for i := 0; i < n; i++ {
			idx := (start + i) % n
			b := r.backends[idx]
			if tried[idx] {
				continue
			}
			if healthy, _ := b.state(); healthy != wantHealthy {
				continue
			}
			tried[idx] = true
			job, err := b.client.Submit(ctx, spec)
			if err == nil {
				b.setHealthy()
				job.ID.Shard = b.shard
				return job, nil
			}
			if _, spoke := service.ErrorStatus(err); spoke {
				return service.Job{}, err
			}
			if ctx.Err() != nil {
				return service.Job{}, err
			}
			b.setDegraded(err)
			lastTransportErr = err
		}
	}
	if lastTransportErr != nil {
		return service.Job{}, fmt.Errorf("%w: %v", ErrNoBackends, lastTransportErr)
	}
	return service.Job{}, ErrNoBackends
}

// route resolves a sharded ID to its backend.
func (r *Router) route(id service.JobID) (*backend, error) {
	if !id.Sharded() {
		return nil, fmt.Errorf("%w: %q", ErrUnsharded, id)
	}
	// Guard both bounds: ParseJobID only produces shards >= 1, but library
	// callers can hand-build a JobID with a negative shard.
	if id.Shard < 1 || id.Shard > len(r.backends) {
		return nil, fmt.Errorf("%w: %q names shard %d of %d", ErrUnknownShard, id, id.Shard, len(r.backends))
	}
	return r.backends[id.Shard-1], nil
}

// Get fetches one job from the shard encoded in its ID.
func (r *Router) Get(ctx context.Context, id service.JobID) (service.Job, error) {
	b, err := r.route(id)
	if err != nil {
		return service.Job{}, err
	}
	job, err := b.client.Get(ctx, service.JobID{Seq: id.Seq})
	if err != nil {
		if _, spoke := service.ErrorStatus(err); !spoke && ctx.Err() == nil {
			b.setDegraded(err)
		}
		return service.Job{}, err
	}
	b.setHealthy()
	job.ID.Shard = b.shard
	return job, nil
}

// Cancel stops a job on the shard encoded in its ID.
func (r *Router) Cancel(ctx context.Context, id service.JobID) (service.Job, error) {
	b, err := r.route(id)
	if err != nil {
		return service.Job{}, err
	}
	job, err := b.client.Cancel(ctx, service.JobID{Seq: id.Seq})
	if err != nil {
		if _, spoke := service.ErrorStatus(err); !spoke && ctx.Err() == nil {
			b.setDegraded(err)
		}
		return service.Job{}, err
	}
	b.setHealthy()
	job.ID.Shard = b.shard
	return job, nil
}

// openEvents opens the owning shard's raw SSE stream for a job (see
// service.Client.OpenEvents), returning the stream plus the backend serving
// it so the proxy can degrade it on a mid-stream death. Transport-level
// failures to open degrade the backend exactly like Get.
func (r *Router) openEvents(ctx context.Context, id service.JobID) (io.ReadCloser, *backend, error) {
	b, err := r.route(id)
	if err != nil {
		return nil, nil, err
	}
	body, err := b.client.OpenEvents(ctx, service.JobID{Seq: id.Seq})
	if err != nil {
		if _, spoke := service.ErrorStatus(err); !spoke && ctx.Err() == nil {
			b.setDegraded(err)
		}
		return nil, nil, err
	}
	b.setHealthy()
	return body, b, nil
}

// Watch streams a job's progress events from its owning shard, with the
// same contract as service.Client.Watch — the library-level counterpart of
// the HTTP proxy.
func (r *Router) Watch(ctx context.Context, id service.JobID, fn func(service.Progress)) error {
	b, err := r.route(id)
	if err != nil {
		return err
	}
	err = b.client.Watch(ctx, service.JobID{Seq: id.Seq}, fn)
	if err != nil {
		if _, spoke := service.ErrorStatus(err); !spoke && ctx.Err() == nil {
			b.setDegraded(err)
		}
		return err
	}
	b.setHealthy()
	return nil
}

// List fans the listing out to every backend concurrently and merges the
// results ordered by ID (shard, then sequence). A backend that fails at
// the transport level is marked degraded and skipped — complete reports
// false and the listing is the union of the reachable shards. Only when
// every backend fails does List return an error.
func (r *Router) List(ctx context.Context, states ...service.State) (jobs []service.Job, complete bool, err error) {
	type result struct {
		jobs []service.Job
		err  error
	}
	results := make([]result, len(r.backends))
	var wg sync.WaitGroup
	for i, b := range r.backends {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := b.client.List(ctx, states...)
			if err != nil {
				if _, spoke := service.ErrorStatus(err); !spoke && ctx.Err() == nil {
					b.setDegraded(err)
				}
				results[i] = result{err: err}
				return
			}
			b.setHealthy()
			for k := range got {
				got[k].ID.Shard = b.shard
			}
			results[i] = result{jobs: got}
		}()
	}
	wg.Wait()

	// Non-nil even when empty: a single daemon's GET /v1/jobs returns [],
	// and the router must match that wire contract, not emit null.
	jobs = make([]service.Job, 0)
	complete = true
	var firstErr error
	reachable := 0
	for _, res := range results {
		if res.err != nil {
			complete = false
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		reachable++
		jobs = append(jobs, res.jobs...)
	}
	if reachable == 0 {
		return nil, false, fmt.Errorf("%w: %v", ErrNoBackends, firstErr)
	}
	// Backends return their jobs ID-ordered; the merge re-sorts the
	// concatenation so the router's ordering contract matches a single
	// daemon's: ascending by (shard, seq).
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID.Less(jobs[k].ID) })
	return jobs, complete, nil
}

// BackendHealth is one backend's row in the cluster report.
type BackendHealth struct {
	// Shard is the backend's 1-based shard number (job IDs s<Shard>-…).
	Shard int `json:"shard"`
	// Base is the backend's root URL.
	Base string `json:"base"`
	// Healthy reports reachability as of this probe.
	Healthy bool `json:"healthy"`
	// Error is the transport failure that degraded the backend.
	Error string `json:"error,omitempty"`
	// QueueDepth, Workers and Jobs mirror the backend's own /healthz
	// report; zero/empty when the backend is unreachable.
	QueueDepth int                   `json:"queue_depth,omitempty"`
	Workers    int                   `json:"workers,omitempty"`
	Jobs       map[service.State]int `json:"jobs,omitempty"`
}

// Health is the /v1/cluster payload: the fleet verdict plus one row per
// backend.
type Health struct {
	// Status is "ok" when every backend is reachable, "degraded" when some
	// are, and "down" when none is.
	Status string `json:"status"`
	// Shards is the configured backend count; Healthy of them answered.
	Shards   int                   `json:"shards"`
	Healthy  int                   `json:"healthy"`
	Jobs     map[service.State]int `json:"jobs,omitempty"`
	Backends []BackendHealth       `json:"backends"`
}

// Health probes every backend live (bounded by ProbeTimeout each) and
// reports per-backend reachability, queue depth and aggregated job counts.
// The probe updates the routing health state, so reading /v1/cluster also
// heals backends that have come back.
func (r *Router) Health(ctx context.Context) Health {
	reports := r.probe(ctx)

	out := Health{Shards: len(r.backends), Jobs: make(map[service.State]int)}
	for i, b := range r.backends {
		healthy, lastErr := b.state()
		row := BackendHealth{Shard: b.shard, Base: b.base, Healthy: healthy, Error: lastErr}
		if healthy {
			out.Healthy++
			row.QueueDepth = reports[i].QueueDepth
			row.Workers = reports[i].Workers
			row.Jobs = reports[i].Jobs
			for st, n := range reports[i].Jobs {
				out.Jobs[st] += n
			}
		}
		out.Backends = append(out.Backends, row)
	}
	switch out.Healthy {
	case len(r.backends):
		out.Status = "ok"
	case 0:
		out.Status = "down"
	default:
		out.Status = "degraded"
	}
	return out
}
