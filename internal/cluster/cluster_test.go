package cluster

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hypersolve/internal/service"
)

// quickSpec returns a job solving in milliseconds; the seed varies the spec
// bytes, and with them the shard the router hashes it to.
func quickSpec(seed int64) service.JobSpec {
	return service.JobSpec{Kind: "sum", N: 20, Topology: "ring:4", Seed: seed}
}

// testCluster is a live fleet: n real daemons (service + HTTP) behind a
// router, itself served over HTTP and addressed through the ordinary
// service.Client — exactly the hyperctl path.
type testCluster struct {
	backends []*httptest.Server
	services []*service.Service
	router   *Router
	server   *httptest.Server
	client   *service.Client
}

func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tc := &testCluster{}
	bases := make([]string, n)
	for i := 0; i < n; i++ {
		svc := service.New(service.Config{QueueDepth: 16, Workers: 1})
		srv := httptest.NewServer(service.NewHandler(svc))
		tc.services = append(tc.services, svc)
		tc.backends = append(tc.backends, srv)
		bases[i] = srv.URL
	}
	r, err := New(Config{Backends: bases, ProbeEvery: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	tc.router = r
	tc.server = httptest.NewServer(NewHandler(r))
	tc.client = &service.Client{Base: tc.server.URL}
	t.Cleanup(func() {
		tc.server.Close()
		r.Close()
		for i := range tc.backends {
			tc.backends[i].Close()
			tc.services[i].Close()
		}
	})
	return tc
}

// submitSpread submits seeds 0..count-1 through the router until both
// shard 1 and shard 2 hold at least one job, returning all jobs. The hash
// is deterministic, so if this ever fails to spread the partitioner is
// broken, not the test.
func submitSpread(t *testing.T, tc *testCluster, ctx context.Context, count int) []service.Job {
	t.Helper()
	var jobs []service.Job
	shards := map[int]int{}
	for seed := int64(0); seed < int64(count); seed++ {
		job, err := tc.client.Submit(ctx, quickSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !job.ID.Sharded() {
			t.Fatalf("router returned unsharded ID %q", job.ID)
		}
		shards[job.ID.Shard]++
		jobs = append(jobs, job)
	}
	if len(shards) < 2 {
		t.Fatalf("hash partitioning put all %d jobs on one shard: %v", count, shards)
	}
	return jobs
}

// TestRouterEndToEnd is the tentpole acceptance check: jobs submitted
// through the router execute on the backends, are retrievable through the
// router by sharded ID, and the fanned-out listing equals the union of the
// backends' own listings, ordered by ID.
func TestRouterEndToEnd(t *testing.T) {
	tc := newTestCluster(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	jobs := submitSpread(t, tc, ctx, 6)
	for _, job := range jobs {
		final, err := tc.client.Wait(ctx, job.ID, 5*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s: %v", job.ID, err)
		}
		if final.State != service.StateDone || final.Result == nil || !final.Result.OK {
			t.Fatalf("job %s = %+v, want done OK", job.ID, final)
		}
		if final.ID != job.ID {
			t.Fatalf("Get through router returned ID %q, want %q", final.ID, job.ID)
		}
	}

	// The router's listing is the union of the backends', resharded and
	// ordered by (shard, seq).
	union := 0
	for i, svc := range tc.services {
		for _, j := range svc.List() {
			union++
			// Every backend-local job must be fetchable through the router
			// under its sharded name.
			got, err := tc.client.Get(ctx, service.JobID{Shard: i + 1, Seq: j.ID.Seq})
			if err != nil {
				t.Fatalf("router get s%d-%d: %v", i+1, j.ID.Seq, err)
			}
			if got.State != service.StateDone {
				t.Fatalf("router get s%d-%d state = %s", i+1, j.ID.Seq, got.State)
			}
		}
	}
	listed, err := tc.client.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != union || union != 6 {
		t.Fatalf("router list has %d jobs, backends hold %d, submitted 6", len(listed), union)
	}
	for i := 1; i < len(listed); i++ {
		if !listed[i-1].ID.Less(listed[i].ID) {
			t.Fatalf("merged listing out of order at %d: %q !< %q", i, listed[i-1].ID, listed[i].ID)
		}
	}
	// State filters propagate to the fan-out.
	done, err := tc.client.List(ctx, service.StateDone)
	if err != nil || len(done) != 6 {
		t.Fatalf("list ?state=done = %d jobs (%v), want 6", len(done), err)
	}
	if queued, err := tc.client.List(ctx, service.StateQueued); err != nil || len(queued) != 0 {
		t.Fatalf("list ?state=queued = %+v (%v), want empty", queued, err)
	}
}

// TestRouterHashRoutesConsistently: the same spec always lands on the same
// shard, and Get through the router agrees with the backend that ran it.
func TestRouterHashRoutesConsistently(t *testing.T) {
	tc := newTestCluster(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	first, err := tc.client.Submit(ctx, quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	second, err := tc.client.Submit(ctx, quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if first.ID.Shard != second.ID.Shard {
		t.Fatalf("identical specs landed on shards %d and %d", first.ID.Shard, second.ID.Shard)
	}
	if first.ID.Seq == second.ID.Seq {
		t.Fatalf("two submissions share sequence %d", first.ID.Seq)
	}
}

// TestRouterCancelRoutesByShard: a cancel through the router reaches the
// owning backend; cancelling a finished job relays the backend's 409.
func TestRouterCancelRoutesByShard(t *testing.T) {
	tc := newTestCluster(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	job, err := tc.client.Submit(ctx, quickSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.client.Wait(ctx, job.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	_, err = tc.client.Cancel(ctx, job.ID)
	if status, ok := service.ErrorStatus(err); !ok || status != http.StatusConflict {
		t.Fatalf("cancel of done job through router = %v, want relayed 409", err)
	}
}

// TestRouterIDErrors: unsharded IDs are rejected with 400 and unknown
// shards with 404 — before any backend is contacted.
func TestRouterIDErrors(t *testing.T) {
	tc := newTestCluster(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	_, err := tc.client.Get(ctx, service.JobID{Seq: 1})
	if status, ok := service.ErrorStatus(err); !ok || status != http.StatusBadRequest {
		t.Fatalf("unsharded get through router = %v, want 400", err)
	}
	_, err = tc.client.Get(ctx, service.JobID{Shard: 9, Seq: 1})
	if status, ok := service.ErrorStatus(err); !ok || status != http.StatusNotFound {
		t.Fatalf("unknown shard get = %v, want 404", err)
	}
	// A well-routed miss relays the backend's 404.
	_, err = tc.client.Get(ctx, service.JobID{Shard: 1, Seq: 999})
	if status, ok := service.ErrorStatus(err); !ok || status != http.StatusNotFound {
		t.Fatalf("missing job get = %v, want backend 404", err)
	}
}

// TestRouterDegradedBackend is the degradation acceptance check: with one
// backend dead, the fanned-out listing still serves the union of the
// survivors (sorted, marked partial), /v1/cluster reports the outage, the
// dead shard's reads fail with 502 — and new submissions spill over to the
// healthy shard instead of failing.
func TestRouterDegradedBackend(t *testing.T) {
	tc := newTestCluster(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	jobs := submitSpread(t, tc, ctx, 6)
	for _, job := range jobs {
		if _, err := tc.client.Wait(ctx, job.ID, 5*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	var alive, dead int // shard numbers
	perShard := map[int][]service.Job{}
	for _, j := range jobs {
		perShard[j.ID.Shard] = append(perShard[j.ID.Shard], j)
	}

	// Kill shard 2's HTTP listener (its jobs are lost to the fleet until it
	// returns, as in a real partition).
	dead, alive = 2, 1
	tc.backends[dead-1].Close()

	// Fan-out list: survivors only, still ordered, no error.
	listed, err := tc.client.List(ctx)
	if err != nil {
		t.Fatalf("list with one backend down: %v", err)
	}
	if len(listed) != len(perShard[alive]) {
		t.Fatalf("partial list = %d jobs, want %d from surviving shard", len(listed), len(perShard[alive]))
	}
	for _, j := range listed {
		if j.ID.Shard != alive {
			t.Fatalf("partial list leaked job %q from dead shard", j.ID)
		}
	}
	for i := 1; i < len(listed); i++ {
		if !listed[i-1].ID.Less(listed[i].ID) {
			t.Fatalf("partial listing out of order: %q !< %q", listed[i-1].ID, listed[i].ID)
		}
	}

	// The cluster report: degraded, one healthy backend, per-backend rows.
	var h Health
	if err := tc.client.GetJSON(ctx, "/v1/cluster", &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || h.Healthy != 1 || h.Shards != 2 {
		t.Fatalf("cluster health = %+v, want degraded 1/2", h)
	}
	for _, row := range h.Backends {
		if row.Shard == dead && (row.Healthy || row.Error == "") {
			t.Fatalf("dead backend row = %+v, want unhealthy with error", row)
		}
		if row.Shard == alive && !row.Healthy {
			t.Fatalf("healthy backend row = %+v", row)
		}
	}

	// Reads on the dead shard: 502, not 500, and not a hang.
	_, err = tc.client.Get(ctx, perShard[dead][0].ID)
	if status, ok := service.ErrorStatus(err); !ok || status != http.StatusBadGateway {
		t.Fatalf("get on dead shard = %v, want 502", err)
	}
	// Reads on the live shard keep working.
	if _, err := tc.client.Get(ctx, perShard[alive][0].ID); err != nil {
		t.Fatalf("get on healthy shard with the other down: %v", err)
	}

	// Submissions spill over to the healthy shard, whatever the hash said.
	for seed := int64(100); seed < 106; seed++ {
		job, err := tc.client.Submit(ctx, quickSpec(seed))
		if err != nil {
			t.Fatalf("submit with one backend down: %v", err)
		}
		if job.ID.Shard != alive {
			t.Fatalf("submission landed on dead shard %d", job.ID.Shard)
		}
	}
}

// TestRouterAllBackendsDown: a fleet-wide outage yields 503s, not hangs or
// panics, and /v1/cluster reports status "down".
func TestRouterAllBackendsDown(t *testing.T) {
	tc := newTestCluster(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	tc.backends[0].Close()
	tc.backends[1].Close()

	if _, err := tc.client.Submit(ctx, quickSpec(1)); err == nil {
		t.Fatal("submit with all backends down succeeded")
	} else if status, ok := service.ErrorStatus(err); !ok || status != http.StatusServiceUnavailable {
		t.Fatalf("submit with all backends down = %v, want 503", err)
	}
	if _, err := tc.client.List(ctx); err == nil {
		t.Fatal("list with all backends down succeeded")
	}
	var h Health
	if err := tc.client.GetJSON(ctx, "/v1/cluster", &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "down" || h.Healthy != 0 {
		t.Fatalf("cluster health = %+v, want down 0/2", h)
	}
}

// TestRouterRejectsBadConfig: empty and duplicate backend lists fail fast.
func TestRouterRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("router with no backends built")
	}
	if _, err := New(Config{Backends: []string{"http://a:1", "http://a:1/"}}); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate backends = %v, want duplicate error", err)
	}
	if _, err := New(Config{Backends: []string{"http://a:1", "  "}}); err == nil {
		t.Fatal("blank backend URL accepted")
	}
}

// TestRouterMergeOrderingAcrossShards pins the merge comparator against
// interleaved sequence numbers: shard 1's later jobs must not sort after
// shard 2's earlier ones.
func TestRouterMergeOrderingAcrossShards(t *testing.T) {
	tc := newTestCluster(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Submit directly to the backends so both shards have seqs 1..3.
	for i, srv := range tc.backends {
		c := &service.Client{Base: srv.URL}
		for seed := int64(0); seed < 3; seed++ {
			if _, err := c.Submit(ctx, quickSpec(int64(i)*10+seed)); err != nil {
				t.Fatal(err)
			}
		}
	}
	listed, err := tc.client.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, j := range listed {
		got = append(got, j.ID.String())
	}
	want := []string{"s1-1", "s1-2", "s1-3", "s2-1", "s2-2", "s2-3"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("merged order = %v, want %v", got, want)
	}
}

// TestRouterHealthRecovers: a degraded backend that comes back is healed by
// the next cluster probe, and placement uses it again.
func TestRouterHealthRecovers(t *testing.T) {
	tc := newTestCluster(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Degrade shard 1 via a failed direct read; the backend itself stays up.
	tc.router.shardByID(1).active().setDegraded(context.DeadlineExceeded)
	var h Health
	if err := tc.client.GetJSON(ctx, "/v1/cluster", &h); err != nil {
		t.Fatal(err)
	}
	// The live probe inside /v1/cluster reaches the (running) backend and
	// heals it immediately.
	if h.Status != "ok" || h.Healthy != 2 {
		t.Fatalf("cluster health after recovery probe = %+v, want ok 2/2", h)
	}
}

// TestRouterEmptyListIsJSONArray pins the wire contract: an empty cluster
// lists as [], exactly like an empty daemon — not null.
func TestRouterEmptyListIsJSONArray(t *testing.T) {
	tc := newTestCluster(t, 2)
	resp, err := http.Get(tc.server.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body strings.Builder
	if _, err := io.Copy(&body, resp.Body); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(body.String()); got != "[]" {
		t.Fatalf("empty cluster list = %q, want []", got)
	}
}

// TestRouterNegativeShardIsNotFound: a hand-built negative shard must
// resolve to ErrUnknownShard, not an index panic.
func TestRouterNegativeShardIsNotFound(t *testing.T) {
	tc := newTestCluster(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := tc.router.Get(ctx, service.JobID{Shard: -1, Seq: 5}); !errors.Is(err, ErrUnknownShard) {
		t.Fatalf("Get(shard -1) = %v, want ErrUnknownShard", err)
	}
	if _, err := tc.router.Cancel(ctx, service.JobID{Shard: -3, Seq: 1}); !errors.Is(err, ErrUnknownShard) {
		t.Fatalf("Cancel(shard -3) = %v, want ErrUnknownShard", err)
	}
}

// slowSpec is a job that runs until cancelled (within its huge step
// budget), used to watch live progress through the router. The sweep engine
// is pinned because the event engine skips the idle latency gaps and
// finishes the same job in milliseconds.
func slowSpec() service.JobSpec {
	return service.JobSpec{
		Kind:     "sum",
		N:        500,
		Topology: "ring:4",
		Link:     service.LinkSpec{LinkLatency: 50000},
		MaxSteps: 1 << 40,
		Engine:   "sweep",
	}
}

// TestRouterEventsProxy streams a running job's SSE feed through the
// router: the stream is proxied from the owning shard, running snapshots
// arrive live, and the terminal snapshot ends the stream after a cancel.
func TestRouterEventsProxy(t *testing.T) {
	tc := newTestCluster(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	job, err := tc.client.Submit(ctx, slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !job.ID.Sharded() {
		t.Fatalf("router returned unsharded ID %q", job.ID)
	}

	var sawRunning atomic.Bool
	done := make(chan error, 1)
	var last atomic.Value // service.Progress
	go func() {
		done <- tc.client.Watch(ctx, job.ID, func(p service.Progress) {
			last.Store(p)
			if p.State == service.StateRunning && p.Step > 0 {
				sawRunning.Store(true)
			}
		})
	}()
	for !sawRunning.Load() {
		select {
		case err := <-done:
			t.Fatalf("stream ended before a running snapshot: %v", err)
		case <-ctx.Done():
			t.Fatal("no running snapshot before the test deadline")
		case <-time.After(10 * time.Millisecond):
		}
	}
	if _, err := tc.client.Cancel(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Watch through router: %v", err)
		}
	case <-ctx.Done():
		t.Fatal("Watch did not end after cancel")
	}
	if p := last.Load().(service.Progress); p.State != service.StateCancelled {
		t.Fatalf("last proxied snapshot = %+v, want cancelled", p)
	}
}

// TestRouterEventsAfterDone: subscribing through the router to a job that
// already finished replays the terminal snapshot — the backend's
// subscribe-after-done semantics survive the proxy.
func TestRouterEventsAfterDone(t *testing.T) {
	tc := newTestCluster(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	job, err := tc.client.Submit(ctx, quickSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.client.Wait(ctx, job.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var events []service.Progress
	if err := tc.client.Watch(ctx, job.ID, func(p service.Progress) { events = append(events, p) }); err != nil {
		t.Fatalf("Watch on done job through router: %v", err)
	}
	if len(events) != 1 || events[0].State != service.StateDone {
		t.Fatalf("replayed events = %+v, want exactly one done snapshot", events)
	}

	// And the raw wire surface: SSE content type, `event: end` frame.
	resp, err := tc.server.Client().Get(tc.server.URL + "/v1/jobs/" + job.ID.String() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("proxied Content-Type = %q, want text/event-stream", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "event: end\ndata: ") {
		t.Fatalf("proxied stream %q lacks the terminal frame", raw)
	}
}

// TestRouterEventsIDErrors pins the routing verdicts of the events
// endpoint: bare IDs 400, unknown shards 404 — and a dead shard is a clean
// 502 before the stream opens.
func TestRouterEventsIDErrors(t *testing.T) {
	tc := newTestCluster(t, 2)
	for path, want := range map[string]int{
		"/v1/jobs/17/events":    http.StatusBadRequest,
		"/v1/jobs/s9-17/events": http.StatusNotFound,
	} {
		resp, err := tc.server.Client().Get(tc.server.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s status = %d, want %d", path, resp.StatusCode, want)
		}
	}

	// Kill shard 2 outright: opening its stream is a 502, not a router
	// failure, and the backend is marked degraded.
	tc.backends[1].Close()
	tc.services[1].Close()
	resp, err := tc.server.Client().Get(tc.server.URL + "/v1/jobs/s2-1/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("events on dead shard status = %d, want 502", resp.StatusCode)
	}
	if healthy, _ := tc.router.shardByID(2).active().state(); healthy {
		t.Fatal("dead shard still marked healthy after a failed stream open")
	}
}

// TestRouterEventsMidStreamDeath: a backend dying mid-stream ends the
// proxied stream without its terminal event — the client sees
// ErrStreamEnded and can fall back to polling — and degrades the backend.
func TestRouterEventsMidStreamDeath(t *testing.T) {
	tc := newTestCluster(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	job, err := tc.client.Submit(ctx, slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	owner := tc.backends[job.ID.Shard-1]

	var sawAny atomic.Bool
	done := make(chan error, 1)
	go func() {
		done <- tc.client.Watch(ctx, job.ID, func(service.Progress) { sawAny.Store(true) })
	}()
	for !sawAny.Load() {
		select {
		case err := <-done:
			t.Fatalf("stream ended before any snapshot: %v", err)
		case <-ctx.Done():
			t.Fatal("no snapshot before the test deadline")
		case <-time.After(10 * time.Millisecond):
		}
	}
	// Sever every client connection into the owning backend: the proxied
	// read fails mid-stream.
	owner.CloseClientConnections()
	select {
	case err := <-done:
		if !errors.Is(err, service.ErrStreamEnded) {
			t.Fatalf("Watch after mid-stream death = %v, want ErrStreamEnded", err)
		}
	case <-ctx.Done():
		t.Fatal("Watch did not end after the backend connection was severed")
	}
}

// TestRouterAdmissionRejectsTrailingGarbage: the router's admission path
// shares ReadJobSpec with the daemon, so a concatenated or garbage-trailed
// body is a 400 before any backend is contacted.
func TestRouterAdmissionRejectsTrailingGarbage(t *testing.T) {
	tc := newTestCluster(t, 2)
	body := `{"kind":"sum","n":20,"topology":"ring:4"}{"kind":"sum","n":21}`
	resp, err := tc.server.Client().Post(tc.server.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("router POST with trailing garbage status = %d, want 400", resp.StatusCode)
	}
	for i, svc := range tc.services {
		if jobs := svc.List(); len(jobs) != 0 {
			t.Fatalf("backend %d admitted %d jobs from a rejected body", i+1, len(jobs))
		}
	}
}
