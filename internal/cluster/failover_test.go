package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"hypersolve/internal/service"
	"hypersolve/internal/tracelog"
)

// testLogWriter forwards the router's structured log lines into the test
// log so failover decisions are visible in -v output.
type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

// killSwitch fronts a node's handler with a partition toggle: while dead,
// every connection is hijacked and dropped so clients see a transport
// failure — the wire signature of a killed process, not an HTTP verdict.
type killSwitch struct {
	h    http.Handler
	dead atomic.Bool
}

func (k *killSwitch) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.dead.Load() {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
			}
			return
		}
		panic("killSwitch: response writer not hijackable")
	}
	k.h.ServeHTTP(w, r)
}

// replicatedShard is one shard's pair of real nodes (durable stores,
// replication, the lot) behind kill switches.
type replicatedShard struct {
	primary, standby         *service.Node
	primarySrv, standbySrv   *httptest.Server
	primaryKill, standbyKill *killSwitch
}

func newReplicatedShard(t *testing.T, workers int) *replicatedShard {
	t.Helper()
	rs := &replicatedShard{}
	p, err := service.NewNode(service.NodeConfig{
		Dir:     t.TempDir(),
		Service: service.Config{QueueDepth: 16, Workers: workers},
	})
	if err != nil {
		t.Fatal(err)
	}
	rs.primary = p
	rs.primaryKill = &killSwitch{h: p.Handler()}
	rs.primarySrv = httptest.NewServer(rs.primaryKill)
	s, err := service.NewNode(service.NodeConfig{
		Dir:       t.TempDir(),
		Service:   service.Config{QueueDepth: 16, Workers: workers},
		Follow:    rs.primarySrv.URL,
		PullEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs.standby = s
	rs.standbyKill = &killSwitch{h: s.Handler()}
	rs.standbySrv = httptest.NewServer(rs.standbyKill)
	t.Cleanup(func() {
		rs.primarySrv.Close()
		rs.standbySrv.Close()
		rs.primary.Close()
		rs.standby.Close()
	})
	return rs
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// submitToShard submits quick jobs with increasing seeds until one lands on
// the wanted shard (ring placement is deterministic but opaque).
func submitToShard(t *testing.T, c *service.Client, ctx context.Context, shard int, slow bool) service.Job {
	t.Helper()
	for seed := int64(0); seed < 1000; seed++ {
		spec := quickSpec(seed)
		if slow {
			spec = slowSpec()
			spec.Seed = seed
		}
		job, err := c.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if job.ID.Shard == shard {
			return job
		}
		// Wrong shard: cancel fire-and-forget to keep queues clear.
		_, _ = c.Cancel(ctx, job.ID)
	}
	t.Fatalf("no seed in 0..999 hashed to shard %d", shard)
	return service.Job{}
}

// TestFailoverEndToEnd is the tentpole acceptance check, under -race: a
// replicated shard's primary dies mid-solve; the router immediately serves
// the shard's reads from the standby, promotes it after the grace period,
// the promoted node re-runs the jobs the dead primary held, and the stale
// primary rejoining is fenced and demoted — no split-brain, no lost
// records.
func TestFailoverEndToEnd(t *testing.T) {
	rs := newReplicatedShard(t, 4)
	// Shard 2: plain unreplicated daemon, to prove mixed fleets work.
	svc2 := service.New(service.Config{QueueDepth: 16, Workers: 1})
	srv2 := httptest.NewServer(service.NewHandler(svc2))
	t.Cleanup(func() { srv2.Close(); svc2.Close() })

	r, err := New(Config{
		Backends:      []string{rs.primarySrv.URL, srv2.URL},
		Standbys:      []string{rs.standbySrv.URL},
		ProbeEvery:    20 * time.Millisecond,
		ProbeTimeout:  500 * time.Millisecond,
		FailAfter:     2,
		PromoteAfter:  50 * time.Millisecond,
		SubmitTimeout: 5 * time.Second,
		Logger:        tracelog.New(testLogWriter{t}, tracelog.LevelInfo, tracelog.FormatText),
	})
	if err != nil {
		t.Fatal(err)
	}
	router := httptest.NewServer(NewHandler(r))
	t.Cleanup(func() { router.Close(); r.Close() })
	client := &service.Client{Base: router.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// A finished job and a long-running job, both on the replicated shard.
	doneJob := submitToShard(t, client, ctx, 1, false)
	if _, err := client.Wait(ctx, doneJob.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	slowJob := submitToShard(t, client, ctx, 1, true)
	// Capture both jobs' trace IDs while the primary is alive; failover
	// must keep serving these exact traces.
	doneTrace, err := client.Trace(ctx, doneJob.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(doneTrace.TraceID) != 32 {
		t.Fatalf("trace ID through the router = %q, want 32 hex chars", doneTrace.TraceID)
	}
	slowTrace, err := client.Trace(ctx, slowJob.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Let the standby catch up fully before the kill: asynchronous
	// replication only guarantees shipped records survive.
	sc := &service.Client{Base: rs.standbySrv.URL}
	eventually(t, 10*time.Second, "standby catch-up", func() bool {
		st, err := sc.ReplicationStatus(ctx)
		return err == nil && st.Lag == 0 && st.LSN > 0 && st.LastError == ""
	})

	// Partition the primary mid-solve.
	rs.primaryKill.dead.Store(true)

	// Reads fail over to the standby immediately, without waiting for the
	// probe loop to notice anything: the first transport failure on the
	// active endpoint retries against the alternate.
	got, err := client.Get(ctx, doneJob.ID)
	if err != nil {
		t.Fatalf("read during primary outage: %v", err)
	}
	if got.State != service.StateDone || got.Result == nil {
		t.Fatalf("failed-over read = %+v, want done with result", got)
	}
	// The standby serves the same trace under the same trace ID, with its
	// own replica_apply span stamped during WAL apply.
	outageTrace, err := client.Trace(ctx, doneJob.ID)
	if err != nil {
		t.Fatalf("trace read during primary outage: %v", err)
	}
	if outageTrace.TraceID != doneTrace.TraceID {
		t.Fatalf("failed-over trace ID = %s, want %s", outageTrace.TraceID, doneTrace.TraceID)
	}
	if !hasSpan(outageTrace, "replica_apply") {
		t.Fatalf("standby-served trace lacks the replica_apply span: %+v", outageTrace.Spans)
	}

	// The router promotes the standby after the grace period.
	eventually(t, 10*time.Second, "promotion", func() bool {
		h := r.Health(ctx)
		return h.Backends[0].Promoted && h.Backends[0].Base == rs.standbySrv.URL
	})
	// The promoted node re-admits the job the dead primary held; cancel it
	// through the router rather than sitting out the full solve, then
	// confirm the router serves its terminal record from the promoted node.
	if _, err := client.Cancel(ctx, slowJob.ID); err != nil {
		if status, ok := service.ErrorStatus(err); !ok || status != http.StatusConflict {
			t.Fatalf("cancel re-run job after failover: %v", err)
		}
	}
	final, err := client.Wait(ctx, slowJob.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait on re-run job after failover: %v", err)
	}
	if !final.State.Terminal() {
		t.Fatalf("slow job after failover = %s, want terminal", final.State)
	}
	// The promoted node's re-run resumed the original trace and marked the
	// hand-off with a requeued instant span.
	rerunTrace, err := client.Trace(ctx, slowJob.ID)
	if err != nil {
		t.Fatalf("trace of re-run job after failover: %v", err)
	}
	if rerunTrace.TraceID != slowTrace.TraceID {
		t.Fatalf("re-run trace ID = %s, want the original %s", rerunTrace.TraceID, slowTrace.TraceID)
	}
	if !hasSpan(rerunTrace, "requeued") {
		t.Fatalf("re-run trace lacks the requeued span: %+v", rerunTrace.Spans)
	}
	// The finished job's record survived the failover byte for byte.
	if got, err := client.Get(ctx, doneJob.ID); err != nil || got.State != service.StateDone {
		t.Fatalf("pre-kill done job after promotion = %+v (%v)", got, err)
	}
	// Submissions keep landing on the shard via its promoted node.
	if _, err := client.Submit(ctx, quickSpec(424242)); err != nil {
		t.Fatalf("submit after failover: %v", err)
	}

	// The stale primary rejoins: the router demotes it, it re-syncs from
	// the promoted node, and the roles swap — split-brain fenced off.
	rs.primaryKill.dead.Store(false)
	eventually(t, 10*time.Second, "stale primary demotion", func() bool {
		st := rs.primary.Status()
		return st.Role == "standby" && st.Following == rs.standbySrv.URL
	})
	eventually(t, 10*time.Second, "role swap in cluster report", func() bool {
		h := r.Health(ctx)
		row := h.Backends[0]
		return row.Base == rs.standbySrv.URL && row.Standby == rs.primarySrv.URL && row.Healthy
	})
	// The demoted node converges on the promoted node's history: same job
	// set, no double-executed duplicates.
	pc := &service.Client{Base: rs.standbySrv.URL}
	eventually(t, 10*time.Second, "demoted node convergence", func() bool {
		want, err1 := pc.List(ctx)
		got, err2 := (&service.Client{Base: rs.primarySrv.URL}).List(ctx)
		if err1 != nil || err2 != nil || len(want) != len(got) {
			return false
		}
		for i := range want {
			if want[i].ID != got[i].ID || want[i].State != got[i].State {
				return false
			}
		}
		return true
	})
}

// TestFailoverReRacesPortfolio: portfolio racing composes with failover,
// under -race. A finished race's winner and attempt ledger replicate to the
// standby and survive promotion verbatim; a race still in flight when the
// primary dies is re-admitted by the promoted standby and raced again from
// scratch — fresh attempts, original trace.
func TestFailoverReRacesPortfolio(t *testing.T) {
	rs := newReplicatedShard(t, 4)
	r, err := New(Config{
		Backends:      []string{rs.primarySrv.URL},
		Standbys:      []string{rs.standbySrv.URL},
		ProbeEvery:    20 * time.Millisecond,
		ProbeTimeout:  500 * time.Millisecond,
		FailAfter:     2,
		PromoteAfter:  50 * time.Millisecond,
		SubmitTimeout: 5 * time.Second,
		Logger:        tracelog.New(testLogWriter{t}, tracelog.LevelInfo, tracelog.FormatText),
	})
	if err != nil {
		t.Fatal(err)
	}
	router := httptest.NewServer(NewHandler(r))
	t.Cleanup(func() { router.Close(); r.Close() })
	client := &service.Client{Base: router.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// A completed race: its winner and ledger must survive the failover.
	doneSpec := quickSpec(7)
	doneSpec.Portfolio = []string{"rr", "lbn"}
	doneJob, err := client.Submit(ctx, doneSpec)
	if err != nil {
		t.Fatal(err)
	}
	doneFinal, err := client.Wait(ctx, doneJob.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if doneFinal.Winner == "" || len(doneFinal.Attempts) != 2 {
		t.Fatalf("finished race = winner %q, %d attempts, want a winner and 2 attempts",
			doneFinal.Winner, len(doneFinal.Attempts))
	}

	// A race still in flight at the kill.
	raceSpec := slowSpec()
	raceSpec.Portfolio = []string{"rr", "lbn"}
	raceJob, err := client.Submit(ctx, raceSpec)
	if err != nil {
		t.Fatal(err)
	}
	eventually(t, 10*time.Second, "race start", func() bool {
		j, err := client.Get(ctx, raceJob.ID)
		return err == nil && j.State == service.StateRunning
	})

	// Let the standby catch up fully, then partition the primary mid-race.
	sc := &service.Client{Base: rs.standbySrv.URL}
	eventually(t, 10*time.Second, "standby catch-up", func() bool {
		st, err := sc.ReplicationStatus(ctx)
		return err == nil && st.Lag == 0 && st.LSN > 0 && st.LastError == ""
	})
	rs.primaryKill.dead.Store(true)
	eventually(t, 10*time.Second, "promotion", func() bool {
		h := r.Health(ctx)
		return h.Backends[0].Promoted && h.Backends[0].Base == rs.standbySrv.URL
	})

	// The finished race's record survived the failover, ledger intact.
	got, err := client.Get(ctx, doneJob.ID)
	if err != nil {
		t.Fatalf("read finished race after promotion: %v", err)
	}
	if got.Winner != doneFinal.Winner || !reflect.DeepEqual(got.Attempts, doneFinal.Attempts) {
		t.Fatalf("race ledger changed across failover:\nbefore: winner=%q %+v\nafter:  winner=%q %+v",
			doneFinal.Winner, doneFinal.Attempts, got.Winner, got.Attempts)
	}

	// The promoted node re-admitted the interrupted job and is racing it
	// again: a fresh ledger with attempts under way, on the original trace
	// (the requeued instant marks the hand-off).
	eventually(t, 10*time.Second, "re-race start", func() bool {
		j, err := client.Get(ctx, raceJob.ID)
		if err != nil || j.State != service.StateRunning {
			return false
		}
		for _, a := range j.Attempts {
			if a.State == service.StateRunning {
				return true
			}
		}
		return false
	})
	rerunTrace, err := client.Trace(ctx, raceJob.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !hasSpan(rerunTrace, "requeued") {
		t.Fatalf("re-raced trace lacks the requeued span: %+v", rerunTrace.Spans)
	}

	// Don't sit out the slow solve: cancel through the router and check the
	// whole race settles — every attempt terminal, no winner.
	if _, err := client.Cancel(ctx, raceJob.ID); err != nil {
		if status, ok := service.ErrorStatus(err); !ok || status != http.StatusConflict {
			t.Fatalf("cancel re-raced job: %v", err)
		}
	}
	final, err := client.Wait(ctx, raceJob.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !final.State.Terminal() || final.Winner != "" {
		t.Fatalf("cancelled race = %s winner %q, want terminal with no winner", final.State, final.Winner)
	}
	for _, a := range final.Attempts {
		if !a.State.Terminal() {
			t.Fatalf("cancelled race left a live attempt: %+v", a)
		}
	}
}

// TestMembershipAddDrainRemove: adding a shard at runtime re-routes only
// new placements (old IDs stay resolvable), draining excludes a shard from
// placement while keeping its reads, and removal demands a prior drain.
func TestMembershipAddDrainRemove(t *testing.T) {
	tc := newTestCluster(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	jobs := submitSpread(t, tc, ctx, 8)
	for _, j := range jobs {
		if _, err := tc.client.Wait(ctx, j.ID, 5*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}

	// Add shard 3 through the membership API.
	svc3 := service.New(service.Config{QueueDepth: 16, Workers: 1})
	srv3 := httptest.NewServer(service.NewHandler(svc3))
	t.Cleanup(func() { srv3.Close(); svc3.Close() })
	var addRes struct {
		Shard  int `json:"shard"`
		Shards int `json:"shards"`
	}
	if err := postJSON(t, tc.server.URL+"/v1/cluster/backends",
		map[string]any{"action": "add", "primary": srv3.URL}, &addRes); err != nil {
		t.Fatal(err)
	}
	if addRes.Shard != 3 || addRes.Shards != 3 {
		t.Fatalf("add response = %+v, want shard 3 of 3", addRes)
	}

	// Every pre-existing sharded ID still resolves.
	for _, j := range jobs {
		got, err := tc.client.Get(ctx, j.ID)
		if err != nil || got.State != service.StateDone {
			t.Fatalf("pre-add job %s after membership change = %+v (%v)", j.ID, got, err)
		}
	}
	// New placements reach the new shard (consistent hashing moves ~1/3 of
	// the key space; 60 distinct seeds make a miss astronomically
	// unlikely), while shards 1 and 2 keep receiving theirs.
	landed := map[int]int{}
	for seed := int64(1000); seed < 1060; seed++ {
		job, err := tc.client.Submit(ctx, quickSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		landed[job.ID.Shard]++
	}
	if len(landed) != 3 {
		t.Fatalf("placements after add span shards %v, want all 3", landed)
	}

	// Remove before drain: 409.
	var errRes struct {
		Error string `json:"error"`
	}
	err := postJSON(t, tc.server.URL+"/v1/cluster/backends",
		map[string]any{"action": "remove", "shard": 3}, &errRes)
	if status, ok := service.ErrorStatus(err); !ok || status != http.StatusConflict {
		t.Fatalf("remove of undrained shard = %v, want 409", err)
	}

	// Drain: placement avoids shard 3, reads still route to it.
	if err := postJSON(t, tc.server.URL+"/v1/cluster/backends",
		map[string]any{"action": "drain", "shard": 3}, nil); err != nil {
		t.Fatal(err)
	}
	var onThree service.JobID
	for _, j := range svc3.List() {
		onThree = service.JobID{Shard: 3, Seq: j.ID.Seq}
	}
	for seed := int64(2000); seed < 2040; seed++ {
		job, err := tc.client.Submit(ctx, quickSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		if job.ID.Shard == 3 {
			t.Fatalf("draining shard 3 received job %s", job.ID)
		}
	}
	if onThree.Sharded() {
		if _, err := tc.client.Get(ctx, onThree); err != nil {
			t.Fatalf("read from draining shard: %v", err)
		}
	}

	// Drained removal succeeds; the shard's IDs stop resolving (404).
	if err := postJSON(t, tc.server.URL+"/v1/cluster/backends",
		map[string]any{"action": "remove", "shard": 3}, nil); err != nil {
		t.Fatal(err)
	}
	if onThree.Sharded() {
		_, err := tc.client.Get(ctx, onThree)
		if status, ok := service.ErrorStatus(err); !ok || status != http.StatusNotFound {
			t.Fatalf("read from removed shard = %v, want 404", err)
		}
	}
}

// TestApplyMembershipReload pins the SIGHUP path: a desired-state list adds
// unknown primaries and drains absent ones, without touching matches.
func TestApplyMembershipReload(t *testing.T) {
	tc := newTestCluster(t, 2)
	svc3 := service.New(service.Config{QueueDepth: 4, Workers: 1})
	srv3 := httptest.NewServer(service.NewHandler(svc3))
	t.Cleanup(func() { srv3.Close(); svc3.Close() })

	added, drained, err := tc.router.ApplyMembership([]MemberSpec{
		{Primary: tc.backends[0].URL}, // kept
		{Primary: srv3.URL},           // new
		// tc.backends[1] absent: drained
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 1 || added[0] != 3 {
		t.Fatalf("added = %v, want [3]", added)
	}
	if len(drained) != 1 || drained[0] != 2 {
		t.Fatalf("drained = %v, want [2]", drained)
	}
	// Idempotent: re-applying the same list changes nothing.
	added, drained, err = tc.router.ApplyMembership([]MemberSpec{
		{Primary: tc.backends[0].URL}, {Primary: srv3.URL},
	})
	if err != nil || len(added) != 0 || len(drained) != 0 {
		t.Fatalf("re-apply = added %v drained %v (%v), want no-op", added, drained, err)
	}
}

// postJSON posts a JSON body to a full URL and decodes the response,
// turning non-2xx into the client's status-carrying error shape.
func postJSON(t *testing.T, url string, body, out any) error {
	t.Helper()
	return (&service.Client{Base: url}).PostJSON(context.Background(), "", body, out)
}
