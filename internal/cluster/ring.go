package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultRingReplicas is the virtual-node count per shard on the hash ring.
// 64 vnodes keep the load spread within a few percent of uniform for small
// fleets while keeping ring rebuilds (a sort of shards×64 points) trivial.
const DefaultRingReplicas = 64

// ring is a consistent-hash ring over shard IDs: each shard owns `replicas`
// virtual points, a key routes to the shard owning the first point at or
// after the key's hash, and spillover walks the ring to the next distinct
// shard. Adding or removing one shard moves only the key ranges adjacent to
// its points — ~1/N of placements — instead of reshuffling everything the
// way a modulo partitioner does. A ring is immutable once built; the router
// swaps whole rings on membership changes.
type ring struct {
	points []ringPoint // sorted by hash
	shards int         // distinct shard count
}

type ringPoint struct {
	hash  uint64
	shard int
}

// newRing builds a ring over the given shard IDs with `replicas` virtual
// points each (<= 0 selects DefaultRingReplicas). An empty shard list
// yields an empty ring (sequence returns nil).
func newRing(shardIDs []int, replicas int) *ring {
	if replicas <= 0 {
		replicas = DefaultRingReplicas
	}
	r := &ring{shards: len(shardIDs)}
	for _, id := range shardIDs {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("shard-%d/vnode-%d", id, v)), shard: id})
		}
	}
	sort.Slice(r.points, func(i, k int) bool {
		if r.points[i].hash != r.points[k].hash {
			return r.points[i].hash < r.points[k].hash
		}
		// Tie-break on shard ID so the ring is deterministic even under a
		// (vanishingly unlikely) 64-bit hash collision.
		return r.points[i].shard < r.points[k].shard
	})
	return r
}

// sequence returns every distinct shard in ring order starting from the
// key's successor point: sequence(key)[0] is the key's home shard, the rest
// is the spillover order. The slice is freshly allocated per call.
func (r *ring) sequence(key []byte) []int {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHashBytes(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[int]bool, r.shards)
	seq := make([]int, 0, r.shards)
	for i := 0; i < len(r.points) && len(seq) < r.shards; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			seq = append(seq, p.shard)
		}
	}
	return seq
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

func ringHashBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return mix64(h.Sum64())
}

// mix64 is a finalizing avalanche pass (splitmix64's): raw FNV-64a of the
// short, similar vnode labels ("shard-1/vnode-0", "shard-1/vnode-1", …)
// clusters on the ring badly enough to skew placement by tens of percent;
// the mixer spreads those points uniformly.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
