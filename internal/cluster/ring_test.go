package cluster

import (
	"fmt"
	"testing"
)

// TestRingCoversAllShards: every key's sequence enumerates each shard
// exactly once, home shard first.
func TestRingCoversAllShards(t *testing.T) {
	r := newRing([]int{1, 2, 3, 4, 5}, 0)
	for i := 0; i < 100; i++ {
		seq := r.sequence([]byte(fmt.Sprintf("key-%d", i)))
		if len(seq) != 5 {
			t.Fatalf("sequence(%d) has %d shards, want 5", i, len(seq))
		}
		seen := map[int]bool{}
		for _, s := range seq {
			if seen[s] {
				t.Fatalf("sequence(%d) repeats shard %d: %v", i, s, seq)
			}
			seen[s] = true
		}
	}
	if newRing(nil, 0).sequence([]byte("x")) != nil {
		t.Fatal("empty ring produced a sequence")
	}
}

// TestRingDistribution: with 64 vnodes per shard, load stays within a
// loose band of uniform — no shard starves, none dominates.
func TestRingDistribution(t *testing.T) {
	const shards, keys = 5, 10000
	ids := make([]int, shards)
	for i := range ids {
		ids[i] = i + 1
	}
	r := newRing(ids, 0)
	counts := map[int]int{}
	for i := 0; i < keys; i++ {
		counts[r.sequence([]byte(fmt.Sprintf("key-%d", i)))[0]]++
	}
	for id, n := range counts {
		frac := float64(n) / keys
		if frac < 0.05 || frac > 0.45 {
			t.Fatalf("shard %d owns %.1f%% of keys (counts %v); vnode spread is broken", id, frac*100, counts)
		}
	}
	if len(counts) != shards {
		t.Fatalf("only %d of %d shards received keys: %v", len(counts), shards, counts)
	}
}

// TestRingStabilityOnGrowth is the consistent-hashing acceptance check:
// adding one shard to N moves roughly 1/(N+1) of placements, nowhere near
// the ~N/(N+1) a modulo partitioner reshuffles.
func TestRingStabilityOnGrowth(t *testing.T) {
	const keys = 10000
	before := newRing([]int{1, 2, 3, 4, 5}, 0)
	after := newRing([]int{1, 2, 3, 4, 5, 6}, 0)
	moved, toNew := 0, 0
	for i := 0; i < keys; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		b, a := before.sequence(key)[0], after.sequence(key)[0]
		if b != a {
			moved++
			if a == 6 {
				toNew++
			}
		}
	}
	// Ideal movement is 1/6 ≈ 16.7%; allow vnode variance up to 30%.
	if frac := float64(moved) / keys; frac > 0.30 {
		t.Fatalf("adding 1 shard to 5 moved %.1f%% of keys; want ~16.7%%", frac*100)
	}
	// Every moved key must land on the new shard: keys never shuffle
	// between surviving shards.
	if toNew != moved {
		t.Fatalf("%d keys moved between surviving shards (of %d moved); consistent hashing broken", moved-toNew, moved)
	}
}

// TestRingRemovalOnlyMovesOrphans: removing a shard re-homes only its own
// keys.
func TestRingRemovalOnlyMovesOrphans(t *testing.T) {
	const keys = 10000
	before := newRing([]int{1, 2, 3, 4}, 0)
	after := newRing([]int{1, 2, 4}, 0)
	for i := 0; i < keys; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		b, a := before.sequence(key)[0], after.sequence(key)[0]
		if b != 3 && b != a {
			t.Fatalf("key %d moved %d→%d though shard 3 was the one removed", i, b, a)
		}
		if a == 3 {
			t.Fatalf("key %d still routes to removed shard 3", i)
		}
	}
}

// TestRingSpilloverFollowsRing: a key's spillover order equals the ring
// walk, so two routers with the same membership agree on fallback order.
func TestRingSpilloverFollowsRing(t *testing.T) {
	a := newRing([]int{1, 2, 3}, 0)
	b := newRing([]int{1, 2, 3}, 0)
	for i := 0; i < 50; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		sa, sb := a.sequence(key), b.sequence(key)
		for k := range sa {
			if sa[k] != sb[k] {
				t.Fatalf("rings over identical membership disagree on %q: %v vs %v", key, sa, sb)
			}
		}
	}
}
