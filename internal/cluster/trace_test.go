package cluster

import (
	"context"
	"testing"
	"time"

	"hypersolve/internal/service"
	"hypersolve/internal/tracelog"
)

// hasSpan reports whether a timeline contains a span with the given name.
func hasSpan(jt service.JobTrace, name string) bool {
	for _, sp := range jt.Spans {
		if sp.Name == name {
			return true
		}
	}
	return false
}

// TestTracePropagatesClientRouterShard: a caller-minted traceparent rides
// the submit through the router to the owning shard, and the trace the
// router serves back carries the caller's trace ID and the shard's full
// span taxonomy — one trace across all three hops.
func TestTracePropagatesClientRouterShard(t *testing.T) {
	tc := newTestCluster(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	caller := tracelog.NewTraceContext()
	job, err := tc.client.Submit(tracelog.NewContext(ctx, caller), quickSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.client.Wait(ctx, job.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	jt, err := tc.client.Trace(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if jt.TraceID != caller.TraceID {
		t.Fatalf("trace ID through router = %s, want the caller's %s", jt.TraceID, caller.TraceID)
	}
	if jt.JobID != job.ID {
		t.Fatalf("trace job ID = %s, want %s (router must stamp the shard prefix)", jt.JobID, job.ID)
	}
	for _, name := range []string{"compile", "admission", "queue", "run"} {
		if !hasSpan(jt, name) {
			t.Fatalf("trace lacks span %q: %+v", name, jt.Spans)
		}
	}

	// Without a caller traceparent the router mints one, so the shard's
	// trace is still rooted under a valid non-zero trace ID.
	job2, err := tc.client.Submit(ctx, quickSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	jt2, err := tc.client.Trace(ctx, job2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(jt2.TraceID) != 32 || jt2.TraceID == jt.TraceID {
		t.Fatalf("router-minted trace ID = %q, want a fresh 32-hex ID", jt2.TraceID)
	}
	// The router forwarded its freshly minted context on the wire, so the
	// shard recorded it as the timeline's parent span.
	if jt2.Parent == "" {
		t.Fatal("router-minted trace has no parent span: traceparent was not forwarded")
	}
}

// TestRouterTraceUnknownShard: a trace request for a shard the router does
// not front is a 404, mirroring Get.
func TestRouterTraceUnknownShard(t *testing.T) {
	tc := newTestCluster(t, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := tc.client.Trace(ctx, service.JobID{Shard: 9, Seq: 1})
	if status, ok := service.ErrorStatus(err); !ok || status != 404 {
		t.Fatalf("trace of unknown shard = %v (status %d), want 404", err, status)
	}
}
