package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"hypersolve/internal/service"
	"hypersolve/internal/telemetry"
	"hypersolve/internal/tracelog"
	"hypersolve/internal/version"
)

// NewHandler wraps a router in the solve service's HTTP JSON surface, so a
// hypersolved process in router mode serves the same API as a single
// daemon — plus the cluster report:
//
//	POST   /v1/jobs             submit a JobSpec  → 202 Job with a sharded ID (s2-17)
//	GET    /v1/jobs             union of all shards' jobs, merged sorted by ID
//	GET    /v1/jobs/{id}        fetch one job, routed by the ID's shard prefix
//	GET    /v1/jobs/{id}/trace  fetch the job's span timeline, routed likewise
//	GET    /v1/jobs/{id}/events proxy the owning shard's SSE progress stream
//	DELETE /v1/jobs/{id}        cancel a job, routed by the ID's shard prefix
//	GET    /healthz             router liveness (the process itself)
//	GET    /v1/cluster          per-backend reachability, queue depth, job counts, headline gauges
//	GET    /metrics             fleet-wide Prometheus scrape: router series + relabeled backend series
//
// Error semantics mirror the daemon handler ({"error": "..."} bodies). A
// backend's own HTTP verdict (404, 409, 429, 400, …) is relayed verbatim;
// a transport-level failure reaching a shard is a 502, and no reachable
// backend at all is a 503. A partial fan-out listing (some shards down)
// still succeeds with the X-Cluster-Partial: true header set.
func NewHandler(r *Router) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, req *http.Request) {
		// Shared with the daemon handler: same 64 MiB bound, same
		// unknown-field rejection, same 400/413 semantics.
		spec, ok := service.ReadJobSpec(w, req)
		if !ok {
			return
		}
		// The router is where a trace is born: adopt the caller's
		// traceparent if one came in, mint one otherwise, and carry it in
		// the context so the shard client forwards it on the wire. The
		// shard's service then roots its timeline under the same trace ID.
		tc := tracelog.FromRequest(req)
		if !tc.Valid() {
			tc = tracelog.NewTraceContext()
			// Echo the minted context so the submitter learns its trace ID
			// and the access-log middleware can tag this hop with it.
			w.Header().Set("traceparent", tc.Traceparent())
		}
		job, err := r.Submit(tracelog.NewContext(req.Context(), tc), spec)
		if err != nil {
			writeRouteError(w, err)
			return
		}
		service.WriteJSON(w, http.StatusAccepted, job)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, req *http.Request) {
		states, err := service.StatesFromQuery(req)
		if err != nil {
			service.WriteError(w, http.StatusBadRequest, err)
			return
		}
		jobs, complete, err := r.List(req.Context(), states...)
		if err != nil {
			writeRouteError(w, err)
			return
		}
		if !complete {
			w.Header().Set("X-Cluster-Partial", "true")
		}
		service.WriteJSON(w, http.StatusOK, jobs)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, req *http.Request) {
		id, ok := routerPathID(w, req)
		if !ok {
			return
		}
		job, err := r.Get(req.Context(), id)
		if err != nil {
			writeRouteError(w, err)
			return
		}
		service.WriteJSON(w, http.StatusOK, job)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, req *http.Request) {
		id, ok := routerPathID(w, req)
		if !ok {
			return
		}
		jt, err := r.Trace(req.Context(), id)
		if err != nil {
			writeRouteError(w, err)
			return
		}
		service.WriteJSON(w, http.StatusOK, jt)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, req *http.Request) {
		id, ok := routerPathID(w, req)
		if !ok {
			return
		}
		body, b, err := r.openEvents(req.Context(), id)
		if err != nil {
			// A shard unreachable before the stream opened is a clean 502
			// (and the backend is degraded); a backend verdict relays
			// verbatim, exactly like Get.
			writeRouteError(w, err)
			return
		}
		defer body.Close()
		r.metrics.proxiedStreams.Inc()
		fl, ok := w.(http.Flusher)
		if !ok {
			service.WriteError(w, http.StatusInternalServerError,
				errors.New("cluster: response writer does not support streaming"))
			return
		}
		service.SetEventStreamHeaders(w)
		w.WriteHeader(http.StatusOK)
		fl.Flush()
		// Proxy the stream verbatim, flushing per read so events reach the
		// subscriber as they happen, not when a buffer fills.
		buf := make([]byte, 4096)
		for {
			n, rerr := body.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					return // subscriber went away
				}
				fl.Flush()
			}
			if rerr != nil {
				// The status line is out, so a mid-stream backend death
				// cannot become a 502 here: the stream simply ends without
				// its terminal event (clients detect that — see
				// service.ErrStreamEnded) and the backend is degraded for
				// everything that follows.
				if rerr != io.EOF && req.Context().Err() == nil {
					b.setDegraded(rerr)
				}
				return
			}
		}
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, req *http.Request) {
		id, ok := routerPathID(w, req)
		if !ok {
			return
		}
		job, err := r.Cancel(req.Context(), id)
		if err != nil {
			writeRouteError(w, err)
			return
		}
		service.WriteJSON(w, http.StatusOK, job)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		// The router's own liveness; fleet health lives at /v1/cluster.
		service.WriteJSON(w, http.StatusOK, map[string]any{
			"status":  "ok",
			"role":    "router",
			"shards":  r.Shards(),
			"version": version.String(),
		})
	})
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, req *http.Request) {
		service.WriteJSON(w, http.StatusOK, r.Health(req.Context()))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = telemetry.WriteFamilies(w, r.Metrics(req.Context()))
	})
	mux.HandleFunc("POST /v1/cluster/backends", func(w http.ResponseWriter, req *http.Request) {
		var body struct {
			// Action is "add" (Primary required, Standby optional),
			// "drain", "undrain" or "remove" (Shard required).
			Action  string `json:"action"`
			Primary string `json:"primary,omitempty"`
			Standby string `json:"standby,omitempty"`
			Shard   int    `json:"shard,omitempty"`
		}
		dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<16))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&body); err != nil {
			service.WriteError(w, http.StatusBadRequest, fmt.Errorf("decoding membership request: %w", err))
			return
		}
		var err error
		var shard int
		switch body.Action {
		case "add":
			shard, err = r.AddShard(body.Primary, body.Standby)
		case "drain":
			shard, err = body.Shard, r.DrainShard(body.Shard, true)
		case "undrain":
			shard, err = body.Shard, r.DrainShard(body.Shard, false)
		case "remove":
			shard, err = body.Shard, r.RemoveShard(body.Shard)
		default:
			service.WriteError(w, http.StatusBadRequest,
				fmt.Errorf("cluster: unknown membership action %q (want add, drain, undrain or remove)", body.Action))
			return
		}
		if err != nil {
			switch {
			case errors.Is(err, ErrUnknownShard):
				service.WriteError(w, http.StatusNotFound, err)
			case errors.Is(err, ErrNotDraining):
				service.WriteError(w, http.StatusConflict, err)
			default:
				service.WriteError(w, http.StatusBadRequest, err)
			}
			return
		}
		service.WriteJSON(w, http.StatusOK, map[string]any{
			"action": body.Action,
			"shard":  shard,
			"shards": r.Shards(),
		})
	})
	return mux
}

// routerPathID parses the {id} path segment, requiring the shard prefix.
func routerPathID(w http.ResponseWriter, req *http.Request) (service.JobID, bool) {
	id, err := service.ParseJobID(req.PathValue("id"))
	if err == nil && !id.Sharded() {
		err = fmt.Errorf("%w: %q", ErrUnsharded, id)
	}
	if err != nil {
		service.WriteError(w, http.StatusBadRequest, err)
		return service.JobID{}, false
	}
	return id, true
}

// writeRouteError maps a routing failure onto the API's status codes: a
// backend's own HTTP verdict is relayed verbatim, an unknown shard is a
// 404, a fleet-wide outage a 503, and a single unreachable shard a 502.
func writeRouteError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnsharded):
		service.WriteError(w, http.StatusBadRequest, err)
	case errors.Is(err, ErrUnknownShard):
		service.WriteError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrNoBackends):
		service.WriteError(w, http.StatusServiceUnavailable, err)
	default:
		if status, spoke := service.ErrorStatus(err); spoke {
			service.WriteError(w, status, err)
			return
		}
		service.WriteError(w, http.StatusBadGateway, fmt.Errorf("cluster: backend unreachable: %w", err))
	}
}
