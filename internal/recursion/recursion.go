// Package recursion implements layer 4 of the model of Tarawneh et al.
// (P2S2 2017): programming-model conversion. It lets users write plain
// recursive functions — fork-join style, in the spirit of the paper's
// Listing 3 and of Cilk — and executes them on the ticketed message-passing
// interface of layer 3, delegating every subcall to another node chosen by
// the mapping layer.
//
// The paper implements this layer with a coroutine yield operator: a
// recursive function yields Call objects to request subcalls, yields Sync to
// collect their results, and may yield a validation function together with
// several Calls to request a non-deterministic choice (first valid result
// wins). Go has no yield; each in-flight call frame instead runs in its own
// goroutine that rendezvous with the node's layer-4 runtime over unbuffered
// channels. The handshake is strictly alternating — exactly one of
// {runtime, frame} executes at any instant — so simulation remains
// deterministic.
//
// Call records work as in the paper's Figure 3: each subcall's ticket is
// stored alongside an empty result slot; replies fill slots; Sync blocks
// until the current group is complete; a choice group resumes on the first
// valid result and ignores the rest.
package recursion

import (
	"fmt"

	"hypersolve/internal/mapping"
	"hypersolve/internal/sched"
)

// Value is the type carried through calls and results. Because the machine
// is simulated in one address space, values are passed by reference; tasks
// must treat received values as immutable (copy before mutating), as they
// would have to serialise them on real hardware.
type Value = any

// Task is a user-level recursive function: it receives a Frame for issuing
// subcalls and returns its result. Every invocation — root or subcall — runs
// the same Task, mirroring the single recursive function of the paper's
// application layer.
type Task func(f *Frame, arg Value) Value

// HintedCall pairs a subcall argument with a cross-layer mapping hint
// (paper Section III-B3); zero hint means "no information".
type HintedCall struct {
	Arg  Value
	Hint float64
}

// frameOp is the frame-to-runtime yield message.
type frameOp struct {
	kind   opKind
	arg    Value
	hint   float64
	valid  func(Value) bool
	calls  []HintedCall
	result Value
}

type opKind int

const (
	opCall opKind = iota
	opSync
	opChoose
	opReturn
)

// resumeMsg is the runtime-to-frame resume message.
type resumeMsg struct {
	values  []Value // Sync results, in issue order
	value   Value   // Choose result
	ok      bool    // Choose validity
	aborted bool    // simulation aborted; unwind the frame
}

// frameAborted is the panic value used to unwind frames when a simulation
// is abandoned before quiescence.
type frameAbortedError struct{}

func (frameAbortedError) Error() string { return "recursion: frame aborted" }

// Frame is the user-facing handle for one in-flight invocation.
type Frame struct {
	ops    chan frameOp
	resume chan resumeMsg
	node   sched.PID
}

// Node returns the PID of the process evaluating this frame, for
// diagnostics and tests; tasks should not use it to direct work.
func (f *Frame) Node() sched.PID { return f.node }

// Call requests the asynchronous evaluation of the task on arg by another
// node (the paper's "yield Call(args)"). Results are collected by the next
// Sync.
func (f *Frame) Call(arg Value) { f.CallHinted(arg, 0) }

// CallHinted is Call with a cross-layer mapping hint attached.
func (f *Frame) CallHinted(arg Value, hint float64) {
	f.ops <- frameOp{kind: opCall, arg: arg, hint: hint}
	if r := <-f.resume; r.aborted {
		panic(frameAbortedError{})
	}
}

// Sync blocks until every call issued since the previous Sync has returned,
// then yields their results in issue order (the paper's "yield Sync()").
func (f *Frame) Sync() []Value {
	f.ops <- frameOp{kind: opSync}
	r := <-f.resume
	if r.aborted {
		panic(frameAbortedError{})
	}
	return r.values
}

// CallSync evaluates a single subcall and waits for its result: shorthand
// for Call followed by Sync.
func (f *Frame) CallSync(arg Value) Value {
	f.Call(arg)
	vs := f.Sync()
	return vs[len(vs)-1]
}

// Choose requests the concurrent evaluation of several subcalls and resumes
// as soon as one result satisfies valid, returning (result, true); the
// remaining evaluations are ignored when they arrive. If all evaluations
// return without any satisfying valid, Choose returns (nil, false). This is
// the paper's non-deterministic choice: "yield [is_valid, Call(a), Call(b)]".
func (f *Frame) Choose(valid func(Value) bool, args ...Value) (Value, bool) {
	calls := make([]HintedCall, len(args))
	for i, a := range args {
		calls[i] = HintedCall{Arg: a}
	}
	return f.ChooseHinted(valid, calls...)
}

// ChooseHinted is Choose with per-call mapping hints.
func (f *Frame) ChooseHinted(valid func(Value) bool, calls ...HintedCall) (Value, bool) {
	if len(calls) == 0 {
		return nil, false
	}
	if valid == nil {
		valid = func(Value) bool { return true }
	}
	f.ops <- frameOp{kind: opChoose, valid: valid, calls: calls}
	r := <-f.resume
	if r.aborted {
		panic(frameAbortedError{})
	}
	return r.value, r.ok
}

// groupKind distinguishes gather (Sync) groups from choice groups.
type groupKind int

const (
	gatherGroup groupKind = iota
	choiceGroup
)

// callGroup is one call record of the paper's Figure 3: a set of tickets
// with result slots.
type callGroup struct {
	kind      groupKind
	values    []Value
	done      []bool
	issued    int // slots assigned so far (choice groups)
	remaining int
	valid     func(Value) bool
	resolved  bool
}

// frameState is the runtime-side bookkeeping for one frame.
type frameState struct {
	id           int
	frame        *Frame
	parentTicket mapping.Ticket
	isRoot       bool
	open         *callGroup // gather group accumulating Calls
	parked       *callGroup // group the frame is blocked on, nil if running/done
	outstanding  int        // pending tickets across all live groups
	dead         bool       // frame returned; absorb late choice replies
	// tickets lists the frame's issued subcall tickets (pruned lazily);
	// used to cancel the speculative subtree when the frame is killed.
	tickets []mapping.Ticket
}

// record routes a reply ticket back to its frame, group and slot.
type record struct {
	frame *frameState
	group *callGroup
	slot  int
}

// Options configures optional recursion-layer behaviours.
type Options struct {
	// CancelSpeculative kills losing branches when a Choose resolves: the
	// runtime sends layer-3 Cancel messages for the group's outstanding
	// tickets, and receivers recursively abandon those subtrees. Off by
	// default — the paper's semantics let speculative work run to
	// completion and merely ignore its results (Section IV-C).
	CancelSpeculative bool
}

// Runtime is the per-process layer-4 engine. It implements mapping.App.
type Runtime struct {
	task   Task
	opts   Options
	self   sched.PID
	frames map[int]*frameState
	// byParent indexes live non-root frames by the work ticket that
	// spawned them, for cancellation.
	byParent map[mapping.Ticket]*frameState
	records  map[mapping.Ticket]record
	nextID   int

	framesStarted   int64
	framesCancelled int64
	rootResult      Value
	rootDone        bool
}

var _ mapping.App = (*Runtime)(nil)

// AppFactory adapts a Task into a layer-3 application factory, installing
// one layer-4 runtime per process.
func AppFactory(task Task) mapping.AppFactory {
	return AppFactoryOpts(task, Options{})
}

// AppFactoryOpts is AppFactory with explicit runtime options.
func AppFactoryOpts(task Task, opts Options) mapping.AppFactory {
	return func(p sched.PID) mapping.App {
		return &Runtime{
			task:     task,
			opts:     opts,
			self:     p,
			frames:   make(map[int]*frameState),
			byParent: make(map[mapping.Ticket]*frameState),
			records:  make(map[mapping.Ticket]record),
		}
	}
}

// Init implements mapping.App.
func (rt *Runtime) Init(ctx *mapping.Context) {}

// Recv implements mapping.App: triggers and work start frames; replies fill
// call records and resume parked frames.
func (rt *Runtime) Recv(ctx *mapping.Context, ticket mapping.Ticket, kind mapping.Kind, payload any) {
	switch kind {
	case mapping.Trigger:
		rt.startFrame(ctx, payload, mapping.NoTicket, true)
	case mapping.Work:
		rt.startFrame(ctx, payload, ticket, false)
	case mapping.Reply:
		rt.handleReply(ctx, ticket, payload)
	case mapping.Cancel:
		rt.handleCancel(ctx, ticket)
	}
}

// FramesStarted returns how many task invocations this process evaluated —
// a layer-4 view of node activity.
func (rt *Runtime) FramesStarted() int64 { return rt.framesStarted }

// RootResult returns the result of the root invocation, if this process
// hosted the root frame and it has completed.
func (rt *Runtime) RootResult() (Value, bool) { return rt.rootResult, rt.rootDone }

// LiveFrames returns the number of unfinished frames, for leak diagnostics.
func (rt *Runtime) LiveFrames() int {
	n := 0
	for _, f := range rt.frames {
		if !f.dead {
			n++
		}
	}
	return n
}

// startFrame launches a task invocation in a fresh goroutine and drives it
// to its first park point.
func (rt *Runtime) startFrame(ctx *mapping.Context, arg Value, parent mapping.Ticket, isRoot bool) {
	rt.nextID++
	rt.framesStarted++
	f := &frameState{
		id:           rt.nextID,
		parentTicket: parent,
		isRoot:       isRoot,
		frame: &Frame{
			ops:    make(chan frameOp),
			resume: make(chan resumeMsg),
			node:   rt.self,
		},
	}
	rt.frames[f.id] = f
	if !isRoot {
		rt.byParent[parent] = f
	}
	go runTask(rt.task, f.frame, arg)
	rt.drive(ctx, f)
}

// runTask is the frame goroutine wrapper: it evaluates the task and yields
// the final result, or unwinds silently when the frame is aborted.
func runTask(task Task, frame *Frame, arg Value) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(frameAbortedError); ok {
				return // simulation abandoned; exit quietly
			}
			panic(r)
		}
	}()
	result := task(frame, arg)
	frame.ops <- frameOp{kind: opReturn, result: result}
}

// drive runs the runtime side of the yield handshake until the frame parks
// or finishes.
func (rt *Runtime) drive(ctx *mapping.Context, f *frameState) {
	for {
		op := <-f.frame.ops
		switch op.kind {
		case opCall:
			rt.issueCall(ctx, f, op.arg, op.hint)
			f.frame.resume <- resumeMsg{}

		case opSync:
			g := f.open
			f.open = nil
			if g == nil {
				f.frame.resume <- resumeMsg{values: nil}
				continue
			}
			if g.remaining == 0 {
				f.frame.resume <- resumeMsg{values: g.values}
				continue
			}
			f.parked = g
			return

		case opChoose:
			g := &callGroup{
				kind:      choiceGroup,
				values:    make([]Value, len(op.calls)),
				done:      make([]bool, len(op.calls)),
				remaining: len(op.calls),
				valid:     op.valid,
			}
			for _, c := range op.calls {
				rt.issueInto(ctx, f, g, c.Arg, c.Hint)
			}
			f.parked = g
			return

		case opReturn:
			rt.finishFrame(ctx, f, op.result)
			return

		default:
			panic(fmt.Sprintf("recursion: unknown frame op %d", op.kind))
		}
	}
}

// issueCall adds a subcall to the frame's open gather group.
func (rt *Runtime) issueCall(ctx *mapping.Context, f *frameState, arg Value, hint float64) {
	if f.open == nil {
		f.open = &callGroup{kind: gatherGroup}
	}
	g := f.open
	g.values = append(g.values, nil)
	g.done = append(g.done, false)
	g.remaining++
	rt.sendWork(ctx, f, g, len(g.values)-1, arg, hint)
}

// issueInto adds a subcall to an explicit (choice) group; slots are
// assigned in issue order.
func (rt *Runtime) issueInto(ctx *mapping.Context, f *frameState, g *callGroup, arg Value, hint float64) {
	slot := g.issued
	g.issued++
	rt.sendWork(ctx, f, g, slot, arg, hint)
}

// sendWork maps one subcall through layer 3 and records the ticket.
func (rt *Runtime) sendWork(ctx *mapping.Context, f *frameState, g *callGroup, slot int, arg Value, hint float64) {
	var opts []mapping.SendOption
	if hint > 0 {
		opts = append(opts, mapping.WithHint(hint))
	}
	ticket, err := ctx.SendWork(arg, opts...)
	if err != nil {
		panic(fmt.Sprintf("recursion: pid %d failed to map subcall: %v", rt.self, err))
	}
	rt.records[ticket] = record{frame: f, group: g, slot: slot}
	f.tickets = append(f.tickets, ticket)
	f.outstanding++
}

// finishFrame replies to the parent (or records the root result) and
// retires the frame, keeping a tombstone while choice replies remain.
func (rt *Runtime) finishFrame(ctx *mapping.Context, f *frameState, result Value) {
	if f.isRoot {
		rt.rootResult = result
		rt.rootDone = true
	} else {
		if err := ctx.Reply(f.parentTicket, result); err != nil {
			panic(fmt.Sprintf("recursion: pid %d failed to reply: %v", rt.self, err))
		}
	}
	f.dead = true
	f.parked = nil
	if !f.isRoot {
		delete(rt.byParent, f.parentTicket)
	}
	if f.outstanding == 0 {
		delete(rt.frames, f.id)
	}
}

// handleReply fills a call record and resumes the frame when its parked
// group completes or resolves.
func (rt *Runtime) handleReply(ctx *mapping.Context, ticket mapping.Ticket, payload any) {
	rec, ok := rt.records[ticket]
	if !ok {
		if rt.opts.CancelSpeculative {
			// The reply raced with a Cancel already sent for this ticket;
			// drop it.
			return
		}
		panic(fmt.Sprintf("recursion: pid %d got reply for unknown ticket %d", rt.self, ticket))
	}
	delete(rt.records, ticket)
	f, g := rec.frame, rec.group
	f.outstanding--
	g.remaining--
	g.done[rec.slot] = true
	g.values[rec.slot] = payload

	if f.dead {
		if f.outstanding == 0 {
			delete(rt.frames, f.id)
		}
		return
	}

	switch g.kind {
	case gatherGroup:
		if f.parked == g && g.remaining == 0 {
			f.parked = nil
			f.frame.resume <- resumeMsg{values: g.values}
			rt.drive(ctx, f)
		}
	case choiceGroup:
		if g.resolved {
			return // a valid result already won; ignore the rest
		}
		if g.valid(payload) {
			g.resolved = true
			if f.parked != g {
				panic("recursion: choice group resolved while frame not parked on it")
			}
			if rt.opts.CancelSpeculative {
				rt.cancelFrameTickets(ctx, f, g)
			}
			f.parked = nil
			f.frame.resume <- resumeMsg{value: payload, ok: true}
			rt.drive(ctx, f)
			return
		}
		if g.remaining == 0 {
			// All evaluations returned, none valid: yield null (paper
			// Section IV-C).
			f.parked = nil
			f.frame.resume <- resumeMsg{value: nil, ok: false}
			rt.drive(ctx, f)
		}
	}
}

// cancelFrameTickets revokes the frame's outstanding subcalls belonging to
// the given group (or all groups when g is nil): layer-3 Cancel messages go
// out, and the local records are dropped so late replies are ignored.
func (rt *Runtime) cancelFrameTickets(ctx *mapping.Context, f *frameState, g *callGroup) {
	kept := f.tickets[:0]
	for _, tk := range f.tickets {
		rec, live := rt.records[tk]
		if !live || rec.frame != f {
			continue // already answered
		}
		if g != nil && rec.group != g {
			kept = append(kept, tk)
			continue // belongs to another (still wanted) group
		}
		delete(rt.records, tk)
		f.outstanding--
		rec.group.remaining--
		if err := ctx.Cancel(tk); err != nil {
			panic(fmt.Sprintf("recursion: pid %d failed to cancel ticket %d: %v", rt.self, tk, err))
		}
	}
	f.tickets = kept
}

// handleCancel abandons the frame spawned by the given work ticket: the
// frame's goroutine is unwound and its own outstanding subcalls are
// cancelled recursively across the mesh.
func (rt *Runtime) handleCancel(ctx *mapping.Context, ticket mapping.Ticket) {
	f, ok := rt.byParent[ticket]
	if !ok {
		return // frame already finished (its reply may be in flight)
	}
	rt.killFrame(ctx, f)
}

// killFrame retires a live frame without producing a result.
func (rt *Runtime) killFrame(ctx *mapping.Context, f *frameState) {
	rt.framesCancelled++
	rt.cancelFrameTickets(ctx, f, nil)
	if f.parked != nil {
		f.parked = nil
		f.frame.resume <- resumeMsg{aborted: true}
	}
	f.dead = true
	if !f.isRoot {
		delete(rt.byParent, f.parentTicket)
	}
	delete(rt.frames, f.id)
}

// FramesCancelled returns how many frames this process abandoned due to
// speculative cancellation.
func (rt *Runtime) FramesCancelled() int64 { return rt.framesCancelled }

// Abort unwinds every parked frame so its goroutine exits. It must only be
// called after the simulation loop has stopped (frames are then either
// parked or finished); the machine layer uses it when MaxSteps is exceeded.
func (rt *Runtime) Abort() {
	for id, f := range rt.frames {
		if !f.dead && f.parked != nil {
			f.parked = nil
			f.frame.resume <- resumeMsg{aborted: true}
		}
		delete(rt.frames, id)
	}
	rt.records = make(map[mapping.Ticket]record)
}
