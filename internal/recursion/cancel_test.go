package recursion

import (
	"runtime"
	"testing"
	"time"

	"hypersolve/internal/mapping"
	"hypersolve/internal/mesh"
	"hypersolve/internal/sched"
)

// newCancelNet assembles the stack with speculative cancellation enabled.
func newCancelNet(t *testing.T, topo mesh.Topology, mapper mapping.Factory, task Task) *mapping.Network {
	t.Helper()
	net, err := mapping.New(mapping.Config{
		Physical: topo,
		Mapper:   mapper,
		Factory:  AppFactoryOpts(task, Options{CancelSpeculative: true}),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// chooseChainTask: the root chooses between a fast valid leaf and a slow
// chain of n sequential calls; with cancellation the chain is revoked as
// soon as the leaf answers.
func chooseChainTask(chainLen int) Task {
	return func(f *Frame, arg Value) Value {
		n := arg.(int)
		switch {
		case n == -1: // root
			v, ok := f.Choose(func(v Value) bool { return v.(int) > 0 }, 0, chainLen)
			if !ok {
				return -1
			}
			return v.(int)
		case n == 0: // fast valid leaf
			return 1
		default: // slow chain
			return f.CallSync(n - 1)
		}
	}
}

func totalFrames(net *mapping.Network) (started, cancelled, live int64) {
	for pid := 0; pid < net.Virtual().Size(); pid++ {
		rt := net.App(sched.PID(pid)).(*Runtime)
		started += rt.FramesStarted()
		cancelled += rt.FramesCancelled()
		live += int64(rt.LiveFrames())
	}
	return
}

// phasedTask is a losing branch with *sequential phases*: the worker runs
// `phases` rounds of CallSync, spawning one leaf per round. Killing the
// worker while it is parked between phases genuinely saves the remaining
// rounds — the case where speculative cancellation pays off. (A frame that
// spawns all its work on arrival cannot be saved: in a one-hop-per-step
// machine the cancel wave travels exactly as fast as the work frontier and
// always arrives after the children were spawned.)
func phasedTask(phases int) Task {
	return func(f *Frame, arg Value) Value {
		n := arg.(int)
		switch {
		case n == -1: // root: fast valid leaf vs slow phased worker
			v, ok := f.Choose(func(v Value) bool { return v.(int) > 0 }, 0, -2)
			if !ok {
				return -1
			}
			return v.(int)
		case n == 0: // fast valid leaf
			return 1
		case n == -2: // phased worker: sequential leaf rounds, invalid result
			total := 0
			for p := 0; p < phases; p++ {
				total += f.CallSync(100 + p).(int)
			}
			return -total
		default: // leaf of a phase
			return n
		}
	}
}

func TestCancelRevokesPhasedWorker(t *testing.T) {
	const phases = 30
	run := func(cancel bool) (result int, started, cancelled int64) {
		factory := AppFactory(phasedTask(phases))
		if cancel {
			factory = AppFactoryOpts(phasedTask(phases), Options{CancelSpeculative: true})
		}
		net, err := mapping.New(mapping.Config{
			Physical: mesh.MustTorus(8, 8),
			Mapper:   mapping.NewRoundRobin(),
			Factory:  factory,
			Seed:     1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Trigger(0, -1); err != nil {
			t.Fatal(err)
		}
		stats := net.Run()
		if !stats.Quiescent {
			t.Fatal("run did not quiesce")
		}
		v, ok := net.App(0).(*Runtime).RootResult()
		if !ok {
			t.Fatal("no root result")
		}
		s, c, live := totalFrames(net)
		if live != 0 {
			t.Fatalf("%d live frames after quiescence", live)
		}
		return v.(int), s, c
	}

	plainResult, plainStarted, plainCancelled := run(false)
	cancelResult, cancelStarted, cancelCancelled := run(true)

	if plainResult != 1 || cancelResult != 1 {
		t.Fatalf("results: plain %d, cancel %d, want 1", plainResult, cancelResult)
	}
	if plainCancelled != 0 {
		t.Errorf("plain run cancelled %d frames, want 0", plainCancelled)
	}
	if cancelCancelled == 0 {
		t.Error("cancelling run revoked no frames")
	}
	// Plain: root + leaf + worker + 30 phase leaves. Cancelled: the worker
	// dies while parked on an early phase, saving most leaf rounds.
	if plainStarted < phases {
		t.Errorf("plain run started %d frames, expected >= %d", plainStarted, phases)
	}
	if cancelStarted >= plainStarted/2 {
		t.Errorf("cancellation saved too little: %d vs %d frames", cancelStarted, plainStarted)
	}
}

func TestCancelPropagatesDownSubtrees(t *testing.T) {
	// The losing branch is itself a fork-join tree; cancellation must chase
	// every level. Tree depth 6 => 2^6 frames if uncancelled.
	task := func(f *Frame, arg Value) Value {
		n := arg.(int)
		switch {
		case n == -1: // root: choose between instant leaf and big tree
			v, ok := f.Choose(func(v Value) bool { return v.(int) >= 0 }, 0, 6)
			if !ok {
				return -1
			}
			return v.(int)
		case n <= 0:
			return 0
		default:
			f.Call(n - 1)
			f.Call(n - 1)
			vs := f.Sync()
			return vs[0].(int) + vs[1].(int)
		}
	}
	net := newCancelNet(t, mesh.MustTorus(6, 6), mapping.NewRoundRobin(), task)
	if err := net.Trigger(0, -1); err != nil {
		t.Fatal(err)
	}
	stats := net.Run()
	if !stats.Quiescent {
		t.Fatal("run did not quiesce")
	}
	if _, ok := net.App(0).(*Runtime).RootResult(); !ok {
		t.Fatal("no root result")
	}
	started, cancelled, live := totalFrames(net)
	if live != 0 {
		t.Fatalf("%d live frames leaked", live)
	}
	// The cancel wave kills a frame at every tree level, recursively — but
	// it cannot *outrun* the unfolding frontier (both travel one hop per
	// step), so the full 127-frame tree is still started. What cancellation
	// guarantees is that a large share of those frames is reaped without
	// producing reply traffic.
	if cancelled < 30 {
		t.Errorf("only %d frames cancelled; expected the wave to reap most of the tree", cancelled)
	}
	if started < 120 {
		t.Errorf("started %d frames; the frontier outruns cancellation, full tree expected", started)
	}
}

func TestCancelDoesNotChangeVerdicts(t *testing.T) {
	// Identical results with and without cancellation across mappers.
	for _, mf := range []mapping.Factory{mapping.NewRoundRobin(), mapping.NewLeastBusy()} {
		for _, chain := range []int{0, 5, 25} {
			net := newCancelNet(t, mesh.MustTorus(5, 5), mf, chooseChainTask(chain))
			if err := net.Trigger(0, -1); err != nil {
				t.Fatal(err)
			}
			if stats := net.Run(); !stats.Quiescent {
				t.Fatal("run did not quiesce")
			}
			v, ok := net.App(0).(*Runtime).RootResult()
			if !ok || v.(int) != 1 {
				t.Errorf("chain %d: result %v (ok=%v), want 1", chain, v, ok)
			}
		}
	}
}

func TestCancelAllInvalidStillYieldsNull(t *testing.T) {
	// When no branch is valid, nothing resolves early, nothing is
	// cancelled, and Choose reports !ok.
	task := func(f *Frame, arg Value) Value {
		n := arg.(int)
		if n >= 0 {
			return n
		}
		_, ok := f.Choose(func(v Value) bool { return v.(int) > 10 }, 1, 2, 3)
		return ok
	}
	net := newCancelNet(t, mesh.MustTorus(4, 4), mapping.NewRoundRobin(), task)
	if err := net.Trigger(0, -1); err != nil {
		t.Fatal(err)
	}
	net.Run()
	v, ok := net.App(0).(*Runtime).RootResult()
	if !ok || v.(bool) != false {
		t.Errorf("result %v (ok=%v), want false", v, ok)
	}
	_, cancelled, _ := totalFrames(net)
	if cancelled != 0 {
		t.Errorf("cancelled %d frames with no resolution", cancelled)
	}
}

func TestCancelNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		net := newCancelNet(t, mesh.MustTorus(6, 6), mapping.NewLeastBusy(), chooseChainTask(60))
		if err := net.Trigger(0, -1); err != nil {
			t.Fatal(err)
		}
		if stats := net.Run(); !stats.Quiescent {
			t.Fatal("run did not quiesce")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestCancelRaceWithInFlightReply(t *testing.T) {
	// Chain length 1 makes the losing branch finish almost immediately, so
	// the Cancel frequently crosses an in-flight Reply; the runtime must
	// drop the orphan reply silently. Run many seeds to exercise timings.
	for seed := int64(0); seed < 8; seed++ {
		net, err := mapping.New(mapping.Config{
			Physical: mesh.MustTorus(4, 4),
			Mapper:   mapping.NewRandom(),
			Factory:  AppFactoryOpts(chooseChainTask(1), Options{CancelSpeculative: true}),
			Seed:     seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Trigger(0, -1); err != nil {
			t.Fatal(err)
		}
		if stats := net.Run(); !stats.Quiescent {
			t.Fatalf("seed %d: run did not quiesce", seed)
		}
		v, ok := net.App(0).(*Runtime).RootResult()
		if !ok || v.(int) != 1 {
			t.Errorf("seed %d: result %v (ok=%v), want 1", seed, v, ok)
		}
	}
}
