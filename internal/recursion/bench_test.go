package recursion

import (
	"testing"

	"hypersolve/internal/mapping"
	"hypersolve/internal/mesh"
)

// BenchmarkFrameOverhead measures the cost of the goroutine-continuation
// machinery: a fib(14) run creates ~1200 frames, each with one goroutine
// and two channel handshakes per yield.
func BenchmarkFrameOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net, err := mapping.New(mapping.Config{
			Physical: mesh.MustTorus(8, 8),
			Mapper:   mapping.NewRoundRobin(),
			Factory:  AppFactory(fibTask),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := net.Trigger(0, 14); err != nil {
			b.Fatal(err)
		}
		if stats := net.Run(); !stats.Quiescent {
			b.Fatal("no quiescence")
		}
	}
}
