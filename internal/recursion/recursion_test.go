package recursion

import (
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"hypersolve/internal/mapping"
	"hypersolve/internal/mesh"
	"hypersolve/internal/sched"
	"hypersolve/internal/simulator"
)

// newNet assembles the full layer 1-4 stack for a task.
func newNet(t *testing.T, topo mesh.Topology, mapper mapping.Factory, task Task) *mapping.Network {
	t.Helper()
	net, err := mapping.New(mapping.Config{
		Physical: topo,
		Mapper:   mapper,
		Factory:  AppFactory(task),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// runRoot triggers the task at PID 0 and returns the root result.
func runRoot(t *testing.T, net *mapping.Network, arg Value) (Value, bool) {
	t.Helper()
	if err := net.Trigger(0, arg); err != nil {
		t.Fatal(err)
	}
	stats := net.Run()
	if !stats.Quiescent {
		t.Fatal("run did not quiesce")
	}
	rt := net.App(0).(*Runtime)
	return rt.RootResult()
}

// sumTask is the paper's Listing 3: sum(n) = n + sum(n-1) with a single
// delegated subcall per level.
var sumTask Task = func(f *Frame, arg Value) Value {
	n := arg.(int)
	if n < 1 {
		return 0
	}
	total := f.CallSync(n - 1).(int)
	return total + n
}

// fibTask forks two subcalls per level: the canonical fork-join shape.
var fibTask Task = func(f *Frame, arg Value) Value {
	n := arg.(int)
	if n < 2 {
		return n
	}
	f.Call(n - 1)
	f.Call(n - 2)
	vs := f.Sync()
	return vs[0].(int) + vs[1].(int)
}

func TestListing3SumOnTorus(t *testing.T) {
	net := newNet(t, mesh.MustTorus(6, 6), mapping.NewRoundRobin(), sumTask)
	got, ok := runRoot(t, net, 10)
	if !ok {
		t.Fatal("root result missing")
	}
	if got.(int) != 55 {
		t.Errorf("sum(10) = %v, want 55", got)
	}
}

func TestSumAcrossTopologiesAndMappers(t *testing.T) {
	topos := []mesh.Topology{
		mesh.MustTorus(4, 4),
		mesh.MustTorus(3, 3, 3),
		mesh.MustHypercube(4),
		mesh.MustFullyConnected(9),
		mesh.MustRing(7),
		mesh.MustGrid(4, 4),
	}
	mappers := []mapping.Factory{
		mapping.NewRoundRobin(),
		mapping.NewLeastBusy(),
		mapping.NewRandom(),
		mapping.NewWeighted(1),
	}
	for _, topo := range topos {
		for _, mf := range mappers {
			net := newNet(t, topo, mf, sumTask)
			got, ok := runRoot(t, net, 12)
			if !ok || got.(int) != 78 {
				t.Errorf("%s: sum(12) = %v (ok=%v), want 78", topo.Name(), got, ok)
			}
		}
	}
}

func TestFibForkJoin(t *testing.T) {
	want := []int{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55}
	for n := 0; n <= 10; n++ {
		net := newNet(t, mesh.MustTorus(5, 5), mapping.NewRoundRobin(), fibTask)
		got, ok := runRoot(t, net, n)
		if !ok || got.(int) != want[n] {
			t.Errorf("fib(%d) = %v (ok=%v), want %d", n, got, ok, want[n])
		}
	}
}

func TestPropertySumMatchesClosedForm(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw % 40)
		net, err := mapping.New(mapping.Config{
			Physical: mesh.MustTorus(5, 5),
			Mapper:   mapping.NewLeastBusy(),
			Factory:  AppFactory(sumTask),
		})
		if err != nil {
			return false
		}
		if err := net.Trigger(0, n); err != nil {
			return false
		}
		if stats := net.Run(); !stats.Quiescent {
			return false
		}
		got, ok := net.App(0).(*Runtime).RootResult()
		return ok && got.(int) == n*(n+1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestChooseFirstValidWins(t *testing.T) {
	// Leaf calls return their argument; the root chooses the first result
	// exceeding 10. Exactly one candidate qualifies.
	task := func(f *Frame, arg Value) Value {
		req := arg.(map[string]any)
		if req["leaf"].(bool) {
			return req["v"].(int)
		}
		v, ok := f.Choose(func(v Value) bool { return v.(int) > 10 },
			map[string]any{"leaf": true, "v": 5},
			map[string]any{"leaf": true, "v": 20},
			map[string]any{"leaf": true, "v": 7},
		)
		if !ok {
			return -1
		}
		return v
	}
	net := newNet(t, mesh.MustTorus(4, 4), mapping.NewRoundRobin(), task)
	got, ok := runRoot(t, net, map[string]any{"leaf": false})
	if !ok {
		t.Fatal("no root result")
	}
	if got.(int) != 20 {
		t.Errorf("choose = %v, want 20", got)
	}
}

func TestChooseAllInvalidYieldsNull(t *testing.T) {
	task := func(f *Frame, arg Value) Value {
		req := arg.(int)
		if req >= 0 {
			return req
		}
		_, ok := f.Choose(func(v Value) bool { return v.(int) > 100 }, 1, 2, 3)
		return ok
	}
	net := newNet(t, mesh.MustTorus(4, 4), mapping.NewRoundRobin(), task)
	got, ok := runRoot(t, net, -1)
	if !ok {
		t.Fatal("no root result")
	}
	if got.(bool) != false {
		t.Error("choose over all-invalid results must report !ok")
	}
}

func TestChooseLateRepliesIgnored(t *testing.T) {
	// Two branches: a fast leaf and a slow chain. The fast one is valid;
	// the slow chain's eventual reply must be absorbed silently and the
	// run must still quiesce with no live frames.
	task := func(f *Frame, arg Value) Value {
		n := arg.(int)
		switch {
		case n == 0: // fast valid leaf
			return 1
		case n > 0: // slow chain of n sequential calls, returns 1 at depth 0
			if n == 99 { // root marker
				v, ok := f.Choose(func(v Value) bool { return v.(int) > 0 }, 0, 10)
				if !ok {
					return -1
				}
				return v.(int)
			}
			return f.CallSync(n - 1)
		}
		return -1
	}
	net := newNet(t, mesh.MustTorus(5, 5), mapping.NewRoundRobin(), task)
	got, ok := runRoot(t, net, 99)
	if !ok {
		t.Fatal("no root result")
	}
	if got.(int) != 1 {
		t.Errorf("root = %v, want 1", got)
	}
	// Every frame everywhere must have been retired.
	for pid := 0; pid < net.Virtual().Size(); pid++ {
		rt := net.App(sched.PID(pid)).(*Runtime)
		if live := rt.LiveFrames(); live != 0 {
			t.Errorf("pid %d has %d live frames after quiescence", pid, live)
		}
	}
}

func TestMixedCallAndChoose(t *testing.T) {
	// A frame issues a gather call, then a choice, then syncs the gather:
	// groups must not interfere.
	task := func(f *Frame, arg Value) Value {
		mode := arg.(string)
		switch mode {
		case "leafA":
			return 100
		case "leafB":
			return 7
		default:
			f.Call("leafA") // gather group
			v, ok := f.Choose(func(v Value) bool { return v.(int) == 7 }, "leafB")
			if !ok {
				return -1
			}
			gathered := f.Sync()
			return gathered[0].(int) + v.(int)
		}
	}
	net := newNet(t, mesh.MustTorus(4, 4), mapping.NewRoundRobin(), task)
	got, ok := runRoot(t, net, "root")
	if !ok {
		t.Fatal("no root result")
	}
	if got.(int) != 107 {
		t.Errorf("mixed result = %v, want 107", got)
	}
}

func TestSyncWithNoCallsReturnsEmpty(t *testing.T) {
	task := func(f *Frame, arg Value) Value {
		vs := f.Sync()
		return len(vs)
	}
	net := newNet(t, mesh.MustTorus(4, 4), mapping.NewRoundRobin(), task)
	got, ok := runRoot(t, net, nil)
	if !ok || got.(int) != 0 {
		t.Errorf("empty Sync = %v (ok=%v), want 0", got, ok)
	}
}

func TestChooseWithNoCallsReturnsNotOK(t *testing.T) {
	task := func(f *Frame, arg Value) Value {
		_, ok := f.Choose(nil)
		return ok
	}
	net := newNet(t, mesh.MustTorus(4, 4), mapping.NewRoundRobin(), task)
	got, ok := runRoot(t, net, nil)
	if !ok || got.(bool) != false {
		t.Errorf("empty Choose = %v (ok=%v), want false", got, ok)
	}
}

func TestWideFanout(t *testing.T) {
	// One frame forks 32 children and sums their results; exercises large
	// gather groups and result ordering.
	task := func(f *Frame, arg Value) Value {
		n := arg.(int)
		if n >= 0 {
			return n * n
		}
		for i := 0; i < 32; i++ {
			f.Call(i)
		}
		vs := f.Sync()
		total := 0
		for i, v := range vs {
			if v.(int) != i*i {
				panic("results out of issue order")
			}
			total += v.(int)
		}
		return total
	}
	net := newNet(t, mesh.MustTorus(6, 6), mapping.NewLeastBusy(), task)
	got, ok := runRoot(t, net, -1)
	want := 0
	for i := 0; i < 32; i++ {
		want += i * i
	}
	if !ok || got.(int) != want {
		t.Errorf("fanout sum = %v (ok=%v), want %d", got, ok, want)
	}
}

func TestFramesDistributeAcrossMesh(t *testing.T) {
	// fib(12) creates hundreds of frames; with round-robin mapping on a
	// torus they must not all pile onto one node.
	net := newNet(t, mesh.MustTorus(5, 5), mapping.NewRoundRobin(), fibTask)
	if _, ok := runRoot(t, net, 12); !ok {
		t.Fatal("no root result")
	}
	busy := 0
	var total int64
	for pid := 0; pid < net.Virtual().Size(); pid++ {
		n := net.App(sched.PID(pid)).(*Runtime).FramesStarted()
		total += n
		if n > 0 {
			busy++
		}
	}
	if busy < 20 {
		t.Errorf("only %d/25 nodes evaluated frames; expected wide distribution", busy)
	}
	if total < 100 {
		t.Errorf("total frames %d unexpectedly small for fib(12)", total)
	}
}

func TestDeterministicFrameCounts(t *testing.T) {
	run := func() []int64 {
		net := newNet(t, mesh.MustTorus(4, 4), mapping.NewLeastBusy(), fibTask)
		if _, ok := runRoot(t, net, 10); !ok {
			t.Fatal("no root result")
		}
		out := make([]int64, net.Virtual().Size())
		for pid := range out {
			out[pid] = net.App(sched.PID(pid)).(*Runtime).FramesStarted()
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame counts diverge at pid %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestAbortReleasesFrames(t *testing.T) {
	before := runtime.NumGoroutine()
	// An infinite chain: every frame spawns another. MaxSteps cuts it off.
	task := func(f *Frame, arg Value) Value {
		return f.CallSync(arg)
	}
	net, err := mapping.New(mapping.Config{
		Physical: mesh.MustTorus(4, 4),
		Mapper:   mapping.NewRoundRobin(),
		Factory:  AppFactory(task),
		Sim:      simulator.Config{MaxSteps: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Trigger(0, "work"); err != nil {
		t.Fatal(err)
	}
	stats := net.Run()
	if stats.Quiescent {
		t.Fatal("infinite chain unexpectedly quiesced")
	}
	for pid := 0; pid < net.Virtual().Size(); pid++ {
		net.App(sched.PID(pid)).(*Runtime).Abort()
	}
	// Frame goroutines unwind asynchronously after the abort handshake.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestHintedCallsFlowThroughMapping(t *testing.T) {
	// Run with the weighted mapper and hinted calls; correctness must be
	// unaffected and the run must quiesce.
	task := func(f *Frame, arg Value) Value {
		n := arg.(int)
		if n < 2 {
			return n
		}
		f.CallHinted(n-1, float64(n-1))
		f.CallHinted(n-2, float64(n-2))
		vs := f.Sync()
		return vs[0].(int) + vs[1].(int)
	}
	net := newNet(t, mesh.MustTorus(4, 4), mapping.NewWeighted(2), task)
	got, ok := runRoot(t, net, 10)
	if !ok || got.(int) != 55 {
		t.Errorf("hinted fib(10) = %v (ok=%v), want 55", got, ok)
	}
}

func TestChooseHintedResolves(t *testing.T) {
	task := func(f *Frame, arg Value) Value {
		n := arg.(int)
		if n >= 0 {
			return n
		}
		v, ok := f.ChooseHinted(func(v Value) bool { return v.(int) == 2 },
			HintedCall{Arg: 1, Hint: 1},
			HintedCall{Arg: 2, Hint: 4},
		)
		if !ok {
			return -1
		}
		return v
	}
	net := newNet(t, mesh.MustTorus(4, 4), mapping.NewWeighted(1), task)
	got, ok := runRoot(t, net, -5)
	if !ok || got.(int) != 2 {
		t.Errorf("hinted choose = %v (ok=%v), want 2", got, ok)
	}
}
