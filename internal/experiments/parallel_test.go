package experiments

import (
	"reflect"
	"runtime"
	"testing"
)

// TestFigure4ParallelDeterminism asserts the sweep engine's core contract:
// fanning the (series, size, problem) runs over a worker pool produces
// bit-identical points to the serial engine, at any parallelism level.
func TestFigure4ParallelDeterminism(t *testing.T) {
	levels := []int{runtime.GOMAXPROCS(0), 4, 13}
	base := testConfig(t)
	base.Parallelism = 1
	serial, err := Figure4(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range levels {
		cfg := testConfig(t)
		cfg.Parallelism = p
		got, err := Figure4(cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if !reflect.DeepEqual(serial, got) {
			t.Errorf("parallelism %d: points differ from serial run\nserial:   %+v\nparallel: %+v", p, serial, got)
		}
	}
}

// TestFigure5ParallelDeterminism covers the unfolding experiment: traces,
// heatmaps and summaries must not depend on completion order.
func TestFigure5ParallelDeterminism(t *testing.T) {
	w, err := SmallWorkload(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Figure5Config{Workload: w, Side: 8, Seed: 2, Parallelism: 1}
	serial, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{runtime.GOMAXPROCS(0), 6} {
		cfg.Parallelism = p
		got, err := Figure5(cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if !reflect.DeepEqual(serial, got) {
			t.Errorf("parallelism %d: results differ from serial run", p)
		}
	}
}

// TestFreshMapperPerRun guards the fix that makes order-independence
// possible: the idealised globally coordinated mapper carries a cursor
// shared across every node of a machine, and reusing one factory across
// runs would leak that cursor between problems (making results depend on
// sweep order). Each run must get a fresh factory.
func TestFreshMapperPerRun(t *testing.T) {
	w, err := SmallWorkload(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []Point {
		pts, err := Figure4(Figure4Config{
			Workload: w,
			Series: DefaultFigure4Series(
				nil, nil, []int{16},
			)[4:], // just the fully-connected / ideal-mapper series
			Seed:        1,
			Parallelism: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	first := run()
	second := run()
	if !reflect.DeepEqual(first, second) {
		t.Errorf("repeated sweeps differ: mapper state leaked across runs\nfirst:  %+v\nsecond: %+v", first, second)
	}
}
