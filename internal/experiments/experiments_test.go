package experiments

import (
	"strings"
	"testing"

	"hypersolve/internal/mesh"
)

func testConfig(t *testing.T) Figure4Config {
	t.Helper()
	w, err := SmallWorkload(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	return Figure4Config{
		Workload: w,
		Series: DefaultFigure4Series(
			[]int{16, 49},
			[]int{27},
			[]int{16},
		),
		Seed: 1,
	}
}

func TestFigure4SmallSweep(t *testing.T) {
	points, err := Figure4(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	// 2 sizes x 2 2D-series + 1 x 2 3D-series + 1 full = 7 points.
	if len(points) != 7 {
		t.Fatalf("points = %d, want 7", len(points))
	}
	for _, p := range points {
		if p.MeanPerformance <= 0 {
			t.Errorf("%s/%d: non-positive performance", p.Series, p.Cores)
		}
		if p.Steps.Mean <= 0 {
			t.Errorf("%s/%d: non-positive steps", p.Series, p.Cores)
		}
		if p.SolvedSAT != p.Steps.N {
			t.Errorf("%s/%d: only %d/%d instances SAT (workload is all-SAT)",
				p.Series, p.Cores, p.SolvedSAT, p.Steps.N)
		}
	}
}

func TestFigure4Renders(t *testing.T) {
	points, err := Figure4(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	txt := RenderFigure4(points)
	for _, want := range []string{"2D Torus + RR", "3D Torus + LBN", "Fully connected", "cores"} {
		if !strings.Contains(txt, want) {
			t.Errorf("render missing %q", want)
		}
	}
	csv := Figure4CSV(points)
	if !strings.HasPrefix(csv, "series,cores,") {
		t.Error("CSV missing header")
	}
	if strings.Count(csv, "\n") != len(points)+1 {
		t.Error("CSV row count wrong")
	}
}

func TestFigure4ErrorPaths(t *testing.T) {
	if _, err := Figure4(Figure4Config{}); err == nil {
		t.Error("expected error for empty workload")
	}
	w, err := SmallWorkload(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := Figure4Config{
		Workload: w,
		Series: []Series{{
			Label:  "bad",
			Build:  mesh.SquareTorus,
			Sizes:  []int{17}, // not a perfect square
			Mapper: nil,
		}},
	}
	if _, err := Figure4(bad); err == nil {
		t.Error("expected error for non-square size")
	}
}

func TestFigure5SmallRun(t *testing.T) {
	w, err := SmallWorkload(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	results, err := Figure5(Figure5Config{Workload: w, Side: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2 (RR, LBN)", len(results))
	}
	for _, r := range results {
		if len(r.Traces) != 2 {
			t.Errorf("%s: %d traces, want 2", r.Mapper, len(r.Traces))
		}
		if r.Heatmap == nil {
			t.Errorf("%s: missing heatmap", r.Mapper)
			continue
		}
		if r.Heatmap.W != 8 || r.Heatmap.H != 8 {
			t.Errorf("%s: heatmap %dx%d, want 8x8", r.Mapper, r.Heatmap.W, r.Heatmap.H)
		}
		if r.Heatmap.Total() == 0 {
			t.Errorf("%s: empty heatmap", r.Mapper)
		}
		if r.PeakQueued <= 0 {
			t.Errorf("%s: peak queued %d", r.Mapper, r.PeakQueued)
		}
	}
}

func TestFigure5Renders(t *testing.T) {
	w, err := SmallWorkload(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	results, err := Figure5(Figure5Config{Workload: w, Side: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	txt := RenderFigure5(results)
	for _, want := range []string{"Round Robin", "Least Busy Neighbour", "heatmap", "queued"} {
		if !strings.Contains(txt, want) {
			t.Errorf("render missing %q", want)
		}
	}
	csv := Figure5CSV(results)
	if !strings.HasPrefix(csv, "mapper,problem,step,queued\n") {
		t.Error("CSV header wrong")
	}
}

func TestFigure5Validation(t *testing.T) {
	if _, err := Figure5(Figure5Config{}); err == nil {
		t.Error("expected error for empty workload")
	}
	w, err := SmallWorkload(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Figure5(Figure5Config{Workload: w, HeatmapProblem: 5}); err == nil {
		t.Error("expected error for out-of-range heatmap problem")
	}
}

func TestUF20WorkloadShape(t *testing.T) {
	w, err := UF20Workload(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Problems) != 20 {
		t.Fatalf("problems = %d, want 20", len(w.Problems))
	}
	for i, f := range w.Problems {
		if f.NumVars != 20 || len(f.Clauses) != 91 {
			t.Errorf("instance %d: %d vars %d clauses", i, f.NumVars, len(f.Clauses))
		}
	}
}

func TestDefaultWorkloadShape(t *testing.T) {
	w, err := DefaultWorkload(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Problems) != 20 {
		t.Fatalf("problems = %d, want 20", len(w.Problems))
	}
	for i, f := range w.Problems {
		if f.NumVars != 50 || len(f.Clauses) != 218 {
			t.Errorf("instance %d: %d vars %d clauses", i, f.NumVars, len(f.Clauses))
		}
	}
}

func TestDefaultFigure4ConfigBuilds(t *testing.T) {
	cfg, err := DefaultFigure4Config(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Series) != 5 {
		t.Fatalf("series = %d, want 5", len(cfg.Series))
	}
	// Every size must be constructible.
	for _, s := range cfg.Series {
		for _, cores := range s.Sizes {
			topo, err := s.Build(cores)
			if err != nil {
				t.Errorf("%s/%d: %v", s.Label, cores, err)
				continue
			}
			if topo.Size() != cores {
				t.Errorf("%s/%d: built %d cores", s.Label, cores, topo.Size())
			}
		}
	}
}
