// Package experiments regenerates the evaluation artifacts of Tarawneh et
// al. (P2S2 2017): Figure 4 (SAT solver scalability across topologies and
// mapping algorithms) and Figure 5 (temporal and spatial unfolding of the
// computation on a 196-core 2D torus). See EXPERIMENTS.md for the mapping
// from paper artifact to harness entry point and for measured results.
package experiments

import (
	"fmt"
	"strings"

	"hypersolve/internal/core"
	"hypersolve/internal/mapping"
	"hypersolve/internal/mesh"
	"hypersolve/internal/metrics"
	"hypersolve/internal/parallel"
	"hypersolve/internal/sat"
)

// Workload is the benchmark input: the paper uses 20 satisfiable uniform
// random 3-SAT problems with 20 variables and 91 clauses (SATLIB uf20-91).
type Workload struct {
	Problems  []sat.Formula
	Heuristic sat.Heuristic
}

// DefaultWorkload generates the scalability benchmark set: 20 satisfiable
// uniform-random 3-SAT instances at the phase-transition ratio, sized
// uf50-218. The paper used SATLIB uf20-91; with single-pass simplification
// those trees (~100 frames) saturate well below the paper's 10^3-core
// sweep, so the default moves one step up the same SATLIB family to keep
// machines busy across the whole core range. UF20Workload regenerates the
// paper's literal set; EXPERIMENTS.md reports both.
func DefaultWorkload(seed int64) (Workload, error) {
	suite, err := sat.GenerateSuite(sat.SuiteParams{
		Count: 20, NumVars: 50, NumClauses: 218, Seed: seed, RequireSAT: true,
	})
	if err != nil {
		return Workload{}, err
	}
	return Workload{Problems: suite, Heuristic: sat.FirstUnassigned}, nil
}

// UF20Workload regenerates the paper's literal benchmark set: 20
// satisfiable uf20-91-style instances (see DESIGN.md for the SATLIB
// substitution rationale).
func UF20Workload(seed int64) (Workload, error) {
	suite, err := sat.GenerateSuite(sat.UF20Params(seed))
	if err != nil {
		return Workload{}, err
	}
	return Workload{Problems: suite, Heuristic: sat.FirstUnassigned}, nil
}

// SmallWorkload is a reduced workload (fewer, smaller instances) for tests
// and quick runs.
func SmallWorkload(seed int64, count int) (Workload, error) {
	suite, err := sat.GenerateSuite(sat.SuiteParams{
		Count: count, NumVars: 14, NumClauses: 62, Seed: seed, RequireSAT: true,
	})
	if err != nil {
		return Workload{}, err
	}
	return Workload{Problems: suite, Heuristic: sat.FirstUnassigned}, nil
}

// Series identifies one curve of Figure 4.
type Series struct {
	Label string
	// Build returns the topology for a given core count.
	Build func(cores int) (mesh.Topology, error)
	// Mapper constructs the mapping algorithm factory. It is invoked once
	// per simulation run (not once per series) so that factories carrying
	// cross-machine state — the idealised globally coordinated mapper — give
	// every run a fresh instance. That makes sweep results independent of
	// execution order, which the parallel engine relies on.
	Mapper func() mapping.Factory
	// Sizes are the core counts to sweep.
	Sizes []int
}

// Figure4Config parameterises the scalability sweep.
type Figure4Config struct {
	Workload Workload
	Series   []Series
	Seed     int64
	MaxSteps int64
	// Parallelism bounds how many simulations run concurrently (each
	// simulator instance is independent and single-threaded). Values <= 0
	// default to runtime.GOMAXPROCS(0); 1 recovers the serial engine.
	// Results are bit-identical at every parallelism level.
	Parallelism int
}

// DefaultFigure4Series returns the five curves of the paper's Figure 4:
// 2D torus and 3D torus each with round-robin (RR) and least-busy-neighbour
// (LBN) mapping, plus the fully connected baseline.
func DefaultFigure4Series(sizes2D, sizes3D, sizesFull []int) []Series {
	return []Series{
		{Label: "2D Torus + RR", Build: mesh.SquareTorus, Mapper: mapping.NewRoundRobin, Sizes: sizes2D},
		{Label: "3D Torus + RR", Build: mesh.CubeTorus, Mapper: mapping.NewRoundRobin, Sizes: sizes3D},
		{Label: "2D Torus + LBN", Build: mesh.SquareTorus, Mapper: mapping.NewLeastBusy, Sizes: sizes2D},
		{Label: "3D Torus + LBN", Build: mesh.CubeTorus, Mapper: mapping.NewLeastBusy, Sizes: sizes3D},
		// The fully-connected baseline pairs the complete graph with the
		// idealised globally coordinated mapper: the paper treats this
		// machine as the ideal reference, not as a mapping-algorithm
		// evaluation point.
		{Label: "Fully connected", Build: mesh.NewFullyConnected, Mapper: mapping.NewGlobalRoundRobin, Sizes: sizesFull},
	}
}

// DefaultFigure4Config sweeps the paper's core-count range (roughly 10^1 to
// 10^3) with the full 20-instance workload.
func DefaultFigure4Config(seed int64) (Figure4Config, error) {
	w, err := DefaultWorkload(seed)
	if err != nil {
		return Figure4Config{}, err
	}
	return Figure4Config{
		Workload: w,
		Series: DefaultFigure4Series(
			[]int{16, 49, 100, 196, 400, 784, 1024},
			[]int{27, 64, 125, 216, 512, 1000},
			[]int{16, 64, 256, 1024},
		),
		Seed: seed,
	}, nil
}

// Point is one Figure 4 data point: a (series, core count) pair averaged
// over the workload.
type Point struct {
	Series          string
	Cores           int
	MeanPerformance float64 // mean of 1/steps over problems (paper y-axis)
	Steps           metrics.Summary
	SolvedSAT       int // sanity: how many instances reported SAT
}

// Figure4 runs the sweep and returns one point per (series, size). The
// sweep's (series, size, problem) runs are independent simulations; they are
// fanned out over Config.Parallelism workers and collected by index, so the
// returned points are bit-identical at every parallelism level.
func Figure4(cfg Figure4Config) ([]Point, error) {
	if len(cfg.Workload.Problems) == 0 {
		return nil, fmt.Errorf("experiments: empty workload")
	}
	// Materialise the point list (topology construction is cheap and
	// serial; the simulations are the expensive part).
	type pointSpec struct {
		s    Series
		topo mesh.Topology
	}
	var specs []pointSpec
	for _, s := range cfg.Series {
		for _, cores := range s.Sizes {
			topo, err := s.Build(cores)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%d: %w", s.Label, cores, err)
			}
			specs = append(specs, pointSpec{s: s, topo: topo})
		}
	}
	// Flatten to one job per (point, problem) pair for maximal load
	// balance, then reduce per point in order.
	nprob := len(cfg.Workload.Problems)
	type runOut struct {
		perf  float64
		steps float64
		sat   bool
	}
	runs := make([]runOut, len(specs)*nprob)
	err := parallel.ForEach(len(runs), cfg.Parallelism, func(k int) error {
		spec, i := specs[k/nprob], k%nprob
		f := cfg.Workload.Problems[i]
		var mf mapping.Factory
		if spec.s.Mapper != nil {
			mf = spec.s.Mapper()
		}
		res, err := core.RunOnce(core.Config{
			Topology: spec.topo,
			Mapper:   mf,
			Task:     sat.Task(cfg.Workload.Heuristic),
			Seed:     cfg.Seed + int64(i),
			MaxSteps: cfg.MaxSteps,
		}, sat.NewProblem(f))
		if err != nil {
			return fmt.Errorf("experiments: %s/%d problem %d: %w", spec.s.Label, spec.topo.Size(), i, err)
		}
		if !res.OK {
			return fmt.Errorf("experiments: %s/%d problem %d did not complete (MaxSteps too small?)", spec.s.Label, spec.topo.Size(), i)
		}
		if out, ok := res.Value.(sat.Outcome); ok && out.Status == sat.SAT {
			if !sat.Verify(f, out.Assignment) {
				return fmt.Errorf("experiments: %s/%d problem %d returned invalid assignment", spec.s.Label, spec.topo.Size(), i)
			}
			runs[k].sat = true
		}
		runs[k].perf = res.Performance
		runs[k].steps = float64(res.ComputationTime)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Point, len(specs))
	perfs := make([]float64, nprob)
	steps := make([]float64, nprob)
	for p, spec := range specs {
		pt := Point{Series: spec.s.Label, Cores: spec.topo.Size()}
		for i := 0; i < nprob; i++ {
			r := runs[p*nprob+i]
			perfs[i] = r.perf
			steps[i] = r.steps
			if r.sat {
				pt.SolvedSAT++
			}
		}
		pt.MeanPerformance = metrics.Summarize(perfs).Mean
		pt.Steps = metrics.Summarize(steps)
		out[p] = pt
	}
	return out, nil
}

// RenderFigure4 formats the sweep as an aligned text table grouped by
// series, the terminal rendition of the paper's log-log plot.
func RenderFigure4(points []Point) string {
	var b strings.Builder
	b.WriteString("Figure 4: SAT solver scalability (performance = 1/steps, mean over workload)\n")
	current := ""
	for _, p := range points {
		if p.Series != current {
			current = p.Series
			fmt.Fprintf(&b, "\n%s\n", current)
			fmt.Fprintf(&b, "  %8s  %14s  %10s  %10s  %6s\n", "cores", "perf (1/steps)", "mean steps", "std steps", "SAT")
		}
		fmt.Fprintf(&b, "  %8d  %14.6f  %10.1f  %10.1f  %4d/%d\n",
			p.Cores, p.MeanPerformance, p.Steps.Mean, p.Steps.Std, p.SolvedSAT, p.Steps.N)
	}
	return b.String()
}

// Figure4CSV renders the sweep as CSV (series,cores,perf,steps_mean,steps_std).
func Figure4CSV(points []Point) string {
	var b strings.Builder
	b.WriteString("series,cores,mean_performance,steps_mean,steps_std,solved_sat\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%q,%d,%g,%g,%g,%d\n",
			p.Series, p.Cores, p.MeanPerformance, p.Steps.Mean, p.Steps.Std, p.SolvedSAT)
	}
	return b.String()
}
