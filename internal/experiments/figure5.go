package experiments

import (
	"fmt"
	"strings"

	"hypersolve/internal/core"
	"hypersolve/internal/mapping"
	"hypersolve/internal/mesh"
	"hypersolve/internal/metrics"
	"hypersolve/internal/parallel"
	"hypersolve/internal/sat"
)

// Figure5Config parameterises the unfolding experiment: interconnect
// activity traces (queued messages vs time, superimposed across the
// workload) and a node activity heatmap, per mapping algorithm, on the
// paper's 196-core (14x14) 2D torus.
type Figure5Config struct {
	Workload Workload
	// Side is the torus edge length (default 14, the paper's 196 cores).
	Side int
	// HeatmapProblem selects which workload instance feeds the heatmap
	// (the paper plots one problem).
	HeatmapProblem int
	Seed           int64
	MaxSteps       int64
	// Parallelism bounds how many simulations run concurrently; <= 0
	// defaults to runtime.GOMAXPROCS(0). Results are bit-identical at every
	// parallelism level.
	Parallelism int
}

// Figure5Result holds one mapper's unfolding data.
type Figure5Result struct {
	Mapper string
	// Traces is one queued-messages time series per workload problem
	// (superimposed in the paper's top row).
	Traces []metrics.Series
	// Heatmap is the per-node total delivered messages for the selected
	// problem (the paper's bottom row).
	Heatmap *metrics.Heatmap
	// Steps summarises computation time over the workload.
	Steps metrics.Summary
	// PeakQueued is the maximum interconnect occupancy over all traces.
	PeakQueued int
}

// Figure5 runs the unfolding experiment for round-robin and
// least-busy-neighbour mapping.
func Figure5(cfg Figure5Config) ([]Figure5Result, error) {
	if len(cfg.Workload.Problems) == 0 {
		return nil, fmt.Errorf("experiments: empty workload")
	}
	side := cfg.Side
	if side <= 0 {
		side = 14
	}
	if cfg.HeatmapProblem < 0 || cfg.HeatmapProblem >= len(cfg.Workload.Problems) {
		return nil, fmt.Errorf("experiments: heatmap problem %d out of range", cfg.HeatmapProblem)
	}
	mappers := []struct {
		name string
		mf   func() mapping.Factory
	}{
		{"Round Robin", mapping.NewRoundRobin},
		{"Least Busy Neighbour", mapping.NewLeastBusy},
	}
	// One job per (mapper, problem) run, fanned out over the worker pool
	// and collected by index.
	nprob := len(cfg.Workload.Problems)
	type runOut struct {
		trace   metrics.Series
		steps   float64
		heatmap *metrics.Heatmap
	}
	runs := make([]runOut, len(mappers)*nprob)
	err := parallel.ForEach(len(runs), cfg.Parallelism, func(k int) error {
		m, i := mappers[k/nprob], k%nprob
		topo, err := mesh.NewTorus(side, side)
		if err != nil {
			return err
		}
		machine, err := core.New(core.Config{
			Topology:     topo,
			Mapper:       m.mf(),
			Task:         sat.Task(cfg.Workload.Heuristic),
			Seed:         cfg.Seed + int64(i),
			MaxSteps:     cfg.MaxSteps,
			RecordSeries: true,
		})
		if err != nil {
			return err
		}
		res, err := machine.Run(sat.NewProblem(cfg.Workload.Problems[i]))
		if err != nil {
			return err
		}
		if !res.OK {
			return fmt.Errorf("experiments: figure5 %s problem %d did not complete", m.name, i)
		}
		runs[k].trace = res.QueuedSeries
		runs[k].steps = float64(res.ComputationTime)
		if i == cfg.HeatmapProblem {
			runs[k].heatmap = machine.NodeHeatmap(res)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Figure5Result, len(mappers))
	for mi, m := range mappers {
		r := Figure5Result{Mapper: m.name}
		steps := make([]float64, nprob)
		for i := 0; i < nprob; i++ {
			ro := runs[mi*nprob+i]
			r.Traces = append(r.Traces, ro.trace)
			steps[i] = ro.steps
			if peak := ro.trace.Max(); peak > r.PeakQueued {
				r.PeakQueued = peak
			}
			if ro.heatmap != nil {
				r.Heatmap = ro.heatmap
			}
		}
		r.Steps = metrics.Summarize(steps)
		out[mi] = r
	}
	return out, nil
}

// RenderFigure5 formats the unfolding results: per mapper, an ASCII plot of
// the first trace, the peak occupancy, and the node activity heatmap.
func RenderFigure5(results []Figure5Result) string {
	var b strings.Builder
	b.WriteString("Figure 5: temporal and spatial unfolding (196-core 2D torus)\n")
	for _, r := range results {
		fmt.Fprintf(&b, "\n── %s ──\n", r.Mapper)
		fmt.Fprintf(&b, "steps: mean %.1f (min %.0f, max %.0f), peak queued messages: %d\n",
			r.Steps.Mean, r.Steps.Min, r.Steps.Max, r.PeakQueued)
		if len(r.Traces) > 0 {
			b.WriteString("interconnect activity (queued messages vs time, problem 0):\n")
			b.WriteString(metrics.AsciiPlot(r.Traces[0], 64, 12))
		}
		if r.Heatmap != nil {
			fmt.Fprintf(&b, "node activity heatmap (imbalance CV %.2f):\n", r.Heatmap.ImbalanceCV())
			b.WriteString(r.Heatmap.Render())
		}
	}
	return b.String()
}

// Figure5CSV renders every trace as long-form CSV (mapper,problem,step,queued).
func Figure5CSV(results []Figure5Result) string {
	var b strings.Builder
	b.WriteString("mapper,problem,step,queued\n")
	for _, r := range results {
		for p, tr := range r.Traces {
			for step, q := range tr {
				fmt.Fprintf(&b, "%q,%d,%d,%d\n", r.Mapper, p, step, q)
			}
		}
	}
	return b.String()
}
