package mesh

import "testing"

// BenchmarkNeighbours measures adjacency lookup, the hottest topology call.
func BenchmarkNeighbours(b *testing.B) {
	for _, topo := range []Topology{MustTorus(32, 32), MustHypercube(10), MustFullyConnected(1024)} {
		b.Run(topo.Name(), func(b *testing.B) {
			size := topo.Size()
			for i := 0; i < b.N; i++ {
				_ = topo.Neighbours(NodeID(i % size))
			}
		})
	}
}

// BenchmarkConstruct measures topology construction (adjacency precompute).
func BenchmarkConstruct(b *testing.B) {
	b.Run("torus-32x32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MustTorus(32, 32)
		}
	})
	b.Run("hypercube-10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MustHypercube(10)
		}
	})
}
