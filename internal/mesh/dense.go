package mesh

import "fmt"

// fullyConnected links every pair of nodes directly. It is the idealised
// baseline of the paper's Figure 4 ("Fully connected"): mapping decisions
// are unconstrained because every node is a neighbour of every other.
type fullyConnected struct {
	size int
	nbrs [][]NodeID
}

// NewFullyConnected constructs a complete graph on size nodes.
func NewFullyConnected(size int) (Topology, error) {
	if size < 1 {
		return nil, fmt.Errorf("mesh: fully connected size %d < 1", size)
	}
	if size > 1<<14 {
		return nil, fmt.Errorf("mesh: fully connected size %d too large (adjacency is O(n^2))", size)
	}
	f := &fullyConnected{size: size}
	f.nbrs = make([][]NodeID, size)
	for id := 0; id < size; id++ {
		nbrs := make([]NodeID, 0, size-1)
		for j := 0; j < size; j++ {
			if j != id {
				nbrs = append(nbrs, NodeID(j))
			}
		}
		f.nbrs[id] = nbrs
	}
	return f, nil
}

// MustFullyConnected is NewFullyConnected that panics on error.
func MustFullyConnected(size int) Topology {
	t, err := NewFullyConnected(size)
	if err != nil {
		panic(err)
	}
	return t
}

func (f *fullyConnected) Name() string                 { return "full" }
func (f *fullyConnected) Size() int                    { return f.size }
func (f *fullyConnected) Degree(n NodeID) int          { return f.size - 1 }
func (f *fullyConnected) Neighbours(n NodeID) []NodeID { return f.nbrs[n] }
func (f *fullyConnected) Coords(n NodeID) []int        { return []int{int(n)} }
func (f *fullyConnected) Dims() []int                  { return []int{f.size} }

func (f *fullyConnected) Distance(a, b NodeID) int {
	if a == b {
		return 0
	}
	return 1
}

// ring is a 1D torus, provided as a distinct named topology because it is
// the degenerate case mapping algorithms handle worst (minimal choice).
type ring struct {
	Topology
}

// NewRing constructs a cycle of size nodes (size >= 3).
func NewRing(size int) (Topology, error) {
	if size < 3 {
		return nil, fmt.Errorf("mesh: ring size %d < 3", size)
	}
	l, err := newLattice("ring", []int{size}, true)
	if err != nil {
		return nil, err
	}
	return &ring{Topology: l}, nil
}

// MustRing is NewRing that panics on error.
func MustRing(size int) Topology {
	t, err := NewRing(size)
	if err != nil {
		panic(err)
	}
	return t
}

// star connects one hub (node 0) to every leaf. It is not a hyperspace
// topology — the hub violates the "no global communication" principle — and
// exists to demonstrate, in tests and ablations, why such centralised
// layouts bottleneck: all traffic serialises through the hub's single
// message-per-step delivery budget.
type star struct {
	size int
	hub  []NodeID
	leaf [][]NodeID
}

// NewStar constructs a star with one hub and size-1 leaves (size >= 2).
func NewStar(size int) (Topology, error) {
	if size < 2 {
		return nil, fmt.Errorf("mesh: star size %d < 2", size)
	}
	s := &star{size: size}
	s.hub = make([]NodeID, 0, size-1)
	s.leaf = make([][]NodeID, size)
	for j := 1; j < size; j++ {
		s.hub = append(s.hub, NodeID(j))
		s.leaf[j] = []NodeID{0}
	}
	return s, nil
}

// MustStar is NewStar that panics on error.
func MustStar(size int) Topology {
	t, err := NewStar(size)
	if err != nil {
		panic(err)
	}
	return t
}

func (s *star) Name() string { return "star" }
func (s *star) Size() int    { return s.size }

func (s *star) Degree(n NodeID) int {
	if n == 0 {
		return s.size - 1
	}
	return 1
}

func (s *star) Neighbours(n NodeID) []NodeID {
	if n == 0 {
		return s.hub
	}
	return s.leaf[n]
}

func (s *star) Coords(n NodeID) []int { return []int{int(n)} }
func (s *star) Dims() []int           { return []int{s.size} }

func (s *star) Distance(a, b NodeID) int {
	switch {
	case a == b:
		return 0
	case a == 0 || b == 0:
		return 1
	default:
		return 2
	}
}
