package mesh

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Spec describes a topology as a parseable string so that command-line
// tools and experiment configs can name machines uniformly:
//
//	torus:14x14        2D torus, 196 cores
//	torus:6x6x6        3D torus, 216 cores
//	grid:8x8           2D grid without wraparound
//	hypercube:7        128-core hypercube
//	full:256           fully connected, 256 cores
//	ring:64            64-core ring
//	star:32            hub-and-spoke, 32 cores
type Spec string

// Parse builds the topology described by the spec string.
func Parse(spec string) (Topology, error) {
	kind, arg, ok := strings.Cut(string(Spec(spec)), ":")
	if !ok {
		return nil, fmt.Errorf("mesh: spec %q missing ':' separator", spec)
	}
	switch kind {
	case "torus", "grid":
		parts := strings.Split(arg, "x")
		dims := make([]int, 0, len(parts))
		for _, p := range parts {
			d, err := strconv.Atoi(p)
			if err != nil {
				return nil, fmt.Errorf("mesh: spec %q has bad extent %q", spec, p)
			}
			dims = append(dims, d)
		}
		if kind == "torus" {
			return NewTorus(dims...)
		}
		return NewGrid(dims...)
	case "hypercube":
		d, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("mesh: spec %q has bad dimension %q", spec, arg)
		}
		return NewHypercube(d)
	case "full":
		n, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("mesh: spec %q has bad size %q", spec, arg)
		}
		return NewFullyConnected(n)
	case "ring":
		n, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("mesh: spec %q has bad size %q", spec, arg)
		}
		return NewRing(n)
	case "star":
		n, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("mesh: spec %q has bad size %q", spec, arg)
		}
		return NewStar(n)
	default:
		return nil, fmt.Errorf("mesh: unknown topology kind %q (want torus|grid|hypercube|full|ring|star)", kind)
	}
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(spec string) Topology {
	t, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return t
}

// SquareTorus returns the 2D torus whose side is the integer square root of
// cores, i.e. the largest k with k*k <= cores. The paper's 2D series uses
// square machines (e.g. 196 cores = 14x14).
func SquareTorus(cores int) (Topology, error) {
	k := intRoot(cores, 2)
	if k*k != cores {
		return nil, fmt.Errorf("mesh: %d is not a perfect square", cores)
	}
	return NewTorus(k, k)
}

// CubeTorus returns the 3D torus with side = cube root of cores.
func CubeTorus(cores int) (Topology, error) {
	k := intRoot(cores, 3)
	if k*k*k != cores {
		return nil, fmt.Errorf("mesh: %d is not a perfect cube", cores)
	}
	return NewTorus(k, k, k)
}

// intRoot returns floor(cores^(1/deg)) computed robustly against floating
// point error.
func intRoot(cores, deg int) int {
	if cores <= 0 {
		return 0
	}
	k := int(math.Round(math.Pow(float64(cores), 1/float64(deg))))
	for pow(k, deg) > cores {
		k--
	}
	for pow(k+1, deg) <= cores {
		k++
	}
	return k
}

func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

// SquareSizes returns perfect-square core counts in [lo, hi], the natural
// sweep points for 2D torus scalability experiments.
func SquareSizes(lo, hi int) []int {
	var out []int
	for k := 1; k*k <= hi; k++ {
		if c := k * k; c >= lo {
			out = append(out, c)
		}
	}
	return out
}

// CubeSizes returns perfect-cube core counts in [lo, hi].
func CubeSizes(lo, hi int) []int {
	var out []int
	for k := 1; k*k*k <= hi; k++ {
		if c := k * k * k; c >= lo {
			out = append(out, c)
		}
	}
	return out
}
