// Package mesh provides the regular interconnect topologies of hyperspace
// computers: n-dimensional tori, grids, hypercubes, rings, stars and fully
// connected meshes.
//
// A Topology answers the structural questions the layers above need: how
// many nodes exist, which nodes are adjacent, where a node sits in the
// embedding space (for visualisation and heatmaps) and how far apart two
// nodes are (for analysis). Nodes are identified by dense integer IDs in
// [0, Size()).
//
// The package corresponds to the "hyperspace computer" substrate of
// Tarawneh et al. (P2S2 2017), Figure 1: transputer-style grids, NCUBE-style
// hypercubes and SpiNNaker-style tori.
package mesh

import (
	"fmt"
	"sort"
)

// NodeID identifies a single processing node within a topology. IDs are
// dense: a topology of size N uses exactly the IDs 0..N-1.
type NodeID int

// None is the sentinel value for "no node".
const None NodeID = -1

// Topology describes a regular interconnect. Implementations must be
// immutable after construction and safe for concurrent readers.
type Topology interface {
	// Name returns a short human-readable identifier such as "torus2d".
	Name() string

	// Size returns the number of nodes.
	Size() int

	// Degree returns the number of neighbours of node n.
	Degree(n NodeID) int

	// Neighbours returns the IDs adjacent to n in a deterministic order.
	// The returned slice must not be modified by the caller.
	Neighbours(n NodeID) []NodeID

	// Coords returns the position of n in the topology's embedding space.
	// The returned slice must not be modified by the caller.
	Coords(n NodeID) []int

	// Dims returns the extent of each embedding dimension. The product of
	// the extents equals Size() for lattice topologies.
	Dims() []int

	// Distance returns the minimum number of hops between two nodes.
	Distance(a, b NodeID) int
}

// Diameter returns the maximum over all node pairs of Topology.Distance.
// It runs in O(V^2) using the topology's own distance metric and is intended
// for tests and reporting, not hot paths.
func Diameter(t Topology) int {
	max := 0
	n := t.Size()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if d := t.Distance(NodeID(a), NodeID(b)); d > max {
				max = d
			}
		}
	}
	return max
}

// TotalLinks returns the number of undirected links in the topology.
func TotalLinks(t Topology) int {
	sum := 0
	for n := 0; n < t.Size(); n++ {
		sum += t.Degree(NodeID(n))
	}
	return sum / 2
}

// Validate checks the structural invariants every topology must satisfy:
// dense IDs, symmetric adjacency, no self loops, no duplicate neighbours and
// consistent degree reporting. It returns a descriptive error on the first
// violation found.
func Validate(t Topology) error {
	size := t.Size()
	if size <= 0 {
		return fmt.Errorf("mesh: %s has non-positive size %d", t.Name(), size)
	}
	for i := 0; i < size; i++ {
		n := NodeID(i)
		nbrs := t.Neighbours(n)
		if len(nbrs) != t.Degree(n) {
			return fmt.Errorf("mesh: %s node %d degree %d != len(neighbours) %d",
				t.Name(), n, t.Degree(n), len(nbrs))
		}
		seen := make(map[NodeID]bool, len(nbrs))
		for _, m := range nbrs {
			if m == n {
				return fmt.Errorf("mesh: %s node %d has a self loop", t.Name(), n)
			}
			if m < 0 || int(m) >= size {
				return fmt.Errorf("mesh: %s node %d has out-of-range neighbour %d", t.Name(), n, m)
			}
			if seen[m] {
				return fmt.Errorf("mesh: %s node %d lists neighbour %d twice", t.Name(), n, m)
			}
			seen[m] = true
			if !contains(t.Neighbours(m), n) {
				return fmt.Errorf("mesh: %s adjacency not symmetric: %d->%d but not %d->%d",
					t.Name(), n, m, m, n)
			}
		}
	}
	return nil
}

func contains(ids []NodeID, want NodeID) bool {
	for _, id := range ids {
		if id == want {
			return true
		}
	}
	return false
}

// lattice is the shared implementation of grid and torus topologies: an
// n-dimensional box of nodes with +/-1 links along each axis, optionally
// wrapping at the boundary.
type lattice struct {
	name    string
	dims    []int
	strides []int
	wrap    bool
	size    int
	nbrs    [][]NodeID // precomputed adjacency
	coords  [][]int    // precomputed coordinates
}

func newLattice(name string, dims []int, wrap bool) (*lattice, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("mesh: %s needs at least one dimension", name)
	}
	size := 1
	for _, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("mesh: %s has invalid extent %d", name, d)
		}
		if size > 1<<24/d {
			return nil, fmt.Errorf("mesh: %s too large (> 2^24 nodes)", name)
		}
		size *= d
	}
	l := &lattice{
		name:    name,
		dims:    append([]int(nil), dims...),
		strides: make([]int, len(dims)),
		wrap:    wrap,
		size:    size,
	}
	stride := 1
	for i := range dims {
		l.strides[i] = stride
		stride *= dims[i]
	}
	l.precompute()
	return l, nil
}

func (l *lattice) precompute() {
	l.coords = make([][]int, l.size)
	l.nbrs = make([][]NodeID, l.size)
	for id := 0; id < l.size; id++ {
		c := l.coordsOf(NodeID(id))
		l.coords[id] = c
		var nbrs []NodeID
		for axis := range l.dims {
			extent := l.dims[axis]
			if extent == 1 {
				continue // no movement possible along degenerate axes
			}
			for _, delta := range []int{-1, 1} {
				nc := c[axis] + delta
				switch {
				case nc >= 0 && nc < extent:
					// interior move
				case l.wrap && extent > 2:
					// wraparound link; extent 2 would duplicate the
					// interior link, so skip wrapping there.
					nc = (nc + extent) % extent
				default:
					continue
				}
				id2 := id + (nc-c[axis])*l.strides[axis]
				if !containsID(nbrs, NodeID(id2)) {
					nbrs = append(nbrs, NodeID(id2))
				}
			}
		}
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		l.nbrs[id] = nbrs
	}
}

func containsID(ids []NodeID, want NodeID) bool {
	for _, id := range ids {
		if id == want {
			return true
		}
	}
	return false
}

func (l *lattice) coordsOf(n NodeID) []int {
	c := make([]int, len(l.dims))
	rem := int(n)
	for i, d := range l.dims {
		c[i] = rem % d
		rem /= d
	}
	return c
}

func (l *lattice) Name() string { return l.name }
func (l *lattice) Size() int    { return l.size }

func (l *lattice) Degree(n NodeID) int { return len(l.nbrs[n]) }

func (l *lattice) Neighbours(n NodeID) []NodeID { return l.nbrs[n] }

func (l *lattice) Coords(n NodeID) []int { return l.coords[n] }

func (l *lattice) Dims() []int { return l.dims }

func (l *lattice) Distance(a, b NodeID) int {
	ca, cb := l.coords[a], l.coords[b]
	total := 0
	for i, d := range l.dims {
		diff := ca[i] - cb[i]
		if diff < 0 {
			diff = -diff
		}
		if l.wrap && d-diff < diff {
			diff = d - diff
		}
		total += diff
	}
	return total
}

// NewTorus constructs an n-dimensional torus with the given extents, e.g.
// NewTorus(14, 14) for the paper's 196-core 2D machine or NewTorus(6, 6, 6)
// for a 216-core 3D machine. Extents of 1 are permitted but contribute no
// links; extents of 2 produce a single (non-duplicated) link per axis.
func NewTorus(dims ...int) (Topology, error) {
	return newLattice(fmt.Sprintf("torus%dd", len(dims)), dims, true)
}

// NewGrid constructs an n-dimensional grid (a lattice without wraparound),
// the transputer-array configuration of paper Figure 1A.
func NewGrid(dims ...int) (Topology, error) {
	return newLattice(fmt.Sprintf("grid%dd", len(dims)), dims, false)
}

// MustTorus is NewTorus that panics on error, for tests and examples.
func MustTorus(dims ...int) Topology {
	t, err := NewTorus(dims...)
	if err != nil {
		panic(err)
	}
	return t
}

// MustGrid is NewGrid that panics on error, for tests and examples.
func MustGrid(dims ...int) Topology {
	t, err := NewGrid(dims...)
	if err != nil {
		panic(err)
	}
	return t
}
