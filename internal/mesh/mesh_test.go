package mesh

import (
	"testing"
	"testing/quick"
)

func TestTorus2DBasics(t *testing.T) {
	topo := MustTorus(4, 4)
	if got := topo.Size(); got != 16 {
		t.Fatalf("Size = %d, want 16", got)
	}
	if got := topo.Name(); got != "torus2d" {
		t.Fatalf("Name = %q, want torus2d", got)
	}
	for n := 0; n < topo.Size(); n++ {
		if d := topo.Degree(NodeID(n)); d != 4 {
			t.Errorf("node %d degree = %d, want 4", n, d)
		}
	}
	if err := Validate(topo); err != nil {
		t.Fatal(err)
	}
}

func TestTorus2DNeighboursWrap(t *testing.T) {
	topo := MustTorus(4, 4)
	// Node 0 is at (0,0); neighbours are (1,0)=1, (3,0)=3, (0,1)=4, (0,3)=12.
	got := topo.Neighbours(0)
	want := []NodeID{1, 3, 4, 12}
	if len(got) != len(want) {
		t.Fatalf("Neighbours(0) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbours(0) = %v, want %v", got, want)
		}
	}
}

func TestTorus3DDegree(t *testing.T) {
	topo := MustTorus(3, 3, 3)
	if topo.Size() != 27 {
		t.Fatalf("Size = %d, want 27", topo.Size())
	}
	for n := 0; n < topo.Size(); n++ {
		if d := topo.Degree(NodeID(n)); d != 6 {
			t.Errorf("node %d degree = %d, want 6", n, d)
		}
	}
	if err := Validate(topo); err != nil {
		t.Fatal(err)
	}
}

func TestTorusExtentTwoNoDuplicateLinks(t *testing.T) {
	// With extent 2, +1 and -1 moves land on the same node; the wraparound
	// must not create a duplicate link.
	topo := MustTorus(2, 2)
	for n := 0; n < topo.Size(); n++ {
		if d := topo.Degree(NodeID(n)); d != 2 {
			t.Errorf("node %d degree = %d, want 2", n, d)
		}
	}
	if err := Validate(topo); err != nil {
		t.Fatal(err)
	}
}

func TestTorusExtentOneDegenerateAxis(t *testing.T) {
	topo := MustTorus(1, 5)
	if topo.Size() != 5 {
		t.Fatalf("Size = %d, want 5", topo.Size())
	}
	if err := Validate(topo); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < topo.Size(); n++ {
		if d := topo.Degree(NodeID(n)); d != 2 {
			t.Errorf("node %d degree = %d, want 2 (ring along second axis)", n, d)
		}
	}
}

func TestGridCornersAndEdges(t *testing.T) {
	topo := MustGrid(3, 3)
	if err := Validate(topo); err != nil {
		t.Fatal(err)
	}
	wantDegrees := map[int]int{
		0: 2, 2: 2, 6: 2, 8: 2, // corners
		1: 3, 3: 3, 5: 3, 7: 3, // edges
		4: 4, // centre
	}
	for n, want := range wantDegrees {
		if got := topo.Degree(NodeID(n)); got != want {
			t.Errorf("grid node %d degree = %d, want %d", n, got, want)
		}
	}
}

func TestGridDistanceIsManhattan(t *testing.T) {
	topo := MustGrid(5, 5)
	if got := topo.Distance(0, 24); got != 8 {
		t.Errorf("Distance(corner, corner) = %d, want 8", got)
	}
	if got := topo.Distance(0, 0); got != 0 {
		t.Errorf("Distance(0,0) = %d, want 0", got)
	}
}

func TestTorusDistanceWraps(t *testing.T) {
	topo := MustTorus(6, 6)
	// (0,0) to (5,0): 1 hop via wraparound, not 5.
	if got := topo.Distance(0, 5); got != 1 {
		t.Errorf("Distance(0,5) = %d, want 1", got)
	}
	// (0,0) to (3,3): 3+3 = 6 (exactly half in both axes).
	target := NodeID(3 + 3*6)
	if got := topo.Distance(0, target); got != 6 {
		t.Errorf("Distance(0,%d) = %d, want 6", target, got)
	}
}

func TestTorusDiameter(t *testing.T) {
	// Diameter of a k x k torus is 2*floor(k/2).
	cases := []struct{ k, want int }{{3, 2}, {4, 4}, {5, 4}, {6, 6}}
	for _, c := range cases {
		topo := MustTorus(c.k, c.k)
		if got := Diameter(topo); got != c.want {
			t.Errorf("diameter of %dx%d torus = %d, want %d", c.k, c.k, got, c.want)
		}
	}
}

func TestHypercubeBasics(t *testing.T) {
	topo := MustHypercube(4)
	if topo.Size() != 16 {
		t.Fatalf("Size = %d, want 16", topo.Size())
	}
	if err := Validate(topo); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < topo.Size(); n++ {
		if d := topo.Degree(NodeID(n)); d != 4 {
			t.Errorf("node %d degree = %d, want 4", n, d)
		}
	}
	// Link count: n*N/2 as the paper states (Section II-A).
	if got, want := TotalLinks(topo), 4*16/2; got != want {
		t.Errorf("TotalLinks = %d, want %d", got, want)
	}
	if got := Diameter(topo); got != 4 {
		t.Errorf("Diameter = %d, want 4", got)
	}
}

func TestHypercubeDistanceIsHamming(t *testing.T) {
	topo := MustHypercube(5)
	if got := topo.Distance(0b00000, 0b10101); got != 3 {
		t.Errorf("Distance = %d, want 3", got)
	}
}

func TestHypercubeDim0(t *testing.T) {
	topo := MustHypercube(0)
	if topo.Size() != 1 {
		t.Fatalf("Size = %d, want 1", topo.Size())
	}
	if topo.Degree(0) != 0 {
		t.Fatalf("Degree = %d, want 0", topo.Degree(0))
	}
}

func TestGrayRingIsHamiltonianCycle(t *testing.T) {
	for dim := 1; dim <= 8; dim++ {
		topo := MustHypercube(dim)
		ring := GrayRing(dim)
		if len(ring) != topo.Size() {
			t.Fatalf("dim %d: ring length %d != size %d", dim, len(ring), topo.Size())
		}
		seen := make(map[NodeID]bool)
		for i, n := range ring {
			if seen[n] {
				t.Fatalf("dim %d: ring revisits node %d", dim, n)
			}
			seen[n] = true
			next := ring[(i+1)%len(ring)]
			if topo.Distance(n, next) != 1 {
				t.Fatalf("dim %d: ring step %d->%d is not an edge", dim, n, next)
			}
		}
	}
}

func TestFullyConnected(t *testing.T) {
	topo := MustFullyConnected(10)
	if err := Validate(topo); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 10; n++ {
		if d := topo.Degree(NodeID(n)); d != 9 {
			t.Errorf("node %d degree = %d, want 9", n, d)
		}
	}
	if got := Diameter(topo); got != 1 {
		t.Errorf("Diameter = %d, want 1", got)
	}
}

func TestFullyConnectedSizeOne(t *testing.T) {
	topo := MustFullyConnected(1)
	if topo.Degree(0) != 0 {
		t.Fatalf("Degree = %d, want 0", topo.Degree(0))
	}
	if err := Validate(topo); err != nil {
		t.Fatal(err)
	}
}

func TestRing(t *testing.T) {
	topo := MustRing(8)
	if err := Validate(topo); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 8; n++ {
		if d := topo.Degree(NodeID(n)); d != 2 {
			t.Errorf("node %d degree = %d, want 2", n, d)
		}
	}
	if got := Diameter(topo); got != 4 {
		t.Errorf("Diameter = %d, want 4", got)
	}
}

func TestStar(t *testing.T) {
	topo := MustStar(9)
	if err := Validate(topo); err != nil {
		t.Fatal(err)
	}
	if d := topo.Degree(0); d != 8 {
		t.Errorf("hub degree = %d, want 8", d)
	}
	for n := 1; n < 9; n++ {
		if d := topo.Degree(NodeID(n)); d != 1 {
			t.Errorf("leaf %d degree = %d, want 1", n, d)
		}
	}
	if got := topo.Distance(3, 7); got != 2 {
		t.Errorf("leaf-leaf distance = %d, want 2", got)
	}
	if got := Diameter(topo); got != 2 {
		t.Errorf("Diameter = %d, want 2", got)
	}
}

func TestConstructorErrors(t *testing.T) {
	cases := []func() (Topology, error){
		func() (Topology, error) { return NewTorus() },
		func() (Topology, error) { return NewTorus(0, 4) },
		func() (Topology, error) { return NewGrid(-1) },
		func() (Topology, error) { return NewHypercube(-1) },
		func() (Topology, error) { return NewHypercube(30) },
		func() (Topology, error) { return NewFullyConnected(0) },
		func() (Topology, error) { return NewRing(2) },
		func() (Topology, error) { return NewStar(1) },
	}
	for i, f := range cases {
		if _, err := f(); err == nil {
			t.Errorf("case %d: expected constructor error, got nil", i)
		}
	}
}

func TestParseSpecs(t *testing.T) {
	cases := []struct {
		spec string
		size int
		name string
	}{
		{"torus:14x14", 196, "torus2d"},
		{"torus:6x6x6", 216, "torus3d"},
		{"grid:8x8", 64, "grid2d"},
		{"hypercube:7", 128, "hypercube7"},
		{"full:100", 100, "full"},
		{"ring:64", 64, "ring"},
		{"star:32", 32, "star"},
	}
	for _, c := range cases {
		topo, err := Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if topo.Size() != c.size {
			t.Errorf("Parse(%q).Size() = %d, want %d", c.spec, topo.Size(), c.size)
		}
		if topo.Name() != c.name {
			t.Errorf("Parse(%q).Name() = %q, want %q", c.spec, topo.Name(), c.name)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"", "torus", "torus:", "torus:axb", "hypercube:x", "full:abc",
		"ring:zz", "star:?", "blob:4", "grid:3x-1",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): expected error, got nil", spec)
		}
	}
}

func TestSquareAndCubeHelpers(t *testing.T) {
	if _, err := SquareTorus(196); err != nil {
		t.Errorf("SquareTorus(196): %v", err)
	}
	if _, err := SquareTorus(17); err == nil {
		t.Error("SquareTorus(17): expected error")
	}
	if _, err := CubeTorus(216); err != nil {
		t.Errorf("CubeTorus(216): %v", err)
	}
	if _, err := CubeTorus(100); err == nil {
		t.Error("CubeTorus(100): expected error")
	}

	sq := SquareSizes(16, 1024)
	if len(sq) == 0 || sq[0] != 16 || sq[len(sq)-1] != 1024 {
		t.Errorf("SquareSizes(16,1024) = %v", sq)
	}
	cu := CubeSizes(27, 1000)
	if len(cu) == 0 || cu[0] != 27 || cu[len(cu)-1] != 1000 {
		t.Errorf("CubeSizes(27,1000) = %v", cu)
	}
}

func TestIntRootExactness(t *testing.T) {
	for k := 1; k <= 101; k++ {
		if got := intRoot(k*k, 2); got != k {
			t.Errorf("intRoot(%d,2) = %d, want %d", k*k, got, k)
		}
		if got := intRoot(k*k*k, 3); got != k {
			t.Errorf("intRoot(%d,3) = %d, want %d", k*k*k, got, k)
		}
	}
}

// --- Property-based tests -------------------------------------------------

// allTopologies yields a representative sample used by the property tests.
func allTopologies() []Topology {
	return []Topology{
		MustTorus(4, 4),
		MustTorus(5, 3),
		MustTorus(3, 3, 3),
		MustTorus(2, 4, 3),
		MustGrid(6, 4),
		MustGrid(2, 2, 2),
		MustHypercube(5),
		MustFullyConnected(12),
		MustRing(9),
		MustStar(7),
	}
}

func TestPropertyAllTopologiesValidate(t *testing.T) {
	for _, topo := range allTopologies() {
		if err := Validate(topo); err != nil {
			t.Errorf("%s: %v", topo.Name(), err)
		}
	}
}

func TestPropertyDistanceMetricAxioms(t *testing.T) {
	for _, topo := range allTopologies() {
		size := topo.Size()
		f := func(a, b, c uint16) bool {
			x := NodeID(int(a) % size)
			y := NodeID(int(b) % size)
			z := NodeID(int(c) % size)
			dxy := topo.Distance(x, y)
			// identity, symmetry, triangle inequality
			if topo.Distance(x, x) != 0 {
				return false
			}
			if dxy != topo.Distance(y, x) {
				return false
			}
			if x != y && dxy == 0 {
				return false
			}
			return dxy <= topo.Distance(x, z)+topo.Distance(z, y)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: distance axioms violated: %v", topo.Name(), err)
		}
	}
}

func TestPropertyNeighboursAreDistanceOne(t *testing.T) {
	for _, topo := range allTopologies() {
		for n := 0; n < topo.Size(); n++ {
			for _, m := range topo.Neighbours(NodeID(n)) {
				if d := topo.Distance(NodeID(n), m); d != 1 {
					t.Errorf("%s: neighbour pair (%d,%d) distance %d, want 1",
						topo.Name(), n, m, d)
				}
			}
		}
	}
}

func TestPropertyCoordsRoundTrip(t *testing.T) {
	// For lattice topologies, coordinates must uniquely identify nodes and
	// fall within the declared dims.
	for _, topo := range allTopologies() {
		dims := topo.Dims()
		seen := make(map[string]bool)
		for n := 0; n < topo.Size(); n++ {
			c := topo.Coords(NodeID(n))
			if len(c) != len(dims) {
				t.Fatalf("%s: Coords len %d != Dims len %d", topo.Name(), len(c), len(dims))
			}
			key := ""
			for i, v := range c {
				if v < 0 || v >= dims[i] {
					t.Fatalf("%s: node %d coord %d out of range [0,%d)", topo.Name(), n, v, dims[i])
				}
				key += string(rune('A'+i)) + itoa(v) + ","
			}
			if seen[key] {
				t.Fatalf("%s: duplicate coords %v", topo.Name(), c)
			}
			seen[key] = true
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf []byte
	for v > 0 {
		buf = append([]byte{byte('0' + v%10)}, buf...)
		v /= 10
	}
	return string(buf)
}

func TestPropertyTorusIsNodeSymmetric(t *testing.T) {
	// Every node of a torus has identical degree (node symmetry, one of the
	// hypercube/torus properties the paper credits for software simplicity).
	for _, topo := range []Topology{MustTorus(5, 5), MustTorus(4, 4, 4), MustHypercube(6)} {
		want := topo.Degree(0)
		for n := 1; n < topo.Size(); n++ {
			if got := topo.Degree(NodeID(n)); got != want {
				t.Errorf("%s: node %d degree %d != node 0 degree %d", topo.Name(), n, got, want)
			}
		}
	}
}

func TestPropertyGrayCodeAdjacent(t *testing.T) {
	f := func(i uint8) bool {
		a := GrayCode(int(i))
		b := GrayCode(int(i) + 1)
		x := a ^ b
		return x != 0 && x&(x-1) == 0 // exactly one bit differs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyConnectivityByFlood(t *testing.T) {
	// Every topology must be connected: BFS from node 0 reaches all nodes,
	// and the BFS depth equals Distance for lattice topologies.
	for _, topo := range allTopologies() {
		dist := bfs(topo, 0)
		for n, d := range dist {
			if d < 0 {
				t.Fatalf("%s: node %d unreachable from 0", topo.Name(), n)
			}
			if want := topo.Distance(0, NodeID(n)); want != d {
				t.Errorf("%s: Distance(0,%d) = %d but BFS depth = %d", topo.Name(), n, want, d)
			}
		}
	}
}

func bfs(t Topology, start NodeID) []int {
	dist := make([]int, t.Size())
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	queue := []NodeID{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range t.Neighbours(n) {
			if dist[m] < 0 {
				dist[m] = dist[n] + 1
				queue = append(queue, m)
			}
		}
	}
	return dist
}
