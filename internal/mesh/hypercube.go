package mesh

import (
	"fmt"
	"math/bits"
)

// hypercube is the n-dimensional binary cube of paper Figure 1B (NCUBE
// style): 2^n nodes, each adjacent to the n nodes whose addresses differ in
// exactly one bit. Node IDs double as binary addresses.
type hypercube struct {
	n    int // dimension
	size int
	nbrs [][]NodeID
}

// NewHypercube constructs a hypercube of the given dimension (2^dim nodes).
// Dimension 0 is a single isolated node.
func NewHypercube(dim int) (Topology, error) {
	if dim < 0 || dim > 24 {
		return nil, fmt.Errorf("mesh: hypercube dimension %d out of range [0,24]", dim)
	}
	h := &hypercube{n: dim, size: 1 << dim}
	h.nbrs = make([][]NodeID, h.size)
	for id := 0; id < h.size; id++ {
		nbrs := make([]NodeID, dim)
		for b := 0; b < dim; b++ {
			nbrs[b] = NodeID(id ^ (1 << b))
		}
		h.nbrs[id] = nbrs
	}
	return h, nil
}

// MustHypercube is NewHypercube that panics on error.
func MustHypercube(dim int) Topology {
	t, err := NewHypercube(dim)
	if err != nil {
		panic(err)
	}
	return t
}

func (h *hypercube) Name() string { return fmt.Sprintf("hypercube%d", h.n) }
func (h *hypercube) Size() int    { return h.size }

func (h *hypercube) Degree(n NodeID) int { return h.n }

func (h *hypercube) Neighbours(n NodeID) []NodeID { return h.nbrs[n] }

// Coords returns the bit vector of the node address, one coordinate per
// dimension, least significant bit first.
func (h *hypercube) Coords(n NodeID) []int {
	c := make([]int, h.n)
	for b := 0; b < h.n; b++ {
		c[b] = (int(n) >> b) & 1
	}
	return c
}

func (h *hypercube) Dims() []int {
	d := make([]int, h.n)
	for i := range d {
		d[i] = 2
	}
	return d
}

// Distance is the Hamming distance between the two addresses.
func (h *hypercube) Distance(a, b NodeID) int {
	return bits.OnesCount32(uint32(a) ^ uint32(b))
}

// GrayCode returns the i-th value of the reflected binary Gray code. Gray
// sequences visit hypercube nodes along edges, which embeds a ring (and
// hence any 1D pipeline) into the hypercube — one of the embedding
// properties the paper highlights in Section II-A.
func GrayCode(i int) int { return i ^ (i >> 1) }

// GrayRing returns the closed Hamiltonian cycle through an n-dimensional
// hypercube induced by the reflected Gray code. The returned slice has
// 2^dim entries; consecutive entries (cyclically) are hypercube neighbours.
func GrayRing(dim int) []NodeID {
	size := 1 << dim
	ring := make([]NodeID, size)
	for i := 0; i < size; i++ {
		ring[i] = NodeID(GrayCode(i))
	}
	return ring
}
