package ringbuf

import "testing"

func TestFIFOOrder(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 100; i++ {
		r.Push(i)
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d, want 100", r.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("Pop #%d = %d,%v, want %d,true", i, v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop on empty ring returned ok")
	}
}

func TestWraparound(t *testing.T) {
	var r Ring[int]
	next, want := 0, 0
	// Interleave pushes and pops so head walks around the buffer many
	// times without triggering growth.
	for round := 0; round < 200; round++ {
		for i := 0; i < 3; i++ {
			r.Push(next)
			next++
		}
		for i := 0; i < 3; i++ {
			v, ok := r.Pop()
			if !ok || v != want {
				t.Fatalf("round %d: Pop = %d,%v, want %d,true", round, v, ok, want)
			}
			want++
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after balanced push/pop", r.Len())
	}
}

func TestGrowthPreservesOrderAcrossWrap(t *testing.T) {
	var r Ring[int]
	// Fill, drain half so head is mid-buffer, then push past capacity to
	// force a grow while the ring is wrapped.
	for i := 0; i < minCap; i++ {
		r.Push(i)
	}
	for i := 0; i < minCap/2; i++ {
		r.Pop()
	}
	for i := minCap; i < 10*minCap; i++ {
		r.Push(i)
	}
	for want := minCap / 2; want < 10*minCap; want++ {
		v, ok := r.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = %d,%v, want %d,true", v, ok, want)
		}
	}
}

func TestPeekAndAt(t *testing.T) {
	var r Ring[string]
	if _, ok := r.Peek(); ok {
		t.Fatal("Peek on empty ring returned ok")
	}
	r.Push("a")
	r.Push("b")
	r.Push("c")
	if v, ok := r.Peek(); !ok || v != "a" {
		t.Fatalf("Peek = %q,%v", v, ok)
	}
	if r.Len() != 3 {
		t.Fatalf("Peek consumed an element: Len = %d", r.Len())
	}
	for i, want := range []string{"a", "b", "c"} {
		if got := r.At(i); got != want {
			t.Errorf("At(%d) = %q, want %q", i, got, want)
		}
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(0) on empty ring did not panic")
		}
	}()
	var r Ring[int]
	r.At(0)
}

func TestGrowReserves(t *testing.T) {
	var r Ring[int]
	r.Push(1)
	r.Grow(1000)
	before := len(r.buf)
	for i := 0; i < 1000; i++ {
		r.Push(i)
	}
	if len(r.buf) != before {
		t.Fatalf("buffer reallocated after Grow: %d -> %d", before, len(r.buf))
	}
	if v, _ := r.Pop(); v != 1 {
		t.Fatalf("front = %d, want 1", v)
	}
}

func TestPopZeroesSlot(t *testing.T) {
	var r Ring[*int]
	x := new(int)
	r.Push(x)
	r.Pop()
	for i := range r.buf {
		if r.buf[i] != nil {
			t.Fatal("popped slot still pins its reference")
		}
	}
}
