// Package ringbuf provides a power-of-two ring buffer used as the queue
// primitive of the simulation stack: layer-1 message queues and layer-2
// process mailboxes. Compared with the append-and-reslice queues it
// replaces, a ring never copy-compacts, reuses its backing array across
// push/pop cycles, and zeroes exactly one slot per pop (to release payload
// references for the garbage collector).
package ringbuf

// Ring is a FIFO queue over a power-of-two circular buffer. The zero value
// is an empty queue ready for use. Ring is not safe for concurrent use.
type Ring[T any] struct {
	buf  []T
	head int // index of the front element
	n    int // number of queued elements
}

const minCap = 8

// Len returns the number of queued elements.
func (r *Ring[T]) Len() int { return r.n }

// Push appends v to the back of the queue, growing the buffer (by doubling,
// so capacity stays a power of two) when full.
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// Pop removes and returns the front element. The vacated slot is zeroed so
// the buffer does not pin payload references.
func (r *Ring[T]) Pop() (T, bool) {
	var zero T
	if r.n == 0 {
		return zero, false
	}
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v, true
}

// Peek returns the front element without removing it.
func (r *Ring[T]) Peek() (T, bool) {
	var zero T
	if r.n == 0 {
		return zero, false
	}
	return r.buf[r.head], true
}

// At returns the i-th element from the front (0 = front). It panics when i
// is out of range, mirroring slice indexing.
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.n {
		panic("ringbuf: index out of range")
	}
	return r.buf[(r.head+i)&(len(r.buf)-1)]
}

// Grow ensures capacity for at least extra more pushes without reallocating.
func (r *Ring[T]) Grow(extra int) {
	for r.n+extra > len(r.buf) {
		r.grow()
	}
}

func (r *Ring[T]) grow() {
	newCap := len(r.buf) * 2
	if newCap < minCap {
		newCap = minCap
	}
	buf := make([]T, newCap)
	// Unroll the old ring into the front of the new buffer.
	if r.n > 0 {
		tail := r.head + r.n
		if tail > len(r.buf) {
			tail = len(r.buf)
		}
		k := copy(buf, r.buf[r.head:tail])
		if k < r.n {
			copy(buf[k:], r.buf[:r.n-k])
		}
	}
	r.buf = buf
	r.head = 0
}
