package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// buildGoldenRegistry constructs the registry rendered in
// testdata/golden.prom: one of each instrument kind, label escaping,
// and multiple series per family registered out of order.
func buildGoldenRegistry() *Registry {
	r := NewRegistry()
	// Registered out of lexicographic order on purpose: encoding must sort.
	r.Counter("zeta_events_total", "Events seen.").Add(7)
	r.Counter("alpha_requests_total", "Requests by verb.", Label{"verb", "get"}).Add(3)
	r.Counter("alpha_requests_total", "Requests by verb.", Label{"verb", "delete"}).Add(1)
	r.Gauge("queue_depth", "Jobs waiting for a worker.").Set(4)
	r.GaugeFunc("workers", "Configured worker count.", func() float64 { return 2 })
	r.Gauge("weird_label", "Label escaping.", Label{"path", `a"b\c` + "\nd"}).Set(1)
	h := r.Histogram("solve_seconds", "Solve wall time.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(30)
	return r
}

func TestWriteTextGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildGoldenRegistry().WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	golden := filepath.Join("testdata", "golden.prom")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("encoder output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestWriteTextDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildGoldenRegistry().WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildGoldenRegistry().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("two identical registries encoded differently:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestParseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := buildGoldenRegistry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	fams := ParseText(buf.Bytes())
	var re bytes.Buffer
	if err := WriteFamilies(&re, fams); err != nil {
		t.Fatal(err)
	}
	if re.String() != buf.String() {
		t.Errorf("parse/write round trip not identical.\n--- original ---\n%s\n--- round-tripped ---\n%s", buf.String(), re.String())
	}
	// Histogram child samples must fold into their family, not become
	// families of their own.
	for _, f := range fams {
		if f.Name == "solve_seconds_bucket" || f.Name == "solve_seconds_sum" || f.Name == "solve_seconds_count" {
			t.Errorf("histogram sample %q parsed as its own family", f.Name)
		}
	}
}

func TestRelabelAndMerge(t *testing.T) {
	mk := func(v int64) []Family {
		r := NewRegistry()
		r.Counter("jobs_done_total", "Finished jobs.").Add(v)
		return r.Families()
	}
	s1, s2 := mk(5), mk(9)
	AddLabels(s1, Label{"shard", "1"})
	AddLabels(s2, Label{"shard", "2"})
	merged := MergeFamilies(s1, s2)
	if len(merged) != 1 {
		t.Fatalf("merged families = %d, want 1", len(merged))
	}
	var out bytes.Buffer
	if err := WriteFamilies(&out, merged); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if strings.Count(text, "# TYPE jobs_done_total counter") != 1 {
		t.Errorf("TYPE header not deduplicated:\n%s", text)
	}
	for _, want := range []string{`jobs_done_total{shard="1"} 5`, `jobs_done_total{shard="2"} 9`} {
		if !strings.Contains(text, want) {
			t.Errorf("merged output missing %q:\n%s", want, text)
		}
	}
}

func TestRemove(t *testing.T) {
	r := NewRegistry()
	r.Gauge("backend_up", "", Label{"shard", "1"}).Set(1)
	r.Gauge("backend_up", "", Label{"shard", "2"}).Set(1)
	r.Remove("backend_up", Label{"shard", "1"})
	var out bytes.Buffer
	if err := r.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), `shard="1"`) {
		t.Errorf("removed series still present:\n%s", out.String())
	}
	if !strings.Contains(out.String(), `shard="2"`) {
		t.Errorf("surviving series missing:\n%s", out.String())
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(-1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments must read as zero")
	}
	var nilReg *Registry
	if nilReg.Counter("x", "") != nil {
		t.Error("nil registry must hand out nil instruments")
	}
	nilReg.GaugeFunc("y", "", func() float64 { return 1 })
	if fams := nilReg.Families(); fams != nil {
		t.Errorf("nil registry families = %v, want nil", fams)
	}
}

// TestConcurrentIncrements hammers every instrument kind from many
// goroutines while another encodes, relying on -race in CI to flag
// unsynchronized access.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		perG    = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sink bytes.Buffer
			if err := r.WriteText(&sink); err != nil {
				t.Errorf("WriteText during writes: %v", err)
				return
			}
		}
	}()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("conc_total", "")
			g := r.Gauge("conc_gauge", "")
			h := r.Histogram("conc_seconds", "", []float64{0.5})
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
				h.Observe(0.75)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	close(stop)
	<-done

	if got := r.Counter("conc_total", "").Value(); got != workers*perG {
		t.Errorf("counter = %d, want %d", got, workers*perG)
	}
	if got := r.Gauge("conc_gauge", "").Value(); got != workers*perG {
		t.Errorf("gauge = %v, want %d", got, workers*perG)
	}
	h := r.Histogram("conc_seconds", "", nil)
	if got := h.Count(); got != 2*workers*perG {
		t.Errorf("histogram count = %d, want %d", got, 2*workers*perG)
	}
	if got, want := h.Sum(), float64(workers*perG)*(0.25+0.75); got != want {
		t.Errorf("histogram sum = %v, want %v", got, want)
	}
}
