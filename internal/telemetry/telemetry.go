// Package telemetry is a dependency-free metrics plane: counters, gauges
// and histograms with atomic hot-path updates, collected in a Registry and
// rendered in the Prometheus text exposition format (version 0.0.4).
//
// It is deliberately minimal — no default/global registry, no push, no
// label cardinality tracking. A process creates one Registry, threads it
// through its layers (service, store, replication, cluster router), and
// serves it on GET /metrics. Instruments are safe for concurrent use and
// cost one atomic op on the hot path; nil instruments are no-ops so call
// sites never need a registry check.
//
// Not to be confused with internal/metrics, which holds the paper's
// evaluation figures (Section V-C) and the job-result wire format.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant key/value pair attached to a series.
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n if positive. Safe on a nil receiver (no-op).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Safe on a nil receiver (no-op).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d (may be negative). Safe on a nil receiver (no-op).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into cumulative buckets and tracks
// their sum. Buckets are fixed at registration.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, +Inf implicit
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// DurationBuckets is a general-purpose latency bucket layout in seconds,
// 1ms to 60s.
var DurationBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// FsyncBuckets resolves the sub-millisecond range where fsync latency
// lives on healthy disks, up to 1s for stalls.
var FsyncBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}

// Observe records one value. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Buckets are few (≤ ~16); linear scan beats binary search here.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

type series struct {
	labels string // rendered inner label string, "" if none
	c      *Counter
	g      *Gauge
	h      *Histogram

	mu sync.Mutex
	fn func() float64 // kindGaugeFunc; swappable on re-registration
}

func (s *series) call() float64 {
	s.mu.Lock()
	fn := s.fn
	s.mu.Unlock()
	if fn == nil {
		return 0
	}
	return fn()
}

type metricFamily struct {
	name   string
	help   string
	kind   kind
	series map[string]*series
}

// Registry holds named metric families. All methods are safe for
// concurrent use. Registering the same name+labels twice returns the
// existing instrument (GaugeFunc swaps in the new callback), so
// components that restart — a store reopened after a role change, a
// service rebuilt on promotion — keep accumulating into the same series.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*metricFamily
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*metricFamily)}
}

func (r *Registry) family(name, help string, k kind) *metricFamily {
	f, ok := r.fams[name]
	if !ok {
		f = &metricFamily{name: name, help: help, kind: k, series: make(map[string]*series)}
		r.fams[name] = f
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("telemetry: %s re-registered as %s, was %s", name, k, f.kind))
	}
	if f.help == "" {
		f.help = help
	}
	return f
}

// Counter returns the counter for name+labels, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindCounter)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, c: &Counter{}}
		f.series[key] = s
	}
	return s.c
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGauge)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, g: &Gauge{}}
		f.series[key] = s
	}
	return s.g
}

// GaugeFunc registers a gauge whose value is sampled by calling fn at
// encode time. Re-registering replaces the callback, so a component that
// is torn down and rebuilt (store reopen, promote/demote) rebinds the
// series to its live instance. fn must not call back into the registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	key := renderLabels(labels)
	r.mu.Lock()
	f := r.family(name, help, kindGaugeFunc)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key}
		f.series[key] = s
	}
	r.mu.Unlock()
	s.mu.Lock()
	s.fn = fn
	s.mu.Unlock()
}

// Histogram returns the histogram for name+labels, creating it with the
// given bucket upper bounds on first use (later bucket args are ignored).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindHistogram)
	s, ok := f.series[key]
	if !ok {
		bounds := make([]float64, len(buckets))
		copy(bounds, buckets)
		sort.Float64s(bounds)
		h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		s = &series{labels: key, h: h}
		f.series[key] = s
	}
	return s.h
}

// Remove drops the series for name+labels (and the family once empty).
// Used when a cluster backend is removed from the fleet.
func (r *Registry) Remove(name string, labels ...Label) {
	if r == nil {
		return
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		return
	}
	delete(f.series, key)
	if len(f.series) == 0 {
		delete(r.fams, name)
	}
}

// Families snapshots the registry into the parse/merge representation
// used by the router's fan-out aggregation. Families are sorted by name,
// series by label string, so output is deterministic.
func (r *Registry) Families() []Family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*metricFamily, 0, len(names))
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	out := make([]Family, 0, len(fams))
	for _, f := range fams {
		// Snapshot series under the registry lock is not needed: the
		// series map is only mutated under r.mu, and we copy pointers.
		r.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ser := make([]*series, 0, len(keys))
		for _, k := range keys {
			ser = append(ser, f.series[k])
		}
		r.mu.Unlock()

		fam := Family{Name: f.name, Help: f.help, Type: f.kind.String()}
		for _, s := range ser {
			fam.Samples = append(fam.Samples, sampleSeries(f, s)...)
		}
		out = append(out, fam)
	}
	return out
}

func sampleSeries(f *metricFamily, s *series) []Sample {
	switch f.kind {
	case kindCounter:
		return []Sample{{Name: f.name, Labels: s.labels, Value: strconv.FormatInt(s.c.Value(), 10)}}
	case kindGauge:
		return []Sample{{Name: f.name, Labels: s.labels, Value: formatFloat(s.g.Value())}}
	case kindGaugeFunc:
		return []Sample{{Name: f.name, Labels: s.labels, Value: formatFloat(s.call())}}
	case kindHistogram:
		h := s.h
		out := make([]Sample, 0, len(h.bounds)+3)
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			out = append(out, Sample{
				Name:   f.name + "_bucket",
				Labels: addLabel(s.labels, "le", formatFloat(b)),
				Value:  strconv.FormatInt(cum, 10),
			})
		}
		cum += h.counts[len(h.bounds)].Load()
		out = append(out, Sample{Name: f.name + "_bucket", Labels: addLabel(s.labels, "le", "+Inf"), Value: strconv.FormatInt(cum, 10)})
		out = append(out, Sample{Name: f.name + "_sum", Labels: s.labels, Value: formatFloat(h.Sum())})
		out = append(out, Sample{Name: f.name + "_count", Labels: s.labels, Value: strconv.FormatInt(h.count.Load(), 10)})
		return out
	}
	return nil
}

// WriteText renders the registry in Prometheus text exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	return WriteFamilies(w, r.Families())
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels serializes labels into the canonical inner string
// (`k1="v1",k2="v2"`), sorted by key, values escaped.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// addLabel appends one key/value to an already-rendered label string.
func addLabel(rendered, key, value string) string {
	pair := key + `="` + escapeLabelValue(value) + `"`
	if rendered == "" {
		return pair
	}
	return rendered + "," + pair
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
