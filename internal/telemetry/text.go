package telemetry

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Family is one metric family in exposition order: a name, optional HELP
// and TYPE metadata, and its samples. Histogram families carry samples
// named <family>_bucket/_sum/_count.
type Family struct {
	Name    string
	Help    string
	Type    string // counter | gauge | histogram | "" (untyped)
	Samples []Sample
}

// Sample is one series line. Labels is the inner label string without
// braces (`a="b",c="d"`), empty when the series has no labels. Value is
// kept as the raw rendered string so merge/relabel round-trips exactly.
type Sample struct {
	Name   string
	Labels string
	Value  string
}

// WriteFamilies renders families in Prometheus text exposition format.
// Families and samples are emitted in the order given; Registry.Families
// and MergeFamilies already produce deterministic order.
func WriteFamilies(w io.Writer, fams []Family) error {
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if len(f.Samples) == 0 {
			continue
		}
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		if f.Type != "" {
			fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Type)
		}
		for _, s := range f.Samples {
			if s.Labels == "" {
				fmt.Fprintf(bw, "%s %s\n", s.Name, s.Value)
			} else {
				fmt.Fprintf(bw, "%s{%s} %s\n", s.Name, s.Labels, s.Value)
			}
		}
	}
	return bw.Flush()
}

// ParseText parses Prometheus text exposition data back into families.
// It is tolerant: malformed lines are skipped, unknown metadata is
// ignored, and samples whose family was never announced get an untyped
// family of their own. Used by the router to re-aggregate per-shard
// scrapes; it only needs to round-trip what WriteFamilies emits.
func ParseText(data []byte) []Family {
	var (
		order []string
		byN   = make(map[string]*Family)
	)
	fam := func(name string) *Family {
		if f, ok := byN[name]; ok {
			return f
		}
		f := &Family{Name: name}
		byN[name] = f
		order = append(order, name)
		return f
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				continue
			}
			switch fields[1] {
			case "HELP":
				f := fam(fields[2])
				if len(fields) == 4 && f.Help == "" {
					f.Help = fields[3]
				}
			case "TYPE":
				if len(fields) >= 4 {
					fam(fields[2]).Type = fields[3]
				}
			}
			continue
		}
		name, labels, value, ok := parseSample(line)
		if !ok {
			continue
		}
		f, ok := byN[name]
		if !ok {
			// Histogram samples belong to the family minus the suffix.
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if base, found := strings.CutSuffix(name, suffix); found {
					if bf, have := byN[base]; have && bf.Type == "histogram" {
						f = bf
						break
					}
				}
			}
		}
		if f == nil {
			f = fam(name)
		}
		f.Samples = append(f.Samples, Sample{Name: name, Labels: labels, Value: value})
	}
	out := make([]Family, 0, len(order))
	for _, name := range order {
		out = append(out, *byN[name])
	}
	return out
}

// parseSample splits `name{labels} value` or `name value`. The label
// block is kept verbatim; a quote-aware scan finds its closing brace so
// escaped quotes and braces inside label values survive.
func parseSample(line string) (name, labels, value string, ok bool) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		rest := line[i+1:]
		end := closingBrace(rest)
		if end < 0 {
			return "", "", "", false
		}
		labels = rest[:end]
		value = strings.TrimSpace(rest[end+1:])
	} else {
		var found bool
		name, value, found = strings.Cut(line, " ")
		if !found {
			return "", "", "", false
		}
		value = strings.TrimSpace(value)
	}
	// Timestamps (a second field after the value) are not emitted by
	// this package; drop one if present.
	if f := strings.Fields(value); len(f) > 1 {
		value = f[0]
	}
	if name == "" || value == "" {
		return "", "", "", false
	}
	return name, labels, value, true
}

func closingBrace(s string) int {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

// AddLabels prepends the given labels to every sample of every family,
// in place. The router uses this to relabel per-shard scrapes
// (shard="2",role="active") before merging, mirroring the list-merge
// pattern: each backend keeps its identity inside the aggregate.
func AddLabels(fams []Family, labels ...Label) {
	rendered := renderLabels(labels)
	if rendered == "" {
		return
	}
	for fi := range fams {
		for si := range fams[fi].Samples {
			s := &fams[fi].Samples[si]
			if s.Labels == "" {
				s.Labels = rendered
			} else {
				s.Labels = rendered + "," + s.Labels
			}
		}
	}
}

// MergeFamilies combines several family sets into one, grouping samples
// by family name so HELP/TYPE headers appear once per family. Metadata
// comes from the first group that has it; output is sorted by family
// name, samples kept in group order (callers relabel first, so series
// stay distinct).
func MergeFamilies(groups ...[]Family) []Family {
	var (
		order []string
		byN   = make(map[string]*Family)
	)
	for _, group := range groups {
		for _, f := range group {
			m, ok := byN[f.Name]
			if !ok {
				cp := Family{Name: f.Name, Help: f.Help, Type: f.Type}
				byN[f.Name] = &cp
				order = append(order, f.Name)
				m = &cp
			}
			if m.Help == "" {
				m.Help = f.Help
			}
			if m.Type == "" {
				m.Type = f.Type
			}
			m.Samples = append(m.Samples, f.Samples...)
		}
	}
	sort.Strings(order)
	out := make([]Family, 0, len(order))
	for _, name := range order {
		out = append(out, *byN[name])
	}
	return out
}
