package tracelog

import (
	"net/http"
	"time"
)

// RequestIDHeader is echoed on every response; a missing or empty
// inbound value is replaced with a fresh random ID so client retry
// logs always correlate with exactly one server-side record.
const RequestIDHeader = "X-Request-Id"

// Middleware wraps next with the fleet's request plumbing:
//
//   - echoes (or mints) the X-Request-Id header before the handler
//     runs, so error writers can include it in 5xx bodies;
//   - parses the inbound traceparent header into the request context,
//     making the trace ID available to proxying handlers;
//   - emits one structured access-log record per request, tagged with
//     method, path, status, duration, request ID and trace ID.
//
// The logged trace ID comes from the inbound traceparent header, or —
// when the request carried none — from a traceparent header the handler
// set on the response (the cluster router does this when it mints the
// trace for a submit), so the hop that roots a trace still logs its ID.
//
// A nil logger still performs the header and context plumbing.
func Middleware(l *Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := r.Header.Get(RequestIDHeader)
		if reqID == "" || len(reqID) > 128 {
			reqID = randHex(8)
		}
		w.Header().Set(RequestIDHeader, reqID)
		tc := FromRequest(r)
		if tc.Valid() {
			r = r.WithContext(NewContext(r.Context(), tc))
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		if l.Enabled(LevelInfo) {
			attrs := []Attr{
				A("method", r.Method),
				A("path", r.URL.Path),
				A("status", sw.status),
				A("duration_ms", float64(time.Since(start).Microseconds())/1000),
				A("request_id", reqID),
			}
			if !tc.Valid() {
				tc, _ = ParseTraceparent(w.Header().Get("traceparent"))
			}
			if tc.Valid() {
				attrs = append(attrs, A("trace_id", tc.TraceID))
			}
			l.Info("http request", attrs...)
		}
	})
}

// statusWriter records the response status for the access log. It
// forwards Flush so streaming handlers (SSE) keep working behind the
// middleware.
type statusWriter struct {
	http.ResponseWriter
	status      int
	wroteHeader bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wroteHeader {
		w.status = code
		w.wroteHeader = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wroteHeader = true
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
