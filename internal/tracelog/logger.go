// Package tracelog is the fleet's dependency-free observability kit:
// a leveled structured logger (JSON or logfmt-style text), a per-job
// trace timeline with monotonic span IDs, W3C traceparent propagation,
// and an HTTP middleware that stamps request IDs and trace context on
// every request. The store persists timelines as opaque JSON alongside
// the job record, so traces survive crash recovery and ride the
// replication feed to standbys; tracelog owns the format so no other
// package has to parse it.
package tracelog

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log severities. Records below the logger's configured
// level are discarded before formatting.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name used in log output and flags.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "level(" + strconv.Itoa(int(l)) + ")"
	}
}

// ParseLevel maps a flag value ("debug", "info", "warn", "error") to its
// Level, case-insensitively.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("tracelog: unknown log level %q (want debug, info, warn or error)", s)
}

// Format selects the line encoding of a Logger.
type Format int

const (
	// FormatText renders "2006-01-02T15:04:05.000Z INFO  msg key=value ...".
	FormatText Format = iota
	// FormatJSON renders one JSON object per line:
	// {"ts":"...","level":"info","msg":"...","key":value,...}.
	FormatJSON
)

// ParseFormat maps a flag value ("text", "json") to its Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "text":
		return FormatText, nil
	case "json":
		return FormatJSON, nil
	}
	return FormatText, fmt.Errorf("tracelog: unknown log format %q (want text or json)", s)
}

// Attr is one structured key/value pair on a log record.
type Attr struct {
	Key   string
	Value any
}

// A is shorthand for constructing an Attr at a call site.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Logger writes leveled structured records to a single writer. A nil
// *Logger is a valid no-op, so every component can log unconditionally.
// Loggers derived with With share the writer (and its mutex), so all
// lines from one process interleave whole.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	level Level
	fmt   Format
	attrs []Attr // base attrs prepended to every record
}

// New returns a Logger writing records at or above level to w in the
// given format.
func New(w io.Writer, level Level, format Format) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, level: level, fmt: format}
}

// With returns a child logger whose records carry attrs in addition to
// (after) the parent's base attrs. The child shares the parent's writer.
func (l *Logger) With(attrs ...Attr) *Logger {
	if l == nil || len(attrs) == 0 {
		return l
	}
	child := *l
	child.attrs = append(append([]Attr{}, l.attrs...), attrs...)
	return &child
}

// Enabled reports whether records at level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.level
}

// Debug logs a record at LevelDebug.
func (l *Logger) Debug(msg string, attrs ...Attr) { l.log(LevelDebug, msg, attrs) }

// Info logs a record at LevelInfo.
func (l *Logger) Info(msg string, attrs ...Attr) { l.log(LevelInfo, msg, attrs) }

// Warn logs a record at LevelWarn.
func (l *Logger) Warn(msg string, attrs ...Attr) { l.log(LevelWarn, msg, attrs) }

// Error logs a record at LevelError.
func (l *Logger) Error(msg string, attrs ...Attr) { l.log(LevelError, msg, attrs) }

// Logf is the printf bridge for legacy call sites: the formatted string
// becomes the record's message, logged at LevelInfo.
func (l *Logger) Logf(format string, args ...any) {
	if l == nil || !l.Enabled(LevelInfo) {
		return
	}
	l.log(LevelInfo, fmt.Sprintf(format, args...), nil)
}

func (l *Logger) log(level Level, msg string, attrs []Attr) {
	if !l.Enabled(level) {
		return
	}
	ts := time.Now().UTC()
	var buf []byte
	if l.fmt == FormatJSON {
		buf = appendJSONRecord(buf, ts, level, msg, l.attrs, attrs)
	} else {
		buf = appendTextRecord(buf, ts, level, msg, l.attrs, attrs)
	}
	buf = append(buf, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Write(buf)
}

func appendJSONRecord(buf []byte, ts time.Time, level Level, msg string, base, attrs []Attr) []byte {
	buf = append(buf, `{"ts":`...)
	buf = appendJSONValue(buf, ts.Format(time.RFC3339Nano))
	buf = append(buf, `,"level":`...)
	buf = appendJSONValue(buf, level.String())
	buf = append(buf, `,"msg":`...)
	buf = appendJSONValue(buf, msg)
	for _, a := range base {
		buf = appendJSONAttr(buf, a)
	}
	for _, a := range attrs {
		buf = appendJSONAttr(buf, a)
	}
	return append(buf, '}')
}

func appendJSONAttr(buf []byte, a Attr) []byte {
	buf = append(buf, ',')
	buf = appendJSONValue(buf, a.Key)
	buf = append(buf, ':')
	return appendJSONValue(buf, a.Value)
}

func appendJSONValue(buf []byte, v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprint(v))
	}
	return append(buf, b...)
}

func appendTextRecord(buf []byte, ts time.Time, level Level, msg string, base, attrs []Attr) []byte {
	buf = ts.AppendFormat(buf, "2006-01-02T15:04:05.000Z")
	buf = append(buf, ' ')
	lv := strings.ToUpper(level.String())
	buf = append(buf, lv...)
	for i := len(lv); i < 5; i++ {
		buf = append(buf, ' ')
	}
	buf = append(buf, ' ')
	buf = appendTextToken(buf, msg)
	for _, a := range base {
		buf = appendTextAttr(buf, a)
	}
	for _, a := range attrs {
		buf = appendTextAttr(buf, a)
	}
	return buf
}

func appendTextAttr(buf []byte, a Attr) []byte {
	buf = append(buf, ' ')
	buf = append(buf, a.Key...)
	buf = append(buf, '=')
	return appendTextToken(buf, fmt.Sprint(a.Value))
}

// appendTextToken quotes a value only when it contains whitespace or
// quotes, keeping the common case grep-friendly.
func appendTextToken(buf []byte, s string) []byte {
	if strings.ContainsAny(s, " \t\n\"=") {
		return strconv.AppendQuote(buf, s)
	}
	return append(buf, s...)
}
