package tracelog

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() {
		t.Fatalf("fresh context invalid: %+v", tc)
	}
	got, ok := ParseTraceparent(tc.Traceparent())
	if !ok {
		t.Fatalf("parse of %q failed", tc.Traceparent())
	}
	if got != tc {
		t.Fatalf("round trip mismatch: %+v != %+v", got, tc)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // all-zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // all-zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
		"00-4BF92F3577B34DA6A3CE929D0E0E473G-00f067aa0ba902b7-01",
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted", s)
		}
	}
	// Future versions with extra fields parse.
	if tc, ok := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); !ok || tc.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("future-version traceparent rejected: %+v ok=%v", tc, ok)
	}
}

func TestTraceSpanLifecycle(t *testing.T) {
	tr := NewTrace(TraceContext{})
	compile := tr.StartSpan("compile")
	tr.EndSpan(compile)
	adm := tr.StartSpan("admission")
	j := tr.StartChild("journal", adm)
	tr.EndSpan(j)
	tr.EndSpan(adm)
	run := tr.StartSpan("run")
	tr.SetAttr(run, "steps", int64(42))
	tr.Annotate(run, "step 42, 0 queued")
	tr.AddInstant("requeued", nil)
	tr.EndOpen()

	tl := tr.Timeline()
	if tl.TraceID == "" || len(tl.TraceID) != 32 {
		t.Fatalf("bad trace id %q", tl.TraceID)
	}
	if len(tl.Spans) != 5 {
		t.Fatalf("want 5 spans, got %d", len(tl.Spans))
	}
	byName := map[string]Span{}
	for i, sp := range tl.Spans {
		if sp.ID != int64(i+1) {
			t.Errorf("span %d has id %d, want monotonic from 1", i, sp.ID)
		}
		if sp.End.IsZero() {
			t.Errorf("span %s left open after EndOpen", sp.Name)
		}
		byName[sp.Name] = sp
	}
	if byName["journal"].Parent != byName["admission"].ID {
		t.Errorf("journal parent = %d, want %d", byName["journal"].Parent, byName["admission"].ID)
	}
	if v, ok := byName["run"].Attrs["steps"]; !ok || v != int64(42) {
		t.Errorf("run attrs = %v", byName["run"].Attrs)
	}
	if len(byName["run"].Annotations) != 1 {
		t.Errorf("run annotations = %v", byName["run"].Annotations)
	}
}

func TestTraceAdoptsPropagatedID(t *testing.T) {
	tc, _ := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	tr := NewTrace(tc)
	if tr.ID() != tc.TraceID {
		t.Fatalf("trace id %q, want adopted %q", tr.ID(), tc.TraceID)
	}
	if tl := tr.Timeline(); tl.Parent != tc.SpanID {
		t.Fatalf("parent span %q, want %q", tl.Parent, tc.SpanID)
	}
}

func TestResumeClosesOpenSpansAndLinksIDs(t *testing.T) {
	tr := NewTrace(TraceContext{})
	tr.EndSpan(tr.StartSpan("compile"))
	tr.StartSpan("queue") // left open, as after a crash
	data := tr.JSON()

	resumed, err := Resume(data)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.ID() != tr.ID() {
		t.Fatalf("resumed trace id %q != original %q", resumed.ID(), tr.ID())
	}
	resumed.AddInstant("requeued", nil)
	tl := resumed.Timeline()
	if len(tl.Spans) != 3 {
		t.Fatalf("want 3 spans, got %d", len(tl.Spans))
	}
	for _, sp := range tl.Spans {
		if sp.End.IsZero() {
			t.Errorf("span %s still open after resume", sp.Name)
		}
	}
	if tl.Spans[2].Name != "requeued" || tl.Spans[2].ID != 3 {
		t.Errorf("requeued span = %+v, want id 3", tl.Spans[2])
	}
}

func TestAppendSpan(t *testing.T) {
	tr := NewTrace(TraceContext{})
	tr.EndSpan(tr.StartSpan("run"))
	start := time.Now().Add(-time.Millisecond)
	out, err := AppendSpan(tr.JSON(), "replica_apply", start, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	var tl Timeline
	if err := json.Unmarshal(out, &tl); err != nil {
		t.Fatal(err)
	}
	if len(tl.Spans) != 2 || tl.Spans[1].Name != "replica_apply" || tl.Spans[1].ID != 2 {
		t.Fatalf("appended timeline = %+v", tl)
	}
	if tl.Spans[1].DurationMs <= 0 {
		t.Fatalf("replica_apply duration %v, want > 0", tl.Spans[1].DurationMs)
	}
	if _, err := AppendSpan([]byte(`{"nope":1}`), "x", start, time.Now()); err == nil {
		t.Fatal("AppendSpan accepted timeline without trace id")
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	id := tr.StartSpan("x")
	tr.EndSpan(id)
	tr.SetAttr(id, "k", 1)
	tr.Annotate(id, "note")
	tr.AddInstant("y", nil)
	tr.EndOpen()
	if tr.ID() != "" || tr.JSON() != nil {
		t.Fatal("nil trace produced data")
	}
}

func TestLoggerJSONFormat(t *testing.T) {
	var sb strings.Builder
	l := New(&sb, LevelInfo, FormatJSON).With(A("component", "router"))
	l.Debug("hidden")
	l.Info("probe failed", A("backend", "http://x"), A("fails", 3))
	line := sb.String()
	if strings.Contains(line, "hidden") {
		t.Fatal("debug record written at info level")
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(line)), &rec); err != nil {
		t.Fatalf("log line not JSON: %q: %v", line, err)
	}
	for k, want := range map[string]any{"level": "info", "msg": "probe failed", "component": "router", "backend": "http://x", "fails": float64(3)} {
		if rec[k] != want {
			t.Errorf("rec[%q] = %v, want %v", k, rec[k], want)
		}
	}
	if _, err := time.Parse(time.RFC3339Nano, rec["ts"].(string)); err != nil {
		t.Errorf("bad ts %v: %v", rec["ts"], err)
	}
}

func TestLoggerTextFormatAndNil(t *testing.T) {
	var sb strings.Builder
	l := New(&sb, LevelDebug, FormatText)
	l.Warn("lag high", A("lsn", 17), A("note", "two words"))
	line := sb.String()
	for _, want := range []string{"WARN", "\"lag high\"", "lsn=17", `note="two words"`} {
		if !strings.Contains(line, want) {
			t.Errorf("text line %q missing %q", line, want)
		}
	}
	var nilLogger *Logger
	nilLogger.Info("ignored") // must not panic
	nilLogger.With(A("k", "v")).Logf("also ignored %d", 1)
	if nilLogger.Enabled(LevelError) {
		t.Fatal("nil logger claims enabled")
	}
}

func TestParseLevelAndFormat(t *testing.T) {
	if lv, err := ParseLevel("WARN"); err != nil || lv != LevelWarn {
		t.Fatalf("ParseLevel(WARN) = %v, %v", lv, err)
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel(loud) accepted")
	}
	if f, err := ParseFormat("json"); err != nil || f != FormatJSON {
		t.Fatalf("ParseFormat(json) = %v, %v", f, err)
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Fatal("ParseFormat(xml) accepted")
	}
}

func TestMiddleware(t *testing.T) {
	var sb strings.Builder
	l := New(&sb, LevelInfo, FormatJSON)
	var gotTC TraceContext
	var gotOK bool
	var reqIDInHandler string
	h := Middleware(l, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotTC, gotOK = FromContext(r.Context())
		reqIDInHandler = w.Header().Get(RequestIDHeader)
		w.WriteHeader(http.StatusTeapot)
	}))

	// Inbound request id + traceparent are propagated.
	req := httptest.NewRequest("GET", "/v1/jobs/7", nil)
	req.Header.Set(RequestIDHeader, "req-abc")
	req.Header.Set("traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if got := rr.Header().Get(RequestIDHeader); got != "req-abc" {
		t.Fatalf("request id not echoed: %q", got)
	}
	if reqIDInHandler != "req-abc" {
		t.Fatalf("request id not visible to handler: %q", reqIDInHandler)
	}
	if !gotOK || gotTC.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace context not in request context: %+v ok=%v", gotTC, gotOK)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(sb.String())), &rec); err != nil {
		t.Fatalf("access log not JSON: %v", err)
	}
	if rec["status"] != float64(http.StatusTeapot) || rec["trace_id"] != gotTC.TraceID || rec["request_id"] != "req-abc" {
		t.Fatalf("access log record = %v", rec)
	}

	// Absent request id is generated; absent traceparent leaves context bare.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rid := rr.Header().Get(RequestIDHeader); len(rid) != 16 {
		t.Fatalf("generated request id %q, want 16 hex chars", rid)
	}
	if gotOK {
		t.Fatal("trace context present without traceparent header")
	}
}
