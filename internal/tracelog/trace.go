package tracelog

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// TraceContext is the wire-propagated identity of a trace: the 32-hex
// trace ID shared by every span in a job's timeline and the 16-hex span
// ID of the caller's active span (the remote parent). It round-trips
// through the W3C traceparent header.
type TraceContext struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
}

// Valid reports whether tc carries a usable trace ID: 32 lowercase hex
// digits, not all zero (the W3C invalid sentinel).
func (tc TraceContext) Valid() bool {
	return isHex(tc.TraceID, 32) && tc.TraceID != strings.Repeat("0", 32)
}

// NewTraceContext mints a fresh trace context with random trace and
// span IDs.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: randHex(16), SpanID: randHex(8)}
}

// Traceparent renders tc as a W3C traceparent header value
// (version 00, sampled flag set). The span ID falls back to a fresh
// random ID when unset, since the header requires one.
func (tc TraceContext) Traceparent() string {
	span := tc.SpanID
	if !isHex(span, 16) {
		span = randHex(8)
	}
	return "00-" + tc.TraceID + "-" + span + "-01"
}

// ParseTraceparent decodes a W3C traceparent header value. It accepts
// any version byte (per spec, unknown versions are parsed as 00) and
// rejects malformed or all-zero IDs.
func ParseTraceparent(s string) (TraceContext, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 {
		return TraceContext{}, false
	}
	if !isHex(parts[0], 2) || parts[0] == "ff" {
		return TraceContext{}, false
	}
	tc := TraceContext{TraceID: strings.ToLower(parts[1]), SpanID: strings.ToLower(parts[2])}
	if !tc.Valid() || !isHex(tc.SpanID, 16) || tc.SpanID == strings.Repeat("0", 16) {
		return TraceContext{}, false
	}
	return tc, true
}

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < n; i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func randHex(nbytes int) string {
	b := make([]byte, nbytes)
	rand.Read(b)
	return hex.EncodeToString(b)
}

type ctxKey struct{}

// NewContext returns a context carrying tc; FromContext retrieves it.
// The service client injects a traceparent header from any context that
// carries a trace context, which is how trace IDs cross process hops.
func NewContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, tc)
}

// FromContext extracts the trace context installed by NewContext.
func FromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(ctxKey{}).(TraceContext)
	return tc, ok && tc.Valid()
}

// FromRequest parses the request's traceparent header, returning the
// zero TraceContext when the header is absent or malformed. Handlers
// call this directly so propagation works with or without middleware.
func FromRequest(r *http.Request) TraceContext {
	tc, _ := ParseTraceparent(r.Header.Get("traceparent"))
	return tc
}

// Span is one timed operation in a trace. IDs are small integers,
// monotonic within their trace; Parent is zero for top-level spans.
// Top-level spans in a job timeline are sequential and non-overlapping
// (compile → admission → queue → run), so their durations sum to at
// most the job's total elapsed time; children (e.g. the journal append
// inside admission) nest within their parent.
type Span struct {
	ID     int64     `json:"id"`
	Parent int64     `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end,omitzero"`
	// DurationMs is End-Start in milliseconds, recomputed at marshal
	// time; zero-duration instantaneous spans (e.g. requeued) keep 0.
	DurationMs  float64        `json:"duration_ms"`
	Attrs       map[string]any `json:"attrs,omitempty"`
	Annotations []Annotation   `json:"annotations,omitempty"`
}

// Duration returns End-Start, or zero while the span is open.
func (s Span) Duration() time.Duration {
	if s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Annotation is a timestamped note attached to a span — the run span
// collects one per observer publish ("step 1048576, 42 queued").
type Annotation struct {
	At   time.Time `json:"at"`
	Text string    `json:"text"`
}

// Timeline is the serialized form of a trace: what the store persists
// alongside the job record and what GET /v1/jobs/{id}/trace returns.
type Timeline struct {
	TraceID string `json:"trace_id"`
	// Parent is the remote caller's span ID when the trace was started
	// from a propagated traceparent (empty for locally-rooted traces).
	Parent string `json:"parent_span,omitempty"`
	Spans  []Span `json:"spans,omitempty"`
}

// Trace is a live, mutex-guarded span timeline for one job. Span IDs
// are assigned monotonically from 1. All methods are safe for
// concurrent use and safe on a nil *Trace (no-ops), so instrumentation
// points never need guards.
type Trace struct {
	mu     sync.Mutex
	id     string
	parent string
	next   int64
	spans  []*Span
}

// NewTrace starts a trace adopting tc's trace ID when valid (recording
// tc's span ID as the remote parent) and minting a fresh ID otherwise.
func NewTrace(tc TraceContext) *Trace {
	t := &Trace{next: 1}
	if tc.Valid() {
		t.id = tc.TraceID
		t.parent = tc.SpanID
	} else {
		t.id = randHex(16)
	}
	return t
}

// Resume reconstructs a live trace from a persisted timeline, keeping
// the original trace ID so post-recovery spans link to the pre-crash
// ones. Spans left open by the crash are closed at the resume instant —
// their duration genuinely includes the downtime. Returns an error if
// data is not a timeline.
func Resume(data []byte) (*Trace, error) {
	var tl Timeline
	if err := json.Unmarshal(data, &tl); err != nil {
		return nil, fmt.Errorf("tracelog: resume: %w", err)
	}
	if tl.TraceID == "" {
		return nil, errors.New("tracelog: resume: timeline has no trace id")
	}
	t := &Trace{id: tl.TraceID, parent: tl.Parent, next: 1}
	now := time.Now().UTC()
	for i := range tl.Spans {
		sp := tl.Spans[i]
		if sp.End.IsZero() {
			sp.End = now
		}
		if sp.ID >= t.next {
			t.next = sp.ID + 1
		}
		t.spans = append(t.spans, &sp)
	}
	return t, nil
}

// ID returns the trace's 32-hex trace ID.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StartSpan opens a top-level span and returns its ID.
func (t *Trace) StartSpan(name string) int64 { return t.StartChild(name, 0) }

// StartChild opens a span nested under parent (zero for top-level) and
// returns its ID.
func (t *Trace) StartChild(name string, parent int64) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.next
	t.next++
	t.spans = append(t.spans, &Span{ID: id, Parent: parent, Name: name, Start: time.Now().UTC()})
	return id
}

// EndSpan closes the span; later calls for the same ID are no-ops.
func (t *Trace) EndSpan(id int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if sp := t.findLocked(id); sp != nil && sp.End.IsZero() {
		sp.End = time.Now().UTC()
	}
}

// EndOpen closes every span still open — called when a job reaches a
// terminal state, so a cancel-while-queued still yields a closed queue
// span.
func (t *Trace) EndOpen() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now().UTC()
	for _, sp := range t.spans {
		if sp.End.IsZero() {
			sp.End = now
		}
	}
}

// SetAttr attaches a key/value to the span.
func (t *Trace) SetAttr(id int64, key string, value any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if sp := t.findLocked(id); sp != nil {
		if sp.Attrs == nil {
			sp.Attrs = make(map[string]any)
		}
		sp.Attrs[key] = value
	}
}

// Annotate appends a timestamped note to the span.
func (t *Trace) Annotate(id int64, text string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if sp := t.findLocked(id); sp != nil {
		sp.Annotations = append(sp.Annotations, Annotation{At: time.Now().UTC(), Text: text})
	}
}

// AddInstant records a zero-duration marker span (e.g. "requeued"
// after a crash-recovery re-admission).
func (t *Trace) AddInstant(name string, attrs map[string]any) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.next
	t.next++
	now := time.Now().UTC()
	t.spans = append(t.spans, &Span{ID: id, Name: name, Start: now, End: now, Attrs: attrs})
	return id
}

func (t *Trace) findLocked(id int64) *Span {
	if id == 0 {
		return nil
	}
	for _, sp := range t.spans {
		if sp.ID == id {
			return sp
		}
	}
	return nil
}

// Timeline snapshots the trace into its serializable form, with spans
// ordered by ID and durations computed.
func (t *Trace) Timeline() Timeline {
	if t == nil {
		return Timeline{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tl := Timeline{TraceID: t.id, Parent: t.parent, Spans: make([]Span, 0, len(t.spans))}
	for _, sp := range t.spans {
		cp := *sp
		cp.Annotations = append([]Annotation(nil), sp.Annotations...)
		if len(sp.Attrs) > 0 {
			cp.Attrs = make(map[string]any, len(sp.Attrs))
			for k, v := range sp.Attrs {
				cp.Attrs[k] = v
			}
		}
		if !cp.End.IsZero() {
			cp.DurationMs = float64(cp.End.Sub(cp.Start).Microseconds()) / 1000
		}
		tl.Spans = append(tl.Spans, cp)
	}
	sort.Slice(tl.Spans, func(i, j int) bool { return tl.Spans[i].ID < tl.Spans[j].ID })
	return tl
}

// JSON marshals the current timeline; the service persists this blob
// through the store so the trace survives restarts and replication.
func (t *Trace) JSON() json.RawMessage {
	if t == nil {
		return nil
	}
	b, err := json.Marshal(t.Timeline())
	if err != nil {
		return nil
	}
	return b
}

// AppendSpan parses a persisted timeline, appends one closed span
// (keeping IDs monotonic) and re-marshals it. The replica store uses
// this to record its replication-apply span without knowing the
// timeline format.
func AppendSpan(data json.RawMessage, name string, start, end time.Time) (json.RawMessage, error) {
	var tl Timeline
	if err := json.Unmarshal(data, &tl); err != nil {
		return nil, fmt.Errorf("tracelog: append span: %w", err)
	}
	if tl.TraceID == "" {
		return nil, errors.New("tracelog: append span: no trace id")
	}
	var next int64 = 1
	for _, sp := range tl.Spans {
		if sp.ID >= next {
			next = sp.ID + 1
		}
	}
	sp := Span{ID: next, Name: name, Start: start.UTC(), End: end.UTC()}
	sp.DurationMs = float64(sp.End.Sub(sp.Start).Microseconds()) / 1000
	tl.Spans = append(tl.Spans, sp)
	return json.Marshal(tl)
}
