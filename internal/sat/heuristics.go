package sat

import (
	"fmt"
	"math"
)

// Heuristic selects the branching literal of DPLL. The paper deliberately
// uses an "algorithm-independent heuristic" (Listing 4 line 12); these
// implementations cover the standard spectrum from naive to
// occurrence-weighted, and serve as the A3 ablation axis.
type Heuristic int

const (
	// FirstUnassigned picks the first literal of the first clause: the
	// barebone choice, producing the bushiest trees (and therefore the
	// most distributable work). Default for the paper reproduction.
	FirstUnassigned Heuristic = iota
	// MostFrequent picks the literal occurring most often.
	MostFrequent
	// JeroslowWang scores literals by sum over clauses of 2^-|clause|.
	JeroslowWang
	// DLIS (dynamic largest individual sum) picks the literal whose
	// polarity occurs most often among remaining clauses.
	DLIS
)

func (h Heuristic) String() string {
	switch h {
	case FirstUnassigned:
		return "first"
	case MostFrequent:
		return "freq"
	case JeroslowWang:
		return "jw"
	case DLIS:
		return "dlis"
	default:
		return fmt.Sprintf("heuristic(%d)", int(h))
	}
}

// ParseHeuristic resolves a heuristic spec string.
func ParseHeuristic(s string) (Heuristic, error) {
	switch s {
	case "first":
		return FirstUnassigned, nil
	case "freq":
		return MostFrequent, nil
	case "jw":
		return JeroslowWang, nil
	case "dlis":
		return DLIS, nil
	default:
		return 0, fmt.Errorf("sat: unknown heuristic %q (want first|freq|jw|dlis)", s)
	}
}

// SelectLiteral returns the branching literal for a problem that is neither
// consistent nor contradicted. It panics if no literal exists (callers must
// check Consistent / HasEmptyClause first).
func SelectLiteral(p *Problem, h Heuristic) Lit {
	switch h {
	case MostFrequent:
		return selectByCount(p, false)
	case DLIS:
		return selectByCount(p, true)
	case JeroslowWang:
		return selectJW(p)
	default:
		for _, c := range p.Clauses {
			if len(c) > 0 {
				return c[0]
			}
		}
	}
	panic("sat: SelectLiteral on a problem with no literals")
}

// selectByCount picks the most frequent variable (polarity-insensitive) or,
// for DLIS, the single most frequent literal.
func selectByCount(p *Problem, perLiteral bool) Lit {
	pos := make([]int, p.NumVars+1)
	neg := make([]int, p.NumVars+1)
	for _, c := range p.Clauses {
		for _, l := range c {
			if l.Positive() {
				pos[l.Var()]++
			} else {
				neg[l.Var()]++
			}
		}
	}
	best, bestScore := Lit(0), -1
	for v := 1; v <= p.NumVars; v++ {
		if perLiteral {
			if pos[v] > bestScore {
				best, bestScore = NewLit(v, true), pos[v]
			}
			if neg[v] > bestScore {
				best, bestScore = NewLit(v, false), neg[v]
			}
		} else if score := pos[v] + neg[v]; score > bestScore && score > 0 {
			// Branch on the majority polarity first.
			best, bestScore = NewLit(v, pos[v] >= neg[v]), score
		}
	}
	if best == 0 {
		panic("sat: selectByCount on a problem with no literals")
	}
	return best
}

// selectJW implements the (one-sided) Jeroslow-Wang rule.
func selectJW(p *Problem) Lit {
	score := make(map[Lit]float64, p.NumVars*2)
	for _, c := range p.Clauses {
		w := math.Pow(2, -float64(len(c)))
		for _, l := range c {
			score[l] += w
		}
	}
	best, bestScore := Lit(0), -1.0
	// Iterate variables in order for determinism (map order is random).
	for v := 1; v <= p.NumVars; v++ {
		for _, l := range []Lit{NewLit(v, true), NewLit(v, false)} {
			if s, ok := score[l]; ok && s > bestScore {
				best, bestScore = l, s
			}
		}
	}
	if best == 0 {
		panic("sat: selectJW on a problem with no literals")
	}
	return best
}
