package sat

// Result is a solver verdict with the witness assignment (for SAT) and
// search statistics.
type Result struct {
	Status     Status
	Assignment Assignment // satisfying assignment when Status == SAT
	// Decisions counts branching points; Calls counts DPLL invocations;
	// UnitProps and PureAssigns count simplification steps. These mirror
	// the work the distributed solver spreads across the mesh.
	Decisions   int64
	Calls       int64
	UnitProps   int64
	PureAssigns int64
}

// Options configures the sequential solver.
type Options struct {
	Heuristic Heuristic
	// Simplify selects the simplification mode per call; the default
	// OnePass matches the distributed task, making sequential call counts
	// comparable to distributed frame counts. Use Fixpoint for the
	// strongest pruning.
	Simplify SimplifyMode
	// MaxCalls bounds the search; zero means unlimited. When exceeded the
	// result status is Unknown.
	MaxCalls int64
}

// Solve runs sequential DPLL over the formula — the single-machine baseline
// the distributed solver is validated against.
func Solve(f Formula, opts Options) Result {
	res := Result{}
	status := dpll(NewProblem(f), opts, &res)
	res.Status = status
	return res
}

// dpll is the recursive engine matching the paper's Listing 4, explored
// depth-first (true branch first).
func dpll(p *Problem, opts Options, res *Result) Status {
	res.Calls++
	if opts.MaxCalls > 0 && res.Calls > opts.MaxCalls {
		return Unknown
	}
	simplified, stats := p.SimplifyWith(opts.Simplify)
	res.UnitProps += int64(stats.UnitPropagations)
	res.PureAssigns += int64(stats.PureAssignments)
	if simplified.HasEmptyClause() {
		return UNSAT
	}
	if simplified.Consistent() {
		res.Assignment = simplified.Assign.Clone()
		return SAT
	}
	lit := SelectLiteral(simplified, opts.Heuristic)
	res.Decisions++
	if s := dpll(simplified.WithAssignment(lit), opts, res); s != UNSAT {
		return s
	}
	return dpll(simplified.WithAssignment(lit.Negate()), opts, res)
}

// SolveBruteForce decides satisfiability by enumerating all 2^NumVars
// assignments. It is the test oracle for small formulas.
func SolveBruteForce(f Formula) Result {
	n := f.NumVars
	if n > 24 {
		panic("sat: brute force limited to 24 variables")
	}
	a := NewAssignment(n)
	for bits := 0; bits < 1<<n; bits++ {
		for v := 1; v <= n; v++ {
			if bits>>(v-1)&1 == 1 {
				a[v] = 1
			} else {
				a[v] = -1
			}
		}
		if Verify(f, a) {
			return Result{Status: SAT, Assignment: a.Clone()}
		}
	}
	return Result{Status: UNSAT}
}
