package sat

import (
	"math/rand"
	"testing"
)

func benchFormula(vars, clauses int) Formula {
	return Random3SAT(rand.New(rand.NewSource(99)), vars, clauses)
}

// BenchmarkSolve measures the sequential DPLL engine per heuristic.
func BenchmarkSolve(b *testing.B) {
	f := benchFormula(50, 218)
	for _, h := range []Heuristic{FirstUnassigned, MostFrequent, JeroslowWang, DLIS} {
		b.Run(h.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Solve(f, Options{Heuristic: h})
			}
		})
	}
}

// BenchmarkSimplify measures both simplification modes on a fresh problem.
func BenchmarkSimplify(b *testing.B) {
	f := benchFormula(50, 218)
	for _, m := range []SimplifyMode{OnePass, Fixpoint} {
		b.Run(m.String(), func(b *testing.B) {
			b.ReportAllocs()
			p := NewProblem(f)
			for i := 0; i < b.N; i++ {
				p.SimplifyWith(m)
			}
		})
	}
}

// BenchmarkWithAssignment measures the per-branch copy cost, the dominant
// allocation of the distributed solver.
func BenchmarkWithAssignment(b *testing.B) {
	p := NewProblem(benchFormula(50, 218))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.WithAssignment(NewLit(1+i%50, i%2 == 0))
	}
}

// BenchmarkGenerate measures suite generation including the satisfiability
// filter.
func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateSuite(SuiteParams{
			Count: 1, NumVars: 20, NumClauses: 91, Seed: int64(i), RequireSAT: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
