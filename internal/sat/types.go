// Package sat provides the Boolean satisfiability machinery used by the
// paper's evaluation (Section V): CNF formulas, DIMACS encoding, a
// Davis-Putnam-Logemann-Loveland (DPLL) solver with unit propagation and
// pure-literal elimination, a uniform-random 3-SAT generator matching the
// SATLIB uf20-91 benchmark distribution, and the distributed layer-5 task
// of the paper's Listing 4.
package sat

import (
	"fmt"
	"strconv"
)

// Lit is a literal: +v for variable v, -v for its negation. Variables are
// numbered from 1, as in DIMACS.
type Lit int32

// NewLit builds a literal from a variable number and polarity.
func NewLit(v int, positive bool) Lit {
	if positive {
		return Lit(v)
	}
	return Lit(-v)
}

// Var returns the literal's variable number.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Positive reports whether the literal is unnegated.
func (l Lit) Positive() bool { return l > 0 }

// Negate returns the complementary literal.
func (l Lit) Negate() Lit { return -l }

// String renders the literal in DIMACS style.
func (l Lit) String() string { return strconv.Itoa(int(l)) }

// Clause is a disjunction of literals.
type Clause []Lit

// Clone returns an independent copy of the clause.
func (c Clause) Clone() Clause { return append(Clause(nil), c...) }

// Formula is a CNF formula: a conjunction of clauses over NumVars variables.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// Clone returns a deep copy of the formula.
func (f Formula) Clone() Formula {
	out := Formula{NumVars: f.NumVars, Clauses: make([]Clause, len(f.Clauses))}
	for i, c := range f.Clauses {
		out.Clauses[i] = c.Clone()
	}
	return out
}

// Validate checks structural sanity: literals are non-zero and reference
// variables within [1, NumVars].
func (f Formula) Validate() error {
	if f.NumVars < 0 {
		return fmt.Errorf("sat: negative NumVars %d", f.NumVars)
	}
	for i, c := range f.Clauses {
		for _, l := range c {
			if l == 0 {
				return fmt.Errorf("sat: clause %d contains zero literal", i)
			}
			if v := l.Var(); v > f.NumVars {
				return fmt.Errorf("sat: clause %d references variable %d > NumVars %d", i, v, f.NumVars)
			}
		}
	}
	return nil
}

// Assignment maps variables to truth values: index v holds +1 (true),
// -1 (false) or 0 (unassigned). Index 0 is unused.
type Assignment []int8

// NewAssignment returns an all-unassigned assignment for numVars variables.
func NewAssignment(numVars int) Assignment { return make(Assignment, numVars+1) }

// Clone returns an independent copy.
func (a Assignment) Clone() Assignment { return append(Assignment(nil), a...) }

// Value returns the assignment of a variable: +1, -1 or 0.
func (a Assignment) Value(v int) int8 { return a[v] }

// Set makes the literal true.
func (a Assignment) Set(l Lit) {
	if l.Positive() {
		a[l.Var()] = 1
	} else {
		a[l.Var()] = -1
	}
}

// Satisfies reports whether the literal evaluates to true under the
// assignment (unassigned variables evaluate to false-ish: not satisfied).
func (a Assignment) Satisfies(l Lit) bool {
	if l.Positive() {
		return a[l.Var()] == 1
	}
	return a[l.Var()] == -1
}

// Falsifies reports whether the literal evaluates to false under the
// assignment (its variable is assigned the opposite polarity).
func (a Assignment) Falsifies(l Lit) bool {
	if l.Positive() {
		return a[l.Var()] == -1
	}
	return a[l.Var()] == 1
}

// Assigned counts assigned variables.
func (a Assignment) Assigned() int {
	n := 0
	for _, v := range a[1:] {
		if v != 0 {
			n++
		}
	}
	return n
}

// Verify reports whether the assignment satisfies the formula, treating
// unassigned variables as false.
func Verify(f Formula, a Assignment) bool {
	if len(a) < f.NumVars+1 {
		return false
	}
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			val := a[l.Var()]
			if val == 0 {
				val = -1 // unassigned defaults to false
			}
			if (l.Positive() && val == 1) || (!l.Positive() && val == -1) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Status is a solver verdict.
type Status int

const (
	// Unknown means the solver could not decide (e.g. budget exhausted).
	Unknown Status = iota
	// SAT means a satisfying assignment was found.
	SAT
	// UNSAT means the formula has no satisfying assignment.
	UNSAT
)

func (s Status) String() string {
	switch s {
	case SAT:
		return "SAT"
	case UNSAT:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}
