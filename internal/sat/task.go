package sat

import (
	"hypersolve/internal/recursion"
)

// Outcome is the value the distributed solver's frames exchange: a verdict
// plus, for SAT, the witness assignment.
type Outcome struct {
	Status     Status
	Assignment Assignment
}

// IsSAT is the validation predicate of the paper's Listing 4 (is_SAT): a
// choice resolves as soon as one branch reports SAT.
func IsSAT(v recursion.Value) bool {
	o, ok := v.(Outcome)
	return ok && o.Status == SAT
}

// Task returns the layer-5 recursive SAT solver of the paper's Listing 4
// with single-pass simplification (the paper-faithful default). See
// TaskWithMode for the simplification ablation.
func Task(h Heuristic) recursion.Task { return TaskWithMode(h, OnePass) }

// TaskWithMode returns the distributed DPLL task with an explicit
// simplification mode. Each invocation receives a *Problem, simplifies it
// with unit propagation and pure-literal elimination, and either answers
// directly or branches on a selected literal, evaluating both sub-problems
// concurrently on other nodes under non-deterministic choice: the first SAT
// result wins; if both branches return non-SAT the frame answers UNSAT.
//
// Sub-calls carry a cross-layer hint — the sub-problem's remaining clause
// count — which hint-aware mappers (mapping.NewWeighted) may exploit, and
// others ignore (paper Section III-B3).
func TaskWithMode(h Heuristic, mode SimplifyMode) recursion.Task {
	return func(f *recursion.Frame, arg recursion.Value) recursion.Value {
		p, ok := arg.(*Problem)
		if !ok {
			panic("sat: task argument is not *Problem")
		}
		simplified, _ := p.SimplifyWith(mode)
		if simplified.HasEmptyClause() {
			return Outcome{Status: UNSAT}
		}
		if simplified.Consistent() {
			return Outcome{Status: SAT, Assignment: simplified.Assign.Clone()}
		}
		lit := SelectLiteral(simplified, h)
		sub1 := simplified.WithAssignment(lit)
		sub2 := simplified.WithAssignment(lit.Negate())
		v, found := f.ChooseHinted(IsSAT,
			recursion.HintedCall{Arg: sub1, Hint: float64(len(sub1.Clauses))},
			recursion.HintedCall{Arg: sub2, Hint: float64(len(sub2.Clauses))},
		)
		if found {
			return v
		}
		return Outcome{Status: UNSAT}
	}
}
