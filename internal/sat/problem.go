package sat

// Problem is a partially solved CNF instance: the not-yet-satisfied clauses
// (with falsified literals removed) plus the partial assignment accumulated
// so far. It is the self-contained sub-problem payload that travels between
// nodes in the distributed solver, and the working state of the sequential
// one.
type Problem struct {
	NumVars int
	Clauses []Clause
	Assign  Assignment
}

// NewProblem wraps a formula into an unassigned problem, copying clauses.
func NewProblem(f Formula) *Problem {
	p := &Problem{NumVars: f.NumVars, Assign: NewAssignment(f.NumVars)}
	p.Clauses = make([]Clause, len(f.Clauses))
	for i, c := range f.Clauses {
		p.Clauses[i] = c.Clone()
	}
	return p
}

// Clone returns an independent deep copy.
func (p *Problem) Clone() *Problem {
	out := &Problem{NumVars: p.NumVars, Assign: p.Assign.Clone()}
	out.Clauses = make([]Clause, len(p.Clauses))
	for i, c := range p.Clauses {
		out.Clauses[i] = c.Clone()
	}
	return out
}

// Consistent reports whether every clause has been satisfied (the paper's
// consistent(problem) test): no clauses remain.
func (p *Problem) Consistent() bool { return len(p.Clauses) == 0 }

// HasEmptyClause reports whether some clause has had all its literals
// falsified, i.e. the partial assignment already contradicts the formula.
func (p *Problem) HasEmptyClause() bool {
	for _, c := range p.Clauses {
		if len(c) == 0 {
			return true
		}
	}
	return false
}

// WithAssignment returns a new problem with the literal made true: satisfied
// clauses are dropped and falsified literals removed from the rest. The
// receiver is not modified.
func (p *Problem) WithAssignment(l Lit) *Problem {
	out := &Problem{NumVars: p.NumVars, Assign: p.Assign.Clone()}
	out.Assign.Set(l)
	out.Clauses = make([]Clause, 0, len(p.Clauses))
	neg := l.Negate()
	for _, c := range p.Clauses {
		satisfied := false
		for _, cl := range c {
			if cl == l {
				satisfied = true
				break
			}
		}
		if satisfied {
			continue
		}
		nc := make(Clause, 0, len(c))
		for _, cl := range c {
			if cl != neg {
				nc = append(nc, cl)
			}
		}
		out.Clauses = append(out.Clauses, nc)
	}
	return out
}

// assignInPlace applies a literal to the problem destructively; used by
// Simplify which already owns its copy.
func (p *Problem) assignInPlace(l Lit) {
	p.Assign.Set(l)
	neg := l.Negate()
	kept := p.Clauses[:0]
	for _, c := range p.Clauses {
		satisfied := false
		for _, cl := range c {
			if cl == l {
				satisfied = true
				break
			}
		}
		if satisfied {
			continue
		}
		nc := c[:0]
		for _, cl := range c {
			if cl != neg {
				nc = append(nc, cl)
			}
		}
		kept = append(kept, nc)
	}
	p.Clauses = kept
}

// SimplifyStats reports what Simplify did.
type SimplifyStats struct {
	UnitPropagations int
	PureAssignments  int
}

// SimplifyMode selects how aggressively Simplify runs.
type SimplifyMode int

const (
	// OnePass performs a single scan of unit propagation followed by a
	// single snapshot-based scan of pure-literal assignment, matching the
	// literal reading of the paper's Listing 4 (lines 6-11: one `for`
	// loop over clauses, one over literals, per solver invocation). This
	// leaves more branching to the mesh — the behaviour the evaluation
	// measures.
	OnePass SimplifyMode = iota
	// Fixpoint repeats both rules until neither applies: stronger pruning,
	// smaller trees, less exposed parallelism. Used as an ablation.
	Fixpoint
)

func (m SimplifyMode) String() string {
	if m == Fixpoint {
		return "fixpoint"
	}
	return "onepass"
}

// Simplify applies unit propagation and pure-literal elimination to a copy
// of the problem until fixpoint. It stops early when an empty clause
// appears. (Sequential solving default; the distributed task defaults to
// the paper-faithful OnePass via SimplifyWith.)
func (p *Problem) Simplify() (*Problem, SimplifyStats) {
	return p.SimplifyWith(Fixpoint)
}

// SimplifyWith applies the selected simplification mode to a copy of the
// problem. Both modes are satisfiability-preserving: unit propagation is
// forced, and a snapshot-pure literal stays pure after other assignments
// only remove occurrences.
func (p *Problem) SimplifyWith(mode SimplifyMode) (*Problem, SimplifyStats) {
	out := p.Clone()
	var stats SimplifyStats
	if mode == Fixpoint {
		for {
			if out.HasEmptyClause() {
				return out, stats
			}
			if l, ok := out.findUnit(); ok {
				out.assignInPlace(l)
				stats.UnitPropagations++
				continue
			}
			if l, ok := out.findPure(); ok {
				out.assignInPlace(l)
				stats.PureAssignments++
				continue
			}
			return out, stats
		}
	}
	// OnePass: single forward scan for unit clauses (propagations may
	// expose further units only at later positions)...
	for i := 0; i < len(out.Clauses); {
		if out.HasEmptyClause() {
			return out, stats
		}
		if len(out.Clauses[i]) == 1 {
			out.assignInPlace(out.Clauses[i][0])
			stats.UnitPropagations++
			// assignInPlace compacts the clause list; re-examine index i.
			continue
		}
		i++
	}
	if out.HasEmptyClause() {
		return out, stats
	}
	// ...then a single pure-literal scan over a polarity snapshot.
	const (
		seenPos = 1
		seenNeg = 2
	)
	snapshot := make([]uint8, p.NumVars+1)
	for _, c := range out.Clauses {
		for _, l := range c {
			if l.Positive() {
				snapshot[l.Var()] |= seenPos
			} else {
				snapshot[l.Var()] |= seenNeg
			}
		}
	}
	for v := 1; v <= p.NumVars; v++ {
		switch snapshot[v] {
		case seenPos:
			out.assignInPlace(NewLit(v, true))
			stats.PureAssignments++
		case seenNeg:
			out.assignInPlace(NewLit(v, false))
			stats.PureAssignments++
		}
	}
	return out, stats
}

func (p *Problem) findUnit() (Lit, bool) {
	for _, c := range p.Clauses {
		if len(c) == 1 {
			return c[0], true
		}
	}
	return 0, false
}

func (p *Problem) findPure() (Lit, bool) {
	const (
		seenPos = 1
		seenNeg = 2
	)
	seen := make([]uint8, p.NumVars+1)
	for _, c := range p.Clauses {
		for _, l := range c {
			if l.Positive() {
				seen[l.Var()] |= seenPos
			} else {
				seen[l.Var()] |= seenNeg
			}
		}
	}
	for v := 1; v <= p.NumVars; v++ {
		switch seen[v] {
		case seenPos:
			return NewLit(v, true), true
		case seenNeg:
			return NewLit(v, false), true
		}
	}
	return 0, false
}

// FreeVars counts variables that appear in remaining clauses.
func (p *Problem) FreeVars() int {
	seen := make([]bool, p.NumVars+1)
	n := 0
	for _, c := range p.Clauses {
		for _, l := range c {
			if !seen[l.Var()] {
				seen[l.Var()] = true
				n++
			}
		}
	}
	return n
}
