package sat

import (
	"math/rand"
	"testing"

	"hypersolve/internal/mapping"
	"hypersolve/internal/mesh"
	"hypersolve/internal/recursion"
	"hypersolve/internal/sched"
)

// solveOnMesh runs the distributed Listing-4 task on a simulated machine
// and returns the root outcome.
func solveOnMesh(t *testing.T, f Formula, topo mesh.Topology, mapper mapping.Factory, h Heuristic) Outcome {
	t.Helper()
	net, err := mapping.New(mapping.Config{
		Physical: topo,
		Mapper:   mapper,
		Factory:  recursion.AppFactory(Task(h)),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Trigger(0, NewProblem(f)); err != nil {
		t.Fatal(err)
	}
	stats := net.Run()
	if !stats.Quiescent {
		t.Fatal("distributed solve did not quiesce")
	}
	v, ok := net.App(0).(*recursion.Runtime).RootResult()
	if !ok {
		t.Fatal("no root result")
	}
	return v.(Outcome)
}

func TestDistributedMatchesSequentialVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	topo := mesh.MustTorus(5, 5)
	for i := 0; i < 12; i++ {
		f := Random3SAT(rng, 10, 38+i)
		want := Solve(f, Options{}).Status
		got := solveOnMesh(t, f, topo, mapping.NewRoundRobin(), FirstUnassigned)
		if got.Status != want {
			t.Errorf("instance %d: distributed %v != sequential %v", i, got.Status, want)
		}
		if got.Status == SAT && !Verify(f, got.Assignment) {
			t.Errorf("instance %d: distributed assignment does not verify", i)
		}
	}
}

func TestDistributedAcrossTopologiesAndMappers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := Random3SAT(rng, 12, 50)
	want := Solve(f, Options{}).Status
	topos := []mesh.Topology{
		mesh.MustTorus(4, 4),
		mesh.MustTorus(3, 3, 3),
		mesh.MustHypercube(4),
		mesh.MustFullyConnected(16),
		mesh.MustGrid(4, 4),
	}
	mappers := map[string]mapping.Factory{
		"rr":       mapping.NewRoundRobin(),
		"lbn":      mapping.NewLeastBusy(),
		"random":   mapping.NewRandom(),
		"weighted": mapping.NewWeighted(1),
	}
	for _, topo := range topos {
		for name, mf := range mappers {
			got := solveOnMesh(t, f, topo, mf, FirstUnassigned)
			if got.Status != want {
				t.Errorf("%s/%s: %v, want %v", topo.Name(), name, got.Status, want)
			}
			if got.Status == SAT && !Verify(f, got.Assignment) {
				t.Errorf("%s/%s: assignment does not verify", topo.Name(), name)
			}
		}
	}
}

func TestDistributedUNSATInstance(t *testing.T) {
	// Pigeonhole-ish: 2 pigeons 1 hole — x1, x2, and mutual exclusion is
	// too small; use a direct contradiction over 3 vars instead.
	f := Formula{NumVars: 3, Clauses: []Clause{
		{1, 2}, {1, -2}, {-1, 3}, {-1, -3},
	}}
	if SolveBruteForce(f).Status != UNSAT {
		t.Fatal("test formula should be UNSAT")
	}
	got := solveOnMesh(t, f, mesh.MustTorus(4, 4), mapping.NewLeastBusy(), FirstUnassigned)
	if got.Status != UNSAT {
		t.Errorf("distributed = %v, want UNSAT", got.Status)
	}
}

func TestDistributedUF20Instance(t *testing.T) {
	if testing.Short() {
		t.Skip("uf20 on mesh is slow in -short mode")
	}
	suite, err := GenerateSuite(SuiteParams{Count: 1, NumVars: 20, NumClauses: 91, Seed: 4, RequireSAT: true})
	if err != nil {
		t.Fatal(err)
	}
	got := solveOnMesh(t, suite[0], mesh.MustTorus(14, 14), mapping.NewLeastBusy(), FirstUnassigned)
	if got.Status != SAT {
		t.Fatalf("uf20 instance: %v, want SAT", got.Status)
	}
	if !Verify(suite[0], got.Assignment) {
		t.Error("assignment does not verify")
	}
}

func TestDistributedHeuristicsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	f := Random3SAT(rng, 10, 42)
	want := SolveBruteForce(f).Status
	for _, h := range []Heuristic{FirstUnassigned, MostFrequent, JeroslowWang, DLIS} {
		got := solveOnMesh(t, f, mesh.MustTorus(4, 4), mapping.NewRoundRobin(), h)
		if got.Status != want {
			t.Errorf("heuristic %v: %v, want %v", h, got.Status, want)
		}
	}
}

func TestTaskRejectsBadArgument(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bad argument")
		}
	}()
	task := Task(FirstUnassigned)
	task(nil, "not a problem")
}

func TestDistributedWorkSpreads(t *testing.T) {
	// The DPLL tree of a 20-var instance must engage many nodes.
	suite, err := GenerateSuite(SuiteParams{Count: 1, NumVars: 16, NumClauses: 70, Seed: 8, RequireSAT: true})
	if err != nil {
		t.Fatal(err)
	}
	net, err := mapping.New(mapping.Config{
		Physical: mesh.MustTorus(6, 6),
		Mapper:   mapping.NewRoundRobin(),
		Factory:  recursion.AppFactory(Task(FirstUnassigned)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Trigger(0, NewProblem(suite[0])); err != nil {
		t.Fatal(err)
	}
	if stats := net.Run(); !stats.Quiescent {
		t.Fatal("did not quiesce")
	}
	busy := 0
	for pid := 0; pid < net.Virtual().Size(); pid++ {
		if net.App(sched.PID(pid)).(*recursion.Runtime).FramesStarted() > 0 {
			busy++
		}
	}
	if busy < 12 {
		t.Errorf("only %d/36 nodes engaged", busy)
	}
}
