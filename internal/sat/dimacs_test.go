package sat

import (
	"strings"
	"testing"
)

// TestDIMACSSATLIBQuirks pins the parser's tolerance for the formatting of
// real SATLIB benchmark files: the "%\n0\n" end-of-file trailer, a final
// clause missing its terminating 0, and the hard error on a clause count
// that disagrees with the problem line.
func TestDIMACSSATLIBQuirks(t *testing.T) {
	t.Run("satlib trailer", func(t *testing.T) {
		// The exact shape of a SATLIB uf files' tail: declared clause
		// count, the clauses, then a lone '%' line and a lone '0' line.
		// Before the '%'-terminates-input rule, the trailing 0 was parsed
		// as an empty clause and the file was rejected for a clause-count
		// mismatch.
		src := "c uf3-3 style\np cnf 3 3\n1 -2 0\n-1 3 0\n2 -3 0\n%\n0\n"
		f, err := ParseDIMACS(strings.NewReader(src))
		if err != nil {
			t.Fatalf("SATLIB trailer rejected: %v", err)
		}
		if f.NumVars != 3 || len(f.Clauses) != 3 {
			t.Fatalf("parsed %d vars %d clauses, want 3 and 3", f.NumVars, len(f.Clauses))
		}
		// Everything after the marker is padding, even if it looks like CNF.
		src2 := "p cnf 2 1\n1 2 0\n%\n0\n-1 -2 0\n"
		f2, err := ParseDIMACS(strings.NewReader(src2))
		if err != nil {
			t.Fatal(err)
		}
		if len(f2.Clauses) != 1 {
			t.Fatalf("clauses after the %% marker were parsed: %v", f2.Clauses)
		}
	})

	t.Run("unterminated final clause", func(t *testing.T) {
		src := "p cnf 3 2\n1 -2 0\n2 3"
		f, err := ParseDIMACS(strings.NewReader(src))
		if err != nil {
			t.Fatalf("unterminated final clause rejected: %v", err)
		}
		if len(f.Clauses) != 2 || len(f.Clauses[1]) != 2 {
			t.Fatalf("final clause parsed as %v", f.Clauses)
		}
		if f.Clauses[1][0] != 2 || f.Clauses[1][1] != 3 {
			t.Fatalf("final clause literals = %v, want [2 3]", f.Clauses[1])
		}
	})

	t.Run("clause count mismatch", func(t *testing.T) {
		for _, src := range []string{
			"p cnf 3 3\n1 -2 0\n2 3 0\n",       // fewer than declared
			"p cnf 3 1\n1 -2 0\n2 3 0\n",       // more than declared
			"p cnf 3 3\n1 -2 0\n2 3 0\n%\n0\n", // trailer doesn't pad a short file
			"p cnf 3 1\n1 -2 0\n2 3",           // unterminated clause still counts
		} {
			if _, err := ParseDIMACS(strings.NewReader(src)); err == nil ||
				!strings.Contains(err.Error(), "clauses") {
				t.Errorf("ParseDIMACS(%q) = %v, want clause-count error", src, err)
			}
		}
	})
}
