package sat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLitBasics(t *testing.T) {
	l := NewLit(5, true)
	if l.Var() != 5 || !l.Positive() {
		t.Errorf("NewLit(5,true) = %v", l)
	}
	n := l.Negate()
	if n.Var() != 5 || n.Positive() {
		t.Errorf("Negate = %v", n)
	}
	if n.Negate() != l {
		t.Error("double negation is not identity")
	}
	if l.String() != "5" || n.String() != "-5" {
		t.Errorf("String: %q %q", l.String(), n.String())
	}
}

func TestAssignmentOps(t *testing.T) {
	a := NewAssignment(4)
	a.Set(NewLit(2, true))
	a.Set(NewLit(3, false))
	if a.Value(2) != 1 || a.Value(3) != -1 || a.Value(1) != 0 {
		t.Errorf("values: %v", a)
	}
	if !a.Satisfies(NewLit(2, true)) || a.Satisfies(NewLit(2, false)) {
		t.Error("Satisfies wrong for var 2")
	}
	if !a.Falsifies(NewLit(3, true)) || a.Falsifies(NewLit(1, true)) {
		t.Error("Falsifies wrong")
	}
	if a.Assigned() != 2 {
		t.Errorf("Assigned = %d, want 2", a.Assigned())
	}
	b := a.Clone()
	b.Set(NewLit(1, true))
	if a.Value(1) != 0 {
		t.Error("Clone aliases the original")
	}
}

func TestVerify(t *testing.T) {
	// (x1 | !x2) & (x2 | x3)
	f := Formula{NumVars: 3, Clauses: []Clause{{1, -2}, {2, 3}}}
	a := NewAssignment(3)
	a.Set(NewLit(1, true))
	a.Set(NewLit(2, false))
	a.Set(NewLit(3, true))
	if !Verify(f, a) {
		t.Error("satisfying assignment rejected")
	}
	b := NewAssignment(3)
	b.Set(NewLit(1, false))
	b.Set(NewLit(2, false))
	b.Set(NewLit(3, false))
	if Verify(f, b) {
		t.Error("falsifying assignment accepted")
	}
	// Unassigned variables default to false: x2 unassigned falsifies x2|x3
	// unless x3 true.
	c := NewAssignment(3)
	c.Set(NewLit(1, true))
	if Verify(f, c) {
		t.Error("incomplete assignment should not verify here")
	}
}

func TestFormulaValidate(t *testing.T) {
	good := Formula{NumVars: 2, Clauses: []Clause{{1, -2}}}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	for _, bad := range []Formula{
		{NumVars: -1},
		{NumVars: 1, Clauses: []Clause{{0}}},
		{NumVars: 1, Clauses: []Clause{{2}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%v): expected error", bad)
		}
	}
}

func TestWithAssignment(t *testing.T) {
	// (x1 | x2) & (!x1 | x3) & (x2)
	p := NewProblem(Formula{NumVars: 3, Clauses: []Clause{{1, 2}, {-1, 3}, {2}}})
	q := p.WithAssignment(NewLit(1, true))
	// Clause 1 satisfied and dropped; clause 2 loses !x1; clause 3 intact.
	if len(q.Clauses) != 2 {
		t.Fatalf("clauses after assignment: %v", q.Clauses)
	}
	if len(q.Clauses[0]) != 1 || q.Clauses[0][0] != 3 {
		t.Errorf("clause 2 should reduce to {3}: %v", q.Clauses[0])
	}
	// Original untouched.
	if len(p.Clauses) != 3 || len(p.Clauses[1]) != 2 {
		t.Error("WithAssignment mutated the receiver")
	}
}

func TestSimplifyUnitPropagation(t *testing.T) {
	// (x1) & (!x1 | x2) & (!x2 | x3) — chains to all true.
	p := NewProblem(Formula{NumVars: 3, Clauses: []Clause{{1}, {-1, 2}, {-2, 3}}})
	s, stats := p.Simplify()
	if !s.Consistent() {
		t.Fatalf("expected full simplification, clauses: %v", s.Clauses)
	}
	if stats.UnitPropagations < 3 {
		t.Errorf("UnitPropagations = %d, want >= 3", stats.UnitPropagations)
	}
	for v := 1; v <= 3; v++ {
		if s.Assign.Value(v) != 1 {
			t.Errorf("var %d = %d, want 1", v, s.Assign.Value(v))
		}
	}
}

func TestSimplifyPureLiteral(t *testing.T) {
	// x1 occurs only positively; x2 both; x3 only negatively.
	p := NewProblem(Formula{NumVars: 3, Clauses: []Clause{{1, 2}, {1, -2}, {-3, 2}}})
	s, stats := p.Simplify()
	if stats.PureAssignments == 0 {
		t.Error("expected pure literal assignments")
	}
	if !s.Consistent() {
		t.Errorf("expected consistency, clauses: %v", s.Clauses)
	}
	if s.Assign.Value(1) != 1 {
		t.Errorf("pure x1 should be true, got %d", s.Assign.Value(1))
	}
}

func TestSimplifyDetectsConflict(t *testing.T) {
	// (x1) & (!x1) — unit propagation exposes the empty clause.
	p := NewProblem(Formula{NumVars: 1, Clauses: []Clause{{1}, {-1}}})
	s, _ := p.Simplify()
	if !s.HasEmptyClause() {
		t.Error("conflict not detected")
	}
}

func TestSimplifyPreservesSatisfiability(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		f := Random3SAT(rng, 8, 30)
		want := SolveBruteForce(f).Status
		s, _ := NewProblem(f).Simplify()
		// Re-solve the simplified residual plus accumulated assignment.
		if s.HasEmptyClause() {
			if want != UNSAT {
				t.Fatalf("case %d: simplify claims conflict but formula is %v", i, want)
			}
			continue
		}
		residual := Formula{NumVars: f.NumVars, Clauses: s.Clauses}
		got := SolveBruteForce(residual).Status
		if got != want {
			t.Fatalf("case %d: simplified status %v != original %v", i, got, want)
		}
	}
}

func TestFreeVars(t *testing.T) {
	p := NewProblem(Formula{NumVars: 5, Clauses: []Clause{{1, -2}, {2, 3}}})
	if got := p.FreeVars(); got != 3 {
		t.Errorf("FreeVars = %d, want 3", got)
	}
}

func TestHeuristicsPickValidLiterals(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		f := Random3SAT(rng, 10, 30)
		p, _ := NewProblem(f).Simplify()
		if p.Consistent() || p.HasEmptyClause() {
			continue
		}
		for _, h := range []Heuristic{FirstUnassigned, MostFrequent, JeroslowWang, DLIS} {
			l := SelectLiteral(p, h)
			found := false
			for _, c := range p.Clauses {
				for _, cl := range c {
					if cl.Var() == l.Var() {
						found = true
					}
				}
			}
			if !found {
				t.Errorf("heuristic %v picked literal %v not present in any clause", h, l)
			}
		}
	}
}

func TestHeuristicParse(t *testing.T) {
	for _, s := range []string{"first", "freq", "jw", "dlis"} {
		h, err := ParseHeuristic(s)
		if err != nil {
			t.Errorf("ParseHeuristic(%q): %v", s, err)
		}
		if h.String() != s {
			t.Errorf("round trip %q -> %q", s, h.String())
		}
	}
	if _, err := ParseHeuristic("nope"); err == nil {
		t.Error("expected parse error")
	}
}

func TestSolveKnownFormulas(t *testing.T) {
	cases := []struct {
		name string
		f    Formula
		want Status
	}{
		{"empty", Formula{NumVars: 0}, SAT},
		{"single", Formula{NumVars: 1, Clauses: []Clause{{1}}}, SAT},
		{"contradiction", Formula{NumVars: 1, Clauses: []Clause{{1}, {-1}}}, UNSAT},
		{"xor-chain", Formula{NumVars: 2, Clauses: []Clause{{1, 2}, {-1, -2}, {1, -2}, {-1, 2}}}, UNSAT},
		{"3sat-sat", Formula{NumVars: 3, Clauses: []Clause{{1, 2, 3}, {-1, -2, -3}, {1, -2, 3}}}, SAT},
	}
	for _, c := range cases {
		res := Solve(c.f, Options{})
		if res.Status != c.want {
			t.Errorf("%s: Solve = %v, want %v", c.name, res.Status, c.want)
		}
		if res.Status == SAT && !Verify(c.f, res.Assignment) {
			t.Errorf("%s: returned assignment does not verify", c.name)
		}
	}
}

func TestPropertyDPLLMatchesBruteForce(t *testing.T) {
	f := func(seed int64, clausesRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		numClauses := 10 + int(clausesRaw%35)
		formula := Random3SAT(rng, 8, numClauses)
		want := SolveBruteForce(formula).Status
		for _, h := range []Heuristic{FirstUnassigned, MostFrequent, JeroslowWang, DLIS} {
			res := Solve(formula, Options{Heuristic: h})
			if res.Status != want {
				return false
			}
			if res.Status == SAT && !Verify(formula, res.Assignment) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSolveMaxCallsGivesUnknown(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := Random3SAT(rng, 20, 91)
	res := Solve(f, Options{MaxCalls: 1})
	if res.Status == SAT || res.Status == UNSAT {
		// With a single call some trivial formulas could still resolve;
		// this particular seed should not.
		t.Errorf("expected Unknown with MaxCalls=1, got %v", res.Status)
	}
}

func TestGeneratorClauseShape(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := Random3SAT(rng, 20, 91)
	if len(f.Clauses) != 91 || f.NumVars != 20 {
		t.Fatalf("shape: %d vars %d clauses", f.NumVars, len(f.Clauses))
	}
	for i, c := range f.Clauses {
		if len(c) != 3 {
			t.Fatalf("clause %d has %d literals", i, len(c))
		}
		vars := map[int]bool{}
		for _, l := range c {
			if vars[l.Var()] {
				t.Fatalf("clause %d repeats variable %d (duplicate or tautology)", i, l.Var())
			}
			vars[l.Var()] = true
		}
	}
}

func TestPropertyGeneratorConstraints(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		formula := Random3SAT(rng, 12, 40)
		if err := formula.Validate(); err != nil {
			return false
		}
		for _, c := range formula.Clauses {
			if len(c) != 3 {
				return false
			}
			seen := map[int]bool{}
			for _, l := range c {
				if seen[l.Var()] {
					return false
				}
				seen[l.Var()] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := Random3SAT(rand.New(rand.NewSource(77)), 20, 91)
	b := Random3SAT(rand.New(rand.NewSource(77)), 20, 91)
	for i := range a.Clauses {
		for j := range a.Clauses[i] {
			if a.Clauses[i][j] != b.Clauses[i][j] {
				t.Fatal("generator not deterministic per seed")
			}
		}
	}
}

func TestGenerateSuiteAllSatisfiable(t *testing.T) {
	suite, err := GenerateSuite(UF20Params(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 20 {
		t.Fatalf("suite size %d, want 20", len(suite))
	}
	for i, f := range suite {
		if f.NumVars != 20 || len(f.Clauses) != 91 {
			t.Errorf("instance %d has wrong shape", i)
		}
		res := Solve(f, Options{Heuristic: JeroslowWang})
		if res.Status != SAT {
			t.Errorf("instance %d not satisfiable", i)
		}
	}
}

func TestGenerateSuiteErrors(t *testing.T) {
	if _, err := GenerateSuite(SuiteParams{Count: 0}); err == nil {
		t.Error("expected error for zero count")
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := Random3SAT(rng, 20, 91)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, f); err != nil {
		t.Fatal(err)
	}
	g, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVars != f.NumVars || len(g.Clauses) != len(f.Clauses) {
		t.Fatalf("round trip shape mismatch")
	}
	for i := range f.Clauses {
		for j := range f.Clauses[i] {
			if f.Clauses[i][j] != g.Clauses[i][j] {
				t.Fatalf("clause %d literal %d mismatch", i, j)
			}
		}
	}
}

func TestDIMACSParseVariants(t *testing.T) {
	src := `c a comment
p cnf 3 2
1 -2 0
2 3 0
% SATLIB end-of-file marker
0
`
	f, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 3 || len(f.Clauses) != 2 {
		t.Fatalf("parsed %d vars %d clauses", f.NumVars, len(f.Clauses))
	}
	// Multi-line clause and missing trailing zero.
	src2 := "p cnf 4 2\n1 2\n3 0\n-4 1 0"
	f2, err := ParseDIMACS(strings.NewReader(src2))
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Clauses) != 2 || len(f2.Clauses[0]) != 3 {
		t.Fatalf("multi-line clause parsed wrong: %v", f2.Clauses)
	}
}

func TestDIMACSParseErrors(t *testing.T) {
	cases := []string{
		"",                               // no problem line
		"1 2 0",                          // clause before problem line
		"p cnf x 2\n1 0",                 // bad var count
		"p cnf 2 x\n1 0",                 // bad clause count
		"p dnf 2 2\n1 0",                 // wrong format token
		"p cnf 2 1\n1 zz 0",              // bad literal
		"p cnf 2 1\n3 0",                 // out of range literal
		"p cnf 2 2\n1 0",                 // clause count mismatch
		"p cnf 2 1\n1 0\np cnf 2 1\n1 0", // duplicate problem line
	}
	for _, src := range cases {
		if _, err := ParseDIMACS(strings.NewReader(src)); err == nil {
			t.Errorf("ParseDIMACS(%q): expected error", src)
		}
	}
}

func TestStatusString(t *testing.T) {
	if SAT.String() != "SAT" || UNSAT.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Error("status names wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	f := Formula{NumVars: 2, Clauses: []Clause{{1, 2}}}
	g := f.Clone()
	g.Clauses[0][0] = -1
	if f.Clauses[0][0] != 1 {
		t.Error("Formula.Clone aliases clause storage")
	}
	p := NewProblem(f)
	q := p.Clone()
	q.Clauses[0][0] = -2
	q.Assign.Set(NewLit(1, true))
	if p.Clauses[0][0] != 1 || p.Assign.Value(1) != 0 {
		t.Error("Problem.Clone aliases storage")
	}
}

func TestOutcomeIsSAT(t *testing.T) {
	if !IsSAT(Outcome{Status: SAT}) {
		t.Error("SAT outcome rejected")
	}
	if IsSAT(Outcome{Status: UNSAT}) || IsSAT("nonsense") || IsSAT(nil) {
		t.Error("non-SAT accepted")
	}
}
