package sat

import (
	"fmt"
	"math/rand"
)

// Random3SAT draws a uniform random 3-SAT formula: each clause picks three
// distinct variables uniformly at random and negates each independently
// with probability 1/2. Clauses are neither tautological nor contain
// duplicate literals, matching the SATLIB "uf" generation procedure.
func Random3SAT(rng *rand.Rand, numVars, numClauses int) Formula {
	if numVars < 3 {
		panic("sat: Random3SAT needs at least 3 variables")
	}
	f := Formula{NumVars: numVars, Clauses: make([]Clause, 0, numClauses)}
	for i := 0; i < numClauses; i++ {
		vars := pickDistinct(rng, numVars, 3)
		c := make(Clause, 3)
		for j, v := range vars {
			c[j] = NewLit(v, rng.Intn(2) == 0)
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// pickDistinct samples k distinct variables from [1, n] via partial
// Fisher-Yates on a small reused index trick (n is small here; a simple
// rejection loop is clearer and allocation-free for k=3).
func pickDistinct(rng *rand.Rand, n, k int) [3]int {
	var out [3]int
	for i := 0; i < k; {
		v := rng.Intn(n) + 1
		dup := false
		for j := 0; j < i; j++ {
			if out[j] == v {
				dup = true
				break
			}
		}
		if !dup {
			out[i] = v
			i++
		}
	}
	return out
}

// SuiteParams configures a benchmark suite in the image of SATLIB uf20-91:
// uniform random 3-SAT, 20 variables, 91 clauses (clause/variable ratio
// 4.55, near the phase transition), satisfiable instances only.
type SuiteParams struct {
	Count      int
	NumVars    int
	NumClauses int
	Seed       int64
	// RequireSAT filters instances through the sequential solver and keeps
	// only satisfiable ones, as the paper's benchmark set ("all
	// satisfiable") requires.
	RequireSAT bool
}

// UF20Params returns the paper's benchmark configuration: 20 satisfiable
// uniform random 3-SAT instances with 20 variables and 91 clauses each.
func UF20Params(seed int64) SuiteParams {
	return SuiteParams{Count: 20, NumVars: 20, NumClauses: 91, Seed: seed, RequireSAT: true}
}

// GenerateSuite builds a deterministic benchmark suite. With RequireSAT it
// rejection-samples until Count satisfiable instances are found (at ratio
// 4.55 roughly half of random instances are satisfiable, so this
// terminates quickly).
func GenerateSuite(p SuiteParams) ([]Formula, error) {
	if p.Count <= 0 {
		return nil, fmt.Errorf("sat: suite count %d <= 0", p.Count)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	suite := make([]Formula, 0, p.Count)
	attempts := 0
	for len(suite) < p.Count {
		attempts++
		if attempts > 1000*p.Count {
			return nil, fmt.Errorf("sat: gave up after %d attempts generating satisfiable instances", attempts)
		}
		f := Random3SAT(rng, p.NumVars, p.NumClauses)
		if p.RequireSAT {
			if res := Solve(f, Options{Heuristic: MostFrequent}); res.Status != SAT {
				continue
			}
		}
		suite = append(suite, f)
	}
	return suite, nil
}
