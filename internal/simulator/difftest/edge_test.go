package difftest

import (
	"context"
	"reflect"
	"testing"

	"hypersolve/internal/mesh"
	"hypersolve/internal/simulator"
)

// emptyTopo is a zero-slot machine: no nodes, no links. The sweep loop
// never exercised this (its per-step slot loops all run zero iterations);
// the event engine must agree that such a machine executes exactly one
// quiescent step.
type emptyTopo struct{}

func (emptyTopo) Name() string                        { return "empty" }
func (emptyTopo) Size() int                           { return 0 }
func (emptyTopo) Degree(mesh.NodeID) int              { return 0 }
func (emptyTopo) Neighbours(mesh.NodeID) []mesh.NodeID { return nil }
func (emptyTopo) Coords(mesh.NodeID) []int            { return nil }
func (emptyTopo) Dims() []int                         { return []int{0} }
func (emptyTopo) Distance(a, b mesh.NodeID) int       { return 0 }

func bothEngines(t *testing.T, run func(t *testing.T, eng simulator.Engine) simulator.Stats) {
	t.Helper()
	sweep := run(t, simulator.EngineSweep)
	event := run(t, simulator.EngineEvent)
	if !reflect.DeepEqual(sweep, event) {
		t.Fatalf("engines diverge:\n sweep: %+v\n event: %+v", sweep, event)
	}
}

// TestZeroSlotMachine runs a machine with no nodes at all.
func TestZeroSlotMachine(t *testing.T) {
	run := func(t *testing.T, eng simulator.Engine) simulator.Stats {
		sim, err := simulator.New(simulator.Config{
			Topology: emptyTopo{},
			Factory:  func(mesh.NodeID) simulator.Handler { panic("no slots to build") },
			Engine:   eng,
		})
		if err != nil {
			t.Fatalf("New(%s): %v", eng, err)
		}
		return sim.Run()
	}
	bothEngines(t, run)
	stats := run(t, simulator.EngineEvent)
	if !stats.Quiescent || stats.Steps != 1 {
		t.Fatalf("zero-slot machine: stats %+v, want one quiescent step", stats)
	}
}

// TestMaxStepsZero checks that an unset horizon selects the documented 4M
// default identically on both engines (the run quiesces long before it).
func TestMaxStepsZero(t *testing.T) {
	c := Case{Topo: "ring:5", Workload: "chain", Param: 8, LinkLatency: 3,
		DeliverPerStep: 1, MaxSteps: 0, RecordSeries: true}
	assertIdentical(t, c)
	res := runEngine(t, c, simulator.EngineEvent)
	if !res.stats.Quiescent {
		t.Fatalf("stats %+v, want quiescent under the default horizon", res.stats)
	}
}

// TestMessageDueExactlyAtMaxSteps pins the off-by-one at the horizon: a
// message whose arrival step equals MaxSteps is never delivered (steps are
// 0-based, the horizon exclusive), while arrival at MaxSteps-1 is. Both
// engines must agree on both sides of the boundary.
func TestMessageDueExactlyAtMaxSteps(t *testing.T) {
	const lat = 50
	run := func(maxSteps int64) func(t *testing.T, eng simulator.Engine) simulator.Stats {
		return func(t *testing.T, eng simulator.Engine) simulator.Stats {
			tr := &trace{}
			sim, err := simulator.New(simulator.Config{
				Topology: mesh.MustRing(3),
				Factory: func(n mesh.NodeID) simulator.Handler {
					return &chainHandler{tr: tr, node: n, hops: 0}
				},
				Engine:      eng,
				LinkLatency: lat,
				MaxSteps:    maxSteps,
			})
			if err != nil {
				t.Fatalf("New(%s): %v", eng, err)
			}
			return sim.Run()
		}
	}

	// The chain's Init send flushes at step 0 and arrives at step lat.
	t.Run("due-at-horizon", func(t *testing.T) {
		bothEngines(t, run(lat))
		stats := run(lat)(t, simulator.EngineEvent)
		if stats.Quiescent || stats.TotalDelivered != 0 || stats.Steps != lat {
			t.Fatalf("stats %+v, want undelivered truncation at step %d", stats, lat)
		}
	})
	t.Run("due-inside-horizon", func(t *testing.T) {
		bothEngines(t, run(lat+1))
		stats := run(lat + 1)(t, simulator.EngineEvent)
		if !stats.Quiescent || stats.TotalDelivered != 1 || stats.FirstDelivery != lat {
			t.Fatalf("stats %+v, want one delivery at step %d", stats, lat)
		}
	})
}

// TestCancellationInEmptyGap cancels the run from an observer callback in
// the middle of a long idle gap — a stretch of steps where the event
// engine's queue holds nothing to do. Both engines must stop at the same
// subsequent cancel-slice boundary with identical stats.
func TestCancellationInEmptyGap(t *testing.T) {
	const cancelAt = 1500 // inside the first latency gap, past poll 1024
	run := func(t *testing.T, eng simulator.Engine) simulator.Stats {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		obs := &cancellingObserver{cancelAt: cancelAt, cancel: cancel, inner: &recordingObserver{}}
		tr := &trace{}
		sim, err := simulator.New(simulator.Config{
			Topology: mesh.MustRing(4),
			Factory: func(n mesh.NodeID) simulator.Handler {
				return &chainHandler{tr: tr, node: n, hops: 20}
			},
			Engine:      eng,
			LinkLatency: 5000, // every hop opens a ~5000-step empty gap
			MaxSteps:    1 << 20,
			Observer:    obs,
		})
		if err != nil {
			t.Fatalf("New(%s): %v", eng, err)
		}
		stats := sim.RunContext(ctx)
		if !stats.Interrupted || stats.Quiescent {
			t.Fatalf("stats %+v, want interrupted", stats)
		}
		if stats.Steps%simulator.CancelSliceSteps != 0 || stats.Steps <= cancelAt {
			t.Fatalf("stopped at step %d, want the first slice boundary after %d", stats.Steps, cancelAt)
		}
		if last := obs.inner.entries[len(obs.inner.entries)-1]; last.Step != stats.Steps-1 {
			t.Fatalf("last observer callback at step %d, want %d", last.Step, stats.Steps-1)
		}
		return stats
	}
	bothEngines(t, run)
}

// TestCancellationBeforeStart runs with an already-cancelled context: both
// engines observe it at the step-0 poll, before any work — including on a
// machine whose event queue is empty from the start.
func TestCancellationBeforeStart(t *testing.T) {
	for _, workload := range []string{"silent", "chain"} {
		run := func(t *testing.T, eng simulator.Engine) simulator.Stats {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			tr := &trace{}
			c := Case{Workload: workload, Param: 5}
			sim, err := simulator.New(simulator.Config{
				Topology: mesh.MustRing(4),
				Factory:  factory(c, tr),
				Engine:   eng,
			})
			if err != nil {
				t.Fatalf("New(%s): %v", eng, err)
			}
			stats := sim.RunContext(ctx)
			if !stats.Interrupted || stats.Steps != 0 {
				t.Fatalf("%s: stats %+v, want interruption at step 0", workload, stats)
			}
			return stats
		}
		bothEngines(t, run)
	}
}

// TestObserverOnSilentMachine attaches an observer to a machine where no
// handler ever sends and nothing is injected: there are no subscribers for
// the observer to watch, yet it must still see the single quiescent step.
func TestObserverOnSilentMachine(t *testing.T) {
	run := func(t *testing.T, eng simulator.Engine) simulator.Stats {
		obs := &recordingObserver{}
		tr := &trace{}
		sim, err := simulator.New(simulator.Config{
			Topology: mesh.MustStar(6),
			Factory:  factory(Case{Workload: "silent"}, tr),
			Engine:   eng,
			Observer: obs,
		})
		if err != nil {
			t.Fatalf("New(%s): %v", eng, err)
		}
		stats := sim.Run()
		want := []obsEntry{{Step: 0, Queued: 0}}
		if !reflect.DeepEqual(obs.entries, want) {
			t.Fatalf("observer saw %+v, want exactly %+v", obs.entries, want)
		}
		if !stats.Quiescent || stats.Steps != 1 {
			t.Fatalf("stats %+v, want one quiescent step", stats)
		}
		return stats
	}
	bothEngines(t, run)
}
