package difftest

import (
	"testing"

	"hypersolve/internal/simulator"
)

// decodeCase maps an arbitrary fuzz payload onto a bounded Case. Every
// byte sequence decodes to a valid configuration (fuzzing explores the
// config space, not the parser), and the mapping is total and
// deterministic so crashers replay exactly.
func decodeCase(data []byte) Case {
	at := func(i int) byte {
		if i < len(data) {
			return data[i]
		}
		return 0
	}
	topos := []string{
		"ring:3", "ring:6", "ring:11", "full:4", "full:7", "star:5",
		"hypercube:2", "hypercube:3", "torus:3x3", "torus:4x4", "grid:3x4", "grid:2x6",
	}
	workloads := []string{"flood", "chain", "burst", "demand", "silent"}
	latencies := []int64{1, 2, 3, 5, 9, 17, 63, 200}
	maxSteps := []int64{1, 2, 7, 64, 300, 1024, 2048, 4096}
	c := Case{
		Topo:            topos[int(at(0))%len(topos)],
		Workload:        workloads[int(at(1))%len(workloads)],
		Param:           1 + int(at(2))%4,
		DeliverPerStep:  1 + int(at(3))%3,
		LinkLatency:     latencies[int(at(4))%len(latencies)],
		MaxSteps:        maxSteps[int(at(5))%len(maxSteps)],
		Seed:            int64(at(6)) | int64(at(7))<<8,
		Injections:      int(at(8)) % 6,
		RetransmitAfter: int64(1 + at(9)%12),
		RecordSeries:    at(10)%2 == 0,
		Observe:         at(10)%4 < 2,
	}
	if at(11)%2 == 1 {
		c.QueueModel = simulator.LinkQueues
	}
	if at(12)%3 == 0 {
		c.QueueCap = 1 + int(at(12))%4
	}
	if at(13)%3 == 0 {
		c.LossRate = float64(1+at(13)%8) / 16
		// Keep the retransmit timeout past the ack round trip (see
		// randomCase) and the horizon short enough that worst-case
		// backpressure thrash stays cheap per fuzz iteration.
		c.RetransmitAfter = 2*c.LinkLatency + 1 + int64(at(9)%8)
		if c.MaxSteps > 1024 {
			c.MaxSteps = 1024
		}
		if c.LinkLatency > 17 {
			c.LinkLatency = 17
		}
	}
	if c.Workload == "flood" && c.Param > 3 {
		c.Param = 3
	}
	return c
}

// FuzzEngineEquivalence feeds arbitrary byte strings through decodeCase and
// requires the sweep and event engines to stay bit-identical on the result.
// The seed corpus in testdata/fuzz covers each workload, both queue models,
// loss+reliability and a horizon truncation; CI runs a short -fuzztime
// smoke on top of the checked-in corpus.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add([]byte{0, 0, 2, 0, 1, 4, 42, 0, 0, 3, 0, 0, 1, 1})           // flood, node queues
	f.Add([]byte{3, 1, 3, 1, 5, 5, 7, 1, 2, 4, 1, 1, 0, 0})            // chain, link queues, capped, lossy
	f.Add([]byte{8, 2, 1, 0, 2, 4, 0, 0, 0, 2, 2, 0, 1, 1})            // burst on a torus
	f.Add([]byte{6, 3, 2, 2, 0, 6, 9, 9, 5, 1, 0, 1, 0, 3})            // demand ticker, link queues
	f.Add([]byte{1, 4, 1, 0, 7, 0, 0, 0, 4, 1, 1, 0, 3, 0})            // silent + injections, MaxSteps=1
	f.Add([]byte{11, 1, 4, 1, 6, 2, 250, 3, 1, 11, 0, 1, 0, 0})        // chain truncated at a tiny horizon
	f.Fuzz(func(t *testing.T, data []byte) {
		assertIdentical(t, decodeCase(data))
	})
}
