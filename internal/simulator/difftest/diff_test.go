package difftest

import (
	"math/rand"
	"reflect"
	"testing"

	"hypersolve/internal/simulator"
)

// TestDifferentialMatrix is the main equivalence proof: 200 seeded random
// configurations across every dimension of the machine (topology family,
// workload shape, queue model, bandwidth, latency, capacity backpressure,
// loss + reliability, horizon, seed), each built twice and required to be
// bit-identical across engines — Stats, delivery trace and observer
// sequence. The matrix is fully deterministic: case i is drawn from seed
// 7919*i+3, so a failure reproduces by number.
func TestDifferentialMatrix(t *testing.T) {
	for i := 0; i < 200; i++ {
		c := randomCase(rand.New(rand.NewSource(int64(i)*7919 + 3)))
		t.Run(c.String(), func(t *testing.T) {
			t.Parallel()
			assertIdentical(t, c)
		})
	}
}

// TestQueuedSeriesGapFill pins the event engine's per-step series contract
// on a bursty workload: even though the engine skips idle steps, the
// recorded QueuedSeries must contain exactly one entry per simulated step —
// idle gaps filled with the unchanged in-flight count — matching the sweep
// in both length and values.
func TestQueuedSeriesGapFill(t *testing.T) {
	for _, c := range []Case{
		// Bursty: periodic bursts with idle valleys between them.
		{Topo: "ring:8", Workload: "burst", Param: 4, LinkLatency: 9,
			DeliverPerStep: 1, MaxSteps: 5000, RecordSeries: true},
		// Sparse chain: one token in flight, gaps of ~latency steps.
		{Topo: "torus:4x4", Workload: "chain", Param: 12, LinkLatency: 37,
			DeliverPerStep: 1, MaxSteps: 5000, RecordSeries: true},
		// Truncated: non-quiescent at the horizon, gap runs into MaxSteps.
		{Topo: "ring:5", Workload: "chain", Param: 50, LinkLatency: 400,
			DeliverPerStep: 1, MaxSteps: 1000, RecordSeries: true},
	} {
		sweep := runEngine(t, c, simulator.EngineSweep)
		event := runEngine(t, c, simulator.EngineEvent)
		if int64(len(event.stats.QueuedSeries)) != event.stats.Steps {
			t.Errorf("%v: event engine series has %d entries, want one per step (%d)",
				c, len(event.stats.QueuedSeries), event.stats.Steps)
		}
		if !reflect.DeepEqual(sweep.stats.QueuedSeries, event.stats.QueuedSeries) {
			t.Errorf("%v: QueuedSeries diverges (sweep %d entries, event %d entries)",
				c, len(sweep.stats.QueuedSeries), len(event.stats.QueuedSeries))
		}
		if !reflect.DeepEqual(sweep.stats, event.stats) {
			t.Errorf("%v: Stats diverge:\n sweep: %+v\n event: %+v", c, sweep.stats, event.stats)
		}
	}
}
