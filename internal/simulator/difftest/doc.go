// Package difftest differentially tests the simulator's two engines.
//
// The discrete-event engine (simulator.EngineEvent) claims bit-identity
// with the step-synchronous sweep (simulator.EngineSweep): identical Stats,
// identical per-slot delivery traces (step, slot, source, payload, in
// order), and identical observer callback sequences, on every workload.
// This package is the proof: a seeded ~200-case randomized matrix over
// (topology, workload kind, queue model, loss/latency, queue capacity,
// MaxSteps, seed), a native fuzz target decoding arbitrary bytes into
// configs, and directed edge-case tests for the corners the sweep loop
// never exercised (zero-slot machines, horizons landing exactly on an
// arrival, cancellation inside a skipped idle gap).
//
// All tests here construct every run twice from scratch — fresh handlers,
// fresh trace — so the engines cannot share state, and run under -race in
// CI.
package difftest
