package difftest

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"hypersolve/internal/mesh"
	"hypersolve/internal/simulator"
)

// Case is one differential configuration: everything needed to build the
// same machine twice, once per engine.
type Case struct {
	Topo     string // mesh.Parse spec
	Workload string // flood | chain | burst | demand | silent
	Param    int    // workload intensity: flood TTL, chain hops, burst count

	QueueModel      simulator.QueueModel
	DeliverPerStep  int
	LinkLatency     int64
	QueueCap        int
	LossRate        float64
	RetransmitAfter int64
	MaxSteps        int64
	Seed            int64

	Injections   int  // external injections spread across the nodes
	RecordSeries bool // request the per-step QueuedSeries
	Observe      bool // attach a recording observer
}

func (c Case) String() string {
	return fmt.Sprintf("%s/%s:%d/%s/dps%d/lat%d/cap%d/loss%.2f/max%d/seed%d",
		c.Topo, c.Workload, c.Param, c.QueueModel, c.DeliverPerStep,
		c.LinkLatency, c.QueueCap, c.LossRate, c.MaxSteps, c.Seed)
}

// traceEntry records one handler delivery; the sequence of entries is the
// machine's observable delivery order.
type traceEntry struct {
	Step int64
	Node mesh.NodeID
	Src  mesh.NodeID
	Val  int
}

type trace struct{ entries []traceEntry }

func (t *trace) record(step int64, node, src mesh.NodeID, val int) {
	t.entries = append(t.entries, traceEntry{Step: step, Node: node, Src: src, Val: val})
}

// obsEntry records one Observer.AfterStep callback.
type obsEntry struct {
	Step   int64
	Queued int
}

type recordingObserver struct{ entries []obsEntry }

func (o *recordingObserver) AfterStep(step int64, queued int) {
	o.entries = append(o.entries, obsEntry{Step: step, Queued: queued})
}

// --- Workload handlers -------------------------------------------------
//
// Every handler is a pure function of its deliveries and ticks, so two
// machines built from the same Case evolve identically if and only if the
// engines deliver identically — which is exactly what the tests assert.

// floodHandler broadcasts a TTL to all neighbours; receivers re-broadcast
// TTL-1 while positive. Dense traffic, the paper's flood shape.
type floodHandler struct {
	tr   *trace
	node mesh.NodeID
	ttl  int
}

func (h *floodHandler) Init(ctx *simulator.Context) {
	if h.node == 0 {
		for _, nb := range ctx.Neighbours() {
			ctx.Send(nb, h.ttl)
		}
	}
}

func (h *floodHandler) Receive(ctx *simulator.Context, src mesh.NodeID, p simulator.Payload) {
	v := p.(int)
	h.tr.record(ctx.Step(), h.node, src, v)
	if v > 0 {
		for _, nb := range ctx.Neighbours() {
			ctx.Send(nb, v-1)
		}
	}
}

// chainHandler passes a single token hop to hop: maximally sparse traffic,
// the event engine's best case (long idle gaps between arrivals).
type chainHandler struct {
	tr   *trace
	node mesh.NodeID
	hops int
}

func (h *chainHandler) Init(ctx *simulator.Context) {
	if h.node == 0 {
		nbs := ctx.Neighbours()
		ctx.Send(nbs[0], h.hops)
	}
}

func (h *chainHandler) Receive(ctx *simulator.Context, src mesh.NodeID, p simulator.Payload) {
	v := p.(int)
	h.tr.record(ctx.Step(), h.node, src, v)
	if v > 0 {
		nbs := ctx.Neighbours()
		ctx.Send(nbs[v%len(nbs)], v-1)
	}
}

// burstHandler is Ticker-only: node 0 emits a burst of messages every
// period steps for a fixed number of bursts, while receivers echo a short
// reply. Bursty traffic with idle valleys — and, because Ticker-only
// handlers are ticked on every step, it also pins the engines' agreement on
// per-step tick scheduling. The machine may quiesce inside a valley (ticks
// do not block quiescence); both engines must agree on when.
type burstHandler struct {
	tr     *trace
	node   mesh.NodeID
	period int
	bursts int
	ticks  int
	fired  int
}

func (h *burstHandler) Init(ctx *simulator.Context) {
	if h.node == 0 {
		ctx.Send(ctx.Neighbours()[0], 1) // kick: keep step 0 non-quiescent
	}
}

func (h *burstHandler) Receive(ctx *simulator.Context, src mesh.NodeID, p simulator.Payload) {
	v := p.(int)
	h.tr.record(ctx.Step(), h.node, src, v)
	if v > 0 {
		ctx.Send(src, v-1) // short echo back
	}
}

func (h *burstHandler) Tick(ctx *simulator.Context) {
	h.ticks++
	if h.node != 0 || h.fired >= h.bursts || h.ticks%h.period != 0 {
		return
	}
	h.fired++
	for i, nb := range ctx.Neighbours() {
		ctx.Send(nb, 1+i%2)
	}
}

// demandHandler implements the Ticker+Pending contract the scheduler stack
// relies on: Receive only buffers, Tick drains a bounded budget, and
// PendingWork reports the backlog. Tick is a no-op when PendingWork is
// false — the promise that lets the event engine skip idle ticks.
type demandHandler struct {
	tr      *trace
	node    mesh.NodeID
	budget  int
	backlog []int
}

func (h *demandHandler) Init(ctx *simulator.Context) {
	if h.node == 0 {
		h.backlog = append(h.backlog, 3, 7) // Init-time pending work
	}
}

func (h *demandHandler) Receive(ctx *simulator.Context, src mesh.NodeID, p simulator.Payload) {
	v := p.(int)
	h.tr.record(ctx.Step(), h.node, src, v)
	h.backlog = append(h.backlog, v)
}

func (h *demandHandler) Tick(ctx *simulator.Context) {
	for i := 0; i < h.budget && len(h.backlog) > 0; i++ {
		v := h.backlog[0]
		h.backlog = h.backlog[1:]
		if v > 0 {
			nbs := ctx.Neighbours()
			ctx.Send(nbs[v%len(nbs)], v-1)
		}
	}
}

func (h *demandHandler) PendingWork() bool { return len(h.backlog) > 0 }

// silentHandler never sends: the machine quiesces on step 0 unless
// injections keep it alive.
type silentHandler struct {
	tr   *trace
	node mesh.NodeID
}

func (h *silentHandler) Init(*simulator.Context) {}

func (h *silentHandler) Receive(ctx *simulator.Context, src mesh.NodeID, p simulator.Payload) {
	v, _ := p.(int)
	h.tr.record(ctx.Step(), h.node, src, v)
}

func factory(c Case, tr *trace) simulator.HandlerFactory {
	return func(node mesh.NodeID) simulator.Handler {
		switch c.Workload {
		case "flood":
			return &floodHandler{tr: tr, node: node, ttl: c.Param}
		case "chain":
			return &chainHandler{tr: tr, node: node, hops: c.Param}
		case "burst":
			return &burstHandler{tr: tr, node: node, period: 3 + c.Param%7, bursts: 1 + c.Param%5}
		case "demand":
			return &demandHandler{tr: tr, node: node, budget: 1 + c.Param%3}
		default:
			return &silentHandler{tr: tr, node: node}
		}
	}
}

// runResult is everything observable from one run.
type runResult struct {
	stats simulator.Stats
	trace []traceEntry
	obs   []obsEntry
}

// runEngine builds the Case's machine from scratch for one engine and runs
// it to completion.
func runEngine(t testing.TB, c Case, eng simulator.Engine) runResult {
	t.Helper()
	topo, err := mesh.Parse(c.Topo)
	if err != nil {
		t.Fatalf("%v: topology: %v", c, err)
	}
	tr := &trace{}
	cfg := simulator.Config{
		Topology:        topo,
		Factory:         factory(c, tr),
		Engine:          eng,
		QueueModel:      c.QueueModel,
		LinkLatency:     c.LinkLatency,
		DeliverPerStep:  c.DeliverPerStep,
		QueueCap:        c.QueueCap,
		LossRate:        c.LossRate,
		Reliable:        c.LossRate > 0,
		RetransmitAfter: c.RetransmitAfter,
		MaxSteps:        c.MaxSteps,
		Seed:            c.Seed,
		RecordSeries:    c.RecordSeries,
	}
	var obs *recordingObserver
	if c.Observe {
		obs = &recordingObserver{}
		cfg.Observer = obs
	}
	sim, err := simulator.New(cfg)
	if err != nil {
		t.Fatalf("%v: New(%s): %v", c, eng, err)
	}
	for i := 0; i < c.Injections; i++ {
		dst := mesh.NodeID(i % topo.Size())
		if err := sim.Inject(dst, 1+i%4); err != nil {
			t.Fatalf("%v: Inject: %v", c, err)
		}
	}
	res := runResult{stats: sim.Run(), trace: tr.entries}
	if obs != nil {
		res.obs = obs.entries
	}
	return res
}

// assertIdentical runs the Case under both engines and requires bit-equal
// Stats, delivery traces and observer sequences.
func assertIdentical(t testing.TB, c Case) {
	t.Helper()
	sweep := runEngine(t, c, simulator.EngineSweep)
	event := runEngine(t, c, simulator.EngineEvent)
	if !reflect.DeepEqual(sweep.stats, event.stats) {
		t.Fatalf("%v: Stats diverge:\n sweep: %+v\n event: %+v", c, sweep.stats, event.stats)
	}
	if !reflect.DeepEqual(sweep.trace, event.trace) {
		t.Fatalf("%v: delivery traces diverge: sweep %d entries, event %d entries\nfirst divergence: %s",
			c, len(sweep.trace), len(event.trace), firstTraceDiff(sweep.trace, event.trace))
	}
	if !reflect.DeepEqual(sweep.obs, event.obs) {
		t.Fatalf("%v: observer sequences diverge: sweep %d callbacks, event %d callbacks",
			c, len(sweep.obs), len(event.obs))
	}
}

func firstTraceDiff(a, b []traceEntry) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("entry %d: sweep %+v, event %+v", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("one trace is a prefix of the other (lengths %d vs %d)", len(a), len(b))
}

// randomCase draws one configuration. Sizes are bounded so the sweep side
// of every case stays cheap; intensity is independent of all other draws so
// a fixed seed always produces the same matrix.
func randomCase(rng *rand.Rand) Case {
	topos := []string{
		"ring:3", "ring:5", "ring:8", "ring:16",
		"full:4", "full:6", "full:10",
		"star:5", "star:9",
		"hypercube:2", "hypercube:3", "hypercube:4",
		"torus:3x3", "torus:4x4", "grid:4x4", "grid:3x5",
	}
	workloads := []string{"flood", "chain", "burst", "demand", "silent"}
	latencies := []int64{1, 1, 2, 3, 7, 25, 100}
	maxSteps := []int64{0, 0, 0, 1, 5, 64, 1000, 20000} // 0 = default horizon
	c := Case{
		Topo:            topos[rng.Intn(len(topos))],
		Workload:        workloads[rng.Intn(len(workloads))],
		Param:           1 + rng.Intn(4),
		DeliverPerStep:  1 + rng.Intn(3),
		LinkLatency:     latencies[rng.Intn(len(latencies))],
		MaxSteps:        maxSteps[rng.Intn(len(maxSteps))],
		Seed:            rng.Int63n(1 << 30),
		Injections:      rng.Intn(6),
		RecordSeries:    rng.Intn(4) != 0,
		Observe:         rng.Intn(2) == 0,
		RetransmitAfter: int64(1 + rng.Intn(12)),
	}
	if rng.Intn(2) == 0 {
		c.QueueModel = simulator.LinkQueues
	}
	if rng.Intn(3) == 0 {
		c.QueueCap = 1 + rng.Intn(3)
	}
	if rng.Intn(3) == 0 {
		c.LossRate = [...]float64{0.05, 0.2, 0.5}[rng.Intn(3)]
		// A timeout shorter than the ack round trip retransmits every
		// in-flight message on every scan; combined with capacity
		// backpressure that degenerates into quadratic outbox growth (in
		// both engines, identically — but far too slow for a 200-case
		// matrix). Real protocols wait at least the round trip; so do we.
		c.RetransmitAfter = 2*c.LinkLatency + 1 + rng.Int63n(8)
		if c.MaxSteps == 0 || c.MaxSteps > 2000 {
			c.MaxSteps = 2000
		}
		if c.LinkLatency > 25 {
			c.LinkLatency = 25
		}
	}
	if c.MaxSteps == 0 {
		// The default horizon is 4M steps: sweeping it is too slow for a
		// 200-case matrix, so cap non-quiescent runs at a bound that still
		// exercises idle-gap skipping across many cancel slices.
		c.MaxSteps = 20000
	}
	if c.Workload == "flood" && c.Param > 3 {
		c.Param = 3 // bound the fan-out explosion on high-degree meshes
	}
	return c
}

// runCancelled runs the Case under one engine with an observer that cancels
// the context once step cancelAt is reached; used by the edge-case tests.
type cancellingObserver struct {
	cancelAt int64
	cancel   context.CancelFunc
	inner    *recordingObserver
}

func (o *cancellingObserver) AfterStep(step int64, queued int) {
	o.inner.AfterStep(step, queued)
	if step == o.cancelAt {
		o.cancel()
	}
}
