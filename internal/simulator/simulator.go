// Package simulator implements layer 1 of the model of Tarawneh et al.
// (P2S2 2017): a deterministic, time-stepped message-passing machine
// simulated on a single processor.
//
// Semantics follow Section IV-A and V-A of the paper: the backend keeps
// message queues, and on each simulation time step a message is popped from
// each non-empty queue and passed to the destination node's receive
// handler. The paper's text admits two readings of "each queue", both
// implemented here (Config.QueueModel):
//
//   - NodeQueues (default): one inbox per node, one delivery per node per
//     step. Node compute is the bottleneck; this model reproduces the
//     paper's central findings (mapping quality matters, the adaptive
//     mapper's crossover near 100 cores, round-robin's spatial
//     concentration in Figure 5).
//   - LinkQueues: one queue per directed link, one delivery per link per
//     step, so ingest scales with node degree. Links are the bottleneck;
//     mapping quality matters much less. Kept as an ablation (see
//     EXPERIMENTS.md).
//
// Messages the handler sends become deliverable on later steps, and may
// travel only between adjacent nodes of the chosen topology.
//
// Beyond the paper's baseline assumptions (unbounded queues, unit latency,
// one delivery per queue per step, lossless links) the simulator models the
// remaining layer-1 concerns named in the paper's Figure 2 — buffering,
// reliability, bandwidth and latency — as configurable extensions:
//
//   - LinkLatency: steps a message spends in flight (default 1),
//   - DeliverPerStep: per-queue delivery bandwidth (default 1),
//   - QueueCap: bounded link queues with sender-side backpressure (default
//     unbounded, as the paper assumes),
//   - LossRate + Reliable: lossy links with a sequence-numbered
//     ack/retransmit protocol that hides loss from the layers above.
package simulator

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"hypersolve/internal/mesh"
)

// Payload is the application-defined content of a message. The simulator
// never inspects it.
type Payload any

// Message is a unit of communication between adjacent nodes.
type Message struct {
	Src     mesh.NodeID // sending node, or mesh.None for external injections
	Dst     mesh.NodeID
	Payload Payload
	SentAt  int64 // step at which the message entered the network

	arriveAt int64  // first step at which the message may be delivered
	seq      uint64 // sequence number on the (src,dst) link, for reliability
	isAck    bool   // internal acknowledgement frame
	ackSeq   uint64 // sequence being acknowledged
}

// Handler is the per-node behaviour: state initialisation plus a receive
// routine, exactly the (init, receive) pair of the paper's Listing 1.
type Handler interface {
	// Init is called once before the simulation starts.
	Init(ctx *Context)
	// Receive is called when a message is delivered to this node: at most
	// DeliverPerStep times per step under NodeQueues, up to degree times
	// per step under LinkQueues.
	Receive(ctx *Context, src mesh.NodeID, payload Payload)
}

// Ticker is an optional extension: handlers implementing it are invoked once
// per simulation step even when no message arrives. Layers that keep
// internal buffers (e.g. node-level schedulers) use it to drain them.
//
// Handlers that also implement Pending additionally promise that Tick is a
// no-op whenever PendingWork reports false; the event engine relies on that
// contract to skip their idle steps. Ticker-only handlers are ticked on
// every step by both engines.
type Ticker interface {
	Tick(ctx *Context)
}

// Pending is an optional extension: handlers implementing it can report
// buffered work that is not yet visible as an in-flight message, which
// delays quiescence detection. See Ticker for the contract the event engine
// adds for handlers implementing both.
type Pending interface {
	PendingWork() bool
}

// HandlerFactory builds the handler for one node.
type HandlerFactory func(node mesh.NodeID) Handler

// Observer receives a callback after every simulation step, for live tracing.
type Observer interface {
	AfterStep(step int64, queued int)
}

// QueueModel selects the queue discipline of the machine (see the package
// documentation).
type QueueModel int

const (
	// NodeQueues gives each node a single inbox drained DeliverPerStep
	// messages per step (the default, used for the paper reproduction).
	NodeQueues QueueModel = iota
	// LinkQueues gives each directed link its own queue drained
	// DeliverPerStep messages per step, so node ingest scales with degree.
	LinkQueues
)

func (m QueueModel) String() string {
	if m == LinkQueues {
		return "link-queues"
	}
	return "node-queues"
}

// Engine selects the inner-loop implementation of the machine. Both engines
// produce bit-identical Stats, delivery order and observer callbacks; they
// differ only in how they find the work of each step.
type Engine string

const (
	// EngineDefault resolves to EngineEvent.
	EngineDefault Engine = ""
	// EngineEvent is the discrete-event engine: an indexed min-queue of
	// pending (tick, slot) activations visits only slots with due messages,
	// pending handler work or in-flight link deliveries, with deterministic
	// tie-breaking pinned to the sweep's order (phase, then slot index, then
	// link index, then FIFO arrival). Sparse workloads skip their idle steps
	// entirely.
	EngineEvent Engine = "event"
	// EngineSweep is the paper's step-synchronous loop: every slot is
	// visited on every step. Kept as the reference implementation the event
	// engine is differentially tested against.
	EngineSweep Engine = "sweep"
)

// ParseEngine validates an engine spec string ("", "event" or "sweep").
func ParseEngine(s string) (Engine, error) {
	switch Engine(s) {
	case EngineDefault, EngineEvent, EngineSweep:
		return Engine(s), nil
	default:
		return EngineDefault, fmt.Errorf("simulator: unknown engine %q (want event|sweep)", s)
	}
}

// Config assembles a simulated machine.
type Config struct {
	Topology mesh.Topology
	Factory  HandlerFactory

	// Engine selects the inner-loop implementation (default EngineEvent).
	// Both engines are bit-identical; EngineSweep is the step-synchronous
	// reference.
	Engine Engine

	// QueueModel selects per-node or per-link queueing (default NodeQueues).
	QueueModel QueueModel

	// LinkLatency is the number of steps a message spends in flight.
	// Values below 1 are treated as 1.
	LinkLatency int64

	// DeliverPerStep bounds how many messages each queue (the node inbox
	// under NodeQueues, each link queue under LinkQueues) delivers per
	// step. Values below 1 are treated as 1 (the paper's assumption).
	DeliverPerStep int

	// QueueCap bounds each queue. Zero means unbounded. When a destination
	// queue is full the message stays in the sender's outbox and is
	// retried on subsequent steps (backpressure).
	QueueCap int

	// LossRate is the independent probability that a message crossing a
	// link is dropped. Zero disables loss.
	LossRate float64

	// Reliable enables the ack/retransmit link protocol. It is required
	// when LossRate > 0 if the layers above expect reliable delivery.
	Reliable bool

	// RetransmitAfter is the timeout in steps before an unacknowledged
	// message is retransmitted. Values below 1 default to 8.
	RetransmitAfter int64

	// MaxSteps aborts the simulation if quiescence is not reached. Values
	// below 1 default to 4,000,000.
	MaxSteps int64

	// Seed drives all randomness (loss rolls). Simulations with equal
	// configs and seeds are bit-for-bit reproducible.
	Seed int64

	// RecordSeries enables the per-step queued-message time series used by
	// the paper's Figure 5. Disable for large sweeps to save memory.
	RecordSeries bool

	// Observer, if non-nil, is invoked after every step.
	Observer Observer
}

// Stats reports what happened during a run. The struct serializes to JSON
// with stable snake_case keys: it is part of the solve service's result
// payload (internal/service.JobResult).
type Stats struct {
	// Steps is the total number of steps executed.
	Steps int64 `json:"steps"`
	// FirstDelivery and LastDelivery bracket the active phase. The paper's
	// "computation time" metric is LastDelivery - FirstDelivery + 1.
	FirstDelivery int64 `json:"first_delivery"`
	LastDelivery  int64 `json:"last_delivery"`
	// TotalSent counts application messages entering the network;
	// TotalDelivered counts handler invocations; TotalDropped counts loss
	// events; TotalRetransmits counts reliability resends; TotalBlocked
	// counts step-retries due to full destination queues.
	TotalSent        int64 `json:"total_sent"`
	TotalDelivered   int64 `json:"total_delivered"`
	TotalDropped     int64 `json:"total_dropped,omitempty"`
	TotalRetransmits int64 `json:"total_retransmits,omitempty"`
	TotalBlocked     int64 `json:"total_blocked,omitempty"`
	// DeliveredPerNode is the paper's "node activity" metric: messages
	// delivered to each node over the whole simulation.
	DeliveredPerNode []int64 `json:"delivered_per_node,omitempty"`
	// QueuedSeries is the paper's "interconnect activity" metric: total
	// queued messages across the mesh at each step (only when
	// Config.RecordSeries is set).
	QueuedSeries []int `json:"queued_series,omitempty"`
	// Quiescent is true when the run ended because no messages remained,
	// false when MaxSteps was exceeded or the run was interrupted.
	Quiescent bool `json:"quiescent"`
	// Interrupted is true when RunContext stopped early because its
	// context was cancelled or its deadline expired.
	Interrupted bool `json:"interrupted,omitempty"`
}

// ComputationTime returns the paper's performance denominator: the number of
// simulation steps between the first (trigger) and last messages. Runs that
// delivered nothing report zero.
func (s Stats) ComputationTime() int64 {
	if s.TotalDelivered == 0 {
		return 0
	}
	return s.LastDelivery - s.FirstDelivery + 1
}

// maxTotalLinks bounds memory: per-link queues cost O(links).
const maxTotalLinks = 1 << 23

// Simulator is a single simulated machine instance. It is not safe for
// concurrent use; distinct instances are independent.
type Simulator struct {
	cfg      Config
	topo     mesh.Topology
	rng      *rand.Rand
	step     int64
	handlers []Handler
	contexts []Context
	// inLinks[node][i] is the queue of messages inbound to node over the
	// link from its i-th neighbour.
	inLinks [][]fifo
	// active[node] lists the indices of node's non-empty inbound link
	// queues; activeSet mirrors it for O(1) membership tests.
	active    [][]int32
	activeSet [][]bool
	// extQ[node] holds externally injected messages (no link).
	extQ []fifo
	// outboxes stage each node's sends until the flush phase.
	outboxes []fifo
	// nbrIndex resolves (dst, src) to the inbound link index of src at dst.
	nbrIndex adjIndex
	links    *linkLayer
	stats    Stats
	injected []Message
	tickers  []Ticker
	pendings []Pending
	inFlight int // messages in link queues, external queues and outboxes
	started  bool
	scratch  []int32 // reusable delivery snapshot buffer
	// eng is the discrete-event scheduler, non-nil only while the event
	// engine is running; the hooks in send/enqueueRaw/flushOutbox feed it.
	eng *eventEngine
}

// New builds a simulator from the config, instantiating one handler per node
// via the factory. It validates that required fields are present.
func New(cfg Config) (*Simulator, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("simulator: Config.Topology is nil")
	}
	if cfg.Factory == nil {
		return nil, fmt.Errorf("simulator: Config.Factory is nil")
	}
	if cfg.LinkLatency < 1 {
		cfg.LinkLatency = 1
	}
	if cfg.DeliverPerStep < 1 {
		cfg.DeliverPerStep = 1
	}
	if cfg.MaxSteps < 1 {
		cfg.MaxSteps = 4_000_000
	}
	if cfg.RetransmitAfter < 1 {
		cfg.RetransmitAfter = 8
	}
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		if cfg.LossRate != 0 {
			return nil, fmt.Errorf("simulator: LossRate %v outside [0,1)", cfg.LossRate)
		}
	}
	if cfg.LossRate > 0 && !cfg.Reliable {
		return nil, fmt.Errorf("simulator: LossRate %v requires Reliable=true", cfg.LossRate)
	}
	if _, err := ParseEngine(string(cfg.Engine)); err != nil {
		return nil, err
	}
	n := cfg.Topology.Size()
	if cfg.QueueModel == LinkQueues {
		totalLinks := 0
		for i := 0; i < n; i++ {
			totalLinks += cfg.Topology.Degree(mesh.NodeID(i))
		}
		if totalLinks > maxTotalLinks {
			return nil, fmt.Errorf("simulator: topology has %d directed links, exceeding the %d limit", totalLinks, maxTotalLinks)
		}
	}
	s := &Simulator{
		cfg:       cfg,
		topo:      cfg.Topology,
		handlers:  make([]Handler, n),
		contexts:  make([]Context, n),
		inLinks:   make([][]fifo, n),
		active:    make([][]int32, n),
		activeSet: make([][]bool, n),
		extQ:      make([]fifo, n),
		outboxes:  make([]fifo, n),
		nbrIndex:  newAdjIndex(cfg.Topology),
		tickers:   make([]Ticker, n),
		pendings:  make([]Pending, n),
	}
	if cfg.LossRate > 0 {
		// The RNG only drives loss rolls; deterministic runs skip it.
		s.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	s.stats.DeliveredPerNode = make([]int64, n)
	if cfg.Reliable {
		s.links = newLinkLayer(cfg.RetransmitAfter)
	}
	maxDegree := 0
	for i := 0; i < n; i++ {
		id := mesh.NodeID(i)
		if d := s.topo.Degree(id); d > maxDegree {
			maxDegree = d
		}
		if cfg.QueueModel == LinkQueues {
			nbrs := s.topo.Neighbours(id)
			s.inLinks[i] = make([]fifo, len(nbrs))
			s.activeSet[i] = make([]bool, len(nbrs))
		}
		s.contexts[i] = Context{sim: s, node: id}
		h := cfg.Factory(id)
		if h == nil {
			return nil, fmt.Errorf("simulator: factory returned nil handler for node %d", id)
		}
		s.handlers[i] = h
		if t, ok := h.(Ticker); ok {
			s.tickers[i] = t
		}
		if p, ok := h.(Pending); ok {
			s.pendings[i] = p
		}
	}
	// Preallocate the per-step delivery snapshot so steady-state stepping
	// never grows it.
	s.scratch = make([]int32, 0, maxDegree)
	return s, nil
}

// Topology returns the machine's interconnect.
func (s *Simulator) Topology() mesh.Topology { return s.topo }

// Handler returns the handler instance owned by a node, letting callers
// extract results after the run.
func (s *Simulator) Handler(n mesh.NodeID) Handler { return s.handlers[int(n)] }

// Step returns the current simulation step.
func (s *Simulator) Step() int64 { return s.step }

// Inject queues an external message (src = mesh.None) for delivery to dst at
// the start of the simulation, modelling the backend kick-starting the
// computation by sending a trigger message to a user-selected node.
func (s *Simulator) Inject(dst mesh.NodeID, payload Payload) error {
	if s.started {
		return fmt.Errorf("simulator: Inject after Run started")
	}
	if int(dst) < 0 || int(dst) >= s.topo.Size() {
		return fmt.Errorf("simulator: Inject destination %d out of range", dst)
	}
	s.injected = append(s.injected, Message{Src: mesh.None, Dst: dst, Payload: payload})
	return nil
}

// CancelSliceSteps is the cancellation-check granularity of RunContext: the
// step loop polls the context once per slice of this many steps, so a
// cancelled run stops within at most one slice. The value keeps the poll off
// the per-step hot path (a context check every step costs ~5% on the flood
// benchmark) while bounding cancellation latency to well under a millisecond
// of wall clock on any realistic machine size.
const CancelSliceSteps = 1024

// Run executes the simulation until quiescence (no queued or buffered
// messages anywhere and no handler reporting pending work) or until MaxSteps
// elapses. It returns the collected statistics.
func (s *Simulator) Run() Stats { return s.RunContext(context.Background()) }

// RunContext is Run with cooperative cancellation: the step loop polls
// ctx once every CancelSliceSteps steps and stops early (Stats.Interrupted
// set, Quiescent false) when the context is cancelled or past its deadline.
// Cancellation never perturbs runs that complete: a run that reaches
// quiescence produces statistics bit-identical to Run's, because the poll
// only ever aborts the loop, never reorders it.
func (s *Simulator) RunContext(ctx context.Context) Stats {
	s.started = true
	if s.cfg.Engine != EngineSweep {
		// The engine must exist before handler Init runs: Init-time sends
		// hit the send/enqueueRaw hooks, which schedule their flushes.
		s.eng = newEventEngine(s)
	}
	for i := range s.handlers {
		s.handlers[i].Init(&s.contexts[i])
	}
	for _, m := range s.injected {
		m.arriveAt = 0
		m.SentAt = 0
		s.extQ[m.Dst].push(m)
		s.inFlight++
		s.stats.TotalSent++
		if s.eng != nil {
			s.eng.schedule(evDeliver, int32(m.Dst), 0)
		}
	}
	s.injected = nil
	s.stats.FirstDelivery = -1
	if s.cfg.RecordSeries {
		// Preallocate the series in bulk; runs longer than the initial
		// guess fall back to append's doubling.
		capHint := s.cfg.MaxSteps
		if capHint > 1<<15 {
			capHint = 1 << 15
		}
		s.stats.QueuedSeries = make([]int, 0, capHint)
	}
	if s.eng != nil {
		return s.runEvent(ctx)
	}
	return s.runSweep(ctx)
}

// runSweep is the step-synchronous reference loop: every slot is visited on
// every step. The event engine is differentially tested to be bit-identical
// to this loop (internal/simulator/difftest).
func (s *Simulator) runSweep(ctx context.Context) Stats {
	for s.step = 0; s.step < s.cfg.MaxSteps; s.step++ {
		if s.step%CancelSliceSteps == 0 && ctx.Err() != nil {
			s.stats.Steps = s.step
			s.stats.Quiescent = false
			s.stats.Interrupted = true
			return s.stats
		}
		s.runStep()
		if s.cfg.RecordSeries {
			s.stats.QueuedSeries = append(s.stats.QueuedSeries, s.inFlight)
		}
		if s.cfg.Observer != nil {
			s.cfg.Observer.AfterStep(s.step, s.inFlight)
		}
		if s.quiescent() {
			s.stats.Steps = s.step + 1
			s.stats.Quiescent = true
			return s.stats
		}
	}
	s.stats.Steps = s.cfg.MaxSteps
	s.stats.Quiescent = false
	return s.stats
}

// quiescent reports whether no work remains anywhere: no queued or in-flight
// messages, no handler-reported pending work, no unacknowledged frames.
func (s *Simulator) quiescent() bool {
	return s.inFlight == 0 && !s.anyPending() && (s.links == nil || s.links.idle())
}

// runStep performs one paper-semantics simulation step: per-link deliveries,
// handler ticks, then outbox flush.
func (s *Simulator) runStep() {
	n := len(s.handlers)
	// Phase 1: deliveries.
	switch s.cfg.QueueModel {
	case LinkQueues:
		// Pop up to DeliverPerStep due messages from each non-empty
		// inbound link queue, plus all due external injections.
		for i := 0; i < n; i++ {
			// Snapshot the active link set: deliveries never add to it
			// (sends stage in outboxes until phase 4), but pops may
			// shrink it.
			s.scratch = append(s.scratch[:0], s.active[i]...)
			for _, li := range s.scratch {
				q := &s.inLinks[i][li]
				for k := 0; k < s.cfg.DeliverPerStep; k++ {
					msg, ok := q.popDue(s.step)
					if !ok {
						break
					}
					s.inFlight--
					s.deliver(i, msg)
				}
				if q.len() == 0 {
					s.deactivate(i, li)
				}
			}
			for {
				msg, ok := s.extQ[i].popDue(s.step)
				if !ok {
					break
				}
				s.inFlight--
				s.deliver(i, msg)
			}
		}
	default:
		// NodeQueues: pop up to DeliverPerStep due messages from each
		// node's single inbox (external injections share it).
		for i := 0; i < n; i++ {
			for k := 0; k < s.cfg.DeliverPerStep; k++ {
				msg, ok := s.extQ[i].popDue(s.step)
				if !ok {
					break
				}
				s.inFlight--
				s.deliver(i, msg)
			}
		}
	}
	// Phase 2: per-step ticks for handlers that buffer internally.
	for i := 0; i < n; i++ {
		if s.tickers[i] != nil {
			s.tickers[i].Tick(&s.contexts[i])
		}
	}
	// Phase 3: retransmit overdue unacknowledged messages.
	if s.links != nil {
		s.links.retransmit(s)
	}
	// Phase 4: flush outboxes into destination link queues.
	for i := 0; i < n; i++ {
		s.flushOutbox(i)
	}
}

// deactivate removes a drained link queue from the node's active list.
func (s *Simulator) deactivate(node int, li int32) {
	if !s.activeSet[node][li] {
		return
	}
	s.activeSet[node][li] = false
	act := s.active[node]
	for k, v := range act {
		if v == li {
			act[k] = act[len(act)-1]
			s.active[node] = act[:len(act)-1]
			return
		}
	}
}

// activate marks a link queue non-empty.
func (s *Simulator) activate(node int, li int32) {
	if s.activeSet[node][li] {
		return
	}
	s.activeSet[node][li] = true
	s.active[node] = append(s.active[node], li)
}

// deliver hands one arrived message to the link layer / handler.
func (s *Simulator) deliver(node int, msg Message) {
	if s.links != nil {
		if !s.links.onArrival(s, node, &msg) {
			return // duplicate or internal ack frame: consumed by link layer
		}
	}
	s.stats.TotalDelivered++
	s.stats.DeliveredPerNode[node]++
	if s.stats.FirstDelivery < 0 {
		s.stats.FirstDelivery = s.step
	}
	s.stats.LastDelivery = s.step
	s.handlers[node].Receive(&s.contexts[node], msg.Src, msg.Payload)
}

// flushOutbox moves messages from a node's outbox to their destination link
// queues, applying loss, latency and queue-capacity backpressure.
func (s *Simulator) flushOutbox(node int) {
	ob := &s.outboxes[node]
	var retry []Message
	for {
		msg, ok := ob.pop()
		if !ok {
			break
		}
		dst := int(msg.Dst)
		var q *fifo
		var li int32 = -1
		if s.cfg.QueueModel == LinkQueues {
			li = s.nbrIndex.lookup(msg.Dst, msg.Src)
			q = &s.inLinks[dst][li]
		} else {
			q = &s.extQ[dst]
		}
		if s.cfg.QueueCap > 0 && q.len() >= s.cfg.QueueCap {
			s.stats.TotalBlocked++
			retry = append(retry, msg)
			continue
		}
		if s.cfg.LossRate > 0 && s.rng.Float64() < s.cfg.LossRate {
			s.inFlight--
			s.stats.TotalDropped++
			continue // the reliability protocol will retransmit
		}
		msg.arriveAt = s.step + s.cfg.LinkLatency
		q.push(msg)
		if li >= 0 {
			s.activate(dst, li)
		}
		if s.eng != nil {
			s.eng.schedule(evDeliver, int32(dst), msg.arriveAt)
		}
	}
	for _, m := range retry {
		ob.push(m)
	}
}

// send is the internal entry point used by Context.Send and the link layer.
func (s *Simulator) send(src, dst mesh.NodeID, payload Payload) error {
	if int(dst) < 0 || int(dst) >= s.topo.Size() {
		return fmt.Errorf("simulator: node %d sent to out-of-range node %d", src, dst)
	}
	if s.nbrIndex.lookup(dst, src) < 0 {
		return fmt.Errorf("simulator: node %d is not adjacent to node %d in %s", src, dst, s.topo.Name())
	}
	msg := Message{Src: src, Dst: dst, Payload: payload, SentAt: s.step}
	s.stats.TotalSent++
	if s.links != nil {
		s.links.onSend(s, &msg)
		if s.eng != nil {
			// The fresh pending entry becomes overdue timeout steps out.
			s.eng.schedule(evRetransmit, 0, s.step+s.links.timeout)
		}
	}
	s.outboxes[src].push(msg)
	s.inFlight++
	if s.eng != nil {
		s.eng.schedule(evFlush, int32(src), s.step)
	}
	return nil
}

// enqueueRaw re-enqueues a link-layer frame (ack or retransmission) without
// accounting it as a fresh application send.
func (s *Simulator) enqueueRaw(msg Message) {
	s.outboxes[msg.Src].push(msg)
	s.inFlight++
	if s.eng != nil {
		s.eng.schedule(evFlush, int32(msg.Src), s.step)
	}
}

func (s *Simulator) anyPending() bool {
	for _, p := range s.pendings {
		if p != nil && p.PendingWork() {
			return true
		}
	}
	return false
}

// Context is the per-node view handlers use to interact with the machine.
type Context struct {
	sim  *Simulator
	node mesh.NodeID
}

// Node returns the node this context belongs to.
func (c *Context) Node() mesh.NodeID { return c.node }

// Step returns the current simulation step.
func (c *Context) Step() int64 { return c.sim.step }

// Neighbours returns the node's adjacent nodes. The slice must not be
// modified.
func (c *Context) Neighbours() []mesh.NodeID { return c.sim.topo.Neighbours(c.node) }

// Topology returns the machine's interconnect.
func (c *Context) Topology() mesh.Topology { return c.sim.topo }

// Send queues a message to an adjacent node. It returns an error if dst is
// not a neighbour — layer 1 has no routing network (paper Section V-A).
func (c *Context) Send(dst mesh.NodeID, payload Payload) error {
	return c.sim.send(c.node, dst, payload)
}

// adjIndex resolves (dst, src) pairs to the inbound link ordinal of src at
// dst, replacing the per-send map lookups of the original implementation
// with dense precomputed slices in compressed-sparse-row layout: one flat
// offsets slice plus per-destination neighbour segments sorted by source id.
// Memory is O(links) (a dense n*n matrix would cost 4 MiB per 1024-node
// machine, multiplied by the sweep engine's parallelism), and a lookup is a
// short scan or binary search over a contiguous segment — no hashing, no
// pointer chasing.
type adjIndex struct {
	off []int32       // off[dst]..off[dst+1] brackets dst's segment
	nbr []mesh.NodeID // neighbour ids, sorted within each segment
	ord []int32       // inbound link ordinal at dst, parallel to nbr
}

func newAdjIndex(topo mesh.Topology) adjIndex {
	n := topo.Size()
	a := adjIndex{off: make([]int32, n+1)}
	total := 0
	for i := 0; i < n; i++ {
		total += topo.Degree(mesh.NodeID(i))
	}
	a.nbr = make([]mesh.NodeID, 0, total)
	a.ord = make([]int32, 0, total)
	for i := 0; i < n; i++ {
		a.off[i] = int32(len(a.nbr))
		start := len(a.nbr)
		for j, m := range topo.Neighbours(mesh.NodeID(i)) {
			a.nbr = append(a.nbr, m)
			a.ord = append(a.ord, int32(j))
		}
		sort.Sort(adjSegment{nbr: a.nbr[start:], ord: a.ord[start:]})
	}
	a.off[n] = int32(len(a.nbr))
	return a
}

// adjSegment sorts one destination's (neighbour, ordinal) pairs by
// neighbour id.
type adjSegment struct {
	nbr []mesh.NodeID
	ord []int32
}

func (s adjSegment) Len() int           { return len(s.nbr) }
func (s adjSegment) Less(i, j int) bool { return s.nbr[i] < s.nbr[j] }
func (s adjSegment) Swap(i, j int) {
	s.nbr[i], s.nbr[j] = s.nbr[j], s.nbr[i]
	s.ord[i], s.ord[j] = s.ord[j], s.ord[i]
}

// lookup returns the inbound link ordinal of src at dst, or -1 when the
// nodes are not adjacent.
func (a *adjIndex) lookup(dst, src mesh.NodeID) int32 {
	lo, hi := a.off[int(dst)], a.off[int(dst)+1]
	if hi-lo <= 8 {
		// Mesh-like topologies have single-digit degree: a linear scan over
		// the contiguous segment beats a branchy binary search.
		for i := lo; i < hi; i++ {
			if a.nbr[i] == src {
				return a.ord[i]
			}
		}
		return -1
	}
	end := hi
	for lo < hi {
		mid := (lo + hi) >> 1
		if a.nbr[mid] < src {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < end && a.nbr[lo] == src {
		return a.ord[lo]
	}
	return -1
}
