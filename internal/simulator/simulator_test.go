package simulator

import (
	"testing"
	"testing/quick"

	"hypersolve/internal/mesh"
)

// floodHandler implements the paper's Listing 1: on first message, forward
// an empty message to every neighbour.
type floodHandler struct {
	visited bool
	seenAt  int64
}

func (h *floodHandler) Init(ctx *Context) {}

func (h *floodHandler) Receive(ctx *Context, src mesh.NodeID, payload Payload) {
	if h.visited {
		return
	}
	h.visited = true
	h.seenAt = ctx.Step()
	for _, n := range ctx.Neighbours() {
		if err := ctx.Send(n, nil); err != nil {
			panic(err)
		}
	}
}

func newFloodSim(t *testing.T, topo mesh.Topology, cfg Config) *Simulator {
	t.Helper()
	cfg.Topology = topo
	cfg.Factory = func(mesh.NodeID) Handler { return &floodHandler{} }
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestFloodVisitsAllNodes(t *testing.T) {
	topo := mesh.MustTorus(6, 6)
	sim := newFloodSim(t, topo, Config{})
	if err := sim.Inject(0, nil); err != nil {
		t.Fatal(err)
	}
	stats := sim.Run()
	if !stats.Quiescent {
		t.Fatal("simulation did not reach quiescence")
	}
	for n := 0; n < topo.Size(); n++ {
		h := sim.Handler(mesh.NodeID(n)).(*floodHandler)
		if !h.visited {
			t.Errorf("node %d never visited", n)
		}
	}
}

func TestFloodArrivalMatchesDistance(t *testing.T) {
	// With unit latency and one delivery per step, the flood wavefront
	// reaches each node no earlier than its hop distance from the source.
	topo := mesh.MustTorus(5, 5)
	sim := newFloodSim(t, topo, Config{})
	if err := sim.Inject(0, nil); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	for n := 0; n < topo.Size(); n++ {
		h := sim.Handler(mesh.NodeID(n)).(*floodHandler)
		d := int64(topo.Distance(0, mesh.NodeID(n)))
		if h.seenAt < d {
			t.Errorf("node %d visited at step %d, before hop distance %d", n, h.seenAt, d)
		}
	}
}

func TestComputationTimeBracketsActivity(t *testing.T) {
	topo := mesh.MustRing(10)
	sim := newFloodSim(t, topo, Config{})
	if err := sim.Inject(0, nil); err != nil {
		t.Fatal(err)
	}
	stats := sim.Run()
	if stats.ComputationTime() <= 0 {
		t.Fatalf("ComputationTime = %d, want > 0", stats.ComputationTime())
	}
	if stats.FirstDelivery != 0 {
		t.Errorf("FirstDelivery = %d, want 0", stats.FirstDelivery)
	}
	// Ring of 10: wavefront needs 5 hops in each direction.
	if stats.LastDelivery < 5 {
		t.Errorf("LastDelivery = %d, want >= 5", stats.LastDelivery)
	}
}

func TestNonAdjacentSendRejected(t *testing.T) {
	topo := mesh.MustGrid(3, 3)
	var sendErr error
	cfg := Config{
		Topology: topo,
		Factory: func(n mesh.NodeID) Handler {
			return handlerFunc(func(ctx *Context, src mesh.NodeID, p Payload) {
				// Node 0 (corner) tries to message node 8 (opposite corner).
				sendErr = ctx.Send(8, nil)
			})
		},
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Inject(0, nil); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if sendErr == nil {
		t.Fatal("expected adjacency violation error, got nil")
	}
}

// handlerFunc adapts a function to the Handler interface.
type handlerFunc func(ctx *Context, src mesh.NodeID, p Payload)

func (f handlerFunc) Init(ctx *Context)                                {}
func (f handlerFunc) Receive(ctx *Context, src mesh.NodeID, p Payload) { f(ctx, src, p) }

func TestConfigValidation(t *testing.T) {
	topo := mesh.MustRing(4)
	factory := func(mesh.NodeID) Handler { return &floodHandler{} }
	cases := []Config{
		{},               // nil topology
		{Topology: topo}, // nil factory
		{Topology: topo, Factory: factory, LossRate: 0.5},                 // loss without reliability
		{Topology: topo, Factory: factory, LossRate: 1.5, Reliable: true}, // loss out of range
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected config error", i)
		}
	}
}

func TestInjectValidation(t *testing.T) {
	sim := newFloodSim(t, mesh.MustRing(4), Config{})
	if err := sim.Inject(99, nil); err == nil {
		t.Error("expected out-of-range inject error")
	}
	if err := sim.Inject(0, nil); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if err := sim.Inject(0, nil); err == nil {
		t.Error("expected inject-after-run error")
	}
}

func TestMaxStepsAborts(t *testing.T) {
	// A two-node ping-pong never quiesces; MaxSteps must stop it.
	topo := mesh.MustFullyConnected(2)
	cfg := Config{
		Topology: topo,
		MaxSteps: 50,
		Factory: func(n mesh.NodeID) Handler {
			return handlerFunc(func(ctx *Context, src mesh.NodeID, p Payload) {
				other := mesh.NodeID(1 - int(ctx.Node()))
				_ = ctx.Send(other, nil)
			})
		},
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Inject(0, nil); err != nil {
		t.Fatal(err)
	}
	stats := sim.Run()
	if stats.Quiescent {
		t.Error("ping-pong reported quiescent")
	}
	if stats.Steps != 50 {
		t.Errorf("Steps = %d, want 50", stats.Steps)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		sim := newFloodSim(t, mesh.MustTorus(8, 8), Config{Seed: 42, RecordSeries: true})
		if err := sim.Inject(5, nil); err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	a, b := run(), run()
	if a.Steps != b.Steps || a.TotalSent != b.TotalSent || a.TotalDelivered != b.TotalDelivered {
		t.Fatalf("non-deterministic stats: %+v vs %+v", a, b)
	}
	if len(a.QueuedSeries) != len(b.QueuedSeries) {
		t.Fatalf("series lengths differ: %d vs %d", len(a.QueuedSeries), len(b.QueuedSeries))
	}
	for i := range a.QueuedSeries {
		if a.QueuedSeries[i] != b.QueuedSeries[i] {
			t.Fatalf("series diverge at step %d", i)
		}
	}
}

func TestLinkLatencyDelaysDelivery(t *testing.T) {
	for _, latency := range []int64{1, 3, 7} {
		topo := mesh.MustRing(12)
		sim := newFloodSim(t, topo, Config{LinkLatency: latency})
		if err := sim.Inject(0, nil); err != nil {
			t.Fatal(err)
		}
		stats := sim.Run()
		// Wavefront: 6 hops; each hop costs >= latency steps.
		if min := 6 * latency; stats.LastDelivery < min {
			t.Errorf("latency %d: LastDelivery = %d, want >= %d", latency, stats.LastDelivery, min)
		}
	}
}

func TestPerLinkParallelIngest(t *testing.T) {
	// Under the LinkQueues model, a star hub with 16 leaves drains one
	// message from every leaf link in the same step — degree-proportional
	// ingest. (Under the default NodeQueues model the same traffic
	// serialises; see TestQueueModelsDiffer.)
	leaves := 16
	topo := mesh.MustStar(leaves + 1)
	var hubSteps []int64
	cfg := Config{
		Topology:   topo,
		QueueModel: LinkQueues,
		Factory: func(n mesh.NodeID) Handler {
			return handlerFunc(func(ctx *Context, src mesh.NodeID, p Payload) {
				switch {
				case ctx.Node() == 0 && src != mesh.None:
					hubSteps = append(hubSteps, ctx.Step())
				case ctx.Node() != 0 && src == mesh.None:
					_ = ctx.Send(0, nil) // each leaf pings the hub once
				}
			})
		},
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for leaf := 1; leaf <= leaves; leaf++ {
		if err := sim.Inject(mesh.NodeID(leaf), nil); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	if len(hubSteps) != leaves {
		t.Fatalf("hub received %d messages, want %d", len(hubSteps), leaves)
	}
	for _, s := range hubSteps {
		if s != hubSteps[0] {
			t.Fatalf("hub deliveries spread over steps %v; want all in one step", hubSteps)
		}
	}
}

func TestDeliverPerStepLinkBandwidth(t *testing.T) {
	// One leaf bursts 8 messages onto a single link; per-link bandwidth 1
	// serialises them over 8 steps, bandwidth 8 drains them in one.
	burst := 8
	topo := mesh.MustStar(2)
	run := func(bw int) int64 {
		cfg := Config{
			Topology:       topo,
			DeliverPerStep: bw,
			Factory: func(n mesh.NodeID) Handler {
				return handlerFunc(func(ctx *Context, src mesh.NodeID, p Payload) {
					if ctx.Node() == 1 && src == mesh.None {
						for i := 0; i < burst; i++ {
							_ = ctx.Send(0, i)
						}
					}
				})
			},
		}
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Inject(1, nil); err != nil {
			t.Fatal(err)
		}
		return sim.Run().Steps
	}
	slow, fast := run(1), run(8)
	if fast >= slow {
		t.Errorf("bandwidth 8 (%d steps) not faster than bandwidth 1 (%d steps)", fast, slow)
	}
	if slow < int64(burst) {
		t.Errorf("bandwidth 1 finished in %d steps; burst of %d should need at least that many", slow, burst)
	}
}

func TestQueueCapBackpressure(t *testing.T) {
	// A burst over one link with QueueCap 1 forces sender-side retries,
	// yet every message is eventually delivered.
	burst := 8
	topo := mesh.MustStar(2)
	var hubReceived int
	cfg := Config{
		Topology: topo,
		QueueCap: 1,
		Factory: func(n mesh.NodeID) Handler {
			return handlerFunc(func(ctx *Context, src mesh.NodeID, p Payload) {
				switch {
				case ctx.Node() == 0 && src != mesh.None:
					hubReceived++
				case ctx.Node() == 1 && src == mesh.None:
					for i := 0; i < burst; i++ {
						_ = ctx.Send(0, i)
					}
				}
			})
		},
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Inject(1, nil); err != nil {
		t.Fatal(err)
	}
	stats := sim.Run()
	if !stats.Quiescent {
		t.Fatal("backpressured run did not quiesce")
	}
	if hubReceived != burst {
		t.Errorf("hub received %d messages, want %d", hubReceived, burst)
	}
	if stats.TotalBlocked == 0 {
		t.Error("expected backpressure events with QueueCap=1")
	}
}

func TestLossyLinksWithReliability(t *testing.T) {
	// Under 30% loss with the ack/retransmit protocol, flood still reaches
	// every node exactly once (duplicates suppressed).
	topo := mesh.MustTorus(5, 5)
	received := make([]int, topo.Size())
	cfg := Config{
		Topology:        topo,
		LossRate:        0.3,
		Reliable:        true,
		RetransmitAfter: 4,
		Seed:            7,
		Factory: func(n mesh.NodeID) Handler {
			return handlerFunc(func(ctx *Context, src mesh.NodeID, p Payload) {
				received[ctx.Node()]++
				if received[ctx.Node()] == 1 {
					for _, nb := range ctx.Neighbours() {
						_ = ctx.Send(nb, nil)
					}
				}
			})
		},
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Inject(0, nil); err != nil {
		t.Fatal(err)
	}
	stats := sim.Run()
	if !stats.Quiescent {
		t.Fatal("lossy run did not quiesce")
	}
	if stats.TotalDropped == 0 {
		t.Error("expected drops at 30% loss")
	}
	if stats.TotalRetransmits == 0 {
		t.Error("expected retransmissions at 30% loss")
	}
	for n, c := range received {
		if c == 0 {
			t.Errorf("node %d never received despite reliability", n)
		}
	}
	// Exactly-once per (src,dst) sequence: each node receives one message
	// from each neighbour plus (node 0) the injection.
	for n, c := range received {
		want := topo.Degree(mesh.NodeID(n))
		if n == 0 {
			want++
		}
		if c != want {
			t.Errorf("node %d delivered %d messages, want %d (exactly-once violated)", n, c, want)
		}
	}
}

func TestReliabilityExactlyOnceProperty(t *testing.T) {
	// Property: for any seed and loss rate in [0, 0.5), every node of a
	// small torus receives exactly degree (+1 for the root) messages.
	f := func(seed int64, lossPct uint8) bool {
		loss := float64(lossPct%50) / 100
		topo := mesh.MustTorus(3, 3)
		received := make([]int, topo.Size())
		cfg := Config{
			Topology:        topo,
			LossRate:        loss,
			Reliable:        true,
			RetransmitAfter: 3,
			Seed:            seed,
			Factory: func(n mesh.NodeID) Handler {
				return handlerFunc(func(ctx *Context, src mesh.NodeID, p Payload) {
					received[ctx.Node()]++
					if received[ctx.Node()] == 1 {
						for _, nb := range ctx.Neighbours() {
							_ = ctx.Send(nb, nil)
						}
					}
				})
			},
		}
		sim, err := New(cfg)
		if err != nil {
			return false
		}
		if err := sim.Inject(0, nil); err != nil {
			return false
		}
		if stats := sim.Run(); !stats.Quiescent {
			return false
		}
		for n, c := range received {
			want := topo.Degree(mesh.NodeID(n))
			if n == 0 {
				want++
			}
			if c != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQueuedSeriesRecorded(t *testing.T) {
	sim := newFloodSim(t, mesh.MustTorus(4, 4), Config{RecordSeries: true})
	if err := sim.Inject(0, nil); err != nil {
		t.Fatal(err)
	}
	stats := sim.Run()
	if int64(len(stats.QueuedSeries)) != stats.Steps {
		t.Fatalf("series length %d != steps %d", len(stats.QueuedSeries), stats.Steps)
	}
	if stats.QueuedSeries[len(stats.QueuedSeries)-1] != 0 {
		t.Error("final series entry should be zero at quiescence")
	}
	peak := 0
	for _, q := range stats.QueuedSeries {
		if q > peak {
			peak = q
		}
	}
	if peak == 0 {
		t.Error("series never recorded any queued messages")
	}
}

type stepCounter struct{ steps []int64 }

func (o *stepCounter) AfterStep(step int64, queued int) { o.steps = append(o.steps, step) }

func TestObserverCalledEveryStep(t *testing.T) {
	obs := &stepCounter{}
	sim := newFloodSim(t, mesh.MustRing(6), Config{Observer: obs})
	if err := sim.Inject(0, nil); err != nil {
		t.Fatal(err)
	}
	stats := sim.Run()
	if int64(len(obs.steps)) != stats.Steps {
		t.Fatalf("observer saw %d steps, want %d", len(obs.steps), stats.Steps)
	}
	for i, s := range obs.steps {
		if s != int64(i) {
			t.Fatalf("observer step %d reported as %d", i, s)
		}
	}
}

func TestEmptyRunQuiescesImmediately(t *testing.T) {
	sim := newFloodSim(t, mesh.MustRing(5), Config{})
	stats := sim.Run()
	if !stats.Quiescent {
		t.Error("empty run should quiesce")
	}
	if stats.ComputationTime() != 0 {
		t.Errorf("ComputationTime = %d, want 0", stats.ComputationTime())
	}
}

func TestDedupHighWater(t *testing.T) {
	d := &dedup{sparse: make(map[uint64]bool)}
	for _, seq := range []uint64{0, 2, 1, 1, 0, 3} {
		d.mark(seq)
	}
	if d.contiguous != 4 {
		t.Errorf("contiguous = %d, want 4", d.contiguous)
	}
	if len(d.sparse) != 0 {
		t.Errorf("sparse not drained: %v", d.sparse)
	}
	for seq := uint64(0); seq < 4; seq++ {
		if !d.seen(seq) {
			t.Errorf("seq %d should be seen", seq)
		}
	}
	if d.seen(4) {
		t.Error("seq 4 should not be seen")
	}
}

func TestQueueModelsDiffer(t *testing.T) {
	// The same burst traffic serialises under NodeQueues (one delivery per
	// node per step) and parallelises under LinkQueues (one per link).
	leaves := 12
	topo := mesh.MustStar(leaves + 1)
	run := func(model QueueModel) int64 {
		cfg := Config{
			Topology:   topo,
			QueueModel: model,
			Factory: func(n mesh.NodeID) Handler {
				return handlerFunc(func(ctx *Context, src mesh.NodeID, p Payload) {
					if ctx.Node() != 0 && src == mesh.None {
						_ = ctx.Send(0, nil)
					}
				})
			},
		}
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for leaf := 1; leaf <= leaves; leaf++ {
			if err := sim.Inject(mesh.NodeID(leaf), nil); err != nil {
				t.Fatal(err)
			}
		}
		stats := sim.Run()
		if !stats.Quiescent {
			t.Fatal("run did not quiesce")
		}
		return stats.Steps
	}
	node, link := run(NodeQueues), run(LinkQueues)
	if node <= link {
		t.Errorf("NodeQueues (%d steps) should be slower than LinkQueues (%d steps) for hub bursts", node, link)
	}
	if min := int64(leaves); node < min {
		t.Errorf("NodeQueues steps = %d; hub must need >= %d steps for %d serialised messages", node, min, leaves)
	}
}

func TestQueueModelString(t *testing.T) {
	if NodeQueues.String() != "node-queues" || LinkQueues.String() != "link-queues" {
		t.Error("queue model names wrong")
	}
}

func TestQueueModelsAgreeOnVisitedSet(t *testing.T) {
	// The two queue disciplines change timing, never reachability: a flood
	// visits exactly the same nodes under both.
	topo := mesh.MustTorus(7, 7)
	run := func(model QueueModel) []bool {
		sim := newFloodSim(t, topo, Config{QueueModel: model})
		if err := sim.Inject(3, nil); err != nil {
			t.Fatal(err)
		}
		if stats := sim.Run(); !stats.Quiescent {
			t.Fatal("no quiescence")
		}
		out := make([]bool, topo.Size())
		for n := range out {
			out[n] = sim.Handler(mesh.NodeID(n)).(*floodHandler).visited
		}
		return out
	}
	node, link := run(NodeQueues), run(LinkQueues)
	for n := range node {
		if node[n] != link[n] {
			t.Fatalf("node %d visited disagreement: node-queues %v, link-queues %v", n, node[n], link[n])
		}
		if !node[n] {
			t.Fatalf("node %d never visited", n)
		}
	}
}

func TestLinkQueuesDeterminism(t *testing.T) {
	run := func() Stats {
		sim := newFloodSim(t, mesh.MustTorus(6, 6), Config{QueueModel: LinkQueues, RecordSeries: true})
		if err := sim.Inject(0, nil); err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	a, b := run(), run()
	if a.Steps != b.Steps || a.TotalDelivered != b.TotalDelivered {
		t.Fatalf("link-queue runs diverge: %+v vs %+v", a, b)
	}
	for i := range a.QueuedSeries {
		if a.QueuedSeries[i] != b.QueuedSeries[i] {
			t.Fatalf("series diverge at %d", i)
		}
	}
}

func TestLossyLinkQueuesReliability(t *testing.T) {
	// The reliability protocol must also work under the per-link model.
	topo := mesh.MustTorus(4, 4)
	received := make([]int, topo.Size())
	cfg := Config{
		Topology:        topo,
		QueueModel:      LinkQueues,
		LossRate:        0.25,
		Reliable:        true,
		RetransmitAfter: 4,
		Seed:            3,
		Factory: func(n mesh.NodeID) Handler {
			return handlerFunc(func(ctx *Context, src mesh.NodeID, p Payload) {
				received[ctx.Node()]++
				if received[ctx.Node()] == 1 {
					for _, nb := range ctx.Neighbours() {
						_ = ctx.Send(nb, nil)
					}
				}
			})
		},
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Inject(0, nil); err != nil {
		t.Fatal(err)
	}
	if stats := sim.Run(); !stats.Quiescent {
		t.Fatal("lossy link-queue run did not quiesce")
	}
	for n, c := range received {
		want := topo.Degree(mesh.NodeID(n))
		if n == 0 {
			want++
		}
		if c != want {
			t.Errorf("node %d received %d, want %d", n, c, want)
		}
	}
}
