package simulator

import "testing"

func TestFifoOrderAcrossRounds(t *testing.T) {
	var q fifo
	for round := 0; round < 10; round++ {
		for i := 0; i < 100; i++ {
			q.push(Message{SentAt: int64(i)})
		}
		for i := 0; i < 100; i++ {
			m, ok := q.pop()
			if !ok {
				t.Fatal("premature empty")
			}
			if m.SentAt != int64(i) {
				t.Fatalf("FIFO order violated: got %d want %d", m.SentAt, i)
			}
		}
	}
	if q.len() != 0 {
		t.Fatalf("len = %d, want 0", q.len())
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on empty fifo returned ok")
	}
}

func TestFifoWraparound(t *testing.T) {
	// Interleaved push/pop walks head and tail around the ring repeatedly
	// without ever filling it, exercising index wrapping.
	var q fifo
	next, want := int64(0), int64(0)
	for round := 0; round < 500; round++ {
		for i := 0; i < 3; i++ {
			q.push(Message{SentAt: next})
			next++
		}
		for i := 0; i < 3; i++ {
			m, ok := q.pop()
			if !ok || m.SentAt != want {
				t.Fatalf("round %d: pop = %d,%v, want %d,true", round, m.SentAt, ok, want)
			}
			want++
		}
	}
}

func TestFifoGrowthWhileWrapped(t *testing.T) {
	// Force growth at a moment when the ring is wrapped (head mid-buffer)
	// and verify order survives the unroll.
	var q fifo
	for i := int64(0); i < 8; i++ {
		q.push(Message{SentAt: i})
	}
	for i := 0; i < 5; i++ {
		q.pop()
	}
	for i := int64(8); i < 200; i++ {
		q.push(Message{SentAt: i})
	}
	for want := int64(5); want < 200; want++ {
		m, ok := q.pop()
		if !ok || m.SentAt != want {
			t.Fatalf("pop = %d,%v, want %d,true", m.SentAt, ok, want)
		}
	}
}

func TestFifoPopDueOrdering(t *testing.T) {
	// popDue must release messages strictly in queue order, holding the
	// whole queue back while the head is still in flight — even when later
	// messages are already due.
	var q fifo
	q.push(Message{SentAt: 0, arriveAt: 5})
	q.push(Message{SentAt: 1, arriveAt: 1})
	q.push(Message{SentAt: 2, arriveAt: 0})

	for step := int64(0); step < 5; step++ {
		if m, ok := q.popDue(step); ok {
			t.Fatalf("step %d: popDue released %d before head was due", step, m.SentAt)
		}
	}
	for i := int64(0); i < 3; i++ {
		m, ok := q.popDue(5)
		if !ok || m.SentAt != i {
			t.Fatalf("popDue = %d,%v, want %d,true", m.SentAt, ok, i)
		}
	}
	if _, ok := q.popDue(5); ok {
		t.Fatal("popDue on empty fifo returned ok")
	}
}

func TestFifoSteadyStateAllocationFree(t *testing.T) {
	// Once the ring has grown to fit the working set, push/pop cycles must
	// not allocate: this is the layer-1 hot-path contract.
	var q fifo
	for i := 0; i < 64; i++ {
		q.push(Message{})
	}
	for q.len() > 0 {
		q.pop()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			q.push(Message{SentAt: int64(i)})
		}
		for q.len() > 0 {
			q.pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocated %.1f times per cycle", allocs)
	}
}
