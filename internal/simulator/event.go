package simulator

import "context"

// This file is the discrete-event engine (Config.Engine == EngineEvent, the
// default): instead of sweeping every slot on every step, it keeps an
// indexed min-queue of pending (tick, kind, slot) activations and visits
// only slots with due messages, pending handler work or in-flight link
// deliveries. Idle steps between events are skipped wholesale (or replayed
// as pure bookkeeping when a series or observer needs per-step values).
//
// Equivalence with the sweep engine is bit-exact, not approximate; the
// differential harness in internal/simulator/difftest proves it per commit.
// The engine preserves the sweep's order everywhere an order is observable:
//
//   - phases within a step run in the sweep's sequence — deliveries, ticks,
//     retransmits, outbox flushes — via the evKind ordering below;
//   - within a phase, slots are visited in ascending index order (the heap
//     orders events by tick, then kind, then slot);
//   - within a slot, link queues are visited in the active-list order the
//     sweep uses, and each queue pops in FIFO arrival order. The active
//     lists themselves evolve identically because both engines perform the
//     same activate/deactivate calls at the same ticks.
//
// A skipped step is one in which the sweep would have visited every slot
// and found nothing: no due message (every queue head's arrival time is the
// slot's next-visit key), no tick work (Ticker handlers pair with Pending,
// whose contract makes an idle Tick a no-op; Ticker-only handlers are
// rescheduled every step), no overdue retransmission (the link layer's
// earliest deadline is tracked as a single global event) and no blocked
// outbox (flush events reschedule themselves while backpressure persists).
// Skipping such a step changes no state, consumes no randomness and emits
// the same per-step bookkeeping, so the two engines cannot diverge on it.

// evKind is the within-step phase of an event, ordered exactly as the sweep
// engine's runStep phases so the heap replays a step in the same sequence.
type evKind uint8

const (
	evDeliver    evKind = iota // phase 1: pop due messages into handlers
	evTick                     // phase 2: per-step handler ticks
	evRetransmit               // phase 3: link-layer retransmit scan (global)
	evFlush                    // phase 4: outbox flush into link queues
	evKinds
)

// event is one pending activation: visit slot at tick to run phase kind.
type event struct {
	tick int64
	kind evKind
	slot int32
}

func evLess(a, b event) bool {
	if a.tick != b.tick {
		return a.tick < b.tick
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.slot < b.slot
}

// eventEngine is the indexed min-queue. sched[kind][slot] holds the tick of
// that activation's live heap entry (-1 when none), so each (kind, slot)
// pair keeps at most one live entry: schedule only ever moves a visit
// earlier, and entries superseded that way are dropped lazily on pop.
type eventEngine struct {
	s    *Simulator
	heap []event
	sched [evKinds][]int64
}

func newEventEngine(s *Simulator) *eventEngine {
	n := len(s.handlers)
	e := &eventEngine{s: s}
	for k := range e.sched {
		size := n
		if evKind(k) == evRetransmit {
			size = 1 // the retransmit scan is machine-global
		}
		ticks := make([]int64, size)
		for i := range ticks {
			ticks[i] = -1
		}
		e.sched[k] = ticks
	}
	return e
}

// schedule requests a visit of (kind, slot) at tick. A later visit already
// scheduled is pulled forward; an earlier or equal one makes this a no-op
// (that visit reschedules the follow-up itself).
func (e *eventEngine) schedule(kind evKind, slot int32, tick int64) {
	if cur := e.sched[kind][slot]; cur >= 0 && cur <= tick {
		return
	}
	e.sched[kind][slot] = tick
	e.heap = append(e.heap, event{tick: tick, kind: kind, slot: slot})
	// Sift up.
	h := e.heap
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !evLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
func (e *eventEngine) pop() event {
	h := e.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	e.heap = h[:last]
	h = e.heap
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < len(h) && evLess(h[l], h[least]) {
			least = l
		}
		if r < len(h) && evLess(h[r], h[least]) {
			least = r
		}
		if least == i {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	return top
}

// runEvent is the event engine's replacement for runSweep. The shared
// prologue in RunContext has already initialised handlers (whose sends were
// captured by the send/enqueueRaw hooks) and scheduled injected deliveries.
func (s *Simulator) runEvent(ctx context.Context) Stats {
	e := s.eng
	// Seed the tick events: Ticker-only handlers tick every step from step
	// 0; demand tickers (Ticker+Pending) only when Init left buffered work.
	for i, t := range s.tickers {
		if t == nil {
			continue
		}
		if s.pendings[i] == nil || s.pendings[i].PendingWork() {
			e.schedule(evTick, int32(i), 0)
		}
	}

	last := int64(-1) // last step simulated (idle or eventful)
	for len(e.heap) > 0 {
		t := e.heap[0].tick
		if t >= s.cfg.MaxSteps {
			break // due past the horizon: the sweep never reaches it either
		}
		if !s.idleSteps(ctx, last+1, t) || !s.pollStep(ctx, t) {
			return s.stats
		}
		s.step = t
		for len(e.heap) > 0 && e.heap[0].tick == t {
			ev := e.pop()
			if e.sched[ev.kind][ev.slot] != t {
				continue // superseded by an earlier visit: stale entry
			}
			e.sched[ev.kind][ev.slot] = -1
			switch ev.kind {
			case evDeliver:
				s.eventDeliver(int(ev.slot))
			case evTick:
				s.eventTick(int(ev.slot))
			case evRetransmit:
				s.links.retransmit(s)
				if d, ok := s.links.nextDeadline(); ok {
					e.schedule(evRetransmit, 0, d)
				}
			case evFlush:
				s.flushOutbox(int(ev.slot))
				if s.outboxes[ev.slot].len() > 0 {
					// Backpressured sends retry every step, as the sweep's
					// per-step flush phase does.
					e.schedule(evFlush, ev.slot, t+1)
				}
			}
		}
		if s.cfg.RecordSeries {
			s.stats.QueuedSeries = append(s.stats.QueuedSeries, s.inFlight)
		}
		if s.cfg.Observer != nil {
			s.cfg.Observer.AfterStep(t, s.inFlight)
		}
		if s.quiescent() {
			s.stats.Steps = t + 1
			s.stats.Quiescent = true
			return s.stats
		}
		last = t
	}

	if last < 0 && s.quiescent() {
		// Nothing was ever scheduled (no injections, no tickers, no pending
		// work). The sweep still executes step 0 before observing
		// quiescence; replay its poll and bookkeeping.
		if !s.pollStep(ctx, 0) {
			return s.stats
		}
		s.step = 0
		if s.cfg.RecordSeries {
			s.stats.QueuedSeries = append(s.stats.QueuedSeries, s.inFlight)
		}
		if s.cfg.Observer != nil {
			s.cfg.Observer.AfterStep(0, s.inFlight)
		}
		s.stats.Steps = 1
		s.stats.Quiescent = true
		return s.stats
	}

	// Work remains but nothing fires below MaxSteps (messages due at or
	// past the horizon, or pending work no tick can drain): idle through
	// the rest of the budget, as the sweep does.
	if !s.idleSteps(ctx, last+1, s.cfg.MaxSteps) {
		return s.stats
	}
	s.stats.Steps = s.cfg.MaxSteps
	s.stats.Quiescent = false
	return s.stats
}

// interrupted finalises stats for a cancellation observed before step st.
func (s *Simulator) interrupted(st int64) {
	s.stats.Steps = st
	s.stats.Quiescent = false
	s.stats.Interrupted = true
}

// pollStep is the sweep's slice-granular cancellation poll for one step,
// run before the step executes. Reports false when the run was interrupted.
func (s *Simulator) pollStep(ctx context.Context, st int64) bool {
	if st%CancelSliceSteps == 0 && ctx.Err() != nil {
		s.interrupted(st)
		return false
	}
	return true
}

// idleSteps simulates steps [from, to) in which no event fires: nothing in
// the machine can change, so only the cancellation poll and the per-step
// series/observer bookkeeping run. Stats.QueuedSeries still receives one
// entry per simulated step — idle gaps are filled with the unchanged
// in-flight count — and the observer sees every step, exactly as under the
// sweep. Reports false when a poll observed cancellation.
func (s *Simulator) idleSteps(ctx context.Context, from, to int64) bool {
	if from >= to {
		return true
	}
	if s.cfg.Observer == nil && !s.cfg.RecordSeries {
		// No per-step bookkeeping: the whole gap reduces to the poll at its
		// first CancelSliceSteps boundary (the gap is simulated in O(1)
		// real time, so later boundaries cannot observe a newer ctx state).
		first := (from + CancelSliceSteps - 1) / CancelSliceSteps * CancelSliceSteps
		if first < to && ctx.Err() != nil {
			s.interrupted(first)
			return false
		}
		s.step = to - 1
		return true
	}
	for st := from; st < to; st++ {
		if !s.pollStep(ctx, st) {
			return false
		}
		s.step = st
		if s.cfg.RecordSeries {
			s.stats.QueuedSeries = append(s.stats.QueuedSeries, s.inFlight)
		}
		if s.cfg.Observer != nil {
			s.cfg.Observer.AfterStep(st, s.inFlight)
		}
	}
	return true
}

// eventDeliver replays the sweep's phase-1 visit of one slot: pop up to
// DeliverPerStep due messages from each active link queue (snapshotting the
// active list, as the sweep does) plus all due external injections, then
// reschedule the slot's next visit from its remaining queue heads.
func (s *Simulator) eventDeliver(i int) {
	if s.cfg.QueueModel == LinkQueues {
		s.scratch = append(s.scratch[:0], s.active[i]...)
		for _, li := range s.scratch {
			q := &s.inLinks[i][li]
			for k := 0; k < s.cfg.DeliverPerStep; k++ {
				msg, ok := q.popDue(s.step)
				if !ok {
					break
				}
				s.inFlight--
				s.deliver(i, msg)
			}
			if q.len() == 0 {
				s.deactivate(i, li)
			}
		}
		for {
			msg, ok := s.extQ[i].popDue(s.step)
			if !ok {
				break
			}
			s.inFlight--
			s.deliver(i, msg)
		}
	} else {
		for k := 0; k < s.cfg.DeliverPerStep; k++ {
			msg, ok := s.extQ[i].popDue(s.step)
			if !ok {
				break
			}
			s.inFlight--
			s.deliver(i, msg)
		}
	}
	// Next visit: the earliest head arrival still queued, floored to the
	// next step — a head already due was bandwidth-limited this step.
	next := int64(-1)
	if s.cfg.QueueModel == LinkQueues {
		for _, li := range s.active[i] {
			if a, ok := s.inLinks[i][li].headArrival(); ok && (next < 0 || a < next) {
				next = a
			}
		}
	}
	if a, ok := s.extQ[i].headArrival(); ok && (next < 0 || a < next) {
		next = a
	}
	if next >= 0 {
		if next <= s.step {
			next = s.step + 1
		}
		s.eng.schedule(evDeliver, int32(i), next)
	}
	// Deliveries buffered into a demand ticker's mailbox are drained by a
	// tick in this same step (the sweep's phase 2 follows its phase 1).
	if s.tickers[i] != nil && s.pendings[i] != nil && s.pendings[i].PendingWork() {
		s.eng.schedule(evTick, int32(i), s.step)
	}
}

// eventTick replays the sweep's phase-2 visit of one slot.
func (s *Simulator) eventTick(i int) {
	s.tickers[i].Tick(&s.contexts[i])
	// Ticker-only handlers tick every step; demand tickers only while work
	// remains (budget-limited leftovers or tick-time local sends).
	if s.pendings[i] == nil || s.pendings[i].PendingWork() {
		s.eng.schedule(evTick, int32(i), s.step+1)
	}
}
