package simulator

import (
	"testing"

	"hypersolve/internal/mesh"
)

// BenchmarkFloodStep measures raw simulation throughput: a full flood of a
// 32x32 torus per iteration.
func BenchmarkFloodStep(b *testing.B) {
	topo := mesh.MustTorus(32, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim, err := New(Config{
			Topology: topo,
			Factory:  func(mesh.NodeID) Handler { return &floodHandler{} },
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.Inject(0, nil); err != nil {
			b.Fatal(err)
		}
		if stats := sim.Run(); !stats.Quiescent {
			b.Fatal("no quiescence")
		}
	}
}

// BenchmarkFloodQueueModels compares the two queue disciplines on identical
// traffic.
func BenchmarkFloodQueueModels(b *testing.B) {
	topo := mesh.MustTorus(16, 16)
	for _, model := range []QueueModel{NodeQueues, LinkQueues} {
		b.Run(model.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim, err := New(Config{
					Topology:   topo,
					QueueModel: model,
					Factory:    func(mesh.NodeID) Handler { return &floodHandler{} },
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := sim.Inject(0, nil); err != nil {
					b.Fatal(err)
				}
				sim.Run()
			}
		})
	}
}

// BenchmarkReliabilityOverhead measures the ack/retransmit protocol cost on
// lossless links (pure bookkeeping overhead).
func BenchmarkReliabilityOverhead(b *testing.B) {
	topo := mesh.MustTorus(12, 12)
	for _, reliable := range []bool{false, true} {
		name := "raw"
		if reliable {
			name = "reliable"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim, err := New(Config{
					Topology: topo,
					Reliable: reliable,
					Factory:  func(mesh.NodeID) Handler { return &floodHandler{} },
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := sim.Inject(0, nil); err != nil {
					b.Fatal(err)
				}
				sim.Run()
			}
		})
	}
}
