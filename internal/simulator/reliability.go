package simulator

import "hypersolve/internal/mesh"

// linkLayer implements the "buffering and reliability" concern of layer 1
// (paper Figure 2) as a per-link stop-and-wait-free sliding protocol:
//
//   - every application message on a (src,dst) link carries a sequence
//     number,
//   - the receiver acknowledges each sequence it delivers and suppresses
//     duplicates,
//   - the sender buffers unacknowledged messages and retransmits them after
//     a timeout.
//
// Acknowledgement frames themselves may be lost; retransmission of the data
// frame (answered by a fresh ack) recovers from that. The protocol is
// invisible to handlers: they observe exactly-once, FIFO-per-link delivery
// even over lossy links.
type linkLayer struct {
	timeout int64
	// pending holds unacknowledged in-order copies per link.
	pending map[link][]pendingMsg
	// nextSeq is the next sequence number to assign per link.
	nextSeq map[link]uint64
	// delivered is the receiver-side high-water mark of contiguously
	// delivered sequences plus a set for out-of-order arrivals.
	delivered map[link]*dedup
	// order preserves deterministic iteration over links.
	order []link
}

type link struct {
	src, dst mesh.NodeID
}

type pendingMsg struct {
	msg    Message
	sentAt int64
}

// dedup tracks which sequence numbers have been delivered on a link.
type dedup struct {
	contiguous uint64          // all seq < contiguous delivered
	sparse     map[uint64]bool // out-of-order deliveries >= contiguous
}

func (d *dedup) seen(seq uint64) bool {
	if seq < d.contiguous {
		return true
	}
	return d.sparse[seq]
}

func (d *dedup) mark(seq uint64) {
	if seq < d.contiguous {
		return
	}
	d.sparse[seq] = true
	for d.sparse[d.contiguous] {
		delete(d.sparse, d.contiguous)
		d.contiguous++
	}
}

func newLinkLayer(timeout int64) *linkLayer {
	return &linkLayer{
		timeout:   timeout,
		pending:   make(map[link][]pendingMsg),
		nextSeq:   make(map[link]uint64),
		delivered: make(map[link]*dedup),
	}
}

// onSend stamps a fresh sequence number and buffers a copy for retransmit.
func (l *linkLayer) onSend(s *Simulator, msg *Message) {
	if msg.Src == mesh.None {
		return // external injections bypass the protocol
	}
	k := link{msg.Src, msg.Dst}
	if _, ok := l.nextSeq[k]; !ok {
		l.order = append(l.order, k)
	}
	msg.seq = l.nextSeq[k]
	l.nextSeq[k] = msg.seq + 1
	l.pending[k] = append(l.pending[k], pendingMsg{msg: *msg, sentAt: s.step})
}

// onArrival filters an arrived frame. It returns true when the frame is an
// application message that should be delivered to the handler.
func (l *linkLayer) onArrival(s *Simulator, node int, msg *Message) bool {
	if msg.Src == mesh.None {
		return true
	}
	if msg.isAck {
		// Ack travels dst->src about link (src=msg.Dst... recorded fields
		// below); drop the matching pending entry.
		k := link{msg.Dst, msg.Src} // original data direction
		pend := l.pending[k]
		for i := range pend {
			if pend[i].msg.seq == msg.ackSeq {
				l.pending[k] = append(pend[:i:i], pend[i+1:]...)
				break
			}
		}
		return false
	}
	k := link{msg.Src, msg.Dst}
	d := l.delivered[k]
	if d == nil {
		d = &dedup{sparse: make(map[uint64]bool)}
		l.delivered[k] = d
	}
	dup := d.seen(msg.seq)
	if !dup {
		d.mark(msg.seq)
	}
	// Always (re-)acknowledge so lost acks get repaired.
	ack := Message{
		Src:    msg.Dst,
		Dst:    msg.Src,
		SentAt: s.step,
		isAck:  true,
		ackSeq: msg.seq,
	}
	s.enqueueRaw(ack)
	return !dup
}

// retransmit re-sends every pending message older than the timeout.
func (l *linkLayer) retransmit(s *Simulator) {
	for _, k := range l.order {
		pend := l.pending[k]
		for i := range pend {
			if s.step-pend[i].sentAt >= l.timeout {
				pend[i].sentAt = s.step
				s.stats.TotalRetransmits++
				s.enqueueRaw(pend[i].msg)
			}
		}
	}
}

// nextDeadline returns the earliest step at which any pending message
// becomes overdue (sentAt + timeout), so the event engine can schedule the
// next retransmit scan instead of scanning every step. Acknowledgements may
// remove entries after scheduling; an early scan is then a no-op, exactly
// like the sweep's per-step scan on a step with nothing overdue.
func (l *linkLayer) nextDeadline() (int64, bool) {
	var best int64
	found := false
	for _, k := range l.order {
		for i := range l.pending[k] {
			if d := l.pending[k][i].sentAt + l.timeout; !found || d < best {
				best, found = d, true
			}
		}
	}
	return best, found
}

// idle reports whether the protocol holds no unacknowledged messages.
func (l *linkLayer) idle() bool {
	for _, pend := range l.pending {
		if len(pend) > 0 {
			return false
		}
	}
	return true
}
