package simulator

import "hypersolve/internal/ringbuf"

// fifo is the message queue of the simulated machine: a power-of-two ring
// buffer with arrival-time-aware popping. Unlike its predecessor (an
// append-and-reslice slice that copy-compacted and re-zeroed its whole tail
// on every compaction), the ring reuses its backing array across the whole
// run and zeroes exactly one slot per pop, so steady-state queue traffic is
// allocation-free.
type fifo struct {
	r ringbuf.Ring[Message]
}

func (q *fifo) push(m Message) { q.r.Push(m) }

func (q *fifo) len() int { return q.r.Len() }

// pop removes the head regardless of arrival time.
func (q *fifo) pop() (Message, bool) { return q.r.Pop() }

// headArrival returns the arrival step of the head message. Arrival times
// within one queue are monotonic (constant link latency, FIFO pushes), so
// the head's is the queue's minimum — the event engine's next-visit key.
func (q *fifo) headArrival() (int64, bool) {
	head, ok := q.r.Peek()
	if !ok {
		return 0, false
	}
	return head.arriveAt, true
}

// popDue removes the head only if it has arrived by the given step.
func (q *fifo) popDue(step int64) (Message, bool) {
	head, ok := q.r.Peek()
	if !ok || head.arriveAt > step {
		return Message{}, false
	}
	return q.r.Pop()
}
