package mapping

import (
	"testing"

	"hypersolve/internal/sched"
)

// BenchmarkChoose measures per-send mapping decision cost at degree 6 (3D
// torus) and degree 255 (fully connected).
func BenchmarkChoose(b *testing.B) {
	mkView := func(deg int) View {
		nbrs := make([]sched.PID, deg)
		loads := make([]int64, deg)
		outstanding := make([]float64, deg)
		for i := range nbrs {
			nbrs[i] = sched.PID(i + 1)
			loads[i] = int64(i % 7)
		}
		return View{Neighbours: nbrs, Loads: loads, Outstanding: outstanding}
	}
	for _, deg := range []int{6, 255} {
		v := mkView(deg)
		for _, f := range []struct {
			name string
			mk   Factory
		}{
			{"rr", NewRoundRobin()},
			{"lbn", NewLeastBusy()},
			{"weighted", NewWeighted(1)},
			{"random", NewRandom()},
		} {
			algo := f.mk(0, v.Neighbours, 1)
			b.Run(f.name+"/deg-"+itoa(deg), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					algo.Choose(v)
				}
			})
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf []byte
	for v > 0 {
		buf = append([]byte{byte('0' + v%10)}, buf...)
		v /= 10
	}
	return string(buf)
}
