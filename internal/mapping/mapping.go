// Package mapping implements layer 3 of the model of Tarawneh et al. (P2S2
// 2017): mesh-level load balancing through destination-free message passing.
//
// Applications above this layer never name destination nodes. They request
// that a piece of work be delivered *somewhere* (SendWork) and the layer
// picks the destination among the node's neighbours using a pluggable
// mapping algorithm. Because messages can no longer be identified by their
// source or destination, the layer issues a unique *ticket* per work
// message; the receiver quotes the ticket to route its reply back (Reply).
//
// Activity estimation follows the paper's least-busy-neighbour design:
// every outgoing message piggybacks the sender's total received-message
// count, and each node maintains a record of the last count heard from each
// neighbour. Adaptive mappers consult these records; static mappers ignore
// them.
//
// The layer also implements the paper's cross-layer optimization hook
// (Section III-B3): senders may attach a numeric hint (e.g. estimated
// sub-problem size) that "falls through" to hint-aware mapping algorithms.
package mapping

import (
	"context"
	"fmt"

	"hypersolve/internal/mesh"
	"hypersolve/internal/sched"
	"hypersolve/internal/simulator"
)

// Ticket uniquely identifies a work message within one machine run, so that
// replies can be matched to pending requests without naming nodes.
type Ticket uint64

// NoTicket is the zero ticket, used for triggers.
const NoTicket Ticket = 0

// Kind classifies messages as seen by layer-3 applications, mirroring the
// three-way classification of the paper's Listing 2: evaluation calls,
// returned results and initialization triggers.
type Kind int

const (
	// Trigger is an external kick-start message injected by the backend.
	Trigger Kind = iota
	// Work is a new piece of work chosen for this node by the mapper.
	Work
	// Reply is a result returned for a ticket this node issued.
	Reply
	// Cancel revokes a previously sent work message: the receiver should
	// abandon the work and will not reply. Used by the speculative
	// cancellation extension of the recursion layer.
	Cancel
)

func (k Kind) String() string {
	switch k {
	case Trigger:
		return "trigger"
	case Work:
		return "work"
	case Reply:
		return "reply"
	case Cancel:
		return "cancel"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// App is the layer-3 application interface: receive handlers observe a
// ticket in place of a sender identity.
type App interface {
	Init(ctx *Context)
	Recv(ctx *Context, ticket Ticket, kind Kind, payload any)
}

// AppFactory builds the application instance for one process.
type AppFactory func(p sched.PID) App

// View is the information a mapping algorithm may consult when choosing a
// destination. Slices are indexed by neighbour position (aligned with the
// node's neighbour list) and must not be modified.
type View struct {
	// Self is the choosing process.
	Self sched.PID
	// Neighbours lists candidate destinations.
	Neighbours []sched.PID
	// Loads holds the last piggybacked received-message count heard from
	// each neighbour (zero when nothing has been heard yet).
	Loads []int64
	// Outstanding accumulates hint weight optimistically assigned to each
	// neighbour since its last load update.
	Outstanding []float64
	// Hint is the cross-layer hint attached to the message being mapped
	// (zero when absent).
	Hint float64
	// Step is the current simulation step.
	Step int64
}

// Algorithm is a per-node mapping policy instance. Choose returns the index
// into View.Neighbours of the selected destination.
type Algorithm interface {
	Name() string
	Choose(v View) int
}

// Factory builds a per-node Algorithm. The seed parameter derives from the
// machine seed and the node ID, keeping randomized mappers deterministic.
type Factory func(self sched.PID, nbrs []sched.PID, seed int64) Algorithm

// Config assembles a mapped cluster.
type Config struct {
	// Physical is the hardware interconnect.
	Physical mesh.Topology
	// ProcsPerNode, ActivationsPerStep and Policy configure layer 2.
	ProcsPerNode       int
	ActivationsPerStep int
	Policy             sched.Policy
	// Mapper builds the mapping algorithm for each node.
	Mapper Factory
	// Factory builds the layer-3 application for each process.
	Factory AppFactory
	// Seed drives mapper randomness.
	Seed int64
	// Sim carries layer-1 options.
	Sim simulator.Config
}

// Network is a simulated machine with layers 1-3 installed.
type Network struct {
	cluster  *sched.Cluster
	runtimes []*runtime
}

// New builds the network.
func New(cfg Config) (*Network, error) {
	if cfg.Mapper == nil {
		return nil, fmt.Errorf("mapping: Config.Mapper is nil")
	}
	if cfg.Factory == nil {
		return nil, fmt.Errorf("mapping: Config.Factory is nil")
	}
	n := &Network{}
	cluster, err := sched.New(sched.Config{
		Physical:           cfg.Physical,
		ProcsPerNode:       cfg.ProcsPerNode,
		ActivationsPerStep: cfg.ActivationsPerStep,
		Policy:             cfg.Policy,
		Sim:                cfg.Sim,
		Factory: func(p sched.PID) sched.Process {
			rt := newRuntime(n, p, cfg)
			for int(p) >= len(n.runtimes) {
				n.runtimes = append(n.runtimes, nil)
			}
			n.runtimes[int(p)] = rt
			return rt
		},
	})
	if err != nil {
		return nil, err
	}
	n.cluster = cluster
	return n, nil
}

// Cluster exposes the underlying layer-2 cluster.
func (n *Network) Cluster() *sched.Cluster { return n.cluster }

// Virtual returns the process-level topology.
func (n *Network) Virtual() mesh.Topology { return n.cluster.Virtual() }

// App returns the application instance behind a PID.
func (n *Network) App(p sched.PID) App { return n.runtimes[int(p)].app }

// ReceivedPerProcess returns the layer-3 received-message count per PID —
// the quantity least-busy-neighbour mapping piggybacks, and the node
// activity metric of the paper's Figure 5 heatmaps.
func (n *Network) ReceivedPerProcess() []int64 {
	out := make([]int64, len(n.runtimes))
	for i, rt := range n.runtimes {
		out[i] = rt.received
	}
	return out
}

// Trigger queues an external trigger message for a PID.
func (n *Network) Trigger(dst sched.PID, payload any) error {
	return n.cluster.Inject(dst, envelope{Kind: Trigger, Payload: payload})
}

// Run executes the simulation to quiescence.
func (n *Network) Run() simulator.Stats { return n.cluster.Run() }

// RunContext is Run with cooperative cancellation; see
// simulator.RunContext for the slice-granular polling contract.
func (n *Network) RunContext(ctx context.Context) simulator.Stats { return n.cluster.RunContext(ctx) }

// envelope is the layer-3 wire format.
type envelope struct {
	Kind     Kind
	Ticket   Ticket
	Activity int64 // sender's total received count (piggybacked)
	Hint     float64
	Payload  any
}

// runtime is the per-process layer-3 engine: it owns the ticket table,
// activity records and the mapping algorithm instance, and adapts the
// user-facing App to the layer-2 Process interface.
type runtime struct {
	net  *Network
	self sched.PID
	app  App
	algo Algorithm

	nbrs        []sched.PID
	nbrIndex    map[sched.PID]int
	loads       []int64
	outstanding []float64

	received  int64
	nextSeq   uint64
	ticketSrc map[Ticket]sched.PID // incoming work ticket -> requester
	sentTo    map[Ticket]sched.PID // outgoing work ticket -> destination
	initDone  bool

	// Captured at construction, consumed in Init once the neighbour list
	// is known.
	mapperSeed    int64
	mapperFactory Factory
}

func newRuntime(net *Network, p sched.PID, cfg Config) *runtime {
	rt := &runtime{net: net, self: p, app: cfg.Factory(p)}
	if rt.app == nil {
		panic(fmt.Sprintf("mapping: app factory returned nil for pid %d", p))
	}
	rt.ticketSrc = make(map[Ticket]sched.PID)
	rt.sentTo = make(map[Ticket]sched.PID)
	// Neighbour-aligned state is completed lazily in Init when the layer-2
	// context (and thus the virtual topology view) is available.
	rt.mapperSeed = cfg.Seed
	rt.mapperFactory = cfg.Mapper
	return rt
}

func (rt *runtime) Init(ctx *sched.Context) {
	rt.nbrs = ctx.Neighbours()
	rt.nbrIndex = make(map[sched.PID]int, len(rt.nbrs))
	for i, nb := range rt.nbrs {
		rt.nbrIndex[nb] = i
	}
	rt.loads = make([]int64, len(rt.nbrs))
	rt.outstanding = make([]float64, len(rt.nbrs))
	rt.algo = rt.mapperFactory(rt.self, rt.nbrs, rt.mapperSeed^int64(rt.self)*0x9E3779B9)
	rt.initDone = true
	rt.app.Init(&Context{rt: rt, sctx: ctx})
}

func (rt *runtime) Receive(ctx *sched.Context, src sched.PID, payload any) {
	env, ok := payload.(envelope)
	if !ok {
		panic(fmt.Sprintf("mapping: pid %d received non-envelope payload %T", rt.self, payload))
	}
	rt.received++
	if src != sched.NonePID {
		if idx, ok := rt.nbrIndex[src]; ok {
			rt.loads[idx] = env.Activity
			rt.outstanding[idx] = 0 // fresh information supersedes optimism
		}
	}
	mctx := &Context{rt: rt, sctx: ctx}
	switch env.Kind {
	case Trigger:
		rt.app.Recv(mctx, NoTicket, Trigger, env.Payload)
	case Work:
		rt.ticketSrc[env.Ticket] = src
		rt.app.Recv(mctx, env.Ticket, Work, env.Payload)
	case Reply:
		delete(rt.sentTo, env.Ticket)
		rt.app.Recv(mctx, env.Ticket, Reply, env.Payload)
	case Cancel:
		// The requester revoked this work; it no longer expects a reply.
		delete(rt.ticketSrc, env.Ticket)
		rt.app.Recv(mctx, env.Ticket, Cancel, env.Payload)
	default:
		panic(fmt.Sprintf("mapping: pid %d received unknown kind %v", rt.self, env.Kind))
	}
}

// Context is the per-process layer-3 API surface.
type Context struct {
	rt   *runtime
	sctx *sched.Context
}

// Self returns the process's PID.
func (c *Context) Self() sched.PID { return c.rt.self }

// Step returns the current simulation step.
func (c *Context) Step() int64 { return c.sctx.Step() }

// Degree returns the number of candidate destinations this node maps onto.
func (c *Context) Degree() int { return len(c.rt.nbrs) }

// SendOption customises a work send.
type SendOption func(*sendOpts)

type sendOpts struct {
	hint float64
}

// WithHint attaches a cross-layer hint (e.g. estimated sub-problem size) to
// the work message; hint-aware mappers bias placement with it (paper
// Section III-B3).
func WithHint(h float64) SendOption {
	return func(o *sendOpts) { o.hint = h }
}

// SendWork maps a new piece of work onto a neighbour chosen by the mapping
// algorithm and returns the ticket that will identify its reply.
func (c *Context) SendWork(payload any, opts ...SendOption) (Ticket, error) {
	rt := c.rt
	var o sendOpts
	for _, opt := range opts {
		opt(&o)
	}
	if len(rt.nbrs) == 0 {
		return NoTicket, fmt.Errorf("mapping: pid %d has no neighbours to map work onto", rt.self)
	}
	view := View{
		Self:        rt.self,
		Neighbours:  rt.nbrs,
		Loads:       rt.loads,
		Outstanding: rt.outstanding,
		Hint:        o.hint,
		Step:        c.sctx.Step(),
	}
	idx := rt.algo.Choose(view)
	if idx < 0 || idx >= len(rt.nbrs) {
		return NoTicket, fmt.Errorf("mapping: algorithm %s chose out-of-range index %d", rt.algo.Name(), idx)
	}
	dst := rt.nbrs[idx]
	rt.nextSeq++
	ticket := Ticket(uint64(rt.self)<<24 | rt.nextSeq&0xFFFFFF)
	weight := o.hint
	if weight <= 0 {
		weight = 1
	}
	rt.outstanding[idx] += weight
	env := envelope{Kind: Work, Ticket: ticket, Activity: rt.received, Hint: o.hint, Payload: payload}
	if err := c.sctx.Send(dst, env); err != nil {
		return NoTicket, err
	}
	rt.sentTo[ticket] = dst
	return ticket, nil
}

// Cancel revokes work this node previously mapped out. The receiver drops
// the work (and recursively cancels its own subcalls, at the recursion
// layer); no reply will arrive for the ticket. Cancelling a ticket whose
// reply has already been received returns an error.
func (c *Context) Cancel(ticket Ticket) error {
	rt := c.rt
	dst, ok := rt.sentTo[ticket]
	if !ok {
		return fmt.Errorf("mapping: pid %d cancelling unknown ticket %d", rt.self, ticket)
	}
	delete(rt.sentTo, ticket)
	env := envelope{Kind: Cancel, Ticket: ticket, Activity: rt.received}
	return c.sctx.Send(dst, env)
}

// Reply returns a result for a work ticket to whichever node issued it.
func (c *Context) Reply(ticket Ticket, payload any) error {
	rt := c.rt
	src, ok := rt.ticketSrc[ticket]
	if !ok {
		return fmt.Errorf("mapping: pid %d replying to unknown ticket %d", rt.self, ticket)
	}
	delete(rt.ticketSrc, ticket)
	env := envelope{Kind: Reply, Ticket: ticket, Activity: rt.received, Payload: payload}
	return c.sctx.Send(src, env)
}

// Received returns this process's total received-message count (the
// quantity piggybacked for activity estimation).
func (c *Context) Received() int64 { return c.rt.received }
