package mapping

import (
	"testing"

	"hypersolve/internal/mesh"
	"hypersolve/internal/sched"
)

// sumApp is the paper's Listing 2: a message-passing implementation of
// sum(n) = n + sum(n-1) using tickets instead of node identities. Where the
// listing stores a single Continue(ticket, n) state for brevity, this
// version keeps a table of continuations keyed by the issued subcall
// ticket, so a node can host several in-flight frames at once (the general
// form the paper's ticket mechanism supports).
type sumApp struct {
	conts map[Ticket]sumCont
	done  bool
	total int
}

type sumCont struct {
	parent Ticket // ticket to quote when forwarding the result
	n      int    // value to add to the subcall result
	isRoot bool   // true for the trigger-issued call
}

type sumCall struct{ N int }
type sumResult struct{ Total int }

func (s *sumApp) Init(ctx *Context) { s.conts = make(map[Ticket]sumCont) }

func (s *sumApp) Recv(ctx *Context, ticket Ticket, kind Kind, payload any) {
	switch kind {
	case Trigger:
		n := payload.(int)
		sub, err := ctx.SendWork(sumCall{N: n})
		if err != nil {
			panic(err)
		}
		s.conts[sub] = sumCont{isRoot: true}
	case Work:
		call := payload.(sumCall)
		if call.N < 1 {
			if err := ctx.Reply(ticket, sumResult{Total: 0}); err != nil {
				panic(err)
			}
			return
		}
		sub, err := ctx.SendWork(sumCall{N: call.N - 1})
		if err != nil {
			panic(err)
		}
		s.conts[sub] = sumCont{parent: ticket, n: call.N}
	case Reply:
		res := payload.(sumResult)
		cont, ok := s.conts[ticket]
		if !ok {
			panic("reply for unknown continuation")
		}
		delete(s.conts, ticket)
		if cont.isRoot {
			s.done = true
			s.total = res.Total
			return
		}
		if err := ctx.Reply(cont.parent, sumResult{Total: res.Total + cont.n}); err != nil {
			panic(err)
		}
	}
}

func newSumNetwork(t *testing.T, topo mesh.Topology, mapper Factory) *Network {
	t.Helper()
	net, err := New(Config{
		Physical: topo,
		Mapper:   mapper,
		Factory:  func(p sched.PID) App { return &sumApp{} },
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestListing2SumOnTorus(t *testing.T) {
	for _, mapper := range []Factory{NewRoundRobin(), NewLeastBusy(), NewRandom(), NewWeighted(1)} {
		net := newSumNetwork(t, mesh.MustTorus(6, 6), mapper)
		if err := net.Trigger(0, 10); err != nil {
			t.Fatal(err)
		}
		stats := net.Run()
		if !stats.Quiescent {
			t.Fatal("sum run did not quiesce")
		}
		root := net.App(0).(*sumApp)
		if !root.done {
			t.Fatalf("root never received the final result")
		}
		if root.total != 55 {
			t.Errorf("sum(10) = %d, want 55", root.total)
		}
	}
}

func TestListing2SumVariousN(t *testing.T) {
	for _, n := range []int{0, 1, 5, 17} {
		net := newSumNetwork(t, mesh.MustTorus(8, 8), NewRoundRobin())
		if err := net.Trigger(0, n); err != nil {
			t.Fatal(err)
		}
		net.Run()
		root := net.App(0).(*sumApp)
		want := n * (n + 1) / 2
		if !root.done || root.total != want {
			t.Errorf("sum(%d) = %d (done=%v), want %d", n, root.total, root.done, want)
		}
	}
}

func TestTicketsUniquePerSender(t *testing.T) {
	// Drive SendWork repeatedly from one app and check ticket uniqueness.
	seen := make(map[Ticket]bool)
	app := appFunc(func(ctx *Context, ticket Ticket, kind Kind, payload any) {
		if kind != Trigger {
			return
		}
		for i := 0; i < 100; i++ {
			tk, err := ctx.SendWork(sumCall{N: 0})
			if err != nil {
				panic(err)
			}
			if seen[tk] {
				panic("duplicate ticket")
			}
			seen[tk] = true
		}
	})
	sink := appFunc(func(ctx *Context, ticket Ticket, kind Kind, payload any) {})
	net, err := New(Config{
		Physical: mesh.MustFullyConnected(4),
		Mapper:   NewRoundRobin(),
		Factory: func(p sched.PID) App {
			if p == 0 {
				return app
			}
			return sink
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Trigger(0, nil); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if len(seen) != 100 {
		t.Fatalf("issued %d unique tickets, want 100", len(seen))
	}
}

// appFunc adapts a function to App.
type appFunc func(ctx *Context, ticket Ticket, kind Kind, payload any)

func (f appFunc) Init(ctx *Context) {}
func (f appFunc) Recv(ctx *Context, ticket Ticket, kind Kind, payload any) {
	f(ctx, ticket, kind, payload)
}

func TestReplyToUnknownTicketErrors(t *testing.T) {
	var replyErr error
	net, err := New(Config{
		Physical: mesh.MustFullyConnected(2),
		Mapper:   NewRoundRobin(),
		Factory: func(p sched.PID) App {
			return appFunc(func(ctx *Context, ticket Ticket, kind Kind, payload any) {
				if kind == Trigger {
					replyErr = ctx.Reply(Ticket(999), nil)
				}
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Trigger(0, nil); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if replyErr == nil {
		t.Error("expected unknown-ticket reply error")
	}
}

func TestReplyTicketConsumedOnce(t *testing.T) {
	// The worker replies twice to the same ticket; the second must fail.
	var second error
	worker := appFunc(func(ctx *Context, ticket Ticket, kind Kind, payload any) {
		if kind == Work {
			if err := ctx.Reply(ticket, 1); err != nil {
				panic(err)
			}
			second = ctx.Reply(ticket, 2)
		}
	})
	root := appFunc(func(ctx *Context, ticket Ticket, kind Kind, payload any) {
		if kind == Trigger {
			if _, err := ctx.SendWork(nil); err != nil {
				panic(err)
			}
		}
	})
	net, err := New(Config{
		Physical: mesh.MustFullyConnected(2),
		Mapper:   NewRoundRobin(),
		Factory: func(p sched.PID) App {
			if p == 0 {
				return root
			}
			return worker
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Trigger(0, nil); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if second == nil {
		t.Error("expected second reply to fail")
	}
}

func TestRoundRobinCyclesThroughNeighbours(t *testing.T) {
	rr := NewRoundRobin()(0, nil, 0)
	v := View{Neighbours: []sched.PID{10, 20, 30}}
	got := []int{rr.Choose(v), rr.Choose(v), rr.Choose(v), rr.Choose(v)}
	want := []int{0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("choices = %v, want %v", got, want)
		}
	}
}

func TestLeastBusyPicksMinimum(t *testing.T) {
	lb := NewLeastBusy()(0, nil, 0)
	v := View{
		Neighbours: []sched.PID{10, 20, 30, 40},
		Loads:      []int64{5, 2, 7, 2},
	}
	if got := lb.Choose(v); got != 1 {
		t.Errorf("Choose = %d, want 1 (first minimum from cursor 0)", got)
	}
	// Ties rotate: the next choice under the same loads is the other
	// minimum, index 3.
	if got := lb.Choose(v); got != 3 {
		t.Errorf("second Choose = %d, want 3 (tie rotation)", got)
	}
	// Non-tied minimum is always taken regardless of cursor.
	v.Loads = []int64{5, 9, 7, 2}
	if got := lb.Choose(v); got != 3 {
		t.Errorf("third Choose = %d, want 3 (unique minimum)", got)
	}
}

func TestLeastBusyColdStartDegradesToRoundRobin(t *testing.T) {
	// With no activity heard yet (all counts zero) the tie rotation makes
	// least-busy behave like round-robin instead of herding onto one
	// neighbour.
	lb := NewLeastBusy()(0, nil, 0)
	v := View{
		Neighbours: []sched.PID{10, 20, 30},
		Loads:      []int64{0, 0, 0},
	}
	want := []int{0, 1, 2, 0, 1}
	for i, w := range want {
		if got := lb.Choose(v); got != w {
			t.Fatalf("cold-start choice %d = %d, want %d", i, got, w)
		}
	}
}

func TestRandomMapperDeterministicPerSeed(t *testing.T) {
	mk := func() []int {
		rm := NewRandom()(0, nil, 42)
		v := View{Neighbours: []sched.PID{1, 2, 3, 4, 5}}
		out := make([]int, 20)
		for i := range out {
			out[i] = rm.Choose(v)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random mapper not deterministic for equal seeds")
		}
	}
	spread := map[int]bool{}
	for _, c := range a {
		spread[c] = true
	}
	if len(spread) < 2 {
		t.Error("random mapper never varied its choice across 20 draws")
	}
}

func TestWeightedAvoidsOptimisticallyLoadedNeighbour(t *testing.T) {
	w := NewWeighted(1)(0, nil, 0)
	v := View{
		Neighbours:  []sched.PID{10, 20},
		Loads:       []int64{3, 3},
		Outstanding: []float64{5, 0},
	}
	if got := w.Choose(v); got != 1 {
		t.Errorf("Choose = %d, want 1 (index 0 has outstanding weight)", got)
	}
}

func TestOutstandingResetsOnFreshActivity(t *testing.T) {
	// After assigning work to a neighbour, its outstanding weight is
	// non-zero; once a message arrives from it, the weight resets.
	var view0, view1 View
	probe := &probeAlgo{}
	root := appFunc(func(ctx *Context, ticket Ticket, kind Kind, payload any) {
		switch kind {
		case Trigger:
			if _, err := ctx.SendWork(nil); err != nil {
				panic(err)
			}
			view0 = snapshotView(ctx)
		case Reply:
			view1 = snapshotView(ctx)
		}
	})
	worker := appFunc(func(ctx *Context, ticket Ticket, kind Kind, payload any) {
		if kind == Work {
			if err := ctx.Reply(ticket, nil); err != nil {
				panic(err)
			}
		}
	})
	net, err := New(Config{
		Physical: mesh.MustFullyConnected(2),
		Mapper: func(self sched.PID, nbrs []sched.PID, seed int64) Algorithm {
			return probe
		},
		Factory: func(p sched.PID) App {
			if p == 0 {
				return root
			}
			return worker
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Trigger(0, nil); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if len(view0.Outstanding) != 1 || view0.Outstanding[0] != 1 {
		t.Errorf("outstanding after send = %v, want [1]", view0.Outstanding)
	}
	if len(view1.Outstanding) != 1 || view1.Outstanding[0] != 0 {
		t.Errorf("outstanding after reply = %v, want [0]", view1.Outstanding)
	}
}

// probeAlgo always picks index 0.
type probeAlgo struct{}

func (*probeAlgo) Name() string      { return "probe" }
func (*probeAlgo) Choose(v View) int { return 0 }

func snapshotView(ctx *Context) View {
	rt := ctx.rt
	return View{
		Loads:       append([]int64(nil), rt.loads...),
		Outstanding: append([]float64(nil), rt.outstanding...),
	}
}

func TestActivityPiggybackUpdatesLoads(t *testing.T) {
	// Root sends work to the single neighbour; the reply carries the
	// worker's received count (1), which updates root's load record.
	var after View
	root := appFunc(func(ctx *Context, ticket Ticket, kind Kind, payload any) {
		switch kind {
		case Trigger:
			if _, err := ctx.SendWork(nil); err != nil {
				panic(err)
			}
		case Reply:
			after = snapshotView(ctx)
		}
	})
	worker := appFunc(func(ctx *Context, ticket Ticket, kind Kind, payload any) {
		if kind == Work {
			if err := ctx.Reply(ticket, nil); err != nil {
				panic(err)
			}
		}
	})
	net, err := New(Config{
		Physical: mesh.MustFullyConnected(2),
		Mapper:   NewRoundRobin(),
		Factory: func(p sched.PID) App {
			if p == 0 {
				return root
			}
			return worker
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Trigger(0, nil); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if len(after.Loads) != 1 || after.Loads[0] != 1 {
		t.Errorf("loads after reply = %v, want [1]", after.Loads)
	}
}

func TestRegistry(t *testing.T) {
	for _, spec := range []string{"rr", "rr-stagger", "lbn", "random", "weighted", "weighted:2.5", "ideal"} {
		f, err := Registry(spec)
		if err != nil {
			t.Errorf("Registry(%q): %v", spec, err)
			continue
		}
		algo := f(0, nil, 1)
		if algo == nil {
			t.Errorf("Registry(%q) factory returned nil", spec)
		}
	}
	for _, spec := range []string{"", "bogus", "weighted:xx"} {
		if _, err := Registry(spec); err == nil {
			t.Errorf("Registry(%q): expected error", spec)
		}
	}
	if len(MapperNames()) != 6 {
		t.Errorf("MapperNames = %v", MapperNames())
	}
}

func TestKindString(t *testing.T) {
	if Trigger.String() != "trigger" || Work.String() != "work" || Reply.String() != "reply" {
		t.Error("kind names wrong")
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind should format")
	}
}

func TestConfigValidation(t *testing.T) {
	base := Config{Physical: mesh.MustRing(4)}
	if _, err := New(base); err == nil {
		t.Error("expected error for missing mapper")
	}
	base.Mapper = NewRoundRobin()
	if _, err := New(base); err == nil {
		t.Error("expected error for missing factory")
	}
}

func TestReceivedPerProcess(t *testing.T) {
	net := newSumNetwork(t, mesh.MustTorus(4, 4), NewRoundRobin())
	if err := net.Trigger(0, 8); err != nil {
		t.Fatal(err)
	}
	net.Run()
	counts := net.ReceivedPerProcess()
	var total int64
	for _, c := range counts {
		total += c
	}
	// sum(8): 1 trigger + 9 calls + 9 replies = 19 mapping-layer receives.
	if total != 19 {
		t.Errorf("total received = %d, want 19", total)
	}
}
