package mapping

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync/atomic"

	"hypersolve/internal/sched"
)

// This file provides the mapping algorithms evaluated in the paper plus two
// extensions:
//
//   - RoundRobin   (paper, static): sub-problems go to adjacent cores in
//     circular order.
//   - LeastBusy    (paper, adaptive): sub-problems go to the neighbour with
//     the smallest piggybacked received-message count.
//   - Random       (extension, static): uniform random neighbour, the
//     classic randomized work-distribution baseline.
//   - Weighted     (extension, adaptive): least-busy scoring that adds the
//     hint weight of work optimistically assigned since the neighbour's
//     last activity update — the cross-layer optimization of the paper's
//     Section III-B3.

// NewRoundRobin returns the paper's static mapper: it cycles through the
// neighbour list in circular order, ignoring activity information. Every
// node starts its cycle at neighbour index 0, the naive reading of the
// paper's rule; see NewStaggeredRoundRobin for the de-phased variant.
func NewRoundRobin() Factory {
	return func(self sched.PID, nbrs []sched.PID, seed int64) Algorithm {
		return &roundRobin{name: "rr"}
	}
}

// NewStaggeredRoundRobin returns round-robin with each node's cycle offset
// by its PID, so nodes do not choose in lockstep. Without the stagger every
// node's first sub-problem goes to its lowest-numbered neighbour, which
// turns the low-index region into a hotspot on dense topologies — an
// implementation detail with measurable impact (ablation A7).
func NewStaggeredRoundRobin() Factory {
	return func(self sched.PID, nbrs []sched.PID, seed int64) Algorithm {
		rr := &roundRobin{name: "rr-stagger"}
		if len(nbrs) > 0 {
			rr.cursor = int(self) % len(nbrs)
		}
		return rr
	}
}

type roundRobin struct {
	name   string
	cursor int
}

func (r *roundRobin) Name() string { return r.name }

func (r *roundRobin) Choose(v View) int {
	idx := r.cursor % len(v.Neighbours)
	r.cursor = (r.cursor + 1) % len(v.Neighbours)
	return idx
}

// NewGlobalRoundRobin returns an *idealised* mapper that spreads work with
// one round-robin cursor shared by every node in the machine — perfect
// global coordination that no physical hyperspace computer could implement
// without global communication. It exists to model the paper's
// fully-connected baseline ("fully-connected machines under the same
// assumptions", Section V-A), where the interesting quantity is the
// machine's ideal behaviour, not a realisable mapping algorithm. On
// non-complete topologies it still only picks among the node's own
// neighbours (cursor modulo degree).
//
// The cursor is shared by every machine built from one factory, so
// machines meant to run concurrently must each get their own factory
// (core.Config.FreshMapper; experiments.Series.Mapper). The counter is
// atomic, which keeps even a shared-factory misuse memory-safe — merely
// nondeterministic.
func NewGlobalRoundRobin() Factory {
	shared := new(atomic.Int64)
	return func(self sched.PID, nbrs []sched.PID, seed int64) Algorithm {
		return &globalRR{cursor: shared}
	}
}

type globalRR struct {
	cursor *atomic.Int64
}

func (g *globalRR) Name() string { return "ideal" }

func (g *globalRR) Choose(v View) int {
	return int((g.cursor.Add(1) - 1) % int64(len(v.Neighbours)))
}

// NewLeastBusy returns the paper's adaptive mapper: choose the neighbour
// with the smallest last-heard received-message count. The paper does not
// specify tie-breaking; this implementation rotates round-robin among the
// tied minima, so a cold-started node (all counts zero) degrades gracefully
// to round-robin instead of herding every sub-problem onto one neighbour.
// Once counts differentiate, work flows down the activity gradient — away
// from the busy region — which is the spatial-unfolding advantage the
// paper's Figure 5 visualises.
func NewLeastBusy() Factory {
	return func(self sched.PID, nbrs []sched.PID, seed int64) Algorithm {
		return &leastBusy{}
	}
}

type leastBusy struct {
	cursor int
}

func (*leastBusy) Name() string { return "lbn" }

func (lb *leastBusy) Choose(v View) int {
	min := v.Loads[0]
	for _, l := range v.Loads[1:] {
		if l < min {
			min = l
		}
	}
	// Pick the first minimum at or after the cursor, circularly.
	n := len(v.Loads)
	for i := 0; i < n; i++ {
		idx := (lb.cursor + i) % n
		if v.Loads[idx] == min {
			lb.cursor = (idx + 1) % n
			return idx
		}
	}
	return 0 // unreachable: min always exists
}

// NewRandom returns a mapper choosing a uniformly random neighbour from a
// per-node deterministic stream.
func NewRandom() Factory {
	return func(self sched.PID, nbrs []sched.PID, seed int64) Algorithm {
		return &randomMapper{rng: rand.New(rand.NewSource(seed))}
	}
}

type randomMapper struct {
	rng *rand.Rand
}

func (r *randomMapper) Name() string { return "random" }

func (r *randomMapper) Choose(v View) int {
	return r.rng.Intn(len(v.Neighbours))
}

// NewWeighted returns the hint-aware adaptive mapper. Each neighbour is
// scored as
//
//	score = lastHeardLoad + alpha * outstandingHintWeight
//
// where outstandingHintWeight sums the hints of work this node assigned to
// that neighbour since its last activity update (each hint defaults to 1
// when absent). The optimistic term corrects the staleness that makes plain
// least-busy herd onto one neighbour; alpha scales how strongly.
func NewWeighted(alpha float64) Factory {
	return func(self sched.PID, nbrs []sched.PID, seed int64) Algorithm {
		return weighted{alpha: alpha}
	}
}

type weighted struct {
	alpha float64
}

func (w weighted) Name() string { return "weighted" }

func (w weighted) Choose(v View) int {
	best, bestScore := 0, score(v, 0, w.alpha)
	for i := 1; i < len(v.Loads); i++ {
		if s := score(v, i, w.alpha); s < bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

func score(v View, i int, alpha float64) float64 {
	return float64(v.Loads[i]) + alpha*v.Outstanding[i]
}

// Registry maps mapper spec strings to factories:
//
//	rr            round-robin (paper, static)
//	rr-stagger    round-robin with per-node phase offsets
//	lbn           least-busy-neighbour (paper, adaptive)
//	random        uniform random
//	weighted      hint-aware least-busy with default alpha=1
//	weighted:2.5  hint-aware least-busy with explicit alpha
//	ideal         globally coordinated round-robin (idealised baseline)
func Registry(spec string) (Factory, error) {
	name, arg, hasArg := strings.Cut(spec, ":")
	switch name {
	case "rr":
		return NewRoundRobin(), nil
	case "rr-stagger":
		return NewStaggeredRoundRobin(), nil
	case "lbn":
		return NewLeastBusy(), nil
	case "random":
		return NewRandom(), nil
	case "ideal":
		return NewGlobalRoundRobin(), nil
	case "weighted":
		alpha := 1.0
		if hasArg {
			if _, err := fmt.Sscanf(arg, "%g", &alpha); err != nil {
				return nil, fmt.Errorf("mapping: bad weighted alpha %q", arg)
			}
		}
		return NewWeighted(alpha), nil
	default:
		return nil, fmt.Errorf("mapping: unknown mapper %q (want rr|rr-stagger|lbn|random|weighted[:alpha]|ideal)", spec)
	}
}

// MapperNames returns the registry's spec names, sorted, for CLI help text.
func MapperNames() []string {
	names := []string{"rr", "rr-stagger", "lbn", "random", "weighted", "ideal"}
	sort.Strings(names)
	return names
}
