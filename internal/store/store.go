// Package store is the persistence layer of the solve service: a pluggable
// job store tracking every job through the queued → running →
// done/failed/cancelled lifecycle. Two backends implement the Store
// interface — Memory, the original in-process map, and File, a durable
// backend built on an append-only JSONL write-ahead journal with periodic
// snapshot compaction, so a hypersolved daemon can be SIGKILLed and
// restarted on the same data directory without losing job history or
// queued work.
//
// The store deliberately knows nothing about job specs or results beyond
// their JSON encodings (json.RawMessage): internal/service owns the typed
// shapes, the store owns identity, lifecycle and retention. That keeps the
// dependency one-way and makes the journal format independent of the spec
// format.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// State is a job's lifecycle stage.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// ParseState validates a wire-format state name (the HTTP list filter).
func ParseState(name string) (State, error) {
	switch st := State(name); st {
	case StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
		return st, nil
	}
	return "", fmt.Errorf("store: unknown state %q (want queued|running|done|failed|cancelled)", name)
}

// Job is the persisted record of one solve: the spec and result as raw
// JSON, the lifecycle state and its timestamps. Stores hand out copies,
// never aliases into their internal maps.
type Job struct {
	ID          int64           `json:"id"`
	Spec        json.RawMessage `json:"spec"`
	State       State           `json:"state"`
	SubmittedAt time.Time       `json:"submitted_at"`
	StartedAt   time.Time       `json:"started_at,omitzero"`
	FinishedAt  time.Time       `json:"finished_at,omitzero"`
	Error       string          `json:"error,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
	// Trace is the job's span timeline as opaque JSON (internal/tracelog
	// owns the format). The service writes an initial timeline at submit
	// and the full one at finish, so traces survive crash recovery and
	// ride the replication feed to standbys.
	Trace json.RawMessage `json:"trace,omitempty"`
	// Attempts is the job's portfolio attempt ledger as opaque JSON
	// (internal/service owns the format: per-strategy attempt records plus
	// the winner). Like Trace it is journaled on its own record, so attempt
	// history survives crash recovery and rides the replication feed.
	Attempts json.RawMessage `json:"attempts,omitempty"`
}

// Sentinel errors of the lifecycle transitions.
var (
	ErrNotFound  = errors.New("store: no such job")
	ErrNotQueued = errors.New("store: job not queued")
	ErrTerminal  = errors.New("store: job already terminal")
	ErrClosed    = errors.New("store: closed")
)

// Store tracks jobs through their lifecycle. Implementations are safe for
// concurrent use; the service additionally serialises all mutations behind
// its own lock, so backends never see racing transitions for one job.
type Store interface {
	// Submit assigns the next monotonic ID and records a new queued job.
	Submit(spec json.RawMessage, at time.Time) (Job, error)
	// Start moves a queued job to running.
	Start(id int64, at time.Time) error
	// Finish moves a non-terminal job to the given terminal state,
	// recording the error message and result payload. It returns the IDs
	// of any terminal jobs evicted to respect the retention bound, so
	// callers can drop their own per-job caches.
	Finish(id int64, state State, at time.Time, errMsg string, result json.RawMessage) (evicted []int64, err error)
	// SetTrace attaches (or replaces) a job's trace timeline. The blob is
	// opaque to the store; durable backends journal it like any other
	// transition so it replicates and survives restarts.
	SetTrace(id int64, trace json.RawMessage) error
	// SetAttempts attaches (or replaces) a job's portfolio attempt ledger.
	// Last writer wins, valid in any state, journaled and replicated like
	// SetTrace.
	SetAttempts(id int64, attempts json.RawMessage) error
	// Get returns a snapshot of one job.
	Get(id int64) (Job, bool)
	// List returns snapshots ordered by ID, optionally filtered to the
	// given states (no states = all jobs).
	List(states ...State) []Job
	// Close releases backend resources. Jobs are not transitioned: on a
	// durable backend, whatever is non-terminal at Close (or at a crash)
	// is re-queued by the next Open.
	Close() error
}

// DefaultHistory is the terminal-job retention bound applied when a
// backend is configured with History <= 0.
const DefaultHistory = 4096

func matches(st State, states []State) bool {
	if len(states) == 0 {
		return true
	}
	for _, want := range states {
		if st == want {
			return true
		}
	}
	return false
}
