package store

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"
)

// pump drives n submit→start→finish cycles through a primary.
func pump(t *testing.T, p *File, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		j, err := p.Submit(spec(i), at(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Start(j.ID, at(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Finish(j.ID, StateDone, at(i), "", nil); err != nil {
			t.Fatal(err)
		}
	}
}

// sync pulls feed pages from p into r until the replica's LSN matches the
// primary's, returning the last result.
func syncReplica(t *testing.T, p, r *File) FeedResult {
	t.Helper()
	var last FeedResult
	for {
		_, lsn := r.ReplicationState()
		page, err := p.Feed(lsn+1, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.ApplyFeed(page)
		if err != nil {
			t.Fatal(err)
		}
		last = res
		if _, rl := r.ReplicationState(); rl >= res.SourceLSN {
			return last
		}
	}
}

// viewsEqual compares the full job views of two stores.
func viewsEqual(a, b *File) bool {
	return reflect.DeepEqual(a.List(), b.List())
}

// TestReplicationTailShipping: a replica tailing the primary's feed
// converges to an identical view, record by record, and re-applying a page
// is a no-op.
func TestReplicationTailShipping(t *testing.T) {
	p := reopen(t, nil, t.TempDir(), FileConfig{})
	r := reopen(t, nil, t.TempDir(), FileConfig{Replica: true})
	pump(t, p, 7)

	res := syncReplica(t, p, r)
	if res.Snapshot {
		t.Fatal("caught-up replica was reset from a snapshot; want record shipping")
	}
	if !viewsEqual(p, r) {
		t.Fatalf("replica view diverged:\nprimary %+v\nreplica %+v", p.List(), r.List())
	}
	pe, pl := p.ReplicationState()
	re, rl := r.ReplicationState()
	if pe != re || pl != rl {
		t.Fatalf("replication state diverged: primary (%d,%d) replica (%d,%d)", pe, pl, re, rl)
	}

	// Re-applying the same page must change nothing.
	page, err := p.Feed(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err = r.ApplyFeed(page)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 0 {
		t.Fatalf("re-applied page folded %d records, want 0", res.Applied)
	}
}

// TestReplicationSnapshotBootstrap: a replica whose cursor predates the
// primary's tail (here: explicit from=0, and a tail trimmed by compaction)
// is reset from a full snapshot and still converges.
func TestReplicationSnapshotBootstrap(t *testing.T) {
	// SnapshotEvery 4 → tail cap 8: 30 records overrun it, so a from-zero
	// bootstrap must take the snapshot path.
	p := reopen(t, nil, t.TempDir(), FileConfig{SnapshotEvery: 4})
	pump(t, p, 10)
	p.barrier()

	r := reopen(t, nil, t.TempDir(), FileConfig{Replica: true})
	res := syncReplica(t, p, r)
	if !viewsEqual(p, r) {
		t.Fatalf("replica view diverged after bootstrap:\nprimary %+v\nreplica %+v", p.List(), r.List())
	}
	_ = res

	// The replica's directory is durable: a reopen in replica mode keeps
	// the state and cursor.
	r2 := reopen(t, r, r.cfg.Dir, FileConfig{Replica: true})
	if !viewsEqual(p, r2) {
		t.Fatal("replica view lost across reopen")
	}
	pe, pl := p.ReplicationState()
	re, rl := r2.ReplicationState()
	if pe != re || pl != rl {
		t.Fatalf("replication cursor lost across reopen: primary (%d,%d) replica (%d,%d)", pe, pl, re, rl)
	}
}

// TestReplicaIsReadOnly: direct mutations on a replica are rejected until
// Promote, and ApplyFeed is rejected on a primary.
func TestReplicaIsReadOnly(t *testing.T) {
	p := reopen(t, nil, t.TempDir(), FileConfig{})
	r := reopen(t, nil, t.TempDir(), FileConfig{Replica: true})
	if _, err := r.Submit(spec(1), at(1)); !errors.Is(err, ErrReplica) {
		t.Fatalf("Submit on replica = %v, want ErrReplica", err)
	}
	if err := r.Start(1, at(1)); !errors.Is(err, ErrReplica) {
		t.Fatalf("Start on replica = %v, want ErrReplica", err)
	}
	if _, err := r.Finish(1, StateDone, at(1), "", nil); !errors.Is(err, ErrReplica) {
		t.Fatalf("Finish on replica = %v, want ErrReplica", err)
	}
	page, err := r.Feed(1, 0) // replicas may serve feeds (chaining)...
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ApplyFeed(page); !errors.Is(err, ErrNotReplica) { // ...but primaries must never apply one
		t.Fatalf("ApplyFeed on primary = %v, want ErrNotReplica", err)
	}
}

// TestPromoteRequeuesAndWrites: promotion bumps the epoch, re-queues jobs
// the primary left running, flips the store writable, and all of it
// survives a restart.
func TestPromoteRequeuesAndWrites(t *testing.T) {
	p := reopen(t, nil, t.TempDir(), FileConfig{})
	j1, _ := p.Submit(spec(1), at(1))
	_ = p.Start(j1.ID, at(1)) // running at "crash"
	j2, _ := p.Submit(spec(2), at(2))
	_ = j2 // queued at "crash"

	r := reopen(t, nil, t.TempDir(), FileConfig{Replica: true})
	syncReplica(t, p, r)
	if job, _ := r.Get(j1.ID); job.State != StateRunning {
		t.Fatalf("replica mirrors job 1 as %s, want running (no premature requeue)", job.State)
	}

	epoch, requeued, err := r.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("promoted epoch = %d, want 1", epoch)
	}
	if len(requeued) != 1 || requeued[0] != j1.ID {
		t.Fatalf("requeued = %v, want [%d]", requeued, j1.ID)
	}
	if r.Replica() {
		t.Fatal("store still replica after Promote")
	}
	// Promote again: idempotent, same epoch.
	if e2, _, err := r.Promote(); err != nil || e2 != epoch {
		t.Fatalf("second Promote = (%d, %v), want (%d, nil)", e2, err, epoch)
	}
	// Writable now.
	if err := r.Start(j1.ID, at(3)); err != nil {
		t.Fatalf("Start after promote: %v", err)
	}
	if _, err := r.Finish(j1.ID, StateDone, at(3), "", nil); err != nil {
		t.Fatalf("Finish after promote: %v", err)
	}

	// Epoch survives restart (now as an ordinary primary).
	r2 := reopen(t, r, r.cfg.Dir, FileConfig{})
	if e, _ := r2.ReplicationState(); e != epoch {
		t.Fatalf("epoch after reopen = %d, want %d", e, epoch)
	}
}

// TestFeedFencesStaleEpoch: after a promotion, a page from the old (lower
// epoch) primary is refused with ErrFenced — the split-brain guard.
func TestFeedFencesStaleEpoch(t *testing.T) {
	old := reopen(t, nil, t.TempDir(), FileConfig{})
	pump(t, old, 2)
	promoted := reopen(t, nil, t.TempDir(), FileConfig{Replica: true})
	syncReplica(t, old, promoted)
	if _, _, err := promoted.Promote(); err != nil {
		t.Fatal(err)
	}
	// Simulate a misconfigured re-follow of the stale primary: demote the
	// promoted store back to replica via a fresh replica on the same
	// concept — here we just apply the stale feed to a replica that has
	// seen the higher epoch.
	fresh := reopen(t, nil, t.TempDir(), FileConfig{Replica: true})
	page, err := promoted.Feed(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.ApplyFeed(page); err != nil {
		t.Fatal(err)
	}
	stalePage, err := old.Feed(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.ApplyFeed(stalePage); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-epoch page applied = %v, want ErrFenced", err)
	}
}

// TestFeedSnapshotCarriesResults: results and errors round-trip through a
// snapshot bootstrap byte for byte.
func TestFeedSnapshotCarriesResults(t *testing.T) {
	p := reopen(t, nil, t.TempDir(), FileConfig{})
	j, _ := p.Submit(spec(9), at(1))
	_ = p.Start(j.ID, at(1))
	result := json.RawMessage(`{"ok":true,"value":41}`)
	if _, err := p.Finish(j.ID, StateDone, at(2), "", result); err != nil {
		t.Fatal(err)
	}
	r := reopen(t, nil, t.TempDir(), FileConfig{Replica: true})
	syncReplica(t, p, r)
	got, ok := r.Get(j.ID)
	if !ok || string(got.Result) != string(result) {
		t.Fatalf("replicated result = %s (found %v), want %s", got.Result, ok, result)
	}
}

// TestFeedGapDetected: a page that skips ahead of the replica's cursor is
// an explicit error, not a silent hole.
func TestFeedGapDetected(t *testing.T) {
	r := reopen(t, nil, t.TempDir(), FileConfig{Replica: true})
	page, _ := json.Marshal(feedPage{Epoch: 0, LSN: 5, Records: []rec{
		{Op: "submit", LSN: 5, ID: 1, At: at(1), Spec: spec(1)},
	}})
	if _, err := r.ApplyFeed(page); err == nil {
		t.Fatal("gapped page applied cleanly")
	}
}

// TestLSNStableAcrossCompactionAndReopen: compaction and restarts must not
// rewind or re-number the stream a replica is tailing.
func TestLSNStableAcrossCompactionAndReopen(t *testing.T) {
	dir := t.TempDir()
	p := reopen(t, nil, dir, FileConfig{SnapshotEvery: 5})
	pump(t, p, 4) // 12 records: two compactions
	p.barrier()
	if _, lsn := p.ReplicationState(); lsn != 12 {
		t.Fatalf("lsn after 12 records = %d", lsn)
	}
	p2 := reopen(t, p, dir, FileConfig{SnapshotEvery: 5})
	if _, lsn := p2.ReplicationState(); lsn != 12 {
		t.Fatalf("lsn after reopen = %d, want 12", lsn)
	}
	pump(t, p2, 1)
	if _, lsn := p2.ReplicationState(); lsn != 15 {
		t.Fatalf("lsn after 3 more records = %d, want 15", lsn)
	}
}
