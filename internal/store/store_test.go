package store

import (
	"encoding/json"
	"errors"
	"testing"
	"time"
)

// backends yields a fresh store of each kind; the file backend lives in a
// per-test temp dir.
func backends(t *testing.T, history int, fn func(t *testing.T, s Store)) {
	t.Run("memory", func(t *testing.T) {
		s := NewMemory(history)
		defer s.Close()
		fn(t, s)
	})
	t.Run("file", func(t *testing.T) {
		s, err := Open(FileConfig{Dir: t.TempDir(), History: history})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		fn(t, s)
	})
}

func spec(n int) json.RawMessage {
	data, _ := json.Marshal(map[string]any{"kind": "sum", "n": n})
	return data
}

func at(sec int) time.Time {
	return time.Date(2026, 7, 30, 12, 0, sec, 0, time.UTC)
}

func TestLifecycle(t *testing.T) {
	backends(t, 0, func(t *testing.T, s Store) {
		j, err := s.Submit(spec(1), at(0))
		if err != nil {
			t.Fatal(err)
		}
		if j.ID != 1 || j.State != StateQueued || !j.SubmittedAt.Equal(at(0)) {
			t.Fatalf("submitted = %+v, want ID 1 queued at t0", j)
		}
		if err := s.Start(j.ID, at(1)); err != nil {
			t.Fatal(err)
		}
		got, ok := s.Get(j.ID)
		if !ok || got.State != StateRunning || !got.StartedAt.Equal(at(1)) {
			t.Fatalf("after start = %+v", got)
		}
		result := json.RawMessage(`{"ok":true,"value":1}`)
		if _, err := s.Finish(j.ID, StateDone, at(2), "", result); err != nil {
			t.Fatal(err)
		}
		got, _ = s.Get(j.ID)
		if got.State != StateDone || string(got.Result) != string(result) || !got.FinishedAt.Equal(at(2)) {
			t.Fatalf("after finish = %+v", got)
		}
	})
}

func TestMonotonicIDsAndListOrder(t *testing.T) {
	backends(t, 0, func(t *testing.T, s Store) {
		for want := int64(1); want <= 5; want++ {
			j, err := s.Submit(spec(int(want)), at(int(want)))
			if err != nil {
				t.Fatal(err)
			}
			if j.ID != want {
				t.Fatalf("ID = %d, want %d", j.ID, want)
			}
		}
		jobs := s.List()
		if len(jobs) != 5 {
			t.Fatalf("List returned %d jobs, want 5", len(jobs))
		}
		for i, j := range jobs {
			if j.ID != int64(i+1) {
				t.Fatalf("List order broken: jobs[%d].ID = %d", i, j.ID)
			}
		}
	})
}

func TestListStateFilter(t *testing.T) {
	backends(t, 0, func(t *testing.T, s Store) {
		a, _ := s.Submit(spec(1), at(0))
		b, _ := s.Submit(spec(2), at(0))
		c, _ := s.Submit(spec(3), at(0))
		_ = s.Start(b.ID, at(1))
		_ = s.Start(c.ID, at(1))
		if _, err := s.Finish(c.ID, StateFailed, at(2), "boom", nil); err != nil {
			t.Fatal(err)
		}
		if got := s.List(StateQueued); len(got) != 1 || got[0].ID != a.ID {
			t.Fatalf("List(queued) = %+v", got)
		}
		if got := s.List(StateRunning, StateFailed); len(got) != 2 {
			t.Fatalf("List(running, failed) = %+v", got)
		}
		if got := s.List(StateDone); len(got) != 0 {
			t.Fatalf("List(done) = %+v, want empty", got)
		}
	})
}

func TestTransitionErrors(t *testing.T) {
	backends(t, 0, func(t *testing.T, s Store) {
		if err := s.Start(99, at(0)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Start(unknown) = %v, want ErrNotFound", err)
		}
		if _, err := s.Finish(99, StateDone, at(0), "", nil); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Finish(unknown) = %v, want ErrNotFound", err)
		}
		j, _ := s.Submit(spec(1), at(0))
		_ = s.Start(j.ID, at(1))
		if err := s.Start(j.ID, at(2)); !errors.Is(err, ErrNotQueued) {
			t.Fatalf("double Start = %v, want ErrNotQueued", err)
		}
		if _, err := s.Finish(j.ID, StateDone, at(2), "", nil); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Finish(j.ID, StateCancelled, at(3), "", nil); !errors.Is(err, ErrTerminal) {
			t.Fatalf("double Finish = %v, want ErrTerminal", err)
		}
	})
}

func TestEvictionOldestFirst(t *testing.T) {
	backends(t, 2, func(t *testing.T, s Store) {
		var evicted []int64
		for i := 1; i <= 4; i++ {
			j, _ := s.Submit(spec(i), at(i))
			_ = s.Start(j.ID, at(i))
			ev, err := s.Finish(j.ID, StateDone, at(i), "", nil)
			if err != nil {
				t.Fatal(err)
			}
			evicted = append(evicted, ev...)
		}
		if len(evicted) != 2 || evicted[0] != 1 || evicted[1] != 2 {
			t.Fatalf("evicted = %v, want [1 2]", evicted)
		}
		if _, ok := s.Get(1); ok {
			t.Fatal("job 1 should be evicted")
		}
		if jobs := s.List(); len(jobs) != 2 || jobs[0].ID != 3 {
			t.Fatalf("List after eviction = %+v", jobs)
		}
	})
}

// TestAttemptsLedger pins the SetAttempts contract on both backends: the
// blob round-trips opaquely, last writer wins, it stays writable after the
// job goes terminal (the final ledger lands just after Finish), and unknown
// IDs are rejected.
func TestAttemptsLedger(t *testing.T) {
	backends(t, 0, func(t *testing.T, s Store) {
		if err := s.SetAttempts(99, json.RawMessage(`{}`)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("SetAttempts(unknown) = %v, want ErrNotFound", err)
		}
		j, err := s.Submit(spec(1), at(0))
		if err != nil {
			t.Fatal(err)
		}
		first := json.RawMessage(`{"winner":"","attempts":[{"strategy":"rr","state":"running"}]}`)
		if err := s.SetAttempts(j.ID, first); err != nil {
			t.Fatal(err)
		}
		if got, _ := s.Get(j.ID); string(got.Attempts) != string(first) {
			t.Fatalf("attempts = %s, want %s", got.Attempts, first)
		}
		_ = s.Start(j.ID, at(1))
		if _, err := s.Finish(j.ID, StateDone, at(2), "", nil); err != nil {
			t.Fatal(err)
		}
		final := json.RawMessage(`{"winner":"rr","attempts":[{"strategy":"rr","state":"done","winner":true}]}`)
		if err := s.SetAttempts(j.ID, final); err != nil {
			t.Fatalf("SetAttempts after Finish = %v, want nil", err)
		}
		if got, _ := s.Get(j.ID); string(got.Attempts) != string(final) {
			t.Fatalf("attempts after overwrite = %s, want %s", got.Attempts, final)
		}
	})
}

func TestParseState(t *testing.T) {
	for _, name := range []string{"queued", "running", "done", "failed", "cancelled"} {
		st, err := ParseState(name)
		if err != nil || string(st) != name {
			t.Fatalf("ParseState(%q) = %q, %v", name, st, err)
		}
	}
	if _, err := ParseState("exploded"); err == nil {
		t.Fatal("ParseState accepted an unknown state")
	}
}
