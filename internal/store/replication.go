package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"hypersolve/internal/tracelog"
)

// Replication turns the File store's write-ahead journal into a shipping
// stream: every record carries a monotonic LSN, a primary serves pages of
// records from any LSN (falling back to a full-state snapshot when the
// request predates its in-memory tail), and a replica-mode store applies
// those pages idempotently through the same machinery Open uses for
// replay. Promotion flips a replica to read-write and bumps the store's
// epoch — the fencing token that keeps a stale primary's stream from ever
// being applied over a promoted replica's history.

// Sentinel errors of the replication paths.
var (
	// ErrReplica rejects direct mutations on a replica-mode store; the
	// only write path before Promote is ApplyFeed.
	ErrReplica = errors.New("store: replica is read-only (promote it first)")
	// ErrNotReplica rejects ApplyFeed on a read-write store: applying a
	// foreign stream over a primary's own history is how split-brain
	// starts.
	ErrNotReplica = errors.New("store: not a replica")
	// ErrFenced rejects a feed page whose source epoch is older than the
	// replica's own — the source is a stale primary that was failed over.
	ErrFenced = errors.New("store: feed source fenced (stale epoch)")
)

// DefaultFeedLimit is the page size applied when Feed is called with
// limit <= 0.
const DefaultFeedLimit = 1024

// feedPage is the wire shape of one GET /v1/replication/journal response.
// Exactly one of Snapshot or Records is meaningful: a snapshot bootstraps
// (or resets) the replica to the source's full state as of LSN, records
// extend a caught-up replica contiguously.
type feedPage struct {
	// Epoch and LSN describe the source at serving time.
	Epoch int64 `json:"epoch"`
	LSN   int64 `json:"lsn"`
	// Snapshot is the source's full state, sent when the requested cursor
	// predates the source's in-memory tail (or overruns its history).
	Snapshot *snapshot `json:"snapshot,omitempty"`
	// Records are journal records from the requested LSN, in order.
	Records []rec `json:"records,omitempty"`
}

// FeedResult summarises one applied feed page.
type FeedResult struct {
	// SourceEpoch and SourceLSN are the primary's fencing epoch and last
	// LSN as of the page; SourceLSN minus the replica's own LSN is the
	// replication lag in records.
	SourceEpoch int64
	SourceLSN   int64
	// Applied counts records folded in by this page (snapshot installs
	// count as one).
	Applied int
	// Snapshot reports that the page reset the replica from a full
	// snapshot rather than extending it record by record.
	Snapshot bool
}

// Feed serves one replication page: journal records from LSN `from`
// onwards (at most limit; <= 0 selects DefaultFeedLimit), or — when `from`
// predates the in-memory tail or overruns the history, including the
// explicit reset request from=0 — the full current state as a snapshot.
// The page is returned JSON-encoded, ready to be served as the
// /v1/replication/journal response body.
func (f *File) Feed(from int64, limit int) ([]byte, error) {
	if limit <= 0 {
		limit = DefaultFeedLimit
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	page := feedPage{Epoch: f.epoch, LSN: f.lsn}
	if from <= f.baseLSN || from > f.lsn+1 {
		nextID, finished, jobs := f.mem.snapshotState()
		page.Snapshot = &snapshot{NextID: nextID, Finished: finished, Jobs: jobs, LSN: f.lsn, Epoch: f.epoch}
	} else {
		recs := f.tail[from-f.baseLSN-1:]
		if len(recs) > limit {
			recs = recs[:limit]
		}
		page.Records = recs
	}
	data, err := json.Marshal(page)
	if err != nil {
		return nil, fmt.Errorf("store: encoding feed page: %w", err)
	}
	return data, nil
}

// ApplyFeed folds one JSON-encoded feed page (as served by Feed on the
// primary) into a replica-mode store: a snapshot page replaces the whole
// view (and is persisted immediately — snapshot written, journal
// truncated), record pages are applied through the replay machinery and
// journaled verbatim, LSNs preserved, so the replica's directory is a
// faithful copy the next Open (or a promotion) can build on. Records at or
// below the replica's LSN are skipped — re-applying a page is a no-op.
//
// A page from a source whose epoch is behind the replica's own fails with
// ErrFenced: after a failover the old primary's stream must never be
// applied over the promoted history.
func (f *File) ApplyFeed(data []byte) (FeedResult, error) {
	var page feedPage
	if err := json.Unmarshal(data, &page); err != nil {
		return FeedResult{}, fmt.Errorf("store: decoding feed page: %w", err)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	res := FeedResult{SourceEpoch: page.Epoch, SourceLSN: page.LSN}
	if f.closed {
		return res, ErrClosed
	}
	if !f.replica {
		return res, ErrNotReplica
	}
	if page.Epoch < f.epoch {
		return res, fmt.Errorf("%w: source epoch %d < local epoch %d", ErrFenced, page.Epoch, f.epoch)
	}
	if page.Snapshot != nil {
		// Wait out any in-flight background compaction: the inline persist
		// below rewrites the same files it is touching.
		for f.compacting {
			f.idle.Wait()
		}
		f.mem.install(page.Snapshot.NextID, page.Snapshot.Finished, page.Snapshot.Jobs)
		f.lsn, f.epoch = page.Snapshot.LSN, page.Snapshot.Epoch
		f.tail = nil
		f.baseLSN = f.lsn
		res.Applied, res.Snapshot = 1, true
		return res, f.compactInline()
	}
	applyStart := time.Now().UTC()
	for _, r := range page.Records {
		if r.LSN <= f.lsn {
			continue // already applied (page overlap or replayed at Open)
		}
		if r.LSN != f.lsn+1 {
			return res, fmt.Errorf("store: feed gap: record lsn %d after local lsn %d (re-sync from 0)", r.LSN, f.lsn)
		}
		if r.Op == "trace" && len(r.Trace) > 0 {
			// Stamp the standby's own apply span into the timeline before it
			// lands, so a promoted standby serves traces that show when the
			// replication stream delivered them. The record content diverges
			// from the primary's by exactly this span; LSNs are untouched.
			if annotated, err := tracelog.AppendSpan(r.Trace, "replica_apply", applyStart, time.Now().UTC()); err == nil {
				r.Trace = annotated
			}
		}
		f.applyRec(r)
		if err := f.appendLocked(r); err != nil {
			return res, err
		}
		res.Applied++
	}
	return res, nil
}

// Promote flips a replica-mode store to read-write: the fencing epoch is
// bumped and journaled, and jobs the dead primary left running are
// re-queued exactly as Open's crash recovery does, ready for a service to
// re-admit. It returns the new epoch and the re-queued job IDs. Promoting
// a store that is already read-write is a no-op reporting the current
// epoch, so a retried promotion converges instead of fencing itself.
func (f *File) Promote() (epoch int64, requeued []int64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, nil, ErrClosed
	}
	if !f.replica {
		return f.epoch, nil, nil
	}
	f.replica = false
	f.epoch++
	// A journal write failure degrades durability, not the promotion: the
	// in-memory epoch is authoritative for this process, matching the
	// other transition paths.
	err = f.append(rec{Op: "epoch", Epoch: f.epoch, At: time.Now().UTC()})
	return f.epoch, f.mem.requeueRunning(), err
}

// ReplicationState reports the store's fencing epoch and last applied LSN.
func (f *File) ReplicationState() (epoch, lsn int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch, f.lsn
}

// Replica reports whether the store is still in replica (read-only) mode.
func (f *File) Replica() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.replica
}
