package store

import (
	"encoding/json"
	"sort"
	"sync"
	"time"
)

// Memory is the in-process backend: the solve service's original job map,
// extracted behind the Store interface. State dies with the process; the
// File backend reuses it as the in-RAM view of the journal.
type Memory struct {
	mu       sync.Mutex
	history  int
	nextID   int64
	jobs     map[int64]*Job
	finished []int64 // terminal job IDs in completion order, driving eviction
}

// NewMemory returns an empty in-process store retaining at most history
// terminal jobs (<= 0 selects DefaultHistory).
func NewMemory(history int) *Memory {
	if history <= 0 {
		history = DefaultHistory
	}
	return &Memory{history: history, jobs: make(map[int64]*Job)}
}

// Submit implements Store: it assigns the next monotonic ID and records
// a new queued job.
func (m *Memory) Submit(spec json.RawMessage, at time.Time) (Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	j := &Job{ID: m.nextID, Spec: spec, State: StateQueued, SubmittedAt: at}
	m.jobs[j.ID] = j
	return *j, nil
}

// Start implements Store: it moves a queued job to running.
func (m *Memory) Start(id int64, at time.Time) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return ErrNotFound
	}
	if j.State != StateQueued {
		return ErrNotQueued
	}
	j.State = StateRunning
	j.StartedAt = at
	return nil
}

// Finish implements Store: it moves a non-terminal job to a terminal
// state and returns any IDs evicted to respect the retention bound.
func (m *Memory) Finish(id int64, state State, at time.Time, errMsg string, result json.RawMessage) ([]int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.finishLocked(id, state, at, errMsg, result)
}

func (m *Memory) finishLocked(id int64, state State, at time.Time, errMsg string, result json.RawMessage) ([]int64, error) {
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	if j.State.Terminal() {
		return nil, ErrTerminal
	}
	if !state.Terminal() {
		return nil, ErrNotQueued
	}
	j.State = state
	j.FinishedAt = at
	j.Error = errMsg
	j.Result = result
	m.finished = append(m.finished, id)
	var evicted []int64
	for len(m.finished) > m.history {
		evicted = append(evicted, m.finished[0])
		delete(m.jobs, m.finished[0])
		m.finished = m.finished[1:]
	}
	return evicted, nil
}

// SetTrace implements Store: it attaches the opaque trace timeline to a
// job. Unlike the lifecycle transitions it is valid in any state — the
// final timeline lands just after Finish.
func (m *Memory) SetTrace(id int64, trace json.RawMessage) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return ErrNotFound
	}
	j.Trace = trace
	return nil
}

// SetAttempts implements Store: it attaches the opaque portfolio attempt
// ledger to a job. Like SetTrace it is valid in any state — the final
// ledger lands just after Finish.
func (m *Memory) SetAttempts(id int64, attempts json.RawMessage) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return ErrNotFound
	}
	j.Attempts = attempts
	return nil
}

// Get implements Store: it returns a snapshot of one job.
func (m *Memory) Get(id int64) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// List implements Store: it returns snapshots ordered by ID, optionally
// filtered by state.
func (m *Memory) List(states ...State) []Job {
	m.mu.Lock()
	out := make([]Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		if matches(j.State, states) {
			out = append(out, *j)
		}
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Close implements Store; the in-memory backend holds no resources.
func (m *Memory) Close() error { return nil }

// --- replay hooks -----------------------------------------------------------
//
// The File backend rebuilds its Memory view by replaying snapshot + journal.
// These restore variants are idempotent: a record already reflected in the
// snapshot (the compaction crash window between snapshot rename and journal
// truncation) is silently skipped, so replaying a stale journal over a fresh
// snapshot converges to the same state.

func (m *Memory) restoreSubmit(id int64, spec json.RawMessage, at time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id > m.nextID {
		m.nextID = id
	}
	if _, ok := m.jobs[id]; ok {
		return
	}
	m.jobs[id] = &Job{ID: id, Spec: spec, State: StateQueued, SubmittedAt: at}
}

// rollbackSubmit undoes a Submit whose journal append failed, so a
// rejected admission leaves no trace in the view.
func (m *Memory) rollbackSubmit(id int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.jobs, id)
	if m.nextID == id {
		m.nextID--
	}
}

func (m *Memory) restoreStart(id int64, at time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok && j.State == StateQueued {
		j.State = StateRunning
		j.StartedAt = at
	}
}

// restoreTrace replays a trace record; last writer wins, matching
// SetTrace semantics.
func (m *Memory) restoreTrace(id int64, trace json.RawMessage) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		j.Trace = trace
	}
}

// restoreAttempts replays an attempts record; last writer wins, matching
// SetAttempts semantics.
func (m *Memory) restoreAttempts(id int64, attempts json.RawMessage) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		j.Attempts = attempts
	}
}

func (m *Memory) restoreFinish(id int64, state State, at time.Time, errMsg string, result json.RawMessage) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok && !j.State.Terminal() && state.Terminal() {
		_, _ = m.finishLocked(id, state, at, errMsg, result)
	}
}

// requeueRunning normalises jobs that were running at crash time back to
// queued: re-running a deterministic spec+seed is safe, and the service
// re-admits every queued job on startup. It returns the re-queued IDs.
func (m *Memory) requeueRunning() []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var ids []int64
	for _, j := range m.jobs {
		if j.State == StateRunning {
			j.State = StateQueued
			j.StartedAt = time.Time{}
			ids = append(ids, j.ID)
		}
	}
	sort.Slice(ids, func(i, k int) bool { return ids[i] < ids[k] })
	return ids
}

// snapshotState copies the full view for compaction.
func (m *Memory) snapshotState() (nextID int64, finished []int64, jobs []Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	jobs = make([]Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, *j)
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID < jobs[k].ID })
	return m.nextID, append([]int64(nil), m.finished...), jobs
}

// install replaces the view with a loaded snapshot.
func (m *Memory) install(nextID int64, finished []int64, jobs []Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID = nextID
	m.finished = finished
	m.jobs = make(map[int64]*Job, len(jobs))
	for i := range jobs {
		j := jobs[i]
		m.jobs[j.ID] = &j
	}
}
