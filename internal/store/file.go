package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// File names inside a File store's directory: the write-ahead journal, the
// compacted snapshot, and the advisory lock guarding single-daemon access.
const (
	JournalName  = "journal.jsonl"
	SnapshotName = "snapshot.json"
	LockName     = "store.lock"
)

// DefaultSnapshotEvery is the journal length (in records) that triggers a
// snapshot compaction when FileConfig.SnapshotEvery <= 0.
const DefaultSnapshotEvery = 1024

// FileConfig shapes a durable file store.
type FileConfig struct {
	// Dir is the data directory; it is created if missing.
	Dir string
	// History bounds retained terminal jobs (<= 0 selects DefaultHistory).
	History int
	// Fsync syncs the journal after every record. Off, a SIGKILLed process
	// loses nothing (the kernel holds the written bytes) but a machine
	// crash can lose the tail; on, every transition survives power loss at
	// a large throughput cost.
	Fsync bool
	// SnapshotEvery is the number of journal records between snapshot
	// compactions (<= 0 selects DefaultSnapshotEvery).
	SnapshotEvery int
}

// File is the durable backend: a Memory view kept in lockstep with an
// append-only JSONL write-ahead journal. One record is appended per job
// transition (submit/start/finish); every SnapshotEvery records the full
// view is written to SnapshotName via a tmp-file rename and the journal is
// truncated, so the log never grows without bound. Open replays
// snapshot + journal, tolerating a torn trailing record, and re-queues jobs
// that were running at crash time.
//
// Compaction is synchronous: the transition that trips SnapshotEvery
// absorbs the snapshot write (marshal + fsync + rename + dir sync),
// stalling concurrent mutations for that window. The cost is bounded by
// History × record size; deployments with large histories should raise
// SnapshotEvery (or shrink History) until a background compactor lands.
type File struct {
	cfg FileConfig
	mem *Memory

	// mu serialises mutations (journal appends, compaction, close); reads
	// go straight to the Memory view under its own lock.
	mu      sync.Mutex
	journal *os.File
	lock    *os.File // flock'd LockName handle; kernel-released on death
	recs    int      // records in the current journal, drives compaction
	closed  bool
}

// rec is one journal line.
type rec struct {
	Op     string          `json:"op"` // "submit" | "start" | "finish"
	ID     int64           `json:"id"`
	At     time.Time       `json:"at"`
	Spec   json.RawMessage `json:"spec,omitempty"`
	State  State           `json:"state,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// snapshot is the compacted full state.
type snapshot struct {
	NextID   int64   `json:"next_id"`
	Finished []int64 `json:"finished"`
	Jobs     []Job   `json:"jobs"`
}

// Open loads (or creates) a durable store in cfg.Dir. Recovery is
// crash-tolerant in two ways: a truncated or corrupt trailing journal line
// (a torn write) is discarded, and records already reflected in the
// snapshot (the compaction window between snapshot rename and journal
// truncation) replay as no-ops. Jobs left queued or running by the previous
// process come back queued, ready for the service to re-admit.
func Open(cfg FileConfig) (*File, error) {
	if cfg.History <= 0 {
		cfg.History = DefaultHistory
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lock, err := lockDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	f := &File{cfg: cfg, mem: NewMemory(cfg.History), lock: lock}
	fail := func(err error) (*File, error) {
		if lock != nil {
			lock.Close()
		}
		return nil, err
	}

	if data, err := os.ReadFile(filepath.Join(cfg.Dir, SnapshotName)); err == nil {
		var snap snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return fail(fmt.Errorf("store: corrupt snapshot %s: %w", SnapshotName, err))
		}
		f.mem.install(snap.NextID, snap.Finished, snap.Jobs)
	} else if !os.IsNotExist(err) {
		return fail(fmt.Errorf("store: %w", err))
	}

	good, applied, err := f.replay()
	if err != nil {
		return fail(err)
	}
	f.mem.requeueRunning()

	journal, err := os.OpenFile(filepath.Join(cfg.Dir, JournalName),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fail(fmt.Errorf("store: %w", err))
	}
	// Drop a torn tail before appending, or the partial line would fuse
	// with the next record and corrupt the journal mid-file.
	if err := journal.Truncate(good); err != nil {
		journal.Close()
		return fail(fmt.Errorf("store: truncating torn journal tail: %w", err))
	}
	f.journal = journal
	f.recs = applied
	if f.recs >= f.cfg.SnapshotEvery {
		if err := f.compact(); err != nil {
			journal.Close()
			return fail(err)
		}
	}
	return f, nil
}

// replay applies the journal to the in-memory view, stopping at the first
// incomplete or unparsable line. It returns the byte offset of the end of
// the last good record and how many records were applied.
func (f *File) replay() (good int64, applied int, err error) {
	data, err := os.ReadFile(filepath.Join(f.cfg.Dir, JournalName))
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("store: %w", err)
	}
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn write: no terminating newline
		}
		var r rec
		if json.Unmarshal(data[:nl], &r) != nil {
			break // torn or corrupt record: discard it and everything after
		}
		switch r.Op {
		case "submit":
			f.mem.restoreSubmit(r.ID, r.Spec, r.At)
		case "start":
			f.mem.restoreStart(r.ID, r.At)
		case "finish":
			f.mem.restoreFinish(r.ID, r.State, r.At, r.Error, r.Result)
		}
		good += int64(nl + 1)
		applied++
		data = data[nl+1:]
	}
	return good, applied, nil
}

// append journals one record. The in-memory view has already been updated:
// on a write error the view stays authoritative for this process and the
// error reports the lost durability to the caller.
func (f *File) append(r rec) error {
	data, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.journal.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("store: journal append: %w", err)
	}
	if f.cfg.Fsync {
		if err := f.journal.Sync(); err != nil {
			return fmt.Errorf("store: journal sync: %w", err)
		}
	}
	f.recs++
	if f.recs >= f.cfg.SnapshotEvery {
		return f.compact()
	}
	return nil
}

// compact writes the full view to the snapshot via tmp-file + rename, syncs
// the directory so the rename is durable, and truncates the journal. A
// crash between rename and truncate leaves a stale journal whose records
// replay as no-ops over the fresh snapshot.
func (f *File) compact() error {
	nextID, finished, jobs := f.mem.snapshotState()
	data, err := json.Marshal(snapshot{NextID: nextID, Finished: finished, Jobs: jobs})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(f.cfg.Dir, SnapshotName)
	tmp := path + ".tmp"
	w, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err = w.Write(append(data, '\n')); err == nil {
		err = w.Sync()
	}
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := syncDir(f.cfg.Dir); err != nil {
		return err
	}
	if err := f.journal.Truncate(0); err != nil {
		return fmt.Errorf("store: truncating journal: %w", err)
	}
	f.recs = 0
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: syncing %s: %w", dir, err)
	}
	return nil
}

func (f *File) Submit(spec json.RawMessage, at time.Time) (Job, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return Job{}, ErrClosed
	}
	j, err := f.mem.Submit(spec, at)
	if err != nil {
		return Job{}, err
	}
	if err := f.append(rec{Op: "submit", ID: j.ID, At: at, Spec: spec}); err != nil {
		// Unlike Start/Finish (where the view staying ahead of the journal
		// only costs durability), a failed admission must leave no trace:
		// the service rejects the submission, so a job surviving in the
		// view would be visible-but-unrunnable forever. If the record did
		// reach the journal before the failure (fsync, compaction), the
		// next Open resurrects the job queued and simply re-runs it.
		f.mem.rollbackSubmit(j.ID)
		return Job{}, err
	}
	return j, nil
}

func (f *File) Start(id int64, at time.Time) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if err := f.mem.Start(id, at); err != nil {
		return err
	}
	return f.append(rec{Op: "start", ID: id, At: at})
}

func (f *File) Finish(id int64, state State, at time.Time, errMsg string, result json.RawMessage) ([]int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	evicted, err := f.mem.Finish(id, state, at, errMsg, result)
	if err != nil {
		return nil, err
	}
	return evicted, f.append(rec{Op: "finish", ID: id, At: at, State: state, Error: errMsg, Result: result})
}

func (f *File) Get(id int64) (Job, bool) { return f.mem.Get(id) }

func (f *File) List(states ...State) []Job { return f.mem.List(states...) }

// Close syncs and closes the journal and releases the directory lock. The
// in-memory view stays readable (Get/List), matching the Memory backend
// after a service shutdown.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	if f.lock != nil {
		defer f.lock.Close()
	}
	if err := f.journal.Sync(); err != nil {
		f.journal.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.journal.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
