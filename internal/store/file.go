package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"hypersolve/internal/telemetry"
)

// File names inside a File store's directory: the write-ahead journal, the
// rotated journal a background compaction is absorbing, the compacted
// snapshot, and the advisory lock guarding single-daemon access.
const (
	JournalName     = "journal.jsonl"
	JournalPrevName = "journal.prev.jsonl"
	SnapshotName    = "snapshot.json"
	LockName        = "store.lock"
)

// DefaultSnapshotEvery is the journal length (in records) that triggers a
// snapshot compaction when FileConfig.SnapshotEvery <= 0.
const DefaultSnapshotEvery = 1024

// FileConfig shapes a durable file store.
type FileConfig struct {
	// Dir is the data directory; it is created if missing.
	Dir string
	// History bounds retained terminal jobs (<= 0 selects DefaultHistory).
	History int
	// Fsync syncs the journal after every record. Off, a SIGKILLed process
	// loses nothing (the kernel holds the written bytes) but a machine
	// crash can lose the tail; on, every transition survives power loss at
	// a large throughput cost.
	Fsync bool
	// SnapshotEvery is the number of journal records between snapshot
	// compactions (<= 0 selects DefaultSnapshotEvery).
	SnapshotEvery int
	// Replica opens the store in replica mode: direct mutations are
	// rejected with ErrReplica, jobs left running by a crashed primary are
	// NOT re-queued (the replica keeps mirroring the primary's view), and
	// the only write path is ApplyFeed. Promote flips the store to
	// read-write. See replication.go.
	Replica bool
	// Telemetry receives the store's metrics (journal size/records,
	// compaction count and duration, replay time, fsync latency). Nil
	// allocates a private registry. A store reopened into the same
	// registry — a standby demoted back to replica mode — keeps
	// accumulating into the same counters.
	Telemetry *telemetry.Registry
}

// fileMetrics bundles the instruments updated on the journal write and
// compaction paths; scrape-time gauges (live record count, journal bytes)
// are GaugeFuncs registered in Open.
type fileMetrics struct {
	records           *telemetry.Counter
	compactions       *telemetry.Counter
	compactionSeconds *telemetry.Histogram
	fsyncSeconds      *telemetry.Histogram
	replaySeconds     *telemetry.Gauge
}

// File is the durable backend: a Memory view kept in lockstep with an
// append-only JSONL write-ahead journal. One record is appended per job
// transition (submit/start/finish); every SnapshotEvery records the
// journal is rotated aside and a background goroutine writes the full view
// to SnapshotName (tmp-file + fsync + rename + dir sync), then deletes the
// rotated journal — so the log never grows without bound and the
// transition that trips the threshold pays only a rename, not the
// snapshot write. Open replays snapshot + rotated journal + journal,
// tolerating a torn trailing record, and re-queues jobs that were running
// at crash time; every replay step is idempotent, so a crash anywhere in
// the compaction pipeline converges to the same state.
type File struct {
	cfg     FileConfig
	mem     *Memory
	metrics fileMetrics

	// mu serialises mutations (journal appends, rotation, close); reads go
	// straight to the Memory view under its own lock, so they are never
	// blocked by an in-flight compaction.
	mu      sync.Mutex
	idle    *sync.Cond // signalled when a background compaction finishes
	journal *os.File
	lock    *os.File // flock'd LockName handle; kernel-released on death
	recs    int      // records in the current journal, drives compaction

	// Replication state. Every record carries a log sequence number (LSN)
	// that survives compaction and restarts; epoch is the fencing token
	// bumped by each promotion. tail keeps the most recent records in
	// memory — covering (baseLSN, lsn] — so Feed can serve a caught-up
	// replica without touching the (possibly rotated) journal files.
	lsn     int64
	epoch   int64
	baseLSN int64
	tail    []rec
	replica bool // read-only until Promote

	// compacting marks a background compaction in flight; retryInline
	// marks that the last one failed (the rotated journal still exists),
	// so the next trigger compacts synchronously instead of rotating
	// again. compactErr carries the failure to that retry's caller.
	compacting  bool
	retryInline bool
	compactErr  error
	closed      bool
}

// testHookCompacting, when set, is called by the background compactor
// before it writes the snapshot — tests use it to hold a compaction open
// while asserting that transitions do not block behind it.
var testHookCompacting func()

// rec is one journal line. LSN is the record's log sequence number —
// monotonic across compactions and restarts, the replication stream's
// cursor. Records written before LSNs existed carry none and are assigned
// one during replay. The "epoch" op records a promotion (see
// replication.go); it carries no job transition.
type rec struct {
	Op     string          `json:"op"` // "submit" | "start" | "finish" | "trace" | "attempts" | "epoch"
	LSN    int64           `json:"lsn,omitempty"`
	ID     int64           `json:"id,omitempty"`
	At     time.Time       `json:"at,omitzero"`
	Spec   json.RawMessage `json:"spec,omitempty"`
	State  State           `json:"state,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Trace  json.RawMessage `json:"trace,omitempty"`
	// Attempts carries the portfolio attempt ledger of an "attempts" op.
	Attempts json.RawMessage `json:"attempts,omitempty"`
	Epoch    int64           `json:"epoch,omitempty"`
}

// snapshot is the compacted full state. LSN is the last record folded in;
// Epoch the fencing epoch at capture time.
type snapshot struct {
	NextID   int64   `json:"next_id"`
	Finished []int64 `json:"finished"`
	Jobs     []Job   `json:"jobs"`
	LSN      int64   `json:"lsn,omitempty"`
	Epoch    int64   `json:"epoch,omitempty"`
}

// Open loads (or creates) a durable store in cfg.Dir. Recovery is
// crash-tolerant in three ways: a truncated or corrupt trailing journal
// line (a torn write) is discarded, records already reflected in the
// snapshot (the windows inside the compaction pipeline) replay as no-ops,
// and a rotated journal left by a compaction that never finished is
// replayed before the live journal and folded into a fresh snapshot. Jobs
// left queued or running by the previous process come back queued, ready
// for the service to re-admit.
func Open(cfg FileConfig) (*File, error) {
	if cfg.History <= 0 {
		cfg.History = DefaultHistory
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lock, err := lockDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	f := &File{cfg: cfg, mem: NewMemory(cfg.History), lock: lock}
	f.idle = sync.NewCond(&f.mu)
	f.registerMetrics()
	fail := func(err error) (*File, error) {
		if lock != nil {
			lock.Close()
		}
		return nil, err
	}

	replayStart := time.Now()
	if data, err := os.ReadFile(filepath.Join(cfg.Dir, SnapshotName)); err == nil {
		var snap snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return fail(fmt.Errorf("store: corrupt snapshot %s: %w", SnapshotName, err))
		}
		f.mem.install(snap.NextID, snap.Finished, snap.Jobs)
		f.lsn, f.epoch = snap.LSN, snap.Epoch
		f.baseLSN = snap.LSN
	} else if !os.IsNotExist(err) {
		return fail(fmt.Errorf("store: %w", err))
	}

	// A rotated journal on disk means the previous process died (or
	// errored) mid-compaction: its records precede the live journal's and
	// may or may not be in the snapshot — idempotent replay covers both.
	_, prevRecs, err := f.replay(JournalPrevName)
	if err != nil {
		return fail(err)
	}
	good, applied, err := f.replay(JournalName)
	if err != nil {
		return fail(err)
	}
	f.replica = cfg.Replica
	if !cfg.Replica {
		// A primary re-queues whatever was running at crash time so the
		// service re-runs it. A replica must not: its view mirrors the
		// primary's, and the re-queue happens at Promote instead.
		f.mem.requeueRunning()
	}

	journal, err := os.OpenFile(filepath.Join(cfg.Dir, JournalName),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fail(fmt.Errorf("store: %w", err))
	}
	// Drop a torn tail before appending, or the partial line would fuse
	// with the next record and corrupt the journal mid-file.
	if err := journal.Truncate(good); err != nil {
		journal.Close()
		return fail(fmt.Errorf("store: truncating torn journal tail: %w", err))
	}
	f.journal = journal
	f.recs = applied
	if prevRecs > 0 || f.recs >= f.cfg.SnapshotEvery {
		// Fold everything into a fresh snapshot now, synchronously: Open
		// has no concurrent writers to stall, and it clears the rotated
		// journal so the background path starts from a clean slate.
		if err := f.compactInline(); err != nil {
			journal.Close()
			return fail(err)
		}
	}
	f.metrics.replaySeconds.Set(time.Since(replayStart).Seconds())
	return f, nil
}

// registerMetrics creates the store's instruments in cfg.Telemetry.
// GaugeFunc callbacks are rebound to this File, so the registry keeps
// reporting the live instance across reopens.
func (f *File) registerMetrics() {
	reg := f.cfg.Telemetry
	f.metrics = fileMetrics{
		records: reg.Counter("hypersolve_store_records_total",
			"Records appended to the write-ahead journal."),
		compactions: reg.Counter("hypersolve_store_compactions_total",
			"Snapshot compactions completed (background and inline)."),
		compactionSeconds: reg.Histogram("hypersolve_store_compaction_seconds",
			"Wall time of one snapshot compaction.", telemetry.DurationBuckets),
		fsyncSeconds: reg.Histogram("hypersolve_store_fsync_seconds",
			"Latency of one per-record journal fsync (only populated with Fsync on).", telemetry.FsyncBuckets),
		replaySeconds: reg.Gauge("hypersolve_store_replay_seconds",
			"Time Open spent replaying the snapshot and journals."),
	}
	reg.GaugeFunc("hypersolve_store_journal_records",
		"Records in the live journal since the last compaction.", func() float64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return float64(f.recs)
		})
	reg.GaugeFunc("hypersolve_store_journal_bytes",
		"Size of the live journal file.", func() float64 {
			fi, err := os.Stat(filepath.Join(f.cfg.Dir, JournalName))
			if err != nil {
				return 0
			}
			return float64(fi.Size())
		})
}

// replay applies one journal file to the in-memory view, stopping at the
// first incomplete or unparsable line. It returns the byte offset of the
// end of the last good record and how many records were applied; a missing
// file is zero records.
func (f *File) replay(name string) (good int64, applied int, err error) {
	data, err := os.ReadFile(filepath.Join(f.cfg.Dir, name))
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("store: %w", err)
	}
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn write: no terminating newline
		}
		var r rec
		if json.Unmarshal(data[:nl], &r) != nil {
			break // torn or corrupt record: discard it and everything after
		}
		f.applyRec(r)
		good += int64(nl + 1)
		applied++
		data = data[nl+1:]
	}
	return good, applied, nil
}

// applyRec folds one journal record into the in-memory view and advances
// the replication cursor. Pre-LSN records (upgraded stores) are assigned
// the next sequence number; LSN'd records already reflected in the view
// (crash windows, replica catch-up) advance the cursor without mutating.
func (f *File) applyRec(r rec) {
	switch r.Op {
	case "submit":
		f.mem.restoreSubmit(r.ID, r.Spec, r.At)
	case "start":
		f.mem.restoreStart(r.ID, r.At)
	case "finish":
		f.mem.restoreFinish(r.ID, r.State, r.At, r.Error, r.Result)
	case "trace":
		f.mem.restoreTrace(r.ID, r.Trace)
	case "attempts":
		f.mem.restoreAttempts(r.ID, r.Attempts)
	case "epoch":
		if r.Epoch > f.epoch {
			f.epoch = r.Epoch
		}
	}
	if r.LSN == 0 {
		r.LSN = f.lsn + 1
	}
	if r.LSN > f.lsn {
		f.lsn = r.LSN
		f.tailPush(r)
	}
}

// tailPush retains r in the in-memory feed tail, trimming it to the cap so
// a slow replica costs bounded memory (it falls back to a snapshot
// bootstrap once the tail no longer reaches back far enough).
func (f *File) tailPush(r rec) {
	f.tail = append(f.tail, r)
	if cap := 2 * f.cfg.SnapshotEvery; len(f.tail) > cap {
		drop := len(f.tail) - cap
		f.tail = append(f.tail[:0:0], f.tail[drop:]...)
	}
	f.baseLSN = f.lsn - int64(len(f.tail))
}

// append journals one record on the primary write path: it stamps the next
// LSN, retains the record in the feed tail, and hands it to the shared
// write path. The in-memory view has already been updated: on a write
// error the view stays authoritative for this process and the error
// reports the lost durability to the caller.
func (f *File) append(r rec) error {
	r.LSN = f.lsn + 1
	f.lsn = r.LSN
	f.tailPush(r)
	return f.appendLocked(r)
}

// appendLocked writes one already-LSN'd record to the journal. Crossing the
// SnapshotEvery threshold rotates the journal aside and hands the snapshot
// write to a background goroutine; the append itself pays only the rename.
// Callers hold f.mu.
func (f *File) appendLocked(r rec) error {
	data, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.journal.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("store: journal append: %w", err)
	}
	if f.cfg.Fsync {
		syncStart := time.Now()
		if err := f.journal.Sync(); err != nil {
			return fmt.Errorf("store: journal sync: %w", err)
		}
		f.metrics.fsyncSeconds.Observe(time.Since(syncStart).Seconds())
	}
	f.metrics.records.Inc()
	f.recs++
	if f.recs < f.cfg.SnapshotEvery || f.compacting {
		return nil
	}
	if f.retryInline {
		// The last background compaction failed and its rotated journal is
		// still on disk; a second rotation would orphan it. Pay the stall
		// and fold everything synchronously. A successful retry heals the
		// earlier failure (the fresh snapshot supersedes it), so only a
		// renewed failure is surfaced to this transition.
		f.retryInline = false
		if err := f.compactInline(); err != nil {
			f.retryInline = true
			f.compactErr = errors.Join(f.compactErr, err)
			return err
		}
		f.compactErr = nil
		return nil
	}
	return f.rotateAndCompact()
}

// rotateAndCompact captures the view, rotates the live journal aside and
// spawns the background snapshot write. Callers hold f.mu; the critical
// section costs two renames, not a snapshot marshal.
func (f *File) rotateAndCompact() error {
	nextID, finished, jobs := f.mem.snapshotState()
	dir := f.cfg.Dir
	live := filepath.Join(dir, JournalName)
	prev := filepath.Join(dir, JournalPrevName)
	if err := os.Rename(live, prev); err != nil {
		return fmt.Errorf("store: rotating journal: %w", err)
	}
	fresh, err := os.OpenFile(live, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// Roll the rotation back so the store keeps appending to a journal
		// that Open knows how to find.
		if rerr := os.Rename(prev, live); rerr != nil {
			return fmt.Errorf("store: rotation failed and could not be undone (%v): %w", rerr, err)
		}
		return fmt.Errorf("store: opening fresh journal: %w", err)
	}
	// Make the rename and the fresh journal's directory entry durable now:
	// records fsynced into the fresh journal must not be orphaned by a
	// power loss that forgets the rotation itself.
	if err := syncDir(dir); err != nil {
		fresh.Close()
		if rerr := os.Rename(prev, live); rerr != nil {
			return fmt.Errorf("store: rotation failed and could not be undone (%v): %w", rerr, err)
		}
		return err
	}
	rotated := f.journal
	f.journal = fresh
	f.recs = 0
	f.compacting = true
	go f.finishCompaction(rotated, snapshot{NextID: nextID, Finished: finished, Jobs: jobs, LSN: f.lsn, Epoch: f.epoch})
	return nil
}

// finishCompaction runs off the transition path: it settles the rotated
// journal, writes the captured view as the new snapshot and deletes the
// rotated journal. On failure the rotated journal stays behind — replay
// remains correct — and the next threshold crossing retries inline.
func (f *File) finishCompaction(rotated *os.File, snap snapshot) {
	if testHookCompacting != nil {
		testHookCompacting()
	}
	compactStart := time.Now()
	err := func() error {
		// Settle the rotated journal first: the snapshot must never be the
		// only durable copy of records the journal still owns.
		if err := rotated.Sync(); err != nil {
			rotated.Close()
			return fmt.Errorf("store: syncing rotated journal: %w", err)
		}
		if err := rotated.Close(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := writeSnapshot(f.cfg.Dir, snap); err != nil {
			return err
		}
		if err := os.Remove(filepath.Join(f.cfg.Dir, JournalPrevName)); err != nil {
			return fmt.Errorf("store: removing rotated journal: %w", err)
		}
		return syncDir(f.cfg.Dir)
	}()

	f.mu.Lock()
	f.compacting = false
	if err != nil {
		f.retryInline = true
		f.compactErr = err
	} else {
		f.metrics.compactions.Inc()
		f.metrics.compactionSeconds.Observe(time.Since(compactStart).Seconds())
	}
	f.idle.Broadcast()
	f.mu.Unlock()
}

// compactInline writes the full current view to the snapshot and truncates
// both journals, all under f.mu — the synchronous fallback used by Open
// and by the retry path after a failed background compaction.
func (f *File) compactInline() error {
	compactStart := time.Now()
	nextID, finished, jobs := f.mem.snapshotState()
	if err := writeSnapshot(f.cfg.Dir, snapshot{NextID: nextID, Finished: finished, Jobs: jobs, LSN: f.lsn, Epoch: f.epoch}); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(f.cfg.Dir, JournalPrevName)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: removing rotated journal: %w", err)
	}
	if err := syncDir(f.cfg.Dir); err != nil {
		return err
	}
	if err := f.journal.Truncate(0); err != nil {
		return fmt.Errorf("store: truncating journal: %w", err)
	}
	f.recs = 0
	f.metrics.compactions.Inc()
	f.metrics.compactionSeconds.Observe(time.Since(compactStart).Seconds())
	return nil
}

// writeSnapshot persists snap via tmp-file + fsync + rename + dir sync, so
// a crash leaves either the old snapshot or the new one, never a torn mix.
func writeSnapshot(dir string, snap snapshot) error {
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, SnapshotName)
	tmp := path + ".tmp"
	w, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err = w.Write(append(data, '\n')); err == nil {
		err = w.Sync()
	}
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: syncing %s: %w", dir, err)
	}
	return nil
}

// Submit implements Store: the admission is recorded in the view and
// journaled; a failed journal append rolls the view back.
func (f *File) Submit(spec json.RawMessage, at time.Time) (Job, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return Job{}, ErrClosed
	}
	if f.replica {
		return Job{}, ErrReplica
	}
	j, err := f.mem.Submit(spec, at)
	if err != nil {
		return Job{}, err
	}
	if err := f.append(rec{Op: "submit", ID: j.ID, At: at, Spec: spec}); err != nil {
		// Unlike Start/Finish (where the view staying ahead of the journal
		// only costs durability), a failed admission must leave no trace:
		// the service rejects the submission, so a job surviving in the
		// view would be visible-but-unrunnable forever. If the record did
		// reach the journal before the failure (fsync, compaction), the
		// next Open resurrects the job queued and simply re-runs it.
		f.mem.rollbackSubmit(j.ID)
		return Job{}, err
	}
	return j, nil
}

// Start implements Store: the transition is recorded in the view and
// journaled.
func (f *File) Start(id int64, at time.Time) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if f.replica {
		return ErrReplica
	}
	if err := f.mem.Start(id, at); err != nil {
		return err
	}
	return f.append(rec{Op: "start", ID: id, At: at})
}

// Finish implements Store: the terminal transition (with error message
// and result payload) is recorded in the view and journaled.
func (f *File) Finish(id int64, state State, at time.Time, errMsg string, result json.RawMessage) ([]int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	if f.replica {
		return nil, ErrReplica
	}
	evicted, err := f.mem.Finish(id, state, at, errMsg, result)
	if err != nil {
		return nil, err
	}
	return evicted, f.append(rec{Op: "finish", ID: id, At: at, State: state, Error: errMsg, Result: result})
}

// SetTrace implements Store: the trace timeline is attached in the view
// and journaled as its own record, so it replicates to standbys and is
// folded into snapshots like any transition.
func (f *File) SetTrace(id int64, trace json.RawMessage) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if f.replica {
		return ErrReplica
	}
	if err := f.mem.SetTrace(id, trace); err != nil {
		return err
	}
	return f.append(rec{Op: "trace", ID: id, Trace: trace})
}

// SetAttempts implements Store: the portfolio attempt ledger is attached
// in the view and journaled as its own "attempts" record, so it replicates
// to standbys and is folded into snapshots like any transition.
func (f *File) SetAttempts(id int64, attempts json.RawMessage) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if f.replica {
		return ErrReplica
	}
	if err := f.mem.SetAttempts(id, attempts); err != nil {
		return err
	}
	return f.append(rec{Op: "attempts", ID: id, Attempts: attempts})
}

// Get implements Store, reading the in-memory view (never blocked by an
// in-flight compaction).
func (f *File) Get(id int64) (Job, bool) { return f.mem.Get(id) }

// List implements Store, reading the in-memory view (never blocked by an
// in-flight compaction).
func (f *File) List(states ...State) []Job { return f.mem.List(states...) }

// barrier waits for any in-flight background compaction to settle — the
// hook tests and Close use to observe a quiescent directory.
func (f *File) barrier() {
	f.mu.Lock()
	for f.compacting {
		f.idle.Wait()
	}
	f.mu.Unlock()
}

// Close waits out any in-flight compaction, then syncs and closes the
// journal and releases the directory lock. The in-memory view stays
// readable (Get/List), matching the Memory backend after a service
// shutdown. A compaction failure that no transition has surfaced yet is
// returned here.
func (f *File) Close() error {
	f.mu.Lock()
	for f.compacting {
		f.idle.Wait()
	}
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	pending := f.compactErr
	f.compactErr = nil
	f.mu.Unlock()

	if f.lock != nil {
		defer f.lock.Close()
	}
	if err := f.journal.Sync(); err != nil {
		f.journal.Close()
		return errors.Join(pending, fmt.Errorf("store: %w", err))
	}
	if err := f.journal.Close(); err != nil {
		return errors.Join(pending, fmt.Errorf("store: %w", err))
	}
	return pending
}
