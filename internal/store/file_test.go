package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// crash simulates process death for a live handle: the directory lock is
// released (as the kernel would on exit) but the journal is left unclosed
// and no records are written. Everything appended before the "crash" is
// already visible through the kernel.
func (f *File) crash() {
	if f.lock != nil {
		f.lock.Close()
		f.lock = nil
	}
}

// reopen opens a store on dir, crashing prev first (nil = initial open).
func reopen(t *testing.T, prev *File, dir string, cfg FileConfig) *File {
	t.Helper()
	if prev != nil {
		prev.crash()
	}
	cfg.Dir = dir
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestReplayEqualsPreCrashState is the satellite acceptance check: after a
// crash, snapshot+journal replay reconstructs exactly the state the live
// store held — terminal jobs verbatim, queued jobs verbatim.
func TestReplayEqualsPreCrashState(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, nil, dir, FileConfig{})

	for i := 1; i <= 3; i++ {
		j, err := s.Submit(spec(i), at(i))
		if err != nil {
			t.Fatal(err)
		}
		_ = s.Start(j.ID, at(i))
		if _, err := s.Finish(j.ID, StateDone, at(i+1), "", json.RawMessage(`{"ok":true}`)); err != nil {
			t.Fatal(err)
		}
	}
	failed, _ := s.Submit(spec(4), at(4))
	_ = s.Start(failed.ID, at(4))
	if _, err := s.Finish(failed.ID, StateFailed, at(5), "boom", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(spec(5), at(6)); err != nil { // still queued at crash
		t.Fatal(err)
	}
	before := s.List()

	crashed := reopen(t, s, dir, FileConfig{})
	if after := crashed.List(); !reflect.DeepEqual(before, after) {
		t.Fatalf("replayed state differs from pre-crash state:\nbefore: %+v\nafter:  %+v", before, after)
	}

	// New IDs continue after the recovered high-water mark.
	j, err := crashed.Submit(spec(6), at(7))
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != 6 {
		t.Fatalf("post-recovery ID = %d, want 6", j.ID)
	}
}

// TestRunningJobRequeuedOnOpen: a job that was running at crash time comes
// back queued with its StartedAt cleared, ready for re-execution.
func TestRunningJobRequeuedOnOpen(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, nil, dir, FileConfig{})
	j, err := s.Submit(spec(1), at(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(j.ID, at(1)); err != nil {
		t.Fatal(err)
	}

	crashed := reopen(t, s, dir, FileConfig{})
	got, ok := crashed.Get(j.ID)
	if !ok {
		t.Fatal("running job lost across crash")
	}
	if got.State != StateQueued || !got.StartedAt.IsZero() {
		t.Fatalf("running-at-crash job = %+v, want queued with zero StartedAt", got)
	}
}

// TestTornTrailingRecordTolerated: a partial (torn) trailing journal line —
// with or without a newline — is discarded on open, the journal is
// truncated past it, and subsequent appends produce a clean journal.
func TestTornTrailingRecordTolerated(t *testing.T) {
	for _, tail := range []string{
		`{"op":"submit","id":2,"at":"2026-07-3`,        // torn mid-record, no newline
		`{"op":"submit","id":2,"at":"2026-07-3` + "\n", // corrupt line with newline
		"\x00\x00\x00\x00\n",                           // block of zeroes (common torn-write residue)
	} {
		dir := t.TempDir()
		s := reopen(t, nil, dir, FileConfig{})
		j, err := s.Submit(spec(1), at(0))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Finish(j.ID, StateCancelled, at(1), "", nil); err != nil {
			t.Fatal(err)
		}
		s.Close()

		journal := filepath.Join(dir, JournalName)
		f, err := os.OpenFile(journal, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(tail); err != nil {
			t.Fatal(err)
		}
		f.Close()

		recovered := reopen(t, s, dir, FileConfig{})
		got, ok := recovered.Get(1)
		if !ok || got.State != StateCancelled {
			t.Fatalf("tail %q: job 1 = %+v, want cancelled", tail, got)
		}
		if _, ok := recovered.Get(2); ok {
			t.Fatalf("tail %q: torn submit resurrected job 2", tail)
		}
		if _, err := recovered.Submit(spec(2), at(2)); err != nil {
			t.Fatal(err)
		}

		// The journal must replay cleanly again: the torn bytes are gone.
		final := reopen(t, recovered, dir, FileConfig{})
		if jobs := final.List(); len(jobs) != 2 {
			t.Fatalf("tail %q: final state = %+v, want 2 jobs", tail, jobs)
		}
	}
}

// TestSnapshotCompaction: the journal is truncated every SnapshotEvery
// records and the full state moves into the snapshot; recovery then starts
// from the snapshot, and the whole history survives.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, nil, dir, FileConfig{SnapshotEvery: 5})
	for i := 1; i <= 4; i++ {
		j, _ := s.Submit(spec(i), at(i))
		_ = s.Start(j.ID, at(i))
		if _, err := s.Finish(j.ID, StateDone, at(i), "", nil); err != nil {
			t.Fatal(err)
		}
	}
	// Compaction happens on a background goroutine; settle it before
	// inspecting the directory.
	s.barrier()
	// 12 records written at SnapshotEvery=5: at least two compactions.
	if _, err := os.Stat(filepath.Join(dir, SnapshotName)); err != nil {
		t.Fatalf("no snapshot after 12 records: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, JournalPrevName)); !os.IsNotExist(err) {
		t.Fatalf("rotated journal still present after compaction settled: %v", err)
	}
	info, err := os.Stat(filepath.Join(dir, JournalName))
	if err != nil {
		t.Fatal(err)
	}
	// The live journal holds only the records since the last compaction
	// (12 mod 5 = 2 records).
	if info.Size() > 2*300 {
		t.Fatalf("journal grew to %d bytes despite compaction", info.Size())
	}

	recovered := reopen(t, s, dir, FileConfig{SnapshotEvery: 5})
	jobs := recovered.List(StateDone)
	if len(jobs) != 4 {
		t.Fatalf("recovered %d done jobs, want 4", len(jobs))
	}
}

// TestStaleJournalReplaysIdempotently simulates the compaction crash
// window: the snapshot was renamed into place but the journal was not yet
// truncated, so every journal record is already reflected in the snapshot.
// Replay must converge to the same state, not double-apply.
func TestStaleJournalReplaysIdempotently(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, nil, dir, FileConfig{})
	j, _ := s.Submit(spec(1), at(0))
	_ = s.Start(j.ID, at(1))
	if _, err := s.Finish(j.ID, StateDone, at(2), "", json.RawMessage(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(spec(2), at(3)); err != nil {
		t.Fatal(err)
	}
	before := s.List()
	s.Close()

	// Hand-write the snapshot the crashed compaction would have left, with
	// the full journal still in place behind it.
	nextID, finished, jobs := s.mem.snapshotState()
	data, err := json.Marshal(snapshot{NextID: nextID, Finished: finished, Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, SnapshotName), data, 0o644); err != nil {
		t.Fatal(err)
	}

	recovered := reopen(t, s, dir, FileConfig{})
	if after := recovered.List(); !reflect.DeepEqual(before, after) {
		t.Fatalf("stale journal double-applied:\nbefore: %+v\nafter:  %+v", before, after)
	}
	if j, err := recovered.Submit(spec(3), at(4)); err != nil || j.ID != 3 {
		t.Fatalf("post-recovery submit = %+v, %v, want ID 3", j, err)
	}
}

// TestAttemptsSurviveReplayAndCompaction: the attempt ledger written by a
// portfolio race must come back byte-identical after a crash + journal
// replay, and again after the journal has been fully folded into a
// snapshot — the durability contract behind a promoted standby re-serving
// attempt history.
func TestAttemptsSurviveReplayAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, nil, dir, FileConfig{SnapshotEvery: 4})
	j, err := s.Submit(spec(1), at(0))
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Start(j.ID, at(1))
	stale := json.RawMessage(`{"winner":"","attempts":[{"strategy":"rr","state":"running"},{"strategy":"lbn","state":"running"}]}`)
	if err := s.SetAttempts(j.ID, stale); err != nil {
		t.Fatal(err)
	}
	final := json.RawMessage(`{"winner":"lbn","attempts":[{"strategy":"rr","state":"cancelled"},{"strategy":"lbn","state":"done","winner":true}]}`)
	if err := s.SetAttempts(j.ID, final); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finish(j.ID, StateDone, at(2), "", json.RawMessage(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}

	// Crash + replay from the raw journal: last attempts record wins.
	crashed := reopen(t, s, dir, FileConfig{SnapshotEvery: 4})
	got, ok := crashed.Get(j.ID)
	if !ok || string(got.Attempts) != string(final) {
		t.Fatalf("attempts after replay = %s, want %s", got.Attempts, final)
	}

	// Push past SnapshotEvery so the ledger's records fold into a snapshot,
	// then replay again from the snapshot.
	for i := 2; i <= 4; i++ {
		jj, _ := crashed.Submit(spec(i), at(i))
		_ = crashed.Start(jj.ID, at(i))
		if _, err := crashed.Finish(jj.ID, StateDone, at(i+1), "", nil); err != nil {
			t.Fatal(err)
		}
	}
	crashed.barrier()
	compacted := reopen(t, crashed, dir, FileConfig{SnapshotEvery: 4})
	got, ok = compacted.Get(j.ID)
	if !ok || string(got.Attempts) != string(final) {
		t.Fatalf("attempts after compaction = %s, want %s", got.Attempts, final)
	}
}

// TestFsyncBackendWorks exercises the fsync-per-record path end to end.
func TestFsyncBackendWorks(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, nil, dir, FileConfig{Fsync: true})
	j, err := s.Submit(spec(1), at(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finish(j.ID, StateDone, at(1), "", nil); err != nil {
		t.Fatal(err)
	}
	recovered := reopen(t, s, dir, FileConfig{Fsync: true})
	if got, ok := recovered.Get(j.ID); !ok || got.State != StateDone {
		t.Fatalf("fsync store lost job: %+v", got)
	}
}

// TestClosedStoreRejectsWrites: mutations after Close fail, reads keep
// working (mirroring the memory backend after a service shutdown).
func TestClosedStoreRejectsWrites(t *testing.T) {
	s := reopen(t, nil, t.TempDir(), FileConfig{})
	j, _ := s.Submit(spec(1), at(0))
	s.Close()
	if _, err := s.Submit(spec(2), at(1)); err == nil {
		t.Fatal("Submit after Close succeeded")
	}
	if err := s.Start(j.ID, at(1)); err == nil {
		t.Fatal("Start after Close succeeded")
	}
	if got, ok := s.Get(j.ID); !ok || got.ID != j.ID {
		t.Fatal("Get after Close failed")
	}
}

// TestDataDirLocked: a second store on the same data directory is refused
// while the first process (handle) holds the lock, and admitted once the
// holder dies or closes.
func TestDataDirLocked(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, nil, dir, FileConfig{})
	if _, err := Open(FileConfig{Dir: dir}); err == nil {
		t.Fatal("second Open on a locked data dir succeeded")
	}
	s.crash() // kernel releases the lock with the process
	again, err := Open(FileConfig{Dir: dir})
	if err != nil {
		t.Fatalf("Open after holder died: %v", err)
	}
	again.Close()
	// A graceful Close releases it too.
	third, err := Open(FileConfig{Dir: dir})
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	third.Close()
}

// TestSubmitRollsBackOnAppendFailure: a submission whose journal append
// fails must leave no trace in the view — otherwise the service would
// reject the submission while a zombie queued job stays visible forever.
func TestSubmitRollsBackOnAppendFailure(t *testing.T) {
	s := reopen(t, nil, t.TempDir(), FileConfig{})
	s.journal.Close() // force every append to fail
	if _, err := s.Submit(spec(1), at(0)); err == nil {
		t.Fatal("Submit with a dead journal succeeded")
	}
	if jobs := s.List(); len(jobs) != 0 {
		t.Fatalf("failed Submit left %+v in the view", jobs)
	}
	if _, ok := s.Get(1); ok {
		t.Fatal("failed Submit left job 1 gettable")
	}
}

// TestTimesSurviveRoundTrip pins that timestamps compare equal (DeepEqual)
// across the JSON journal round trip — the replay-equality guarantees above
// depend on it.
func TestTimesSurviveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, nil, dir, FileConfig{})
	now := time.Now().UTC() // UTC() strips the monotonic reading, as the service does
	j, err := s.Submit(spec(1), now)
	if err != nil {
		t.Fatal(err)
	}
	recovered := reopen(t, s, dir, FileConfig{})
	got, _ := recovered.Get(j.ID)
	if !reflect.DeepEqual(got.SubmittedAt, now) {
		t.Fatalf("SubmittedAt %#v != original %#v", got.SubmittedAt, now)
	}
}

// TestTransitionDuringCompactionDoesNotBlock is the satellite acceptance
// check for background compaction: while the compactor is held mid-write,
// submit/start/finish transitions must still complete — the snapshot write
// is off the journaling critical path.
func TestTransitionDuringCompactionDoesNotBlock(t *testing.T) {
	hold := make(chan struct{})
	entered := make(chan struct{}, 16)
	testHookCompacting = func() { entered <- struct{}{}; <-hold }
	t.Cleanup(func() { testHookCompacting = nil })

	dir := t.TempDir()
	s := reopen(t, nil, dir, FileConfig{SnapshotEvery: 3})
	j1, err := s.Submit(spec(1), at(0))
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Start(j1.ID, at(1))
	if _, err := s.Finish(j1.ID, StateDone, at(2), "", nil); err != nil {
		t.Fatal(err)
	}
	<-entered // the compactor is now parked inside the snapshot write

	done := make(chan struct{})
	go func() {
		defer close(done)
		j2, err := s.Submit(spec(2), at(3))
		if err != nil {
			t.Error(err)
			return
		}
		_ = s.Start(j2.ID, at(4))
		if _, err := s.Finish(j2.ID, StateDone, at(5), "", nil); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("transitions blocked behind an in-flight compaction")
	}
	before := s.List()
	close(hold)
	s.barrier()

	// Records appended during the compaction live in the fresh journal and
	// survive a crash + replay alongside the snapshot.
	recovered := reopen(t, s, dir, FileConfig{SnapshotEvery: 3})
	if after := recovered.List(); !reflect.DeepEqual(before, after) {
		t.Fatalf("state diverged across compaction + reopen:\nbefore: %+v\nafter:  %+v", before, after)
	}
}

// TestRotatedJournalReplayedOnOpen covers the crash window after the
// journal rotation but before the snapshot lands: the rotated journal's
// records must replay (before the live journal's) and fold into a fresh
// snapshot on the next Open.
func TestRotatedJournalReplayedOnOpen(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, nil, dir, FileConfig{})
	j1, err := s.Submit(spec(1), at(0))
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Start(j1.ID, at(1))
	if _, err := s.Finish(j1.ID, StateDone, at(2), "", json.RawMessage(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(spec(2), at(3)); err != nil {
		t.Fatal(err)
	}
	before := s.List()
	s.Close()

	// Stage the crash layout by hand: the journal was rotated aside and the
	// process died before the compactor wrote the snapshot. The live
	// journal then received one more record — here, none (a fresh file).
	if err := os.Rename(filepath.Join(dir, JournalName), filepath.Join(dir, JournalPrevName)); err != nil {
		t.Fatal(err)
	}

	recovered := reopen(t, s, dir, FileConfig{})
	if after := recovered.List(); !reflect.DeepEqual(before, after) {
		t.Fatalf("rotated journal not replayed:\nbefore: %+v\nafter:  %+v", before, after)
	}
	// Open folded everything into a fresh snapshot and cleared the rotated
	// journal.
	if _, err := os.Stat(filepath.Join(dir, JournalPrevName)); !os.IsNotExist(err) {
		t.Fatalf("rotated journal survived recovery: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, SnapshotName)); err != nil {
		t.Fatalf("recovery wrote no snapshot: %v", err)
	}
	// IDs continue after the replayed high-water mark.
	if j, err := recovered.Submit(spec(3), at(4)); err != nil || j.ID != 3 {
		t.Fatalf("post-recovery submit = %+v, %v, want ID 3", j, err)
	}
}

// TestBackgroundCompactionConvergesUnderLoad hammers a tiny SnapshotEvery
// so rotations race transitions, then checks a reopen sees exactly the
// live state.
func TestBackgroundCompactionConvergesUnderLoad(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, nil, dir, FileConfig{SnapshotEvery: 2})
	for i := 1; i <= 30; i++ {
		j, err := s.Submit(spec(i), at(i))
		if err != nil {
			t.Fatal(err)
		}
		_ = s.Start(j.ID, at(i))
		if _, err := s.Finish(j.ID, StateDone, at(i+1), "", nil); err != nil {
			t.Fatal(err)
		}
	}
	before := s.List()
	s.barrier()
	recovered := reopen(t, s, dir, FileConfig{SnapshotEvery: 2})
	if after := recovered.List(); !reflect.DeepEqual(before, after) {
		t.Fatalf("state diverged under compaction load:\nbefore: %d jobs\nafter:  %d jobs", len(before), len(after))
	}
}
