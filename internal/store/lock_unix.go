//go:build unix

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an advisory exclusive lock on the data directory so two
// stores (two daemons) can never journal into it concurrently — without
// this, interleaved appends and competing compactions would silently
// corrupt the history. flock is released by the kernel when the holding
// process dies, so a SIGKILLed daemon never wedges its directory.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, LockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: data dir %s is locked by another process: %w", dir, err)
	}
	return f, nil
}
