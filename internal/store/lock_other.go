//go:build !unix

package store

import "os"

// lockDir is a no-op on platforms without flock semantics; single-daemon
// discipline is the operator's responsibility there.
func lockDir(string) (*os.File, error) { return nil, nil }
