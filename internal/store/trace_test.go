package store

import (
	"encoding/json"
	"testing"

	"hypersolve/internal/tracelog"
)

// TestTracePersistsAndReplays: a journaled trace record survives reopen
// and the last write wins.
func TestTracePersistsAndReplays(t *testing.T) {
	dir := t.TempDir()
	f := reopen(t, nil, dir, FileConfig{})
	j, err := f.Submit(spec(1), at(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetTrace(j.ID, json.RawMessage(`{"trace_id":"aa","spans":[]}`)); err != nil {
		t.Fatal(err)
	}
	if err := f.SetTrace(j.ID, json.RawMessage(`{"trace_id":"bb","spans":[]}`)); err != nil {
		t.Fatal(err)
	}

	f = reopen(t, f, dir, FileConfig{})
	defer f.Close()
	sj, ok := f.Get(j.ID)
	if !ok {
		t.Fatal("job lost across reopen")
	}
	var tl tracelog.Timeline
	if err := json.Unmarshal(sj.Trace, &tl); err != nil {
		t.Fatal(err)
	}
	if tl.TraceID != "bb" {
		t.Fatalf("recovered trace ID = %q, want the last write bb", tl.TraceID)
	}
	if err := f.SetTrace(999, nil); err != ErrNotFound {
		t.Fatalf("SetTrace on unknown job = %v, want ErrNotFound", err)
	}
}

// TestTraceReplicatesWithApplySpan: a trace record ships over the WAL
// feed like any other, and the standby stamps a replica_apply span onto
// the timeline it stores — the one deliberate divergence from the
// primary's copy.
func TestTraceReplicatesWithApplySpan(t *testing.T) {
	p := reopen(t, nil, t.TempDir(), FileConfig{})
	r := reopen(t, nil, t.TempDir(), FileConfig{Replica: true})
	defer p.Close()
	defer r.Close()

	j, err := p.Submit(spec(1), at(1))
	if err != nil {
		t.Fatal(err)
	}
	tr := tracelog.NewTrace(tracelog.TraceContext{})
	tr.EndSpan(tr.StartSpan("admission"))
	if err := p.SetTrace(j.ID, tr.JSON()); err != nil {
		t.Fatal(err)
	}

	syncReplica(t, p, r)
	sj, ok := r.Get(j.ID)
	if !ok {
		t.Fatal("job did not replicate")
	}
	var tl tracelog.Timeline
	if err := json.Unmarshal(sj.Trace, &tl); err != nil {
		t.Fatal(err)
	}
	if tl.TraceID != tr.ID() {
		t.Fatalf("replicated trace ID = %q, want %q", tl.TraceID, tr.ID())
	}
	var names []string
	for _, sp := range tl.Spans {
		names = append(names, sp.Name)
	}
	if len(tl.Spans) != 2 || tl.Spans[1].Name != "replica_apply" {
		t.Fatalf("standby timeline spans = %v, want [admission replica_apply]", names)
	}
	if sp := tl.Spans[1]; sp.End.Before(sp.Start) || sp.ID <= tl.Spans[0].ID {
		t.Fatalf("replica_apply span malformed: %+v", sp)
	}
}
