package apps

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hypersolve/internal/mapping"
	"hypersolve/internal/mesh"
	"hypersolve/internal/recursion"
)

// runTask executes a task on a simulated machine and returns the root value.
func runTask(t *testing.T, topo mesh.Topology, mapper mapping.Factory, task recursion.Task, arg recursion.Value) recursion.Value {
	t.Helper()
	net, err := mapping.New(mapping.Config{
		Physical: topo,
		Mapper:   mapper,
		Factory:  recursion.AppFactory(task),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Trigger(0, arg); err != nil {
		t.Fatal(err)
	}
	if stats := net.Run(); !stats.Quiescent {
		t.Fatal("run did not quiesce")
	}
	v, ok := net.App(0).(*recursion.Runtime).RootResult()
	if !ok {
		t.Fatal("no root result")
	}
	return v
}

func TestSumTask(t *testing.T) {
	got := runTask(t, mesh.MustTorus(5, 5), mapping.NewRoundRobin(), SumTask(), 15)
	if got.(int) != 120 {
		t.Errorf("sum(15) = %v, want 120", got)
	}
}

func TestFibTaskMatchesSequential(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 11} {
		got := runTask(t, mesh.MustTorus(4, 4), mapping.NewLeastBusy(), FibTask(), n)
		if want := FibSeq(n); got.(int) != want {
			t.Errorf("fib(%d) = %v, want %d", n, got, want)
		}
	}
}

func TestUnbalancedTask(t *testing.T) {
	for _, d := range []int{0, 1, 4, 8} {
		got := runTask(t, mesh.MustTorus(4, 4), mapping.NewWeighted(1), UnbalancedTask(), d)
		if want := UnbalancedSeq(d); got.(int) != want {
			t.Errorf("unbalanced(%d) = %v, want %d", d, got, want)
		}
	}
}

func TestQueensSeqKnownCounts(t *testing.T) {
	want := map[int]int{1: 1, 2: 0, 3: 0, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92}
	for n, w := range want {
		if got := QueensSeq(n); got != w {
			t.Errorf("QueensSeq(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestQueensTaskMatchesSequential(t *testing.T) {
	for _, n := range []int{4, 5, 6} {
		got := runTask(t, mesh.MustTorus(5, 5), mapping.NewRoundRobin(),
			QueensTask(2), QueensState{N: n})
		if want := QueensSeq(n); got.(int) != want {
			t.Errorf("distributed queens(%d) = %v, want %d", n, got, want)
		}
	}
}

func TestQueensCutoffEquivalence(t *testing.T) {
	// All grain sizes must count the same solutions.
	for _, cutoff := range []int{0, 1, 3, 10} {
		got := runTask(t, mesh.MustTorus(4, 4), mapping.NewLeastBusy(),
			QueensTask(cutoff), QueensState{N: 6})
		if got.(int) != 4 {
			t.Errorf("cutoff %d: queens(6) = %v, want 4", cutoff, got)
		}
	}
}

func TestKnapsackOracles(t *testing.T) {
	items := []Item{{Weight: 3, Value: 4}, {Weight: 2, Value: 3}, {Weight: 4, Value: 5}, {Weight: 5, Value: 8}}
	if got, want := KnapsackSeq(items, 9), KnapsackDP(items, 9); got != want {
		t.Errorf("KnapsackSeq = %d, DP = %d", got, want)
	}
}

func TestPropertyKnapsackSeqMatchesDP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{Weight: 1 + rng.Intn(9), Value: 1 + rng.Intn(20)}
		}
		capacity := 5 + rng.Intn(25)
		return KnapsackSeq(items, capacity) == KnapsackDP(items, capacity)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestKnapsackTaskMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		n := 6 + rng.Intn(5)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{Weight: 1 + rng.Intn(8), Value: 1 + rng.Intn(15)}
		}
		capacity := 10 + rng.Intn(15)
		want := KnapsackDP(items, capacity)
		got := runTask(t, mesh.MustTorus(4, 4), mapping.NewWeighted(1),
			KnapsackTask(2), NewKnapsack(items, capacity))
		if got.(int) != want {
			t.Errorf("trial %d: distributed knapsack = %v, want %d", trial, got, want)
		}
	}
}

func TestKnapsackBound(t *testing.T) {
	p := NewKnapsack([]Item{{Weight: 2, Value: 10}, {Weight: 4, Value: 10}}, 4)
	// Fractional bound: item 1 fully (10) + half of item 2 (5) = 15.
	if b := p.Bound(); b < 14.9 || b > 15.1 {
		t.Errorf("Bound = %v, want 15", b)
	}
}

func TestTraversalVisitsEverythingAtDistance(t *testing.T) {
	for _, topo := range []mesh.Topology{
		mesh.MustTorus(6, 6),
		mesh.MustHypercube(5),
		mesh.MustGrid(5, 4),
	} {
		steps, stats, err := RunTraversal(topo, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Quiescent {
			t.Fatalf("%s: traversal did not quiesce", topo.Name())
		}
		for n, s := range steps {
			if s < 0 {
				t.Errorf("%s: node %d unreachable", topo.Name(), n)
				continue
			}
			if d := int64(topo.Distance(0, mesh.NodeID(n))); s < d {
				t.Errorf("%s: node %d visited at %d before distance %d", topo.Name(), n, s, d)
			}
		}
	}
}

func TestQueensEdgeCases(t *testing.T) {
	if got := QueensSeq(0); got != 1 {
		t.Errorf("QueensSeq(0) = %d, want 1 (empty placement)", got)
	}
	got := runTask(t, mesh.MustTorus(4, 4), mapping.NewRoundRobin(), QueensTask(0), QueensState{N: 1})
	if got.(int) != 1 {
		t.Errorf("queens(1) = %v, want 1", got)
	}
	// N=3 has no solutions; the distributed count must agree.
	got = runTask(t, mesh.MustTorus(4, 4), mapping.NewRoundRobin(), QueensTask(0), QueensState{N: 3})
	if got.(int) != 0 {
		t.Errorf("queens(3) = %v, want 0", got)
	}
}

func TestKnapsackEdgeCases(t *testing.T) {
	// Zero capacity: nothing fits.
	items := []Item{{Weight: 2, Value: 10}, {Weight: 3, Value: 5}}
	if got := KnapsackSeq(items, 0); got != 0 {
		t.Errorf("zero-capacity value = %d, want 0", got)
	}
	if got := KnapsackDP(items, 0); got != 0 {
		t.Errorf("DP zero-capacity value = %d, want 0", got)
	}
	// Capacity fits everything.
	if got, want := KnapsackSeq(items, 5), 15; got != want {
		t.Errorf("all-fit value = %d, want %d", got, want)
	}
	// No items.
	if got := KnapsackSeq(nil, 10); got != 0 {
		t.Errorf("no-items value = %d, want 0", got)
	}
}

func TestTraversalOnStarAndRing(t *testing.T) {
	for _, topo := range []mesh.Topology{mesh.MustStar(9), mesh.MustRing(9)} {
		steps, stats, err := RunTraversal(topo, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Quiescent {
			t.Fatalf("%s: no quiescence", topo.Name())
		}
		for n, s := range steps {
			if s < 0 {
				t.Errorf("%s: node %d unreachable", topo.Name(), n)
			}
		}
	}
}

func TestTraversalMaxStepsAbort(t *testing.T) {
	// With MaxSteps 1 the flood cannot finish on a large ring.
	_, stats, err := RunTraversal(mesh.MustRing(64), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Quiescent {
		t.Error("expected abort before quiescence")
	}
}
