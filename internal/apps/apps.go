// Package apps collects layer-5 applications for the hyperspace solver
// framework beyond SAT: the paper's running examples (Listings 1-3) and two
// further combinatorial solvers (N-Queens, 0/1 knapsack) that exercise
// fork-join recursion with different tree shapes — fixed fan-out,
// variable fan-out and value-maximising reduction.
package apps

import (
	"hypersolve/internal/recursion"
)

// SumTask is the paper's Listing 3: sum(n) = n + sum(n-1), a linear chain
// of delegated subcalls.
func SumTask() recursion.Task {
	return func(f *recursion.Frame, arg recursion.Value) recursion.Value {
		n := arg.(int)
		if n < 1 {
			return 0
		}
		total := f.CallSync(n - 1).(int)
		return total + n
	}
}

// FibTask forks two subcalls per level — the canonical fork-join benchmark
// with a fixed fan-out of two and a predictable unfolding (the workload
// class the paper's Section III-B2 argues suits static mapping).
func FibTask() recursion.Task {
	return func(f *recursion.Frame, arg recursion.Value) recursion.Value {
		n := arg.(int)
		if n < 2 {
			return n
		}
		f.Call(n - 1)
		f.Call(n - 2)
		vs := f.Sync()
		return vs[0].(int) + vs[1].(int)
	}
}

// FibSeq is the sequential reference for FibTask.
func FibSeq(n int) int {
	a, b := 0, 1
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}

// UnbalancedTask builds a deliberately skewed tree: each node at depth d
// spawns one heavy subtree (depth+1 on the left) and one trivial leaf. The
// work distribution is pathological for static mapping and is the workload
// of the hinted-mapping ablation (A2): hints carry the true subtree size.
func UnbalancedTask() recursion.Task {
	return func(f *recursion.Frame, arg recursion.Value) recursion.Value {
		depth := arg.(int)
		if depth <= 0 {
			return 1
		}
		f.CallHinted(depth-1, float64(int(1)<<depth)) // heavy branch
		f.CallHinted(-1, 1)                           // trivial leaf
		vs := f.Sync()
		return vs[0].(int) + vs[1].(int)
	}
}

// UnbalancedSeq is the sequential reference: the tree with root depth d has
// d heavy nodes, each contributing one extra leaf, plus the final leaf.
func UnbalancedSeq(depth int) int {
	if depth <= 0 {
		return 1
	}
	return UnbalancedSeq(depth-1) + 1
}
