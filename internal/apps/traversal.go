package apps

import (
	"hypersolve/internal/mesh"
	"hypersolve/internal/simulator"
)

// Traversal is the paper's Listing 1: a message-passing node traversal
// written directly against layer 1. On its first message each node marks
// itself visited, records the step, and forwards an empty message to every
// neighbour. It demonstrates the raw (init, receive) programming model the
// upper layers abstract away, and doubles as a mesh-wide flood/BFS:
// VisitStep approximates hop distance from the trigger node.
type Traversal struct {
	visited bool
	step    int64
}

// Init implements simulator.Handler.
func (tr *Traversal) Init(ctx *simulator.Context) {}

// Receive implements simulator.Handler: flood on first contact.
func (tr *Traversal) Receive(ctx *simulator.Context, src mesh.NodeID, payload simulator.Payload) {
	if tr.visited {
		return
	}
	tr.visited = true
	tr.step = ctx.Step()
	for _, n := range ctx.Neighbours() {
		if err := ctx.Send(n, nil); err != nil {
			// Layer 1 only rejects non-adjacent destinations, which cannot
			// happen when iterating Neighbours; treat as fatal.
			panic(err)
		}
	}
}

// Visited reports whether the flood reached this node.
func (tr *Traversal) Visited() bool { return tr.visited }

// VisitStep returns the step at which the node was first visited.
func (tr *Traversal) VisitStep() int64 { return tr.step }

// RunTraversal floods the topology from the given start node and returns
// the visit step of every node plus the run statistics.
func RunTraversal(topo mesh.Topology, start mesh.NodeID, maxSteps int64) ([]int64, simulator.Stats, error) {
	sim, err := simulator.New(simulator.Config{
		Topology: topo,
		MaxSteps: maxSteps,
		Factory:  func(mesh.NodeID) simulator.Handler { return &Traversal{} },
	})
	if err != nil {
		return nil, simulator.Stats{}, err
	}
	if err := sim.Inject(start, nil); err != nil {
		return nil, simulator.Stats{}, err
	}
	stats := sim.Run()
	steps := make([]int64, topo.Size())
	for n := 0; n < topo.Size(); n++ {
		h := sim.Handler(mesh.NodeID(n)).(*Traversal)
		if h.Visited() {
			steps[n] = h.VisitStep()
		} else {
			steps[n] = -1
		}
	}
	return steps, stats, nil
}
