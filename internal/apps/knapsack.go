package apps

import (
	"sort"

	"hypersolve/internal/recursion"
)

// Item is one 0/1 knapsack item.
type Item struct {
	Weight int
	Value  int
}

// KnapsackProblem is the sub-problem payload of the branch-and-bound
// knapsack solver: the item list (shared, never mutated), the next item to
// decide, the remaining capacity and the value accumulated so far.
type KnapsackProblem struct {
	Items    []Item // sorted by value density, descending
	Index    int
	Capacity int
	Value    int
	// Best is the value of the incumbent known when this sub-problem was
	// spawned; branches whose optimistic bound cannot beat it are pruned.
	// With no global state on a hyperspace machine the incumbent is only
	// as fresh as the spawn time — a documented trade-off.
	Best int
}

// NewKnapsack builds a root problem, sorting items by value density
// (descending) so the fractional bound is tight.
func NewKnapsack(items []Item, capacity int) KnapsackProblem {
	sorted := append([]Item(nil), items...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Value*sorted[j].Weight > sorted[j].Value*sorted[i].Weight
	})
	return KnapsackProblem{Items: sorted, Capacity: capacity}
}

// Bound returns the fractional-relaxation upper bound on the achievable
// value from this sub-problem.
func (p KnapsackProblem) Bound() float64 {
	bound := float64(p.Value)
	cap := p.Capacity
	for i := p.Index; i < len(p.Items) && cap > 0; i++ {
		it := p.Items[i]
		if it.Weight <= cap {
			bound += float64(it.Value)
			cap -= it.Weight
		} else {
			bound += float64(it.Value) * float64(cap) / float64(it.Weight)
			cap = 0
		}
	}
	return bound
}

// KnapsackTask solves 0/1 knapsack by fork-join branch and bound: each
// frame decides one item (include / exclude), prunes branches whose
// fractional bound cannot beat the spawn-time incumbent, and reduces with
// max. cutoff is the sequential grain size, as in QueensTask.
func KnapsackTask(cutoff int) recursion.Task {
	return func(f *recursion.Frame, arg recursion.Value) recursion.Value {
		p := arg.(KnapsackProblem)
		if p.Index >= len(p.Items) {
			return p.Value
		}
		if len(p.Items)-p.Index <= cutoff {
			return knapsackSeq(p)
		}
		if p.Bound() <= float64(p.Best) {
			return p.Value // cannot beat the incumbent; stop branching
		}
		it := p.Items[p.Index]
		spawned := 0
		if it.Weight <= p.Capacity {
			include := p
			include.Index++
			include.Capacity -= it.Weight
			include.Value += it.Value
			f.CallHinted(include, float64(len(p.Items)-p.Index))
			spawned++
		}
		exclude := p
		exclude.Index++
		f.CallHinted(exclude, float64(len(p.Items)-p.Index))
		spawned++
		best := p.Value
		for _, v := range f.Sync() {
			if got := v.(int); got > best {
				best = got
			}
		}
		_ = spawned
		return best
	}
}

// knapsackSeq finishes a sub-problem sequentially with the same
// branch-and-bound rule (using a live local incumbent).
func knapsackSeq(p KnapsackProblem) int {
	best := p.Best
	var rec func(p KnapsackProblem)
	rec = func(p KnapsackProblem) {
		if p.Value > best {
			best = p.Value
		}
		if p.Index >= len(p.Items) || p.Bound() <= float64(best) {
			return
		}
		it := p.Items[p.Index]
		if it.Weight <= p.Capacity {
			include := p
			include.Index++
			include.Capacity -= it.Weight
			include.Value += it.Value
			rec(include)
		}
		exclude := p
		exclude.Index++
		rec(exclude)
	}
	rec(p)
	if best < p.Value {
		return p.Value
	}
	return best
}

// KnapsackSeq solves the problem sequentially via branch and bound.
func KnapsackSeq(items []Item, capacity int) int {
	return knapsackSeq(NewKnapsack(items, capacity))
}

// KnapsackDP solves the problem by dynamic programming — an independent
// oracle for tests (O(n*capacity)).
func KnapsackDP(items []Item, capacity int) int {
	best := make([]int, capacity+1)
	for _, it := range items {
		for c := capacity; c >= it.Weight; c-- {
			if v := best[c-it.Weight] + it.Value; v > best[c] {
				best[c] = v
			}
		}
	}
	return best[capacity]
}
