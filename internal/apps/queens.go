package apps

import (
	"hypersolve/internal/recursion"
)

// QueensState is the sub-problem payload of the N-Queens counting solver: a
// partial placement of queens on the first len(Cols) rows.
type QueensState struct {
	N    int
	Cols []int8 // Cols[r] = column of the queen on row r
}

// extend returns a copy of the state with one more queen placed.
func (q QueensState) extend(col int8) QueensState {
	cols := make([]int8, len(q.Cols)+1)
	copy(cols, q.Cols)
	cols[len(q.Cols)] = col
	return QueensState{N: q.N, Cols: cols}
}

// safe reports whether a queen at (len(Cols), col) is unattacked.
func (q QueensState) safe(col int8) bool {
	row := len(q.Cols)
	for r, c := range q.Cols {
		if c == col {
			return false
		}
		if diff := row - r; int(c)+diff == int(col) || int(c)-diff == int(col) {
			return false
		}
	}
	return true
}

// QueensTask counts the solutions of the N-Queens problem by forking one
// subcall per safe column of the next row and summing the counts — a
// variable fan-out combinatorial search in the solver family the paper's
// model targets.
//
// cutoff bounds the depth below which the task solves sequentially instead
// of delegating, the standard grain-size control of fork-join runtimes;
// cutoff 0 delegates all the way to the leaves.
func QueensTask(cutoff int) recursion.Task {
	return func(f *recursion.Frame, arg recursion.Value) recursion.Value {
		st := arg.(QueensState)
		row := len(st.Cols)
		if row == st.N {
			return 1
		}
		if st.N-row <= cutoff {
			return queensSeqCount(st)
		}
		spawned := 0
		for col := int8(0); int(col) < st.N; col++ {
			if st.safe(col) {
				f.Call(st.extend(col))
				spawned++
			}
		}
		if spawned == 0 {
			return 0
		}
		total := 0
		for _, v := range f.Sync() {
			total += v.(int)
		}
		return total
	}
}

// queensSeqCount finishes a partial placement sequentially.
func queensSeqCount(st QueensState) int {
	if len(st.Cols) == st.N {
		return 1
	}
	total := 0
	for col := int8(0); int(col) < st.N; col++ {
		if st.safe(col) {
			total += queensSeqCount(st.extend(col))
		}
	}
	return total
}

// QueensSeq counts N-Queens solutions sequentially — the reference the
// distributed count is validated against.
func QueensSeq(n int) int {
	return queensSeqCount(QueensState{N: n})
}
