package service

import (
	"encoding/json"

	"hypersolve/internal/store"
	"hypersolve/internal/tracelog"
)

// JobTrace is the wire shape of GET /v1/jobs/{id}/trace: the job's
// identity and state plus its span timeline. For a live (queued or
// running) job the timeline is snapshotted from the in-flight trace;
// for a terminal job it is decoded from the record the store persisted,
// which is also what a standby or a restarted daemon serves — traces
// survive crashes and failovers exactly as far as the journal does.
type JobTrace struct {
	JobID JobID `json:"job_id"`
	State State `json:"state"`
	tracelog.Timeline
}

// jobTraceFromRecord decodes a persisted record's timeline into the API
// shape. A record without a timeline (pre-tracing history) yields an
// empty span list, not an error — the job exists, it just predates
// tracing.
func jobTraceFromRecord(sj store.Job) JobTrace {
	jt := JobTrace{JobID: JobID{Seq: sj.ID}, State: sj.State}
	if len(sj.Trace) > 0 {
		_ = json.Unmarshal(sj.Trace, &jt.Timeline)
	}
	return jt
}

// liveTrace pairs a job's in-flight trace with the ID of its open
// queue-wait span (started at admission, ended when a worker dequeues).
type liveTrace struct {
	tr    *tracelog.Trace
	queue int64
}

// Trace returns the span timeline of one job: the live trace while the
// job is queued or running, the persisted one once it is terminal.
func (s *Service) Trace(id int64) (JobTrace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sj, ok := s.store.Get(id)
	if !ok {
		return JobTrace{}, false
	}
	if lt := s.traces[id]; lt != nil {
		return JobTrace{JobID: JobID{Seq: id}, State: sj.State, Timeline: lt.tr.Timeline()}, true
	}
	return jobTraceFromRecord(sj), true
}
