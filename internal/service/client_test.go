package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// overloadedServer returns 429 for the first reject submissions, then
// accepts; it counts POST attempts.
func overloadedServer(t *testing.T, reject int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var posts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			t.Errorf("unexpected %s %s", r.Method, r.URL.Path)
		}
		n := posts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		if n <= int64(reject) {
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"service: queue full"}`))
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":7,"state":"queued"}`))
	}))
	t.Cleanup(srv.Close)
	return srv, &posts
}

func TestSubmitRetriesOn429(t *testing.T) {
	srv, posts := overloadedServer(t, 2)
	c := &Client{Base: srv.URL, Retry: Retry{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}}
	job, err := c.Submit(context.Background(), quickSpec())
	if err != nil {
		t.Fatalf("Submit after transient 429s: %v", err)
	}
	if job.ID != (JobID{Seq: 7}) {
		t.Fatalf("job = %+v, want ID 7", job)
	}
	if got := posts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (two 429s + success)", got)
	}
}

func TestSubmitRetryGivesUpAfterMaxAttempts(t *testing.T) {
	srv, posts := overloadedServer(t, 1000)
	c := &Client{Base: srv.URL, Retry: Retry{MaxAttempts: 3, BaseDelay: time.Millisecond}}
	_, err := c.Submit(context.Background(), quickSpec())
	if !IsOverloaded(err) {
		t.Fatalf("exhausted retries returned %v, want overload error", err)
	}
	if got := posts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want exactly MaxAttempts=3", got)
	}
}

func TestSubmitRetryDisabled(t *testing.T) {
	srv, posts := overloadedServer(t, 1000)
	c := &Client{Base: srv.URL, Retry: Retry{MaxAttempts: 1}}
	if _, err := c.Submit(context.Background(), quickSpec()); !IsOverloaded(err) {
		t.Fatalf("got %v, want immediate overload error", err)
	}
	if got := posts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1", got)
	}
}

func TestSubmitRetryHonoursContext(t *testing.T) {
	srv, _ := overloadedServer(t, 1000)
	// A long backoff against a cancelled context must return promptly with
	// the context's error, not sleep out the delay.
	c := &Client{Base: srv.URL, Retry: Retry{MaxAttempts: 8, BaseDelay: time.Hour}}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Submit(ctx, quickSpec())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context deadline", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Submit slept %v past its context", elapsed)
	}
}

// TestWaitBackoffGrowth pins the poll schedule: ×1.5 per poll, capped at
// 2s, never shrinking below the caller's initial interval.
func TestWaitBackoffGrowth(t *testing.T) {
	got := []time.Duration{100 * time.Millisecond}
	for i := 0; i < 12; i++ {
		got = append(got, nextPollInterval(got[len(got)-1], 100*time.Millisecond))
	}
	last := got[len(got)-1]
	if last != waitMaxInterval {
		t.Fatalf("backoff converged to %v, want %v", last, waitMaxInterval)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("backoff shrank: %v", got)
		}
	}
	// An initial interval above the cap is respected, not clamped down.
	if next := nextPollInterval(5*time.Second, 5*time.Second); next != 5*time.Second {
		t.Fatalf("nextPollInterval(5s, 5s) = %v, want 5s", next)
	}
}

// TestWaitBacksOffOverHTTP: a job that stays running for a few polls is
// eventually reported terminal, with far fewer requests than fixed-interval
// polling would have issued.
func TestWaitBacksOffOverHTTP(t *testing.T) {
	var gets atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if gets.Add(1) < 4 {
			w.Write([]byte(`{"id":1,"state":"running"}`))
			return
		}
		w.Write([]byte(`{"id":1,"state":"done"}`))
	}))
	defer srv.Close()
	c := &Client{Base: srv.URL}
	job, err := c.Wait(context.Background(), JobID{Seq: 1}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateDone {
		t.Fatalf("Wait returned %+v, want done", job)
	}
	if got := gets.Load(); got != 4 {
		t.Fatalf("polls = %d, want 4", got)
	}
}
