package service

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

// startNode spins up a node and an httptest server over its handler.
func startNode(t *testing.T, cfg NodeConfig) (*Node, *httptest.Server) {
	t.Helper()
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(n.Handler())
	t.Cleanup(func() { srv.Close(); n.Close() })
	return n, srv
}

// waitCaughtUp polls a standby's status until its lag reaches zero against
// a source at the given LSN.
func waitCaughtUp(t *testing.T, c *Client, wantLSN int64) ReplicationStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c.ReplicationStatus(context.Background())
		if err == nil && st.LSN >= wantLSN {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby never caught up to lsn %d (last: %+v, err %v)", wantLSN, st, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestNodeReplicationAndPromotion drives the full role machine over HTTP: a
// standby tails a live primary, serves read-only copies, refuses writes,
// and — after the primary dies — promotes in place, re-runs the lost
// queued work, and serves the full job history.
func TestNodeReplicationAndPromotion(t *testing.T) {
	primary, psrv := startNode(t, NodeConfig{
		Dir:     t.TempDir(),
		Service: Config{QueueDepth: 8, Workers: 2},
	})
	// The standby gets enough workers that, after promotion, the re-run of
	// the queued quick job is not starved behind the two re-queued slow
	// jobs.
	_, ssrv := startNode(t, NodeConfig{
		Dir:       t.TempDir(),
		Service:   Config{QueueDepth: 8, Workers: 4},
		Follow:    psrv.URL,
		PullEvery: 10 * time.Millisecond,
	})
	pc := &Client{Base: psrv.URL}
	sc := &Client{Base: ssrv.URL}
	ctx := context.Background()

	// A solved job replicates, result included.
	job, err := pc.Submit(ctx, quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	done, err := pc.Wait(ctx, job.ID, 10*time.Millisecond)
	if err != nil || done.State != StateDone {
		t.Fatalf("job = %v (%v), want done", done.State, err)
	}
	pst, err := pc.ReplicationStatus(ctx)
	if err != nil || pst.Role != "primary" {
		t.Fatalf("primary status = %+v (%v)", pst, err)
	}
	sst := waitCaughtUp(t, sc, pst.LSN)
	if sst.Role != "standby" || sst.Lag != 0 {
		t.Fatalf("standby status = %+v, want caught-up standby", sst)
	}
	mirror, err := sc.Get(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mirror.State != StateDone || mirror.Result == nil || !mirror.Result.OK {
		t.Fatalf("standby mirror = %+v, want done with result", mirror)
	}

	// Writes bounce off the standby with a 503.
	if _, err := sc.Submit(ctx, quickSpec()); err == nil {
		t.Fatal("standby accepted a submission")
	} else if status, ok := ErrorStatus(err); !ok || status != 503 {
		t.Fatalf("standby submit error = %v, want 503", err)
	}

	// Leave one job queued-forever on the primary (workers busy with slow
	// jobs), replicate it, then kill the primary.
	for i := 0; i < 2; i++ {
		if _, err := pc.Submit(ctx, slowSpec()); err != nil {
			t.Fatal(err)
		}
	}
	queued, err := pc.Submit(ctx, quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	pst, _ = pc.ReplicationStatus(ctx)
	waitCaughtUp(t, sc, pst.LSN)
	psrv.CloseClientConnections()
	psrv.Close()
	primary.Close()

	// Promote the standby; the queued job must re-run to done there.
	promoted, err := sc.Promote(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if promoted.Role != "primary" || promoted.Epoch != 1 {
		t.Fatalf("promotion = %+v, want primary at epoch 1", promoted)
	}
	redone, err := sc.Wait(ctx, queued.ID, 10*time.Millisecond)
	if err != nil || redone.State != StateDone {
		t.Fatalf("re-run of queued job = %v (%v), want done", redone.State, err)
	}
	// The original history survived the failover.
	if got, err := sc.Get(ctx, job.ID); err != nil || got.State != StateDone {
		t.Fatalf("pre-failover job after promotion = %+v (%v)", got, err)
	}
	// Idempotent re-promote reports the same epoch.
	again, err := sc.Promote(ctx)
	if err != nil || again.Epoch != promoted.Epoch || len(again.Requeued) != 0 {
		t.Fatalf("re-promote = %+v (%v), want same epoch, nothing re-queued", again, err)
	}
	// And the promoted node accepts writes.
	if _, err := sc.Submit(ctx, quickSpec()); err != nil {
		t.Fatalf("promoted node rejected a submission: %v", err)
	}
}

// TestNodeDemoteResyncs steps a diverged primary down and verifies it
// re-syncs wholesale from the new source, dropping its own tail.
func TestNodeDemoteResyncs(t *testing.T) {
	a, asrv := startNode(t, NodeConfig{
		Dir:     t.TempDir(),
		Service: Config{QueueDepth: 8, Workers: 2},
	})
	_, bsrv := startNode(t, NodeConfig{
		Dir:     t.TempDir(),
		Service: Config{QueueDepth: 8, Workers: 2},
	})
	ac := &Client{Base: asrv.URL}
	bc := &Client{Base: bsrv.URL}
	ctx := context.Background()

	// Independent histories: b's will be discarded at demote.
	ajob, err := ac.Submit(ctx, quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ac.Wait(ctx, ajob.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	bjob, err := bc.Submit(ctx, quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bc.Wait(ctx, bjob.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	st, err := bc.Demote(ctx, asrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "standby" || st.Following != asrv.URL {
		t.Fatalf("demote status = %+v", st)
	}
	ast, _ := ac.ReplicationStatus(ctx)
	waitCaughtUp(t, bc, ast.LSN)
	jobs, err := bc.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID.Seq != ajob.ID.Seq {
		t.Fatalf("demoted node's view = %+v, want exactly a's history", jobs)
	}
	_ = a
}

// TestNodeStandbyFencedFromStalePrimary: a standby that has applied a
// higher epoch refuses the old primary's feed rather than diverging.
func TestNodeStandbyFencedFromStalePrimary(t *testing.T) {
	stale, err := NewNode(NodeConfig{Dir: t.TempDir(), Service: Config{QueueDepth: 4, Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()

	// A replica store that has witnessed epoch 1 (a promotion elsewhere).
	dir := t.TempDir()
	promotedDir := t.TempDir()
	_ = dir
	pn, err := NewNode(NodeConfig{Dir: promotedDir, Service: Config{QueueDepth: 4, Workers: 1}, Follow: "http://unused.invalid", PullEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pn.Promote(); err != nil {
		t.Fatal(err)
	}
	pnSrv := httptest.NewServer(pn.Handler())
	defer func() { pnSrv.Close(); pn.Close() }()

	// A fresh standby follows the promoted node (epoch 1), catches up...
	sb, sbsrv := startNode(t, NodeConfig{
		Dir:       t.TempDir(),
		Service:   Config{QueueDepth: 4, Workers: 1},
		Follow:    pnSrv.URL,
		PullEvery: 10 * time.Millisecond,
	})
	sbc := &Client{Base: sbsrv.URL}
	pst, err := (&Client{Base: pnSrv.URL}).ReplicationStatus(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, sbc, pst.LSN)

	// ...then is retargeted at the stale (epoch 0) primary: every pull
	// must be fenced, and the standby's epoch must not regress.
	staleSrv := httptest.NewServer(stale.Handler())
	defer staleSrv.Close()
	if _, err := sbc.Demote(context.Background(), staleSrv.URL); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := sbc.ReplicationStatus(context.Background())
		if err == nil && st.LastError != "" {
			if st.Epoch < 1 {
				// Demote resets from=0, and the stale snapshot page would
				// regress the epoch — it must have been fenced instead.
				t.Fatalf("standby epoch regressed to %d via stale feed", st.Epoch)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale feed was never rejected (last status %+v, err %v)", st, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	_ = sb
}
