package service

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"hypersolve/internal/core"
	"hypersolve/internal/sat"
	"hypersolve/internal/store"
)

// slowSpec is a job that runs for several seconds if never cancelled: a
// linear sum chain whose ~1000 link hops each spend 50k steps in flight, on
// a tiny ring where steps are cheap. It completes only at ~50M steps. The
// sweep engine is pinned because the event engine skips the idle latency
// gaps and finishes the same job in milliseconds.
func slowSpec() JobSpec {
	return JobSpec{
		Kind:     "sum",
		N:        500,
		Topology: "ring:4",
		Link:     LinkSpec{LinkLatency: 50000},
		MaxSteps: 1 << 40,
		Engine:   "sweep",
	}
}

// quickSpec is a job that solves in milliseconds.
func quickSpec() JobSpec {
	return JobSpec{Kind: "sum", N: 20, Topology: "ring:4", Seed: 3}
}

// backends runs fn against a service on each Store backend, pinning the
// acceptance contract that the service behaves identically through the
// shared Store interface. The file backend gets a fresh directory per
// subtest; Close is idempotent, so tests that close explicitly still
// compose with the deferred cleanup.
func backends(t *testing.T, cfg Config, fn func(t *testing.T, s *Service)) {
	t.Run("memory", func(t *testing.T) {
		s := New(cfg)
		defer s.Close()
		fn(t, s)
	})
	t.Run("file", func(t *testing.T) {
		st, err := store.Open(store.FileConfig{Dir: t.TempDir(), History: cfg.History})
		if err != nil {
			t.Fatal(err)
		}
		c := cfg
		c.Store = st
		s := New(c)
		defer s.Close()
		fn(t, s)
	})
}

func waitState(t *testing.T, s *Service, id int64, want State, timeout time.Duration) Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		j, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %d disappeared", id)
		}
		if j.State == want {
			return j
		}
		if j.State.Terminal() {
			t.Fatalf("job %d reached %s while waiting for %s (error: %s)", id, j.State, want, j.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d stuck in %s, want %s", id, j.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSubmitRunsToDone(t *testing.T) {
	backends(t, Config{QueueDepth: 4, Workers: 1}, func(t *testing.T, s *Service) {
		job, err := s.Submit(quickSpec())
		if err != nil {
			t.Fatal(err)
		}
		if job.ID.Seq != 1 || job.State != StateQueued {
			t.Fatalf("submitted job = %+v, want ID 1 queued", job)
		}
		done := waitState(t, s, job.ID.Seq, StateDone, 10*time.Second)
		if done.Result == nil || !done.Result.OK {
			t.Fatalf("result = %+v, want OK", done.Result)
		}
		if got := done.Result.Value; got != float64(210) && got != 210 {
			// Results round-trip through the store's JSON encoding, so the
			// value arrives as float64 in-process just as it would over
			// HTTP. Either reading must equal sum(20) = 210.
			t.Fatalf("value = %v (%T), want 210", got, got)
		}
	})
}

func TestMonotonicIDs(t *testing.T) {
	backends(t, Config{QueueDepth: 8, Workers: 1}, func(t *testing.T, s *Service) {
		for want := int64(1); want <= 3; want++ {
			job, err := s.Submit(quickSpec())
			if err != nil {
				t.Fatal(err)
			}
			if job.ID.Seq != want {
				t.Fatalf("job ID = %d, want %d", job.ID.Seq, want)
			}
		}
	})
}

func TestSubmitRejectsBadSpec(t *testing.T) {
	backends(t, Config{QueueDepth: 4, Workers: 1}, func(t *testing.T, s *Service) {
		cases := []JobSpec{
			{Kind: "warp-drive"},
			{Kind: "sat", CNF: "p cnf 2 1\n1 -"},
			{Kind: "sat", Topology: "moebius:3"},
			{Kind: "sat", Mapper: "psychic"},
			{Kind: "queens"}, // missing n
			{Kind: "sat", Link: LinkSpec{QueueModel: "quantum"}},
		}
		for _, spec := range cases {
			if _, err := s.Submit(spec); err == nil {
				t.Errorf("Submit(%+v) accepted, want error", spec)
			}
		}
		if jobs := s.List(); len(jobs) != 0 {
			t.Fatalf("rejected specs left %d jobs in the store", len(jobs))
		}
	})
}

// TestQueueBackpressure fills the admission queue behind a slow job and
// checks that the next submission is rejected with ErrQueueFull rather than
// blocking or growing memory.
func TestQueueBackpressure(t *testing.T) {
	backends(t, Config{QueueDepth: 2, Workers: 1}, func(t *testing.T, s *Service) {
		slow, err := s.Submit(slowSpec())
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, s, slow.ID.Seq, StateRunning, 10*time.Second)

		// The worker is occupied: the next QueueDepth submissions park in the
		// queue, and one more must bounce.
		for i := 0; i < 2; i++ {
			if _, err := s.Submit(quickSpec()); err != nil {
				t.Fatalf("fill submission %d: %v", i, err)
			}
		}
		if _, err := s.Submit(quickSpec()); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("over-depth submission returned %v, want ErrQueueFull", err)
		}

		// Cancelling the slow job frees the worker; the parked jobs drain and
		// admission opens again.
		if _, err := s.Cancel(slow.ID.Seq); err != nil {
			t.Fatal(err)
		}
		waitState(t, s, slow.ID.Seq, StateCancelled, 10*time.Second)
		deadline := time.Now().Add(10 * time.Second)
		for {
			if _, err := s.Submit(quickSpec()); err == nil {
				break
			} else if !errors.Is(err, ErrQueueFull) {
				t.Fatal(err)
			}
			if time.Now().After(deadline) {
				t.Fatal("queue never drained after cancelling the blocking job")
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

func TestCancelWhileQueued(t *testing.T) {
	backends(t, Config{QueueDepth: 4, Workers: 1}, func(t *testing.T, s *Service) {
		slow, err := s.Submit(slowSpec())
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, s, slow.ID.Seq, StateRunning, 10*time.Second)
		queued, err := s.Submit(quickSpec())
		if err != nil {
			t.Fatal(err)
		}

		// Cancel the parked job: the transition is immediate, no worker runs it.
		got, err := s.Cancel(queued.ID.Seq)
		if err != nil {
			t.Fatal(err)
		}
		if got.State != StateCancelled {
			t.Fatalf("cancel-while-queued state = %s, want cancelled", got.State)
		}
		if _, err := s.Cancel(queued.ID.Seq); !errors.Is(err, ErrFinished) {
			t.Fatalf("double cancel returned %v, want ErrFinished", err)
		}

		// Unblock the worker and check the cancelled job never ran.
		if _, err := s.Cancel(slow.ID.Seq); err != nil {
			t.Fatal(err)
		}
		waitState(t, s, slow.ID.Seq, StateCancelled, 10*time.Second)
		j, _ := s.Get(queued.ID.Seq)
		if j.State != StateCancelled || j.Result != nil {
			t.Fatalf("cancelled-while-queued job = %+v, want cancelled with no result", j)
		}
	})
}

func TestCancelWhileRunning(t *testing.T) {
	backends(t, Config{QueueDepth: 4, Workers: 1}, func(t *testing.T, s *Service) {
		job, err := s.Submit(slowSpec())
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, s, job.ID.Seq, StateRunning, 10*time.Second)
		if _, err := s.Cancel(job.ID.Seq); err != nil {
			t.Fatal(err)
		}
		// The simulator polls its context every CancelSliceSteps; at ~10M
		// steps/second one slice is far below a millisecond, so seconds of
		// grace means any failure here is a lost cancellation, not jitter.
		got := waitState(t, s, job.ID.Seq, StateCancelled, 10*time.Second)
		if got.Result != nil {
			t.Fatalf("cancelled job carries a result: %+v", got.Result)
		}
		if got.FinishedAt.IsZero() {
			t.Fatal("cancelled job has no FinishedAt")
		}
	})
}

func TestDeadlineFailsJob(t *testing.T) {
	spec := slowSpec()
	spec.TimeoutMs = 50
	backends(t, Config{QueueDepth: 4, Workers: 1}, func(t *testing.T, s *Service) {
		job, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		got := waitState(t, s, job.ID.Seq, StateFailed, 10*time.Second)
		if !strings.Contains(got.Error, "deadline") {
			t.Fatalf("deadline failure error = %q, want mention of the deadline", got.Error)
		}
	})
}

func TestCloseCancelsOutstanding(t *testing.T) {
	backends(t, Config{QueueDepth: 4, Workers: 1}, func(t *testing.T, s *Service) {
		slow, err := s.Submit(slowSpec())
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, s, slow.ID.Seq, StateRunning, 10*time.Second)
		queued, err := s.Submit(quickSpec())
		if err != nil {
			t.Fatal(err)
		}
		s.Close() // joins workers: both jobs must be terminal afterwards
		for _, id := range []int64{slow.ID.Seq, queued.ID.Seq} {
			j, _ := s.Get(id)
			if j.State != StateCancelled {
				t.Errorf("job %d after Close: %s, want cancelled", id, j.State)
			}
		}
		if _, err := s.Submit(quickSpec()); !errors.Is(err, ErrClosed) {
			t.Fatalf("submit after Close returned %v, want ErrClosed", err)
		}
	})
}

// TestServiceMatchesSerialRun is the determinism acceptance check: a job
// executed through the queue/worker machinery must produce a core.Result
// bit-identical to the same spec+seed run serially.
func TestServiceMatchesSerialRun(t *testing.T) {
	suite, err := sat.GenerateSuite(sat.UF20Params(41))
	if err != nil {
		t.Fatal(err)
	}
	var cnf strings.Builder
	if err := sat.WriteDIMACS(&cnf, suite[0]); err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{
		Kind:         "sat",
		CNF:          cnf.String(),
		Topology:     "torus:8x8",
		Mapper:       "lbn",
		Seed:         7,
		RecordSeries: true,
	}

	serial := func() core.Result {
		cfg, arg, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.RunOnce(cfg, arg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()

	backends(t, Config{QueueDepth: 4, Workers: 2}, func(t *testing.T, s *Service) {
		job, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		done := waitState(t, s, job.ID.Seq, StateDone, 30*time.Second)
		if done.Raw() == nil {
			t.Fatal("done job has no raw result")
		}
		if !reflect.DeepEqual(*done.Raw(), serial) {
			t.Fatalf("service result differs from serial run:\nservice: %+v\nserial:  %+v", *done.Raw(), serial)
		}
		if done.Result.SAT == nil || done.Result.SAT.Status != "SAT" || !done.Result.SAT.Verified {
			t.Fatalf("SAT payload = %+v, want verified SAT", done.Result.SAT)
		}

		// The serialized assignment must satisfy the formula on its own.
		a := sat.NewAssignment(suite[0].NumVars)
		for _, lit := range done.Result.SAT.Assignment {
			a.Set(sat.Lit(lit))
		}
		if !sat.Verify(suite[0], a) {
			t.Fatal("JSON assignment does not satisfy the formula")
		}
	})
}

func TestConcurrentJobsAllComplete(t *testing.T) {
	backends(t, Config{QueueDepth: 32, Workers: 4}, func(t *testing.T, s *Service) {
		var ids []int64
		for i := 0; i < 12; i++ {
			spec := quickSpec()
			spec.Seed = int64(i)
			job, err := s.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, job.ID.Seq)
		}
		for _, id := range ids {
			j := waitState(t, s, id, StateDone, 30*time.Second)
			if j.Result == nil || !j.Result.OK {
				t.Fatalf("job %d result = %+v, want OK", id, j.Result)
			}
		}
		if counts := s.Counts(); counts[StateDone] != 12 {
			t.Fatalf("counts = %v, want 12 done", counts)
		}
	})
}

// TestCancelQueuedFreesSlot pins the admission contract: cancelling a
// queued job releases its queue slot immediately, without waiting for a
// worker to reach it.
func TestCancelQueuedFreesSlot(t *testing.T) {
	backends(t, Config{QueueDepth: 1, Workers: 1}, func(t *testing.T, s *Service) {
		slow, err := s.Submit(slowSpec())
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, s, slow.ID.Seq, StateRunning, 10*time.Second)
		parked, err := s.Submit(quickSpec())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Submit(quickSpec()); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("queue should be full, got %v", err)
		}
		if _, err := s.Cancel(parked.ID.Seq); err != nil {
			t.Fatal(err)
		}
		// The slot is free right now — no worker progress was needed.
		if _, err := s.Submit(quickSpec()); err != nil {
			t.Fatalf("submit after cancelling the queued job: %v", err)
		}
		if _, err := s.Cancel(slow.ID.Seq); err != nil {
			t.Fatal(err)
		}
	})
}

// TestHistoryEviction checks that terminal jobs beyond the History bound
// are evicted oldest-first while queued/running jobs are untouched.
func TestHistoryEviction(t *testing.T) {
	backends(t, Config{QueueDepth: 8, Workers: 1, History: 2}, func(t *testing.T, s *Service) {
		var ids []int64
		for i := 0; i < 4; i++ {
			job, err := s.Submit(quickSpec())
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, job.ID.Seq)
			waitState(t, s, job.ID.Seq, StateDone, 10*time.Second)
		}
		for _, id := range ids[:2] {
			if _, ok := s.Get(id); ok {
				t.Errorf("job %d should have been evicted", id)
			}
		}
		for _, id := range ids[2:] {
			j, ok := s.Get(id)
			if !ok || j.State != StateDone {
				t.Errorf("job %d missing or not done after eviction", id)
			}
		}
		if n := len(s.List()); n != 2 {
			t.Errorf("store holds %d jobs, want 2", n)
		}
	})
}

// TestListStateFilter pins the filtered listing added for recovered
// history: done and cancelled jobs are separable without client-side
// filtering.
func TestListStateFilter(t *testing.T) {
	backends(t, Config{QueueDepth: 8, Workers: 1}, func(t *testing.T, s *Service) {
		done, err := s.Submit(quickSpec())
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, s, done.ID.Seq, StateDone, 10*time.Second)
		slow, err := s.Submit(slowSpec())
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, s, slow.ID.Seq, StateRunning, 10*time.Second)
		if _, err := s.Cancel(slow.ID.Seq); err != nil {
			t.Fatal(err)
		}
		waitState(t, s, slow.ID.Seq, StateCancelled, 10*time.Second)

		if got := s.List(StateDone); len(got) != 1 || got[0].ID.Seq != done.ID.Seq {
			t.Fatalf("List(done) = %+v, want exactly job %d", got, done.ID.Seq)
		}
		if got := s.List(StateCancelled); len(got) != 1 || got[0].ID.Seq != slow.ID.Seq {
			t.Fatalf("List(cancelled) = %+v, want exactly job %d", got, slow.ID.Seq)
		}
		if got := s.List(StateDone, StateCancelled); len(got) != 2 {
			t.Fatalf("List(done, cancelled) returned %d jobs, want 2", len(got))
		}
		if got := s.List(StateQueued); len(got) != 0 {
			t.Fatalf("List(queued) = %+v, want empty", got)
		}
	})
}
