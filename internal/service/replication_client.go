package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
)

// ReplicationFeed fetches one feed page from the server's replication
// journal: records from LSN `from` onwards, or a full snapshot when the
// cursor predates the server's tail (from=0 forces one). The raw page
// bytes are returned ready for store.ApplyFeed — the client never decodes
// them, so the store owns the wire format end to end.
func (c *Client) ReplicationFeed(ctx context.Context, from int64, limit int) ([]byte, error) {
	path := fmt.Sprintf("/v1/replication/journal?from=%d", from)
	if limit > 0 {
		path += fmt.Sprintf("&limit=%d", limit)
	}
	var page json.RawMessage
	if err := c.do(ctx, http.MethodGet, path, nil, &page); err != nil {
		return nil, err
	}
	return page, nil
}

// ReplicationStatus fetches the node's role, epoch, LSN and tail lag.
func (c *Client) ReplicationStatus(ctx context.Context) (ReplicationStatus, error) {
	var st ReplicationStatus
	err := c.do(ctx, http.MethodGet, "/v1/replication/status", nil, &st)
	return st, err
}

// Promote asks a standby to become primary (idempotent: a node that is
// already primary reports its current epoch).
func (c *Client) Promote(ctx context.Context) (PromoteResult, error) {
	var res PromoteResult
	err := c.do(ctx, http.MethodPost, "/v1/replication/promote", nil, &res)
	return res, err
}

// Demote asks a node to step down to a standby tailing the given primary,
// discarding any divergent local tail in favour of a full re-sync.
func (c *Client) Demote(ctx context.Context, follow string) (ReplicationStatus, error) {
	var st ReplicationStatus
	err := c.do(ctx, http.MethodPost, "/v1/replication/demote",
		map[string]string{"follow": follow}, &st)
	return st, err
}
