package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"hypersolve/internal/telemetry"
	"hypersolve/internal/tracelog"
	"hypersolve/internal/version"
)

// Health is the /healthz payload: a liveness verdict plus queue occupancy
// and the node's headline gauges. The cluster router folds these into
// GET /v1/cluster, so what a probe sees here is what the fleet reports.
type Health struct {
	Status     string        `json:"status"`
	QueueDepth int           `json:"queue_depth"`
	Workers    int           `json:"workers"`
	Jobs       map[State]int `json:"jobs"`
	// Queued is the live admission-queue occupancy (distinct from
	// QueueDepth, the configured bound).
	Queued int `json:"queued"`
	// StepsPerSec is the aggregate simulator stepping rate over running
	// jobs (see Service.StepsPerSec).
	StepsPerSec float64 `json:"steps_per_sec,omitempty"`
	// ReplicationLag is how many records this standby trails its primary
	// by; only set on a standby's health report.
	ReplicationLag int64 `json:"replication_lag,omitempty"`
	// Version is the build identity stamped into the binary
	// (internal/version), "dev (unknown)" for unstamped builds.
	Version string `json:"version,omitempty"`
}

// MaxSpecBytes bounds a submitted job spec (the CNF text dominates; 64 MiB
// covers every SATLIB-scale instance with two orders of magnitude to
// spare). Oversized bodies are rejected with HTTP 413; the cluster router
// applies the same bound.
const MaxSpecBytes = 64 << 20

// NewHandler wraps a service in its HTTP JSON surface:
//
//	POST   /v1/jobs             submit a JobSpec  → 202 Job (429 when the queue is full)
//	GET    /v1/jobs             list jobs         → 200 []Job; ?state= filters
//	GET    /v1/jobs/{id}        fetch one job     → 200 Job
//	GET    /v1/jobs/{id}/events stream progress   → 200 text/event-stream (SSE)
//	DELETE /v1/jobs/{id}        cancel a job      → 200 Job (409 when already terminal)
//	GET    /healthz             liveness + queue occupancy
//	GET    /metrics             Prometheus text exposition of the service registry
//
// The list filter accepts repeated and comma-separated values
// (?state=done&state=failed, ?state=queued,running); an unknown state is a
// 400. Errors are returned as {"error": "..."} with the matching status
// code.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		spec, ok := ReadJobSpec(w, r)
		if !ok {
			return
		}
		// Adopt the caller's trace ID (the router forwards its own via
		// traceparent) so one trace spans the whole submit path; without
		// the header, mint the context here and echo it — exactly like the
		// router — so the submitter learns its trace ID from the response
		// and the access log tags this hop with it.
		tc := tracelog.FromRequest(r)
		if !tc.Valid() {
			tc = tracelog.NewTraceContext()
			w.Header().Set("traceparent", tc.Traceparent())
		}
		job, err := s.SubmitTraced(spec, tc)
		if err != nil {
			WriteError(w, submitStatus(err), err)
			return
		}
		WriteJSON(w, http.StatusAccepted, job)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		states, err := StatesFromQuery(r)
		if err != nil {
			WriteError(w, http.StatusBadRequest, err)
			return
		}
		WriteJSON(w, http.StatusOK, s.List(states...))
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, ok := pathID(w, r)
		if !ok {
			return
		}
		job, found := s.Get(id)
		if !found {
			WriteError(w, http.StatusNotFound, ErrNotFound)
			return
		}
		WriteJSON(w, http.StatusOK, job)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		id, ok := pathID(w, r)
		if !ok {
			return
		}
		jt, found := s.Trace(id)
		if !found {
			WriteError(w, http.StatusNotFound, ErrNotFound)
			return
		}
		WriteJSON(w, http.StatusOK, jt)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		id, ok := pathID(w, r)
		if !ok {
			return
		}
		ch, cancel, err := s.Subscribe(id)
		switch {
		case errors.Is(err, ErrNotFound):
			WriteError(w, http.StatusNotFound, err)
			return
		case err != nil:
			// The fan-out bound: shed this subscriber, keep the solve.
			WriteError(w, http.StatusServiceUnavailable, err)
			return
		}
		defer cancel()
		ServeEvents(w, r, ch)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, ok := pathID(w, r)
		if !ok {
			return
		}
		job, err := s.Cancel(id)
		switch {
		case errors.Is(err, ErrNotFound):
			WriteError(w, http.StatusNotFound, err)
		case errors.Is(err, ErrFinished):
			WriteError(w, http.StatusConflict, err)
		case err != nil:
			WriteError(w, http.StatusInternalServerError, err)
		default:
			WriteJSON(w, http.StatusOK, job)
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		depth, workers := s.Queue()
		WriteJSON(w, http.StatusOK, Health{
			Status:      "ok",
			QueueDepth:  depth,
			Workers:     workers,
			Jobs:        s.Counts(),
			Queued:      s.Load(),
			StepsPerSec: s.StepsPerSec(),
			Version:     version.String(),
		})
	})
	mux.HandleFunc("GET /metrics", MetricsHandler(s.Telemetry()))
	return mux
}

// MetricsHandler serves a telemetry registry in Prometheus text
// exposition format. Shared by the daemon handler, the replication
// node's outer mux (so standbys are scrapable too) and the cluster
// router's own-series path.
func MetricsHandler(reg *telemetry.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteText(w)
	}
}

// ReadJobSpec decodes a JobSpec request body, bounded by MaxSpecBytes and
// rejecting unknown fields. On failure it writes the API error response
// itself (413 for oversized bodies, 400 otherwise) and reports !ok. The
// daemon handler and the cluster router share it, so admission semantics
// cannot diverge between serve and route modes.
func ReadJobSpec(w http.ResponseWriter, r *http.Request) (JobSpec, bool) {
	var spec JobSpec
	// Bound the request body: admission control is pointless if one
	// oversized spec can exhaust memory before it reaches the queue.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		WriteError(w, status, fmt.Errorf("decoding job spec: %w", err))
		return JobSpec{}, false
	}
	// The body must be exactly one JSON document. Decode reads one value and
	// stops, so `{...}{...}` or `{...}junk` would otherwise be admitted with
	// the trailing content silently dropped — a concatenated batch the
	// sender meant as several jobs would quietly run as one.
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		WriteError(w, http.StatusBadRequest,
			errors.New("decoding job spec: trailing data after the JSON document"))
		return JobSpec{}, false
	}
	return spec, true
}

// ServeEvents writes a progress channel to the client as server-sent
// events: `event: progress` frames while the job runs, a final `event: end`
// frame carrying the terminal snapshot, each with a JSON-encoded Progress
// as its data line. The stream ends when the channel closes (the job went
// terminal) or the client disconnects. Shared by the daemon handler and the
// cluster router's subscriber-facing side so the wire format cannot
// diverge.
func ServeEvents(w http.ResponseWriter, r *http.Request, ch <-chan Progress) {
	fl, ok := w.(http.Flusher)
	if !ok {
		WriteError(w, http.StatusInternalServerError,
			errors.New("service: response writer does not support streaming"))
		return
	}
	SetEventStreamHeaders(w)
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case p, ok := <-ch:
			if !ok {
				return
			}
			if err := WriteEvent(w, p); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// SetEventStreamHeaders marks a response as a server-sent event stream and
// disables intermediary buffering.
func SetEventStreamHeaders(w http.ResponseWriter) {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
}

// WriteEvent writes one SSE frame: the event name derives from the
// snapshot's state (`progress` while running, `end` once terminal).
func WriteEvent(w io.Writer, p Progress) error {
	name := "progress"
	if p.State.Terminal() {
		name = "end"
	}
	data, err := json.Marshal(p)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
	return err
}

// StatesFromQuery parses the list filter's ?state= values, accepting
// repeated and comma-separated forms (?state=done&state=failed,
// ?state=queued,running). An unknown state name is an error (the
// handlers' 400).
func StatesFromQuery(r *http.Request) ([]State, error) {
	var states []State
	for _, raw := range r.URL.Query()["state"] {
		for _, name := range strings.Split(raw, ",") {
			if name == "" {
				continue
			}
			st, err := ParseState(name)
			if err != nil {
				return nil, err
			}
			states = append(states, st)
		}
	}
	return states, nil
}

func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrStore):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// pathID parses the {id} path segment. A single daemon owns bare sequence
// numbers only; a shard-prefixed ID ("s2-17") addressed to it is a routing
// mistake and is rejected rather than silently resolved to some other job.
func pathID(w http.ResponseWriter, r *http.Request) (int64, bool) {
	id, err := ParseJobID(r.PathValue("id"))
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return 0, false
	}
	if id.Sharded() {
		WriteError(w, http.StatusBadRequest,
			fmt.Errorf("service: sharded job id %q addressed to a single daemon (send it to the cluster router)", id))
		return 0, false
	}
	return id.Seq, true
}

// WriteJSON writes v as an indented JSON response body under the given
// status code (shared by the daemon handler and the cluster router).
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to salvage
}

// WriteError writes err as the API's {"error": "..."} payload. Server
// errors (5xx) additionally carry the request ID the middleware stamped
// on the response, so a client's retry log lines correlate with the
// server's access log.
func WriteError(w http.ResponseWriter, status int, err error) {
	body := map[string]string{"error": err.Error()}
	if status >= 500 {
		if rid := w.Header().Get(tracelog.RequestIDHeader); rid != "" {
			body["request_id"] = rid
		}
	}
	WriteJSON(w, status, body)
}
