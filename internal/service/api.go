package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Health is the /healthz payload: a liveness verdict plus queue occupancy.
type Health struct {
	Status     string        `json:"status"`
	QueueDepth int           `json:"queue_depth"`
	Workers    int           `json:"workers"`
	Jobs       map[State]int `json:"jobs"`
}

// maxSpecBytes bounds a submitted job spec (the CNF text dominates; 64 MiB
// covers every SATLIB-scale instance with two orders of magnitude to
// spare).
const maxSpecBytes = 64 << 20

// NewHandler wraps a service in its HTTP JSON surface:
//
//	POST   /v1/jobs      submit a JobSpec  → 202 Job (429 when the queue is full)
//	GET    /v1/jobs      list jobs         → 200 []Job; ?state= filters
//	GET    /v1/jobs/{id} fetch one job     → 200 Job
//	DELETE /v1/jobs/{id} cancel a job      → 200 Job (409 when already terminal)
//	GET    /healthz      liveness + queue occupancy
//
// The list filter accepts repeated and comma-separated values
// (?state=done&state=failed, ?state=queued,running); an unknown state is a
// 400. Errors are returned as {"error": "..."} with the matching status
// code.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		// Bound the request body: admission control is pointless if one
		// oversized spec can exhaust memory before it reaches the queue.
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			status := http.StatusBadRequest
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				status = http.StatusRequestEntityTooLarge
			}
			writeError(w, status, fmt.Errorf("decoding job spec: %w", err))
			return
		}
		job, err := s.Submit(spec)
		if err != nil {
			writeError(w, submitStatus(err), err)
			return
		}
		writeJSON(w, http.StatusAccepted, job)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var states []State
		for _, raw := range r.URL.Query()["state"] {
			for _, name := range strings.Split(raw, ",") {
				if name == "" {
					continue
				}
				st, err := ParseState(name)
				if err != nil {
					writeError(w, http.StatusBadRequest, err)
					return
				}
				states = append(states, st)
			}
		}
		writeJSON(w, http.StatusOK, s.List(states...))
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, ok := pathID(w, r)
		if !ok {
			return
		}
		job, found := s.Get(id)
		if !found {
			writeError(w, http.StatusNotFound, ErrNotFound)
			return
		}
		writeJSON(w, http.StatusOK, job)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, ok := pathID(w, r)
		if !ok {
			return
		}
		job, err := s.Cancel(id)
		switch {
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, err)
		case errors.Is(err, ErrFinished):
			writeError(w, http.StatusConflict, err)
		case err != nil:
			writeError(w, http.StatusInternalServerError, err)
		default:
			writeJSON(w, http.StatusOK, job)
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		depth, workers := s.Queue()
		writeJSON(w, http.StatusOK, Health{
			Status:     "ok",
			QueueDepth: depth,
			Workers:    workers,
			Jobs:       s.Counts(),
		})
	})
	return mux
}

func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrStore):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

func pathID(w http.ResponseWriter, r *http.Request) (int64, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", r.PathValue("id")))
		return 0, false
	}
	return id, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to salvage
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
