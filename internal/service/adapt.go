package service

import (
	"encoding/json"
	"sort"
	"strings"
	"sync"

	"hypersolve/internal/store"
)

// defaultPortfolio is the strategy set a `"portfolio": ["auto"]` job races:
// the paper's three headline mappers. The service launches them in its
// learned order for the job's problem class.
func defaultPortfolio() []string { return []string{"rr", "lbn", "weighted"} }

// problemClass buckets a spec for the strategy-stats table. Classing by
// workload kind is deliberately coarse: the paper's result is that the best
// mapper is a property of the search-tree shape, which the kind dominates.
func problemClass(spec JobSpec) string {
	kind := strings.ToLower(spec.Kind)
	if kind == "dimacs" {
		return "sat"
	}
	return kind
}

// strategyStats is the adaptive half of portfolio racing: a per-problem-
// class table of which strategy's attempt won each finished race. The
// table is rebuilt from the store's attempt ledgers on startup (so it
// survives restarts and rides replication to a promoted standby) and
// ordered rankings bias future races toward historical winners.
type strategyStats struct {
	mu   sync.Mutex
	wins map[string]map[string]int // class -> strategy -> wins
}

func newStrategyStats() *strategyStats {
	return &strategyStats{wins: make(map[string]map[string]int)}
}

// Record counts one race win for strategy on the given problem class.
func (t *strategyStats) Record(class, strategy string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.wins[class]
	if m == nil {
		m = make(map[string]int)
		t.wins[class] = m
	}
	m[strategy]++
}

// Rank returns candidates ordered by historical win count for class,
// descending, preserving the given order among ties — so an unseen class
// launches the portfolio exactly as submitted (or as defaultPortfolio
// lists it, for "auto").
func (t *strategyStats) Rank(class string, candidates []string) []string {
	out := append([]string(nil), candidates...)
	counts := make(map[string]int, len(out))
	t.mu.Lock()
	for _, c := range out {
		counts[c] = t.wins[class][c]
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, k int) bool { return counts[out[i]] > counts[out[k]] })
	return out
}

// rebuildAdapt replays the store's attempt ledgers into the stats table:
// every done portfolio job with a recorded winner counts as one win. Runs
// once, before recover(), so re-admitted "auto" jobs race in the learned
// order.
func (s *Service) rebuildAdapt() {
	for _, sj := range s.store.List(store.StateDone) {
		if len(sj.Attempts) == 0 {
			continue
		}
		var doc attemptsDoc
		if json.Unmarshal(sj.Attempts, &doc) != nil || doc.Winner == "" {
			continue
		}
		var spec JobSpec
		_ = json.Unmarshal(sj.Spec, &spec)
		s.adapt.Record(problemClass(spec), doc.Winner)
	}
}

// resolveStrategies fixes a job's attempt list at admission: a solo job is
// a single attempt under its mapper; a portfolio job races its entries —
// "auto" expanding to the default set — launched in the stats table's
// learned order for the job's class.
func (s *Service) resolveStrategies(spec JobSpec, built *buildOut) []string {
	if len(built.portfolio) == 0 {
		return []string{built.mapper}
	}
	list := built.portfolio
	if list[0] == "auto" {
		list = defaultPortfolio()
	}
	return s.adapt.Rank(problemClass(spec), list)
}
