package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hypersolve/internal/store"
	"hypersolve/internal/telemetry"
	"hypersolve/internal/tracelog"
	"hypersolve/internal/version"
)

// A Node is one member of a replicated shard: a durable store plus a role.
// A primary runs the full Service (workers, admission queue) and serves its
// journal as a replication feed; a standby holds a replica store that tails
// a primary's feed and serves read-only copies of its jobs. Promote flips a
// standby to primary in place — the replica store goes read-write, jobs the
// dead primary left running are re-queued and re-run, and the HTTP surface
// swaps from the read-only handler to the full Service handler without the
// listener noticing. Demote is the reverse: the healed old primary steps
// down, discards its divergent tail, and re-syncs from scratch.
//
// Both roles serve the replication control surface:
//
//	GET  /v1/replication/journal?from=N  feed page (records or snapshot)
//	GET  /v1/replication/status          role, epoch, LSN, lag
//	POST /v1/replication/promote         standby → primary
//	POST /v1/replication/demote          primary → standby ({"follow": url})
type Node struct {
	cfg NodeConfig

	// inner holds the role-dependent part of the HTTP surface (the
	// /v1/jobs API): the Service handler on a primary, the read-only
	// standby handler otherwise. Swapped atomically at role transitions.
	inner atomic.Value // http.Handler

	mu        sync.Mutex
	file      *store.File
	svc       *Service // nil while standby
	following string   // feed source URL; "" while primary

	// pullMu guards the pull loop's status fields separately from n.mu:
	// role transitions hold n.mu while joining the pull loop, so the loop
	// must never need n.mu itself. Lock order: n.mu before pullMu.
	pullMu    sync.Mutex
	sourceLSN int64  // primary's LSN as of the last successful pull
	pullErr   string // last pull failure, cleared by the next success
	lastLag   int64  // most recently logged lag (rate-limits the report)

	// pullErrors counts failed feed pulls across the node's lifetime
	// (role flips included — the counter survives store reopens).
	pullErrors *telemetry.Counter

	pullCancel context.CancelFunc
	pullDone   chan struct{}
	closed     bool
}

// NodeConfig configures one shard member.
type NodeConfig struct {
	// Dir is the durable store directory (required: replication is
	// meaningless without a journal).
	Dir string
	// Store tunes the journal (Dir above overrides Store.Dir).
	Store store.FileConfig
	// Service sizes the solve service once (or while) the node is primary.
	Service Config
	// Follow, when non-empty, starts the node as a standby tailing the
	// given primary's replication feed. Empty starts it as a primary.
	Follow string
	// PullEvery is the standby's tail cadence once caught up (<= 0
	// defaults to 250ms); a lagging standby pulls continuously.
	PullEvery time.Duration
	// PullLimit caps records per feed page (<= 0 uses the store default).
	PullLimit int
	// HTTP is the transport for feed pulls; nil means http.DefaultClient.
	HTTP *http.Client
	// Logger receives role transitions and the periodic lag report as
	// structured records; nil discards them.
	Logger *tracelog.Logger
}

// ReplicationStatus is the GET /v1/replication/status payload.
type ReplicationStatus struct {
	Role  string `json:"role"` // "primary" | "standby"
	Epoch int64  `json:"epoch"`
	LSN   int64  `json:"lsn"`
	// Following and Lag describe a standby's tail: the feed source URL and
	// how many records it trails the primary by (as of the last pull).
	Following string `json:"following,omitempty"`
	SourceLSN int64  `json:"source_lsn,omitempty"`
	Lag       int64  `json:"lag"`
	// LastError is the most recent pull failure, cleared on success.
	LastError string `json:"last_error,omitempty"`
}

// PromoteResult is the POST /v1/replication/promote payload.
type PromoteResult struct {
	Role  string `json:"role"`
	Epoch int64  `json:"epoch"`
	// Requeued lists jobs the dead primary left running, now queued again
	// on this node (empty on an idempotent re-promote).
	Requeued []JobID `json:"requeued,omitempty"`
}

// NewNode opens the store at cfg.Dir and starts the node in its configured
// role.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Dir == "" {
		return nil, errors.New("service: node requires a store directory")
	}
	if cfg.PullEvery <= 0 {
		cfg.PullEvery = 250 * time.Millisecond
	}
	if cfg.Service.Telemetry == nil {
		cfg.Service.Telemetry = telemetry.NewRegistry()
	}
	n := &Node{cfg: cfg}
	sc := cfg.Store
	sc.Dir = cfg.Dir
	sc.Replica = cfg.Follow != ""
	// One registry per node: store, service and replication metrics all
	// land in it, and it is what GET /metrics serves in either role.
	sc.Telemetry = cfg.Service.Telemetry
	f, err := store.Open(sc)
	if err != nil {
		return nil, err
	}
	n.file = f
	n.registerMetrics()
	if cfg.Follow != "" {
		n.startStandby(cfg.Follow, false)
	} else {
		n.startPrimary()
	}
	return n, nil
}

// Telemetry returns the node's metrics registry (shared with its store
// and, while primary, its service).
func (n *Node) Telemetry() *telemetry.Registry { return n.cfg.Service.Telemetry }

// registerMetrics publishes the replication surface: role, epoch, the
// local and source cursors, and the lag between them. All are sampled
// from Status at scrape time, so they stay correct across role flips.
func (n *Node) registerMetrics() {
	reg := n.Telemetry()
	n.pullErrors = reg.Counter("hypersolve_replication_pull_errors_total",
		"Failed replication feed pulls.")
	reg.GaugeFunc("hypersolve_replication_role",
		"1 while primary, 0 while standby.", func() float64 {
			if n.Status().Role == "primary" {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("hypersolve_replication_epoch",
		"Fencing epoch, bumped by each promotion.", func() float64 {
			return float64(n.Status().Epoch)
		})
	reg.GaugeFunc("hypersolve_replication_lsn",
		"Local log sequence number.", func() float64 {
			return float64(n.Status().LSN)
		})
	reg.GaugeFunc("hypersolve_replication_source_lsn",
		"Feed source's LSN as of the last successful pull (standby only).", func() float64 {
			return float64(n.Status().SourceLSN)
		})
	reg.GaugeFunc("hypersolve_replication_lag_records",
		"Records this standby trails its primary by.", func() float64 {
			return float64(n.Status().Lag)
		})
}

// startPrimary spins up the Service over the (read-write) store and swaps
// in the full handler. Callers hold n.mu or own the node exclusively.
func (n *Node) startPrimary() {
	sc := n.cfg.Service
	sc.Store = n.file
	n.svc = New(sc)
	n.following = ""
	n.inner.Store(NewHandler(n.svc))
}

// startStandby swaps in the read-only handler and starts the pull loop.
// reset forces a from-zero pull, discarding local state in favour of a
// fresh snapshot from the source (the demote path: a stepped-down primary
// cannot trust its divergent tail). Callers hold n.mu or own the node
// exclusively.
func (n *Node) startStandby(follow string, reset bool) {
	n.svc = nil
	n.following = follow
	n.inner.Store(newStandbyHandler(n))
	ctx, cancel := context.WithCancel(context.Background())
	n.pullCancel = cancel
	n.pullDone = make(chan struct{})
	go n.pullLoop(ctx, follow, reset)
}

// stopPuller cancels and joins the pull loop, if one is running. Callers
// hold n.mu.
func (n *Node) stopPuller() {
	if n.pullCancel != nil {
		n.pullCancel()
		<-n.pullDone
		n.pullCancel, n.pullDone = nil, nil
	}
}

// pullLoop tails the source's replication feed into the replica store:
// continuously while behind, at PullEvery once caught up. Pull failures are
// retried forever — a dead primary is exactly when the standby must keep
// trying (it may be promoted any moment, which cancels the loop).
func (n *Node) pullLoop(ctx context.Context, follow string, reset bool) {
	defer close(n.pullDone)
	client := &Client{Base: follow, HTTP: n.cfg.HTTP}
	first := true
	for {
		var from int64
		if !reset || !first {
			_, lsn := n.file.ReplicationState()
			from = lsn + 1
		}
		first = false
		page, err := client.ReplicationFeed(ctx, from, n.cfg.PullLimit)
		var res store.FeedResult
		if err == nil {
			res, err = n.file.ApplyFeed(page)
		}
		n.pullMu.Lock()
		if err != nil {
			n.pullErr = err.Error()
			n.pullErrors.Inc()
		} else {
			n.pullErr = ""
			n.sourceLSN = res.SourceLSN
			_, lsn := n.file.ReplicationState()
			if lag := res.SourceLSN - lsn; lag != n.lastLag {
				n.lastLag = lag
				if lag > 0 {
					n.cfg.Logger.Info("replication lag",
						tracelog.A("lag", lag), tracelog.A("source", follow))
				} else if res.Snapshot {
					n.cfg.Logger.Info("replication reset from snapshot",
						tracelog.A("source", follow), tracelog.A("lsn", lsn))
				}
			}
		}
		n.pullMu.Unlock()
		if err == nil && !res.Snapshot {
			_, lsn := n.file.ReplicationState()
			if res.SourceLSN > lsn {
				// Still behind: pull the next page immediately.
				select {
				case <-ctx.Done():
					return
				default:
					continue
				}
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(n.cfg.PullEvery):
		}
	}
}

// Promote flips a standby to primary: the pull loop stops, the replica
// store goes read-write (bumping the fencing epoch), and a full Service
// starts over it — its recovery path re-admits every queued job, including
// the ones the dead primary left running. Promoting a primary is a no-op
// reporting the current epoch, so a router's retried promotion converges.
func (n *Node) Promote() (PromoteResult, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return PromoteResult{}, ErrClosed
	}
	if n.svc != nil {
		epoch, _ := n.file.ReplicationState()
		return PromoteResult{Role: "primary", Epoch: epoch}, nil
	}
	n.stopPuller()
	epoch, requeued, err := n.file.Promote()
	if err != nil {
		n.cfg.Logger.Warn("promotion journal write degraded", tracelog.A("error", err.Error()))
	}
	n.startPrimary()
	res := PromoteResult{Role: "primary", Epoch: epoch}
	for _, id := range requeued {
		res.Requeued = append(res.Requeued, JobID{Seq: id})
	}
	n.cfg.Logger.Info("promoted to primary",
		tracelog.A("epoch", epoch), tracelog.A("requeued", len(res.Requeued)))
	return res, nil
}

// Demote steps a primary down to a standby following the given URL. The
// service drains (running solves are interrupted, queued jobs cancelled —
// their records are about to be discarded anyway), the store reopens in
// replica mode, and the pull loop starts with a forced from-zero pull: a
// stepped-down primary's post-divergence tail cannot be trusted, so it is
// replaced wholesale by the new primary's snapshot. Demoting a standby just
// retargets (and resets) its tail.
func (n *Node) Demote(follow string) (ReplicationStatus, error) {
	if follow == "" {
		return ReplicationStatus{}, errors.New("service: demote requires a feed source url")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return ReplicationStatus{}, ErrClosed
	}
	n.stopPuller()
	if n.svc != nil {
		n.svc.Close() // closes the store too
	} else if err := n.file.Close(); err != nil && !errors.Is(err, store.ErrClosed) {
		return ReplicationStatus{}, err
	}
	sc := n.cfg.Store
	sc.Dir = n.cfg.Dir
	sc.Replica = true
	sc.Telemetry = n.Telemetry()
	f, err := store.Open(sc)
	if err != nil {
		return ReplicationStatus{}, fmt.Errorf("service: reopening store as replica: %w", err)
	}
	n.file = f
	n.pullMu.Lock()
	n.sourceLSN, n.pullErr, n.lastLag = 0, "", 0
	n.pullMu.Unlock()
	n.startStandby(follow, true)
	n.cfg.Logger.Info("demoted to standby (full re-sync)", tracelog.A("source", follow))
	return n.statusLocked(), nil
}

// Status reports the node's role, replication cursor, and tail health.
func (n *Node) Status() ReplicationStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.statusLocked()
}

func (n *Node) statusLocked() ReplicationStatus {
	epoch, lsn := n.file.ReplicationState()
	st := ReplicationStatus{Epoch: epoch, LSN: lsn, Role: "primary"}
	if n.svc == nil {
		st.Role = "standby"
		st.Following = n.following
		n.pullMu.Lock()
		st.SourceLSN = n.sourceLSN
		st.LastError = n.pullErr
		n.pullMu.Unlock()
		if lag := st.SourceLSN - lsn; lag > 0 {
			st.Lag = lag
		}
	}
	return st
}

// Service returns the node's solve service while it is primary (nil on a
// standby) — the process-internal handle for tests and embedders.
func (n *Node) Service() *Service {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.svc
}

// Close stops the node: the pull loop, the service (when primary), and the
// store. Idempotent.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.stopPuller()
	svc, file := n.svc, n.file
	n.mu.Unlock()
	if svc != nil {
		svc.Close()
		return
	}
	_ = file.Close()
}

// Handler returns the node's full HTTP surface: the replication control
// endpoints plus the role-dependent job API (full Service handler on a
// primary, read-only store views on a standby). The handler stays valid
// across role transitions.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/replication/journal", func(w http.ResponseWriter, r *http.Request) {
		from, err := queryInt64(r, "from")
		if err != nil {
			WriteError(w, http.StatusBadRequest, err)
			return
		}
		limit, err := queryInt64(r, "limit")
		if err != nil {
			WriteError(w, http.StatusBadRequest, err)
			return
		}
		page, err := n.file.Feed(from, int(limit))
		if err != nil {
			WriteError(w, http.StatusServiceUnavailable, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(page)
	})
	mux.HandleFunc("GET /v1/replication/status", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, n.Status())
	})
	mux.HandleFunc("POST /v1/replication/promote", func(w http.ResponseWriter, r *http.Request) {
		res, err := n.Promote()
		if err != nil {
			WriteError(w, http.StatusServiceUnavailable, err)
			return
		}
		WriteJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /v1/replication/demote", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Follow string `json:"follow"`
		}
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&body); err != nil {
			WriteError(w, http.StatusBadRequest, fmt.Errorf("decoding demote request: %w", err))
			return
		}
		st, err := n.Demote(body.Follow)
		if err != nil {
			status := http.StatusServiceUnavailable
			if body.Follow == "" {
				status = http.StatusBadRequest
			}
			WriteError(w, status, err)
			return
		}
		WriteJSON(w, http.StatusOK, st)
	})
	// Registered on the outer mux so the node is scrapable in both roles;
	// the registry is shared with the store and (while primary) the
	// service, so one scrape sees the whole node.
	mux.HandleFunc("GET /metrics", MetricsHandler(n.Telemetry()))
	mux.Handle("/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.inner.Load().(http.Handler).ServeHTTP(w, r)
	}))
	return mux
}

func queryInt64(r *http.Request, key string) (int64, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("service: query parameter %s must be a non-negative integer", key)
	}
	return v, nil
}

// ErrStandby rejects mutations addressed to a standby: the caller (usually
// the router failing over a read) should submit to the primary.
var ErrStandby = errors.New("service: standby is read-only (this node follows a primary)")

// newStandbyHandler serves the job API read-only, straight from the replica
// store: Get and List work (that is the point of a warm standby), mutations
// are 503s naming the role, and event streams are served for terminal jobs
// only (a standby has no live brokers; its view of a running job is a
// replication tail, not a progress stream).
func newStandbyHandler(n *Node) http.Handler {
	mux := http.NewServeMux()
	reject := func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, http.StatusServiceUnavailable, ErrStandby)
	}
	mux.HandleFunc("POST /v1/jobs", reject)
	mux.HandleFunc("DELETE /v1/jobs/{id}", reject)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		states, err := StatesFromQuery(r)
		if err != nil {
			WriteError(w, http.StatusBadRequest, err)
			return
		}
		recs := n.file.List(states...)
		jobs := make([]Job, 0, len(recs))
		for _, sj := range recs {
			jobs = append(jobs, jobFromRecord(sj))
		}
		WriteJSON(w, http.StatusOK, jobs)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, ok := pathID(w, r)
		if !ok {
			return
		}
		sj, found := n.file.Get(id)
		if !found {
			WriteError(w, http.StatusNotFound, ErrNotFound)
			return
		}
		WriteJSON(w, http.StatusOK, jobFromRecord(sj))
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		id, ok := pathID(w, r)
		if !ok {
			return
		}
		sj, found := n.file.Get(id)
		if !found {
			WriteError(w, http.StatusNotFound, ErrNotFound)
			return
		}
		// The replicated timeline (including the standby's own
		// replica_apply span, stamped at feed-apply time) is served
		// as-is: a read failed over to a standby keeps its trace ID.
		WriteJSON(w, http.StatusOK, jobTraceFromRecord(sj))
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		id, ok := pathID(w, r)
		if !ok {
			return
		}
		sj, found := n.file.Get(id)
		if !found {
			WriteError(w, http.StatusNotFound, ErrNotFound)
			return
		}
		if !sj.State.Terminal() {
			WriteError(w, http.StatusServiceUnavailable,
				fmt.Errorf("%w: live progress streams come from the primary", ErrStandby))
			return
		}
		// Synthesize the terminal frame exactly as Service.Subscribe does
		// for jobs finished before its process started.
		p := Progress{State: sj.State, Error: sj.Error}
		if len(sj.Result) > 0 {
			var res struct {
				Stats struct {
					Steps int64 `json:"steps"`
				} `json:"stats"`
			}
			if json.Unmarshal(sj.Result, &res) == nil {
				p.Step = res.Stats.Steps
			}
		}
		ch := make(chan Progress, 1)
		ch <- p
		close(ch)
		ServeEvents(w, r, ch)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		counts := make(map[State]int)
		for _, sj := range n.file.List() {
			counts[sj.State]++
		}
		WriteJSON(w, http.StatusOK, Health{
			Status:         "standby",
			Jobs:           counts,
			ReplicationLag: n.Status().Lag,
			Version:        version.String(),
		})
	})
	return mux
}
