package service

import (
	"sync"
	"testing"
	"time"

	"hypersolve/internal/simulator"
)

// TestBrokerSlowSubscriberNeverBlocks: a subscriber that never reads must
// not block Publish — the solve loop's thread — no matter how many
// snapshots are published. Conflation keeps exactly the newest snapshot
// pending.
func TestBrokerSlowSubscriberNeverBlocks(t *testing.T) {
	b := NewProgressBroker()
	ch, cancel, err := b.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10_000; i++ {
			b.Publish(Progress{State: StateRunning, Step: int64(i)})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a subscriber that never reads")
	}
	p := <-ch
	if p.Step != 9999 {
		t.Fatalf("pending snapshot = step %d, want the newest (9999)", p.Step)
	}
}

// TestBrokerTerminalAlwaysDelivered: even when the terminal snapshot
// conflates away a pending progress snapshot, the last value every
// subscriber receives before its channel closes is the terminal one.
func TestBrokerTerminalAlwaysDelivered(t *testing.T) {
	b := NewProgressBroker()
	ch, cancel, err := b.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	// Fill the subscriber's buffer, then finish without it ever reading.
	b.Publish(Progress{State: StateRunning, Step: 1})
	b.Publish(Progress{State: StateRunning, Step: 2})
	b.Finish(StateDone, "", &JobResult{Stats: statsWithSteps(42)})

	var last Progress
	n := 0
	for p := range ch {
		last = p
		n++
	}
	if n != 1 {
		t.Fatalf("subscriber received %d snapshots, want just the conflated terminal one", n)
	}
	if last.State != StateDone || last.Step != 42 {
		t.Fatalf("last snapshot = %+v, want done at step 42", last)
	}

	// Publishing after the terminal snapshot is ignored, not a panic on a
	// closed channel.
	b.Publish(Progress{State: StateRunning, Step: 99})
}

// TestBrokerSubscribeAfterDone: a late subscriber replays the final
// snapshot on an already-closed channel.
func TestBrokerSubscribeAfterDone(t *testing.T) {
	b := NewProgressBroker()
	b.Publish(Progress{State: StateRunning, Step: 7, Queued: 3})
	b.Finish(StateFailed, "boom", nil)

	ch, cancel, err := b.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	p, ok := <-ch
	if !ok {
		t.Fatal("late subscriber got no replay")
	}
	if p.State != StateFailed || p.Error != "boom" || p.Step != 7 {
		t.Fatalf("replayed snapshot = %+v, want failed/boom at the last published step", p)
	}
	if _, ok := <-ch; ok {
		t.Fatal("late subscriber channel not closed after the replay")
	}
}

// TestBrokerFanOutBound: subscriptions beyond the per-job cap are rejected,
// and unsubscribing frees a slot.
func TestBrokerFanOutBound(t *testing.T) {
	b := NewProgressBroker()
	cancels := make([]func(), 0, maxSubscribers)
	for i := 0; i < maxSubscribers; i++ {
		_, cancel, err := b.Subscribe()
		if err != nil {
			t.Fatalf("subscriber %d rejected below the bound: %v", i, err)
		}
		cancels = append(cancels, cancel)
	}
	if _, _, err := b.Subscribe(); err != ErrTooManySubscribers {
		t.Fatalf("subscribe at the bound = %v, want ErrTooManySubscribers", err)
	}
	cancels[0]()
	if _, cancel, err := b.Subscribe(); err != nil {
		t.Fatalf("subscribe after an unsubscribe: %v", err)
	} else {
		cancel()
	}
}

// TestBrokerConcurrentPublishSubscribe exercises the broker under the race
// detector: concurrent publishers, subscribers and unsubscribers, ending in
// a terminal snapshot every reader observes.
func TestBrokerConcurrentPublishSubscribe(t *testing.T) {
	b := NewProgressBroker()
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch, cancel, err := b.Subscribe()
			if err != nil {
				return // fan-out bound; fine under contention
			}
			defer cancel()
			for p := range ch {
				if p.State.Terminal() {
					return
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		b.Publish(Progress{State: StateRunning, Step: int64(i)})
	}
	b.Finish(StateCancelled, "", nil)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("a subscriber never saw the terminal snapshot")
	}
}

// TestObserverThrottle: the observer publishes at most one snapshot per
// ProgressInterval however many steps elapse, and only on the
// progressCheckSteps cadence.
func TestObserverThrottle(t *testing.T) {
	b := NewProgressBroker()
	obs := b.Observer().(*progressObserver)
	// Pretend the last publish is long past so the very next check fires.
	obs.lastPub = time.Now().Add(-time.Hour)
	ch, cancel, err := b.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	for step := int64(0); step < 4*progressCheckSteps; step++ {
		obs.AfterStep(step, 5)
	}
	// Only the first eligible check may have published: the rest fall
	// within the throttle window.
	select {
	case p := <-ch:
		if p.State != StateRunning || p.Queued != 5 {
			t.Fatalf("snapshot = %+v, want running with 5 queued", p)
		}
	default:
		t.Fatal("no snapshot published despite an expired throttle window")
	}
	select {
	case p := <-ch:
		t.Fatalf("second snapshot %+v published within the throttle interval", p)
	default:
	}
}

// TestServiceSubscribeLifecycle drives Subscribe through the service
// in-process: queued snapshot on submit, terminal snapshot on completion,
// synthesized replay for terminal jobs whose broker is gone, ErrNotFound
// for unknown jobs.
func TestServiceSubscribeLifecycle(t *testing.T) {
	s := New(Config{QueueDepth: 4, Workers: 1})
	defer s.Close()

	if _, _, err := s.Subscribe(999); err != ErrNotFound {
		t.Fatalf("Subscribe(unknown) = %v, want ErrNotFound", err)
	}

	job, err := s.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := s.Subscribe(job.ID.Seq)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	var last Progress
	got := 0
	for p := range ch {
		last = p
		got++
	}
	if got == 0 || last.State != StateDone {
		t.Fatalf("stream delivered %d snapshots ending %+v, want >=1 ending done", got, last)
	}
	if last.Step <= 0 {
		t.Fatalf("terminal snapshot step = %d, want the run's total steps", last.Step)
	}

	// The broker is gone now; a late Subscribe synthesizes the final
	// snapshot from the store record.
	ch2, cancel2, err := s.Subscribe(job.ID.Seq)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel2()
	p, ok := <-ch2
	if !ok || p.State != StateDone || p.Step != last.Step {
		t.Fatalf("late subscribe replayed %+v (ok=%v), want done at step %d", p, ok, last.Step)
	}
	if _, ok := <-ch2; ok {
		t.Fatal("late subscribe channel not closed")
	}
}

// TestServiceSubscribeSeesCancel: a subscriber on a running job observes
// the cancelled terminal snapshot when the job is cancelled mid-solve.
func TestServiceSubscribeSeesCancel(t *testing.T) {
	s := New(Config{QueueDepth: 4, Workers: 1})
	defer s.Close()
	job, err := s.Submit(slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := s.Subscribe(job.ID.Seq)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	waitForState(t, s, job.ID.Seq, StateRunning)
	if _, err := s.Cancel(job.ID.Seq); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for {
		select {
		case p, ok := <-ch:
			if !ok {
				t.Fatal("stream closed without a terminal snapshot")
			}
			if p.State.Terminal() {
				if p.State != StateCancelled {
					t.Fatalf("terminal snapshot state = %s, want cancelled", p.State)
				}
				return
			}
		case <-deadline:
			t.Fatal("no terminal snapshot after cancel")
		}
	}
}

// waitForState polls the service until the job reaches the state (the
// in-process analogue of the HTTP tests' poll loops).
func waitForState(t *testing.T, s *Service, id int64, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j, ok := s.Get(id); ok && j.State == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %d never reached state %s", id, want)
}

func statsWithSteps(n int64) simulator.Stats {
	return simulator.Stats{Steps: n}
}
