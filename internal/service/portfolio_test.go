package service

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"hypersolve/internal/core"
	"hypersolve/internal/sat"
	"hypersolve/internal/store"
)

// satSpec returns a deterministic uf20 SAT spec (no mapper set; tests fill
// in Mapper or Portfolio).
func satSpec(t *testing.T, suiteSeed int64) JobSpec {
	t.Helper()
	suite, err := sat.GenerateSuite(sat.UF20Params(suiteSeed))
	if err != nil {
		t.Fatal(err)
	}
	var cnf strings.Builder
	if err := sat.WriteDIMACS(&cnf, suite[0]); err != nil {
		t.Fatal(err)
	}
	return JobSpec{
		Kind:         "sat",
		CNF:          cnf.String(),
		Topology:     "torus:8x8",
		Seed:         7,
		RecordSeries: true,
	}
}

func TestPortfolioSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
	}{
		{"with mapper", JobSpec{Kind: "sum", N: 4, Mapper: "rr", Portfolio: []string{"lbn"}}},
		{"duplicate", JobSpec{Kind: "sum", N: 4, Portfolio: []string{"rr", "rr"}}},
		{"unknown strategy", JobSpec{Kind: "sum", N: 4, Portfolio: []string{"rr", "psychic"}}},
		{"auto plus others", JobSpec{Kind: "sum", N: 4, Portfolio: []string{"auto", "rr"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.spec.build(); err == nil {
				t.Fatalf("build(%+v) accepted, want error", tc.spec)
			}
		})
	}
	ok := JobSpec{Kind: "sum", N: 4, Portfolio: []string{"rr", "lbn", "weighted:2"}}
	if _, err := ok.build(); err != nil {
		t.Fatalf("valid portfolio rejected: %v", err)
	}
	auto := JobSpec{Kind: "sum", N: 4, Portfolio: []string{"auto"}}
	if _, err := auto.build(); err != nil {
		t.Fatalf(`portfolio ["auto"] rejected: %v`, err)
	}
}

// TestPortfolioBitIdenticalToSoloWinner is the tentpole acceptance check: a
// portfolio race's job result is bit-identical to a solo run of whichever
// strategy won, and the attempt ledger records exactly one winner with every
// loser cancelled.
func TestPortfolioBitIdenticalToSoloWinner(t *testing.T) {
	spec := satSpec(t, 41)
	spec.Portfolio = []string{"rr", "lbn", "weighted"}

	backends(t, Config{QueueDepth: 4, Workers: 4}, func(t *testing.T, s *Service) {
		job, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		done := waitState(t, s, job.ID.Seq, StateDone, 30*time.Second)
		if done.Winner == "" {
			t.Fatal("done portfolio job has no winner")
		}
		if len(done.Attempts) != 3 {
			t.Fatalf("attempt ledger has %d entries, want 3: %+v", len(done.Attempts), done.Attempts)
		}
		winners := 0
		for _, a := range done.Attempts {
			switch {
			case a.Winner:
				winners++
				if a.Strategy != done.Winner || a.State != StateDone {
					t.Fatalf("winning attempt = %+v, want done under %q", a, done.Winner)
				}
				if a.Steps == 0 || a.StartedAt.IsZero() || a.FinishedAt.IsZero() {
					t.Fatalf("winning attempt missing bookkeeping: %+v", a)
				}
			case a.State != StateCancelled:
				t.Fatalf("losing attempt %+v, want cancelled", a)
			}
		}
		if winners != 1 {
			t.Fatalf("%d winning attempts, want exactly 1", winners)
		}
		if done.Raw() == nil {
			t.Fatal("done portfolio job has no raw result")
		}

		// Solo reference run under the winning strategy.
		solo := spec
		solo.Portfolio = nil
		solo.Mapper = done.Winner
		cfg, arg, err := solo.Build()
		if err != nil {
			t.Fatal(err)
		}
		serial, err := core.RunOnce(cfg, arg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(*done.Raw(), serial) {
			t.Fatalf("portfolio result differs from solo %q run:\nportfolio: %+v\nsolo:      %+v",
				done.Winner, *done.Raw(), serial)
		}
	})
}

// TestPortfolioCancelSettlesAllAttempts: cancelling a racing job records the
// job and every attempt cancelled, with no winner.
func TestPortfolioCancelSettlesAllAttempts(t *testing.T) {
	spec := slowSpec()
	spec.Portfolio = []string{"rr", "lbn"}
	backends(t, Config{QueueDepth: 4, Workers: 2}, func(t *testing.T, s *Service) {
		job, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, s, job.ID.Seq, StateRunning, 10*time.Second)
		if _, err := s.Cancel(job.ID.Seq); err != nil {
			t.Fatal(err)
		}
		got := waitState(t, s, job.ID.Seq, StateCancelled, 10*time.Second)
		if got.Winner != "" {
			t.Fatalf("cancelled race has winner %q", got.Winner)
		}
		if len(got.Attempts) != 2 {
			t.Fatalf("attempt ledger has %d entries, want 2", len(got.Attempts))
		}
		for _, a := range got.Attempts {
			if a.State != StateCancelled {
				t.Fatalf("attempt %+v after job cancel, want cancelled", a)
			}
		}
	})
}

// TestPortfolioAutoLearnsOrdering: with one worker, attempts run strictly in
// launch order, so the first-launched strategy of a quick job always wins.
// After a recorded win, a ["auto"] submission must launch the learned
// strategy first — and the learned ranking must survive a restart, rebuilt
// from the store's attempt ledgers.
func TestPortfolioAutoLearnsOrdering(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Config{QueueDepth: 4, Workers: 1, Store: openStore(t, dir)})

	// Teach the service that "weighted" wins for kind sum. defaultPortfolio
	// launches rr first, so without this win an auto race would pick rr.
	teach := quickSpec()
	teach.Portfolio = []string{"weighted", "lbn"}
	job, err := s1.Submit(teach)
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, s1, job.ID.Seq, StateDone, 10*time.Second)
	if done.Winner != "weighted" {
		t.Fatalf("single-worker race winner = %q, want the first-launched %q", done.Winner, "weighted")
	}

	auto := quickSpec()
	auto.Portfolio = []string{"auto"}
	job, err = s1.Submit(auto)
	if err != nil {
		t.Fatal(err)
	}
	done = waitState(t, s1, job.ID.Seq, StateDone, 10*time.Second)
	if done.Winner != "weighted" {
		t.Fatalf("auto race winner = %q, want learned %q launched first", done.Winner, "weighted")
	}
	if len(done.Attempts) != 3 {
		t.Fatalf(`auto expanded to %d attempts, want 3: %+v`, len(done.Attempts), done.Attempts)
	}
	s1.Close()

	// Restart: the stats table is rebuilt from persisted attempt ledgers.
	s2 := New(Config{QueueDepth: 4, Workers: 1, Store: openStore(t, dir)})
	defer s2.Close()
	job, err = s2.Submit(auto)
	if err != nil {
		t.Fatal(err)
	}
	done = waitState(t, s2, job.ID.Seq, StateDone, 10*time.Second)
	if done.Winner != "weighted" {
		t.Fatalf("post-restart auto winner = %q, want %q from the rebuilt stats", done.Winner, "weighted")
	}
}

// TestPortfolioRecoveryReRaces: a portfolio job that was mid-race when the
// process died is re-admitted and re-raced by the next service, and the
// fresh race's ledger replaces the aborted one.
func TestPortfolioRecoveryReRaces(t *testing.T) {
	spec := satSpec(t, 61)
	spec.Portfolio = []string{"rr", "lbn"}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Stage the crash state directly in the store: submitted, started, a
	// partial attempt ledger journaled, then the process died.
	dir := t.TempDir()
	st := openStore(t, dir)
	sj, err := st.Submit(raw, time.Now().UTC())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Start(sj.ID, time.Now().UTC()); err != nil {
		t.Fatal(err)
	}
	stale, _ := json.Marshal(attemptsDoc{Attempts: []Attempt{
		{Strategy: "rr", State: StateRunning},
		{Strategy: "lbn", State: StateRunning},
	}})
	if err := st.SetAttempts(sj.ID, stale); err != nil {
		t.Fatal(err)
	}
	st.Close() // crash-equivalent: no transition records written

	s := New(Config{QueueDepth: 4, Workers: 2, Store: openStore(t, dir)})
	defer s.Close()
	done := waitState(t, s, sj.ID, StateDone, 30*time.Second)
	if done.Winner == "" {
		t.Fatal("re-raced job has no winner")
	}
	for _, a := range done.Attempts {
		if !a.State.Terminal() {
			t.Fatalf("re-raced ledger still carries a live attempt: %+v", a)
		}
	}
	if done.Raw() == nil || !done.Result.SAT.Verified {
		t.Fatalf("re-raced result not verified: %+v", done.Result)
	}
}

// TestSoloJobHasNoAttemptLedger pins the wire shape: solo jobs carry no
// attempts or winner fields, before and after a restart.
func TestSoloJobHasNoAttemptLedger(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Config{QueueDepth: 4, Workers: 1, Store: openStore(t, dir)})
	job, err := s1.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, s1, job.ID.Seq, StateDone, 10*time.Second)
	if done.Winner != "" || done.Attempts != nil {
		t.Fatalf("solo job carries race fields: winner=%q attempts=%+v", done.Winner, done.Attempts)
	}
	s1.Close()
	s2 := New(Config{QueueDepth: 4, Workers: 1, Store: openStore(t, dir)})
	defer s2.Close()
	got, _ := s2.Get(job.ID.Seq)
	if got.Winner != "" || got.Attempts != nil {
		t.Fatalf("restored solo job carries race fields: winner=%q attempts=%+v", got.Winner, got.Attempts)
	}
}

// TestPortfolioAttemptsSurviveSnapshotCompaction: the attempt ledger of a
// finished race survives journal compaction into a snapshot.
func TestPortfolioAttemptsSurviveSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(store.FileConfig{Dir: dir, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{QueueDepth: 8, Workers: 2, Store: st})
	spec := quickSpec()
	spec.Portfolio = []string{"rr", "lbn"}
	job, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := waitState(t, s1, job.ID.Seq, StateDone, 10*time.Second)
	// Push enough jobs through to trigger at least one compaction.
	for i := 0; i < 4; i++ {
		filler, err := s1.Submit(quickSpec())
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, s1, filler.ID.Seq, StateDone, 10*time.Second)
	}
	s1.Close()

	s2 := New(Config{QueueDepth: 8, Workers: 1, Store: openStore(t, dir)})
	defer s2.Close()
	got, ok := s2.Get(job.ID.Seq)
	if !ok {
		t.Fatal("portfolio job vanished across compaction")
	}
	if got.Winner != want.Winner || !reflect.DeepEqual(got.Attempts, want.Attempts) {
		t.Fatalf("ledger changed across compaction:\nbefore: winner=%q %+v\nafter:  winner=%q %+v",
			want.Winner, want.Attempts, got.Winner, got.Attempts)
	}
}
