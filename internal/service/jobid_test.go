package service

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// TestJobIDRoundTripProperty: for arbitrary shard/seq pairs, String →
// ParseJobID and MarshalJSON → UnmarshalJSON are identities.
func TestJobIDRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		id := JobID{Seq: rng.Int63()}
		if rng.Intn(2) == 0 {
			id.Shard = 1 + rng.Intn(1<<16)
		}

		parsed, err := ParseJobID(id.String())
		if err != nil {
			t.Fatalf("ParseJobID(%q): %v", id.String(), err)
		}
		if parsed != id {
			t.Fatalf("String/Parse round trip: %+v -> %q -> %+v", id, id.String(), parsed)
		}

		data, err := json.Marshal(id)
		if err != nil {
			t.Fatal(err)
		}
		var back JobID
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("Unmarshal(%s): %v", data, err)
		}
		if back != id {
			t.Fatalf("JSON round trip: %+v -> %s -> %+v", id, data, back)
		}

		// Unsharded IDs stay wire-compatible with the pre-cluster API:
		// a plain JSON number, not a string.
		if !id.Sharded() && data[0] == '"' {
			t.Fatalf("unsharded ID marshalled as string: %s", data)
		}
	}

	// Negative sequence numbers are rejected in every wire form — the bare
	// form used to let "GET /v1/jobs/-5" through while "s2--5" was refused.
	for i := 0; i < 500; i++ {
		neg := JobID{Seq: -1 - rng.Int63()}
		if rng.Intn(2) == 0 {
			neg.Shard = 1 + rng.Intn(1<<16)
		}
		if got, err := ParseJobID(neg.String()); err == nil {
			t.Fatalf("ParseJobID(%q) = %+v, want error for negative seq", neg.String(), got)
		}
		data, err := json.Marshal(neg)
		if err != nil {
			t.Fatal(err)
		}
		var back JobID
		if err := json.Unmarshal(data, &back); err == nil {
			t.Fatalf("Unmarshal(%s) = %+v, want error for negative seq", data, back)
		}
	}
}

func TestParseJobIDForms(t *testing.T) {
	good := map[string]JobID{
		"17":     {Seq: 17},
		"0":      {},
		"s1-0":   {Shard: 1, Seq: 0},
		"s2-17":  {Shard: 2, Seq: 17},
		"s10-99": {Shard: 10, Seq: 99},
	}
	for in, want := range good {
		got, err := ParseJobID(in)
		if err != nil || got != want {
			t.Errorf("ParseJobID(%q) = %+v, %v; want %+v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "s-1", "s0-3", "s2-", "s2--4", "sx-1", "s2-1x", "2-17", "s2.17", "nope", "-5", "-0", "s2--5"} {
		if got, err := ParseJobID(in); err == nil {
			t.Errorf("ParseJobID(%q) = %+v, want error", in, got)
		}
	}
}

func TestJobIDLessOrdersByShardThenSeq(t *testing.T) {
	ordered := []JobID{
		{Seq: 1}, {Seq: 2},
		{Shard: 1, Seq: 9}, {Shard: 2, Seq: 1}, {Shard: 2, Seq: 3}, {Shard: 3, Seq: 1},
	}
	for i := 0; i < len(ordered)-1; i++ {
		if !ordered[i].Less(ordered[i+1]) {
			t.Errorf("%v should sort before %v", ordered[i], ordered[i+1])
		}
		if ordered[i+1].Less(ordered[i]) {
			t.Errorf("%v should not sort before %v", ordered[i+1], ordered[i])
		}
	}
	if (JobID{Seq: 5}).Less(JobID{Seq: 5}) {
		t.Error("Less must be irreflexive")
	}
}
