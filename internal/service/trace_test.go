package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"hypersolve/internal/tracelog"
)

// TestTraceEndToEnd submits a job over HTTP with a caller-minted
// traceparent and checks the /trace surface: the service adopts the
// caller's trace ID, records the full span taxonomy (compile → admission
// with its journal-free child set → queue → run), and the top-level span
// durations fit inside the wall-clock window the client observed.
func TestTraceEndToEnd(t *testing.T) {
	_, client := newTestServer(t, Config{QueueDepth: 8, Workers: 2})
	tc := tracelog.NewTraceContext()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ctx = tracelog.NewContext(ctx, tc)

	before := time.Now()
	job, err := client.Submit(ctx, JobSpec{Kind: "queens", N: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, job.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(before)

	jt, err := client.Trace(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if jt.TraceID != tc.TraceID {
		t.Fatalf("trace ID = %s, want the caller's %s", jt.TraceID, tc.TraceID)
	}
	if jt.Parent != tc.SpanID {
		t.Fatalf("trace parent = %s, want the caller's span %s", jt.Parent, tc.SpanID)
	}
	spans := spansByName(jt)
	var total time.Duration
	for _, name := range []string{"compile", "admission", "queue", "run"} {
		sp, ok := spans[name]
		if !ok {
			t.Fatalf("trace lacks span %q: %+v", name, jt.Spans)
		}
		if sp.End.IsZero() || sp.End.Before(sp.Start) {
			t.Fatalf("span %q not closed cleanly: start=%v end=%v", name, sp.Start, sp.End)
		}
		total += sp.End.Sub(sp.Start)
	}
	if total > elapsed {
		t.Fatalf("top-level span durations sum to %v, beyond the observed wall clock %v", total, elapsed)
	}
	if spans["run"].Attrs["steps"] == nil {
		t.Fatalf("run span lacks the steps attribute: %+v", spans["run"])
	}
	// Span IDs are monotonic and the journal span (if any, memory stores
	// journal too via the same path) parents under admission.
	for i := 1; i < len(jt.Spans); i++ {
		if jt.Spans[i].ID <= jt.Spans[i-1].ID {
			t.Fatalf("span IDs not monotonic: %+v", jt.Spans)
		}
	}
	if j, ok := spans["journal"]; ok && j.Parent != spans["admission"].ID {
		t.Fatalf("journal span parent = %d, want admission %d", j.Parent, spans["admission"].ID)
	}
}

// TestTraceUnknownJob is the 404 contract of the trace endpoint.
func TestTraceUnknownJob(t *testing.T) {
	srv, _ := newTestServer(t, Config{QueueDepth: 2, Workers: 1})
	resp, err := http.Get(srv.URL + "/v1/jobs/999/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET trace of unknown job = %d, want 404", resp.StatusCode)
	}
}

// TestTraceSurvivesRestart stages a crash (submitted + started, trace
// journaled, no finish record) and checks the next service's re-run
// resumes the original trace ID, closes the dangling spans, and records
// the requeued instant plus a fresh run span.
func TestTraceSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	raw, err := json.Marshal(JobSpec{Kind: "queens", N: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sj, err := st.Submit(raw, time.Now().UTC())
	if err != nil {
		t.Fatal(err)
	}
	// The trace a SubmitTraced would have journaled: caller-rooted, with
	// the queue span still open at the moment of death.
	tc := tracelog.NewTraceContext()
	tr := tracelog.NewTrace(tc)
	tr.EndSpan(tr.StartSpan("compile"))
	tr.EndSpan(tr.StartSpan("admission"))
	tr.StartSpan("queue")
	if err := st.SetTrace(sj.ID, tr.JSON()); err != nil {
		t.Fatal(err)
	}
	if err := st.Start(sj.ID, time.Now().UTC()); err != nil {
		t.Fatal(err)
	}
	st.Close()

	s := New(Config{QueueDepth: 4, Workers: 1, Store: openStore(t, dir)})
	defer s.Close()
	waitState(t, s, sj.ID, StateDone, 30*time.Second)

	jt, ok := s.Trace(sj.ID)
	if !ok {
		t.Fatal("recovered job has no trace")
	}
	if jt.TraceID != tc.TraceID {
		t.Fatalf("recovered trace ID = %s, want the original %s", jt.TraceID, tc.TraceID)
	}
	spans := spansByName(jt)
	if _, ok := spans["requeued"]; !ok {
		t.Fatalf("recovered trace lacks the requeued span: %+v", jt.Spans)
	}
	if _, ok := spans["run"]; !ok {
		t.Fatalf("recovered trace lacks the re-run's run span: %+v", jt.Spans)
	}
	// The pre-crash queue span was left open; Resume must have closed it.
	for _, sp := range jt.Spans {
		if sp.End.IsZero() {
			t.Fatalf("span %q still open after the terminal re-run: %+v", sp.Name, sp)
		}
	}
}

// TestWriteErrorCarriesRequestID checks the 5xx error body contract: when
// the middleware stamped a request ID on the response, a server error
// body echoes it so client and server logs correlate.
func TestWriteErrorCarriesRequestID(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, http.StatusInternalServerError, ErrStore)
	})
	srv := httptest.NewServer(tracelog.Middleware(tracelog.New(os.Stderr, tracelog.LevelError, tracelog.FormatText), inner))
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/boom", nil)
	req.Header.Set(tracelog.RequestIDHeader, "req-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(tracelog.RequestIDHeader); got != "req-42" {
		t.Fatalf("request ID header = %q, want the caller's req-42", got)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["request_id"] != "req-42" {
		t.Fatalf("5xx body = %v, want request_id req-42", body)
	}
	if body["error"] == "" {
		t.Fatalf("5xx body lacks the error message: %v", body)
	}
}

func spansByName(jt JobTrace) map[string]tracelog.Span {
	m := make(map[string]tracelog.Span, len(jt.Spans))
	for _, sp := range jt.Spans {
		m[sp.Name] = sp
	}
	return m
}
