package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hypersolve/internal/core"
	"hypersolve/internal/metrics"
	"hypersolve/internal/parallel"
	"hypersolve/internal/sat"
	"hypersolve/internal/simulator"
	"hypersolve/internal/store"
	"hypersolve/internal/telemetry"
	"hypersolve/internal/tracelog"
	"hypersolve/internal/version"
)

// State is a job's lifecycle stage (defined by the persistence layer; the
// service re-exports it so API consumers need only this package).
type State = store.State

const (
	StateQueued    = store.StateQueued
	StateRunning   = store.StateRunning
	StateDone      = store.StateDone
	StateFailed    = store.StateFailed
	StateCancelled = store.StateCancelled
)

// ParseState validates a wire-format state name (used by the HTTP list
// filter and hyperctl's -state flag).
func ParseState(name string) (State, error) { return store.ParseState(name) }

// SATResult is the SAT-specific slice of a job result: the verdict, the
// witness assignment as DIMACS-style literals, and whether the service
// verified the assignment against the formula.
type SATResult struct {
	Status     string `json:"status"`
	Assignment []int  `json:"assignment,omitempty"`
	Verified   bool   `json:"verified,omitempty"`
}

// JobResult is the JSON payload of a completed job: the root value, the
// paper's metrics, the raw layer-1 statistics, and the optional activity
// snapshots requested by the spec.
type JobResult struct {
	// OK is false when the run hit MaxSteps before the root completed.
	OK bool `json:"ok"`
	// Value is the root task's return value for the integer-valued kinds
	// (sum, fib, queens, knapsack, unbalanced). It round-trips through the
	// store's JSON encoding, so in-process readers see float64 for numeric
	// values, exactly as HTTP clients do.
	Value any `json:"value,omitempty"`
	// SAT carries the verdict for sat/dimacs jobs.
	SAT *SATResult `json:"sat,omitempty"`

	ComputationTime int64           `json:"computation_time"`
	Performance     float64         `json:"performance"`
	Stats           simulator.Stats `json:"stats"`

	// Series is the interconnect activity trace (spec.RecordSeries).
	Series metrics.Series `json:"series,omitempty"`
	// Heatmap is the node activity grid (spec.Heatmap).
	Heatmap *metrics.Heatmap `json:"heatmap,omitempty"`
}

// Job is one tracked solve: the spec, its lifecycle state and timestamps,
// and — once terminal — the result or failure reason. Jobs are plain value
// records decoded from the store; the service hands out copies, never
// aliases.
type Job struct {
	// ID is the job's wire identifier: a bare sequence number on a single
	// daemon, shard-prefixed ("s2-17") when the job is served through a
	// cluster router.
	ID    JobID   `json:"id"`
	Spec  JobSpec `json:"spec"`
	State State   `json:"state"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`

	Error  string     `json:"error,omitempty"`
	Result *JobResult `json:"result,omitempty"`

	// Winner is the mapping strategy whose attempt won a portfolio race
	// (empty for solo jobs and unfinished or lost races); Attempts is the
	// race's per-strategy ledger in launch order. Both are decoded from
	// the store's attempt records, so they survive restarts and failover.
	Winner   string    `json:"winner,omitempty"`
	Attempts []Attempt `json:"attempts,omitempty"`

	// raw preserves the undecoded core.Result for in-process callers (the
	// determinism tests compare it bit-for-bit against a serial run). It is
	// not persisted: after a daemon restart Raw returns nil.
	raw *core.Result
}

// Attempt is one strategy's run inside a portfolio race: the job's spec
// executed under this mapping strategy, in its own cancellation context.
// Exactly one attempt of a finished race is terminal as done or failed
// (the decider); the rest are recorded cancelled — including attempts
// whose run happened to complete after the race was already decided, whose
// results are discarded to keep the job's payload identical to a solo run
// of the winner.
type Attempt struct {
	Strategy   string    `json:"strategy"`
	State      State     `json:"state"`
	StartedAt  time.Time `json:"started_at,omitzero"`
	FinishedAt time.Time `json:"finished_at,omitzero"`
	// Steps is the layer-1 steps this attempt executed (zero for attempts
	// cancelled before running or interrupted mid-slice).
	Steps int64 `json:"steps,omitempty"`
	Error string `json:"error,omitempty"`
	// Winner marks the attempt whose successful result became the job's.
	Winner bool `json:"winner,omitempty"`
}

// attemptsDoc is the JSON shape persisted through store.SetAttempts: the
// ledger the service writes on every attempt transition and decodes back
// into Job.Winner/Job.Attempts.
type attemptsDoc struct {
	Winner   string    `json:"winner,omitempty"`
	Attempts []Attempt `json:"attempts"`
}

// Raw returns the undecoded core.Result of a done job (nil otherwise, and
// nil for jobs completed before a restart).
func (j Job) Raw() *core.Result { return j.raw }

// Sentinel errors of the admission and cancellation paths; the HTTP layer
// maps them onto status codes (429, 404, 409, 500, 503).
var (
	ErrQueueFull = errors.New("service: queue full")
	ErrClosed    = errors.New("service: closed")
	ErrNotFound  = errors.New("service: no such job")
	ErrFinished  = errors.New("service: job already finished")
	// ErrStore wraps persistence failures surfaced at admission.
	ErrStore = errors.New("service: store failure")
)

// Config sizes the service.
type Config struct {
	// QueueDepth bounds how many jobs may wait for a worker; submissions
	// beyond it are rejected with ErrQueueFull. Values <= 0 default to 64.
	QueueDepth int
	// Workers is the number of long-lived solve workers. Values <= 0
	// default to runtime.GOMAXPROCS(0).
	Workers int
	// History bounds how many terminal jobs the default in-memory store
	// retains (<= 0 defaults to 4096). Ignored when Store is set: a
	// provided backend owns its own retention policy.
	History int
	// Store is the persistence backend. Nil selects a fresh in-memory
	// store (history dies with the process); a store.File backend makes
	// the service durable — on startup, jobs the previous process left
	// queued or running are re-admitted and run again.
	Store store.Store
	// Telemetry receives the service's metrics (queue depth/capacity,
	// worker occupancy, job lifecycle counters, solve-duration histogram,
	// simulator step counters). Nil allocates a private registry, so
	// instruments always work; pass the process registry to have them
	// scraped on GET /metrics.
	Telemetry *telemetry.Registry
}

// serviceMetrics bundles the instruments updated on the job lifecycle
// paths. Gauges sampled at scrape time (queue depth, steps/sec) are
// registered as GaugeFuncs in New and don't appear here.
type serviceMetrics struct {
	submitted *telemetry.Counter
	rejected  *telemetry.Counter
	finished  map[State]*telemetry.Counter
	duration  *telemetry.Histogram
	busy      *telemetry.Gauge
	steps     *telemetry.Counter

	attemptsStarted   *telemetry.Counter
	attemptsCancelled *telemetry.Counter
}

// Service is a long-lived multi-tenant solve backend: a pluggable job
// store, a bounded FIFO admission queue, and a worker pool draining it.
// All methods are safe for concurrent use.
type Service struct {
	cfg     Config
	store   store.Store
	metrics serviceMetrics

	mu   sync.Mutex
	wake *sync.Cond // signalled when pending grows or the service closes
	// pending is the FIFO of attempts awaiting a worker: a solo job
	// enqueues exactly one, a portfolio job one per strategy. queued
	// counts the jobs (not attempts) still waiting for their first
	// dequeue — the admission-queue load.
	pending []workItem
	queued  int
	// runs holds each live (queued or running) job's in-flight state: the
	// admission-time compilation, the resolved strategy list, and the
	// race's per-attempt bookkeeping. Entries are dropped when the job
	// goes terminal.
	runs map[int64]*jobRun
	// raws keeps the undecoded core.Result of done jobs for in-process
	// callers (Job.Raw); never persisted.
	raws map[int64]*core.Result
	// adapt is the per-problem-class strategy-stats table biasing
	// portfolio launch order (see adapt.go).
	adapt *strategyStats
	// brokers fan each live (queued or running) job's progress snapshots
	// out to event subscribers; the terminal transition publishes the final
	// snapshot and drops the entry, so the map never outlives the queue.
	brokers map[int64]*ProgressBroker
	// traces holds each live job's in-flight span timeline; the terminal
	// transition persists the timeline through the store and drops the
	// entry, mirroring brokers.
	traces map[int64]*liveTrace
	closed bool

	// root is the ancestor context of every job run; Close cancels it so
	// in-flight solves stop within one cancellation slice.
	root       context.Context
	cancelRoot context.CancelFunc
	done       chan struct{}
}

// New starts a service: its workers run until Close. When cfg.Store is a
// durable backend, jobs recovered in the queued state (including jobs that
// were running when the previous process died — the store's replay
// normalises those back to queued) are recompiled and re-enqueued in ID
// order before the workers start.
func New(cfg Config) *Service {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.History <= 0 {
		cfg.History = 4096
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	st := cfg.Store
	if st == nil {
		st = store.NewMemory(cfg.History)
	}
	s := &Service{
		cfg:     cfg,
		store:   st,
		runs:    make(map[int64]*jobRun),
		raws:    make(map[int64]*core.Result),
		adapt:   newStrategyStats(),
		brokers: make(map[int64]*ProgressBroker),
		traces:  make(map[int64]*liveTrace),
		done:    make(chan struct{}),
	}
	s.registerMetrics()
	s.wake = sync.NewCond(&s.mu)
	s.root, s.cancelRoot = context.WithCancel(context.Background())
	// Learned strategy rankings come back before recovery so a re-admitted
	// "auto" portfolio races in the order the pre-crash wins taught.
	s.rebuildAdapt()
	s.recover()
	go func() {
		defer close(s.done)
		// The pool is the sweep engine's primitive pointed at an unbounded
		// stream: each of Workers indices runs a drain loop over the shared
		// admission queue until Close.
		_ = parallel.ForEach(cfg.Workers, cfg.Workers, func(int) error {
			for {
				it, ok := s.next()
				if !ok {
					return nil
				}
				s.runAttempt(it)
			}
		})
	}()
	return s
}

// registerMetrics creates the service's instruments. Counters and
// histograms are shared by name across re-registrations, so a service
// rebuilt into the same registry (a standby promoted to primary) keeps
// accumulating; GaugeFunc callbacks are rebound to this instance.
func (s *Service) registerMetrics() {
	reg := s.cfg.Telemetry
	s.metrics = serviceMetrics{
		submitted: reg.Counter("hypersolve_jobs_submitted_total",
			"Jobs accepted by the admission queue."),
		rejected: reg.Counter("hypersolve_jobs_rejected_total",
			"Submissions rejected because the admission queue was full (HTTP 429)."),
		finished: map[State]*telemetry.Counter{
			StateDone: reg.Counter("hypersolve_jobs_finished_total",
				"Jobs that reached a terminal state, by outcome.", telemetry.Label{Key: "state", Value: string(StateDone)}),
			StateFailed: reg.Counter("hypersolve_jobs_finished_total",
				"Jobs that reached a terminal state, by outcome.", telemetry.Label{Key: "state", Value: string(StateFailed)}),
			StateCancelled: reg.Counter("hypersolve_jobs_finished_total",
				"Jobs that reached a terminal state, by outcome.", telemetry.Label{Key: "state", Value: string(StateCancelled)}),
		},
		duration: reg.Histogram("hypersolve_solve_duration_seconds",
			"Wall time a worker spent executing one job, any outcome.", telemetry.DurationBuckets),
		busy: reg.Gauge("hypersolve_workers_busy",
			"Workers currently executing a job."),
		steps: reg.Counter("hypersolve_sim_steps_total",
			"Layer-1 simulator steps executed, summed over all jobs."),
		attemptsStarted: reg.Counter("hypersolve_attempts_started_total",
			"Attempts handed to a worker (one per solo job, one per strategy in a portfolio race)."),
		attemptsCancelled: reg.Counter("hypersolve_attempts_cancelled_total",
			"Attempts cancelled: race losers, job cancellations and shutdown."),
	}
	reg.GaugeFunc("hypersolve_queue_depth",
		"Jobs waiting in the admission queue.", func() float64 { return float64(s.Load()) })
	reg.GaugeFunc("hypersolve_queue_capacity",
		"Admission queue bound; submissions beyond it are rejected.", func() float64 { return float64(s.cfg.QueueDepth) })
	reg.GaugeFunc("hypersolve_workers",
		"Configured solve worker count.", func() float64 { return float64(s.cfg.Workers) })
	reg.GaugeFunc("hypersolve_sim_steps_per_sec",
		"Aggregate stepping rate over currently running jobs.", s.StepsPerSec)
	reg.Gauge("hypersolve_build_info",
		"Build identity of the running binary; always 1, the labels carry the information.",
		telemetry.Label{Key: "version", Value: version.Version},
		telemetry.Label{Key: "commit", Value: version.Commit}).Set(1)
}

// portfolioWins returns the per-strategy race-win counter. Instruments are
// shared by name+labels across calls (the registry is idempotent), so
// strategies create their series lazily on first win.
func (s *Service) portfolioWins(strategy string) *telemetry.Counter {
	return s.cfg.Telemetry.Counter("hypersolve_portfolio_wins_total",
		"Portfolio races won, by winning strategy.",
		telemetry.Label{Key: "strategy", Value: strategy})
}

// newBroker returns a progress broker wired into the service's step
// counter. Must be called before the broker is shared (see
// ProgressBroker.steps).
func (s *Service) newBroker() *ProgressBroker {
	b := NewProgressBroker()
	b.steps = s.metrics.steps
	return b
}

// Telemetry returns the registry holding the service's metrics (the one
// from Config, or the private default). The HTTP layer serves it on
// GET /metrics.
func (s *Service) Telemetry() *telemetry.Registry { return s.cfg.Telemetry }

// Load returns the current admission-queue occupancy: jobs awaiting their
// first worker (a portfolio job counts once however many attempts it
// races).
func (s *Service) Load() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// StepsPerSec sums the latest observed stepping rate across running jobs.
// The figure lags reality by up to ProgressInterval per job; it is a
// health headline, not an accounting number.
func (s *Service) StepsPerSec() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum float64
	for _, b := range s.brokers {
		sum += b.LastRate()
	}
	return sum
}

// recover re-admits every job the store reports as queued. Specs were
// validated at original admission; one that no longer compiles (version
// skew in the spec format, say) is failed rather than wedging the queue.
// Re-running is safe: spec+seed determinism makes the re-run bit-identical
// to what the lost run would have produced.
func (s *Service) recover() {
	for _, sj := range s.store.List(store.StateQueued) {
		var spec JobSpec
		err := json.Unmarshal(sj.Spec, &spec)
		var built buildOut
		if err == nil {
			built, err = spec.build()
		}
		if err != nil {
			_, _ = s.store.Finish(sj.ID, StateFailed, time.Now().UTC(),
				fmt.Sprintf("recovery: %v", err), nil)
			continue
		}
		s.admitLocked(sj.ID, spec, &built)
		// Resume the persisted timeline under the original trace ID so the
		// re-run links to the pre-crash spans; jobs admitted before tracing
		// existed get a fresh trace. The instant requeued span marks the
		// re-admission, then a new queue-wait span opens.
		tr, err := tracelog.Resume(sj.Trace)
		if err != nil {
			tr = tracelog.NewTrace(tracelog.TraceContext{})
		}
		tr.AddInstant("requeued", nil)
		s.traces[sj.ID] = &liveTrace{tr: tr, queue: tr.StartSpan("queue")}
	}
}

// admitLocked installs a job's run state and enqueues its attempts: one
// work item for a solo job, one per strategy for a portfolio race (the
// launch order fixed here by the adaptive ranking). Callers hold s.mu (or,
// in New, have not yet shared the service).
func (s *Service) admitLocked(id int64, spec JobSpec, built *buildOut) *jobRun {
	strategies := s.resolveStrategies(spec, built)
	jr := &jobRun{
		spec:       spec,
		built:      built,
		strategies: strategies,
		portfolio:  len(built.portfolio) > 0,
		winner:     -1,
		attempts:   make([]Attempt, len(strategies)),
		cancels:    make([]context.CancelFunc, len(strategies)),
		spans:      make([]int64, len(strategies)),
		lead:       make([]int64, len(strategies)),
	}
	for i, strat := range strategies {
		jr.attempts[i] = Attempt{Strategy: strat, State: StateQueued}
	}
	s.runs[id] = jr
	s.brokers[id] = s.newBroker()
	s.brokers[id].Publish(Progress{State: StateQueued})
	for i := range strategies {
		s.pending = append(s.pending, workItem{id: id, attempt: i})
	}
	s.queued++
	return jr
}

// workItem is one admission-queue entry: a job's attempt awaiting a
// worker.
type workItem struct {
	id      int64
	attempt int
}

// jobRun is the in-flight state of one admitted job: the compiled spec,
// the resolved strategy list and the race's per-attempt bookkeeping. All
// fields are guarded by Service.mu except lead, which attempt observers
// update atomically off-lock on their publish cadence.
type jobRun struct {
	spec       JobSpec
	built      *buildOut
	strategies []string
	portfolio  bool // persist the attempt ledger (len(strategies) may be 1)

	started bool // first attempt dequeued; the job is running
	// ctx is the job-level context (deadline-bounded when the spec asks);
	// every attempt's context is its child, so one cancel stops the race.
	ctx     context.Context
	cancel  context.CancelFunc
	runSpan int64

	attempts []Attempt
	cancels  []context.CancelFunc // per running attempt; nil otherwise
	spans    []int64              // per-attempt trace span (0 = none)
	lead     []int64              // per-attempt last observed step, atomic
	settled  int                  // attempts in a terminal state
	winner   int                  // deciding attempt's index, -1 until decided
	winErr   error                // deciding attempt's error (nil = success)
	winRes   *JobResult
	winRaw   *core.Result
}

// leadFunc returns the leading-attempt predicate for attempt idx: publish
// a progress frame only when this attempt's step count is at least every
// other attempt's, so SSE subscribers see the race leader's strategy.
// Called off-lock, on the observer's throttled publish cadence.
func (jr *jobRun) leadFunc(idx int) func(step int64) bool {
	return func(step int64) bool {
		atomic.StoreInt64(&jr.lead[idx], step)
		for k := range jr.lead {
			if k != idx && atomic.LoadInt64(&jr.lead[k]) > step {
				return false
			}
		}
		return true
	}
}

// next blocks until a queued attempt is available or the service closes
// (returning false).
func (s *Service) next() (workItem, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.pending) == 0 && !s.closed {
		s.wake.Wait()
	}
	if len(s.pending) == 0 {
		return workItem{}, false
	}
	it := s.pending[0]
	s.pending = s.pending[1:]
	return it, true
}

// Queue returns the configured admission-queue depth and worker count.
func (s *Service) Queue() (depth, workers int) { return s.cfg.QueueDepth, s.cfg.Workers }

// Submit validates the spec, persists the submission and enqueues the job.
// It never blocks: when the admission queue is full the job is rejected
// with ErrQueueFull (the HTTP layer's 429), preserving bounded memory under
// overload. Cancelling a queued job frees its slot immediately.
func (s *Service) Submit(spec JobSpec) (Job, error) {
	return s.SubmitTraced(spec, tracelog.TraceContext{})
}

// SubmitTraced is Submit with an explicit trace context: a valid tc
// (e.g. parsed from an inbound traceparent header) is adopted as the
// job's trace ID, an invalid or zero one mints a fresh trace. The
// timeline opens with sequential compile and admission spans (the
// journal append nested inside admission) and an open queue-wait span;
// the initial timeline is persisted immediately so it survives a crash
// before the job runs.
func (s *Service) SubmitTraced(spec JobSpec, tc tracelog.TraceContext) (Job, error) {
	tr := tracelog.NewTrace(tc)
	compile := tr.StartSpan("compile")
	// Compile the spec up front so malformed jobs fail at admission, not
	// in a worker; the compilation is cached on the service so the worker
	// never re-parses the formula.
	built, err := spec.build()
	if err != nil {
		return Job{}, err
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		return Job{}, err
	}
	tr.EndSpan(compile)
	s.mu.Lock()
	defer s.mu.Unlock()
	admission := tr.StartSpan("admission")
	if s.closed {
		return Job{}, ErrClosed
	}
	if s.queued >= s.cfg.QueueDepth {
		s.metrics.rejected.Inc()
		return Job{}, ErrQueueFull
	}
	journal := tr.StartChild("journal", admission)
	sj, err := s.store.Submit(raw, time.Now().UTC())
	tr.EndSpan(journal)
	if err != nil {
		return Job{}, fmt.Errorf("%w: %v", ErrStore, err)
	}
	s.metrics.submitted.Inc()
	jr := s.admitLocked(sj.ID, spec, &built)
	tr.EndSpan(admission)
	s.traces[sj.ID] = &liveTrace{tr: tr, queue: tr.StartSpan("queue")}
	// Persist the opening timeline now (journaled like any transition) so
	// a crash before the job finishes still leaves the trace ID and
	// admission spans for recovery to resume. Failure costs observability
	// only.
	_ = s.store.SetTrace(sj.ID, tr.JSON())
	// A portfolio race needs one worker per attempt to start concurrently;
	// Signal would hand all its entries to a single woken worker's loop.
	if len(jr.strategies) > 1 {
		s.wake.Broadcast()
	} else {
		s.wake.Signal()
	}
	return s.jobFromStore(sj), nil
}

// jobFromStore decodes a persisted record into the API shape, attaching the
// in-process raw result when one exists. Callers hold s.mu.
func (s *Service) jobFromStore(sj store.Job) Job {
	j := jobFromRecord(sj)
	j.raw = s.raws[sj.ID]
	return j
}

// jobFromRecord decodes a persisted record into the API shape. The standby
// handler (see node.go) serves jobs straight from a replica store through
// it, so the wire shape cannot diverge between a primary and its standby.
func jobFromRecord(sj store.Job) Job {
	j := Job{
		ID:          JobID{Seq: sj.ID},
		State:       sj.State,
		SubmittedAt: sj.SubmittedAt,
		StartedAt:   sj.StartedAt,
		FinishedAt:  sj.FinishedAt,
		Error:       sj.Error,
	}
	// The spec bytes were produced by Submit's json.Marshal (or validated
	// at recovery); decoding cannot fail.
	_ = json.Unmarshal(sj.Spec, &j.Spec)
	if len(sj.Result) > 0 {
		j.Result = new(JobResult)
		_ = json.Unmarshal(sj.Result, j.Result)
	}
	if len(sj.Attempts) > 0 {
		var doc attemptsDoc
		if json.Unmarshal(sj.Attempts, &doc) == nil {
			j.Winner = doc.Winner
			j.Attempts = doc.Attempts
		}
	}
	return j
}

// Get returns a snapshot of one job.
func (s *Service) Get(id int64) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sj, ok := s.store.Get(id)
	if !ok {
		return Job{}, false
	}
	return s.jobFromStore(sj), true
}

// List returns snapshots ordered by ID, optionally filtered to the given
// states (no states = all jobs).
func (s *Service) List(states ...State) []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := s.store.List(states...)
	out := make([]Job, 0, len(recs))
	for _, sj := range recs {
		out = append(out, s.jobFromStore(sj))
	}
	return out
}

// Counts reports how many jobs sit in each state.
func (s *Service) Counts() map[State]int {
	out := make(map[State]int)
	for _, j := range s.store.List() {
		out[j.State]++
	}
	return out
}

// Subscribe returns a live progress channel for one job, plus an
// unsubscribe function. For a queued or running job the channel delivers
// conflated snapshots (see ProgressBroker) and is closed after the terminal
// snapshot; for a job already terminal — including jobs finished before
// this process started — the channel arrives pre-loaded with a synthesized
// final snapshot and closed. Unknown jobs return ErrNotFound; a job whose
// fan-out bound is exhausted returns ErrTooManySubscribers.
func (s *Service) Subscribe(id int64) (<-chan Progress, func(), error) {
	s.mu.Lock()
	if b := s.brokers[id]; b != nil {
		defer s.mu.Unlock()
		return b.Subscribe()
	}
	sj, ok := s.store.Get(id)
	s.mu.Unlock()
	if !ok {
		return nil, nil, ErrNotFound
	}
	// Decode outside the lock: a result carrying series/heatmap payloads
	// can be megabytes, and parsing it must not stall admissions.
	p := Progress{State: sj.State, Error: sj.Error}
	if len(sj.Result) > 0 {
		var res struct {
			Stats struct {
				Steps int64 `json:"steps"`
			} `json:"stats"`
		}
		if json.Unmarshal(sj.Result, &res) == nil {
			p.Step = res.Stats.Steps
		}
	}
	ch := make(chan Progress, 1)
	ch <- p
	close(ch)
	return ch, func() {}, nil
}

// Cancel stops a job. A queued job transitions to cancelled immediately
// and releases its admission-queue slot; a running job has its context
// cancelled and transitions once the simulator observes the cancellation —
// within one simulator.CancelSliceSteps slice. Cancelling a terminal job
// returns ErrFinished.
func (s *Service) Cancel(id int64) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sj, ok := s.store.Get(id)
	if !ok {
		return Job{}, ErrNotFound
	}
	switch sj.State {
	case StateQueued:
		kept := s.pending[:0]
		for _, it := range s.pending {
			if it.id != id {
				kept = append(kept, it)
			}
		}
		s.pending = kept
		s.queued--
		s.finishLocked(id, StateCancelled, "", nil)
		sj, _ = s.store.Get(id)
	case StateRunning:
		if jr := s.runs[id]; jr != nil && jr.cancel != nil {
			jr.cancel()
		}
	default:
		return s.jobFromStore(sj), ErrFinished
	}
	return s.jobFromStore(sj), nil
}

// finishLocked records a terminal transition in the store, drops the job's
// cached build, and clears service-side caches for any records the store
// evicted beyond its retention bound. Callers hold s.mu.
func (s *Service) finishLocked(id int64, state State, errMsg string, result *JobResult) {
	var raw json.RawMessage
	if result != nil {
		raw, _ = json.Marshal(result)
	}
	// A journal write error here degrades durability, not correctness: the
	// store's in-memory view already reflects the transition and stays
	// authoritative for this process.
	evicted, _ := s.store.Finish(id, state, time.Now().UTC(), errMsg, raw)
	s.metrics.finished[state].Inc()
	if lt := s.traces[id]; lt != nil {
		// Close whatever is still open (the queue span for a
		// cancelled-while-queued job, the run span otherwise) and persist
		// the full timeline next to the finish record.
		lt.tr.EndOpen()
		_ = s.store.SetTrace(id, lt.tr.JSON())
		delete(s.traces, id)
	}
	if b := s.brokers[id]; b != nil {
		if jr := s.runs[id]; jr != nil && jr.portfolio {
			strat := ""
			if jr.winner >= 0 && jr.winErr == nil {
				strat = jr.strategies[jr.winner]
			}
			b.FinishPortfolio(state, errMsg, strat, result)
		} else {
			b.Finish(state, errMsg, result)
		}
		delete(s.brokers, id)
	}
	delete(s.runs, id)
	for _, eid := range evicted {
		delete(s.raws, eid)
	}
}

// Close stops the service: no further submissions are accepted, queued jobs
// are cancelled, running jobs are interrupted, all workers are joined and
// the store is closed before Close returns. Close is idempotent.
//
// Note the durability contract: Close is a deliberate drain, so outstanding
// jobs are recorded as cancelled. A crash (SIGKILL, power loss) records
// nothing — those jobs come back queued on the next start and run again.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closed = true
	for _, it := range s.pending {
		jr := s.runs[it.id]
		if jr == nil {
			continue
		}
		if !jr.started {
			// Still queued: cancel the whole job. finishLocked drops the
			// runs entry, so this job's remaining attempt items fall through
			// the nil check above.
			s.queued--
			s.finishLocked(it.id, StateCancelled, "", nil)
			continue
		}
		// A running job's not-yet-dequeued attempt: no worker will pick it
		// up now, so settle it here. The job's in-flight attempts are
		// interrupted by the root cancellation below and settle in their
		// worker epilogues.
		s.settleAttemptLocked(it.id, jr, it.attempt, StateCancelled, "", 0)
	}
	s.pending = nil
	s.queued = 0
	s.cancelRoot()
	s.wake.Broadcast()
	s.mu.Unlock()
	<-s.done
	_ = s.store.Close()
}

// runAttempt drives one dequeued attempt through its run. The first
// attempt of a job to reach a worker transitions the job to running (store
// record, run span, job-level context); every attempt then executes the
// admission-compiled spec under its own strategy and child context, and
// the first attempt to return without being cancelled decides the race.
func (s *Service) runAttempt(it workItem) {
	id, idx := it.id, it.attempt
	s.mu.Lock()
	jr := s.runs[id]
	if jr == nil {
		// Cancelled while queued (or cancelled by Close): nothing to run.
		s.mu.Unlock()
		return
	}
	if jr.winner >= 0 || (jr.ctx != nil && jr.ctx.Err() != nil) {
		// The race is already decided (or the job cancelled): record the
		// attempt as a cancelled loser without occupying the worker.
		s.settleAttemptLocked(id, jr, idx, StateCancelled, "", 0)
		s.mu.Unlock()
		return
	}
	lt := s.traces[id]
	if !jr.started {
		jr.started = true
		s.queued--
		// The runs-entry check above ran under this same lock, so Start can
		// only fail on a journal write, which degrades durability, not
		// correctness.
		_ = s.store.Start(id, time.Now().UTC())
		if lt != nil {
			lt.tr.EndSpan(lt.queue)
			jr.runSpan = lt.tr.StartSpan("run")
		}
		if b := s.brokers[id]; b != nil {
			b.Publish(Progress{State: StateRunning})
		}
		if d := jr.spec.Deadline(); d > 0 {
			jr.ctx, jr.cancel = context.WithDeadlineCause(s.root, time.Now().Add(d),
				fmt.Errorf("service: job %d exceeded its %v deadline", id, d))
		} else {
			jr.ctx, jr.cancel = context.WithCancel(s.root)
		}
	}
	strat := jr.strategies[idx]
	jr.attempts[idx].State = StateRunning
	jr.attempts[idx].StartedAt = time.Now().UTC()
	s.metrics.attemptsStarted.Inc()
	actx, acancel := context.WithCancel(jr.ctx)
	jr.cancels[idx] = acancel
	var span int64
	if lt != nil && jr.portfolio {
		span = lt.tr.StartChild("attempt", jr.runSpan)
		lt.tr.SetAttr(span, "strategy", strat)
		jr.spans[idx] = span
	}
	var obs simulator.Observer
	var po *progressObserver
	if b := s.brokers[id]; b != nil && jr.portfolio {
		var ann func(step int64, queued int)
		if lt != nil {
			// Step annotations land on the attempt's own span, riding the
			// observer's throttled publish cadence, never the per-step path.
			tr, sp := lt.tr, span
			ann = func(step int64, queued int) {
				tr.Annotate(sp, fmt.Sprintf("step %d, %d queued", step, queued))
			}
		}
		po = b.attemptObserver(strat, jr.leadFunc(idx), ann)
		obs = po
	} else if b != nil {
		if lt != nil {
			// Solo path: annotations land on the run span itself, same
			// cadence.
			tr, sp := lt.tr, jr.runSpan
			b.annotate = func(step int64, queued int) {
				tr.Annotate(sp, fmt.Sprintf("step %d, %d queued", step, queued))
			}
		}
		obs = b.Observer()
	}
	if jr.portfolio {
		s.persistAttemptsLocked(id, jr)
	}
	s.mu.Unlock()
	defer acancel()

	s.metrics.busy.Add(1)
	runStart := time.Now()
	res, raw, runErr := execute(actx, jr.spec, jr.built, strat, obs)
	s.metrics.duration.Observe(time.Since(runStart).Seconds())
	s.metrics.busy.Add(-1)

	s.mu.Lock()
	defer s.mu.Unlock()
	jr.cancels[idx] = nil
	var steps int64
	if res != nil {
		steps = res.Stats.Steps
	}
	if po != nil && res != nil {
		// The broker's Finish remainder is solo-only (see FinishPortfolio);
		// account this attempt's tail — the steps run since its observer's
		// last publish — here.
		s.metrics.steps.Add(res.Stats.Steps - po.CountedSteps())
	}
	switch {
	case jr.winner < 0 && runErr == nil:
		jr.winner = idx
		jr.winRes, jr.winRaw = res, raw
		jr.attempts[idx].Winner = true
		if lt != nil && span != 0 {
			lt.tr.SetAttr(span, "winner", true)
		}
		s.cancelLosersLocked(id, jr, idx)
		s.settleAttemptLocked(id, jr, idx, StateDone, "", steps)
	case jr.winner < 0 && !errors.Is(runErr, context.Canceled):
		// A failing attempt decides the race as a failure. Machine errors
		// and deadline expiry land here; the deadline cause set above names
		// the budget.
		jr.winner = idx
		jr.winErr = runErr
		s.cancelLosersLocked(id, jr, idx)
		s.settleAttemptLocked(id, jr, idx, StateFailed, runErr.Error(), steps)
	default:
		// A race loser or a job-level cancellation. An attempt whose run
		// completed after the race was already decided also lands here: its
		// result is discarded — keeping the job's payload identical to a
		// solo run of the winner — and the ledger records it cancelled.
		s.settleAttemptLocked(id, jr, idx, StateCancelled, "", steps)
	}
}

// settleAttemptLocked records attempt idx's terminal state and, once every
// attempt of the job has settled, finishes the race. Settling an already-
// terminal attempt is a no-op (an attempt can be cancelled out of the
// pending queue and again in its worker's epilogue). Callers hold s.mu.
func (s *Service) settleAttemptLocked(id int64, jr *jobRun, idx int, state State, errMsg string, steps int64) {
	a := &jr.attempts[idx]
	if a.State.Terminal() {
		return
	}
	a.State = state
	a.Error = errMsg
	a.Steps = steps
	a.FinishedAt = time.Now().UTC()
	if state == StateCancelled {
		s.metrics.attemptsCancelled.Inc()
	}
	if lt := s.traces[id]; lt != nil {
		if span := jr.spans[idx]; span != 0 {
			if state == StateCancelled {
				lt.tr.SetAttr(span, "cancelled", true)
			}
			if steps > 0 {
				lt.tr.SetAttr(span, "steps", steps)
			}
			lt.tr.EndSpan(span)
		} else if !jr.portfolio && jr.runSpan != 0 {
			// Solo path: the run span itself carries the step count, as it
			// did before attempts existed.
			if steps > 0 {
				lt.tr.SetAttr(jr.runSpan, "steps", steps)
			}
			lt.tr.EndSpan(jr.runSpan)
		}
	}
	jr.settled++
	if jr.settled == len(jr.attempts) {
		s.finishRaceLocked(id, jr)
	} else if jr.portfolio {
		s.persistAttemptsLocked(id, jr)
	}
}

// cancelLosersLocked stops every other attempt of a decided race: running
// attempts have their contexts cancelled (their workers settle them within
// one cancellation slice), and attempts still waiting in the admission
// queue are removed and settled here. Callers hold s.mu.
func (s *Service) cancelLosersLocked(id int64, jr *jobRun, winnerIdx int) {
	for i, cancel := range jr.cancels {
		if i != winnerIdx && cancel != nil {
			cancel()
		}
	}
	kept := s.pending[:0]
	for _, it := range s.pending {
		if it.id == id {
			s.settleAttemptLocked(id, jr, it.attempt, StateCancelled, "", 0)
			continue
		}
		kept = append(kept, it)
	}
	s.pending = kept
}

// finishRaceLocked finishes a job whose every attempt has settled:
// persists the final attempt ledger, feeds the adaptive stats, and records
// the terminal transition — done with the winner's result, failed with the
// decider's error, cancelled when no attempt decided. Callers hold s.mu.
func (s *Service) finishRaceLocked(id int64, jr *jobRun) {
	if jr.cancel != nil {
		// Release the job context (and its deadline timer, if any).
		jr.cancel()
	}
	if jr.portfolio {
		if lt := s.traces[id]; lt != nil && jr.runSpan != 0 {
			lt.tr.EndSpan(jr.runSpan)
		}
		s.persistAttemptsLocked(id, jr)
	}
	switch {
	case jr.winner >= 0 && jr.winErr == nil:
		s.raws[id] = jr.winRaw
		if jr.portfolio {
			strat := jr.strategies[jr.winner]
			s.adapt.Record(problemClass(jr.spec), strat)
			s.portfolioWins(strat).Inc()
		}
		s.finishLocked(id, StateDone, "", jr.winRes)
	case jr.winner >= 0:
		s.finishLocked(id, StateFailed, jr.winErr.Error(), nil)
	default:
		s.finishLocked(id, StateCancelled, "", nil)
	}
}

// persistAttemptsLocked journals the race's current attempt ledger through
// the store. Failure costs observability only — the in-memory race state
// stays authoritative for this process. Callers hold s.mu.
func (s *Service) persistAttemptsLocked(id int64, jr *jobRun) {
	doc := attemptsDoc{Attempts: jr.attempts}
	if jr.winner >= 0 && jr.winErr == nil {
		doc.Winner = jr.strategies[jr.winner]
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return
	}
	_ = s.store.SetAttempts(id, data)
}

// execute runs one admission-compiled spec under ctx with the given mapping
// strategy, decoding the raw result into the job's JSON payload. The
// observer (nil when the job has no broker) streams throttled progress
// snapshots from the layer-1 step loop.
func execute(ctx context.Context, spec JobSpec, built *buildOut, strategy string, obs simulator.Observer) (*JobResult, *core.Result, error) {
	cfg := built.cfg
	cfg.FreshMapper = freshMapper(strategy)
	cfg.Observer = obs
	machine, err := core.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	raw, err := machine.RunContext(ctx, built.arg)
	if err != nil {
		return nil, nil, err
	}
	res := &JobResult{
		OK:              raw.OK,
		ComputationTime: raw.ComputationTime,
		Performance:     raw.Performance,
		Stats:           raw.Stats,
	}
	if spec.RecordSeries {
		res.Series = raw.QueuedSeries
	}
	if spec.Heatmap {
		res.Heatmap = machine.NodeHeatmap(raw)
	}
	if raw.OK {
		if out, isSAT := raw.Value.(sat.Outcome); isSAT {
			sr := &SATResult{Status: out.Status.String()}
			if out.Status == sat.SAT {
				for v := 1; v <= built.formula.NumVars; v++ {
					// Unassigned variables default to false, matching
					// sat.Verify's reading of partial assignments.
					lit := -v
					if v < len(out.Assignment) && out.Assignment.Value(v) > 0 {
						lit = v
					}
					sr.Assignment = append(sr.Assignment, lit)
				}
				sr.Verified = sat.Verify(*built.formula, out.Assignment)
			}
			res.SAT = sr
		} else {
			res.Value = raw.Value
		}
	}
	return res, &raw, nil
}
