package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"hypersolve/internal/core"
	"hypersolve/internal/metrics"
	"hypersolve/internal/parallel"
	"hypersolve/internal/sat"
	"hypersolve/internal/simulator"
)

// State is a job's lifecycle stage.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// SATResult is the SAT-specific slice of a job result: the verdict, the
// witness assignment as DIMACS-style literals, and whether the service
// verified the assignment against the formula.
type SATResult struct {
	Status     string `json:"status"`
	Assignment []int  `json:"assignment,omitempty"`
	Verified   bool   `json:"verified,omitempty"`
}

// JobResult is the JSON payload of a completed job: the root value, the
// paper's metrics, the raw layer-1 statistics, and the optional activity
// snapshots requested by the spec.
type JobResult struct {
	// OK is false when the run hit MaxSteps before the root completed.
	OK bool `json:"ok"`
	// Value is the root task's return value for the integer-valued kinds
	// (sum, fib, queens, knapsack, unbalanced).
	Value any `json:"value,omitempty"`
	// SAT carries the verdict for sat/dimacs jobs.
	SAT *SATResult `json:"sat,omitempty"`

	ComputationTime int64           `json:"computation_time"`
	Performance     float64         `json:"performance"`
	Stats           simulator.Stats `json:"stats"`

	// Series is the interconnect activity trace (spec.RecordSeries).
	Series metrics.Series `json:"series,omitempty"`
	// Heatmap is the node activity grid (spec.Heatmap).
	Heatmap *metrics.Heatmap `json:"heatmap,omitempty"`
}

// Job is one tracked solve: the spec, its lifecycle state and timestamps,
// and — once terminal — the result or failure reason. Jobs are plain value
// records; the service hands out copies, never aliases into the store.
type Job struct {
	ID    int64   `json:"id"`
	Spec  JobSpec `json:"spec"`
	State State   `json:"state"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`

	Error  string     `json:"error,omitempty"`
	Result *JobResult `json:"result,omitempty"`

	// raw preserves the undecoded core.Result for in-process callers (the
	// determinism tests compare it bit-for-bit against a serial run).
	raw *core.Result
	// built caches the admission-time compilation of Spec so the worker
	// does not parse the formula or rebuild the config a second time; it
	// is dropped once the job goes terminal.
	built *buildOut
}

// Raw returns the undecoded core.Result of a done job (nil otherwise).
func (j Job) Raw() *core.Result { return j.raw }

// Sentinel errors of the admission and cancellation paths; the HTTP layer
// maps them onto status codes (429, 404, 409, 503).
var (
	ErrQueueFull = errors.New("service: queue full")
	ErrClosed    = errors.New("service: closed")
	ErrNotFound  = errors.New("service: no such job")
	ErrFinished  = errors.New("service: job already finished")
)

// Config sizes the service.
type Config struct {
	// QueueDepth bounds how many jobs may wait for a worker; submissions
	// beyond it are rejected with ErrQueueFull. Values <= 0 default to 64.
	QueueDepth int
	// Workers is the number of long-lived solve workers. Values <= 0
	// default to runtime.GOMAXPROCS(0).
	Workers int
	// History bounds how many terminal jobs the store retains: once
	// exceeded, the oldest-finished jobs are evicted (Get returns not
	// found for them). Values <= 0 default to 4096, keeping a long-lived
	// daemon's memory bounded.
	History int
}

// Service is a long-lived multi-tenant solve backend: an in-memory job
// store with monotonic IDs, a bounded FIFO admission queue, and a worker
// pool draining it. All methods are safe for concurrent use.
type Service struct {
	cfg Config

	mu      sync.Mutex
	wake    *sync.Cond // signalled when pending grows or the service closes
	jobs    map[int64]*Job
	nextID  int64
	pending []int64 // FIFO of queued job IDs; its length is the queue load
	// finished lists terminal job IDs in completion order, driving
	// History eviction.
	finished []int64
	cancels  map[int64]context.CancelFunc
	closed   bool

	// root is the ancestor context of every job run; Close cancels it so
	// in-flight solves stop within one cancellation slice.
	root       context.Context
	cancelRoot context.CancelFunc
	done       chan struct{}
}

// New starts a service: its workers run until Close.
func New(cfg Config) *Service {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.History <= 0 {
		cfg.History = 4096
	}
	s := &Service{
		cfg:     cfg,
		jobs:    make(map[int64]*Job),
		cancels: make(map[int64]context.CancelFunc),
		done:    make(chan struct{}),
	}
	s.wake = sync.NewCond(&s.mu)
	s.root, s.cancelRoot = context.WithCancel(context.Background())
	go func() {
		defer close(s.done)
		// The pool is the sweep engine's primitive pointed at an unbounded
		// stream: each of Workers indices runs a drain loop over the shared
		// admission queue until Close.
		_ = parallel.ForEach(cfg.Workers, cfg.Workers, func(int) error {
			for {
				id, ok := s.next()
				if !ok {
					return nil
				}
				s.runJob(id)
			}
		})
	}()
	return s
}

// next blocks until a queued job is available (returning its ID) or the
// service closes (returning false).
func (s *Service) next() (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.pending) == 0 && !s.closed {
		s.wake.Wait()
	}
	if len(s.pending) == 0 {
		return 0, false
	}
	id := s.pending[0]
	s.pending = s.pending[1:]
	return id, true
}

// Queue returns the configured admission-queue depth and worker count.
func (s *Service) Queue() (depth, workers int) { return s.cfg.QueueDepth, s.cfg.Workers }

// Submit validates the spec, assigns the next monotonic ID and enqueues the
// job. It never blocks: when the admission queue is full the job is
// rejected with ErrQueueFull (the HTTP layer's 429), preserving bounded
// memory under overload. Cancelling a queued job frees its slot
// immediately.
func (s *Service) Submit(spec JobSpec) (Job, error) {
	// Compile the spec up front so malformed jobs fail at admission, not
	// in a worker; the compilation is cached on the job so the worker
	// never re-parses the formula.
	built, err := spec.build()
	if err != nil {
		return Job{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Job{}, ErrClosed
	}
	if len(s.pending) >= s.cfg.QueueDepth {
		return Job{}, ErrQueueFull
	}
	s.nextID++
	job := &Job{
		ID:          s.nextID,
		Spec:        spec,
		State:       StateQueued,
		SubmittedAt: time.Now().UTC(),
		built:       &built,
	}
	s.jobs[job.ID] = job
	s.pending = append(s.pending, job.ID)
	s.wake.Signal()
	return *job, nil
}

// Get returns a snapshot of one job.
func (s *Service) Get(id int64) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// List returns snapshots of all jobs ordered by ID.
func (s *Service) List() []Job {
	s.mu.Lock()
	out := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, *j)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Counts reports how many jobs sit in each state.
func (s *Service) Counts() map[State]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[State]int)
	for _, j := range s.jobs {
		out[j.State]++
	}
	return out
}

// Cancel stops a job. A queued job transitions to cancelled immediately
// and releases its admission-queue slot; a running job has its context
// cancelled and transitions once the simulator observes the cancellation —
// within one simulator.CancelSliceSteps slice. Cancelling a terminal job
// returns ErrFinished.
func (s *Service) Cancel(id int64) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	switch j.State {
	case StateQueued:
		for i, pid := range s.pending {
			if pid == id {
				s.pending = append(s.pending[:i], s.pending[i+1:]...)
				break
			}
		}
		s.finishLocked(j, StateCancelled)
	case StateRunning:
		if cancel, ok := s.cancels[id]; ok {
			cancel()
		}
	default:
		return *j, ErrFinished
	}
	return *j, nil
}

// finishLocked moves a job to a terminal state, drops its cached build and
// evicts the oldest terminal jobs beyond the History bound. Callers hold
// s.mu.
func (s *Service) finishLocked(j *Job, state State) {
	j.State = state
	j.FinishedAt = time.Now().UTC()
	j.built = nil
	s.finished = append(s.finished, j.ID)
	for len(s.finished) > s.cfg.History {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// Close stops the service: no further submissions are accepted, queued jobs
// are cancelled, running jobs are interrupted, and all workers are joined
// before Close returns. Close is idempotent.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closed = true
	for _, id := range s.pending {
		if j, ok := s.jobs[id]; ok && j.State == StateQueued {
			s.finishLocked(j, StateCancelled)
		}
	}
	s.pending = nil
	s.cancelRoot()
	s.wake.Broadcast()
	s.mu.Unlock()
	<-s.done
}

// runJob drives one dequeued job through its run.
func (s *Service) runJob(id int64) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok || j.State != StateQueued {
		// Cancelled while queued (or cancelled by Close): nothing to run.
		s.mu.Unlock()
		return
	}
	j.State = StateRunning
	j.StartedAt = time.Now().UTC()
	spec := j.Spec
	built := j.built
	var ctx context.Context
	var cancel context.CancelFunc
	if d := spec.Deadline(); d > 0 {
		ctx, cancel = context.WithDeadlineCause(s.root, time.Now().Add(d),
			fmt.Errorf("service: job %d exceeded its %v deadline", id, d))
	} else {
		ctx, cancel = context.WithCancel(s.root)
	}
	s.cancels[id] = cancel
	s.mu.Unlock()
	defer cancel()

	res, raw, runErr := execute(ctx, spec, built)

	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.cancels, id)
	switch {
	case runErr == nil:
		j.Result = res
		j.raw = raw
		s.finishLocked(j, StateDone)
	case errors.Is(runErr, context.Canceled):
		s.finishLocked(j, StateCancelled)
	default:
		// Machine errors and deadline expiry land here; the deadline
		// cause set above names the budget.
		j.Error = runErr.Error()
		s.finishLocked(j, StateFailed)
	}
}

// execute runs one admission-compiled spec under ctx, decoding the raw
// result into the job's JSON payload.
func execute(ctx context.Context, spec JobSpec, built *buildOut) (*JobResult, *core.Result, error) {
	machine, err := core.New(built.cfg)
	if err != nil {
		return nil, nil, err
	}
	raw, err := machine.RunContext(ctx, built.arg)
	if err != nil {
		return nil, nil, err
	}
	res := &JobResult{
		OK:              raw.OK,
		ComputationTime: raw.ComputationTime,
		Performance:     raw.Performance,
		Stats:           raw.Stats,
	}
	if spec.RecordSeries {
		res.Series = raw.QueuedSeries
	}
	if spec.Heatmap {
		res.Heatmap = machine.NodeHeatmap(raw)
	}
	if raw.OK {
		if out, isSAT := raw.Value.(sat.Outcome); isSAT {
			sr := &SATResult{Status: out.Status.String()}
			if out.Status == sat.SAT {
				for v := 1; v <= built.formula.NumVars; v++ {
					// Unassigned variables default to false, matching
					// sat.Verify's reading of partial assignments.
					lit := -v
					if v < len(out.Assignment) && out.Assignment.Value(v) > 0 {
						lit = v
					}
					sr.Assignment = append(sr.Assignment, lit)
				}
				sr.Verified = sat.Verify(*built.formula, out.Assignment)
			}
			res.SAT = sr
		} else {
			res.Value = raw.Value
		}
	}
	return res, &raw, nil
}
