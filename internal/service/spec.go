// Package service turns the one-shot solver library into a long-lived,
// multi-tenant solve backend: a typed JobSpec describes a problem and the
// machine to run it on, a pluggable store (internal/store: in-memory or
// durable WAL-journaled) tracks jobs through the queued → running →
// done/failed/cancelled lifecycle, a bounded FIFO admission queue feeds a
// worker pool built on internal/parallel, and every running job is
// cancellable (and deadline-bounded) through the stack's context-aware
// core.RunContext. The HTTP surface in api.go exposes the service as a
// stdlib net/http JSON API, and client.go is the matching Go client used
// by cmd/hyperctl, the cluster router (internal/cluster, as its
// inter-daemon transport) and the end-to-end tests. Job identity is a
// JobID: a bare sequence number on one daemon, shard-prefixed ("s2-17")
// when fronted by a router. docs/API.md documents the wire surface.
package service

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"hypersolve/internal/apps"
	"hypersolve/internal/core"
	"hypersolve/internal/mapping"
	"hypersolve/internal/mesh"
	"hypersolve/internal/recursion"
	"hypersolve/internal/sat"
	"hypersolve/internal/simulator"
)

// JobSpec is the wire-format description of one solve job: which problem to
// solve (Kind plus its parameters) and which machine to solve it on
// (topology, mapper, layer-2 and link-model knobs). The zero value of every
// optional field selects the documented default, so a minimal spec is just
// {"kind": "sat", "cnf": "..."}.
type JobSpec struct {
	// Kind selects the workload: "sat" (or "dimacs"), "queens", "knapsack",
	// "sum", "fib" or "unbalanced".
	Kind string `json:"kind"`

	// N is the task parameter: sum/fib argument, queens board size,
	// knapsack item count, unbalanced tree depth, or — for kind "sat"
	// without CNF — the variable count of a generated uniform random 3-SAT
	// instance at the uf ratio (default 20).
	N int `json:"n,omitempty"`
	// CNF is the DIMACS text of the formula to solve (kind "sat"/"dimacs"
	// only); when set it overrides N.
	CNF string `json:"cnf,omitempty"`
	// Heuristic is the SAT branching heuristic: "first" (default), "freq",
	// "jw" or "dlis".
	Heuristic string `json:"heuristic,omitempty"`
	// Cutoff is the sequential grain size of the queens and knapsack
	// solvers (default 3).
	Cutoff int `json:"cutoff,omitempty"`

	// Topology is the layer-1 interconnect spec, e.g. "torus:14x14",
	// "hypercube:7", "full:256" (default "torus:14x14").
	Topology string `json:"topology,omitempty"`
	// Mapper is the layer-3 mapping spec: "rr" (default), "rr-stagger",
	// "lbn", "random", "weighted[:alpha]" or "ideal". Mutually exclusive
	// with Portfolio.
	Mapper string `json:"mapper,omitempty"`
	// Portfolio races the same compiled spec under several mapping
	// strategies concurrently: one attempt per entry, the first terminal
	// attempt wins and the losers are cancelled. Entries are mapper specs
	// (duplicates rejected); the single entry "auto" expands to the
	// service's learned ranking over rr/lbn/weighted. Mutually exclusive
	// with Mapper.
	Portfolio []string `json:"portfolio,omitempty"`
	// ProcsPerNode is the layer-2 oversubscription factor (default 1).
	ProcsPerNode int `json:"procs_per_node,omitempty"`

	// Seed drives all randomness in the stack; identical spec+seed pairs
	// produce bit-identical results whether run serially or through the
	// service.
	Seed int64 `json:"seed,omitempty"`
	// MaxSteps bounds the simulation (default the simulator's 4M).
	MaxSteps int64 `json:"max_steps,omitempty"`
	// TimeoutMs is the wall-clock deadline enforced once the job starts
	// running; 0 means no deadline.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`

	// Engine selects the layer-1 simulation loop: "event" (the default) or
	// "sweep". The two are bit-identical on every workload; sweep exists
	// for differential testing and as a fallback.
	Engine string `json:"engine,omitempty"`

	// RecordSeries includes the per-step interconnect activity trace in the
	// result payload; Heatmap includes the node-activity heatmap.
	RecordSeries bool `json:"record_series,omitempty"`
	// Heatmap folds per-process received counts onto the topology and
	// includes the grid in the result payload.
	Heatmap bool `json:"heatmap,omitempty"`

	// Link carries the optional layer-1 link-model extensions.
	Link LinkSpec `json:"link,omitempty"`
}

// LinkSpec is the JSON shape of the layer-1 link-model extensions (see
// simulator.Config for semantics).
type LinkSpec struct {
	// QueueModel is "node" (default) or "link".
	QueueModel      string  `json:"queue_model,omitempty"`
	LinkLatency     int64   `json:"link_latency,omitempty"`
	DeliverPerStep  int     `json:"deliver_per_step,omitempty"`
	QueueCap        int     `json:"queue_cap,omitempty"`
	LossRate        float64 `json:"loss_rate,omitempty"`
	Reliable        bool    `json:"reliable,omitempty"`
	RetransmitAfter int64   `json:"retransmit_after,omitempty"`
}

// Deadline returns the spec's wall-clock budget as a duration (zero when
// unset).
func (s JobSpec) Deadline() time.Duration { return time.Duration(s.TimeoutMs) * time.Millisecond }

// buildOut is everything a validated spec compiles to: the machine config,
// the root argument, and the post-run hooks that turn a raw core.Result
// into the job's JSON payload.
type buildOut struct {
	cfg core.Config
	arg recursion.Value
	// formula is set for SAT jobs and drives result verification.
	formula *sat.Formula
	// mapper is the resolved solo mapping strategy (the spec's Mapper or
	// its default); portfolio holds the validated Portfolio entries, nil
	// for a solo job. The service resolves "auto" and the launch order at
	// admission — the compiled config is strategy-agnostic until execute
	// installs one attempt's factory.
	mapper    string
	portfolio []string
}

// Build compiles the spec into a runnable machine configuration. It is the
// single validation point: Submit calls it at admission time so malformed
// specs are rejected synchronously, and workers call it again (cheaply) when
// the job is dequeued. The mapper spec is re-parsed per build, so stateful
// factories (the idealised "ideal" mapper's machine-wide cursor) never leak
// state between jobs.
func (s JobSpec) Build() (core.Config, recursion.Value, error) {
	out, err := s.build()
	if err != nil {
		return core.Config{}, nil, err
	}
	return out.cfg, out.arg, nil
}

func (s JobSpec) build() (buildOut, error) {
	var out buildOut

	topoSpec := s.Topology
	if topoSpec == "" {
		topoSpec = "torus:14x14"
	}
	topo, err := mesh.Parse(topoSpec)
	if err != nil {
		return out, fmt.Errorf("service: topology: %w", err)
	}
	mapperSpec := s.Mapper
	if len(s.Portfolio) > 0 {
		if s.Mapper != "" {
			return out, fmt.Errorf("service: portfolio and mapper are mutually exclusive")
		}
		seen := make(map[string]bool, len(s.Portfolio))
		for _, strat := range s.Portfolio {
			if strat == "auto" {
				if len(s.Portfolio) != 1 {
					return out, fmt.Errorf(`service: portfolio "auto" must be the only entry`)
				}
				continue
			}
			if seen[strat] {
				return out, fmt.Errorf("service: duplicate portfolio strategy %q", strat)
			}
			seen[strat] = true
			if _, err := mapping.Registry(strat); err != nil {
				return out, fmt.Errorf("service: portfolio: %w", err)
			}
		}
		out.portfolio = append([]string(nil), s.Portfolio...)
		// Build's config needs a concrete factory; the service overrides it
		// per attempt, so the first concrete entry is only the solo-Build
		// fallback ("auto" jobs fall back to rr).
		mapperSpec = out.portfolio[0]
		if mapperSpec == "auto" {
			mapperSpec = "rr"
		}
	} else if mapperSpec == "" {
		mapperSpec = "rr"
	}
	if _, err := mapping.Registry(mapperSpec); err != nil {
		return out, fmt.Errorf("service: mapper: %w", err)
	}
	out.mapper = mapperSpec

	var task recursion.Task
	var arg recursion.Value
	switch strings.ToLower(s.Kind) {
	case "sat", "dimacs":
		var formula sat.Formula
		if s.CNF != "" {
			formula, err = sat.ParseDIMACS(strings.NewReader(s.CNF))
			if err != nil {
				return out, fmt.Errorf("service: %w", err)
			}
		} else {
			n := s.N
			if n <= 0 {
				n = 20
			}
			formula = sat.Random3SAT(rand.New(rand.NewSource(s.Seed)), n, int(float64(n)*4.36))
		}
		h, err := sat.ParseHeuristic(heuristicOrDefault(s.Heuristic))
		if err != nil {
			return out, fmt.Errorf("service: %w", err)
		}
		out.formula = &formula
		task, arg = sat.Task(h), sat.NewProblem(formula)
	case "queens":
		n := s.N
		if n <= 0 {
			return out, fmt.Errorf("service: kind %q requires n > 0", s.Kind)
		}
		task, arg = apps.QueensTask(cutoffOrDefault(s.Cutoff)), apps.QueensState{N: n}
	case "knapsack":
		n := s.N
		if n <= 0 {
			return out, fmt.Errorf("service: kind %q requires n > 0", s.Kind)
		}
		rng := rand.New(rand.NewSource(s.Seed))
		items := make([]apps.Item, n)
		capacity := 0
		for i := range items {
			items[i] = apps.Item{Weight: 1 + rng.Intn(20), Value: 1 + rng.Intn(40)}
			capacity += items[i].Weight
		}
		capacity /= 2
		task, arg = apps.KnapsackTask(cutoffOrDefault(s.Cutoff)), apps.NewKnapsack(items, capacity)
	case "sum":
		task, arg = apps.SumTask(), s.N
	case "fib":
		task, arg = apps.FibTask(), s.N
	case "unbalanced":
		task, arg = apps.UnbalancedTask(), s.N
	default:
		return out, fmt.Errorf("service: unknown kind %q (want sat|dimacs|queens|knapsack|sum|fib|unbalanced)", s.Kind)
	}

	cfg := core.Config{
		Topology:     topo,
		FreshMapper:  freshMapper(mapperSpec),
		Task:         task,
		ProcsPerNode: s.ProcsPerNode,
		Seed:         s.Seed,
		MaxSteps:     s.MaxSteps,
		RecordSeries: s.RecordSeries,
	}
	if cfg.Engine, err = simulator.ParseEngine(s.Engine); err != nil {
		return out, fmt.Errorf("service: %w", err)
	}
	if cfg.Link, err = s.Link.simConfig(); err != nil {
		return out, err
	}
	out.cfg = cfg
	out.arg = arg
	return out, nil
}

func (l LinkSpec) simConfig() (simulator.Config, error) {
	var sim simulator.Config
	switch strings.ToLower(l.QueueModel) {
	case "", "node":
		sim.QueueModel = simulator.NodeQueues
	case "link":
		sim.QueueModel = simulator.LinkQueues
	default:
		return sim, fmt.Errorf("service: unknown queue model %q (want node|link)", l.QueueModel)
	}
	sim.LinkLatency = l.LinkLatency
	sim.DeliverPerStep = l.DeliverPerStep
	sim.QueueCap = l.QueueCap
	sim.LossRate = l.LossRate
	sim.Reliable = l.Reliable
	sim.RetransmitAfter = l.RetransmitAfter
	return sim, nil
}

// freshMapper builds a per-machine factory from an already-validated mapper
// spec, so stateful factories (the "ideal" mapper's machine-wide cursor) are
// constructed fresh for every job.
func freshMapper(spec string) func() mapping.Factory {
	return func() mapping.Factory {
		mf, err := mapping.Registry(spec)
		if err != nil {
			panic(err) // unreachable: Build validated the spec
		}
		return mf
	}
}

func heuristicOrDefault(h string) string {
	if h == "" {
		return "first"
	}
	return h
}

func cutoffOrDefault(c int) int {
	if c <= 0 {
		return 3
	}
	return c
}
