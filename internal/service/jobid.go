package service

import (
	"fmt"
	"strconv"
	"strings"
)

// JobID identifies a job on the wire. A single daemon numbers its jobs with
// a bare monotonic sequence (Seq), which marshals as the plain JSON number
// the v1 API has always used. A cluster router fronting several daemons
// prefixes the sequence with the 1-based shard that owns the job — "s2-17"
// is job 17 on shard 2 — so a sharded ID routes directly to its backend
// without a lookup. Shard 0 means unsharded.
//
// Both forms round-trip through String/ParseJobID and through JSON, so
// Client (and hyperctl) work unchanged against either a daemon or a router.
type JobID struct {
	// Shard is the 1-based shard number assigned by a cluster router;
	// 0 on a single daemon.
	Shard int
	// Seq is the job's monotonic sequence number within its daemon.
	Seq int64
}

// Sharded reports whether the ID carries a router shard prefix.
func (id JobID) Sharded() bool { return id.Shard != 0 }

// String renders the wire form: "17" unsharded, "s2-17" sharded.
func (id JobID) String() string {
	if !id.Sharded() {
		return strconv.FormatInt(id.Seq, 10)
	}
	return fmt.Sprintf("s%d-%d", id.Shard, id.Seq)
}

// Less orders IDs by shard, then sequence — the merge order of a router's
// fanned-out List.
func (id JobID) Less(other JobID) bool {
	if id.Shard != other.Shard {
		return id.Shard < other.Shard
	}
	return id.Seq < other.Seq
}

// MarshalJSON emits a plain number for unsharded IDs (wire-compatible with
// the pre-cluster API) and a quoted "s2-17" for sharded ones.
func (id JobID) MarshalJSON() ([]byte, error) {
	if !id.Sharded() {
		return []byte(strconv.FormatInt(id.Seq, 10)), nil
	}
	return []byte(`"` + id.String() + `"`), nil
}

// UnmarshalJSON accepts both wire forms: a JSON number, or a string holding
// either form ("17" or "s2-17").
func (id *JobID) UnmarshalJSON(data []byte) error {
	s := string(data)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		parsed, err := ParseJobID(s[1 : len(s)-1])
		if err != nil {
			return err
		}
		*id = parsed
		return nil
	}
	seq, err := parseSeq(s)
	if err != nil {
		return fmt.Errorf("service: bad job id %s", s)
	}
	*id = JobID{Seq: seq}
	return nil
}

// ParseJobID parses either wire form: a bare sequence number ("17") or a
// shard-prefixed cluster ID ("s2-17", shard numbers start at 1).
func ParseJobID(s string) (JobID, error) {
	bad := func() (JobID, error) {
		return JobID{}, fmt.Errorf("service: bad job id %q (want a number like 17, or s<shard>-<seq> like s2-17)", s)
	}
	if rest, ok := strings.CutPrefix(s, "s"); ok {
		shardStr, seqStr, found := strings.Cut(rest, "-")
		if !found {
			return bad()
		}
		shard, err := strconv.Atoi(shardStr)
		if err != nil || shard < 1 {
			return bad()
		}
		seq, err := parseSeq(seqStr)
		if err != nil {
			return bad()
		}
		return JobID{Shard: shard, Seq: seq}, nil
	}
	// The bare form rejects negatives just like the sharded form: sequence
	// numbers start at 1, and "GET /v1/jobs/-5" parsing fine was a wire
	// surface hole, not a feature.
	seq, err := parseSeq(s)
	if err != nil {
		return bad()
	}
	return JobID{Seq: seq}, nil
}

// parseSeq parses a sequence number, rejecting any leading sign — not just
// values below zero, so the non-canonical "-0" (which ParseInt reads as 0)
// is refused too.
func parseSeq(s string) (int64, error) {
	if strings.HasPrefix(s, "-") || strings.HasPrefix(s, "+") {
		return 0, fmt.Errorf("service: signed job sequence %q", s)
	}
	return strconv.ParseInt(s, 10, 64)
}
