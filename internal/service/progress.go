package service

import (
	"errors"
	"sync"
	"time"

	"hypersolve/internal/simulator"
	"hypersolve/internal/telemetry"
)

// Progress is a throttled snapshot of a job's execution, streamed to
// subscribers over the SSE endpoint (GET /v1/jobs/{id}/events) and through
// Client.Watch. While the job runs, snapshots carry the layer-1 step count,
// the messages queued across the mesh, wall-clock elapsed time and the
// stepping rate since the previous snapshot. The final snapshot of every
// stream has a terminal State (done, failed or cancelled) — for failed
// jobs, Error carries the reason.
type Progress struct {
	// State is the job's lifecycle stage as of this snapshot. Exactly one
	// snapshot per stream has a terminal state, and it is always the last.
	State State `json:"state"`
	// Step is the simulation step count (for terminal snapshots of completed
	// runs, the total steps executed).
	Step int64 `json:"step"`
	// Queued is the number of messages in flight across the mesh.
	Queued int `json:"queued"`
	// ElapsedMs is wall-clock time since the job started running.
	ElapsedMs int64 `json:"elapsed_ms"`
	// StepsPerSec is the stepping rate since the previous snapshot (since
	// run start for the first; zero on terminal snapshots).
	StepsPerSec float64 `json:"steps_per_sec,omitempty"`
	// Strategy is the mapping strategy behind this snapshot of a portfolio
	// job: the leading attempt's while the race runs, the winner's on the
	// terminal snapshot. Empty for solo jobs.
	Strategy string `json:"strategy,omitempty"`
	// Error is the failure reason on a terminal failed snapshot.
	Error string `json:"error,omitempty"`
}

// ProgressInterval is the broker's throttle cadence: a running job publishes
// at most one progress snapshot per interval, however fast it steps, so a
// subscriber's event rate is bounded regardless of machine size.
const ProgressInterval = 250 * time.Millisecond

// progressCheckSteps is how often (in layer-1 steps) the observer consults
// the wall clock. A power of two keeps the per-step cost to one mask-and-
// compare — the same trick as simulator.CancelSliceSteps — so an attached
// observer with no subscribers adds no allocations and negligible time to
// the hot path.
const progressCheckSteps = 1024

// maxSubscribers bounds the fan-out of one job's event stream; subscriptions
// beyond it are rejected (the HTTP layer's 503) rather than growing without
// bound.
const maxSubscribers = 128

// ErrTooManySubscribers rejects a Subscribe beyond the per-job fan-out bound.
var ErrTooManySubscribers = errors.New("service: too many event subscribers for this job")

// ProgressBroker fans one job's progress snapshots out to any number of
// subscribers with last-event-kept semantics: every subscriber owns a
// 1-buffered channel holding the latest snapshot, and publishing replaces a
// stale pending snapshot instead of blocking. A slow (or stuck) subscriber
// therefore misses intermediate snapshots but never back-pressures the solve
// loop, and the terminal snapshot — published exactly once, after which the
// broker closes every channel — is always the last value a subscriber
// receives. All methods are safe for concurrent use.
type ProgressBroker struct {
	// steps accumulates executed simulator steps into the service's
	// telemetry registry. Deltas are added on the observer's throttled
	// publish cadence (plus a remainder at Finish), never per step, so
	// the solve loop's cost is unchanged. Nil (a no-op) outside a
	// service — set before the broker is shared, read-only after.
	steps *telemetry.Counter

	// annotate, when set, receives each published running snapshot's step
	// count and queue depth — the service points it at the job's run span
	// so the trace timeline carries step annotations on the publish
	// cadence. Like steps, it is invoked only on the throttled publish
	// path (never per step) and must be set before the broker is shared.
	annotate func(step int64, queued int)

	mu   sync.Mutex
	subs map[int]chan Progress
	next int
	last Progress
	seen bool // at least one snapshot published
	done bool // terminal snapshot published; channels closed
}

// NewProgressBroker returns an empty broker.
func NewProgressBroker() *ProgressBroker { return &ProgressBroker{} }

// CountSteps attaches a telemetry counter that receives executed-step
// deltas on the publish cadence (the service wires this automatically; the
// bench harness uses it to measure the instrumented path). Call before the
// broker is shared. Returns the broker for chaining.
func (b *ProgressBroker) CountSteps(c *telemetry.Counter) *ProgressBroker {
	b.steps = c
	return b
}

// AnnotateSteps attaches a callback invoked with each published running
// snapshot's step count and queue depth (the service wires the job's
// trace run span here; the bench harness uses it to measure the
// tracing-enabled path). Call before the broker is shared. Returns the
// broker for chaining.
func (b *ProgressBroker) AnnotateSteps(fn func(step int64, queued int)) *ProgressBroker {
	b.annotate = fn
	return b
}

// Publish delivers a snapshot to every subscriber, conflating with any
// undelivered previous snapshot. Publishing a snapshot with a terminal
// State finishes the stream: every subscriber channel is closed and later
// publishes are ignored.
func (b *ProgressBroker) Publish(p Progress) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done {
		return
	}
	b.last = p
	b.seen = true
	for _, ch := range b.subs {
		select {
		case ch <- p:
		default:
			// The subscriber has an unread snapshot: drop it and keep the
			// newer one. The second send cannot block — only Publish sends,
			// and it holds the lock.
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- p:
			default:
			}
		}
	}
	if p.State.Terminal() {
		b.done = true
		for _, ch := range b.subs {
			close(ch)
		}
		b.subs = nil
	}
}

// Finish publishes the terminal snapshot for a job that reached state, using
// the result's statistics when available and the last published snapshot
// otherwise, then closes every subscriber channel.
func (b *ProgressBroker) Finish(state State, errMsg string, res *JobResult) {
	b.mu.Lock()
	p := b.last
	b.mu.Unlock()
	p.State = state
	p.Error = errMsg
	p.StepsPerSec = 0
	if res != nil {
		// Count the steps run since the observer's last publish (all of
		// them, for a short job that never crossed the publish cadence).
		b.steps.Add(res.Stats.Steps - p.Step)
		p.Step = res.Stats.Steps
		p.Queued = 0
	}
	b.Publish(p)
}

// FinishPortfolio publishes the terminal snapshot of a portfolio race:
// like Finish, but stamped with the winning strategy and without the
// steps-counter remainder — the service accounts each attempt's steps in
// the attempt epilogue, so adding the winner's total here would double
// count the losers' contributions.
func (b *ProgressBroker) FinishPortfolio(state State, errMsg, strategy string, res *JobResult) {
	b.mu.Lock()
	p := b.last
	b.mu.Unlock()
	p.State = state
	p.Error = errMsg
	p.StepsPerSec = 0
	p.Strategy = strategy
	if res != nil {
		p.Step = res.Stats.Steps
		p.Queued = 0
	}
	b.Publish(p)
}

// LastRate returns the stepping rate of the latest running snapshot, zero
// once the stream has finished. The service sums this across live brokers
// for the fleet-facing steps/sec gauge.
func (b *ProgressBroker) LastRate() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done {
		return 0
	}
	return b.last.StepsPerSec
}

// Subscribe registers a subscriber and returns its snapshot channel plus an
// unsubscribe function (safe to call more than once). The latest snapshot,
// if any, is replayed immediately; if the stream has already finished the
// channel arrives pre-loaded with the terminal snapshot and closed.
// Subscriptions beyond the per-job fan-out bound fail with
// ErrTooManySubscribers.
func (b *ProgressBroker) Subscribe() (<-chan Progress, func(), error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ch := make(chan Progress, 1)
	if b.seen {
		ch <- b.last
	}
	if b.done {
		close(ch)
		return ch, func() {}, nil
	}
	if len(b.subs) >= maxSubscribers {
		return nil, nil, ErrTooManySubscribers
	}
	if b.subs == nil {
		b.subs = make(map[int]chan Progress)
	}
	id := b.next
	b.next++
	b.subs[id] = ch
	cancel := func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		delete(b.subs, id)
	}
	return ch, cancel, nil
}

// Observer returns a simulator.Observer publishing throttled running
// snapshots into the broker, stamping elapsed time from the moment of this
// call (the job's run start). The observer allocates nothing per step: the
// wall clock is consulted once per progressCheckSteps steps, and a snapshot
// is published only when ProgressInterval has passed since the last one, so
// a machine stepping millions of times per second still costs its
// subscribers (and the solve loop) a handful of snapshots per second.
func (b *ProgressBroker) Observer() simulator.Observer {
	now := time.Now()
	return &progressObserver{b: b, started: now, lastPub: now}
}

// attemptObserver is Observer for one attempt of a portfolio race: frames
// are stamped with the attempt's strategy, published only while the
// attempt leads the race (lead, consulted on the throttled publish
// cadence), and step annotations land on the attempt's own trace span
// (annotate; both hooks may be nil). Returned concretely so the service's
// attempt epilogue can read CountedSteps.
func (b *ProgressBroker) attemptObserver(strategy string, lead func(step int64) bool, annotate func(step int64, queued int)) *progressObserver {
	now := time.Now()
	return &progressObserver{b: b, started: now, lastPub: now, strategy: strategy, lead: lead, annotate: annotate}
}

type progressObserver struct {
	b        *ProgressBroker
	started  time.Time
	lastPub  time.Time
	lastStep int64

	// Attempt-scoped hooks (nil on the solo path, where the broker's own
	// annotate applies and every snapshot publishes).
	strategy string
	lead     func(step int64) bool
	annotate func(step int64, queued int)
}

// CountedSteps reports how many executed steps this observer has added to
// the telemetry counter. The attempt epilogue reads it after the run
// returns (the observer is quiescent by then) to account the tail run
// since the last publish.
func (o *progressObserver) CountedSteps() int64 { return o.lastStep }

func (o *progressObserver) AfterStep(step int64, queued int) {
	if step&(progressCheckSteps-1) != 0 {
		return
	}
	now := time.Now()
	since := now.Sub(o.lastPub)
	if since < ProgressInterval {
		return
	}
	if o.lead == nil || o.lead(step) {
		o.b.Publish(Progress{
			State:       StateRunning,
			Step:        step,
			Queued:      queued,
			ElapsedMs:   now.Sub(o.started).Milliseconds(),
			StepsPerSec: float64(step-o.lastStep) / since.Seconds(),
			Strategy:    o.strategy,
		})
	}
	o.b.steps.Add(step - o.lastStep)
	if o.annotate != nil {
		o.annotate(step, queued)
	} else if o.b.annotate != nil {
		o.b.annotate(step, queued)
	}
	o.lastPub = now
	o.lastStep = step
}
