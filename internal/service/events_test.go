package service

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestSSEEndToEnd streams a slow job's events over real HTTP through the
// daemon handler: at least one running snapshot arrives while the solve is
// live, and cancelling the job delivers the terminal snapshot and ends the
// stream.
func TestSSEEndToEnd(t *testing.T) {
	_, client := newTestServer(t, Config{QueueDepth: 4, Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	job, err := client.Submit(ctx, slowSpec())
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		events []Progress
		err    error
	}
	var runningSeen atomic.Int64
	done := make(chan outcome, 1)
	go func() {
		var events []Progress
		err := client.Watch(ctx, job.ID, func(p Progress) {
			events = append(events, p)
			if p.State == StateRunning && p.Step > 0 {
				runningSeen.Add(1)
			}
		})
		done <- outcome{events, err}
	}()

	// Hold the cancel until at least one throttled running snapshot has
	// streamed in (cadence ProgressInterval), so the test asserts live
	// progress rather than racing the throttle on a slow CI box.
	for runningSeen.Load() == 0 {
		select {
		case got := <-done:
			t.Fatalf("stream ended before any running snapshot: %+v (%v)", got.events, got.err)
		case <-ctx.Done():
			t.Fatal("no running snapshot before the test deadline")
		case <-time.After(10 * time.Millisecond):
		}
	}
	if _, err := client.Cancel(ctx, job.ID); err != nil {
		t.Fatal(err)
	}

	var got outcome
	select {
	case got = <-done:
	case <-ctx.Done():
		t.Fatal("Watch did not return after the job was cancelled")
	}
	if got.err != nil {
		t.Fatalf("Watch: %v", got.err)
	}
	if len(got.events) == 0 {
		t.Fatal("Watch delivered no events")
	}
	last := got.events[len(got.events)-1]
	if last.State != StateCancelled {
		t.Fatalf("last event state = %s, want cancelled", last.State)
	}
	for _, p := range got.events[:len(got.events)-1] {
		if p.State.Terminal() {
			t.Fatalf("terminal snapshot %+v arrived before the end of the stream", p)
		}
	}
}

// TestSSEWireFormat reads the raw byte stream and pins the wire contract:
// text/event-stream content type, `event: progress` / `event: end` frame
// names, JSON data lines.
func TestSSEWireFormat(t *testing.T) {
	srv, client := newTestServer(t, Config{QueueDepth: 4, Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	job, err := client.Submit(ctx, quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, job.ID, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	resp, err := srv.Client().Get(srv.URL + "/v1/jobs/" + job.ID.String() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	if !strings.Contains(text, "event: end\ndata: ") {
		t.Fatalf("stream %q lacks a terminal `event: end` frame", text)
	}
	if !strings.Contains(text, `"state":"done"`) {
		t.Fatalf("stream %q lacks the done state in its data payload", text)
	}
}

// TestSSEUnknownJob: the events endpoint 404s for unknown jobs and rejects
// sharded IDs like every other daemon route.
func TestSSEUnknownJob(t *testing.T) {
	srv, _ := newTestServer(t, Config{QueueDepth: 4, Workers: 1})
	for path, want := range map[string]int{
		"/v1/jobs/999/events":   http.StatusNotFound,
		"/v1/jobs/s2-17/events": http.StatusBadRequest,
		"/v1/jobs/-5/events":    http.StatusBadRequest,
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s status = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestSSESubscriberDisconnect: a subscriber that goes away mid-stream frees
// its broker slot instead of leaking it, and the solve is unaffected.
func TestSSESubscriberDisconnect(t *testing.T) {
	srv, client := newTestServer(t, Config{QueueDepth: 4, Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	job, err := client.Submit(ctx, slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	watchCtx, stopWatch := context.WithCancel(ctx)
	watchDone := make(chan error, 1)
	go func() { watchDone <- client.Watch(watchCtx, job.ID, nil) }()
	time.Sleep(50 * time.Millisecond)
	stopWatch()
	if err := <-watchDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("Watch after disconnect = %v, want context.Canceled", err)
	}
	if _, err := client.Cancel(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	final, err := client.Wait(ctx, job.ID, 5*time.Millisecond)
	if err != nil || final.State != StateCancelled {
		t.Fatalf("job after subscriber disconnect = %+v (%v), want cancelled", final, err)
	}
	_ = srv
}

// TestWatchFastJob: watching an already-finished job replays exactly the
// terminal snapshot — the subscribe-after-done contract over HTTP.
func TestWatchFastJob(t *testing.T) {
	_, client := newTestServer(t, Config{QueueDepth: 4, Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	job, err := client.Submit(ctx, quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, job.ID, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var events []Progress
	if err := client.Watch(ctx, job.ID, func(p Progress) { events = append(events, p) }); err != nil {
		t.Fatalf("Watch on a done job: %v", err)
	}
	if len(events) != 1 || events[0].State != StateDone {
		t.Fatalf("watch-after-done events = %+v, want exactly one done snapshot", events)
	}
}

// TestWatchStreamEnded: a server that drops the stream before the terminal
// event yields ErrStreamEnded, the signal hyperctl uses to fall back to
// polling.
func TestWatchStreamEnded(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		SetEventStreamHeaders(w)
		w.WriteHeader(http.StatusOK)
		_ = WriteEvent(w, Progress{State: StateRunning, Step: 10})
		// ...and die without a terminal frame.
	}))
	defer srv.Close()
	c := &Client{Base: srv.URL}
	var events []Progress
	err := c.Watch(context.Background(), JobID{Seq: 1}, func(p Progress) { events = append(events, p) })
	if !errors.Is(err, ErrStreamEnded) {
		t.Fatalf("Watch on a truncated stream = %v, want ErrStreamEnded", err)
	}
	if len(events) != 1 || events[0].Step != 10 {
		t.Fatalf("events before truncation = %+v, want the one running snapshot", events)
	}
}

// TestReadJobSpecRejectsTrailingGarbage: the admission path accepts exactly
// one JSON document; concatenated documents or trailing junk are a 400, on
// success the spec round-trips intact.
func TestReadJobSpecRejectsTrailingGarbage(t *testing.T) {
	srv, _ := newTestServer(t, Config{QueueDepth: 4, Workers: 1})
	for _, body := range []string{
		`{"kind":"sum","n":20,"topology":"ring:4"}{"kind":"sum","n":21}`,
		`{"kind":"sum","n":20,"topology":"ring:4"}junk`,
		`{"kind":"sum","n":20,"topology":"ring:4"} [1,2]`,
	} {
		resp, err := srv.Client().Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q status = %d, want 400", body, resp.StatusCode)
		}
	}
	// Trailing whitespace is not garbage.
	resp, err := srv.Client().Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader("{\"kind\":\"sum\",\"n\":20,\"topology\":\"ring:4\"}\n  \n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("POST with trailing whitespace status = %d, want 202", resp.StatusCode)
	}
}

// flakyGetServer answers GET /v1/jobs/1 from a scripted sequence of
// responses, then keeps serving the last one.
func flakyGetServer(t *testing.T, script []func(w http.ResponseWriter)) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := int(calls.Add(1)) - 1
		if i >= len(script) {
			i = len(script) - 1
		}
		script[i](w)
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func respondJSON(status int, body string) func(w http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_, _ = io.WriteString(w, body)
	}
}

// hangUp closes the connection without a response — a transport-level
// failure as Wait sees it.
func hangUp(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("test server does not support hijacking")
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		panic(err)
	}
	conn.Close()
}

// TestWaitRidesOutTransientErrors: 502s and dropped connections mid-wait
// are retried; the wait still converges on the terminal record.
func TestWaitRidesOutTransientErrors(t *testing.T) {
	srv, calls := flakyGetServer(t, []func(http.ResponseWriter){
		respondJSON(http.StatusOK, `{"id":1,"state":"running"}`),
		respondJSON(http.StatusBadGateway, `{"error":"cluster: backend unreachable"}`),
		hangUp,
		respondJSON(http.StatusInternalServerError, `{"error":"hiccup"}`),
		respondJSON(http.StatusOK, `{"id":1,"state":"running"}`),
		respondJSON(http.StatusOK, `{"id":1,"state":"done"}`),
	})
	c := &Client{Base: srv.URL}
	job, err := c.Wait(context.Background(), JobID{Seq: 1}, time.Millisecond)
	if err != nil {
		t.Fatalf("Wait through transient errors: %v", err)
	}
	if job.State != StateDone {
		t.Fatalf("final state = %s, want done", job.State)
	}
	if got := calls.Load(); got != 6 {
		t.Fatalf("polls = %d, want 6 (every scripted response consumed)", got)
	}
}

// TestWaitReturns4xxImmediately: a 404 is the server's verdict, not a blip —
// no retries.
func TestWaitReturns4xxImmediately(t *testing.T) {
	srv, calls := flakyGetServer(t, []func(http.ResponseWriter){
		respondJSON(http.StatusNotFound, `{"error":"service: no such job"}`),
	})
	c := &Client{Base: srv.URL}
	_, err := c.Wait(context.Background(), JobID{Seq: 1}, time.Millisecond)
	if status, ok := ErrorStatus(err); !ok || status != http.StatusNotFound {
		t.Fatalf("Wait on 404 = %v, want the 404 verdict", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("polls = %d, want exactly 1", got)
	}
}

// TestWaitGivesUpAfterConsecutiveFailures: a permanently dead server ends
// the wait after the bounded retry budget rather than spinning forever.
func TestWaitGivesUpAfterConsecutiveFailures(t *testing.T) {
	srv, calls := flakyGetServer(t, []func(http.ResponseWriter){hangUp})
	c := &Client{Base: srv.URL}
	_, err := c.Wait(context.Background(), JobID{Seq: 1}, time.Millisecond)
	if err == nil {
		t.Fatal("Wait against a dead server returned nil")
	}
	if got := calls.Load(); got != waitMaxGetFailures {
		t.Fatalf("polls = %d, want %d consecutive failures then give up", got, waitMaxGetFailures)
	}
	// And the error message names the give-up so operators see it was not
	// the first blip.
	if !strings.Contains(err.Error(), "gave up") {
		t.Fatalf("give-up error = %v, want it to say so", err)
	}
}
