package service

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"hypersolve/internal/core"
	"hypersolve/internal/sat"
	"hypersolve/internal/store"
)

func openStore(t *testing.T, dir string) *store.File {
	t.Helper()
	st, err := store.Open(store.FileConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRecoveryRerunsInterruptedJob is the tentpole acceptance check: a job
// that was running when the daemon died is re-queued by the next service
// and re-executed to a result bit-identical to an uninterrupted serial run.
func TestRecoveryRerunsInterruptedJob(t *testing.T) {
	suite, err := sat.GenerateSuite(sat.UF20Params(61))
	if err != nil {
		t.Fatal(err)
	}
	var cnf strings.Builder
	if err := sat.WriteDIMACS(&cnf, suite[0]); err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{
		Kind:         "sat",
		CNF:          cnf.String(),
		Topology:     "torus:8x8",
		Mapper:       "lbn",
		Seed:         13,
		RecordSeries: true,
	}
	serial := func() core.Result {
		cfg, arg, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.RunOnce(cfg, arg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()

	// Stage the crash state directly in the store: the job was submitted
	// and started, and then the process died — no finish record exists.
	dir := t.TempDir()
	st := openStore(t, dir)
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := st.Submit(raw, time.Now().UTC())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Start(sj.ID, time.Now().UTC()); err != nil {
		t.Fatal(err)
	}
	// Close writes no transition records, so the on-disk state is exactly
	// what a SIGKILL here would leave: submitted + started, never finished.
	// (It also releases the data-dir lock, which the kernel would do for a
	// dead process.)
	st.Close()

	s := New(Config{QueueDepth: 4, Workers: 1, Store: openStore(t, dir)})
	defer s.Close()
	done := waitState(t, s, sj.ID, StateDone, 30*time.Second)
	if done.Raw() == nil {
		t.Fatal("re-run job has no raw result")
	}
	if !reflect.DeepEqual(*done.Raw(), serial) {
		t.Fatalf("re-run result differs from serial run:\nre-run: %+v\nserial: %+v", *done.Raw(), serial)
	}
	if done.Result.SAT == nil || !done.Result.SAT.Verified {
		t.Fatalf("re-run SAT payload = %+v, want verified", done.Result.SAT)
	}
}

// TestRecoveryRestoresHistoryAndQueue: terminal jobs survive a restart
// verbatim and a queued-at-crash job is executed by the new service.
func TestRecoveryRestoresHistoryAndQueue(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Config{QueueDepth: 8, Workers: 1, Store: openStore(t, dir)})
	doneJob, err := s1.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	finished := waitState(t, s1, doneJob.ID.Seq, StateDone, 10*time.Second)
	s1.Close()

	// Stage a queued job the way a crash would leave it: appended to the
	// journal with no start/finish records. (Submitting via a live service
	// and killing it is inherently racy in-process; the store state is the
	// same either way.)
	st := openStore(t, dir)
	raw, err := json.Marshal(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	queued, err := st.Submit(raw, time.Now().UTC())
	if err != nil {
		t.Fatal(err)
	}
	st.Close() // crash-equivalent: no transition records written

	s2 := New(Config{QueueDepth: 8, Workers: 1, Store: openStore(t, dir)})
	defer s2.Close()

	// History: the done job is still there, result intact.
	got, ok := s2.Get(doneJob.ID.Seq)
	if !ok || got.State != StateDone || got.Result == nil {
		t.Fatalf("restored done job = %+v", got)
	}
	if !reflect.DeepEqual(got.Result, finished.Result) {
		t.Fatalf("restored result differs:\nbefore: %+v\nafter:  %+v", finished.Result, got.Result)
	}
	// Queue: the staged job runs to completion under the new service.
	rerun := waitState(t, s2, queued.ID, StateDone, 10*time.Second)
	if rerun.Result == nil || !rerun.Result.OK {
		t.Fatalf("recovered queued job result = %+v, want OK", rerun.Result)
	}
}

// TestRecoveryFailsUncompilableSpec: a recovered job whose persisted spec
// no longer compiles is marked failed instead of wedging the queue.
func TestRecoveryFailsUncompilableSpec(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	if _, err := st.Submit(json.RawMessage(`{"kind":"warp-drive"}`), time.Now().UTC()); err != nil {
		t.Fatal(err)
	}
	st.Close() // crash-equivalent: no transition records written

	s := New(Config{QueueDepth: 4, Workers: 1, Store: openStore(t, dir)})
	defer s.Close()
	j, ok := s.Get(1)
	if !ok {
		t.Fatal("staged job vanished")
	}
	if j.State != StateFailed || !strings.Contains(j.Error, "recovery") {
		t.Fatalf("uncompilable recovered job = %+v, want failed with recovery error", j)
	}
}

// TestRecoveredHistorySurvivesJSONRoundTrip guards the full path the CI
// smoke test exercises: a restored job serialises through the HTTP layer's
// encoder without losing its result payload.
func TestRecoveredHistorySurvivesJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Config{QueueDepth: 4, Workers: 1, Store: openStore(t, dir)})
	job, err := s1.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s1, job.ID.Seq, StateDone, 10*time.Second)
	s1.Close()

	s2 := New(Config{QueueDepth: 4, Workers: 1, Store: openStore(t, dir)})
	defer s2.Close()
	got, _ := s2.Get(job.ID.Seq)
	data, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	var round Job
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatal(err)
	}
	if round.State != StateDone || round.Result == nil || round.Result.Value != float64(210) {
		t.Fatalf("round-tripped recovered job = %+v", round)
	}
	// Sanity: the data directory holds exactly the journal/snapshot layout
	// the README documents.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if name := e.Name(); name != store.JournalName && name != store.SnapshotName && name != store.LockName {
			t.Fatalf("unexpected file %s in data dir", filepath.Join(dir, name))
		}
	}
}
