package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hypersolve/internal/sat"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Client) {
	t.Helper()
	svc := New(cfg)
	srv := httptest.NewServer(NewHandler(svc))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return srv, &Client{Base: srv.URL, HTTP: srv.Client()}
}

// TestHTTPEndToEnd drives the full service loop over real HTTP: submit a
// DIMACS job, poll to completion, and check the JSON result carries a
// verified satisfying assignment.
func TestHTTPEndToEnd(t *testing.T) {
	suite, err := sat.GenerateSuite(sat.UF20Params(5))
	if err != nil {
		t.Fatal(err)
	}
	var cnf strings.Builder
	if err := sat.WriteDIMACS(&cnf, suite[0]); err != nil {
		t.Fatal(err)
	}

	_, client := newTestServer(t, Config{QueueDepth: 8, Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	job, err := client.Submit(ctx, JobSpec{
		Kind:     "sat",
		CNF:      cnf.String(),
		Topology: "torus:8x8",
		Mapper:   "lbn",
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateQueued && job.State != StateRunning {
		t.Fatalf("accepted job state = %s", job.State)
	}

	final, err := client.Wait(ctx, job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Result == nil || final.Result.SAT == nil {
		t.Fatalf("final job = %+v, want done with SAT result", final)
	}
	if final.Result.SAT.Status != "SAT" || !final.Result.SAT.Verified {
		t.Fatalf("SAT result = %+v, want verified SAT", final.Result.SAT)
	}
	a := sat.NewAssignment(suite[0].NumVars)
	for _, lit := range final.Result.SAT.Assignment {
		a.Set(sat.Lit(lit))
	}
	if !sat.Verify(suite[0], a) {
		t.Fatal("assignment from the wire does not satisfy the formula")
	}

	jobs, err := client.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != job.ID {
		t.Fatalf("list = %+v, want exactly the submitted job", jobs)
	}
	if jobs, err = client.List(ctx, StateDone); err != nil || len(jobs) != 1 {
		t.Fatalf("list ?state=done = %+v (%v), want the done job", jobs, err)
	}
	if jobs, err = client.List(ctx, StateQueued, StateRunning); err != nil || len(jobs) != 0 {
		t.Fatalf("list ?state=queued,running = %+v (%v), want empty", jobs, err)
	}
	h, err := client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Jobs[StateDone] != 1 {
		t.Fatalf("health = %+v, want ok with one done job", h)
	}
}

// TestHTTPBackpressure checks the 429 contract: submissions beyond the
// queue depth are rejected and recognisable via IsOverloaded. Retrying is
// disabled — the blocking job never finishes, so the default backoff would
// only delay the guaranteed 429.
func TestHTTPBackpressure(t *testing.T) {
	_, client := newTestServer(t, Config{QueueDepth: 1, Workers: 1})
	client.Retry = Retry{MaxAttempts: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	slow, err := client.Submit(ctx, slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker picks it up so exactly one queue slot remains.
	for {
		j, err := client.Get(ctx, slow.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == StateRunning {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := client.Submit(ctx, quickSpec()); err != nil {
		t.Fatal(err)
	}
	_, err = client.Submit(ctx, quickSpec())
	if !IsOverloaded(err) {
		t.Fatalf("over-depth submit returned %v, want a 429 overload error", err)
	}
	if _, err := client.Cancel(ctx, slow.ID); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPCancelRunning submits a multi-second job and cancels it over
// HTTP; the job must go terminal far faster than it could have finished.
func TestHTTPCancelRunning(t *testing.T) {
	_, client := newTestServer(t, Config{QueueDepth: 4, Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	job, err := client.Submit(ctx, slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	for {
		j, err := client.Get(ctx, job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == StateRunning {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := client.Cancel(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	final, err := client.Wait(ctx, job.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCancelled {
		t.Fatalf("state after cancel = %s, want cancelled", final.State)
	}
}

func TestHTTPErrors(t *testing.T) {
	srv, client := newTestServer(t, Config{QueueDepth: 4, Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if _, err := client.Get(ctx, JobID{Seq: 999}); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("get unknown job: %v, want 404", err)
	}
	if _, err := client.Cancel(ctx, JobID{Seq: 999}); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("cancel unknown job: %v, want 404", err)
	}
	if _, err := client.Submit(ctx, JobSpec{Kind: "nope"}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("bad spec: %v, want 400", err)
	}

	// An unknown state filter is a 400.
	resp, err := srv.Client().Get(srv.URL + "/v1/jobs?state=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET ?state=bogus status = %d, want 400", resp.StatusCode)
	}

	// Malformed JSON and unknown fields are 400s.
	for _, body := range []string{"{", `{"kind":"sat","surprise":1}`} {
		resp, err := srv.Client().Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %q status = %d, want 400", body, resp.StatusCode)
		}
	}

	// Cancelling a finished job is a 409.
	job, err := client.Submit(ctx, quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, job.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Cancel(ctx, job.ID); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("cancel finished job: %v, want 409", err)
	}

	// Job payloads round-trip through JSON with stable states.
	var j Job
	data, err := json.Marshal(job)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &j); err != nil {
		t.Fatal(err)
	}
	if j.ID != job.ID || j.Spec.Kind != "sum" {
		t.Fatalf("job did not survive a JSON round trip: %+v", j)
	}
}
