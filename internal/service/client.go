package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to a hypersolved server. The zero value is not usable; set
// Base to the server's root URL (e.g. "http://localhost:8080").
type Client struct {
	// Base is the server root URL, without a trailing slash.
	Base string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError is a non-2xx response decoded into an error. StatusCode lets
// callers distinguish overload (429) from bad specs (400).
type apiError struct {
	StatusCode int
	Message    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.StatusCode, e.Message)
}

// IsOverloaded reports whether the error is the server's queue-full
// rejection (HTTP 429), the signal to back off and resubmit.
func IsOverloaded(err error) bool {
	var ae *apiError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusTooManyRequests
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimSuffix(c.Base, "/")+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &apiError{StatusCode: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit enqueues a job and returns its accepted record.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &job)
	return job, err
}

// Get fetches one job.
func (c *Client) Get(ctx context.Context, id int64) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/jobs/%d", id), nil, &job)
	return job, err
}

// List fetches all jobs.
func (c *Client) List(ctx context.Context) ([]Job, error) {
	var jobs []Job
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &jobs)
	return jobs, err
}

// Cancel stops a queued or running job.
func (c *Client) Cancel(ctx context.Context, id int64) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodDelete, fmt.Sprintf("/v1/jobs/%d", id), nil, &job)
	return job, err
}

// Health fetches the server's liveness report.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// Wait polls a job every interval (default 100ms) until it reaches a
// terminal state or ctx expires, returning the final record.
func (c *Client) Wait(ctx context.Context, id int64, interval time.Duration) (Job, error) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		job, err := c.Get(ctx, id)
		if err != nil {
			return job, err
		}
		if job.State.Terminal() {
			return job, nil
		}
		select {
		case <-ctx.Done():
			return job, ctx.Err()
		case <-ticker.C:
		}
	}
}
