package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strings"
	"time"

	"hypersolve/internal/tracelog"

	"hypersolve/internal/telemetry"
)

// Client talks to a hypersolved server. The zero value is not usable; set
// Base to the server's root URL (e.g. "http://localhost:8080").
type Client struct {
	// Base is the server root URL, without a trailing slash.
	Base string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// Retry shapes Submit's backoff when the server rejects with 429
	// (queue full). The zero value selects the defaults; set
	// Retry.MaxAttempts to 1 to surface 429s immediately.
	Retry Retry
	// Telemetry, when set, receives the client-side resilience counters:
	// hypersolve_client_submit_retries_total (429 backoff resubmits),
	// hypersolve_client_wait_retries_total (transient poll failures ridden
	// out by Wait) and hypersolve_client_backoff_seconds_total. Nil skips
	// all accounting.
	Telemetry *telemetry.Registry
}

func (c *Client) counter(name, help string) *telemetry.Counter {
	return c.Telemetry.Counter(name, help) // nil registry → nil no-op counter
}

func (c *Client) backoffAccount(d time.Duration) {
	if c.Telemetry == nil {
		return
	}
	c.Telemetry.Gauge("hypersolve_client_backoff_seconds_total",
		"Cumulative time this client spent sleeping between retries.").Add(d.Seconds())
}

// Retry is Submit's backoff policy for queue-full (HTTP 429) rejections:
// capped exponential delays with full jitter, so a batch of clients bounced
// by the same full queue does not re-converge on the same instant.
type Retry struct {
	// MaxAttempts caps total submission attempts, the first included.
	// 0 selects the default 8; 1 (or less) disables retrying.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 50ms); each retry
	// doubles it up to MaxDelay (default 2s). The actual sleep is drawn
	// uniformly from [delay/2, delay].
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (r Retry) norm() (attempts int, base, max time.Duration) {
	attempts = r.MaxAttempts
	if attempts == 0 {
		attempts = 8
	}
	if attempts < 1 {
		attempts = 1
	}
	base = r.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max = r.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	if max < base {
		max = base
	}
	return attempts, base, max
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError is a non-2xx response decoded into an error. StatusCode lets
// callers distinguish overload (429) from bad specs (400).
type apiError struct {
	StatusCode int
	Message    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.StatusCode, e.Message)
}

// IsOverloaded reports whether the error is the server's queue-full
// rejection (HTTP 429), the signal to back off and resubmit.
func IsOverloaded(err error) bool {
	var ae *apiError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusTooManyRequests
}

// ErrorStatus returns the HTTP status code carried by a server-side error
// (a non-2xx response decoded by the client) and true, or 0 and false for
// transport-level failures that never produced a status line. The cluster
// router uses the distinction to relay backend verdicts verbatim while
// treating transport failures as a degraded backend.
func ErrorStatus(err error) (int, bool) {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.StatusCode, true
	}
	return 0, false
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimSuffix(c.Base, "/")+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tc, ok := tracelog.FromContext(ctx); ok {
		req.Header.Set("traceparent", tc.Traceparent())
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &apiError{StatusCode: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit enqueues a job and returns its accepted record. Queue-full
// rejections (HTTP 429) are retried with jittered exponential backoff per
// the client's Retry policy; any other error — and a 429 that survives the
// final attempt — is returned as-is. Cancelling ctx aborts the backoff.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (Job, error) {
	attempts, delay, maxDelay := c.Retry.norm()
	for attempt := 1; ; attempt++ {
		var job Job
		err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &job)
		if err == nil || !IsOverloaded(err) || attempt >= attempts {
			return job, err
		}
		c.counter("hypersolve_client_submit_retries_total",
			"Submissions retried after a queue-full (429) rejection.").Inc()
		sleep := delay/2 + time.Duration(rand.Int64N(int64(delay/2)+1))
		if err := sleepCtx(ctx, sleep); err != nil {
			return Job{}, err
		}
		c.backoffAccount(sleep)
		if delay *= 2; delay > maxDelay {
			delay = maxDelay
		}
	}
}

// sleepCtx pauses for d or until ctx is done, returning ctx's error in the
// latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Get fetches one job. Sharded IDs ("s2-17") work against a cluster
// router; bare sequence IDs against a single daemon.
func (c *Client) Get(ctx context.Context, id JobID) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id.String(), nil, &job)
	return job, err
}

// GetJSON performs a GET against an arbitrary API path and decodes the
// response into out — the escape hatch for endpoints the typed methods do
// not cover (hyperctl uses it for the router's /v1/cluster report).
func (c *Client) GetJSON(ctx context.Context, path string, out any) error {
	return c.do(ctx, http.MethodGet, path, nil, out)
}

// PostJSON performs a POST against an arbitrary API path, sending body as
// JSON and decoding the response into out (either may be nil) — the POST
// counterpart of GetJSON (hyperctl uses it for the router's membership
// endpoint).
func (c *Client) PostJSON(ctx context.Context, path string, body, out any) error {
	return c.do(ctx, http.MethodPost, path, body, out)
}

// List fetches jobs, optionally filtered to the given states (no states =
// all jobs).
func (c *Client) List(ctx context.Context, states ...State) ([]Job, error) {
	path := "/v1/jobs"
	if len(states) > 0 {
		q := url.Values{}
		for _, st := range states {
			q.Add("state", string(st))
		}
		path += "?" + q.Encode()
	}
	var jobs []Job
	err := c.do(ctx, http.MethodGet, path, nil, &jobs)
	return jobs, err
}

// Cancel stops a queued or running job.
func (c *Client) Cancel(ctx context.Context, id JobID) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id.String(), nil, &job)
	return job, err
}

// Trace fetches one job's span timeline (GET /v1/jobs/{id}/trace).
// Sharded IDs work against a cluster router; bare sequence IDs against
// a single daemon or standby.
func (c *Client) Trace(ctx context.Context, id JobID) (JobTrace, error) {
	var jt JobTrace
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id.String()+"/trace", nil, &jt)
	return jt, err
}

// Health fetches the server's liveness report.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// RawMetrics fetches GET /metrics verbatim — Prometheus text, not JSON.
// The cluster router scrapes backends through it for the aggregated
// fleet exposition.
func (c *Client) RawMetrics(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(c.Base, "/")+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &apiError{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	return data, nil
}

// waitMaxInterval caps Wait's backoff: however long a solve runs, the
// client never polls less often than this.
const waitMaxInterval = 2 * time.Second

// waitMaxGetFailures bounds how many consecutive transient Get failures
// Wait rides out before giving up and returning the last error.
const waitMaxGetFailures = 5

// transientWaitError reports whether a Get failure is worth retrying from
// inside Wait: transport-level errors (the daemon restarting, a router
// re-probing a backend) and server-side 5xx verdicts are transient; a 4xx
// is the server's answer about this job (404 gone, 400 bad ID) and aborting
// minutes into a wait over it would be correct, so it is returned
// immediately.
func transientWaitError(err error) bool {
	status, spoke := ErrorStatus(err)
	return !spoke || status >= 500
}

// Wait polls a job until it reaches a terminal state or ctx expires,
// returning the final record. The poll interval starts at initial (default
// 100ms) and backs off gently — ×1.5 per poll, capped at 2s (or at initial,
// if larger) — so waiting on a long solve doesn't hammer the daemon.
//
// Transient poll failures — transport errors and 5xx verdicts, e.g. a 502
// from a router mid-re-probe or a daemon restart blip — are retried in
// place with the same backoff schedule, up to waitMaxGetFailures
// consecutive failures, so one blip cannot kill a wait minutes into a
// solve. A 4xx verdict is returned immediately. Cancelling ctx always ends
// the wait.
func (c *Client) Wait(ctx context.Context, id JobID, initial time.Duration) (Job, error) {
	if initial <= 0 {
		initial = 100 * time.Millisecond
	}
	interval := initial
	failures := 0
	for {
		job, err := c.Get(ctx, id)
		if err != nil {
			if ctx.Err() != nil || !transientWaitError(err) {
				return job, err
			}
			if failures++; failures >= waitMaxGetFailures {
				return job, fmt.Errorf("service: wait gave up after %d consecutive poll failures: %w", failures, err)
			}
			c.counter("hypersolve_client_wait_retries_total",
				"Transient poll failures ridden out inside Wait.").Inc()
		} else {
			failures = 0
			if job.State.Terminal() {
				return job, nil
			}
		}
		if err := sleepCtx(ctx, interval); err != nil {
			return job, err
		}
		interval = nextPollInterval(interval, initial)
	}
}

// OpenEvents performs GET /v1/jobs/{id}/events and returns the raw SSE
// stream for the caller to consume (Watch decodes it; the cluster router
// proxies it verbatim). A non-200 response is decoded into the same
// status-carrying error as every other call, so ErrorStatus distinguishes a
// server verdict from a transport failure.
func (c *Client) OpenEvents(ctx context.Context, id JobID) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(c.Base, "/")+"/v1/jobs/"+id.String()+"/events", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if tc, ok := tracelog.FromContext(ctx); ok {
		req.Header.Set("traceparent", tc.Traceparent())
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		var e struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return nil, &apiError{StatusCode: resp.StatusCode, Message: msg}
	}
	return resp.Body, nil
}

// ErrStreamEnded reports an event stream that closed before delivering the
// terminal snapshot — the backend died mid-stream, or a proxy gave up.
// Callers holding a job ID can fall back to polling Wait.
var ErrStreamEnded = errors.New("service: event stream ended before the job finished")

// Watch streams a job's progress events, invoking fn (which may be nil) for
// every decoded snapshot in order. It returns nil once the terminal
// snapshot — the one whose State is terminal, always the stream's last —
// has been delivered, ErrStreamEnded if the stream closed without one, and
// the opening error otherwise (a 404 for an unknown job, a transport
// failure...). The event rate is bounded by the server's throttle
// (ProgressInterval); fast jobs may deliver only the terminal snapshot.
func (c *Client) Watch(ctx context.Context, id JobID, fn func(Progress)) error {
	body, err := c.OpenEvents(ctx, id)
	if err != nil {
		return err
	}
	defer body.Close()
	return DecodeEvents(ctx, body, fn)
}

// DecodeEvents consumes a raw SSE stream (as returned by OpenEvents),
// invoking fn (which may be nil) for every decoded Progress snapshot in
// order, with Watch's termination contract: nil after the terminal
// snapshot, ErrStreamEnded if the stream closed without one. The cluster
// router shares it so a failed-over stream decodes identically.
func DecodeEvents(ctx context.Context, body io.Reader, fn func(Progress)) error {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if len(data) == 0 {
				continue // keep-alive or event-name-only frame
			}
			var p Progress
			if err := json.Unmarshal(data, &p); err != nil {
				return fmt.Errorf("service: decoding progress event %q: %w", data, err)
			}
			data = nil
			if fn != nil {
				fn(p)
			}
			if p.State.Terminal() {
				return nil
			}
		case strings.HasPrefix(line, "data:"):
			// Multi-line data concatenates per the SSE spec; a single
			// leading space after the colon is not part of the payload.
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		default:
			// event:/retry:/id: fields and comments carry nothing Watch
			// needs: the terminal frame is recognised by its state.
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	return ErrStreamEnded
}

// nextPollInterval grows a poll interval ×1.5, capped at waitMaxInterval or
// the initial interval, whichever is larger.
func nextPollInterval(interval, initial time.Duration) time.Duration {
	ceil := waitMaxInterval
	if initial > ceil {
		ceil = initial
	}
	if interval = interval * 3 / 2; interval > ceil {
		interval = ceil
	}
	return interval
}
