package sched

import (
	"testing"

	"hypersolve/internal/mesh"
)

// echoProc records what it receives and optionally forwards once to a fixed
// destination.
type echoProc struct {
	self     PID
	received []any
	sources  []PID
	forward  PID
	fired    bool
}

func (e *echoProc) Init(ctx *Context) { e.self = ctx.Self() }

func (e *echoProc) Receive(ctx *Context, src PID, payload any) {
	e.received = append(e.received, payload)
	e.sources = append(e.sources, src)
	if e.forward >= 0 && !e.fired {
		e.fired = true
		if err := ctx.Send(e.forward, payload); err != nil {
			panic(err)
		}
	}
}

func newEchoCluster(t *testing.T, topo mesh.Topology, procs int, wire func(PID) PID) *Cluster {
	t.Helper()
	c, err := New(Config{
		Physical:     topo,
		ProcsPerNode: procs,
		Factory: func(p PID) Process {
			fw := PID(-1)
			if wire != nil {
				fw = wire(p)
			}
			return &echoProc{forward: fw}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPIDMapping(t *testing.T) {
	c := newEchoCluster(t, mesh.MustTorus(4, 4), 3, nil)
	if got := c.PIDOf(2, 1); got != 7 {
		t.Errorf("PIDOf(2,1) = %d, want 7", got)
	}
	if got := c.NodeOf(7); got != 2 {
		t.Errorf("NodeOf(7) = %d, want 2", got)
	}
	if got := c.Virtual().Size(); got != 48 {
		t.Errorf("virtual size = %d, want 48", got)
	}
}

func TestVirtualTopologyValidates(t *testing.T) {
	for _, procs := range []int{1, 2, 4} {
		c := newEchoCluster(t, mesh.MustTorus(3, 3), procs, nil)
		if err := mesh.Validate(c.Virtual()); err != nil {
			t.Errorf("procs=%d: %v", procs, err)
		}
	}
}

func TestVirtualNeighboursStructure(t *testing.T) {
	// 3x3 torus with 2 procs: each PID has 1 sibling + 4 neighbours * 2
	// slots = 9 virtual neighbours.
	c := newEchoCluster(t, mesh.MustTorus(3, 3), 2, nil)
	v := c.Virtual()
	for pid := 0; pid < v.Size(); pid++ {
		if d := v.Degree(mesh.NodeID(pid)); d != 9 {
			t.Errorf("pid %d virtual degree = %d, want 9", pid, d)
		}
	}
}

func TestVirtualTopologySingleProcMatchesPhysical(t *testing.T) {
	phys := mesh.MustTorus(4, 4)
	c := newEchoCluster(t, phys, 1, nil)
	v := c.Virtual()
	if v.Size() != phys.Size() {
		t.Fatalf("size mismatch: %d vs %d", v.Size(), phys.Size())
	}
	for n := 0; n < phys.Size(); n++ {
		pn := phys.Neighbours(mesh.NodeID(n))
		vn := v.Neighbours(mesh.NodeID(n))
		if len(pn) != len(vn) {
			t.Fatalf("node %d: neighbour counts differ (%d vs %d)", n, len(pn), len(vn))
		}
		seen := map[mesh.NodeID]bool{}
		for _, m := range pn {
			seen[m] = true
		}
		for _, m := range vn {
			if !seen[m] {
				t.Fatalf("node %d: virtual neighbour %d not a physical neighbour", n, m)
			}
		}
	}
}

func TestInterNodeDelivery(t *testing.T) {
	topo := mesh.MustRing(4)
	// PID 0 forwards its trigger to PID 1 (node 1), which records it.
	c := newEchoCluster(t, topo, 1, func(p PID) PID {
		if p == 0 {
			return 1
		}
		return -1
	})
	if err := c.Inject(0, "hello"); err != nil {
		t.Fatal(err)
	}
	stats := c.Run()
	if !stats.Quiescent {
		t.Fatal("run did not quiesce")
	}
	p1 := c.Process(1).(*echoProc)
	if len(p1.received) != 1 || p1.received[0] != "hello" {
		t.Fatalf("pid 1 received %v, want [hello]", p1.received)
	}
	if p1.sources[0] != 0 {
		t.Errorf("pid 1 source = %d, want 0", p1.sources[0])
	}
}

func TestIntraNodeDelivery(t *testing.T) {
	topo := mesh.MustRing(4)
	// PID 0 (node 0, slot 0) forwards to PID 1 (node 0, slot 1): a local
	// sibling message that never crosses the interconnect.
	c := newEchoCluster(t, topo, 2, func(p PID) PID {
		if p == 0 {
			return 1
		}
		return -1
	})
	if err := c.Inject(0, 42); err != nil {
		t.Fatal(err)
	}
	stats := c.Run()
	if !stats.Quiescent {
		t.Fatal("run did not quiesce")
	}
	p1 := c.Process(1).(*echoProc)
	if len(p1.received) != 1 || p1.received[0] != 42 {
		t.Fatalf("pid 1 received %v, want [42]", p1.received)
	}
	// Only the injected trigger crossed layer 1.
	if stats.TotalSent != 1 {
		t.Errorf("TotalSent = %d, want 1 (sibling send must be local)", stats.TotalSent)
	}
}

func TestSelfSendRejected(t *testing.T) {
	topo := mesh.MustRing(4)
	var errSeen error
	c, err := New(Config{
		Physical:     topo,
		ProcsPerNode: 2,
		Factory: func(p PID) Process {
			return procFunc(func(ctx *Context, src PID, payload any) {
				errSeen = ctx.Send(ctx.Self(), payload)
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Inject(0, nil); err != nil {
		t.Fatal(err)
	}
	c.Run()
	if errSeen == nil {
		t.Error("expected self-send rejection")
	}
}

// procFunc adapts a function to Process.
type procFunc func(ctx *Context, src PID, payload any)

func (f procFunc) Init(ctx *Context)                          {}
func (f procFunc) Receive(ctx *Context, src PID, payload any) { f(ctx, src, payload) }

func TestActivationBudgetSerialisesWork(t *testing.T) {
	// Two processes on one node each receive a trigger in the same step;
	// with 1 activation/step they are served on different steps.
	topo := mesh.MustFullyConnected(2)
	var steps []int64
	c, err := New(Config{
		Physical:           topo,
		ProcsPerNode:       2,
		ActivationsPerStep: 1,
		Factory: func(p PID) Process {
			return procFunc(func(ctx *Context, src PID, payload any) {
				if ctx.Node() == 0 {
					steps = append(steps, ctx.Step())
				}
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Inject(0, nil); err != nil { // node 0 slot 0
		t.Fatal(err)
	}
	if err := c.Inject(1, nil); err != nil { // node 0 slot 1
		t.Fatal(err)
	}
	c.Run()
	if len(steps) != 2 {
		t.Fatalf("activations = %d, want 2", len(steps))
	}
	if steps[0] == steps[1] {
		t.Errorf("both activations in step %d despite budget 1", steps[0])
	}
}

func TestActivationBudgetTwoRunsInOneStep(t *testing.T) {
	topo := mesh.MustFullyConnected(2)
	var steps []int64
	c, err := New(Config{
		Physical:           topo,
		ProcsPerNode:       2,
		ActivationsPerStep: 2,
		Factory: func(p PID) Process {
			return procFunc(func(ctx *Context, src PID, payload any) {
				if ctx.Node() == 0 {
					steps = append(steps, ctx.Step())
				}
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Inject(0, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Inject(1, nil); err != nil {
		t.Fatal(err)
	}
	c.Run()
	if len(steps) != 2 {
		t.Fatalf("activations = %d, want 2", len(steps))
	}
	if steps[0] != steps[1] {
		t.Errorf("activations on steps %v, want same step with budget 2", steps)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// One node, 3 slots; slot 0 floods itself... instead: all slots get
	// pre-loaded messages; round-robin must interleave activations
	// 0,1,2,0,1,2 rather than draining one mailbox first.
	topo := mesh.MustFullyConnected(2)
	var order []int
	c, err := New(Config{
		Physical:           topo,
		ProcsPerNode:       3,
		ActivationsPerStep: 1,
		Policy:             RoundRobin,
		Factory: func(p PID) Process {
			return procFunc(func(ctx *Context, src PID, payload any) {
				if ctx.Node() == 0 {
					order = append(order, ctx.Slot())
				}
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two messages per slot on node 0.
	for round := 0; round < 2; round++ {
		for slot := 0; slot < 3; slot++ {
			if err := c.Inject(PID(slot), round); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.Run()
	want := []int{0, 1, 2, 0, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFIFOPolicyArrivalOrder(t *testing.T) {
	topo := mesh.MustFullyConnected(2)
	var order []int
	c, err := New(Config{
		Physical:           topo,
		ProcsPerNode:       3,
		ActivationsPerStep: 1,
		Policy:             FIFO,
		Factory: func(p PID) Process {
			return procFunc(func(ctx *Context, src PID, payload any) {
				if ctx.Node() == 0 {
					order = append(order, ctx.Slot())
				}
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Injection order: slot 2, 2, 0, 1. FIFO must preserve it.
	for _, slot := range []int{2, 2, 0, 1} {
		if err := c.Inject(PID(slot), nil); err != nil {
			t.Fatal(err)
		}
	}
	c.Run()
	want := []int{2, 2, 0, 1}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestActivationsPerNodeCounts(t *testing.T) {
	topo := mesh.MustRing(4)
	c := newEchoCluster(t, topo, 2, func(p PID) PID {
		if p == 0 {
			return 1 // local sibling forward
		}
		return -1
	})
	if err := c.Inject(0, nil); err != nil {
		t.Fatal(err)
	}
	c.Run()
	acts := c.ActivationsPerNode()
	if acts[0] != 2 { // trigger + sibling message
		t.Errorf("node 0 activations = %d, want 2", acts[0])
	}
	for n := 1; n < 4; n++ {
		if acts[n] != 0 {
			t.Errorf("node %d activations = %d, want 0", n, acts[n])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("expected error for nil physical topology")
	}
	if _, err := New(Config{Physical: mesh.MustRing(4)}); err == nil {
		t.Error("expected error for nil factory")
	}
}

func TestPolicyString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || FIFO.String() != "fifo" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy should still format")
	}
}

func TestMultiHopChain(t *testing.T) {
	// Chain a message around a ring through every node and back: pid i
	// forwards to pid (i+1) mod n.
	n := 8
	topo := mesh.MustRing(n)
	hops := 0
	c, err := New(Config{
		Physical:     topo,
		ProcsPerNode: 1,
		Factory: func(p PID) Process {
			return procFunc(func(ctx *Context, src PID, payload any) {
				hops++
				next := PID((int(ctx.Self()) + 1) % n)
				if v := payload.(int); v > 0 {
					if err := ctx.Send(next, v-1); err != nil {
						panic(err)
					}
				}
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Inject(0, 2*n); err != nil {
		t.Fatal(err)
	}
	stats := c.Run()
	if !stats.Quiescent {
		t.Fatal("chain did not quiesce")
	}
	if hops != 2*n+1 {
		t.Errorf("hops = %d, want %d", hops, 2*n+1)
	}
}
