// Package sched implements layer 2 of the model of Tarawneh et al. (P2S2
// 2017): node-level scheduling. It maintains a number of concurrent logical
// processes on top of the message-passing interface of layer 1, so that
// applications can be expressed as state initialisation plus message
// handling functions even when processes outnumber hardware cores.
//
// Each physical node hosts a fixed number of process slots. Processes are
// addressed by a PID that is globally unique across the machine; the set of
// PIDs forms a *virtual topology* in which two processes are neighbours when
// they live on the same physical node or on adjacent physical nodes. Layers
// above (mapping, recursion) operate purely on PIDs and the virtual
// topology, which is how layer 2 hides oversubscription from them.
//
// Delivery semantics model the hardware constraint: a physical core performs
// at most Config.ActivationsPerStep process activations per simulation step
// regardless of how many messages arrived, with a round-robin scheduling
// policy choosing among process slots that have waiting messages (the
// "round-robin" layer-2 implementation of the paper's Figure 2).
package sched

import (
	"context"
	"fmt"

	"hypersolve/internal/mesh"
	"hypersolve/internal/ringbuf"
	"hypersolve/internal/simulator"
)

// PID identifies a logical process: node*ProcsPerNode + slot.
type PID int

// NonePID is the sentinel for "no process", used as the source of externally
// injected trigger messages.
const NonePID PID = -1

// Process is the layer-2 application interface: per-process state
// initialisation plus a receive handler.
type Process interface {
	Init(ctx *Context)
	Receive(ctx *Context, src PID, payload any)
}

// ProcessFactory builds the process for one PID.
type ProcessFactory func(p PID) Process

// Policy selects the node-level scheduling discipline.
type Policy int

const (
	// RoundRobin rotates fairly among process slots with pending messages.
	RoundRobin Policy = iota
	// FIFO activates processes strictly in message arrival order.
	FIFO
)

func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case FIFO:
		return "fifo"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config assembles a scheduled cluster on top of a physical topology.
type Config struct {
	// Physical is the hardware interconnect.
	Physical mesh.Topology
	// ProcsPerNode is the number of process slots per core. Values below 1
	// default to 1.
	ProcsPerNode int
	// ActivationsPerStep bounds process activations per core per step.
	// Zero (the default) means unbounded: every message delivered in a
	// step is processed within that step, matching the paper's model in
	// which computation is free and the network is the bottleneck.
	// Positive values model compute-bound cores (an ablation axis).
	ActivationsPerStep int
	// Policy is the scheduling discipline (default RoundRobin).
	Policy Policy
	// Factory builds each process.
	Factory ProcessFactory
	// Sim carries layer-1 options through to the simulator.
	Sim simulator.Config
}

// Cluster is a simulated machine with layer-2 scheduling installed on every
// node. It owns the underlying layer-1 simulator.
type Cluster struct {
	sim     *simulator.Simulator
	virtual *virtualTopology
	procs   int
	nodes   []*nodeScheduler
}

// New builds the cluster: a virtual topology of PIDs and one nodeScheduler
// handler per physical node.
func New(cfg Config) (*Cluster, error) {
	if cfg.Physical == nil {
		return nil, fmt.Errorf("sched: Config.Physical is nil")
	}
	if cfg.Factory == nil {
		return nil, fmt.Errorf("sched: Config.Factory is nil")
	}
	if cfg.ProcsPerNode < 1 {
		cfg.ProcsPerNode = 1
	}
	c := &Cluster{
		virtual: newVirtualTopology(cfg.Physical, cfg.ProcsPerNode),
		procs:   cfg.ProcsPerNode,
		nodes:   make([]*nodeScheduler, cfg.Physical.Size()),
	}
	simCfg := cfg.Sim
	simCfg.Topology = cfg.Physical
	// Under per-node queues the inbox must feed the core at least as fast
	// as its activation budget, or layer 1 throttles layer 2.
	if simCfg.QueueModel == simulator.NodeQueues && simCfg.DeliverPerStep < cfg.ActivationsPerStep {
		simCfg.DeliverPerStep = cfg.ActivationsPerStep
	}
	simCfg.Factory = func(n mesh.NodeID) simulator.Handler {
		ns := newNodeScheduler(c, n, cfg)
		c.nodes[int(n)] = ns
		return ns
	}
	sim, err := simulator.New(simCfg)
	if err != nil {
		return nil, err
	}
	c.sim = sim
	return c, nil
}

// Virtual returns the PID-level topology the upper layers schedule over.
func (c *Cluster) Virtual() mesh.Topology { return c.virtual }

// Physical returns the hardware topology.
func (c *Cluster) Physical() mesh.Topology { return c.sim.Topology() }

// ProcsPerNode returns the number of process slots per core.
func (c *Cluster) ProcsPerNode() int { return c.procs }

// Process returns the process instance behind a PID, letting callers extract
// results after a run.
func (c *Cluster) Process(p PID) Process {
	node, slot := c.split(p)
	return c.nodes[node].procs[slot].proc
}

// Inject queues an external trigger message for a PID before the run starts.
func (c *Cluster) Inject(dst PID, payload any) error {
	node, slot := c.split(dst)
	if node < 0 || node >= len(c.nodes) {
		return fmt.Errorf("sched: inject to out-of-range pid %d", dst)
	}
	return c.sim.Inject(mesh.NodeID(node), envelope{SrcPID: NonePID, DstSlot: slot, Payload: payload})
}

// Run executes the simulation to quiescence and returns layer-1 statistics.
func (c *Cluster) Run() simulator.Stats { return c.sim.Run() }

// RunContext is Run with cooperative cancellation; see
// simulator.RunContext for the slice-granular polling contract.
func (c *Cluster) RunContext(ctx context.Context) simulator.Stats { return c.sim.RunContext(ctx) }

// PIDOf maps (physical node, slot) to a PID.
func (c *Cluster) PIDOf(node mesh.NodeID, slot int) PID {
	return PID(int(node)*c.procs + slot)
}

// NodeOf maps a PID to its physical node.
func (c *Cluster) NodeOf(p PID) mesh.NodeID {
	node, _ := c.split(p)
	return mesh.NodeID(node)
}

func (c *Cluster) split(p PID) (node, slot int) {
	return int(p) / c.procs, int(p) % c.procs
}

// envelope is the layer-2 wire format carried inside layer-1 payloads.
type envelope struct {
	SrcPID  PID
	DstSlot int
	Payload any
}

// procState is one process slot on a node.
type procState struct {
	proc    Process
	mailbox ringbuf.Ring[inboxEntry]
}

type inboxEntry struct {
	src     PID
	payload any
}

// nodeScheduler is the layer-1 handler for one physical node. It demuxes
// arriving envelopes into per-process mailboxes and activates processes
// subject to the per-step activation budget.
type nodeScheduler struct {
	cluster *Cluster
	node    mesh.NodeID
	cfg     Config
	procs   []*procState
	// ctxs holds one reusable per-slot Context, built in Init so that
	// activations do not allocate.
	ctxs    []Context
	cursor  int                 // round-robin position
	fifoQ   ringbuf.Ring[int32] // slot activation order for the FIFO policy
	backlog int                 // total queued mailbox entries
	// activations counts process activations on this node, the layer-2
	// equivalent of the paper's per-node "node activity" metric (it also
	// covers intra-node messages that never cross the interconnect).
	activations int64
}

func newNodeScheduler(c *Cluster, node mesh.NodeID, cfg Config) *nodeScheduler {
	ns := &nodeScheduler{cluster: c, node: node, cfg: cfg}
	ns.procs = make([]*procState, cfg.ProcsPerNode)
	for slot := 0; slot < cfg.ProcsPerNode; slot++ {
		pid := c.PIDOf(node, slot)
		proc := cfg.Factory(pid)
		ns.procs[slot] = &procState{proc: proc}
	}
	return ns
}

// Init builds the reusable per-slot contexts (the layer-1 context pointer is
// stable for the whole run) and initialises every process slot.
func (ns *nodeScheduler) Init(ctx *simulator.Context) {
	ns.ctxs = make([]Context, len(ns.procs))
	for slot, ps := range ns.procs {
		ns.ctxs[slot] = Context{cluster: ns.cluster, sched: ns, simctx: ctx, self: ns.cluster.PIDOf(ns.node, slot)}
		ps.proc.Init(&ns.ctxs[slot])
	}
}

// Receive buffers the arriving envelope into the target slot's mailbox.
// Activation happens in Tick, bounded by the activation budget.
func (ns *nodeScheduler) Receive(ctx *simulator.Context, src mesh.NodeID, payload simulator.Payload) {
	env, ok := payload.(envelope)
	if !ok {
		panic(fmt.Sprintf("sched: node %d received non-envelope payload %T", ns.node, payload))
	}
	if env.DstSlot < 0 || env.DstSlot >= len(ns.procs) {
		panic(fmt.Sprintf("sched: node %d received envelope for bad slot %d", ns.node, env.DstSlot))
	}
	ns.procs[env.DstSlot].mailbox.Push(inboxEntry{src: env.SrcPID, payload: env.Payload})
	ns.fifoQ.Push(int32(env.DstSlot))
	ns.backlog++
}

// Tick performs the step's process activations: all currently buffered
// entries when ActivationsPerStep is zero (a snapshot, so entries enqueued
// during this tick wait for the next step), or at most that many otherwise.
func (ns *nodeScheduler) Tick(ctx *simulator.Context) {
	budget := ns.cfg.ActivationsPerStep
	if budget <= 0 {
		budget = ns.backlog
	}
	for k := 0; k < budget && ns.backlog > 0; k++ {
		slot := ns.pickSlot()
		if slot < 0 {
			break
		}
		ps := ns.procs[slot]
		entry, _ := ps.mailbox.Pop()
		ns.backlog--
		ns.activations++
		ps.proc.Receive(&ns.ctxs[slot], entry.src, entry.payload)
	}
}

// ActivationsPerNode returns the number of process activations performed by
// each physical node over the run so far.
func (c *Cluster) ActivationsPerNode() []int64 {
	out := make([]int64, len(c.nodes))
	for i, ns := range c.nodes {
		out[i] = ns.activations
	}
	return out
}

// pickSlot selects the next process slot to activate under the configured
// policy, returning -1 when no mailbox has work.
func (ns *nodeScheduler) pickSlot() int {
	switch ns.cfg.Policy {
	case FIFO:
		for {
			slot, ok := ns.fifoQ.Pop()
			if !ok {
				return -1
			}
			if ns.procs[slot].mailbox.Len() > 0 {
				return int(slot)
			}
		}
	default: // RoundRobin
		n := len(ns.procs)
		for i := 0; i < n; i++ {
			slot := (ns.cursor + i) % n
			if ns.procs[slot].mailbox.Len() > 0 {
				ns.cursor = (slot + 1) % n
				return slot
			}
		}
		return -1
	}
}

// PendingWork reports buffered mailbox entries so the simulator does not
// declare quiescence while activations remain.
func (ns *nodeScheduler) PendingWork() bool { return ns.backlog > 0 }

// Context is the per-process view of the cluster.
type Context struct {
	cluster *Cluster
	sched   *nodeScheduler
	simctx  *simulator.Context
	self    PID
}

// Self returns the process's PID.
func (c *Context) Self() PID { return c.self }

// Node returns the physical node hosting the process.
func (c *Context) Node() mesh.NodeID { return c.sched.node }

// Slot returns the process slot index within its node.
func (c *Context) Slot() int { return int(c.self) % c.cluster.procs }

// Step returns the current simulation step.
func (c *Context) Step() int64 { return c.simctx.Step() }

// Neighbours returns the PIDs adjacent to this process in the virtual
// topology: all slots of neighbouring physical nodes plus sibling slots on
// the same node. The slice must not be modified.
func (c *Context) Neighbours() []PID { return c.cluster.virtual.pidNeighbours(c.self) }

// Send delivers a payload to an adjacent PID. Messages to sibling slots on
// the same node bypass the interconnect but still cost one step of latency
// and one activation.
func (c *Context) Send(dst PID, payload any) error {
	dstNode, dstSlot := c.cluster.split(dst)
	if dstNode < 0 || dstNode >= len(c.cluster.nodes) {
		return fmt.Errorf("sched: send to out-of-range pid %d", dst)
	}
	env := envelope{SrcPID: c.self, DstSlot: dstSlot, Payload: payload}
	if mesh.NodeID(dstNode) == c.sched.node {
		if dst == c.self {
			return fmt.Errorf("sched: pid %d sent to itself", dst)
		}
		// Local delivery: enqueue directly into the sibling mailbox; it
		// will be activated on a later tick.
		ns := c.cluster.nodes[dstNode]
		ns.procs[dstSlot].mailbox.Push(inboxEntry{src: c.self, payload: payload})
		ns.fifoQ.Push(int32(dstSlot))
		ns.backlog++
		return nil
	}
	return c.simctx.Send(mesh.NodeID(dstNode), env)
}

// virtualTopology exposes the PID space as a mesh.Topology so upper layers
// need not distinguish physical cores from process slots.
type virtualTopology struct {
	phys  mesh.Topology
	procs int
	nbrs  [][]PID
	meshN [][]mesh.NodeID // cached as NodeIDs for the Topology interface
}

func newVirtualTopology(phys mesh.Topology, procs int) *virtualTopology {
	v := &virtualTopology{phys: phys, procs: procs}
	size := phys.Size() * procs
	v.nbrs = make([][]PID, size)
	v.meshN = make([][]mesh.NodeID, size)
	for pid := 0; pid < size; pid++ {
		node := pid / procs
		slot := pid % procs
		var out []PID
		// Sibling slots on the same physical node.
		for s := 0; s < procs; s++ {
			if s != slot {
				out = append(out, PID(node*procs+s))
			}
		}
		// All slots of physically adjacent nodes.
		for _, m := range phys.Neighbours(mesh.NodeID(node)) {
			for s := 0; s < procs; s++ {
				out = append(out, PID(int(m)*procs+s))
			}
		}
		v.nbrs[pid] = out
		ids := make([]mesh.NodeID, len(out))
		for i, p := range out {
			ids[i] = mesh.NodeID(p)
		}
		v.meshN[pid] = ids
	}
	return v
}

func (v *virtualTopology) pidNeighbours(p PID) []PID { return v.nbrs[int(p)] }

func (v *virtualTopology) Name() string {
	return fmt.Sprintf("%s*%d", v.phys.Name(), v.procs)
}

func (v *virtualTopology) Size() int { return v.phys.Size() * v.procs }

func (v *virtualTopology) Degree(n mesh.NodeID) int { return len(v.nbrs[int(n)]) }

func (v *virtualTopology) Neighbours(n mesh.NodeID) []mesh.NodeID { return v.meshN[int(n)] }

func (v *virtualTopology) Coords(n mesh.NodeID) []int {
	node := int(n) / v.procs
	slot := int(n) % v.procs
	return append(append([]int{}, v.phys.Coords(mesh.NodeID(node))...), slot)
}

func (v *virtualTopology) Dims() []int {
	return append(append([]int{}, v.phys.Dims()...), v.procs)
}

func (v *virtualTopology) Distance(a, b mesh.NodeID) int {
	na := mesh.NodeID(int(a) / v.procs)
	nb := mesh.NodeID(int(b) / v.procs)
	d := v.phys.Distance(na, nb)
	if d == 0 && a != b {
		return 1 // sibling slots are one (local) hop apart
	}
	return d
}
