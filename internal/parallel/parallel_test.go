package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunsEveryIndexOnce(t *testing.T) {
	for _, p := range []int{0, 1, 2, 7, 64} {
		counts := make([]atomic.Int32, 50)
		if err := ForEach(len(counts), p, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("parallelism %d: index %d ran %d times", p, i, got)
			}
		}
	}
}

func TestReturnsLowestIndexedError(t *testing.T) {
	errA := errors.New("a")
	for _, p := range []int{1, 4} {
		err := ForEach(20, p, func(i int) error {
			switch i {
			case 3:
				return errA
			case 11:
				return errors.New("b")
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("parallelism %d: err = %v, want lowest-indexed error", p, err)
		}
	}
}

func TestSerialStopsAtFirstError(t *testing.T) {
	ran := 0
	boom := errors.New("boom")
	err := ForEach(10, 1, func(i int) error {
		ran++
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || ran != 3 {
		t.Fatalf("err = %v, ran = %d; want boom after 3 calls", err, ran)
	}
}

func TestZeroJobs(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return fmt.Errorf("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestResultsIndependentOfParallelism(t *testing.T) {
	run := func(p int) []int {
		out := make([]int, 100)
		if err := ForEach(len(out), p, func(i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, p := range []int{2, 8, 100} {
		got := run(p)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("parallelism %d: out[%d] = %d, want %d", p, i, got[i], serial[i])
			}
		}
	}
}
