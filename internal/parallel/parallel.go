// Package parallel provides the worker-pool primitive behind the sweep
// engine: deterministic fan-out of independent jobs over a bounded number of
// goroutines. Results are always collected by job index, never by completion
// order, so callers observe bit-identical output at any parallelism level —
// provided the jobs themselves share no mutable state.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n), fanning the calls out over a
// pool of worker goroutines.
//
// parallelism selects the pool size; values <= 0 default to
// runtime.GOMAXPROCS(0), and the pool never exceeds n. With an effective
// pool of one the calls run inline on the caller's goroutine (no spawning),
// stopping at the first error, exactly like a plain loop.
//
// With a larger pool, a failure stops workers from claiming further jobs
// (in-flight jobs finish), and the returned error is the lowest-indexed one.
// Workers claim indices in ascending order, so every job below the lowest
// failing index has already been claimed by the time any failure is
// observed: the returned error is exactly the one the serial loop would
// have stopped at, independent of scheduling.
func ForEach(n, parallelism int, fn func(i int) error) error {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
