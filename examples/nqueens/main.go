// N-Queens example: a variable-fanout combinatorial search on the solver
// framework. Counts the solutions of the 8-queens problem on a 216-core 3D
// torus, comparing mapping algorithms and sequential grain sizes — the
// problem-specific tuning the paper's Section III-B2 motivates.
//
//	go run ./examples/nqueens
package main

import (
	"fmt"
	"log"

	hypersolve "hypersolve"
)

func main() {
	const n = 8
	want := hypersolve.QueensSeq(n)
	fmt.Printf("%d-queens has %d solutions (sequential oracle)\n\n", n, want)

	fmt.Println("mapping algorithm comparison (cutoff 3):")
	for _, m := range []struct {
		name   string
		mapper hypersolve.MapperFactory
	}{
		{"rr", hypersolve.RoundRobinMapper()},
		{"lbn", hypersolve.LeastBusyMapper()},
		{"random", hypersolve.RandomMapper()},
		{"weighted", hypersolve.WeightedMapper(1)},
	} {
		res := count(m.mapper, 3)
		status := "ok"
		if res.Value.(int) != want {
			status = "WRONG COUNT"
		}
		fmt.Printf("  %-9s %4d solutions in %4d steps, %6d messages  [%s]\n",
			m.name, res.Value, res.ComputationTime, res.Stats.TotalSent, status)
	}

	// Grain size: with a larger cutoff, deeper subtrees are solved
	// sequentially on one core — fewer messages, less parallelism.
	fmt.Println("\ngrain size sweep (least-busy-neighbour):")
	for _, cutoff := range []int{0, 2, 4, 6} {
		res := count(hypersolve.LeastBusyMapper(), cutoff)
		fmt.Printf("  cutoff %d: %4d steps, %7d messages\n",
			cutoff, res.ComputationTime, res.Stats.TotalSent)
	}
}

func count(mapper hypersolve.MapperFactory, cutoff int) hypersolve.Result {
	res, err := hypersolve.Run(hypersolve.Config{
		Topology: hypersolve.MustTorus(6, 6, 6),
		Mapper:   mapper,
		Task:     hypersolve.QueensTask(cutoff),
	}, hypersolve.QueensState{N: 8})
	if err != nil {
		log.Fatal(err)
	}
	if !res.OK {
		log.Fatal("simulation did not complete")
	}
	return res
}
