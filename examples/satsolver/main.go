// SAT solver example: the paper's evaluation workload end to end. Generates
// a satisfiable uniform random 3-SAT instance (SATLIB uf20-91 style), solves
// it with the distributed DPLL solver of the paper's Listing 4 on a 196-core
// 2D torus under both mapping algorithms, verifies the assignments, and
// shows how mapping affects the spatial unfolding (Figure 5's heatmap).
//
//	go run ./examples/satsolver
package main

import (
	"fmt"
	"log"

	hypersolve "hypersolve"
)

func main() {
	// One satisfiable uf20-91 instance from a fixed seed.
	suite, err := hypersolve.GenerateSATSuite(hypersolve.UF20Params(42))
	if err != nil {
		log.Fatal(err)
	}
	formula := suite[0]
	fmt.Printf("instance: %d variables, %d clauses (uniform random 3-SAT)\n",
		formula.NumVars, len(formula.Clauses))

	// Sequential baseline for reference.
	seq := hypersolve.SolveSAT(formula, hypersolve.SATOptions{})
	fmt.Printf("sequential DPLL: %v in %d calls\n\n", seq.Status, seq.Calls)

	for _, m := range []struct {
		name   string
		mapper hypersolve.MapperFactory
	}{
		{"round-robin (static)", hypersolve.RoundRobinMapper()},
		{"least-busy-neighbour (adaptive)", hypersolve.LeastBusyMapper()},
	} {
		machine, err := hypersolve.NewMachine(hypersolve.Config{
			Topology:     hypersolve.MustTorus(14, 14),
			Mapper:       m.mapper,
			Task:         hypersolve.SATTask(hypersolve.HeuristicFirst),
			RecordSeries: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := machine.Run(hypersolve.NewSATProblem(formula))
		if err != nil {
			log.Fatal(err)
		}
		if !res.OK {
			log.Fatal("simulation did not complete")
		}
		out := res.Value.(hypersolve.SATOutcome)
		verified := out.Status == hypersolve.StatusSAT &&
			hypersolve.VerifySAT(formula, out.Assignment)

		fmt.Printf("── %s ──\n", m.name)
		fmt.Printf("verdict: %v (verified: %v)\n", out.Status, verified)
		fmt.Printf("computation time: %d steps, messages: %d\n",
			res.ComputationTime, res.Stats.TotalSent)
		hm := machine.NodeHeatmap(res)
		fmt.Printf("node activity (load imbalance CV %.2f):\n%s\n",
			hm.ImbalanceCV(), hm.Render())
	}
}
