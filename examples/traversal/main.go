// Traversal example: the paper's Listing 1 — the raw layer-1 programming
// model. A flood traversal runs directly on the message-passing simulator
// (no mapping or recursion layers) across several topologies, and the visit
// times trace each machine's wavefront: the step at which a node is first
// visited equals its hop distance from the trigger node.
//
//	go run ./examples/traversal
package main

import (
	"fmt"
	"log"

	"hypersolve/internal/apps"
	"hypersolve/internal/mesh"
)

func main() {
	for _, spec := range []string{"torus:8x8", "grid:8x8", "hypercube:6", "ring:16"} {
		topo := mesh.MustParse(spec)
		steps, stats, err := apps.RunTraversal(topo, 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		unreached := 0
		maxDepth := int64(0)
		for _, s := range steps {
			if s < 0 {
				unreached++
			} else if s > maxDepth {
				maxDepth = s
			}
		}
		fmt.Printf("%-12s %4d nodes: flooded in %3d steps (depth %d, diameter %d), %5d messages, unreached %d\n",
			spec, topo.Size(), stats.Steps, maxDepth, mesh.Diameter(topo), stats.TotalSent, unreached)
	}

	// The wavefront on a small grid, row by row: each cell shows the step
	// at which the flood reached it (the trigger is the top-left corner).
	topo := mesh.MustGrid(8, 8)
	steps, _, err := apps.RunTraversal(topo, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwavefront on an 8x8 grid (visit step per node):")
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			fmt.Printf("%3d", steps[y*8+x])
		}
		fmt.Println()
	}
}
