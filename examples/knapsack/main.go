// Knapsack example: fork-join branch and bound with cross-layer hints. Each
// subcall carries the sub-problem's remaining item count as a mapping hint;
// the hint-aware weighted mapper uses it to even out placement (the paper's
// Section III-B3 cross-layer optimization), while the plain mappers ignore
// it. The result is validated against a dynamic-programming oracle.
//
//	go run ./examples/knapsack
package main

import (
	"fmt"
	"log"
	"math/rand"

	hypersolve "hypersolve"
)

func main() {
	// A deterministic 16-item instance.
	rng := rand.New(rand.NewSource(7))
	items := make([]hypersolve.KnapsackItem, 16)
	capacity := 0
	for i := range items {
		items[i] = hypersolve.KnapsackItem{
			Weight: 1 + rng.Intn(25),
			Value:  1 + rng.Intn(50),
		}
		capacity += items[i].Weight
	}
	capacity /= 2
	oracle := hypersolve.KnapsackDP(items, capacity)
	fmt.Printf("16 items, capacity %d; optimal value (DP oracle): %d\n\n", capacity, oracle)

	for _, m := range []struct {
		name   string
		mapper hypersolve.MapperFactory
	}{
		{"round-robin (hints ignored)", hypersolve.RoundRobinMapper()},
		{"least-busy (hints ignored)", hypersolve.LeastBusyMapper()},
		{"weighted alpha=1 (hint-aware)", hypersolve.WeightedMapper(1)},
		{"weighted alpha=4 (hint-aware)", hypersolve.WeightedMapper(4)},
	} {
		res, err := hypersolve.Run(hypersolve.Config{
			Topology: hypersolve.MustTorus(8, 8),
			Mapper:   m.mapper,
			Task:     hypersolve.KnapsackTask(4),
		}, hypersolve.NewKnapsack(items, capacity))
		if err != nil {
			log.Fatal(err)
		}
		if !res.OK {
			log.Fatal("simulation did not complete")
		}
		status := "ok"
		if res.Value.(int) != oracle {
			status = "SUBOPTIMAL"
		}
		fmt.Printf("%-30s value %d in %4d steps, %6d messages  [%s]\n",
			m.name, res.Value, res.ComputationTime, res.Stats.TotalSent, status)
	}
}
