// Quickstart: the paper's Listing 3 — sum(n) = n + sum(n-1) — written as a
// plain recursive Go function and executed across a simulated 196-core 2D
// torus, with every subcall delegated to another core by the mapping layer.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	hypersolve "hypersolve"
)

func main() {
	// The recursive function (layer 5). A Frame is the paper's yield
	// interface: Call delegates a subcall to another node, Sync collects
	// the results.
	sum := func(f *hypersolve.Frame, arg hypersolve.Value) hypersolve.Value {
		n := arg.(int)
		if n < 1 {
			return 0 // paper: yield Result(0)
		}
		total := f.CallSync(n - 1).(int) // paper: yield Call(n-1); Sync()
		return total + n                 // paper: yield Result(total + n)
	}

	// Assemble the machine: a 14x14 torus (the paper's 196-core machine)
	// with least-busy-neighbour mapping.
	res, err := hypersolve.Run(hypersolve.Config{
		Topology:     hypersolve.MustTorus(14, 14),
		Mapper:       hypersolve.LeastBusyMapper(),
		Task:         sum,
		RecordSeries: true,
	}, 100)
	if err != nil {
		log.Fatal(err)
	}
	if !res.OK {
		log.Fatal("simulation did not complete")
	}

	fmt.Printf("sum(100) = %v (expected %d)\n", res.Value, 100*101/2)
	fmt.Printf("computation time: %d simulation steps\n", res.ComputationTime)
	fmt.Printf("messages exchanged: %d\n", res.Stats.TotalSent)

	// Each of the 101 calls ran on a core chosen by the mapping layer; the
	// caller's core suspended its frame (a goroutine-backed continuation)
	// until the reply arrived.
	busy := 0
	for _, frames := range res.FramesPerProcess {
		if frames > 0 {
			busy++
		}
	}
	fmt.Printf("cores that evaluated at least one call: %d / %d\n", busy, 196)
}
