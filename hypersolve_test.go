package hypersolve_test

import (
	"testing"

	hypersolve "hypersolve"
	"hypersolve/internal/sat"
)

// These tests exercise the library exclusively through the public facade,
// the way a downstream user would.

func TestPublicAPIQuickstart(t *testing.T) {
	sum := func(f *hypersolve.Frame, arg hypersolve.Value) hypersolve.Value {
		n := arg.(int)
		if n < 1 {
			return 0
		}
		return f.CallSync(n-1).(int) + n
	}
	res, err := hypersolve.Run(hypersolve.Config{
		Topology: hypersolve.MustTorus(14, 14),
		Mapper:   hypersolve.LeastBusyMapper(),
		Task:     sum,
	}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Value.(int) != 55 {
		t.Fatalf("sum(10) = %v (ok=%v), want 55", res.Value, res.OK)
	}
}

func TestPublicAPISATPipeline(t *testing.T) {
	suite, err := hypersolve.GenerateSATSuite(hypersolve.UF20Params(5))
	if err != nil {
		t.Fatal(err)
	}
	formula := suite[0]
	res, err := hypersolve.Run(hypersolve.Config{
		Topology: hypersolve.MustTorus(8, 8),
		Mapper:   hypersolve.RoundRobinMapper(),
		Task:     hypersolve.SATTask(hypersolve.HeuristicFirst),
	}, hypersolve.NewSATProblem(formula))
	if err != nil {
		t.Fatal(err)
	}
	out := res.Value.(hypersolve.SATOutcome)
	if out.Status != hypersolve.StatusSAT {
		t.Fatalf("status = %v, want SAT (suite instances are satisfiable)", out.Status)
	}
	if !hypersolve.VerifySAT(formula, out.Assignment) {
		t.Error("assignment does not verify")
	}
	seq := hypersolve.SolveSAT(formula, hypersolve.SATOptions{Heuristic: hypersolve.HeuristicJW})
	if seq.Status != hypersolve.StatusSAT {
		t.Errorf("sequential baseline disagrees: %v", seq.Status)
	}
}

func TestPublicAPITopologyAndMapperSpecs(t *testing.T) {
	for _, spec := range []string{"torus:4x4", "torus:3x3x3", "hypercube:4", "full:16", "grid:4x4", "ring:8"} {
		topo, err := hypersolve.ParseTopology(spec)
		if err != nil {
			t.Fatalf("ParseTopology(%q): %v", spec, err)
		}
		for _, mspec := range []string{"rr", "rr-stagger", "lbn", "random", "weighted:2", "ideal"} {
			mapper, err := hypersolve.ParseMapper(mspec)
			if err != nil {
				t.Fatalf("ParseMapper(%q): %v", mspec, err)
			}
			res, err := hypersolve.Run(hypersolve.Config{
				Topology: topo,
				Mapper:   mapper,
				Task:     hypersolve.FibTask(),
			}, 8)
			if err != nil {
				t.Fatalf("%s/%s: %v", spec, mspec, err)
			}
			if !res.OK || res.Value.(int) != 21 {
				t.Errorf("%s/%s: fib(8) = %v (ok=%v), want 21", spec, mspec, res.Value, res.OK)
			}
		}
	}
}

func TestPublicAPIQueensAndKnapsack(t *testing.T) {
	res, err := hypersolve.Run(hypersolve.Config{
		Topology: hypersolve.MustTorus(5, 5),
		Mapper:   hypersolve.LeastBusyMapper(),
		Task:     hypersolve.QueensTask(2),
	}, hypersolve.QueensState{N: 6})
	if err != nil {
		t.Fatal(err)
	}
	if want := hypersolve.QueensSeq(6); !res.OK || res.Value.(int) != want {
		t.Errorf("queens(6) = %v, want %d", res.Value, want)
	}

	items := []hypersolve.KnapsackItem{
		{Weight: 4, Value: 10}, {Weight: 3, Value: 6}, {Weight: 6, Value: 11},
		{Weight: 2, Value: 5}, {Weight: 5, Value: 9},
	}
	kres, err := hypersolve.Run(hypersolve.Config{
		Topology: hypersolve.MustTorus(4, 4),
		Mapper:   hypersolve.WeightedMapper(1),
		Task:     hypersolve.KnapsackTask(1),
	}, hypersolve.NewKnapsack(items, 10))
	if err != nil {
		t.Fatal(err)
	}
	if want := hypersolve.KnapsackDP(items, 10); !kres.OK || kres.Value.(int) != want {
		t.Errorf("knapsack = %v, want %d", kres.Value, want)
	}
}

func TestPublicAPILinkExtensions(t *testing.T) {
	res, err := hypersolve.Run(hypersolve.Config{
		Topology: hypersolve.MustTorus(4, 4),
		Mapper:   hypersolve.RoundRobinMapper(),
		Task:     hypersolve.SumTask(),
		Link: hypersolve.LinkConfig{
			QueueModel:  hypersolve.LinkQueues,
			LinkLatency: 2,
			LossRate:    0.05,
			Reliable:    true,
		},
	}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Value.(int) != 78 {
		t.Fatalf("sum(12) over lossy links = %v (ok=%v), want 78", res.Value, res.OK)
	}
	if res.Stats.TotalRetransmits == 0 && res.Stats.TotalDropped > 0 {
		t.Error("drops occurred but no retransmits recorded")
	}
}

func TestPublicAPIHeatmapAndSeries(t *testing.T) {
	machine, err := hypersolve.NewMachine(hypersolve.Config{
		Topology:     hypersolve.MustTorus(6, 6),
		Mapper:       hypersolve.LeastBusyMapper(),
		Task:         hypersolve.FibTask(),
		RecordSeries: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := machine.Run(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.QueuedSeries) == 0 {
		t.Error("missing queued series")
	}
	hm := machine.NodeHeatmap(res)
	if hm.W != 6 || hm.H != 6 || hm.Total() == 0 {
		t.Errorf("heatmap %dx%d total %v", hm.W, hm.H, hm.Total())
	}
}

func TestPublicAPIDistributedAgreesWithSequentialOnUNSAT(t *testing.T) {
	// A small pigeonhole-style UNSAT instance: 3 pigeons, 2 holes.
	// Variables p_ij (pigeon i in hole j) laid out as 1..6.
	v := func(i, j int) hypersolve.Lit { return hypersolve.Lit(i*2 + j + 1) }
	var clauses []hypersolve.Clause
	for i := 0; i < 3; i++ {
		clauses = append(clauses, hypersolve.Clause{v(i, 0), v(i, 1)})
	}
	for j := 0; j < 2; j++ {
		for i := 0; i < 3; i++ {
			for k := i + 1; k < 3; k++ {
				clauses = append(clauses, hypersolve.Clause{-v(i, j), -v(k, j)})
			}
		}
	}
	formula := hypersolve.Formula{NumVars: 6, Clauses: clauses}
	if got := hypersolve.SolveSAT(formula, hypersolve.SATOptions{}).Status; got != hypersolve.StatusUNSAT {
		t.Fatalf("sequential: %v, want UNSAT", got)
	}
	res, err := hypersolve.Run(hypersolve.Config{
		Topology: hypersolve.MustTorus(5, 5),
		Mapper:   hypersolve.LeastBusyMapper(),
		Task:     hypersolve.SATTask(hypersolve.HeuristicDLIS),
	}, hypersolve.NewSATProblem(formula))
	if err != nil {
		t.Fatal(err)
	}
	if out := res.Value.(hypersolve.SATOutcome); out.Status != hypersolve.StatusUNSAT {
		t.Errorf("distributed: %v, want UNSAT", out.Status)
	}
}

func TestPublicAPISimplifyModes(t *testing.T) {
	// Both simplification modes must agree on verdicts.
	suite, err := hypersolve.GenerateSATSuite(sat.SuiteParams{
		Count: 2, NumVars: 12, NumClauses: 52, Seed: 9, RequireSAT: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range suite {
		want := hypersolve.SolveSAT(f, hypersolve.SATOptions{Simplify: sat.Fixpoint}).Status
		got := hypersolve.SolveSAT(f, hypersolve.SATOptions{Simplify: sat.OnePass}).Status
		if got != want {
			t.Errorf("instance %d: onepass %v != fixpoint %v", i, got, want)
		}
	}
}
