// Command bench runs the repository's fixed performance suite and writes a
// machine-readable JSON report, giving successive PRs a comparable
// performance trajectory. It measures six things:
//
//   - the raw layer-1 step loop (a message flood on a 32x32 torus), bare
//     and under three observer configurations — subscriber-less progress,
//     telemetry step counting, and the trace annotation hook — each
//     guarding (hard-failing) the zero-added-allocations contract of the
//     per-step hot path via a deterministic testing.AllocsPerRun reading
//     (the timed benchmarks carry ±1 op of ambient noise; see
//     floodAllocsPerRun),
//   - one full five-layer SAT solve (the hot Figure 4 point: uf50-218 on the
//     196-core 2D torus, round-robin mapping),
//   - the sweep engine's wall-clock speedup: the quick Figure 4 sweep run
//     serially and again at -parallel workers, with a bit-identity check,
//   - the solve service's throughput: 100 uf20 jobs pushed through the
//     bounded admission queue (depth 64) into the worker pool, in jobs/sec,
//   - the portfolio racing overhead: a uf20 burst run solo under each
//     headline mapping strategy and again as a portfolio race of all
//     three, recording the race's wall-clock cost relative to the best
//     solo strategy plus the winner distribution,
//   - the job store's transition throughput: submit→start→finish cycles
//     per second on the memory backend, the journaling file backend, and
//     the file backend with per-record fsync,
//   - the replication overhead: how fast a replica store applies a
//     primary's WAL feed, and the wall-clock gap between a primary dying
//     and the first read served through the router via its standby,
//   - the multi-core scaling matrix: the quick sweep and the service
//     throughput burst re-run at GOMAXPROCS 1/2/4/8, each point recording
//     its speedup over the 1-proc baseline and the parallel-scaling
//     efficiency (speedup divided by procs) — the tracked regression
//     surface for scheduler- and lock-contention regressions.
//
// Every report also records the host context the numbers were taken under:
// runtime.NumCPU() and the container's cgroup CPU quota (cpu.max), so a
// report from a 1-core CI container is never compared 1:1 against an
// 8-core workstation without noticing.
//
// It also measures the engine split introduced with the discrete-event
// simulator core: a sparse-workload comparison (unbalanced-tree and
// recursion kinds on latency-heavy meshes) runs each configuration under
// both the sweep and event engines, verifies the results are bit-identical,
// and records the event/sweep speedup.
//
// Usage:
//
//	go run ./cmd/bench                     # writes BENCH_PR10.json
//	go run ./cmd/bench -o BENCH_PR11.json  # next PR's trajectory point
//	go run ./cmd/bench -parallel 4         # explicit sweep parallelism
//	go run ./cmd/bench -matrix-smoke       # CI gate: tiny 1-vs-2-proc matrix only
//	go run ./cmd/bench -sparse-smoke       # CI gate: event-engine speedup + alloc guards
//
// -matrix-smoke runs a reduced matrix (procs 1 and 2, small workload),
// prints it, and exits non-zero if the 2-proc sweep speedup falls below
// 1.0x on a machine with at least two CPUs — a sanity floor, not a
// scaling target. -sparse-smoke runs a reduced sparse-workload comparison
// plus the flood alloc guards, and exits non-zero if any sparse point's
// event/sweep speedup falls below 2x, if the engines' results diverge, or
// if an observer configuration adds allocations to the hot path. Compare
// full reports by diffing their "benchmarks" entries (ns_per_op,
// allocs_per_op), the sweep block's "speedup", the sparse block's
// "speedup" column and the matrix's "sweep_efficiency" column.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"hypersolve/internal/cluster"
	"hypersolve/internal/experiments"
	"hypersolve/internal/mesh"
	"hypersolve/internal/sat"
	"hypersolve/internal/service"
	"hypersolve/internal/simulator"
	"hypersolve/internal/store"
	"hypersolve/internal/telemetry"
	"hypersolve/internal/tracelog"

	hypersolve "hypersolve"
)

type benchEntry struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type sweepEntry struct {
	Points         int     `json:"points"`
	ProblemsPerPt  int     `json:"problems_per_point"`
	Parallelism    int     `json:"parallelism"`
	SerialSeconds  float64 `json:"serial_seconds"`
	ParallelSecond float64 `json:"parallel_seconds"`
	Speedup        float64 `json:"speedup"`
	BitIdentical   bool    `json:"bit_identical"`
}

type serviceEntry struct {
	Jobs       int     `json:"jobs"`
	QueueDepth int     `json:"queue_depth"`
	Workers    int     `json:"workers"`
	Seconds    float64 `json:"seconds"`
	JobsPerSec float64 `json:"jobs_per_sec"`
}

// portfolioEntry measures what portfolio racing costs: the same uf20 burst
// run solo under each strategy and once as a race of all of them. Overhead
// is race wall-clock divided by the best solo strategy's — the price paid
// for not having to know the best strategy in advance.
type portfolioEntry struct {
	Jobs            int                `json:"jobs"`
	Workers         int                `json:"workers"`
	Strategies      []string           `json:"strategies"`
	SoloSeconds     map[string]float64 `json:"solo_seconds"`
	BestSolo        string             `json:"best_solo"`
	BestSoloSeconds float64            `json:"best_solo_seconds"`
	RaceSeconds     float64            `json:"race_seconds"`
	Overhead        float64            `json:"overhead"`
	// Wins is the winner distribution over the race burst's jobs.
	Wins map[string]int `json:"wins"`
}

// storeEntry is the job-store transition throughput for one backend: ops
// are full submit→start→finish cycles (three journal records on the file
// backends).
type storeEntry struct {
	Backend   string  `json:"backend"`
	Ops       int     `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// replicationEntry measures the WAL-shipping overhead added in the
// replicated-fleet work: how fast a replica store applies a primary's
// journal feed, and how long a cluster read takes to fail over to the
// standby once the primary drops off the network.
type replicationEntry struct {
	TailRecords       int     `json:"tail_records"`
	TailSeconds       float64 `json:"tail_seconds"`
	TailRecordsPerSec float64 `json:"tail_records_per_sec"`
	// FailoverFirstReadMs is the wall-clock gap between the primary's
	// listener dying and the first successful read served via the standby.
	FailoverFirstReadMs float64 `json:"failover_first_read_ms"`
}

// matrixPoint is one GOMAXPROCS setting's row in the scaling matrix.
// Speedups are relative to the matrix's own 1-proc row (the matrix uses a
// smaller workload than the headline sweep/service entries, so its
// absolute times are not comparable to theirs — only its scaling is).
type matrixPoint struct {
	Procs             int     `json:"procs"`
	SweepSeconds      float64 `json:"sweep_seconds"`
	SweepSpeedup      float64 `json:"sweep_speedup"`
	SweepEfficiency   float64 `json:"sweep_efficiency"`
	ServiceSeconds    float64 `json:"service_seconds"`
	ServiceJobsPerSec float64 `json:"service_jobs_per_sec"`
	ServiceSpeedup    float64 `json:"service_speedup"`
	ServiceEfficiency float64 `json:"service_efficiency"`
}

// sparsePoint is one sparse-workload configuration run under both engines.
// NsPerOp values are best-of-N wall-clock nanoseconds for one full solve;
// Speedup is sweep/event (>1 means the event engine is faster).
type sparsePoint struct {
	Workload     string  `json:"workload"`
	N            int     `json:"n"`
	Topology     string  `json:"topology"`
	LinkLatency  int64   `json:"link_latency"`
	Steps        int64   `json:"steps"`
	SweepNsPerOp float64 `json:"sweep_ns_per_op"`
	EventNsPerOp float64 `json:"event_ns_per_op"`
	Speedup      float64 `json:"speedup"`
	BitIdentical bool    `json:"bit_identical"`
}

type report struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUs       int    `json:"num_cpu"`
	// CPUQuota is the container's cgroup v2 cpu.max line ("max 100000"
	// means unthrottled); empty when no cgroup quota file is readable.
	CPUQuota    string           `json:"cpu_quota,omitempty"`
	Benchmarks  []benchEntry     `json:"benchmarks"`
	Sparse      []sparsePoint    `json:"sparse"`
	Sweep       sweepEntry       `json:"sweep"`
	Service     serviceEntry     `json:"service"`
	Portfolio   portfolioEntry   `json:"portfolio"`
	Store       []storeEntry     `json:"store"`
	Replication replicationEntry `json:"replication"`
	Matrix      []matrixPoint    `json:"matrix"`
}

// cpuQuota reads the container's cgroup v2 CPU limit; "" when not in a
// cgroup (or on cgroup v1 hosts, where the numbers live elsewhere).
func cpuQuota() string {
	data, err := os.ReadFile("/sys/fs/cgroup/cpu.max")
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(data))
}

func main() {
	var (
		out   = flag.String("o", "BENCH_PR10.json", "output file")
		par   = flag.Int("parallel", 0, "sweep parallelism for the speedup measurement (0 = GOMAXPROCS)")
		smoke = flag.Bool("matrix-smoke", false,
			"run only a reduced 1-vs-2-proc scaling matrix and fail if 2-proc sweep speedup < 1.0x (skipped on 1-CPU hosts)")
		sparseSmoke = flag.Bool("sparse-smoke", false,
			"run only a reduced sparse-workload engine comparison plus the flood alloc guards; fail below 2x event/sweep speedup")
	)
	flag.Parse()
	if *smoke {
		if err := runMatrixSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}
	if *sparseSmoke {
		if err := runSparseSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}
	if *par <= 0 {
		*par = runtime.GOMAXPROCS(0)
	}

	rep := report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
		CPUQuota:   cpuQuota(),
	}

	fmt.Fprintln(os.Stderr, "bench: layer-1 flood (32x32 torus)...")
	base := runBench("sim_flood_torus32x32", benchFlood)
	rep.Benchmarks = append(rep.Benchmarks, base)
	fmt.Fprintln(os.Stderr, "bench: layer-1 flood with progress observer, no subscribers...")
	observed := runBench("sim_flood_torus32x32_observed", benchFloodObserved)
	rep.Benchmarks = append(rep.Benchmarks, observed)
	fmt.Fprintln(os.Stderr, "bench: layer-1 flood with telemetry-counting observer...")
	counted := runBench("sim_flood_torus32x32_observed_telemetry", benchFloodObservedTelemetry)
	rep.Benchmarks = append(rep.Benchmarks, counted)
	fmt.Fprintln(os.Stderr, "bench: layer-1 flood with tracing-enabled observer...")
	traced := runBench("sim_flood_torus32x32_observed_traced", benchFloodObservedTraced)
	rep.Benchmarks = append(rep.Benchmarks, traced)
	// Guard the streaming-progress contract: an attached observer with no
	// subscribers must add zero allocations to the layer-1 hot path — and
	// the telemetry step counter and trace annotation hook, riding the
	// same publish cadence, must keep it that way. The guards read
	// testing.AllocsPerRun (deterministic, integer-floored — see
	// floodAllocsPerRun) rather than the noisy testing.Benchmark numbers
	// above, which stay in the report for their timings.
	fmt.Fprintln(os.Stderr, "bench: flood alloc guards (AllocsPerRun, 4 configurations)...")
	if err := floodAllocGuards(); err != nil {
		fmt.Fprintln(os.Stderr, "bench: FAIL:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "bench: sparse workloads (unbalanced + recursion, sweep vs event engine)...")
	sparse, err := benchSparse(fullSparseSpecs, 3)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	rep.Sparse = sparse
	fmt.Fprintln(os.Stderr, "bench: figure-4 point (uf50-218, 196-core 2D torus, RR)...")
	rep.Benchmarks = append(rep.Benchmarks, runBench("figure4_point_2dtorus_rr_196", benchFigure4Point))
	fmt.Fprintln(os.Stderr, "bench: sweep speedup (quick figure-4, serial vs parallel)...")
	sweep, err := benchSweep(*par)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	rep.Sweep = sweep
	fmt.Fprintln(os.Stderr, "bench: service throughput (uf20 jobs through the queue at depth 64)...")
	svcEntry, err := benchService(*par, 100)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	rep.Service = svcEntry
	fmt.Fprintln(os.Stderr, "bench: portfolio racing overhead (uf20 burst, race vs solo best)...")
	rep.Portfolio, err = benchPortfolio(*par, 40)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "bench: job-store transition throughput (memory vs file vs file+fsync)...")
	rep.Store, err = benchStore()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "bench: replication (journal-tail apply throughput, failover read latency)...")
	rep.Replication, err = benchReplication()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "bench: scaling matrix (sweep + service at GOMAXPROCS 1/2/4/8)...")
	rep.Matrix, err = runMatrix([]int{1, 2, 4, 8}, matrixLoad{sweepProblems: 3, serviceJobs: 40})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s (sparse event speedup >= %.1fx, sweep speedup %.2fx at parallelism %d, service %.1f jobs/s, portfolio overhead %.2fx vs solo %s, store %.0f/%.0f/%.0f ops/s mem/file/fsync, replica tail %.0f rec/s, failover read %.1fms, sweep efficiency@2 %.2f)\n",
		*out, minSpeedup(rep.Sparse), sweep.Speedup, sweep.Parallelism, svcEntry.JobsPerSec,
		rep.Portfolio.Overhead, rep.Portfolio.BestSolo,
		rep.Store[0].OpsPerSec, rep.Store[1].OpsPerSec, rep.Store[2].OpsPerSec,
		rep.Replication.TailRecordsPerSec, rep.Replication.FailoverFirstReadMs,
		rep.Matrix[1].SweepEfficiency)
	fmt.Print(string(data))
}

// floodAllocsPerRun measures one flood run's allocations under the given
// observer with testing.AllocsPerRun: single goroutine, GOMAXPROCS(1),
// integer-floored average over a fixed run count. The zero-added-
// allocations guards compare these readings rather than the
// testing.Benchmark numbers because the latter carry ±1 op of ambient
// per-second noise (framework and runtime allocations divided by an
// elapsed-time-dependent N), which is enough to tip an exact-equality
// guard. Here any sub-run cost — including the handful of allocations the
// telemetry and tracing hooks make on the wall-clock publish cadence —
// floors away, while a real hot-path regression (≥1 allocation per step,
// so thousands per run) is far above the floor.
func floodAllocsPerRun(obs simulator.Observer) int64 {
	topo := mesh.MustTorus(32, 32)
	return int64(testing.AllocsPerRun(100, func() {
		sim, err := simulator.New(simulator.Config{
			Topology: topo,
			Factory:  func(mesh.NodeID) simulator.Handler { return &floodHandler{} },
			Observer: obs,
		})
		if err != nil {
			panic(err)
		}
		if err := sim.Inject(0, nil); err != nil {
			panic(err)
		}
		if !sim.Run().Quiescent {
			panic("bench: flood did not quiesce")
		}
	}))
}

// floodAllocGuards runs the four AllocsPerRun readings and enforces the
// zero-added-allocations contract of the observer configurations. It runs
// on the default (event) engine, the path every serviced job now takes.
func floodAllocGuards() error {
	baseAllocs := floodAllocsPerRun(nil)
	observedAllocs := floodAllocsPerRun(service.NewProgressBroker().Observer())
	countedAllocs := floodAllocsPerRun(service.NewProgressBroker().
		CountSteps(telemetry.NewRegistry().Counter("bench_sim_steps_total", "bench-only step counter")).
		Observer())
	guardTrace := tracelog.NewTrace(tracelog.TraceContext{})
	guardSpan := guardTrace.StartSpan("run")
	tracedAllocs := floodAllocsPerRun(service.NewProgressBroker().
		CountSteps(telemetry.NewRegistry().Counter("bench_sim_steps_total", "bench-only step counter")).
		AnnotateSteps(func(step int64, queued int) {
			guardTrace.Annotate(guardSpan, fmt.Sprintf("step %d, %d queued", step, queued))
		}).Observer())
	guardTrace.EndSpan(guardSpan)
	if observedAllocs > baseAllocs {
		return fmt.Errorf("progress observer added allocations to the hot path (%d -> %d allocs/run)",
			baseAllocs, observedAllocs)
	}
	if countedAllocs > baseAllocs {
		return fmt.Errorf("telemetry step counter added allocations to the hot path (%d -> %d allocs/run)",
			baseAllocs, countedAllocs)
	}
	if tracedAllocs > baseAllocs {
		return fmt.Errorf("trace annotation hook added allocations to the hot path (%d -> %d allocs/run)",
			baseAllocs, tracedAllocs)
	}
	fmt.Fprintf(os.Stderr, "bench: flood alloc guards held (base=%d observed=%d telemetry=%d traced=%d allocs/run)\n",
		baseAllocs, observedAllocs, countedAllocs, tracedAllocs)
	return nil
}

// sparseSpec is one sparse-workload configuration for the engine
// comparison: a solve whose simulation is dominated by idle steps and idle
// slots, where the event engine's skip logic should pay off. The unbalanced
// kind is a linear dependency chain (maximally sparse); fib is a recursion
// fan-out whose frames spread thinly across a large latency-heavy mesh.
type sparseSpec struct {
	kind     string
	n        int
	topology string
	latency  int64
}

var fullSparseSpecs = []sparseSpec{
	{kind: "unbalanced", n: 40, topology: "torus:16x16", latency: 200},
	{kind: "unbalanced", n: 60, topology: "torus:16x16", latency: 50},
	{kind: "fib", n: 14, topology: "torus:24x24", latency: 400},
	{kind: "fib", n: 16, topology: "torus:20x20", latency: 300},
}

// smokeSparseSpecs is the reduced CI-gate set: one point per workload kind,
// both comfortably above the 2x floor on any host.
var smokeSparseSpecs = []sparseSpec{
	{kind: "unbalanced", n: 40, topology: "torus:16x16", latency: 200},
	{kind: "fib", n: 14, topology: "torus:24x24", latency: 400},
}

// benchSparse times each spec under both engines (best of iters runs each)
// and cross-checks that the two produce bit-identical results.
func benchSparse(specs []sparseSpec, iters int) ([]sparsePoint, error) {
	timeRun := func(s sparseSpec, engine string) (float64, hypersolve.Result, error) {
		spec := service.JobSpec{
			Kind:     s.kind,
			N:        s.n,
			Topology: s.topology,
			Seed:     7,
			Engine:   engine,
			Link:     service.LinkSpec{LinkLatency: s.latency},
		}
		cfg, arg, err := spec.Build()
		if err != nil {
			return 0, hypersolve.Result{}, err
		}
		best := 0.0
		var res hypersolve.Result
		for i := 0; i < iters; i++ {
			m, err := hypersolve.NewMachine(cfg)
			if err != nil {
				return 0, hypersolve.Result{}, err
			}
			start := time.Now()
			res, err = m.Run(arg)
			if err != nil {
				return 0, hypersolve.Result{}, err
			}
			if !res.OK {
				return 0, hypersolve.Result{}, fmt.Errorf("sparse %s/%d did not complete", s.kind, s.n)
			}
			if ns := float64(time.Since(start).Nanoseconds()); best == 0 || ns < best {
				best = ns
			}
		}
		return best, res, nil
	}
	out := make([]sparsePoint, 0, len(specs))
	for _, s := range specs {
		sweepNs, sweepRes, err := timeRun(s, "sweep")
		if err != nil {
			return nil, err
		}
		eventNs, eventRes, err := timeRun(s, "event")
		if err != nil {
			return nil, err
		}
		pt := sparsePoint{
			Workload:     s.kind,
			N:            s.n,
			Topology:     s.topology,
			LinkLatency:  s.latency,
			Steps:        eventRes.Stats.Steps,
			SweepNsPerOp: sweepNs,
			EventNsPerOp: eventNs,
			Speedup:      sweepNs / eventNs,
			BitIdentical: reflect.DeepEqual(sweepRes, eventRes),
		}
		if !pt.BitIdentical {
			return nil, fmt.Errorf("sparse %s/%d on %s: engines diverge (sweep %+v, event %+v)",
				s.kind, s.n, s.topology, sweepRes.Stats, eventRes.Stats)
		}
		fmt.Fprintf(os.Stderr, "bench:   %s n=%d %s lat=%d: sweep %.1fms event %.1fms speedup %.1fx\n",
			pt.Workload, pt.N, pt.Topology, pt.LinkLatency,
			pt.SweepNsPerOp/1e6, pt.EventNsPerOp/1e6, pt.Speedup)
		out = append(out, pt)
	}
	return out, nil
}

// runSparseSmoke is the CI gate for the event engine: the reduced sparse
// set must show at least a 2x event/sweep speedup per point (the engine's
// reason to exist on sparse shapes), results must be bit-identical, and the
// flood alloc guards must still hold on the event path.
func runSparseSmoke() error {
	fmt.Fprintln(os.Stderr, "bench: sparse smoke (unbalanced + recursion, sweep vs event)...")
	pts, err := benchSparse(smokeSparseSpecs, 2)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(pts, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	for _, pt := range pts {
		if pt.Speedup < 2.0 {
			return fmt.Errorf("sparse smoke: %s n=%d speedup %.2fx is below the 2x floor",
				pt.Workload, pt.N, pt.Speedup)
		}
	}
	fmt.Fprintln(os.Stderr, "bench: sparse smoke: flood alloc guards (AllocsPerRun, 4 configurations)...")
	if err := floodAllocGuards(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: sparse smoke ok (min speedup %.1fx)\n", minSpeedup(pts))
	return nil
}

func minSpeedup(pts []sparsePoint) float64 {
	min := pts[0].Speedup
	for _, pt := range pts[1:] {
		if pt.Speedup < min {
			min = pt.Speedup
		}
	}
	return min
}

func runBench(name string, fn func(b *testing.B)) benchEntry {
	r := testing.Benchmark(fn)
	e := benchEntry{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if len(r.Extra) > 0 {
		e.Metrics = make(map[string]float64, len(r.Extra))
		for k, v := range r.Extra {
			e.Metrics[k] = v
		}
	}
	return e
}

// floodHandler rebroadcasts the first message it receives to every
// neighbour: a full-mesh flood that exercises the raw step loop with zero
// application work.
type floodHandler struct{ seen bool }

func (h *floodHandler) Init(*simulator.Context) {}

func (h *floodHandler) Receive(ctx *simulator.Context, _ mesh.NodeID, _ simulator.Payload) {
	if h.seen {
		return
	}
	h.seen = true
	for _, nb := range ctx.Neighbours() {
		if err := ctx.Send(nb, nil); err != nil {
			panic(err)
		}
	}
}

func benchFlood(b *testing.B) {
	topo := mesh.MustTorus(32, 32)
	b.ReportAllocs()
	var steps int64
	for i := 0; i < b.N; i++ {
		sim, err := simulator.New(simulator.Config{
			Topology: topo,
			Factory:  func(mesh.NodeID) simulator.Handler { return &floodHandler{} },
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.Inject(0, nil); err != nil {
			b.Fatal(err)
		}
		stats := sim.Run()
		if !stats.Quiescent {
			b.Fatal("flood did not quiesce")
		}
		steps = stats.Steps
	}
	b.ReportMetric(float64(steps), "steps")
}

// benchFloodObserved is benchFlood with a progress observer attached and no
// subscriber — the configuration every serviced job now runs under when
// nobody is watching. The broker and observer are built once, outside the
// measured iterations, so allocs/op isolates the per-step cost, which must
// be zero.
func benchFloodObserved(b *testing.B) {
	topo := mesh.MustTorus(32, 32)
	obs := service.NewProgressBroker().Observer()
	b.ReportAllocs()
	var steps int64
	for i := 0; i < b.N; i++ {
		sim, err := simulator.New(simulator.Config{
			Topology: topo,
			Factory:  func(mesh.NodeID) simulator.Handler { return &floodHandler{} },
			Observer: obs,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.Inject(0, nil); err != nil {
			b.Fatal(err)
		}
		stats := sim.Run()
		if !stats.Quiescent {
			b.Fatal("flood did not quiesce")
		}
		steps = stats.Steps
	}
	b.ReportMetric(float64(steps), "steps")
}

// benchFloodObservedTelemetry is benchFloodObserved with a telemetry step
// counter attached to the broker — the exact configuration a serviced job
// runs under now that the fleet counts steps. The counter is fed on the
// observer's publish cadence only, so it must leave allocs/op untouched.
func benchFloodObservedTelemetry(b *testing.B) {
	topo := mesh.MustTorus(32, 32)
	steps := telemetry.NewRegistry().Counter("bench_sim_steps_total", "bench-only step counter")
	obs := service.NewProgressBroker().CountSteps(steps).Observer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim, err := simulator.New(simulator.Config{
			Topology: topo,
			Factory:  func(mesh.NodeID) simulator.Handler { return &floodHandler{} },
			Observer: obs,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.Inject(0, nil); err != nil {
			b.Fatal(err)
		}
		stats := sim.Run()
		if !stats.Quiescent {
			b.Fatal("flood did not quiesce")
		}
	}
	b.ReportMetric(float64(steps.Value()), "steps_counted")
}

// benchFloodObservedTraced is benchFloodObservedTelemetry plus the trace
// annotation hook — the full configuration a serviced job runs under with
// tracing enabled. Annotations are recorded only on the observer's
// throttled publish cadence, so the per-step hot path must still show
// zero added allocations over the bare flood.
func benchFloodObservedTraced(b *testing.B) {
	topo := mesh.MustTorus(32, 32)
	steps := telemetry.NewRegistry().Counter("bench_sim_steps_total", "bench-only step counter")
	tr := tracelog.NewTrace(tracelog.TraceContext{})
	span := tr.StartSpan("run")
	obs := service.NewProgressBroker().CountSteps(steps).
		AnnotateSteps(func(step int64, queued int) {
			tr.Annotate(span, fmt.Sprintf("step %d, %d queued", step, queued))
		}).Observer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim, err := simulator.New(simulator.Config{
			Topology: topo,
			Factory:  func(mesh.NodeID) simulator.Handler { return &floodHandler{} },
			Observer: obs,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.Inject(0, nil); err != nil {
			b.Fatal(err)
		}
		stats := sim.Run()
		if !stats.Quiescent {
			b.Fatal("flood did not quiesce")
		}
	}
	tr.EndSpan(span)
}

func benchFigure4Point(b *testing.B) {
	// The scalability workload family (uf50-218, one instance); the same
	// generator parameters as experiments.DefaultWorkload and the root
	// BenchmarkFigure4.
	suite, err := hypersolve.GenerateSATSuite(sat.SuiteParams{
		Count: 1, NumVars: 50, NumClauses: 218, Seed: 11, RequireSAT: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	f := suite[0]
	b.ReportAllocs()
	var steps int64
	for i := 0; i < b.N; i++ {
		res, err := hypersolve.Run(hypersolve.Config{
			Topology: hypersolve.MustTorus(14, 14),
			Mapper:   hypersolve.RoundRobinMapper(),
			Task:     hypersolve.SATTask(hypersolve.HeuristicFirst),
			Seed:     int64(i),
		}, hypersolve.NewSATProblem(f))
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK {
			b.Fatal("solve did not complete")
		}
		steps = res.ComputationTime
	}
	b.ReportMetric(float64(steps), "steps")
}

func benchSweep(par int) (sweepEntry, error) {
	w, err := experiments.SmallWorkload(1, 5)
	if err != nil {
		return sweepEntry{}, err
	}
	mkCfg := func(parallelism int) experiments.Figure4Config {
		return experiments.Figure4Config{
			Workload: w,
			Series: experiments.DefaultFigure4Series(
				[]int{16, 64, 196},
				[]int{27, 125},
				[]int{16, 196},
			),
			Seed:        1,
			Parallelism: parallelism,
		}
	}
	start := time.Now()
	serialPts, err := experiments.Figure4(mkCfg(1))
	if err != nil {
		return sweepEntry{}, err
	}
	serialDur := time.Since(start)

	start = time.Now()
	parPts, err := experiments.Figure4(mkCfg(par))
	if err != nil {
		return sweepEntry{}, err
	}
	parDur := time.Since(start)

	return sweepEntry{
		Points:         len(serialPts),
		ProblemsPerPt:  len(w.Problems),
		Parallelism:    par,
		SerialSeconds:  serialDur.Seconds(),
		ParallelSecond: parDur.Seconds(),
		Speedup:        serialDur.Seconds() / parDur.Seconds(),
		BitIdentical:   reflect.DeepEqual(serialPts, parPts),
	}, nil
}

// matrixLoad sizes one scaling-matrix cell: the sweep's problem count per
// point and the service burst's job count. The full report uses a medium
// load; -matrix-smoke a minimal one.
type matrixLoad struct {
	sweepProblems int
	serviceJobs   int
}

// sweepOnce runs a reduced figure-4 sweep at the given engine parallelism
// and returns its wall-clock seconds — the matrix's unit of work.
func sweepOnce(problems, parallelism int) (float64, error) {
	w, err := experiments.SmallWorkload(1, problems)
	if err != nil {
		return 0, err
	}
	cfg := experiments.Figure4Config{
		Workload:    w,
		Series:      experiments.DefaultFigure4Series([]int{16, 64}, []int{27}, []int{16}),
		Seed:        1,
		Parallelism: parallelism,
	}
	start := time.Now()
	if _, err := experiments.Figure4(cfg); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

// runMatrix measures the sweep engine and the service burst at each
// GOMAXPROCS setting, then normalises every row against the 1-proc row:
// speedup = t1/tN, efficiency = speedup/procs. GOMAXPROCS is restored on
// return. The engine/pool parallelism knobs track the procs value, so each
// row measures the whole stack (runtime scheduler included) at that width.
func runMatrix(procs []int, load matrixLoad) ([]matrixPoint, error) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	out := make([]matrixPoint, 0, len(procs))
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		sweepSec, err := sweepOnce(load.sweepProblems, p)
		if err != nil {
			return nil, err
		}
		svc, err := benchService(p, load.serviceJobs)
		if err != nil {
			return nil, err
		}
		out = append(out, matrixPoint{
			Procs:             p,
			SweepSeconds:      sweepSec,
			ServiceSeconds:    svc.Seconds,
			ServiceJobsPerSec: svc.JobsPerSec,
		})
	}
	base := out[0]
	for i := range out {
		pt := &out[i]
		pt.SweepSpeedup = base.SweepSeconds / pt.SweepSeconds
		pt.SweepEfficiency = pt.SweepSpeedup / float64(pt.Procs)
		pt.ServiceSpeedup = base.ServiceSeconds / pt.ServiceSeconds
		pt.ServiceEfficiency = pt.ServiceSpeedup / float64(pt.Procs)
		fmt.Fprintf(os.Stderr, "bench:   procs=%d sweep %.2fs (%.2fx, eff %.2f) service %.1f jobs/s (%.2fx, eff %.2f)\n",
			pt.Procs, pt.SweepSeconds, pt.SweepSpeedup, pt.SweepEfficiency,
			pt.ServiceJobsPerSec, pt.ServiceSpeedup, pt.ServiceEfficiency)
	}
	return out, nil
}

// runMatrixSmoke is the CI gate: a minimal 1-vs-2-proc matrix whose only
// assertion is that two procs are not slower than one. Anything below 1.0x
// on a multi-core host means parallelism went actively negative — a lock
// or scheduler regression, not noise. Single-CPU hosts skip the check
// (there is no second core to scale onto) but still print the matrix.
func runMatrixSmoke() error {
	fmt.Fprintln(os.Stderr, "bench: matrix smoke (procs 1 vs 2, reduced load)...")
	pts, err := runMatrix([]int{1, 2}, matrixLoad{sweepProblems: 2, serviceJobs: 12})
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(pts, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	if runtime.NumCPU() < 2 {
		fmt.Fprintln(os.Stderr, "bench: matrix smoke: single-CPU host, scaling floor check skipped")
		return nil
	}
	if sp := pts[1].SweepSpeedup; sp < 1.0 {
		return fmt.Errorf("matrix smoke: 2-proc sweep speedup %.2fx is below the 1.0x sanity floor", sp)
	}
	fmt.Fprintf(os.Stderr, "bench: matrix smoke ok (2-proc sweep speedup %.2fx)\n", pts[1].SweepSpeedup)
	return nil
}

// benchService measures the solve service's end-to-end throughput: a burst
// of uf20 SAT jobs pushed through the bounded admission queue (depth 64) and
// a worker pool, counting jobs per second from first submit to last
// completion. Submissions bounced by a full queue are retried, so the
// figure includes admission backpressure, store bookkeeping and result
// serialisation overhead, not just solve time.
func benchService(workers, jobs int) (serviceEntry, error) {
	const depth = 64
	suite, err := hypersolve.GenerateSATSuite(sat.UF20Params(23))
	if err != nil {
		return serviceEntry{}, err
	}
	specs := make([]hypersolve.JobSpec, jobs)
	for i := range specs {
		var cnf strings.Builder
		if err := sat.WriteDIMACS(&cnf, suite[i%len(suite)]); err != nil {
			return serviceEntry{}, err
		}
		specs[i] = hypersolve.JobSpec{
			Kind:     "sat",
			CNF:      cnf.String(),
			Topology: "torus:8x8",
			Mapper:   "lbn",
			Seed:     int64(i),
		}
	}

	svc := hypersolve.NewSolveService(hypersolve.SolveServiceConfig{QueueDepth: depth, Workers: workers})
	defer svc.Close()
	start := time.Now()
	ids := make([]int64, 0, jobs)
	for _, spec := range specs {
		for {
			job, err := svc.Submit(spec)
			if err == nil {
				ids = append(ids, job.ID.Seq)
				break
			}
			if !errors.Is(err, service.ErrQueueFull) {
				return serviceEntry{}, err
			}
			time.Sleep(200 * time.Microsecond) // backpressure: retry
		}
	}
	for _, id := range ids {
		for {
			j, ok := svc.Get(id)
			if !ok {
				return serviceEntry{}, fmt.Errorf("bench: job %d vanished", id)
			}
			if j.State.Terminal() {
				if j.State != service.StateDone {
					return serviceEntry{}, fmt.Errorf("bench: job %d ended %s: %s", id, j.State, j.Error)
				}
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	elapsed := time.Since(start)
	return serviceEntry{
		Jobs:       jobs,
		QueueDepth: depth,
		Workers:    workers,
		Seconds:    elapsed.Seconds(),
		JobsPerSec: float64(jobs) / elapsed.Seconds(),
	}, nil
}

// benchPortfolio measures the cost of portfolio racing on a uf20 burst:
// the burst runs solo under each headline strategy, then once more racing
// all of them per job. The race burns up to len(strategies) workers per
// job, so its wall clock is expected to sit above the best solo strategy's
// — Overhead records by how much, Wins which strategies actually won.
func benchPortfolio(workers, jobs int) (portfolioEntry, error) {
	strategies := []string{"rr", "lbn", "weighted"}
	const depth = 64
	suite, err := hypersolve.GenerateSATSuite(sat.UF20Params(29))
	if err != nil {
		return portfolioEntry{}, err
	}
	mkSpecs := func(mapper string, portfolio []string) ([]hypersolve.JobSpec, error) {
		specs := make([]hypersolve.JobSpec, jobs)
		for i := range specs {
			var cnf strings.Builder
			if err := sat.WriteDIMACS(&cnf, suite[i%len(suite)]); err != nil {
				return nil, err
			}
			specs[i] = hypersolve.JobSpec{
				Kind:      "sat",
				CNF:       cnf.String(),
				Topology:  "torus:8x8",
				Mapper:    mapper,
				Portfolio: portfolio,
				Seed:      int64(i),
			}
		}
		return specs, nil
	}
	// runBurst pushes the burst through a fresh service and returns its
	// wall-clock seconds plus the winner distribution (empty for solo runs).
	runBurst := func(specs []hypersolve.JobSpec) (float64, map[string]int, error) {
		svc := hypersolve.NewSolveService(hypersolve.SolveServiceConfig{QueueDepth: depth, Workers: workers})
		defer svc.Close()
		start := time.Now()
		ids := make([]int64, 0, len(specs))
		for _, spec := range specs {
			for {
				job, err := svc.Submit(spec)
				if err == nil {
					ids = append(ids, job.ID.Seq)
					break
				}
				if !errors.Is(err, service.ErrQueueFull) {
					return 0, nil, err
				}
				time.Sleep(200 * time.Microsecond) // backpressure: retry
			}
		}
		wins := make(map[string]int)
		for _, id := range ids {
			for {
				j, ok := svc.Get(id)
				if !ok {
					return 0, nil, fmt.Errorf("bench: job %d vanished", id)
				}
				if j.State.Terminal() {
					if j.State != service.StateDone {
						return 0, nil, fmt.Errorf("bench: job %d ended %s: %s", id, j.State, j.Error)
					}
					if j.Winner != "" {
						wins[j.Winner]++
					}
					break
				}
				time.Sleep(time.Millisecond)
			}
		}
		return time.Since(start).Seconds(), wins, nil
	}

	e := portfolioEntry{
		Jobs:        jobs,
		Workers:     workers,
		Strategies:  strategies,
		SoloSeconds: make(map[string]float64, len(strategies)),
	}
	for _, strat := range strategies {
		specs, err := mkSpecs(strat, nil)
		if err != nil {
			return e, err
		}
		secs, _, err := runBurst(specs)
		if err != nil {
			return e, err
		}
		e.SoloSeconds[strat] = secs
		if e.BestSolo == "" || secs < e.BestSoloSeconds {
			e.BestSolo, e.BestSoloSeconds = strat, secs
		}
		fmt.Fprintf(os.Stderr, "bench:   solo %-10s %.2fs\n", strat, secs)
	}
	specs, err := mkSpecs("", strategies)
	if err != nil {
		return e, err
	}
	raceSecs, wins, err := runBurst(specs)
	if err != nil {
		return e, err
	}
	e.RaceSeconds = raceSecs
	e.Overhead = raceSecs / e.BestSoloSeconds
	e.Wins = wins
	fmt.Fprintf(os.Stderr, "bench:   race %.2fs (%.2fx vs solo %s), wins %v\n",
		raceSecs, e.Overhead, e.BestSolo, wins)
	return e, nil
}

// benchStore measures raw job-store transition throughput — what the
// durable backend costs relative to the in-memory map, with and without
// per-record fsync. One op is a full submit→start→finish cycle with a
// representative ~200-byte result payload; the fsync backend runs fewer
// ops because each cycle forces three disk syncs.
func benchStore() ([]storeEntry, error) {
	spec, err := json.Marshal(hypersolve.JobSpec{Kind: "sum", N: 20, Topology: "ring:4", Seed: 3})
	if err != nil {
		return nil, err
	}
	result := json.RawMessage(`{"ok":true,"value":210,"computation_time":1201,"performance":0.17,` +
		`"stats":{"steps":1201,"delivered":40,"sent":40,"dropped":0,"retransmits":0,"max_queue":1,"quiescent":true}}`)

	run := func(st store.Store, ops int) (storeEntry, error) {
		defer st.Close()
		start := time.Now()
		for i := 0; i < ops; i++ {
			j, err := st.Submit(spec, time.Now().UTC())
			if err != nil {
				return storeEntry{}, err
			}
			if err := st.Start(j.ID, time.Now().UTC()); err != nil {
				return storeEntry{}, err
			}
			if _, err := st.Finish(j.ID, store.StateDone, time.Now().UTC(), "", result); err != nil {
				return storeEntry{}, err
			}
		}
		elapsed := time.Since(start)
		return storeEntry{Ops: ops, Seconds: elapsed.Seconds(),
			OpsPerSec: float64(ops) / elapsed.Seconds()}, nil
	}

	var out []storeEntry
	e, err := run(store.NewMemory(0), 5000)
	if err != nil {
		return nil, err
	}
	e.Backend = "memory"
	out = append(out, e)

	for _, cfg := range []struct {
		name  string
		fsync bool
		ops   int
	}{
		{"file", false, 5000},
		{"file_fsync", true, 200},
	} {
		dir, err := os.MkdirTemp("", "hypersolve-bench-store")
		if err != nil {
			return nil, err
		}
		st, err := store.Open(store.FileConfig{Dir: dir, Fsync: cfg.fsync})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		e, err := run(st, cfg.ops)
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		e.Backend = cfg.name
		out = append(out, e)
	}
	return out, nil
}

// benchReplication measures the WAL-shipping paths added with the
// replicated fleet. Apply throughput is store-level (no HTTP in the way): a
// replica ApplyFeeds a primary's 9000-record journal page by page, which is
// the work a standby's tail loop does per pull. Failover latency is end to
// end: a primary/standby node pair behind a router with aggressive probe
// timings, the primary's listener closed, and the clock stopped at the
// first read the router serves from the standby.
func benchReplication() (replicationEntry, error) {
	var e replicationEntry
	spec, err := json.Marshal(hypersolve.JobSpec{Kind: "sum", N: 20, Topology: "ring:4", Seed: 3})
	if err != nil {
		return e, err
	}
	result := json.RawMessage(`{"ok":true,"value":210}`)

	// Journal-tail apply throughput. SnapshotEvery is raised past the
	// record count so the feed serves records, not a snapshot bootstrap —
	// the steady-state tail path is what a standby runs forever.
	primDir, err := os.MkdirTemp("", "hypersolve-bench-repl-prim")
	if err != nil {
		return e, err
	}
	defer os.RemoveAll(primDir)
	replDir, err := os.MkdirTemp("", "hypersolve-bench-repl-repl")
	if err != nil {
		return e, err
	}
	defer os.RemoveAll(replDir)
	prim, err := store.Open(store.FileConfig{Dir: primDir, SnapshotEvery: 20000})
	if err != nil {
		return e, err
	}
	defer prim.Close()
	const cycles = 3000 // 9000 journal records
	for i := 0; i < cycles; i++ {
		j, err := prim.Submit(spec, time.Now().UTC())
		if err != nil {
			return e, err
		}
		if err := prim.Start(j.ID, time.Now().UTC()); err != nil {
			return e, err
		}
		if _, err := prim.Finish(j.ID, store.StateDone, time.Now().UTC(), "", result); err != nil {
			return e, err
		}
	}
	repl, err := store.Open(store.FileConfig{Dir: replDir, Replica: true, SnapshotEvery: 20000})
	if err != nil {
		return e, err
	}
	defer repl.Close()
	_, srcLSN := prim.ReplicationState()
	start := time.Now()
	for from := int64(1); ; {
		page, err := prim.Feed(from, 0)
		if err != nil {
			return e, err
		}
		res, err := repl.ApplyFeed(page)
		if err != nil {
			return e, err
		}
		e.TailRecords += res.Applied
		if _, lsn := repl.ReplicationState(); lsn >= srcLSN {
			break
		} else {
			from = lsn + 1
		}
	}
	elapsed := time.Since(start)
	e.TailSeconds = elapsed.Seconds()
	e.TailRecordsPerSec = float64(e.TailRecords) / elapsed.Seconds()

	// Failover-to-first-successful-read latency through a live router.
	pdir, err := os.MkdirTemp("", "hypersolve-bench-failover-p")
	if err != nil {
		return e, err
	}
	defer os.RemoveAll(pdir)
	sdir, err := os.MkdirTemp("", "hypersolve-bench-failover-s")
	if err != nil {
		return e, err
	}
	defer os.RemoveAll(sdir)
	primary, err := service.NewNode(service.NodeConfig{
		Dir:     pdir,
		Service: service.Config{QueueDepth: 16, Workers: 2},
	})
	if err != nil {
		return e, err
	}
	defer primary.Close()
	psrv := httptest.NewServer(primary.Handler())
	standby, err := service.NewNode(service.NodeConfig{
		Dir:       sdir,
		Service:   service.Config{QueueDepth: 16, Workers: 2},
		Follow:    psrv.URL,
		PullEvery: 5 * time.Millisecond,
	})
	if err != nil {
		psrv.Close()
		return e, err
	}
	defer standby.Close()
	ssrv := httptest.NewServer(standby.Handler())
	defer ssrv.Close()
	r, err := cluster.New(cluster.Config{
		Backends:     []string{psrv.URL},
		Standbys:     []string{ssrv.URL},
		ProbeEvery:   25 * time.Millisecond,
		ProbeTimeout: 500 * time.Millisecond,
		FailAfter:    2,
		PromoteAfter: 50 * time.Millisecond,
	})
	if err != nil {
		psrv.Close()
		return e, err
	}
	defer r.Close()
	rsrv := httptest.NewServer(cluster.NewHandler(r))
	defer rsrv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	client := &service.Client{Base: rsrv.URL}
	job, err := client.Submit(ctx, hypersolve.JobSpec{Kind: "sum", N: 20, Topology: "ring:4", Seed: 7})
	if err != nil {
		psrv.Close()
		return e, err
	}
	if _, err := client.Wait(ctx, job.ID, 5*time.Millisecond); err != nil {
		psrv.Close()
		return e, err
	}
	sc := &service.Client{Base: ssrv.URL}
	for {
		st, err := sc.ReplicationStatus(ctx)
		if err == nil && st.Lag == 0 && st.LSN > 0 {
			break
		}
		if ctx.Err() != nil {
			psrv.Close()
			return e, fmt.Errorf("standby never caught up: %w", ctx.Err())
		}
		time.Sleep(5 * time.Millisecond)
	}

	psrv.Close() // the primary drops off the network
	t0 := time.Now()
	for {
		if _, err := client.Get(ctx, job.ID); err == nil {
			break
		}
		if ctx.Err() != nil {
			return e, fmt.Errorf("read never failed over: %w", ctx.Err())
		}
		time.Sleep(2 * time.Millisecond)
	}
	e.FailoverFirstReadMs = float64(time.Since(t0).Microseconds()) / 1000
	return e, nil
}
