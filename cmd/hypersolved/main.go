// Command hypersolved runs the solve service in one of three modes.
//
// Serve mode (the default) is a long-lived HTTP JSON server that accepts
// solve jobs, queues them behind a bounded admission queue, and executes
// them on a pool of simulated hyperspace machines:
//
//	hypersolved -addr :8080 -queue 64 -workers 4
//	hypersolved -addr :8080 -data-dir /var/lib/hypersolve   # durable job store
//
// Standby mode pairs a durable daemon with a primary: the node tails the
// primary's write-ahead journal over HTTP, applies every record to its own
// replica store, and serves read-only copies of the primary's jobs. A
// standby becomes a primary on POST /v1/replication/promote — the cluster
// router drives that automatically during failover:
//
//	hypersolved -addr :8081 -data-dir /var/lib/hs-b -follow http://127.0.0.1:8080
//
// Router mode fronts several serve-mode daemons as one sharded cluster:
// submissions are placed on a consistent-hash ring across the backends, job
// IDs carry their shard ("s2-17"), listings fan out to every backend and
// merge, and dead backends degrade the cluster instead of failing it. With
// -standbys, each backend pairs with a replica; the router fails reads over
// to the standby the moment the primary stops answering and promotes it
// after a grace period. Membership changes at runtime via
// POST /v1/cluster/backends or by editing -route-config and sending SIGHUP:
//
//	hypersolved -addr :8090 -route http://127.0.0.1:8081,http://127.0.0.1:8082 \
//	    -standbys http://127.0.0.1:8083,http://127.0.0.1:8084
//	hypersolved -addr :8090 -route-config /etc/hypersolve/members.json
//
// API (see docs/API.md, internal/service and internal/cluster):
//
//	POST   /v1/jobs                 submit a JobSpec  (429 when the queue is full)
//	GET    /v1/jobs                 list jobs (?state=done,failed filters); fanned
//	                                out and merged in router mode
//	GET    /v1/jobs/{id}            job status + result; routed by shard in router mode
//	GET    /v1/jobs/{id}/trace      the job's span timeline (admission → queue → run …)
//	DELETE /v1/jobs/{id}            cancel a queued or running job
//	GET    /healthz                 liveness + queue occupancy + headline gauges
//	GET    /metrics                 Prometheus text scrape (all modes; the router
//	                                merges every backend's scrape, relabeled by shard)
//	GET    /v1/replication/journal  WAL feed for standbys (durable nodes only)
//	GET    /v1/replication/status   role, epoch, LSN, replication lag
//	GET    /v1/cluster              per-shard health report (router mode only)
//	POST   /v1/cluster/backends     add/drain/undrain/remove a shard (router mode only)
//
// Example:
//
//	curl -s localhost:8080/v1/jobs -d '{"kind":"queens","n":6,"topology":"torus:8x8","mapper":"lbn"}'
//	curl -s localhost:8080/v1/jobs/1
//
// With -data-dir, every job transition is journaled (internal/store): a
// crashed or SIGKILLed daemon restarted on the same directory recovers all
// terminal job history and re-runs whatever was queued or running —
// spec+seed determinism makes the re-run bit-identical. -fsync trades
// throughput for power-loss durability; -snapshot-every bounds journal
// growth between compactions (snapshots are written off the transition
// path by a background compactor). A router holds no job state of its own:
// durability lives in the backends' data directories, so -data-dir and
// -route are mutually exclusive.
//
// The -route-config file is a JSON array of members, reloaded on SIGHUP:
//
//	[
//	  {"primary": "http://127.0.0.1:8081", "standby": "http://127.0.0.1:8083"},
//	  {"primary": "http://127.0.0.1:8082"}
//	]
//
// A reload adds unknown primaries as new shards and drains shards whose
// endpoints left the file; it never removes a shard outright (drain first,
// then remove via the API once its jobs are no longer needed).
//
// Observability: every request is access-logged through the structured
// logger (-log-level debug|info|warn|error, -log-format text|json), gets
// an X-Request-Id echoed on the response, and carries any inbound W3C
// traceparent into the trace the service records per job (hyperctl
// trace <id> renders it). -pprof-addr exposes net/http/pprof on a
// separate private listener; -version prints the stamped build identity
// (set at link time via -ldflags "-X hypersolve/internal/version.Version=...").
//
// The server shuts down gracefully on SIGINT/SIGTERM: the listener closes,
// in-flight HTTP requests finish, queued jobs are cancelled and running
// solves are interrupted at the next cancellation slice. A graceful
// shutdown is a deliberate drain — outstanding jobs are recorded as
// cancelled; only a crash leaves them to be re-queued at next start.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hypersolve/internal/cluster"
	"hypersolve/internal/service"
	"hypersolve/internal/store"
	"hypersolve/internal/tracelog"
	"hypersolve/internal/version"
)

// logger is the process-wide structured logger, built from -log-level and
// -log-format before any mode starts. Every subsystem (HTTP access log,
// replication node, cluster router) derives from it, so one pair of flags
// governs the whole process.
var logger *tracelog.Logger

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		queue         = flag.Int("queue", 64, "admission queue depth (jobs beyond it are rejected with 429)")
		workers       = flag.Int("workers", 0, "solve workers (0 = GOMAXPROCS)")
		dataDir       = flag.String("data-dir", "", "durable job store directory (empty = in-memory; history dies with the process)")
		fsync         = flag.Bool("fsync", false, "fsync the journal after every record (survives power loss, much slower)")
		snapshotEvery = flag.Int("snapshot-every", store.DefaultSnapshotEvery,
			"journal records between snapshot compactions")
		follow = flag.String("follow", "",
			"standby mode: tail this primary's replication feed (requires -data-dir)")
		pullEvery = flag.Duration("pull-every", 250*time.Millisecond,
			"standby mode: feed tail cadence once caught up (a lagging standby pulls continuously)")
		route = flag.String("route", "",
			"router mode: comma-separated backend base URLs (e.g. http://b1:8080,http://b2:8080); shard i is backend i+1")
		standbys = flag.String("standbys", "",
			"router mode: comma-separated standby URLs paired positionally with -route (empty slots allowed)")
		routeConfig = flag.String("route-config", "",
			"router mode: JSON membership file ([{\"primary\": ..., \"standby\": ...}, ...]); reloaded on SIGHUP")
		probeEvery = flag.Duration("probe-every", 2*time.Second,
			"router mode: cadence of the backend health re-probe loop")
		failAfter = flag.Int("fail-after", 3,
			"router mode: consecutive failed probes before a backend counts as down")
		promoteAfter = flag.Duration("promote-after", 10*time.Second,
			"router mode: grace period a primary stays down before its standby is promoted")
		submitTimeout = flag.Duration("submit-timeout", 15*time.Second,
			"router mode: per-backend bound on one submission attempt during the ring walk")
		logLevel = flag.String("log-level", "info",
			"minimum log severity: debug, info, warn or error")
		logFormat = flag.String("log-format", "text",
			"log line encoding: text (human) or json (one object per line)")
		pprofAddr = flag.String("pprof-addr", "",
			"serve net/http/pprof on this private address (empty = disabled); keep it off the public listener")
		showVersion = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println("hypersolved", version.String())
		return
	}
	lvl, err := tracelog.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hypersolved:", err)
		os.Exit(2)
	}
	format, err := tracelog.ParseFormat(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hypersolved:", err)
		os.Exit(2)
	}
	logger = tracelog.New(os.Stderr, lvl, format)
	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}
	if *route != "" || *routeConfig != "" {
		err = runRouter(*addr, routerOptions{
			route:         *route,
			standbys:      *standbys,
			configFile:    *routeConfig,
			probeEvery:    *probeEvery,
			failAfter:     *failAfter,
			promoteAfter:  *promoteAfter,
			submitTimeout: *submitTimeout,
			dataDir:       *dataDir,
		})
	} else {
		err = runServe(*addr, *queue, *workers, *dataDir, *fsync, *snapshotEvery, *follow, *pullEvery)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hypersolved:", err)
		os.Exit(1)
	}
}

func runServe(addr string, queue, workers int, dataDir string, fsync bool, snapshotEvery int, follow string, pullEvery time.Duration) error {
	cfg := service.Config{QueueDepth: queue, Workers: workers}
	if dataDir == "" {
		if follow != "" {
			return errors.New("-follow requires -data-dir: a standby replicates into a durable store")
		}
		svc := service.New(cfg)
		depth, pool := svc.Queue()
		logger.Info("listening",
			tracelog.A("mode", "serve"), tracelog.A("addr", addr),
			tracelog.A("queue_depth", depth), tracelog.A("workers", pool),
			tracelog.A("version", version.String()))
		return serve(addr, service.NewHandler(svc), svc.Close, nil)
	}
	// Durable daemons run as replication nodes: same solve service, plus
	// the WAL feed standbys tail and the promote/demote control surface.
	node, err := service.NewNode(service.NodeConfig{
		Dir:       dataDir,
		Store:     store.FileConfig{Fsync: fsync, SnapshotEvery: snapshotEvery},
		Service:   cfg,
		Follow:    follow,
		PullEvery: pullEvery,
		Logger:    logger,
	})
	if err != nil {
		return err
	}
	st := node.Status()
	attrs := []tracelog.Attr{
		tracelog.A("mode", "durable"), tracelog.A("addr", addr),
		tracelog.A("role", st.Role), tracelog.A("store", dataDir),
		tracelog.A("epoch", st.Epoch), tracelog.A("lsn", st.LSN),
		tracelog.A("version", version.String()),
	}
	if follow != "" {
		attrs = append(attrs, tracelog.A("following", follow))
	}
	logger.Info("listening", attrs...)
	return serve(addr, node.Handler(), node.Close, nil)
}

type routerOptions struct {
	route, standbys, configFile             string
	probeEvery, promoteAfter, submitTimeout time.Duration
	failAfter                               int
	dataDir                                 string
}

func runRouter(addr string, opt routerOptions) error {
	if opt.dataDir != "" {
		return errors.New("-route and -data-dir are mutually exclusive: a router holds no job state; give each backend its own -data-dir")
	}
	if opt.route != "" && opt.configFile != "" {
		return errors.New("-route and -route-config are mutually exclusive: pick flags or the reloadable file")
	}
	cfg := cluster.Config{
		ProbeEvery:    opt.probeEvery,
		FailAfter:     opt.failAfter,
		PromoteAfter:  opt.promoteAfter,
		SubmitTimeout: opt.submitTimeout,
		Logger:        logger,
	}
	if opt.configFile != "" {
		members, err := readMembers(opt.configFile)
		if err != nil {
			return err
		}
		for _, m := range members {
			cfg.Backends = append(cfg.Backends, m.Primary)
			cfg.Standbys = append(cfg.Standbys, m.Standby)
		}
	} else {
		cfg.Backends = strings.Split(opt.route, ",")
		if opt.standbys != "" {
			cfg.Standbys = strings.Split(opt.standbys, ",")
		}
	}
	r, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	var reload func()
	if opt.configFile != "" {
		reload = func() {
			members, err := readMembers(opt.configFile)
			if err != nil {
				logger.Error("SIGHUP reload failed", tracelog.A("error", err.Error()))
				return
			}
			added, drained, err := r.ApplyMembership(members)
			if err != nil {
				logger.Error("SIGHUP reload failed", tracelog.A("error", err.Error()))
				return
			}
			logger.Info("membership reloaded",
				tracelog.A("file", opt.configFile), tracelog.A("shards", r.Shards()),
				tracelog.A("added", fmt.Sprint(added)), tracelog.A("drained", fmt.Sprint(drained)))
		}
	}
	logger.Info("routing",
		tracelog.A("mode", "router"), tracelog.A("addr", addr),
		tracelog.A("shards", r.Shards()), tracelog.A("version", version.String()))
	return serve(addr, cluster.NewHandler(r), r.Close, reload)
}

// servePprof exposes net/http/pprof on its own private listener. The
// handlers are mounted on a dedicated mux (never the public API mux), so
// profiling stays opt-in and off the service surface; deployments bind it
// to localhost or a management network.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("pprof listening", tracelog.A("addr", addr))
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("pprof server failed", tracelog.A("error", err.Error()))
	}
}

// readMembers parses a -route-config file: a JSON array of
// {"primary": url, "standby": url} members (standby optional).
func readMembers(path string) ([]cluster.MemberSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading route config: %w", err)
	}
	var members []cluster.MemberSpec
	if err := json.Unmarshal(data, &members); err != nil {
		return nil, fmt.Errorf("parsing route config %s: %w", path, err)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("route config %s lists no members", path)
	}
	return members, nil
}

// serve runs the HTTP loop shared by all modes: listen, and on
// SIGINT/SIGTERM drain in-flight requests before closing the service
// (node or router) behind the handler. A non-nil reload hook runs on
// every SIGHUP (router membership refresh). Every request passes through
// the tracelog middleware: X-Request-Id is stamped/echoed, the inbound
// traceparent lands in the request context, and one access-log line is
// emitted per request.
func serve(addr string, handler http.Handler, closeBackend func(), reload func()) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           tracelog.Middleware(logger, handler),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if reload != nil {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for range hup {
				reload()
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		closeBackend()
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	closeBackend()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
