// Command hypersolved runs the solve service in one of two modes.
//
// Serve mode (the default) is a long-lived HTTP JSON server that accepts
// solve jobs, queues them behind a bounded admission queue, and executes
// them on a pool of simulated hyperspace machines:
//
//	hypersolved -addr :8080 -queue 64 -workers 4
//	hypersolved -addr :8080 -data-dir /var/lib/hypersolve   # durable job store
//
// Router mode fronts several serve-mode daemons as one sharded cluster:
// submissions are hash-partitioned across the backends, job IDs carry their
// shard ("s2-17"), listings fan out to every backend and merge, and dead
// backends degrade the cluster instead of failing it:
//
//	hypersolved -addr :8090 -route http://127.0.0.1:8081,http://127.0.0.1:8082
//
// API (see docs/API.md, internal/service and internal/cluster):
//
//	POST   /v1/jobs      submit a JobSpec  (429 when the queue is full)
//	GET    /v1/jobs      list jobs (?state=done,failed filters); fanned out and
//	                     merged in router mode
//	GET    /v1/jobs/{id} job status + result; routed by shard in router mode
//	DELETE /v1/jobs/{id} cancel a queued or running job
//	GET    /healthz      liveness + queue occupancy
//	GET    /v1/cluster   per-backend health report (router mode only)
//
// Example:
//
//	curl -s localhost:8080/v1/jobs -d '{"kind":"queens","n":6,"topology":"torus:8x8","mapper":"lbn"}'
//	curl -s localhost:8080/v1/jobs/1
//
// With -data-dir, every job transition is journaled (internal/store): a
// crashed or SIGKILLed daemon restarted on the same directory recovers all
// terminal job history and re-runs whatever was queued or running —
// spec+seed determinism makes the re-run bit-identical. -fsync trades
// throughput for power-loss durability; -snapshot-every bounds journal
// growth between compactions (snapshots are written off the transition
// path by a background compactor). A router holds no job state of its own:
// durability lives in the backends' data directories, so -data-dir and
// -route are mutually exclusive.
//
// The server shuts down gracefully on SIGINT/SIGTERM: the listener closes,
// in-flight HTTP requests finish, queued jobs are cancelled and running
// solves are interrupted at the next cancellation slice. A graceful
// shutdown is a deliberate drain — outstanding jobs are recorded as
// cancelled; only a crash leaves them to be re-queued at next start.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hypersolve/internal/cluster"
	"hypersolve/internal/service"
	"hypersolve/internal/store"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		queue         = flag.Int("queue", 64, "admission queue depth (jobs beyond it are rejected with 429)")
		workers       = flag.Int("workers", 0, "solve workers (0 = GOMAXPROCS)")
		dataDir       = flag.String("data-dir", "", "durable job store directory (empty = in-memory; history dies with the process)")
		fsync         = flag.Bool("fsync", false, "fsync the journal after every record (survives power loss, much slower)")
		snapshotEvery = flag.Int("snapshot-every", store.DefaultSnapshotEvery,
			"journal records between snapshot compactions")
		route = flag.String("route", "",
			"router mode: comma-separated backend base URLs (e.g. http://b1:8080,http://b2:8080); shard i is backend i+1")
		probeEvery = flag.Duration("probe-every", 2*time.Second,
			"router mode: cadence of the backend health re-probe loop")
	)
	flag.Parse()
	var err error
	if *route != "" {
		err = runRouter(*addr, *route, *probeEvery, *dataDir)
	} else {
		err = runServe(*addr, *queue, *workers, *dataDir, *fsync, *snapshotEvery)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hypersolved:", err)
		os.Exit(1)
	}
}

func runServe(addr string, queue, workers int, dataDir string, fsync bool, snapshotEvery int) error {
	cfg := service.Config{QueueDepth: queue, Workers: workers}
	if dataDir != "" {
		st, err := store.Open(store.FileConfig{Dir: dataDir, Fsync: fsync, SnapshotEvery: snapshotEvery})
		if err != nil {
			return err
		}
		recovered := len(st.List())
		requeued := len(st.List(store.StateQueued))
		fmt.Fprintf(os.Stderr, "hypersolved: durable store at %s (fsync %v, snapshot every %d records); recovered %d jobs, %d re-queued\n",
			dataDir, fsync, snapshotEvery, recovered, requeued)
		cfg.Store = st
	}
	svc := service.New(cfg)
	depth, pool := svc.Queue()
	banner := fmt.Sprintf("hypersolved: listening on %s (queue depth %d, %d workers)", addr, depth, pool)
	return serve(addr, service.NewHandler(svc), banner, svc.Close)
}

func runRouter(addr, route string, probeEvery time.Duration, dataDir string) error {
	if dataDir != "" {
		return errors.New("-route and -data-dir are mutually exclusive: a router holds no job state; give each backend its own -data-dir")
	}
	backends := strings.Split(route, ",")
	r, err := cluster.New(cluster.Config{Backends: backends, ProbeEvery: probeEvery})
	if err != nil {
		return err
	}
	banner := fmt.Sprintf("hypersolved: routing on %s across %d shards (%s)", addr, r.Shards(), route)
	return serve(addr, cluster.NewHandler(r), banner, r.Close)
}

// serve runs the HTTP loop shared by both modes: listen, print the banner,
// and on SIGINT/SIGTERM drain in-flight requests before closing the
// service (or router) behind the handler.
func serve(addr string, handler http.Handler, banner string, closeBackend func()) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintln(os.Stderr, banner)

	select {
	case err := <-errc:
		closeBackend()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "hypersolved: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	closeBackend()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
