// Command hypersolved runs the solve service: a long-lived HTTP JSON server
// that accepts solve jobs, queues them behind a bounded admission queue, and
// executes them on a pool of simulated hyperspace machines.
//
//	hypersolved -addr :8080 -queue 64 -workers 4
//
// API (see internal/service for the spec and payload shapes):
//
//	POST   /v1/jobs      submit a JobSpec  (429 when the queue is full)
//	GET    /v1/jobs      list jobs
//	GET    /v1/jobs/{id} job status + result
//	DELETE /v1/jobs/{id} cancel a queued or running job
//	GET    /healthz      liveness + queue occupancy
//
// Example:
//
//	curl -s localhost:8080/v1/jobs -d '{"kind":"queens","n":6,"topology":"torus:8x8","mapper":"lbn"}'
//	curl -s localhost:8080/v1/jobs/1
//
// The server shuts down gracefully on SIGINT/SIGTERM: the listener closes,
// in-flight HTTP requests finish, queued jobs are cancelled and running
// solves are interrupted at the next cancellation slice.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hypersolve/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		queue   = flag.Int("queue", 64, "admission queue depth (jobs beyond it are rejected with 429)")
		workers = flag.Int("workers", 0, "solve workers (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if err := run(*addr, *queue, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "hypersolved:", err)
		os.Exit(1)
	}
}

func run(addr string, queue, workers int) error {
	svc := service.New(service.Config{QueueDepth: queue, Workers: workers})
	depth, pool := svc.Queue()

	srv := &http.Server{
		Addr:              addr,
		Handler:           service.NewHandler(svc),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "hypersolved: listening on %s (queue depth %d, %d workers)\n", addr, depth, pool)

	select {
	case err := <-errc:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "hypersolved: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	svc.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
