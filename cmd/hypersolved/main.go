// Command hypersolved runs the solve service: a long-lived HTTP JSON server
// that accepts solve jobs, queues them behind a bounded admission queue, and
// executes them on a pool of simulated hyperspace machines.
//
//	hypersolved -addr :8080 -queue 64 -workers 4
//	hypersolved -addr :8080 -data-dir /var/lib/hypersolve   # durable job store
//
// API (see internal/service for the spec and payload shapes):
//
//	POST   /v1/jobs      submit a JobSpec  (429 when the queue is full)
//	GET    /v1/jobs      list jobs (?state=done,failed filters)
//	GET    /v1/jobs/{id} job status + result
//	DELETE /v1/jobs/{id} cancel a queued or running job
//	GET    /healthz      liveness + queue occupancy
//
// Example:
//
//	curl -s localhost:8080/v1/jobs -d '{"kind":"queens","n":6,"topology":"torus:8x8","mapper":"lbn"}'
//	curl -s localhost:8080/v1/jobs/1
//
// With -data-dir, every job transition is journaled (internal/store): a
// crashed or SIGKILLed daemon restarted on the same directory recovers all
// terminal job history and re-runs whatever was queued or running —
// spec+seed determinism makes the re-run bit-identical. -fsync trades
// throughput for power-loss durability; -snapshot-every bounds journal
// growth between compactions.
//
// The server shuts down gracefully on SIGINT/SIGTERM: the listener closes,
// in-flight HTTP requests finish, queued jobs are cancelled and running
// solves are interrupted at the next cancellation slice. A graceful
// shutdown is a deliberate drain — outstanding jobs are recorded as
// cancelled; only a crash leaves them to be re-queued at next start.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hypersolve/internal/service"
	"hypersolve/internal/store"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		queue         = flag.Int("queue", 64, "admission queue depth (jobs beyond it are rejected with 429)")
		workers       = flag.Int("workers", 0, "solve workers (0 = GOMAXPROCS)")
		dataDir       = flag.String("data-dir", "", "durable job store directory (empty = in-memory; history dies with the process)")
		fsync         = flag.Bool("fsync", false, "fsync the journal after every record (survives power loss, much slower)")
		snapshotEvery = flag.Int("snapshot-every", store.DefaultSnapshotEvery,
			"journal records between snapshot compactions")
	)
	flag.Parse()
	if err := run(*addr, *queue, *workers, *dataDir, *fsync, *snapshotEvery); err != nil {
		fmt.Fprintln(os.Stderr, "hypersolved:", err)
		os.Exit(1)
	}
}

func run(addr string, queue, workers int, dataDir string, fsync bool, snapshotEvery int) error {
	cfg := service.Config{QueueDepth: queue, Workers: workers}
	if dataDir != "" {
		st, err := store.Open(store.FileConfig{Dir: dataDir, Fsync: fsync, SnapshotEvery: snapshotEvery})
		if err != nil {
			return err
		}
		recovered := len(st.List())
		requeued := len(st.List(store.StateQueued))
		fmt.Fprintf(os.Stderr, "hypersolved: durable store at %s (fsync %v, snapshot every %d records); recovered %d jobs, %d re-queued\n",
			dataDir, fsync, snapshotEvery, recovered, requeued)
		cfg.Store = st
	}
	svc := service.New(cfg)
	depth, pool := svc.Queue()

	srv := &http.Server{
		Addr:              addr,
		Handler:           service.NewHandler(svc),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "hypersolved: listening on %s (queue depth %d, %d workers)\n", addr, depth, pool)

	select {
	case err := <-errc:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "hypersolved: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	svc.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
