// Command figures regenerates the evaluation artifacts of Tarawneh et al.
// (P2S2 2017): Figure 4 (SAT solver scalability across topologies and
// mapping algorithms) and Figure 5 (temporal and spatial unfolding on a
// 196-core 2D torus).
//
// Usage:
//
//	figures -fig 4                 # full Figure 4 sweep (20 instances)
//	figures -fig 4 -quick          # reduced sweep for a fast smoke run
//	figures -fig 5                 # Figure 5 traces and heatmaps
//	figures -fig 4 -csv            # machine-readable output
//	figures -fig 4 -seed 7         # different benchmark suite
//	figures -fig 4 -parallel 8     # fan simulations over 8 workers
//
// The -parallel flag only changes wall-clock time: sweep results are
// bit-identical at every parallelism level (deterministic per-point seeds,
// collection by point index).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hypersolve/internal/experiments"
)

func main() {
	var (
		fig      = flag.Int("fig", 4, "figure to regenerate: 4 or 5")
		quick    = flag.Bool("quick", false, "reduced workload and sizes for a fast run")
		csv      = flag.Bool("csv", false, "emit CSV instead of a text rendering")
		seed     = flag.Int64("seed", 1, "benchmark suite seed")
		side     = flag.Int("side", 14, "figure 5 torus side (14 = paper's 196 cores)")
		parallel = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial); results are identical at any level")
	)
	flag.Parse()

	start := time.Now()
	var err error
	switch *fig {
	case 4:
		err = runFigure4(*quick, *csv, *seed, *parallel)
	case 5:
		err = runFigure5(*quick, *csv, *seed, *side, *parallel)
	default:
		err = fmt.Errorf("unknown figure %d (want 4 or 5)", *fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "elapsed: %v\n", time.Since(start).Round(time.Millisecond))
}

func runFigure4(quick, csv bool, seed int64, parallel int) error {
	var cfg experiments.Figure4Config
	var err error
	if quick {
		w, werr := experiments.SmallWorkload(seed, 5)
		if werr != nil {
			return werr
		}
		cfg = experiments.Figure4Config{
			Workload: w,
			Series: experiments.DefaultFigure4Series(
				[]int{16, 64, 196},
				[]int{27, 125},
				[]int{16, 196},
			),
			Seed: seed,
		}
	} else {
		cfg, err = experiments.DefaultFigure4Config(seed)
		if err != nil {
			return err
		}
	}
	cfg.Parallelism = parallel
	points, err := experiments.Figure4(cfg)
	if err != nil {
		return err
	}
	if csv {
		fmt.Print(experiments.Figure4CSV(points))
	} else {
		fmt.Print(experiments.RenderFigure4(points))
	}
	return nil
}

func runFigure5(quick, csv bool, seed int64, side, parallel int) error {
	var w experiments.Workload
	var err error
	if quick {
		w, err = experiments.SmallWorkload(seed, 3)
	} else {
		w, err = experiments.DefaultWorkload(seed)
	}
	if err != nil {
		return err
	}
	results, err := experiments.Figure5(experiments.Figure5Config{
		Workload:    w,
		Side:        side,
		Seed:        seed,
		Parallelism: parallel,
	})
	if err != nil {
		return err
	}
	if csv {
		fmt.Print(experiments.Figure5CSV(results))
	} else {
		fmt.Print(experiments.RenderFigure5(results))
	}
	return nil
}
