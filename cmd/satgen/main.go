// Command satgen generates uniform random 3-SAT instances in DIMACS CNF
// format, in the image of the SATLIB "uf" benchmark family the paper
// evaluates on.
//
// Usage:
//
//	satgen -vars 20 -clauses 91 -seed 1 > instance.cnf
//	satgen -vars 50 -clauses 218 -count 20 -sat -out bench/uf50
//
// With -count > 1, instances are written to <out>-0001.cnf etc.; with -sat
// only satisfiable instances (verified by the sequential DPLL solver) are
// kept, as in the paper's all-satisfiable benchmark suite.
package main

import (
	"flag"
	"fmt"
	"os"

	"hypersolve/internal/sat"
)

func main() {
	var (
		vars    = flag.Int("vars", 20, "number of variables")
		clauses = flag.Int("clauses", 91, "number of clauses")
		count   = flag.Int("count", 1, "number of instances")
		seed    = flag.Int64("seed", 1, "generator seed")
		satOnly = flag.Bool("sat", false, "keep only satisfiable instances")
		out     = flag.String("out", "", "output file prefix (default: stdout, single instance only)")
	)
	flag.Parse()
	if err := run(*vars, *clauses, *count, *seed, *satOnly, *out); err != nil {
		fmt.Fprintln(os.Stderr, "satgen:", err)
		os.Exit(1)
	}
}

func run(vars, clauses, count int, seed int64, satOnly bool, out string) error {
	suite, err := sat.GenerateSuite(sat.SuiteParams{
		Count:      count,
		NumVars:    vars,
		NumClauses: clauses,
		Seed:       seed,
		RequireSAT: satOnly,
	})
	if err != nil {
		return err
	}
	if out == "" {
		if count != 1 {
			return fmt.Errorf("-count > 1 requires -out")
		}
		return sat.WriteDIMACS(os.Stdout, suite[0])
	}
	for i, f := range suite {
		name := fmt.Sprintf("%s-%04d.cnf", out, i+1)
		file, err := os.Create(name)
		if err != nil {
			return err
		}
		if err := sat.WriteDIMACS(file, f); err != nil {
			file.Close()
			return err
		}
		if err := file.Close(); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "wrote", name)
	}
	return nil
}
