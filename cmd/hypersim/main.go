// Command hypersim runs one workload on a simulated hyperspace computer and
// reports the paper's metrics: computation time, message counts, and
// optionally the interconnect-activity trace and node-activity heatmap.
//
// Usage examples:
//
//	hypersim -topo torus:14x14 -mapper lbn -task sum -n 100
//	hypersim -topo torus:6x6x6 -mapper rr -task queens -n 7
//	hypersim -topo hypercube:7 -mapper weighted:2 -task knapsack -n 14
//	hypersim -topo torus:14x14 -mapper lbn -task sat -seed 7 -series -heatmap
//	hypersim -topo full:256 -mapper ideal -task sat -cnf problem.cnf
//	hypersim -topo torus:14x14 -mapper lbn -task sat -runs 8 -parallel 4
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	hypersolve "hypersolve"
	"hypersolve/internal/metrics"
	"hypersolve/internal/sat"
)

func main() {
	var (
		topoSpec   = flag.String("topo", "torus:14x14", "topology spec: torus:AxB[xC], grid:AxB, hypercube:N, full:N, ring:N, star:N")
		mapperSpec = flag.String("mapper", "rr", "mapper spec: rr, rr-stagger, lbn, random, weighted[:alpha], ideal")
		taskName   = flag.String("task", "sat", "workload: sat, sum, fib, queens, knapsack")
		n          = flag.Int("n", 20, "task parameter (sum/fib argument, queens board size, knapsack items, sat variables)")
		cnf        = flag.String("cnf", "", "DIMACS file for -task sat (overrides the generated instance)")
		heuristic  = flag.String("heuristic", "first", "sat branching heuristic: first, freq, jw, dlis")
		procs      = flag.Int("procs", 1, "logical processes per core (layer 2)")
		seed       = flag.Int64("seed", 1, "random seed")
		maxSteps   = flag.Int64("max-steps", 0, "abort after this many steps (0 = default)")
		series     = flag.Bool("series", false, "print the interconnect activity trace")
		heatmap    = flag.Bool("heatmap", false, "print the node activity heatmap")
		linkQueues = flag.Bool("link-queues", false, "use per-link queues instead of per-node queues")
		runs       = flag.Int("runs", 1, "replicate the run this many times with seeds seed..seed+runs-1 and report a summary")
		par        = flag.Int("parallel", 0, "concurrent simulations when -runs > 1 (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()
	if err := run(*topoSpec, *mapperSpec, *taskName, *n, *cnf, *heuristic, *procs, *seed, *maxSteps, *series, *heatmap, *linkQueues, *runs, *par); err != nil {
		fmt.Fprintln(os.Stderr, "hypersim:", err)
		os.Exit(1)
	}
}

func run(topoSpec, mapperSpec, taskName string, n int, cnf, heuristic string, procs int, seed, maxSteps int64, series, heatmap, linkQueues bool, runs, par int) error {
	topo, err := hypersolve.ParseTopology(topoSpec)
	if err != nil {
		return err
	}
	mapper, err := hypersolve.ParseMapper(mapperSpec)
	if err != nil {
		return err
	}

	var task hypersolve.Task
	var arg hypersolve.Value
	var check func(v hypersolve.Value) string
	switch taskName {
	case "sum":
		task, arg = hypersolve.SumTask(), n
		check = func(v hypersolve.Value) string {
			return fmt.Sprintf("sum(%d) = %v (want %d)", n, v, n*(n+1)/2)
		}
	case "fib":
		task, arg = hypersolve.FibTask(), n
		check = func(v hypersolve.Value) string { return fmt.Sprintf("fib(%d) = %v", n, v) }
	case "queens":
		task, arg = hypersolve.QueensTask(3), hypersolve.QueensState{N: n}
		check = func(v hypersolve.Value) string {
			return fmt.Sprintf("queens(%d) = %v solutions (sequential: %d)", n, v, hypersolve.QueensSeq(n))
		}
	case "knapsack":
		rng := rand.New(rand.NewSource(seed))
		items := make([]hypersolve.KnapsackItem, n)
		capacity := 0
		for i := range items {
			items[i] = hypersolve.KnapsackItem{Weight: 1 + rng.Intn(20), Value: 1 + rng.Intn(40)}
			capacity += items[i].Weight
		}
		capacity /= 2
		task, arg = hypersolve.KnapsackTask(3), hypersolve.NewKnapsack(items, capacity)
		dp := hypersolve.KnapsackDP(items, capacity)
		check = func(v hypersolve.Value) string {
			return fmt.Sprintf("knapsack(%d items, cap %d) = %v (DP oracle: %d)", n, capacity, v, dp)
		}
	case "sat":
		var formula hypersolve.Formula
		if cnf != "" {
			f, err := os.Open(cnf)
			if err != nil {
				return err
			}
			formula, err = sat.ParseDIMACS(f)
			f.Close()
			if err != nil {
				return err
			}
		} else {
			formula = sat.Random3SAT(rand.New(rand.NewSource(seed)), n, int(float64(n)*4.36))
		}
		h, err := sat.ParseHeuristic(heuristic)
		if err != nil {
			return err
		}
		task, arg = hypersolve.SATTask(h), hypersolve.NewSATProblem(formula)
		check = func(v hypersolve.Value) string {
			out := v.(hypersolve.SATOutcome)
			verdict := out.Status.String()
			if out.Status == hypersolve.StatusSAT {
				if hypersolve.VerifySAT(formula, out.Assignment) {
					verdict += " (assignment verified)"
				} else {
					verdict += " (ASSIGNMENT INVALID)"
				}
			}
			seq := hypersolve.SolveSAT(formula, sat.Options{Heuristic: h})
			return fmt.Sprintf("distributed: %s | sequential baseline: %s", verdict, seq.Status)
		}
	default:
		return fmt.Errorf("unknown task %q (want sat|sum|fib|queens|knapsack)", taskName)
	}

	cfg := hypersolve.Config{
		Topology:     topo,
		Mapper:       mapper,
		Task:         task,
		ProcsPerNode: procs,
		Seed:         seed,
		MaxSteps:     maxSteps,
		RecordSeries: series,
		Parallelism:  par,
	}
	if linkQueues {
		cfg.Link.QueueModel = hypersolve.LinkQueues
	}
	if runs > 1 {
		return runReplicates(cfg, mapperSpec, taskName, arg, check, runs, series, heatmap)
	}
	machine, err := hypersolve.NewMachine(cfg)
	if err != nil {
		return err
	}
	res, err := machine.Run(arg)
	if err != nil {
		return err
	}

	fmt.Printf("machine: %s (%d cores), mapper %s, task %s\n", topo.Name(), topo.Size(), mapperSpec, taskName)
	if !res.OK {
		fmt.Println("run did NOT complete (MaxSteps exceeded)")
	} else {
		fmt.Println(check(res.Value))
	}
	fmt.Printf("computation time: %d steps (performance %.6f)\n", res.ComputationTime, res.Performance)
	fmt.Printf("messages: sent %d, delivered %d\n", res.Stats.TotalSent, res.Stats.TotalDelivered)
	var frames int64
	for _, f := range res.FramesPerProcess {
		frames += f
	}
	fmt.Printf("task frames evaluated: %d\n", frames)
	if series {
		fmt.Println("\ninterconnect activity (queued messages vs time):")
		fmt.Print(metrics.AsciiPlot(res.QueuedSeries, 64, 12))
	}
	if heatmap {
		hm := machine.NodeHeatmap(res)
		fmt.Printf("\nnode activity heatmap (imbalance CV %.2f):\n", hm.ImbalanceCV())
		fmt.Print(hm.Render())
	}
	return nil
}

// runReplicates executes the same workload runs times with seeds
// cfg.Seed..cfg.Seed+runs-1, fanned out over cfg.Parallelism workers, and
// reports per-run computation times plus a summary. The mapper spec is
// re-parsed per machine (Config.FreshMapper) so stateful factories (the
// idealised "ideal" mapper's machine-wide cursor) get a fresh instance per
// machine — results are identical at every -parallel level. The -series and
// -heatmap flags apply to run 0.
func runReplicates(cfg hypersolve.Config, mapperSpec, taskName string, arg hypersolve.Value, check func(hypersolve.Value) string, runs int, series, heatmap bool) error {
	cfg.FreshMapper = func() hypersolve.MapperFactory {
		mf, err := hypersolve.ParseMapper(mapperSpec)
		if err != nil {
			panic(err) // unreachable: the caller already validated the spec
		}
		return mf
	}
	baseSeed := cfg.Seed
	args := make([]hypersolve.Value, runs)
	for i := range args {
		args[i] = arg
	}
	results, err := hypersolve.RunSuite(cfg, args)
	if err != nil {
		return err
	}
	fmt.Printf("machine: %s (%d cores), mapper %s, task %s, %d runs\n",
		cfg.Topology.Name(), cfg.Topology.Size(), mapperSpec, taskName, runs)
	steps := make([]float64, 0, runs)
	for i, res := range results {
		if !res.OK {
			fmt.Printf("run %2d (seed %d): did NOT complete (MaxSteps exceeded)\n", i, baseSeed+int64(i))
			continue
		}
		fmt.Printf("run %2d (seed %d): %d steps | %s\n", i, baseSeed+int64(i), res.ComputationTime, check(res.Value))
		steps = append(steps, float64(res.ComputationTime))
	}
	if len(steps) > 0 {
		sum := metrics.Summarize(steps)
		fmt.Printf("computation time over %d completed runs: mean %.1f steps (std %.1f, min %.0f, max %.0f)\n",
			len(steps), sum.Mean, sum.Std, sum.Min, sum.Max)
	}
	if series {
		fmt.Println("\ninterconnect activity of run 0 (queued messages vs time):")
		fmt.Print(metrics.AsciiPlot(results[0].QueuedSeries, 64, 12))
	}
	if heatmap {
		// NodeHeatmap only folds per-process counts onto the topology, so a
		// machine built from the same config renders run 0's result.
		machine, err := hypersolve.NewMachine(cfg)
		if err != nil {
			return err
		}
		hm := machine.NodeHeatmap(results[0])
		fmt.Printf("\nnode activity heatmap of run 0 (imbalance CV %.2f):\n", hm.ImbalanceCV())
		fmt.Print(hm.Render())
	}
	return nil
}
