// Command satsolve decides the satisfiability of a DIMACS CNF instance,
// either with the sequential DPLL baseline or distributed across a simulated
// hyperspace computer (the paper's Listing 4 solver on the full five-layer
// stack).
//
// Usage:
//
//	satsolve instance.cnf                          # sequential DPLL
//	satsolve -mesh torus:14x14 -mapper lbn x.cnf   # distributed solve
//	satsolve -heuristic jw -stats x.cnf
//
// Exit status: 10 for SAT, 20 for UNSAT (the SAT-competition convention),
// 1 on error.
package main

import (
	"flag"
	"fmt"
	"os"

	hypersolve "hypersolve"
	"hypersolve/internal/sat"
)

func main() {
	var (
		meshSpec   = flag.String("mesh", "", "solve on a simulated machine, e.g. torus:14x14 (default: sequential)")
		mapperSpec = flag.String("mapper", "lbn", "mapper for -mesh runs")
		heuristic  = flag.String("heuristic", "first", "branching heuristic: first, freq, jw, dlis")
		stats      = flag.Bool("stats", false, "print search statistics")
		model      = flag.Bool("assignment", false, "print the satisfying assignment")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: satsolve [flags] instance.cnf")
		os.Exit(1)
	}
	status, err := run(flag.Arg(0), *meshSpec, *mapperSpec, *heuristic, *stats, *model)
	if err != nil {
		fmt.Fprintln(os.Stderr, "satsolve:", err)
		os.Exit(1)
	}
	switch status {
	case sat.SAT:
		os.Exit(10)
	case sat.UNSAT:
		os.Exit(20)
	default:
		os.Exit(1)
	}
}

func run(path, meshSpec, mapperSpec, heuristic string, stats, model bool) (sat.Status, error) {
	file, err := os.Open(path)
	if err != nil {
		return sat.Unknown, err
	}
	formula, err := sat.ParseDIMACS(file)
	file.Close()
	if err != nil {
		return sat.Unknown, err
	}
	h, err := sat.ParseHeuristic(heuristic)
	if err != nil {
		return sat.Unknown, err
	}

	var status sat.Status
	var assignment sat.Assignment
	if meshSpec == "" {
		res := sat.Solve(formula, sat.Options{Heuristic: h})
		status, assignment = res.Status, res.Assignment
		if stats {
			fmt.Printf("c calls=%d decisions=%d unit_props=%d pure_assigns=%d\n",
				res.Calls, res.Decisions, res.UnitProps, res.PureAssigns)
		}
	} else {
		topo, err := hypersolve.ParseTopology(meshSpec)
		if err != nil {
			return sat.Unknown, err
		}
		mapper, err := hypersolve.ParseMapper(mapperSpec)
		if err != nil {
			return sat.Unknown, err
		}
		res, err := hypersolve.Run(hypersolve.Config{
			Topology: topo,
			Mapper:   mapper,
			Task:     hypersolve.SATTask(h),
		}, hypersolve.NewSATProblem(formula))
		if err != nil {
			return sat.Unknown, err
		}
		if !res.OK {
			return sat.Unknown, fmt.Errorf("simulation did not complete")
		}
		out := res.Value.(sat.Outcome)
		status, assignment = out.Status, out.Assignment
		if stats {
			fmt.Printf("c steps=%d messages=%d cores=%d\n",
				res.ComputationTime, res.Stats.TotalSent, topo.Size())
		}
	}

	if status == sat.SAT && !sat.Verify(formula, assignment) {
		return sat.Unknown, fmt.Errorf("internal error: SAT claimed but assignment invalid")
	}
	fmt.Println("s", satCompetitionName(status))
	if model && status == sat.SAT {
		fmt.Print("v ")
		for v := 1; v <= formula.NumVars; v++ {
			lit := v
			if assignment.Value(v) != 1 {
				lit = -v
			}
			fmt.Print(lit, " ")
		}
		fmt.Println("0")
	}
	return status, nil
}

func satCompetitionName(s sat.Status) string {
	switch s {
	case sat.SAT:
		return "SATISFIABLE"
	case sat.UNSAT:
		return "UNSATISFIABLE"
	default:
		return "UNKNOWN"
	}
}
