// Command hyperctl is the client CLI of the hypersolved solve service.
//
//	hyperctl [-addr http://localhost:8080] <subcommand> [flags]
//
// Subcommands:
//
//	submit  submit a job; -cnf FILE submits a DIMACS formula end-to-end,
//	        -spec FILE submits a raw JobSpec JSON document, and
//	        -portfolio rr,lbn,weighted races the job under several mapping
//	        strategies (first terminal attempt wins; -portfolio auto uses
//	        the server's learned ranking)
//	status  print one job (or all jobs with no argument)
//	list    list jobs, optionally filtered by state
//	wait    poll a job until it reaches a terminal state (backoff to 2s);
//	        -progress streams the server's SSE events instead and renders a
//	        live step/queue/rate line while the solve runs
//	cancel  cancel a queued or running job
//	trace   print a job's span timeline; default output is an ASCII
//	        waterfall (compile → admission → queue → run with durations and
//	        annotations), -json dumps the raw timeline instead
//	health  print the server's liveness report
//	cluster print a router's per-shard health report, or change membership:
//	        cluster add-backend -primary URL [-standby URL] adds a shard,
//	        cluster drain|undrain|remove <shard> manages the placement ring
//	        (remove requires a prior drain)
//	replication
//	        print a durable node's replication status (role, epoch, LSN, lag)
//
// hyperctl speaks to single daemons and cluster routers alike: job IDs are
// accepted in both wire forms (a bare sequence number like 3, or the
// shard-prefixed s2-17 a router hands out), and every subcommand passes
// them through unchanged. Submissions bounced by a full queue (HTTP 429)
// are retried with jittered exponential backoff, so batch drivers degrade
// gracefully under overload.
//
// Examples:
//
//	hyperctl submit -kind sat -cnf uf20.cnf -topo torus:14x14 -mapper lbn -wait
//	hyperctl submit -kind sat -n 20 -portfolio rr,lbn,weighted -wait
//	hyperctl submit -kind queens -n 7
//	hyperctl submit -spec job.json
//	hyperctl status 3
//	hyperctl list -state done,failed
//	hyperctl wait 3 -timeout 60s
//	hyperctl wait 3 -progress
//	hyperctl cancel 3
//	hyperctl -addr http://router:8090 wait s2-17
//	hyperctl -addr http://router:8090 cluster
//	hyperctl -addr http://router:8090 cluster add-backend -primary http://b3:8080
//	hyperctl -addr http://router:8090 cluster drain 3
//	hyperctl -addr http://b1:8080 replication
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"hypersolve/internal/cluster"
	"hypersolve/internal/service"
	"hypersolve/internal/tracelog"
	"hypersolve/internal/version"
)

func main() {
	addr := flag.String("addr", envOr("HYPERSOLVED_ADDR", "http://localhost:8080"), "hypersolved base URL")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Usage = usage
	flag.Parse()
	if *showVersion {
		fmt.Println("hyperctl", version.String())
		return
	}
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	client := &service.Client{Base: *addr}
	if err := dispatch(client, flag.Arg(0), flag.Args()[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hyperctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: hyperctl [-addr URL] {submit|status|list|wait|cancel|trace|health|cluster|replication} [flags]\n")
	flag.PrintDefaults()
}

func dispatch(client *service.Client, cmd string, args []string) error {
	ctx := context.Background()
	switch cmd {
	case "submit":
		return submit(ctx, client, args)
	case "status":
		return status(ctx, client, args)
	case "list":
		return list(ctx, client, args)
	case "wait":
		return wait(ctx, client, args)
	case "cancel":
		return cancel(ctx, client, args)
	case "trace":
		return trace(ctx, client, args)
	case "health":
		h, err := client.Health(ctx)
		if err != nil {
			return err
		}
		return printJSON(h)
	case "cluster":
		return clusterCmd(ctx, client, args)
	case "replication":
		st, err := client.ReplicationStatus(ctx)
		if err != nil {
			return err
		}
		return printJSON(st)
	default:
		return fmt.Errorf("unknown subcommand %q (want submit|status|list|wait|cancel|trace|health|cluster|replication)", cmd)
	}
}

// clusterCmd serves both the fleet report (no argument) and the membership
// verbs against a router's /v1/cluster surface.
func clusterCmd(ctx context.Context, client *service.Client, args []string) error {
	if len(args) == 0 {
		var h cluster.Health
		if err := client.GetJSON(ctx, "/v1/cluster", &h); err != nil {
			return err
		}
		return printJSON(h)
	}
	verb, rest := args[0], args[1:]
	body := map[string]any{"action": verb}
	switch verb {
	case "add-backend":
		fs := flag.NewFlagSet("cluster add-backend", flag.ExitOnError)
		primary := fs.String("primary", "", "new shard's primary base URL (required)")
		standby := fs.String("standby", "", "new shard's standby base URL (optional)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if *primary == "" {
			return fmt.Errorf("usage: hyperctl cluster add-backend -primary URL [-standby URL]")
		}
		body["action"] = "add"
		body["primary"] = *primary
		if *standby != "" {
			body["standby"] = *standby
		}
	case "drain", "undrain", "remove":
		if len(rest) != 1 {
			return fmt.Errorf("usage: hyperctl cluster %s <shard>", verb)
		}
		shard, err := strconv.Atoi(rest[0])
		if err != nil {
			return fmt.Errorf("shard must be a number: %w", err)
		}
		body["shard"] = shard
	default:
		return fmt.Errorf("unknown cluster verb %q (want add-backend|drain|undrain|remove, or no verb for the report)", verb)
	}
	var out json.RawMessage
	if err := client.PostJSON(ctx, "/v1/cluster/backends", body, &out); err != nil {
		return err
	}
	return printJSON(out)
}

func submit(ctx context.Context, client *service.Client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		kind      = fs.String("kind", "sat", "workload: sat, queens, knapsack, sum, fib, unbalanced")
		n         = fs.Int("n", 0, "task parameter (see JobSpec.N)")
		cnfPath   = fs.String("cnf", "", "DIMACS file to submit (kind sat)")
		specPath  = fs.String("spec", "", "JobSpec JSON file to submit (replaces the other spec flags; -cnf still overrides its CNF field)")
		heuristic = fs.String("heuristic", "", "sat branching heuristic: first, freq, jw, dlis")
		topo      = fs.String("topo", "", "topology spec (default torus:14x14)")
		mapper    = fs.String("mapper", "", "mapper spec (default rr)")
		portfolio = fs.String("portfolio", "", "comma-separated mapper specs to race (e.g. rr,lbn,weighted), or auto; mutually exclusive with -mapper")
		procs     = fs.Int("procs", 0, "logical processes per core")
		seed      = fs.Int64("seed", 1, "random seed")
		maxSteps  = fs.Int64("max-steps", 0, "simulation step budget (0 = default)")
		engine    = fs.String("engine", "", "simulation engine: event (default) or sweep")
		timeout   = fs.Duration("timeout", 0, "wall-clock deadline once running (0 = none)")
		series    = fs.Bool("series", false, "include the interconnect activity trace in the result")
		heatmap   = fs.Bool("heatmap", false, "include the node activity heatmap in the result")
		doWait    = fs.Bool("wait", false, "wait for the job to finish and print the final record")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec := service.JobSpec{
		Kind:         *kind,
		N:            *n,
		Heuristic:    *heuristic,
		Topology:     *topo,
		Mapper:       *mapper,
		ProcsPerNode: *procs,
		Seed:         *seed,
		MaxSteps:     *maxSteps,
		Engine:       *engine,
		TimeoutMs:    timeout.Milliseconds(),
		RecordSeries: *series,
		Heatmap:      *heatmap,
	}
	for _, strat := range strings.Split(*portfolio, ",") {
		if strat = strings.TrimSpace(strat); strat != "" {
			spec.Portfolio = append(spec.Portfolio, strat)
		}
	}
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		spec = service.JobSpec{}
		if err := json.Unmarshal(data, &spec); err != nil {
			return fmt.Errorf("parsing %s: %w", *specPath, err)
		}
	}
	if *cnfPath != "" {
		data, err := os.ReadFile(*cnfPath)
		if err != nil {
			return err
		}
		spec.CNF = string(data)
	}
	job, err := client.Submit(ctx, spec)
	if err != nil {
		return err
	}
	if !*doWait {
		return printJSON(job)
	}
	job, err = client.Wait(ctx, job.ID, 0)
	if err != nil {
		return err
	}
	printRaceSummary(job)
	return printJSON(job)
}

// printRaceSummary writes a one-line-per-attempt portfolio verdict to
// stderr (stdout stays clean JSON): the winning strategy and each
// attempt's outcome. Solo jobs print nothing.
func printRaceSummary(job service.Job) {
	if len(job.Attempts) == 0 || !job.State.Terminal() {
		return
	}
	if job.Winner != "" {
		fmt.Fprintf(os.Stderr, "portfolio: %s won\n", job.Winner)
	} else {
		fmt.Fprintf(os.Stderr, "portfolio: no winner (job %s)\n", job.State)
	}
	for _, a := range job.Attempts {
		line := fmt.Sprintf("  %-12s %s", a.Strategy, a.State)
		if a.Steps > 0 {
			line += fmt.Sprintf(" after %d steps", a.Steps)
		}
		if !a.StartedAt.IsZero() && !a.FinishedAt.IsZero() {
			line += fmt.Sprintf(" in %s", a.FinishedAt.Sub(a.StartedAt).Round(time.Millisecond))
		}
		if a.Error != "" {
			line += " (" + a.Error + ")"
		}
		fmt.Fprintln(os.Stderr, line)
	}
}

func status(ctx context.Context, client *service.Client, args []string) error {
	if len(args) == 0 {
		jobs, err := client.List(ctx)
		if err != nil {
			return err
		}
		return printJSON(jobs)
	}
	id, err := parseID(args[0])
	if err != nil {
		return err
	}
	job, err := client.Get(ctx, id)
	if err != nil {
		return err
	}
	printRaceSummary(job)
	return printJSON(job)
}

// list prints jobs, optionally filtered to a comma-separated set of states.
func list(ctx context.Context, client *service.Client, args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	stateFlag := fs.String("state", "", "comma-separated state filter: queued,running,done,failed,cancelled")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var states []service.State
	for _, name := range strings.Split(*stateFlag, ",") {
		if name == "" {
			continue
		}
		st, err := service.ParseState(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		states = append(states, st)
	}
	jobs, err := client.List(ctx, states...)
	if err != nil {
		return err
	}
	return printJSON(jobs)
}

func wait(ctx context.Context, client *service.Client, args []string) error {
	fs := flag.NewFlagSet("wait", flag.ExitOnError)
	poll := fs.Duration("poll", 100*time.Millisecond,
		"initial poll interval; each poll backs off exponentially to a 2s cap")
	fs.DurationVar(poll, "interval", 100*time.Millisecond, "deprecated alias for -poll")
	timeout := fs.Duration("timeout", 0, "give up after this long (0 = wait forever)")
	progress := fs.Bool("progress", false,
		"render a live progress line from the server's SSE event stream (falls back to polling if the stream drops)")
	// Accept the id before the flags ("wait 3 -timeout 60s"), matching the
	// other subcommands; stdlib flag parsing stops at the first positional
	// argument otherwise.
	var idArg string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		idArg, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case idArg == "" && fs.NArg() == 1:
		idArg = fs.Arg(0)
	case idArg != "" && fs.NArg() == 0:
	default:
		return fmt.Errorf("usage: hyperctl wait <id> [-poll D] [-timeout D] [-progress]")
	}
	id, err := parseID(idArg)
	if err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *progress {
		switch err := watchProgress(ctx, client, id); {
		case err == nil:
			// The job is terminal; Wait returns its record on the first
			// successful poll and rides out transient blips, unlike a bare
			// Get.
			job, err := client.Wait(ctx, id, *poll)
			if err != nil {
				return err
			}
			return printJSON(job)
		case ctx.Err() != nil:
			return err
		default:
			// An old server without the events endpoint, or a stream that
			// died mid-solve: the job may still be running, so degrade to
			// the polling wait instead of failing.
			fmt.Fprintf(os.Stderr, "hyperctl: event stream unavailable (%v); falling back to polling\n", err)
		}
	}
	job, err := client.Wait(ctx, id, *poll)
	if err != nil {
		return err
	}
	printRaceSummary(job)
	return printJSON(job)
}

// watchProgress renders the SSE progress feed as a live one-line status on
// stderr (stdout stays clean JSON), returning nil once the terminal
// snapshot has arrived.
func watchProgress(ctx context.Context, client *service.Client, id service.JobID) error {
	lastLen := 0
	err := client.Watch(ctx, id, func(p service.Progress) {
		// For portfolio jobs the snapshot names the leading attempt's
		// strategy (the winner's on the terminal snapshot).
		strat := ""
		if p.Strategy != "" {
			strat = " [" + p.Strategy + "]"
		}
		var line string
		if p.State.Terminal() {
			line = fmt.Sprintf("job %s %s%s after %d steps", id, p.State, strat, p.Step)
		} else {
			line = fmt.Sprintf("job %s %s%s: step %d · %d queued · %.0f steps/s · %.1fs",
				id, p.State, strat, p.Step, p.Queued, p.StepsPerSec, float64(p.ElapsedMs)/1000)
		}
		pad := ""
		if n := lastLen - len(line); n > 0 {
			pad = strings.Repeat(" ", n)
		}
		lastLen = len(line)
		fmt.Fprintf(os.Stderr, "\r%s%s", line, pad)
	})
	if lastLen > 0 {
		fmt.Fprintln(os.Stderr)
	}
	return err
}

func cancel(ctx context.Context, client *service.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: hyperctl cancel <id>")
	}
	id, err := parseID(args[0])
	if err != nil {
		return err
	}
	job, err := client.Cancel(ctx, id)
	if err != nil {
		return err
	}
	return printJSON(job)
}

// trace fetches a job's span timeline and renders it as an ASCII
// waterfall: one row per span, indented under its parent, with a bar
// positioned by start offset and scaled by duration. -json dumps the raw
// timeline document instead (for piping into jq or dashboards).
func trace(ctx context.Context, client *service.Client, args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "print the raw timeline JSON instead of the waterfall")
	// Accept "trace 3 -json" like wait does.
	var idArg string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		idArg, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case idArg == "" && fs.NArg() == 1:
		idArg = fs.Arg(0)
	case idArg != "" && fs.NArg() == 0:
	default:
		return fmt.Errorf("usage: hyperctl trace <id> [-json]")
	}
	id, err := parseID(idArg)
	if err != nil {
		return err
	}
	jt, err := client.Trace(ctx, id)
	if err != nil {
		return err
	}
	if *asJSON {
		return printJSON(jt)
	}
	renderWaterfall(jt)
	return nil
}

// renderWaterfall prints one row per span: an indented name, a bar whose
// offset and width are the span's position in the trace window, and the
// duration. Open spans (the job is still queued or running) get a "…"
// tail; instant spans (requeued) a "·" tick. Annotations print beneath
// their span.
func renderWaterfall(jt service.JobTrace) {
	fmt.Printf("trace %s  job %s  %s\n", jt.TraceID, jt.JobID, jt.State)
	if len(jt.Spans) == 0 {
		fmt.Println("  (no spans recorded — the job predates tracing)")
		return
	}
	// The trace window: earliest start to latest known instant.
	t0 := jt.Spans[0].Start
	tEnd := t0
	for _, sp := range jt.Spans {
		if sp.Start.Before(t0) {
			t0 = sp.Start
		}
		if sp.End.After(tEnd) {
			tEnd = sp.End
		}
		if sp.Start.After(tEnd) {
			tEnd = sp.Start
		}
	}
	window := tEnd.Sub(t0)
	const cols = 40
	nameWidth := 0
	for _, sp := range jt.Spans {
		if w := len(sp.Name) + 2*depthOf(jt.Spans, sp); w > nameWidth {
			nameWidth = w
		}
	}
	for _, sp := range jt.Spans {
		indent := strings.Repeat("  ", depthOf(jt.Spans, sp))
		name := indent + sp.Name
		start := int(float64(sp.Start.Sub(t0)) / float64(window+1) * cols)
		bar := make([]byte, cols)
		for i := range bar {
			bar[i] = ' '
		}
		var tail string
		switch {
		case !sp.End.IsZero() && sp.End.Equal(sp.Start):
			// Instant span (e.g. requeued): a single tick.
			bar[min(start, cols-1)] = '+'
			tail = fmt.Sprintf("@ +%s", fmtMs(sp.Start.Sub(t0)))
		case sp.End.IsZero():
			for i := start; i < cols; i++ {
				bar[i] = '='
			}
			tail = fmt.Sprintf("+%s … still open", fmtMs(sp.Start.Sub(t0)))
		default:
			width := int(float64(sp.End.Sub(sp.Start)) / float64(window+1) * cols)
			if width < 1 {
				width = 1
			}
			for i := start; i < start+width && i < cols; i++ {
				bar[i] = '='
			}
			tail = fmt.Sprintf("%8.3fms  +%s", sp.DurationMs, fmtMs(sp.Start.Sub(t0)))
		}
		if len(sp.Attrs) > 0 {
			var kv []string
			for k, v := range sp.Attrs {
				kv = append(kv, fmt.Sprintf("%s=%v", k, v))
			}
			sort.Strings(kv)
			tail += "  " + strings.Join(kv, " ")
		}
		fmt.Printf("  %-*s |%s| %s\n", nameWidth, name, string(bar), tail)
		for _, a := range sp.Annotations {
			fmt.Printf("  %-*s  %s· %s (+%s)\n", nameWidth, "", strings.Repeat(" ", cols/2), a.Text, fmtMs(a.At.Sub(t0)))
		}
	}
	fmt.Printf("  window: %s across %d spans\n", fmtMs(window), len(jt.Spans))
}

// depthOf computes a span's indent depth by chasing parent IDs.
func depthOf(spans []tracelog.Span, sp tracelog.Span) int {
	depth := 0
	for sp.Parent != 0 {
		found := false
		for _, p := range spans {
			if p.ID == sp.Parent {
				sp, found = p, true
				break
			}
		}
		if !found {
			break
		}
		depth++
	}
	return depth
}

func fmtMs(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
}

// parseID accepts both wire forms transparently: a bare sequence number
// when talking to a single daemon, or a shard-prefixed cluster ID like
// "s2-17" when talking to a router.
func parseID(s string) (service.JobID, error) {
	return service.ParseJobID(s)
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func envOr(key, fallback string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return fallback
}
