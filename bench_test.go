// Benchmarks regenerating the paper's evaluation artifacts (Figure 4 and
// Figure 5) plus the ablations listed in DESIGN.md. Each benchmark iteration
// simulates one full SAT solve (or other workload) on one machine
// configuration and reports the simulated computation time as the custom
// metric "steps" alongside the wall-clock ns/op.
//
// The full paper tables are produced by `go run ./cmd/figures`; these
// benchmarks exercise the same code paths per configuration point so that
// `go test -bench . -benchmem` documents both simulated and host cost.
package hypersolve_test

import (
	"fmt"
	"sync"
	"testing"

	hypersolve "hypersolve"
	"hypersolve/internal/apps"
	"hypersolve/internal/sat"
)

// benchSuite lazily generates the benchmark instances shared by all
// benchmarks: one uf50-218 instance (the scalability workload family) and
// one uf20-91 instance (the paper's literal workload).
var benchSuite = struct {
	once sync.Once
	uf50 hypersolve.Formula
	uf20 hypersolve.Formula
}{}

func benchInstances(b *testing.B) (uf50, uf20 hypersolve.Formula) {
	b.Helper()
	benchSuite.once.Do(func() {
		s50, err := hypersolve.GenerateSATSuite(sat.SuiteParams{
			Count: 1, NumVars: 50, NumClauses: 218, Seed: 11, RequireSAT: true,
		})
		if err != nil {
			panic(err)
		}
		s20, err := hypersolve.GenerateSATSuite(sat.SuiteParams{
			Count: 1, NumVars: 20, NumClauses: 91, Seed: 11, RequireSAT: true,
		})
		if err != nil {
			panic(err)
		}
		benchSuite.uf50 = s50[0]
		benchSuite.uf20 = s20[0]
	})
	return benchSuite.uf50, benchSuite.uf20
}

// runSAT simulates one distributed solve and returns the computation time.
func runSAT(b *testing.B, cfg hypersolve.Config, f hypersolve.Formula) int64 {
	b.Helper()
	res, err := hypersolve.Run(cfg, hypersolve.NewSATProblem(f))
	if err != nil {
		b.Fatal(err)
	}
	if !res.OK {
		b.Fatal("simulation did not complete")
	}
	return res.ComputationTime
}

// BenchmarkFigure4 exercises every (series, core count) point of the
// paper's Figure 4 on one representative instance. The mean-over-20-
// instances tables are produced by `go run ./cmd/figures -fig 4`.
func BenchmarkFigure4(b *testing.B) {
	uf50, _ := benchInstances(b)
	type series struct {
		label  string
		topo   func(int) (hypersolve.Topology, error)
		mapper hypersolve.MapperFactory
		sizes  []int
	}
	cube := func(c int) (hypersolve.Topology, error) {
		switch c {
		case 27:
			return hypersolve.NewTorus(3, 3, 3)
		case 216:
			return hypersolve.NewTorus(6, 6, 6)
		case 1000:
			return hypersolve.NewTorus(10, 10, 10)
		}
		return nil, fmt.Errorf("unsupported cube size %d", c)
	}
	square := func(c int) (hypersolve.Topology, error) {
		switch c {
		case 16:
			return hypersolve.NewTorus(4, 4)
		case 196:
			return hypersolve.NewTorus(14, 14)
		case 1024:
			return hypersolve.NewTorus(32, 32)
		}
		return nil, fmt.Errorf("unsupported square size %d", c)
	}
	all := []series{
		{"2DTorus_RR", square, hypersolve.RoundRobinMapper(), []int{16, 196, 1024}},
		{"3DTorus_RR", cube, hypersolve.RoundRobinMapper(), []int{27, 216, 1000}},
		{"2DTorus_LBN", square, hypersolve.LeastBusyMapper(), []int{16, 196, 1024}},
		{"3DTorus_LBN", cube, hypersolve.LeastBusyMapper(), []int{27, 216, 1000}},
		{"FullyConnected", hypersolve.NewFullyConnected, hypersolve.GlobalRoundRobinMapper(), []int{16, 196, 1024}},
	}
	for _, s := range all {
		for _, cores := range s.sizes {
			b.Run(fmt.Sprintf("%s/%d", s.label, cores), func(b *testing.B) {
				topo, err := s.topo(cores)
				if err != nil {
					b.Fatal(err)
				}
				var steps int64
				for i := 0; i < b.N; i++ {
					steps = runSAT(b, hypersolve.Config{
						Topology: topo,
						Mapper:   s.mapper,
						Task:     hypersolve.SATTask(hypersolve.HeuristicFirst),
						Seed:     int64(i),
					}, uf50)
				}
				b.ReportMetric(float64(steps), "steps")
			})
		}
	}
}

// BenchmarkFigure5 exercises the unfolding experiment: one instance on the
// paper's 196-core 2D torus with full trace recording, per mapper.
func BenchmarkFigure5(b *testing.B) {
	uf50, _ := benchInstances(b)
	for _, m := range []struct {
		name   string
		mapper hypersolve.MapperFactory
	}{
		{"RoundRobin", hypersolve.RoundRobinMapper()},
		{"LeastBusyNeighbour", hypersolve.LeastBusyMapper()},
	} {
		b.Run(m.name, func(b *testing.B) {
			var steps int64
			var peak int
			for i := 0; i < b.N; i++ {
				res, err := hypersolve.Run(hypersolve.Config{
					Topology:     hypersolve.MustTorus(14, 14),
					Mapper:       m.mapper,
					Task:         hypersolve.SATTask(hypersolve.HeuristicFirst),
					RecordSeries: true,
					Seed:         int64(i),
				}, hypersolve.NewSATProblem(uf50))
				if err != nil {
					b.Fatal(err)
				}
				steps = res.ComputationTime
				peak = res.QueuedSeries.Max()
			}
			b.ReportMetric(float64(steps), "steps")
			b.ReportMetric(float64(peak), "peak-queued")
		})
	}
}

// BenchmarkFigure4UF20 runs the paper's literal uf20-91 workload for
// reference (the trees are small; machines saturate early).
func BenchmarkFigure4UF20(b *testing.B) {
	_, uf20 := benchInstances(b)
	for _, cores := range []struct {
		name string
		topo hypersolve.Topology
	}{
		{"2DTorus/196", hypersolve.MustTorus(14, 14)},
		{"3DTorus/216", hypersolve.MustTorus(6, 6, 6)},
	} {
		b.Run(cores.name, func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				steps = runSAT(b, hypersolve.Config{
					Topology: cores.topo,
					Mapper:   hypersolve.LeastBusyMapper(),
					Task:     hypersolve.SATTask(hypersolve.HeuristicFirst),
					Seed:     int64(i),
				}, uf20)
			}
			b.ReportMetric(float64(steps), "steps")
		})
	}
}

// BenchmarkAblationMapperFanout (A1): fixed-fanout workloads have a
// predictable unfolding, the case the paper argues favours static mapping
// (Section III-B2). Fibonacci forks exactly two subcalls per frame.
func BenchmarkAblationMapperFanout(b *testing.B) {
	for _, m := range []struct {
		name   string
		mapper hypersolve.MapperFactory
	}{
		{"static-rr", hypersolve.RoundRobinMapper()},
		{"adaptive-lbn", hypersolve.LeastBusyMapper()},
		{"random", hypersolve.RandomMapper()},
	} {
		b.Run(m.name, func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				res, err := hypersolve.Run(hypersolve.Config{
					Topology: hypersolve.MustTorus(8, 8),
					Mapper:   m.mapper,
					Task:     hypersolve.FibTask(),
					Seed:     int64(i),
				}, 16)
				if err != nil {
					b.Fatal(err)
				}
				steps = res.ComputationTime
			}
			b.ReportMetric(float64(steps), "steps")
		})
	}
}

// BenchmarkAblationHintedMapping (A2): on a deliberately skewed tree, the
// hint-aware weighted mapper can use sub-problem size hints that plain
// least-busy ignores (paper Section III-B3).
func BenchmarkAblationHintedMapping(b *testing.B) {
	for _, m := range []struct {
		name   string
		mapper hypersolve.MapperFactory
	}{
		{"lbn-ignores-hints", hypersolve.LeastBusyMapper()},
		{"weighted-alpha1", hypersolve.WeightedMapper(1)},
		{"weighted-alpha4", hypersolve.WeightedMapper(4)},
	} {
		b.Run(m.name, func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				res, err := hypersolve.Run(hypersolve.Config{
					Topology: hypersolve.MustTorus(8, 8),
					Mapper:   m.mapper,
					Task:     apps.UnbalancedTask(),
					Seed:     int64(i),
				}, 64)
				if err != nil {
					b.Fatal(err)
				}
				steps = res.ComputationTime
			}
			b.ReportMetric(float64(steps), "steps")
		})
	}
}

// BenchmarkAblationHeuristics (A3): branching heuristic impact on the
// distributed DPLL tree and hence on simulated time.
func BenchmarkAblationHeuristics(b *testing.B) {
	uf50, _ := benchInstances(b)
	for _, h := range []hypersolve.Heuristic{
		hypersolve.HeuristicFirst, hypersolve.HeuristicFreq,
		hypersolve.HeuristicJW, hypersolve.HeuristicDLIS,
	} {
		b.Run(h.String(), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				steps = runSAT(b, hypersolve.Config{
					Topology: hypersolve.MustTorus(14, 14),
					Mapper:   hypersolve.LeastBusyMapper(),
					Task:     hypersolve.SATTask(h),
					Seed:     int64(i),
				}, uf50)
			}
			b.ReportMetric(float64(steps), "steps")
		})
	}
}

// BenchmarkAblationProcsPerCore (A4): layer-2 oversubscription. More
// processes per core enlarge the virtual machine without adding hardware.
func BenchmarkAblationProcsPerCore(b *testing.B) {
	uf50, _ := benchInstances(b)
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("procs-%d", procs), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				steps = runSAT(b, hypersolve.Config{
					Topology:     hypersolve.MustTorus(7, 7),
					Mapper:       hypersolve.LeastBusyMapper(),
					Task:         hypersolve.SATTask(hypersolve.HeuristicFirst),
					ProcsPerNode: procs,
					Seed:         int64(i),
				}, uf50)
			}
			b.ReportMetric(float64(steps), "steps")
		})
	}
}

// BenchmarkAblationLinkModel (A5): layer-1 link latency and bandwidth
// sensitivity (the buffering/bandwidth/latency concerns of Figure 2).
func BenchmarkAblationLinkModel(b *testing.B) {
	uf50, _ := benchInstances(b)
	cases := []struct {
		name string
		link hypersolve.LinkConfig
	}{
		{"baseline", hypersolve.LinkConfig{}},
		{"latency-4", hypersolve.LinkConfig{LinkLatency: 4}},
		{"bandwidth-4", hypersolve.LinkConfig{DeliverPerStep: 4}},
		{"lossy-10pct-reliable", hypersolve.LinkConfig{LossRate: 0.1, Reliable: true}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				steps = runSAT(b, hypersolve.Config{
					Topology: hypersolve.MustTorus(14, 14),
					Mapper:   hypersolve.LeastBusyMapper(),
					Task:     hypersolve.SATTask(hypersolve.HeuristicFirst),
					Seed:     int64(i),
					Link:     c.link,
				}, uf50)
			}
			b.ReportMetric(float64(steps), "steps")
		})
	}
}

// BenchmarkAblationQueueModel (A6): per-node vs per-link queues — the two
// readings of the paper's simulator semantics (see DESIGN.md).
func BenchmarkAblationQueueModel(b *testing.B) {
	uf50, _ := benchInstances(b)
	for _, c := range []struct {
		name  string
		model hypersolve.LinkConfig
	}{
		{"node-queues", hypersolve.LinkConfig{QueueModel: hypersolve.NodeQueues}},
		{"link-queues", hypersolve.LinkConfig{QueueModel: hypersolve.LinkQueues}},
	} {
		b.Run(c.name, func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				steps = runSAT(b, hypersolve.Config{
					Topology: hypersolve.MustTorus(14, 14),
					Mapper:   hypersolve.RoundRobinMapper(),
					Task:     hypersolve.SATTask(hypersolve.HeuristicFirst),
					Seed:     int64(i),
					Link:     c.model,
				}, uf50)
			}
			b.ReportMetric(float64(steps), "steps")
		})
	}
}

// BenchmarkAblationRRStagger (A7): lockstep vs per-node staggered
// round-robin cursors on a dense topology.
func BenchmarkAblationRRStagger(b *testing.B) {
	uf50, _ := benchInstances(b)
	for _, m := range []struct {
		name   string
		mapper hypersolve.MapperFactory
	}{
		{"rr-lockstep", hypersolve.RoundRobinMapper()},
		{"rr-staggered", hypersolve.StaggeredRoundRobinMapper()},
	} {
		b.Run(m.name, func(b *testing.B) {
			topo, err := hypersolve.NewFullyConnected(256)
			if err != nil {
				b.Fatal(err)
			}
			var steps int64
			for i := 0; i < b.N; i++ {
				steps = runSAT(b, hypersolve.Config{
					Topology: topo,
					Mapper:   m.mapper,
					Task:     hypersolve.SATTask(hypersolve.HeuristicFirst),
					Seed:     int64(i),
				}, uf50)
			}
			b.ReportMetric(float64(steps), "steps")
		})
	}
}

// BenchmarkAblationSimplifyMode (A8): single-pass (paper Listing 4) vs
// fixpoint simplification — pruning strength against exposed parallelism.
func BenchmarkAblationSimplifyMode(b *testing.B) {
	uf50, _ := benchInstances(b)
	for _, m := range []struct {
		name string
		mode sat.SimplifyMode
	}{
		{"onepass", sat.OnePass},
		{"fixpoint", sat.Fixpoint},
	} {
		b.Run(m.name, func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				res, err := hypersolve.Run(hypersolve.Config{
					Topology: hypersolve.MustTorus(14, 14),
					Mapper:   hypersolve.LeastBusyMapper(),
					Task:     sat.TaskWithMode(sat.FirstUnassigned, m.mode),
					Seed:     int64(i),
				}, hypersolve.NewSATProblem(uf50))
				if err != nil {
					b.Fatal(err)
				}
				if !res.OK {
					b.Fatal("did not complete")
				}
				steps = res.ComputationTime
			}
			b.ReportMetric(float64(steps), "steps")
		})
	}
}

// BenchmarkSequentialDPLL measures the pure layer-5 baseline without any
// simulation overhead.
func BenchmarkSequentialDPLL(b *testing.B) {
	uf50, uf20 := benchInstances(b)
	for _, c := range []struct {
		name string
		f    hypersolve.Formula
	}{{"uf20-91", uf20}, {"uf50-218", uf50}} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := hypersolve.SolveSAT(c.f, hypersolve.SATOptions{})
				if res.Status != hypersolve.StatusSAT {
					b.Fatal("expected SAT")
				}
			}
		})
	}
}

// BenchmarkAblationCancellation (A9): the speculative-cancellation
// extension. In a one-hop-per-step machine the cancel wave cannot outrun
// the unfolding work frontier, so frame counts barely move for DPLL (every
// frame spawns its children on arrival); the measurable effect is on the
// reply cascade and the step count.
func BenchmarkAblationCancellation(b *testing.B) {
	uf50, _ := benchInstances(b)
	for _, c := range []struct {
		name   string
		cancel bool
	}{
		{"paper-semantics", false},
		{"cancel-speculative", true},
	} {
		b.Run(c.name, func(b *testing.B) {
			var steps, cancelled int64
			for i := 0; i < b.N; i++ {
				res, err := hypersolve.Run(hypersolve.Config{
					Topology:          hypersolve.MustTorus(14, 14),
					Mapper:            hypersolve.LeastBusyMapper(),
					Task:              hypersolve.SATTask(hypersolve.HeuristicFirst),
					CancelSpeculative: c.cancel,
					Seed:              int64(i),
				}, hypersolve.NewSATProblem(uf50))
				if err != nil {
					b.Fatal(err)
				}
				if !res.OK {
					b.Fatal("did not complete")
				}
				steps = res.ComputationTime
				cancelled = res.FramesCancelled
			}
			b.ReportMetric(float64(steps), "steps")
			b.ReportMetric(float64(cancelled), "cancelled-frames")
		})
	}
}
