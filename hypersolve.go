// Package hypersolve is a framework for developing combinatorial solvers on
// massively parallel machines with regular topologies ("hyperspace
// computers"), reproducing the multi-layer programming model of
//
//	G. Tarawneh et al., "Programming Model to Develop Supercomputer
//	Combinatorial Solvers", P2S2 workshop, ICPP 2017.
//	https://doi.org/10.1109/ICPPW.2017.35
//
// The stack has five layers, each replaceable independently:
//
//	layer 1  message passing   deterministic time-stepped simulator
//	layer 2  scheduling        logical processes on physical cores
//	layer 3  mapping           destination-free sends, ticketed replies,
//	                           round-robin / least-busy-neighbour placement
//	layer 4  recursion         fork-join tasks via goroutine continuations
//	layer 5  application       DPLL SAT, N-Queens, knapsack, or your own
//
// Quick start:
//
//	task := hypersolve.SumTask() // sum(n) = n + sum(n-1), paper Listing 3
//	res, err := hypersolve.Run(hypersolve.Config{
//		Topology: hypersolve.MustTorus(14, 14),
//		Mapper:   hypersolve.LeastBusyMapper(),
//		Task:     task,
//	}, 10)
//	// res.Value == 55, res.ComputationTime = simulation steps used
//
// This package is a stable facade over the internal implementation
// packages; everything needed to build and evaluate solvers is re-exported
// here.
package hypersolve

import (
	"io"
	"net/http"

	"hypersolve/internal/apps"
	"hypersolve/internal/cluster"
	"hypersolve/internal/core"
	"hypersolve/internal/mapping"
	"hypersolve/internal/mesh"
	"hypersolve/internal/metrics"
	"hypersolve/internal/recursion"
	"hypersolve/internal/sat"
	"hypersolve/internal/sched"
	"hypersolve/internal/service"
	"hypersolve/internal/simulator"
	"hypersolve/internal/store"
	"hypersolve/internal/telemetry"
	"hypersolve/internal/tracelog"
	"hypersolve/internal/version"
)

// ---------------------------------------------------------------------------
// Core machine
// ---------------------------------------------------------------------------

// Config assembles a machine: one implementation per layer. See
// core.Config for field documentation.
type Config = core.Config

// Result reports a run's outcome and activity metrics.
type Result = core.Result

// Machine is a configured five-layer stack.
//
// Beyond Run, a Machine supports context-aware execution via RunContext:
//
//	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
//	defer cancel()
//	res, err := machine.RunContext(ctx, arg)
//
// The layer-1 step loop polls the context once every
// simulator.CancelSliceSteps simulation steps, so cancellation (or deadline
// expiry) interrupts a run within one slice; the returned error wraps
// ctx's cause and the partial Result carries the statistics accumulated up
// to the interruption (Result.Stats.Interrupted is set). Runs that complete
// are bit-identical to Run's at any cancellation pressure — the poll only
// ever aborts the step loop, never reorders it. The solve service
// (NewSolveService, cmd/hypersolved) builds its per-job cancellation and
// deadline enforcement on this primitive.
type Machine = core.Machine

// NewMachine validates a configuration and builds the stack.
func NewMachine(cfg Config) (*Machine, error) { return core.New(cfg) }

// Run builds a machine from cfg, triggers the task with arg at the root
// process and runs the simulation to completion.
func Run(cfg Config, arg Value) (Result, error) { return core.RunOnce(cfg, arg) }

// RunSuite simulates one machine per argument (run i uses seed cfg.Seed+i),
// fanning independent runs over cfg.Parallelism worker goroutines. Results
// are collected by argument index: the output is bit-identical at every
// parallelism level. See core.RunSuite for the mapper-statelessness caveat.
func RunSuite(cfg Config, args []Value) ([]Result, error) { return core.RunSuite(cfg, args) }

// ---------------------------------------------------------------------------
// Topologies (layer 1 substrate)
// ---------------------------------------------------------------------------

// Topology describes a regular interconnect.
type Topology = mesh.Topology

// NodeID identifies a node within a topology.
type NodeID = mesh.NodeID

// NewTorus builds an n-dimensional torus, e.g. NewTorus(14, 14).
func NewTorus(dims ...int) (Topology, error) { return mesh.NewTorus(dims...) }

// MustTorus is NewTorus that panics on error.
func MustTorus(dims ...int) Topology { return mesh.MustTorus(dims...) }

// NewGrid builds an n-dimensional grid (no wraparound).
func NewGrid(dims ...int) (Topology, error) { return mesh.NewGrid(dims...) }

// NewHypercube builds a 2^dim-node binary hypercube.
func NewHypercube(dim int) (Topology, error) { return mesh.NewHypercube(dim) }

// NewFullyConnected builds a complete graph on size nodes.
func NewFullyConnected(size int) (Topology, error) { return mesh.NewFullyConnected(size) }

// NewRing builds a cycle of size nodes.
func NewRing(size int) (Topology, error) { return mesh.NewRing(size) }

// ParseTopology builds a topology from a spec string such as "torus:14x14",
// "hypercube:7" or "full:256".
func ParseTopology(spec string) (Topology, error) { return mesh.Parse(spec) }

// ---------------------------------------------------------------------------
// Mapping algorithms (layer 3)
// ---------------------------------------------------------------------------

// MapperFactory builds a per-node mapping algorithm instance.
type MapperFactory = mapping.Factory

// RoundRobinMapper returns the paper's static mapper: sub-problems go to
// adjacent cores in circular order.
func RoundRobinMapper() MapperFactory { return mapping.NewRoundRobin() }

// LeastBusyMapper returns the paper's adaptive mapper: sub-problems go to
// the neighbour with the smallest piggybacked activity count.
func LeastBusyMapper() MapperFactory { return mapping.NewLeastBusy() }

// RandomMapper returns a uniformly random mapper (deterministic per seed).
func RandomMapper() MapperFactory { return mapping.NewRandom() }

// WeightedMapper returns the hint-aware adaptive mapper implementing the
// paper's cross-layer optimization (Section III-B3).
func WeightedMapper(alpha float64) MapperFactory { return mapping.NewWeighted(alpha) }

// ParseMapper resolves a mapper spec string: "rr", "lbn", "random",
// "weighted" or "weighted:<alpha>".
func ParseMapper(spec string) (MapperFactory, error) { return mapping.Registry(spec) }

// ---------------------------------------------------------------------------
// Recursion layer (layer 4)
// ---------------------------------------------------------------------------

// Task is a user-level recursive function evaluated across the mesh.
type Task = recursion.Task

// Frame is the handle a task uses to issue subcalls (Call/Sync/Choose).
type Frame = recursion.Frame

// Value is the type carried through calls and results.
type Value = recursion.Value

// HintedCall pairs a subcall argument with a mapping hint.
type HintedCall = recursion.HintedCall

// PID identifies a logical process on the machine.
type PID = sched.PID

// ---------------------------------------------------------------------------
// SAT (layer 5, the paper's evaluation workload)
// ---------------------------------------------------------------------------

// Formula is a CNF formula; Clause and Lit are its components.
type (
	Formula    = sat.Formula
	Clause     = sat.Clause
	Lit        = sat.Lit
	Assignment = sat.Assignment
	SATStatus  = sat.Status
	SATOutcome = sat.Outcome
	Heuristic  = sat.Heuristic
)

// SAT solver verdicts.
const (
	StatusUnknown = sat.Unknown
	StatusSAT     = sat.SAT
	StatusUNSAT   = sat.UNSAT
)

// SAT branching heuristics (see sat.Heuristic).
const (
	HeuristicFirst = sat.FirstUnassigned
	HeuristicFreq  = sat.MostFrequent
	HeuristicJW    = sat.JeroslowWang
	HeuristicDLIS  = sat.DLIS
)

// SATOptions configures the sequential DPLL baseline.
type SATOptions = sat.Options

// SATTask returns the distributed DPLL solver task (paper Listing 4).
func SATTask(h Heuristic) Task { return sat.Task(h) }

// NewSATProblem wraps a formula for use as a SATTask argument.
func NewSATProblem(f Formula) *sat.Problem { return sat.NewProblem(f) }

// SolveSAT runs the sequential DPLL baseline.
func SolveSAT(f Formula, opts sat.Options) sat.Result { return sat.Solve(f, opts) }

// VerifySAT checks an assignment against a formula.
func VerifySAT(f Formula, a Assignment) bool { return sat.Verify(f, a) }

// GenerateSATSuite builds a deterministic benchmark suite; see
// sat.SuiteParams and sat.UF20Params.
func GenerateSATSuite(p sat.SuiteParams) ([]Formula, error) { return sat.GenerateSuite(p) }

// UF20Params returns the paper's benchmark parameters: 20 satisfiable
// uniform random 3-SAT instances, 20 variables, 91 clauses.
func UF20Params(seed int64) sat.SuiteParams { return sat.UF20Params(seed) }

// ---------------------------------------------------------------------------
// Other bundled solvers (layer 5)
// ---------------------------------------------------------------------------

// SumTask returns the paper's Listing 3: sum(n) by delegated recursion.
func SumTask() Task { return apps.SumTask() }

// FibTask returns the two-way fork-join Fibonacci task.
func FibTask() Task { return apps.FibTask() }

// QueensTask returns the N-Queens counting solver; cutoff is the
// sequential grain size.
func QueensTask(cutoff int) Task { return apps.QueensTask(cutoff) }

// QueensState is the N-Queens sub-problem payload; pass QueensState{N: n}
// as the root argument.
type QueensState = apps.QueensState

// QueensSeq counts N-Queens solutions sequentially (the validation oracle).
func QueensSeq(n int) int { return apps.QueensSeq(n) }

// KnapsackTask returns the 0/1 knapsack branch-and-bound solver.
func KnapsackTask(cutoff int) Task { return apps.KnapsackTask(cutoff) }

// KnapsackItem is one 0/1 knapsack item.
type KnapsackItem = apps.Item

// NewKnapsack builds a root knapsack problem from items and capacity.
func NewKnapsack(items []KnapsackItem, capacity int) apps.KnapsackProblem {
	return apps.NewKnapsack(items, capacity)
}

// KnapsackDP solves knapsack by dynamic programming (the validation oracle).
func KnapsackDP(items []KnapsackItem, capacity int) int { return apps.KnapsackDP(items, capacity) }

// ---------------------------------------------------------------------------
// Metrics & simulator access
// ---------------------------------------------------------------------------

// Series is a per-step activity time series.
type Series = metrics.Series

// Heatmap is a 2D per-node activity grid.
type Heatmap = metrics.Heatmap

// SimulatorStats are the raw layer-1 run statistics.
type SimulatorStats = simulator.Stats

// LinkConfig carries the optional layer-1 link-model extensions (latency,
// bandwidth, bounded queues, loss + reliability); set it as Config.Link.
type LinkConfig = simulator.Config

// Queue disciplines for LinkConfig.QueueModel: one inbox per node (the
// paper-reproduction default) or one queue per directed link (ablation).
const (
	NodeQueues = simulator.NodeQueues
	LinkQueues = simulator.LinkQueues
)

// Engine selects the layer-1 inner loop; set it as Config.Engine.
type Engine = simulator.Engine

// Engines for Config.Engine: the discrete-event engine (the default, skips
// idle slots and steps) and the paper's step-synchronous sweep. The two are
// bit-identical on every workload (proven by internal/simulator/difftest);
// sweep remains as the reference implementation.
const (
	EngineEvent = simulator.EngineEvent
	EngineSweep = simulator.EngineSweep
)

// ParseTopologyMust is ParseTopology that panics on error, for tests and
// examples.
func ParseTopologyMust(spec string) Topology { return mesh.MustParse(spec) }

// StaggeredRoundRobinMapper returns round-robin with per-node phase
// offsets, avoiding lockstep herding on dense topologies.
func StaggeredRoundRobinMapper() MapperFactory { return mapping.NewStaggeredRoundRobin() }

// GlobalRoundRobinMapper returns the idealised globally coordinated mapper
// used for the fully-connected baseline; it is not physically realisable
// on a hyperspace machine.
func GlobalRoundRobinMapper() MapperFactory { return mapping.NewGlobalRoundRobin() }

// FramesCancelled is reported in Result when Config.CancelSpeculative is
// set; see core.Result. The recursion-layer options type is re-exported for
// direct layer composition.
type RecursionOptions = recursion.Options

// ---------------------------------------------------------------------------
// Solve service (cmd/hypersolved, cmd/hyperctl)
// ---------------------------------------------------------------------------

// JobSpec describes one solve job submitted to the service: the problem
// kind and its parameters plus the machine to run it on.
type JobSpec = service.JobSpec

// JobID identifies a job on the wire: a bare sequence number on a single
// daemon, shard-prefixed ("s2-17") behind a cluster router. See
// ParseJobID.
type JobID = service.JobID

// ParseJobID parses either wire form of a job ID ("17" or "s2-17").
func ParseJobID(s string) (JobID, error) { return service.ParseJobID(s) }

// LinkSpec is the JSON shape of JobSpec's layer-1 link-model extensions.
type LinkSpec = service.LinkSpec

// Job is a tracked solve: spec, lifecycle state, timestamps and result.
type Job = service.Job

// JobAttempt is one strategy's run inside a portfolio race (see
// JobSpec.Portfolio): the job's spec executed under one mapping strategy in
// its own cancellation context.
type JobAttempt = service.Attempt

// JobResult is the JSON result payload of a completed job.
type JobResult = service.JobResult

// JobState is a job's lifecycle stage: queued, running, done, failed or
// cancelled.
type JobState = service.State

// Job lifecycle states.
const (
	JobQueued    = service.StateQueued
	JobRunning   = service.StateRunning
	JobDone      = service.StateDone
	JobFailed    = service.StateFailed
	JobCancelled = service.StateCancelled
)

// SolveService is a long-lived multi-tenant solve backend: a bounded FIFO
// admission queue feeding a worker pool of simulated machines, with per-job
// cancellation and deadline enforcement.
type SolveService = service.Service

// SolveServiceConfig sizes a SolveService (queue depth, worker count) and
// selects its persistence backend (Store; nil = in-memory).
type SolveServiceConfig = service.Config

// NewSolveService starts a solve service; Close stops it.
func NewSolveService(cfg SolveServiceConfig) *SolveService { return service.New(cfg) }

// NewSolveHandler wraps a service in its HTTP JSON API (the surface served
// by cmd/hypersolved).
func NewSolveHandler(s *SolveService) http.Handler { return service.NewHandler(s) }

// SolveClient is the Go client of a hypersolved server, as used by
// cmd/hyperctl. Submissions bounced by a full queue (HTTP 429) are retried
// with jittered exponential backoff (see SubmitRetry / Client.Retry).
type SolveClient = service.Client

// SubmitRetry is SolveClient's backoff policy for queue-full rejections.
type SubmitRetry = service.Retry

// JobProgress is a throttled snapshot of a running job's execution, as
// streamed by the service's SSE endpoint (GET /v1/jobs/{id}/events),
// SolveClient.Watch and SolveService.Subscribe. The last snapshot of every
// stream carries a terminal state.
type JobProgress = service.Progress

// JobProgressBroker fans one job's progress snapshots out to subscribers
// with last-event-kept semantics; its Observer plugs into Config.Observer
// (via core) for library users who want live tracing without the service.
type JobProgressBroker = service.ProgressBroker

// NewJobProgressBroker returns an empty progress broker.
func NewJobProgressBroker() *JobProgressBroker { return service.NewProgressBroker() }

// JobTrace is a job's span timeline as served by GET /v1/jobs/{id}/trace
// and rendered by `hyperctl trace`: the job's identity and state plus
// every recorded span (compile → admission → queue → run, with a
// journal-append child under admission, an instant requeued span after
// crash recovery or failover re-runs, and a replica_apply span stamped by
// standbys). Trace IDs follow the W3C traceparent header end-to-end, so
// a caller-supplied trace continues through router and shard.
type JobTrace = service.JobTrace

// TraceSpan is one interval in a JobTrace: name, parent, start/end
// instants, duration and optional attributes and step annotations.
type TraceSpan = tracelog.Span

// TraceTimeline is the raw span list of one trace (JobTrace embeds it).
type TraceTimeline = tracelog.Timeline

// TraceContext is a W3C trace-context pair (trace ID + parent span ID);
// parse one from an inbound traceparent header with ParseTraceparent or
// mint one with NewTraceContext to root a trace at the caller.
type TraceContext = tracelog.TraceContext

// NewTraceContext mints a fresh trace context (random trace + span IDs).
func NewTraceContext() TraceContext { return tracelog.NewTraceContext() }

// ParseTraceparent parses a W3C traceparent header value.
func ParseTraceparent(s string) (TraceContext, bool) { return tracelog.ParseTraceparent(s) }

// StructuredLogger is the dependency-free leveled JSON/text logger used
// across the fleet (hypersolved -log-level / -log-format); hand one to
// SolveNodeConfig.Logger or ClusterConfig.Logger to capture replication
// and failover decisions. A nil *StructuredLogger is a no-op.
type StructuredLogger = tracelog.Logger

// NewStructuredLogger builds a logger writing one record per line to w.
func NewStructuredLogger(w io.Writer, level tracelog.Level, format tracelog.Format) *StructuredLogger {
	return tracelog.New(w, level, format)
}

// BuildVersion reports the build identity stamped into the binary at link
// time ("dev (unknown)" for plain `go build`).
func BuildVersion() string { return version.String() }

// JobStore is the pluggable persistence backend of a SolveService: the
// in-memory map, or the durable WAL-journal + snapshot file backend.
type JobStore = store.Store

// FileJobStoreConfig shapes a durable job store (data directory, retention,
// fsync policy, snapshot compaction cadence).
type FileJobStoreConfig = store.FileConfig

// NewMemoryJobStore returns the in-process backend retaining at most
// history terminal jobs (<= 0 = 4096). This is what a SolveService uses
// when its config names no store.
func NewMemoryJobStore(history int) JobStore { return store.NewMemory(history) }

// OpenFileJobStore opens (or creates) the durable backend: every job
// transition is appended to a JSONL write-ahead journal and periodically
// compacted into a snapshot (written off the transition path by a
// background compactor). A SolveService started on a recovered store
// re-runs whatever the previous process left queued or running; spec+seed
// determinism makes the re-run bit-identical.
func OpenFileJobStore(cfg FileJobStoreConfig) (JobStore, error) { return store.Open(cfg) }

// ---------------------------------------------------------------------------
// Sharded solve cluster (hypersolved -route)
// ---------------------------------------------------------------------------

// ClusterRouter fronts several hypersolved daemons as one sharded solve
// service: submissions are placed on a consistent-hash ring, job IDs encode
// their shard, listings fan out and merge, dead backends degrade the
// cluster instead of failing it, and shards paired with standbys fail over
// automatically. See internal/cluster and docs/ARCHITECTURE.md.
type ClusterRouter = cluster.Router

// ClusterConfig shapes a ClusterRouter: backend base URLs (shard i+1 =
// Backends[i], paired with Standbys[i]), probe cadence and failover
// thresholds, transport and retry policy.
type ClusterConfig = cluster.Config

// ClusterHealth is the /v1/cluster report: the fleet verdict plus one
// BackendHealth row per shard.
type ClusterHealth = cluster.Health

// BackendHealth is one backend's row in the cluster report.
type BackendHealth = cluster.BackendHealth

// NewClusterRouter builds a router over the configured backends and starts
// its background health re-probe loop; Close stops it.
func NewClusterRouter(cfg ClusterConfig) (*ClusterRouter, error) { return cluster.New(cfg) }

// NewClusterHandler wraps a router in the solve service's HTTP JSON API
// plus GET /v1/cluster (the surface served by hypersolved -route).
func NewClusterHandler(r *ClusterRouter) http.Handler { return cluster.NewHandler(r) }

// ClusterMember names one shard's endpoints for Router.ApplyMembership (the
// hypersolved -route-config / SIGHUP reload path).
type ClusterMember = cluster.MemberSpec

// ---------------------------------------------------------------------------
// Replication & failover (hypersolved -data-dir / -follow)
// ---------------------------------------------------------------------------

// SolveNode is one member of a replicated shard: a durable solve daemon
// that serves its WAL as a replication feed (primary), or tails another
// node's feed into a read-only replica store (standby). Promote and Demote
// flip the role in place; the cluster router drives both during failover.
// See internal/service.Node and docs/ARCHITECTURE.md.
type SolveNode = service.Node

// SolveNodeConfig shapes a SolveNode: store directory, service sizing, and
// the optional feed source that makes it a standby.
type SolveNodeConfig = service.NodeConfig

// ReplicationStatus is a node's GET /v1/replication/status payload: role,
// fencing epoch, local and source LSN, and replication lag.
type ReplicationStatus = service.ReplicationStatus

// NewSolveNode opens the node's durable store and starts it in the
// configured role; Close stops it.
func NewSolveNode(cfg SolveNodeConfig) (*SolveNode, error) { return service.NewNode(cfg) }

// TelemetryRegistry is the process-wide metrics registry behind every
// GET /metrics endpoint: counters, gauges and histograms with atomic
// hot-path updates, encoded in Prometheus text exposition format. Hand
// one registry to the service, store and node configs to scrape a whole
// process as one snapshot. See internal/telemetry and docs/API.md.
type TelemetryRegistry = telemetry.Registry

// TelemetryFamily is one named metric family in a scrape — the unit the
// cluster router parses, relabels and merges when aggregating backend
// scrapes.
type TelemetryFamily = telemetry.Family

// NewTelemetryRegistry returns an empty registry.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }
